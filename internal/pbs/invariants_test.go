package pbs

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/simtime"
)

// Property suite: resource-accounting invariants that must survive any
// job stream. Each raw byte drives one randomized submission.

// TestQuickNoOversubscription: at every job start, no node may have
// more busy virtual processors than it has cores.
func TestQuickNoOversubscription(t *testing.T) {
	f := func(raw []byte) bool {
		eng := simtime.NewEngine()
		s := NewServer(eng, "prop.example")
		for i := 1; i <= 4; i++ {
			s.AddNode(nodeName(i), 4, true)
		}
		ok := true
		s.OnJobStart = func(*Job) {
			for _, n := range s.Nodes() {
				if n.UsedCPUs() > n.NP {
					ok = false
				}
			}
		}
		for i, b := range raw {
			if i >= 24 {
				break
			}
			s.Qsub(SubmitRequest{
				Name:    "p",
				Nodes:   int(b%3) + 1,
				PPN:     int(b>>2%4) + 1,
				Runtime: time.Duration(b%50+1) * time.Minute,
			})
		}
		eng.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAllFeasibleJobsEventuallyRun: with all nodes up and no
// walltime kills, every accepted job completes once the engine drains.
func TestQuickAllFeasibleJobsEventuallyRun(t *testing.T) {
	f := func(raw []byte) bool {
		eng := simtime.NewEngine()
		s := NewServer(eng, "prop.example")
		for i := 1; i <= 3; i++ {
			s.AddNode(nodeName(i), 4, true)
		}
		var accepted []*Job
		for i, b := range raw {
			if i >= 16 {
				break
			}
			j, err := s.Qsub(SubmitRequest{
				Name:    "p",
				Nodes:   int(b%4) + 1, // may exceed 3 nodes → rejected
				PPN:     int(b>>3%4) + 1,
				Runtime: time.Duration(b%30+1) * time.Minute,
			})
			if err == nil {
				accepted = append(accepted, j)
			}
		}
		eng.Run()
		for _, j := range accepted {
			if j.State != StateComplete {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSlotsReleasedAfterDrain: after everything completes, every
// node is fully free — no leaked slots.
func TestQuickSlotsReleasedAfterDrain(t *testing.T) {
	f := func(raw []byte) bool {
		eng := simtime.NewEngine()
		s := NewServer(eng, "prop.example")
		for i := 1; i <= 4; i++ {
			s.AddNode(nodeName(i), 4, true)
		}
		for i, b := range raw {
			if i >= 20 {
				break
			}
			s.Qsub(SubmitRequest{
				Name:    "p",
				Nodes:   int(b%4) + 1,
				PPN:     int(b>>4%4) + 1,
				Runtime: time.Duration(b%90+1) * time.Minute,
			})
			// Inject a node bounce mid-stream to exercise requeue paths.
			if b%17 == 0 {
				s.SetNodeAvailable(nodeName(int(b%4)+1), false)
				s.SetNodeAvailable(nodeName(int(b%4)+1), true)
			}
		}
		eng.Run()
		for _, n := range s.Nodes() {
			if n.UsedCPUs() != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickExecSlotsDistinct: a running job's exec slots never collide
// (same node+CPU twice).
func TestQuickExecSlotsDistinct(t *testing.T) {
	f := func(raw []byte) bool {
		eng := simtime.NewEngine()
		s := NewServer(eng, "prop.example")
		for i := 1; i <= 4; i++ {
			s.AddNode(nodeName(i), 4, true)
		}
		ok := true
		s.OnJobStart = func(j *Job) {
			seen := map[ExecSlot]bool{}
			for _, slot := range j.ExecHost {
				if seen[slot] {
					ok = false
				}
				seen[slot] = true
			}
		}
		for i, b := range raw {
			if i >= 20 {
				break
			}
			s.Qsub(SubmitRequest{Name: "p", Nodes: int(b%2) + 1, PPN: int(b%4) + 1,
				Runtime: time.Duration(b%20+1) * time.Minute})
		}
		eng.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
