package pbs

import (
	"strings"
	"testing"
	"time"

	"repro/internal/simtime"
)

// figure4 is the paper's OS-switch job script verbatim (Figure 4): it
// books one full node, rewrites the GRUB control file, reboots, and
// sleeps so the reboot is not outrun by job exit.
const figure4 = `
#####################################
###      Job Submission Script    ###
#    Change items in section 1      #
#      to suit your job needs       #
#####################################
#     Section 1: User Parameters    #
#####################################
#
#!/bin/bash
#PBS -l nodes=1:ppn=4
#PBS -N release_1_node
#PBS -q default
#PBS -j oe
#PBS -o reboot_log.out
#PBS -r n
#
#####################################
#   Section 3: Executing Commands   #
#####################################
echo $PBS_JOBID >>/home/sliang/reboot_log/rebootjob.log #write logs
sudo /boot/swap/bootcontrol.pl /boot/swap/controlmenu.lst windows #changes default boot OS
sudo reboot #reboot node
sleep 10 #leave 10 seconds to avoid job be finished before reboot
`

func TestParseFigure4(t *testing.T) {
	sj, err := ParseScript(figure4)
	if err != nil {
		t.Fatal(err)
	}
	req := sj.Request
	if req.Nodes != 1 || req.PPN != 4 {
		t.Errorf("nodes=%d ppn=%d, want 1:4", req.Nodes, req.PPN)
	}
	if req.Name != "release_1_node" {
		t.Errorf("name = %q", req.Name)
	}
	if req.Queue != "default" {
		t.Errorf("queue = %q", req.Queue)
	}
	if !req.JoinOE {
		t.Error("join oe not parsed")
	}
	if req.Output != "reboot_log.out" {
		t.Errorf("output = %q", req.Output)
	}
	if req.Rerun {
		t.Error("-r n parsed as rerunnable")
	}
	if len(sj.Commands) != 4 {
		t.Fatalf("commands = %d: %v", len(sj.Commands), sj.Commands)
	}
	if !strings.Contains(sj.Commands[1], "bootcontrol.pl") {
		t.Errorf("command 1 = %q", sj.Commands[1])
	}
	if !strings.HasPrefix(sj.Commands[3], "sleep 10") {
		t.Errorf("command 3 = %q", sj.Commands[3])
	}
}

func TestParseScriptDirectives(t *testing.T) {
	sj, err := ParseScript("#PBS -l nodes=2:ppn=2,walltime=01:30:00\n#PBS -p 5\n#PBS -r y\nrun\n")
	if err != nil {
		t.Fatal(err)
	}
	if sj.Request.Nodes != 2 || sj.Request.PPN != 2 {
		t.Errorf("nodes spec = %d:%d", sj.Request.Nodes, sj.Request.PPN)
	}
	if sj.Request.Walltime != 90*time.Minute {
		t.Errorf("walltime = %v", sj.Request.Walltime)
	}
	if sj.Request.Priority != 5 {
		t.Errorf("priority = %d", sj.Request.Priority)
	}
	if !sj.Request.Rerun {
		t.Error("-r y not parsed")
	}
}

func TestParseScriptBareNodes(t *testing.T) {
	sj, err := ParseScript("#PBS -l nodes=3\nx\n")
	if err != nil {
		t.Fatal(err)
	}
	if sj.Request.Nodes != 3 || sj.Request.PPN != 1 {
		t.Errorf("= %d:%d", sj.Request.Nodes, sj.Request.PPN)
	}
}

func TestParseScriptNodeProperties(t *testing.T) {
	sj, err := ParseScript("#PBS -l nodes=1:ppn=4:all\nx\n")
	if err != nil {
		t.Fatal(err)
	}
	if sj.Request.Nodes != 1 || sj.Request.PPN != 4 {
		t.Errorf("= %d:%d", sj.Request.Nodes, sj.Request.PPN)
	}
}

func TestParseScriptErrors(t *testing.T) {
	for _, src := range []string{
		"#PBS -l nodes=0\n",
		"#PBS -l nodes=x\n",
		"#PBS -l nodes=1:ppn=0\n",
		"#PBS -l walltime=xx\n",
		"#PBS -l walltime=1:2:3:4\n",
		"#PBS -l oops\n",
		"#PBS -p high\n",
		"#PBS -N\n",
	} {
		if _, err := ParseScript(src); err == nil {
			t.Errorf("ParseScript(%q) succeeded", src)
		}
	}
}

func TestParseWalltimeForms(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"01:00:00", time.Hour},
		{"00:05:30", 5*time.Minute + 30*time.Second},
		{"10:00", 10 * time.Minute},
		{"45", 45 * time.Second},
	}
	for _, c := range cases {
		got, err := parseWalltime(c.in)
		if err != nil || got != c.want {
			t.Errorf("parseWalltime(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
}

func TestUnknownDirectivesIgnored(t *testing.T) {
	if _, err := ParseScript("#PBS -M user@host\n#PBS -m abe\nrun\n"); err != nil {
		t.Fatalf("unknown directive rejected: %v", err)
	}
}

func TestQsubScriptEndToEnd(t *testing.T) {
	eng := simtime.NewEngine()
	s := NewServer(eng, "eridani.qgg.hud.ac.uk")
	s.AddNode("enode16", 4, true)
	var execHosts []string
	j, err := s.QsubScript(figure4, "sliang@eridani.qgg.hud.ac.uk", 10*time.Second,
		func(hosts []string) { execHosts = hosts })
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if j.State != StateComplete {
		t.Fatalf("state = %v", j.State)
	}
	if len(execHosts) != 1 || execHosts[0] != "enode16" {
		t.Fatalf("exec hosts = %v", execHosts)
	}
	if j.Name != "release_1_node" {
		t.Fatalf("name = %q", j.Name)
	}
	// The switch job books the whole 4-core node.
	if len(j.ExecHost) != 4 {
		t.Fatalf("slots = %d, want full node", len(j.ExecHost))
	}
}

func TestExecHostString(t *testing.T) {
	j := &Job{ExecHost: []ExecSlot{
		{Node: "node16", CPU: 3}, {Node: "node16", CPU: 2},
		{Node: "node16", CPU: 1}, {Node: "node16", CPU: 0},
	}}
	got := j.ExecHostString("eridani.qgg.hud.ac.uk")
	want := "node16.eridani.qgg.hud.ac.uk/3+node16.eridani.qgg.hud.ac.uk/2+node16.eridani.qgg.hud.ac.uk/1+node16.eridani.qgg.hud.ac.uk/0"
	if got != want {
		t.Fatalf("exec_host =\n%s\nwant\n%s", got, want)
	}
}
