// Package oscar models the OSCAR cluster middleware stack the paper
// builds on: node image construction from an ide.disk layout
// (systeminstaller), deployment of that image onto compute-node disks
// (systemimager) and bootloader configuration (systemconfigurator).
// The two dualboot-oscar generations differ here exactly as §III-C and
// §IV-B describe:
//
//   - v1 needs manual patches to the generated deployment script on
//     every image rebuild (insert the FAT partition, mkpart→mkpartfs,
//     rsync flags for FAT, fstab fixes), and GRUB lives in the MBR;
//   - v2 patches systemimager/systeminstaller once to support the
//     `skip` disk label, after which deployment scripts are generated
//     automatically and the Windows partition is never touched.
package oscar

import (
	"fmt"
	"strings"

	"repro/internal/deploy"
	"repro/internal/grubcfg"
	"repro/internal/hardware"
	"repro/internal/osid"
)

// Version selects the dualboot-oscar generation.
type Version uint8

const (
	V1 Version = 1
	V2 Version = 2
)

// String names the version.
func (v Version) String() string {
	if v == V2 {
		return "dualboot-oscar-2.0"
	}
	return "dualboot-oscar-1.0"
}

// LinuxReleaseFile marks an installed CentOS root (read by bootmgr's
// neighbours and by tests).
const LinuxReleaseFile = "/etc/redhat-release"

// DefaultPackages is the OSCAR package set installed into images.
var DefaultPackages = []string{
	"oscar-base", "torque-mom", "c3", "systemimager-client", "pvm", "lam", "openmpi", "ganglia-gmond",
}

// Image is a built node image: the product of systeminstaller.
type Image struct {
	Name     string
	Version  Version
	Layout   *deploy.Layout
	Kernel   grubcfg.LinuxEntrySpec
	Windows  grubcfg.WindowsEntrySpec
	Packages []string
	// ManualPatches lists the hand edits the administrator must redo
	// on every rebuild of this image (empty for v2).
	ManualPatches []string
}

// BuildImage validates a layout and constructs an image for the given
// middleware generation.
func BuildImage(name string, version Version, layout *deploy.Layout) (*Image, error) {
	if name == "" {
		return nil, fmt.Errorf("oscar: image needs a name")
	}
	boot := layout.BootPartition()
	if boot == 0 {
		return nil, fmt.Errorf("oscar: layout has no bootable partition")
	}
	img := &Image{
		Name:     name,
		Version:  version,
		Layout:   layout,
		Kernel:   grubcfg.DefaultLinuxEntry(),
		Windows:  grubcfg.DefaultWindowsEntry(),
		Packages: append([]string(nil), DefaultPackages...),
	}
	img.Kernel.BootDev = grubcfg.DeviceForLinuxPartition(boot)
	// Point the kernel's root= argument at the ext3 root partition.
	for _, e := range layout.Partitions() {
		if e.MountPoint == "/" {
			img.Kernel.KernelArgs = fmt.Sprintf("ro root=/dev/sda%d enforcing=0", e.Index)
		}
	}
	if version == V1 {
		img.ManualPatches = []string{
			"reserve Windows space and insert FAT partition in ide.disk",
			"replace mkpart with mkpartfs in oscarimage.master",
			"add modify-window=1 size-only to rsync commands",
			"remove Windows partition lines from fstab and unmount commands",
		}
		if fatPartition(layout) == 0 {
			return nil, fmt.Errorf("oscar: v1 image needs a FAT control partition in the layout")
		}
	} else if !layout.HasSkip() {
		return nil, fmt.Errorf("oscar: v2 image needs a skip-labelled Windows partition")
	}
	return img, nil
}

// fatPartition finds the shared FAT control partition in a layout.
func fatPartition(layout *deploy.Layout) int {
	for _, e := range layout.Partitions() {
		if e.TypeName == "fat" {
			return e.Index
		}
	}
	return 0
}

// DeployReport describes one Linux node deployment.
type DeployReport struct {
	PartitionsCreated   int
	PartitionsPreserved int // skip/ntfs entries left untouched
	WindowsLost         bool
	GRUBInstalled       bool
	ManualSteps         int // patches the administrator had to redo
}

// DeployNode images a compute node: partitions the disk per the
// layout, installs the system and kernel files, writes the GRUB
// configuration for the image's generation and installs GRUB into the
// MBR. Pre-existing partitions at skip (or v1's reserved NTFS) indexes
// are preserved; everything else at a layout index is recreated.
func DeployNode(node *hardware.Node, img *Image) (DeployReport, error) {
	var rep DeployReport
	disk := node.Disk
	rep.ManualSteps = len(img.ManualPatches)

	hadWindows := false
	if p, err := disk.Partition(1); err == nil && p.Type == hardware.FSNTFS && p.HasFile(deploy.WindowsBootFile) {
		hadWindows = true
	}

	for _, e := range img.Layout.Partitions() {
		preserve := e.Skip() || e.TypeName == "ntfs"
		if existing, err := disk.Partition(e.Index); err == nil {
			if preserve {
				rep.PartitionsPreserved++
				continue
			}
			_ = existing
			if err := disk.DeletePartition(e.Index); err != nil {
				return rep, err
			}
		}
		p, err := disk.AddPartition(e.Index, e.SizeMB)
		if err != nil {
			return rep, fmt.Errorf("oscar: deploy %s: %w", e.Device, err)
		}
		rep.PartitionsCreated++
		if preserve {
			// reserved space for a future Windows install; leave raw
			continue
		}
		p.Format(fsTypeFor(e.TypeName))
		p.Bootable = e.Bootable
		if err := populatePartition(p, e, img); err != nil {
			return rep, err
		}
	}

	if hadWindows {
		if p, err := disk.Partition(1); err != nil || !p.HasFile(deploy.WindowsBootFile) {
			rep.WindowsLost = true
		}
	}

	boot := img.Layout.BootPartition()
	if err := disk.InstallGRUB(boot, "/grub/menu.lst"); err != nil {
		return rep, fmt.Errorf("oscar: install grub: %w", err)
	}
	rep.GRUBInstalled = true
	return rep, nil
}

// populatePartition writes the simulated system contents.
func populatePartition(p *hardware.Partition, e deploy.LayoutEntry, img *Image) error {
	switch {
	case e.Bootable: // /boot: kernel, initrd, GRUB config
		if err := p.WriteFile(img.Kernel.KernelPath, []byte("bzImage")); err != nil {
			return err
		}
		if img.Kernel.InitrdPath != "" {
			if err := p.WriteFile(img.Kernel.InitrdPath, []byte("initrd")); err != nil {
				return err
			}
		}
		menu, err := bootMenu(img)
		if err != nil {
			return err
		}
		if err := p.WriteFile("/grub/menu.lst", menu.Render()); err != nil {
			return err
		}
	case e.TypeName == "fat": // v1 shared control partition
		for _, target := range []osid.OS{osid.Linux, osid.Windows} {
			cfg, err := grubcfg.ControlMenu(img.Kernel, img.Windows, target)
			if err != nil {
				return err
			}
			if err := p.WriteFile(grubcfg.StagedControlFileName(target), cfg.Render()); err != nil {
				return err
			}
		}
		live, err := grubcfg.ControlMenu(img.Kernel, img.Windows, osid.Linux)
		if err != nil {
			return err
		}
		if err := p.WriteFile(grubcfg.ControlFileName, live.Render()); err != nil {
			return err
		}
		// Carter's universal switch script ships on the partition too.
		if err := p.WriteFile("/bootcontrol.pl", []byte("#!/usr/bin/perl # modify GRUB configuration file")); err != nil {
			return err
		}
	case e.MountPoint == "/": // root filesystem
		if err := p.WriteFile(LinuxReleaseFile, []byte("CentOS release 5.4 (Final)")); err != nil {
			return err
		}
		for _, pkg := range img.Packages {
			if err := p.WriteFile("/opt/oscar/packages/"+pkg, []byte(pkg)); err != nil {
				return err
			}
		}
	}
	return nil
}

// bootMenu builds the menu.lst installed on the /boot partition: v1
// redirects to the FAT control file (Figure 2); v2 holds a plain
// dual-boot menu as a local fallback for when PXE is unreachable.
func bootMenu(img *Image) (*grubcfg.Config, error) {
	if img.Version == V1 {
		fat := fatPartition(img.Layout)
		return grubcfg.RedirectMenu(grubcfg.DeviceForLinuxPartition(fat), grubcfg.ControlFileName), nil
	}
	return grubcfg.ControlMenu(img.Kernel, img.Windows, osid.Linux)
}

func fsTypeFor(name string) hardware.FSType {
	switch name {
	case "ext3":
		return hardware.FSExt3
	case "swap":
		return hardware.FSSwap
	case "fat":
		return hardware.FSFAT
	case "ntfs":
		return hardware.FSNTFS
	default:
		return hardware.FSNone
	}
}

// GenerateMasterScript renders the oscarimage.master deployment script
// for an image, reflecting the v1 manual patches (mkpartfs, rsync
// flags) or the v2 auto-generated skip handling.
func GenerateMasterScript(img *Image) string {
	var b strings.Builder
	fmt.Fprintf(&b, "#!/bin/sh\n# oscarimage.master — generated by systemimager (%s)\n", img.Version)
	for _, e := range img.Layout.Partitions() {
		switch {
		case e.Skip():
			fmt.Fprintf(&b, "# %s reserved (skip label): not touched\n", e.Device)
		case e.TypeName == "ntfs":
			fmt.Fprintf(&b, "# %s reserved for Windows (manual patch)\n", e.Device)
		case e.TypeName == "fat":
			fmt.Fprintf(&b, "parted -s -- /dev/sda mkpartfs primary fat32 %s\n", sizeExpr(e))
		default:
			verb := "mkpart"
			if img.Version == V1 {
				// the v1 patch swaps mkpart for mkpartfs so FAT works
				verb = "mkpartfs"
			}
			fmt.Fprintf(&b, "parted -s -- /dev/sda %s primary %s %s\n", verb, e.TypeName, sizeExpr(e))
		}
	}
	rsync := "rsync -av"
	if img.Version == V1 {
		rsync += " --modify-window=1 --size-only"
	}
	fmt.Fprintf(&b, "%s $IMAGESERVER::%s/ /a/\n", rsync, img.Name)
	return b.String()
}

func sizeExpr(e deploy.LayoutEntry) string {
	if e.SizeMB == -1 {
		return "0 -1"
	}
	return fmt.Sprintf("0 %dMB", e.SizeMB)
}
