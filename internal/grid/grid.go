// Package grid models the Queensgate Grid (QGG) context the paper
// deploys into: "This hybrid cluster is utilised as part of the
// University of Huddersfield campus grid." Several clusters — hybrid,
// static Linux-only, static Windows-only — share one virtual clock,
// and a campus router places incoming jobs on a member that can serve
// their operating system, balancing by pending demand.
package grid

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/driver"
	"repro/internal/metrics"
	"repro/internal/osid"
	"repro/internal/simtime"
	"repro/internal/workload"
)

// RoutingPolicy selects a member for a job.
type RoutingPolicy uint8

const (
	// RouteLeastLoaded picks the capable member with the lowest
	// pending CPU demand per core.
	RouteLeastLoaded RoutingPolicy = iota
	// RouteRoundRobin cycles through capable members.
	RouteRoundRobin
	// RouteHybridLast prefers single-OS members, keeping the flexible
	// hybrid free to absorb overflow (a common campus-grid rule).
	RouteHybridLast
)

// String names the policy.
func (p RoutingPolicy) String() string {
	switch p {
	case RouteRoundRobin:
		return "round-robin"
	case RouteHybridLast:
		return "hybrid-last"
	default:
		return "least-loaded"
	}
}

// ParsePolicy resolves a routing policy by its String name; the qsim
// CLI and the sweep grid-spec parser share this registry.
func ParsePolicy(name string) (RoutingPolicy, error) {
	for _, p := range []RoutingPolicy{RouteLeastLoaded, RouteRoundRobin, RouteHybridLast} {
		if p.String() == name {
			return p, nil
		}
	}
	return 0, fmt.Errorf("grid: unknown routing policy %q", name)
}

// Member is one cluster on the grid.
type Member struct {
	Name    string
	Cluster *cluster.Cluster
}

// CanServe reports whether the member can ever run a job on the given
// OS: a static split only serves an OS if it has nodes on that side;
// hybrids serve both.
func (m *Member) CanServe(os osid.OS) bool {
	if !os.Valid() {
		return false
	}
	cfg := m.Cluster.Config()
	if cfg.Mode != cluster.Static {
		return true
	}
	switch os {
	case osid.Linux:
		return cfg.InitialLinux > 0
	case osid.Windows:
		return cfg.Nodes-cfg.InitialLinux > 0
	default:
		return false
	}
}

// pendingPerCore estimates load: queued CPU demand over total cores.
func (m *Member) pendingPerCore(os osid.OS) float64 {
	cfg := m.Cluster.Config()
	cores := cfg.Nodes * cfg.CoresPerNode
	if cores == 0 {
		return 0
	}
	side := m.Cluster.SideInfo(os)
	return float64(side.QueuedCPUs+side.RunningJobs) / float64(cores)
}

// Grid is the campus fabric. Routing is deterministic by
// construction: members keep their spec order in g.members, every
// candidate set preserves that order, and all tie-breaks resolve to
// the earliest member — so grid cells honour the sweep's
// bit-identical-output contract.
type Grid struct {
	Eng       *simtime.Engine
	members   []*Member
	policy    RoutingPolicy
	rrNext    int
	routed    map[string]int // jobs per member
	completed map[string]int // jobs finished per member (via cluster hooks)
	dropped   int
	scheduled int // grid-level submissions not yet routed
}

// MemberSpec configures one grid member.
type MemberSpec struct {
	Name   string
	Config cluster.Config
}

// New assembles a grid; all members share the grid's engine. Member
// order follows the spec order and is the routing tie-break order.
func New(policy RoutingPolicy, specs []MemberSpec) (*Grid, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("grid: no members")
	}
	g := &Grid{
		Eng:       simtime.NewEngine(),
		policy:    policy,
		routed:    map[string]int{},
		completed: map[string]int{},
	}
	seen := map[string]bool{}
	for _, spec := range specs {
		if spec.Name == "" {
			return nil, fmt.Errorf("grid: member needs a name")
		}
		if seen[spec.Name] {
			return nil, fmt.Errorf("grid: duplicate member %q", spec.Name)
		}
		seen[spec.Name] = true
		cfg := spec.Config
		cfg.Engine = g.Eng
		cfg.NamePrefix = spec.Name
		c, err := cluster.New(cfg)
		if err != nil {
			return nil, fmt.Errorf("grid: member %s: %w", spec.Name, err)
		}
		name := spec.Name
		// Completion observer instead of polling: the member tells the
		// grid when a routed job leaves the system. Walltime kills and
		// failures report completed=false and are not counted.
		c.AddHooks(cluster.Hooks{JobCompleted: func(_ string, completed bool) {
			if completed {
				g.completed[name]++
			}
		}})
		g.members = append(g.members, &Member{Name: spec.Name, Cluster: c})
	}
	return g, nil
}

// Members returns the member list.
func (g *Grid) Members() []*Member { return append([]*Member(nil), g.members...) }

// Member finds a member by name.
func (g *Grid) Member(name string) (*Member, bool) {
	for _, m := range g.members {
		if m.Name == name {
			return m, true
		}
	}
	return nil, false
}

// RoutedCounts returns jobs routed per member.
func (g *Grid) RoutedCounts() map[string]int {
	out := make(map[string]int, len(g.routed))
	for k, v := range g.routed {
		out[k] = v
	}
	return out
}

// CompletedCounts returns jobs finished per member, maintained by the
// members' completion hooks rather than by polling their summaries.
func (g *Grid) CompletedCounts() map[string]int {
	out := make(map[string]int, len(g.completed))
	for k, v := range g.completed {
		out[k] = v
	}
	return out
}

// Dropped returns jobs no member could serve.
func (g *Grid) Dropped() int { return g.dropped }

// Route picks a member for a job and submits it there.
func (g *Grid) Route(j workload.Job) (*Member, error) {
	candidates := g.candidatesFor(j)
	if len(candidates) == 0 {
		g.dropped++
		return nil, fmt.Errorf("grid: no member can serve %s job %q", j.OS, j.App)
	}
	m := g.pick(candidates, j)
	if _, err := m.Cluster.Submit(j); err != nil {
		// Capability said yes but the scheduler refused (e.g. job too
		// wide for the member): try the remaining candidates.
		for _, alt := range candidates {
			if alt == m {
				continue
			}
			if _, err2 := alt.Cluster.Submit(j); err2 == nil {
				g.routed[alt.Name]++
				return alt, nil
			}
		}
		g.dropped++
		return nil, fmt.Errorf("grid: no member accepted %q: %w", j.App, err)
	}
	g.routed[m.Name]++
	return m, nil
}

func (g *Grid) candidatesFor(j workload.Job) []*Member {
	var out []*Member
	for _, m := range g.members {
		if m.CanServe(j.OS) {
			out = append(out, m)
		}
	}
	return out
}

// pick selects among candidates, which arrive in member (spec) order.
// Every branch is order-stable: round-robin advances a counter over
// that order, and the load-based policies break ties toward the
// earliest member, so repeated runs of the same grid route every job
// identically.
func (g *Grid) pick(candidates []*Member, j workload.Job) *Member {
	switch g.policy {
	case RouteRoundRobin:
		m := candidates[g.rrNext%len(candidates)]
		g.rrNext++
		return m
	case RouteHybridLast:
		var statics []*Member
		for _, m := range candidates {
			if m.Cluster.Config().Mode == cluster.Static {
				statics = append(statics, m)
			}
		}
		if len(statics) > 0 {
			return leastLoaded(statics, j.OS)
		}
		return leastLoaded(candidates, j.OS)
	default:
		return leastLoaded(candidates, j.OS)
	}
}

// leastLoaded returns the member with the lowest pending demand per
// core. The strict `<` keeps the earliest member on equal load — the
// explicit deterministic tie-break the sweep's bit-identical contract
// relies on.
func leastLoaded(members []*Member, os osid.OS) *Member {
	best := members[0]
	bestLoad := best.pendingPerCore(os)
	for _, m := range members[1:] {
		if load := m.pendingPerCore(os); load < bestLoad {
			best, bestLoad = m, load
		}
	}
	return best
}

// ScheduleTrace arranges routing for every job at its submission time.
func (g *Grid) ScheduleTrace(trace workload.Trace) error {
	if err := trace.Validate(); err != nil {
		return err
	}
	for _, j := range trace {
		j := j
		g.scheduled++
		g.Eng.At(j.At, func() {
			g.scheduled--
			_, _ = g.Route(j) // drops are counted
		})
	}
	return nil
}

// Busy implements driver.Workload: grid-level submissions not yet
// routed, or any member with outstanding work.
func (g *Grid) Busy() bool {
	if g.scheduled > 0 {
		return true
	}
	for _, m := range g.members {
		if m.Cluster.Busy() {
			return true
		}
	}
	return false
}

// Quiesce implements driver.Workload: stop every member's controller.
func (g *Grid) Quiesce() {
	for _, m := range g.members {
		m.Cluster.Quiesce()
	}
}

// RunUntilDrained advances the shared clock on the same quiescence
// driver the single cluster uses: event-to-event hops across every
// member, stopping the instant the whole fabric goes quiet or riding
// to the horizon when a member wedges.
func (g *Grid) RunUntilDrained(horizon time.Duration) {
	driver.Drain(g.Eng, horizon, g)
}

// Report summarises every member.
func (g *Grid) Report() string {
	header := []string{"member", "mode", "routed", "util", "done(L)", "done(W)", "switches"}
	var rows [][]string
	for _, m := range g.members {
		s := m.Cluster.Summary()
		rows = append(rows, []string{
			m.Name,
			m.Cluster.Config().Mode.String(),
			fmt.Sprintf("%d", g.routed[m.Name]),
			metrics.Pct(s.Utilisation),
			fmt.Sprintf("%d", s.JobsCompleted[osid.Linux]),
			fmt.Sprintf("%d", s.JobsCompleted[osid.Windows]),
			fmt.Sprintf("%d", s.Switches),
		})
	}
	out := metrics.Table(header, rows)
	if g.dropped > 0 {
		out += fmt.Sprintf("dropped: %d jobs no member could serve\n", g.dropped)
	}
	return out
}
