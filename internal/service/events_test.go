package service

import "testing"

// TestBroadcasterMidRunReplayAndLive pins the subscribe contract: the
// replay holds everything emitted so far, later events arrive on the
// channel, and the terminal event both arrives and closes the channel.
func TestBroadcasterMidRunReplayAndLive(t *testing.T) {
	b := newBroadcaster()
	b.emit(Event{Type: "queued", Job: "j1", Total: 2})
	b.emit(Event{Type: "running", Job: "j1", Total: 2})
	b.emit(Event{Type: "cell", Job: "j1", Done: 1, Total: 2})

	replay, ch, cancel := b.subscribe("j1")
	defer cancel()
	if len(replay) != 3 || replay[0].Type != "queued" || replay[2].Type != "cell" {
		t.Fatalf("replay = %+v, want queued/running/cell", replay)
	}

	b.emit(Event{Type: "cell", Job: "j1", Done: 2, Total: 2})
	b.emit(Event{Type: "done", Job: "j1", Done: 2, Total: 2})
	if e := <-ch; e.Type != "cell" {
		t.Fatalf("live event = %+v, want cell", e)
	}
	if e, ok := <-ch; !ok || e.Type != "done" {
		t.Fatalf("live event = %+v (ok=%v), want done", e, ok)
	}
	if _, ok := <-ch; ok {
		t.Error("channel still open after terminal event")
	}
}

// TestBroadcasterTerminalClosesSlowSubscriber fills a subscriber's
// buffer past capacity before the terminal event fires: the terminal
// event cannot be enqueued, but it must still end the stream — the
// channel is closed, so the subscriber finds the end once it drains
// instead of hanging on keepalives forever.
func TestBroadcasterTerminalClosesSlowSubscriber(t *testing.T) {
	b := newBroadcaster()
	_, ch, cancel := b.subscribe("j1")
	defer cancel()
	for i := 0; i < cap(ch)+10; i++ {
		b.emit(Event{Type: "cell", Job: "j1", Done: i + 1})
	}
	b.emit(Event{Type: "done", Job: "j1"})

	drained, sawTerminal := 0, false
	for e := range ch {
		drained++
		if e.terminal() {
			sawTerminal = true
		}
	}
	if drained != cap(ch) {
		t.Errorf("drained %d buffered events, want %d", drained, cap(ch))
	}
	if sawTerminal {
		t.Error("terminal event fit in a full buffer — test setup is wrong")
	}
	// The channel is closed — the stream ends; handleEvents recovers
	// the outcome from the job record in this case.
}

// TestBroadcasterPrunesHistoryOnTerminal: after the terminal event a
// job's history is gone — late subscribers are served the outcome
// synthesized from the job record, and a long-running daemon does not
// hold per-cell history for every job it ever ran.
func TestBroadcasterPrunesHistoryOnTerminal(t *testing.T) {
	b := newBroadcaster()
	b.emit(Event{Type: "queued", Job: "j1", Total: 1})
	b.emit(Event{Type: "cell", Job: "j1", Done: 1, Total: 1})
	b.emit(Event{Type: "done", Job: "j1", Done: 1, Total: 1})

	replay, _, cancel := b.subscribe("j1")
	defer cancel()
	if len(replay) != 0 {
		t.Errorf("post-terminal replay = %+v, want empty", replay)
	}
	b.mu.Lock()
	_, held := b.history["j1"]
	b.mu.Unlock()
	if held {
		t.Error("history entry survives the terminal event")
	}
}
