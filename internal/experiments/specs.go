// Spec-document emission: every recorded sweep experiment (E12–E17, E19)
// publishes its grid as a versioned sweep.Spec document, committed
// under specs/ at the repository root. The documents are the
// reproducibility artifacts — `qsim sweep -f specs/<file>` replays a
// recorded experiment exactly, the CI spec-replay job diffs each
// replay against a committed golden CSV, and a test pins the committed
// documents against the grids in this package so they cannot drift.
package experiments

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/sweep"
)

// SpecFile pairs a recorded experiment's sweep document with its
// committed artifact filename.
type SpecFile struct {
	// File is the document's basename under specs/ ("e12_mix_sweep.json").
	File string
	Spec sweep.Spec
}

// SpecFiles returns the recorded sweep experiments' grids as versioned
// spec documents, in experiment order.
func SpecFiles() ([]SpecFile, error) {
	e14, err := E14Grid()
	if err != nil {
		return nil, err
	}
	e15, err := E15Grid()
	if err != nil {
		return nil, err
	}
	return []SpecFile{
		{"e12_mix_sweep.json", sweep.Spec{Version: sweep.SpecVersion, Name: "E12 hybrid vs static across demand mixes", Grid: E12Grid()}},
		{"e13_sweep_modes.json", sweep.Spec{Version: sweep.SpecVersion, Name: "E13 cluster mode vs offered load", Grid: E13Grid()}},
		{"e14_routing_policies.json", sweep.Spec{Version: sweep.SpecVersion, Name: "E14 campus-grid routing policies", Grid: e14}},
		{"e15_policy_suite.json", sweep.Spec{Version: sweep.SpecVersion, Name: "E15 adaptive OS-switching policy suite", Grid: e15}},
		{"e16_sched_policies.json", sweep.Spec{Version: sweep.SpecVersion, Name: "E16 FCFS vs EASY backfill", Grid: E16Grid()}},
		{"e17_metro_scale.json", sweep.Spec{Version: sweep.SpecVersion, Name: "E17 metro scale tier", Grid: E17Grid()}},
		{"e19_swf_replay.json", sweep.Spec{Version: sweep.SpecVersion, Name: "E19 SWF replay", Grid: E19Grid()}},
	}, nil
}

// WriteSpecs serialises every recorded experiment document into dir
// (cmd/benchtab -specs regenerates the committed specs/ artifacts with
// it).
func WriteSpecs(dir string) error {
	files, err := SpecFiles()
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, sf := range files {
		b, err := sweep.MarshalSpec(sf.Spec)
		if err != nil {
			return fmt.Errorf("experiments: %s: %w", sf.File, err)
		}
		if err := os.WriteFile(filepath.Join(dir, sf.File), b, 0o644); err != nil {
			return err
		}
	}
	return nil
}
