// Command qsim runs hybrid-cluster scenarios from the command line:
// pick a cluster organisation, a workload, and get the utilisation /
// wait / switch report — optionally with the node-count time series
// and the event log.
//
// Examples:
//
//	qsim -mode hybrid-v2 -trace matlabga -series
//	qsim run -mode static -trace phased -winfrac 0.5
//	qsim -compare -trace poisson -winfrac 0.3 -hours 24
//
// The sweep subcommand runs a whole parameter grid concurrently with
// deterministic per-cell seeding (identical output for any -workers),
// including whole campus fabrics behind a routing policy. Every sweep
// axis is one key of the compact grid notation and one override flag,
// both derived from the sweep package's axis registry:
//
//	qsim sweep -grid "modes=hybrid-v2,static-split;nodes=8,16;winfracs=0.25,0.5" -workers 8
//	qsim sweep -grid "modes=hybrid-v2,static-split;rates=8" \
//	  -topologies campus -routings least-loaded,round-robin,hybrid-last
//	qsim sweep -grid "modes=hybrid-v2;traces=diurnal,burst" \
//	  -ctlpolicies fcfs,threshold,hysteresis,predictive
//	qsim sweep -grid "modes=hybrid-v2;traces=phased;winfracs=0.5" \
//	  -schedpolicies fcfs,backfill -switchlat 0s,2m,10m
//
// Experiments also travel as versioned JSON documents (see the sweep
// package's Spec): `qsim sweep -f spec.json` replays a committed sweep
// document, and `qsim run -f spec.json` replays a document that
// expands to a single cell.
//
// The serve subcommand turns the same spec documents into a
// long-running simulation service (see the service package): a
// crash-safe async job queue with per-cell checkpoints, SSE progress
// streaming, and a content-addressed result cache keyed by the spec's
// canonical bytes:
//
//	qsim serve -addr 127.0.0.1:8080 -state-dir qsim-state -workers 8
//	qsim submit -f specs/e13_sweep_modes.json
//	qsim status j000001
//	qsim fetch -wait -o e13.csv j000001
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/export"
	"repro/internal/metrics"
	"repro/internal/osid"
	"repro/internal/sweep"
	"repro/internal/workload"
)

func main() {
	args := os.Args[1:]
	if len(args) > 0 {
		switch args[0] {
		case "sweep":
			runSweep(args[1:])
			return
		case "run":
			runSingle(args[1:])
			return
		case "serve":
			runServe(args[1:])
			return
		case "submit":
			runSubmit(args[1:])
			return
		case "status":
			runStatus(args[1:])
			return
		case "fetch":
			runFetch(args[1:])
			return
		}
	}
	runSingle(args)
}

// runFlags is the single-run flag surface, declared exactly once and
// shared by the bare `qsim` invocation and the `qsim run` subcommand.
// The value vocabularies in the usage strings come from the same
// registries the parsers resolve through, so help text cannot drift
// from what actually parses.
type runFlags struct {
	specFile *string
	modeName *string
	traceGen *string
	traceIn  *string
	nodes    *int
	initLin  *int
	cycle    *time.Duration
	policy   *string
	sched    *string
	seed     *int64
	winfrac  *float64
	hours    *float64
	rate     *float64
	compare  *bool
	series   *bool
	events   *bool
	apps     *bool
	csvPath  *string
	jsonPath *string
}

func bindRunFlags(fs *flag.FlagSet) *runFlags {
	return &runFlags{
		specFile: fs.String("f", "", "replay a sweep/scenario document (must expand to exactly one cell)"),
		modeName: fs.String("mode", "hybrid-v2", "cluster mode: "+strings.Join(sweep.ModeNames(), " | ")),
		traceGen: fs.String("trace", "poisson", "workload: "+strings.Join(sweep.TraceKindNames(), " | ")+" | file"),
		traceIn:  fs.String("tracefile", "", "CSV trace to replay (with -trace file)"),
		nodes:    fs.Int("nodes", 16, "compute nodes"),
		initLin:  fs.Int("linux", 0, "nodes starting in Linux (0 = half)"),
		cycle:    fs.Duration("cycle", 10*time.Minute, "controller cycle interval"),
		policy:   fs.String("policy", "fcfs", "controller policy: "+strings.Join(controller.PolicyNames(), " | ")),
		sched:    fs.String("sched", "fcfs", "head-scheduler queue discipline: "+strings.Join(cluster.SchedPolicyNames(), " | ")),
		seed:     fs.Int64("seed", 1, "workload seed"),
		winfrac:  fs.Float64("winfrac", 0.3, "Windows share of the workload"),
		hours:    fs.Float64("hours", 24, "submission window (poisson)"),
		rate:     fs.Float64("rate", 4, "jobs per hour (poisson)"),
		compare:  fs.Bool("compare", false, "run all four modes and print a comparison"),
		series:   fs.Bool("series", false, "print the node-count time series"),
		events:   fs.Bool("events", false, "print the event log"),
		apps:     fs.Bool("apps", false, "print per-application statistics"),
		csvPath:  fs.String("csv", "", "write the time series as CSV to this file"),
		jsonPath: fs.String("json", "", "write the run summary as JSON to this file"),
	}
}

// loadSpecFile loads an experiment document and relays the loader's
// deprecation warnings to stderr.
func loadSpecFile(path string) sweep.Spec {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qsim:", err)
		os.Exit(2)
	}
	defer f.Close()
	sp, err := sweep.LoadSpec(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qsim:", err)
		os.Exit(2)
	}
	for _, w := range sp.Warnings {
		fmt.Fprintln(os.Stderr, "qsim: warning:", w)
	}
	return sp
}

func runSingle(args []string) {
	fs := flag.NewFlagSet("qsim", flag.ExitOnError)
	o := bindRunFlags(fs)
	fs.Parse(args)

	if *o.specFile != "" {
		// A document is the whole experiment definition; scenario-shaping
		// flags alongside -f would be silently ignored, so reject them
		// (output-shaping flags like -series/-csv still apply).
		var conflicts []string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "f", "series", "events", "apps", "csv", "json":
			default:
				conflicts = append(conflicts, "-"+f.Name)
			}
		})
		if len(conflicts) > 0 {
			fmt.Fprintf(os.Stderr, "qsim: -f replays the document's scenario exactly; %s cannot combine with it\n",
				strings.Join(conflicts, " "))
			os.Exit(2)
		}
		sp := loadSpecFile(*o.specFile)
		cells := sp.Grid.Expand()
		if len(cells) != 1 {
			fmt.Fprintf(os.Stderr, "qsim: spec %q expands to %d cells; replay it with `qsim sweep -f`\n",
				*o.specFile, len(cells))
			os.Exit(2)
		}
		sc, err := cells[0].Scenario()
		if err != nil {
			fmt.Fprintln(os.Stderr, "qsim:", err)
			os.Exit(1)
		}
		if *o.series || *o.csvPath != "" {
			sc.SampleInterval = time.Hour
		}
		res, err := core.Run(sc)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qsim:", err)
			os.Exit(1)
		}
		printRun(o, sc.Name, cells[0].Nodes, len(sc.Trace), res)
		return
	}

	trace, err := buildTrace(*o.traceGen, *o.traceIn, *o.seed, *o.winfrac, *o.hours, *o.rate)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qsim:", err)
		os.Exit(2)
	}

	pol, err := parsePolicy(*o.policy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qsim:", err)
		os.Exit(2)
	}
	schedPol, err := cluster.ParseSchedPolicy(*o.sched)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qsim:", err)
		os.Exit(2)
	}
	base := cluster.Config{Nodes: *o.nodes, InitialLinux: *o.initLin, Cycle: *o.cycle, Seed: *o.seed, Policy: pol, SchedPolicy: schedPol}

	if *o.compare {
		modes := []cluster.Mode{cluster.Static, cluster.MonoStable, cluster.HybridV1, cluster.HybridV2}
		results, err := core.CompareModes(modes, base, trace, 0)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qsim:", err)
			os.Exit(1)
		}
		fmt.Printf("workload: %s (%d jobs, %v span)\n\n", *o.traceGen, len(trace), trace.Span().Round(time.Minute))
		fmt.Print(core.ComparisonTable(results))
		return
	}

	mode, err := parseMode(*o.modeName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qsim:", err)
		os.Exit(2)
	}
	base.Mode = mode
	sc := core.Scenario{Name: *o.modeName, Cluster: base, Trace: trace}
	if *o.series || *o.csvPath != "" {
		sc.SampleInterval = time.Hour
	}
	res, err := core.Run(sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qsim:", err)
		os.Exit(1)
	}
	printRun(o, *o.modeName, *o.nodes, len(trace), res)
}

// printRun renders the single-run report plus the optional series /
// apps / events sections and the CSV/JSON exports.
func printRun(o *runFlags, name string, nodes, traceLen int, res core.Result) {
	s := res.Summary
	fmt.Printf("scenario  %s on %d nodes, %d jobs\n", name, nodes, traceLen)
	fmt.Printf("elapsed   %s (makespan %s)\n", metrics.Dur(s.Elapsed), metrics.Dur(s.Makespan))
	fmt.Printf("util      %s total (linux %s, windows %s)\n",
		metrics.Pct(s.Utilisation), metrics.Pct(s.UtilisationOS[osid.Linux]), metrics.Pct(s.UtilisationOS[osid.Windows]))
	fmt.Printf("waits     linux %s, windows %s\n", metrics.Dur(s.MeanWait[osid.Linux]), metrics.Dur(s.MeanWait[osid.Windows]))
	fmt.Printf("jobs      linux %d/%d, windows %d/%d completed\n",
		s.JobsCompleted[osid.Linux], s.JobsSubmitted[osid.Linux],
		s.JobsCompleted[osid.Windows], s.JobsSubmitted[osid.Windows])
	fmt.Printf("switches  %d (%d ok, mean %s, max %s), control actions %d\n",
		s.Switches, s.SwitchesOK, metrics.Dur(s.MeanSwitch), metrics.Dur(s.MaxSwitch), res.ControlActions)

	if *o.series && len(res.Series) > 0 {
		fmt.Println("\ntime series:")
		rows := make([][]string, 0, len(res.Series))
		for _, p := range res.Series {
			rows = append(rows, []string{
				metrics.Dur(p.At), fmt.Sprintf("%d", p.LinuxNodes), fmt.Sprintf("%d", p.WindowsNodes),
				fmt.Sprintf("%d", p.Switching), fmt.Sprintf("%d", p.LinuxQueued), fmt.Sprintf("%d", p.WindowsQueued),
			})
		}
		fmt.Print(metrics.Table([]string{"t", "linux", "windows", "switching", "linQ", "winQ"}, rows))
	}
	if *o.apps && len(res.AppStats) > 0 {
		fmt.Println("\nper-application:")
		rows := make([][]string, 0, len(res.AppStats))
		for _, a := range res.AppStats {
			rows = append(rows, []string{
				a.App, a.OS.String(), fmt.Sprintf("%d", a.Completed),
				metrics.Dur(a.MeanWait), fmt.Sprintf("%.1f", a.CPUHours),
			})
		}
		fmt.Print(metrics.Table([]string{"app", "os", "done", "mean-wait", "cpu-hours"}, rows))
	}
	if *o.events {
		fmt.Println("\nevents:")
		for _, e := range res.Events {
			fmt.Printf("  [%s] %s\n", metrics.Dur(e.At), e.What)
		}
	}
	if *o.csvPath != "" {
		if err := writeFile(*o.csvPath, func(w *os.File) error {
			return export.WriteSeriesCSV(w, res.Series)
		}); err != nil {
			fmt.Fprintln(os.Stderr, "qsim:", err)
			os.Exit(1)
		}
		fmt.Printf("series written to %s\n", *o.csvPath)
	}
	if *o.jsonPath != "" {
		if err := writeFile(*o.jsonPath, func(w *os.File) error {
			return export.WriteSummaryJSON(w, res.Summary)
		}); err != nil {
			fmt.Fprintln(os.Stderr, "qsim:", err)
			os.Exit(1)
		}
		fmt.Printf("summary written to %s\n", *o.jsonPath)
	}
}

// runSweep is the sweep subcommand: expand -grid (or replay a -f spec
// document), run the cells on -workers goroutines, print the ranked
// comparison table. One override flag per axis is derived from the
// sweep package's axis registry — a new axis registration shows up
// here with no CLI edits.
func runSweep(args []string) {
	fs := flag.NewFlagSet("qsim sweep", flag.ExitOnError)
	gridSpec := fs.String("grid", "modes=hybrid-v2,static-split,mono-stable;nodes=16;rates=4;winfracs=0.3",
		"grid spec: 'key=v,v;...' with keys "+strings.Join(sweep.SpecKeys(), "|"))
	specFile := fs.String("f", "", "replay a sweep document instead of -grid")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "concurrent scenario workers")
	csvPath := fs.String("csv", "", "write per-cell results as CSV to this file")
	jsonPath := fs.String("json", "", "write per-cell results as JSON to this file")
	axisFlags := map[string]*string{}
	for _, ax := range sweep.Registry() {
		usage := ax.Help
		if ax.Values != nil {
			usage += " (" + ax.Values() + ")"
		}
		usage += "; overrides the grid spec's " + ax.Key + " key"
		axisFlags[ax.Key] = fs.String(ax.Key, "", usage)
	}
	fs.Parse(args)

	if *workers <= 0 {
		*workers = runtime.GOMAXPROCS(0)
	}
	baseSpec := *gridSpec
	if *specFile != "" {
		gridSet := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "grid" {
				gridSet = true
			}
		})
		if gridSet {
			fmt.Fprintln(os.Stderr, "qsim: -grid and -f are mutually exclusive")
			os.Exit(2)
		}
		sp := loadSpecFile(*specFile)
		var err error
		baseSpec, err = sweep.GridString(sp.Grid)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qsim:", err)
			os.Exit(2)
		}
	}

	// Merge the axis override flags over the base spec: a flag value
	// replaces its axis's key (alias included), untouched keys pass
	// through, and the merged string goes through the one registry
	// parser — so every entry point validates identically.
	var fields []string
	for _, field := range strings.Split(baseSpec, ";") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		// Only a well-formed key=values field can be overridden; a
		// malformed field must reach the parser so it still errors.
		if key, _, ok := strings.Cut(field, "="); ok {
			if canon, known := sweep.CanonicalKey(strings.TrimSpace(key)); known && *axisFlags[canon] != "" {
				continue // overridden by its axis flag
			}
		}
		fields = append(fields, field)
	}
	for _, ax := range sweep.Registry() {
		v := *axisFlags[ax.Key]
		if v == "" {
			continue
		}
		// The merged string re-splits on ";", so a separator inside a
		// flag value would smuggle in extra grid keys.
		if strings.Contains(v, ";") {
			fmt.Fprintf(os.Stderr, "qsim: -%s value must not contain \";\"\n", ax.Key)
			os.Exit(2)
		}
		fields = append(fields, ax.Key+"="+v)
	}
	g, warnings, err := sweep.ParseGridSpecWarn(strings.Join(fields, ";"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "qsim:", err)
		os.Exit(2)
	}
	for _, w := range warnings {
		fmt.Fprintln(os.Stderr, "qsim: warning:", w)
	}
	fmt.Printf("sweep: %s, %d workers\n\n", g.Describe(), *workers)
	out, err := sweep.Run(sweep.Config{Grid: g, Workers: *workers})
	if err != nil {
		fmt.Fprintln(os.Stderr, "qsim:", err)
		os.Exit(1)
	}
	fmt.Print(out.Table())
	failed := len(out.Errs())
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "qsim: %d cell(s) failed\n", failed)
	}
	if *csvPath != "" {
		if err := writeFile(*csvPath, func(w *os.File) error {
			return export.WriteSweepCSV(w, out.Rows())
		}); err != nil {
			fmt.Fprintln(os.Stderr, "qsim:", err)
			os.Exit(1)
		}
		fmt.Printf("results written to %s\n", *csvPath)
	}
	if *jsonPath != "" {
		if err := writeFile(*jsonPath, func(w *os.File) error {
			return export.WriteSweepJSON(w, out.Rows())
		}); err != nil {
			fmt.Fprintln(os.Stderr, "qsim:", err)
			os.Exit(1)
		}
		fmt.Printf("results written to %s\n", *jsonPath)
	}
	if failed > 0 {
		os.Exit(1)
	}
}

func writeFile(path string, fn func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// buildTrace materialises the single-run workload. "file" reads the
// CSV interchange format (-tracefile); every other token — a generator
// kind, or "swf:<path>" for SWF replay — resolves through the sweep
// registry's trace vocabulary and builds exactly the trace a sweep
// cell would, so the single-run and sweep paths can never drift apart.
func buildTrace(name, traceFile string, seed int64, winfrac, hours, rate float64) (workload.Trace, error) {
	if name == "file" {
		if traceFile == "" {
			return nil, fmt.Errorf("-trace file needs -tracefile")
		}
		f, err := os.Open(traceFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return workload.ReadCSV(f)
	}
	spec, err := sweep.ParseTraceValue(name)
	if err != nil {
		return nil, fmt.Errorf("%v; or -trace file with -tracefile", err)
	}
	spec.JobsPerHour = rate
	spec.WindowsFrac = winfrac
	spec.Duration = time.Duration(hours * float64(time.Hour))
	return spec.Build(seed)
}

// parsePolicy and parseMode delegate to the controller and sweep name
// registries so the single-run flags and the sweep grid spec accept
// exactly the same vocabulary — and an unknown name errors listing the
// valid set instead of being accepted silently.
func parsePolicy(name string) (controller.Policy, error) {
	if name == "" {
		name = "fcfs"
	}
	return controller.ParsePolicy(name)
}

func parseMode(name string) (cluster.Mode, error) { return sweep.ParseMode(name) }
