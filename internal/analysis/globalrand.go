package analysis

import (
	"go/ast"
	"go/types"
)

// randPkgs are the stdlib RNG packages whose package-level state is
// banned. math/rand/v2 has no Seed, but its top-level functions still
// draw from an unseedable global — equally irreproducible.
var randPkgs = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

// randConstructors build explicit, locally-owned generators; they are
// the only package-level rand functions a simulation may call, and
// only with a deterministic seed expression.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

// GlobalRand bans the global math/rand state. Sweep cells derive their
// seeds from grid coordinates precisely so every cell owns its stream:
// a single rand.Intn call shares one process-global generator across
// all workers, making cell output depend on worker interleaving — the
// exact failure the workers=1-vs-8 byte-identity test exists to catch.
// RNGs must be *rand.Rand values built by rand.New(rand.NewSource(seed))
// and threaded explicitly; seeding one from the wall clock is flagged
// even where a walltime annotation is in force.
var GlobalRand = &Analyzer{
	Name: "globalrand",
	Doc: "globalrand: forbid the process-global math/rand state (top-level rand.Intn etc.) and " +
		"wall-clock-seeded sources; RNGs must be *rand.Rand values threaded from coordinate-derived seeds",
	Run: runGlobalRand,
}

func runGlobalRand(pass *Pass) error {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn := pkgNameOf(info, id)
			if pn == nil || !randPkgs[pn.Imported().Path()] {
				return true
			}
			// Types (rand.Rand, rand.Source) and the constructors are
			// fine; any other package-level function is global state.
			if _, isFunc := info.Uses[sel.Sel].(*types.Func); !isFunc {
				return true
			}
			if !randConstructors[sel.Sel.Name] {
				pass.Reportf(sel.Pos(),
					"rand.%s draws from the process-global generator; thread a *rand.Rand built from a coordinate-derived seed instead",
					sel.Sel.Name)
				return true
			}
			return true
		})
		// Second sweep: constructors seeded from the wall clock. The
		// canonical anti-pattern rand.New(rand.NewSource(time.Now().
		// UnixNano())) gets its own finding so a walltime allow
		// directive cannot quietly authorise an irreproducible stream.
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !randConstructors[sel.Sel.Name] {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			if pn := pkgNameOf(info, id); pn == nil || !randPkgs[pn.Imported().Path()] {
				return true
			}
			for _, arg := range call.Args {
				if readsWallClock(info, arg) {
					pass.Reportf(call.Pos(),
						"rand.%s seeded from the wall clock is irreproducible; derive the seed from sweep coordinates",
						sel.Sel.Name)
					// One finding per seeding expression: don't descend
					// into nested constructors of the same chain.
					return false
				}
			}
			return true
		})
	}
	return nil
}

// readsWallClock reports whether the expression subtree references any
// wall-clock time function.
func readsWallClock(info *types.Info, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if sel, ok := n.(*ast.SelectorExpr); ok && wallClockFuncs[sel.Sel.Name] &&
			pkgFunc(info, sel, "time", sel.Sel.Name) {
			found = true
			return false
		}
		return true
	})
	return found
}
