// Package service turns the CLI reproduction into a long-running
// simulation service: qsim serve accepts PR 5's versioned sweep spec
// documents over HTTP/JSON, queues them in a crash-safe async job
// manager, streams per-cell progress, and answers repeated
// submissions of an identical spec from a content-addressed result
// cache.
//
// The subsystem has four layers:
//
//   - An HTTP/JSON API (api.go): POST /v1/sweeps submits a spec
//     document, GET /v1/sweeps/{id} reports job status, GET
//     /v1/sweeps/{id}/result serves the finished CSV (or JSON with
//     ?format=json), GET /v1/sweeps/{id}/events streams per-cell
//     progress as Server-Sent Events, and GET /v1/healthz is the
//     liveness probe.
//
//   - A crash-safe job manager (manager.go) over a filesystem state
//     store (store.go). Every job is one JSON file under
//     <state-dir>/jobs/, written atomically (temp file, fsync,
//     rename, directory fsync) on every state transition
//     queued→running→done/failed. Each finished sweep cell is
//     checkpointed the same way under <state-dir>/checkpoints/, so a
//     daemon killed mid-sweep restarts, re-enqueues the interrupted
//     job, replays the checkpointed cells through sweep.Run's Cached
//     hook, and runs only the cells the crash lost.
//
//   - A content-addressed result cache (cache.go) keyed by
//     sweep.SpecHash — the SHA-256 of the spec's byte-stable
//     canonical form. Resubmitting an identical spec document, in any
//     JSON formatting, returns the cached byte-identical CSV without
//     re-running a single cell.
//
//   - sweep.Run's bounded worker pool executes each job's cells with
//     coordinate-derived seeds, so the served CSV is byte-identical
//     to what `qsim sweep -f <spec> -workers 1` produces — the
//     workers-1-vs-N determinism guarantee holds end to end, across
//     crashes and resumes.
//
// Specs arriving over the wire are untrusted: CheckSpecPaths
// (guard.go) rejects swf: trace files with absolute paths or ".."
// segments before a job is created, requires the named file to exist
// under the server's spec root (Config.Root, default the process
// working directory), and pins the executed path to that root — the
// CLI's cwd-ancestor path resolution never runs for a served spec, so
// the daemon can only read trace files below its root.
//
// Job records deliberately carry no wall-clock timestamps: the state
// files, like everything else the system emits, are a pure function
// of what was submitted, which keeps restarted daemons and repeated
// submissions byte-stable.
package service

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"
)

// Config configures a Server.
type Config struct {
	// Addr is the TCP listen address (host:port; port 0 picks a free
	// port — read the bound address back from Server.Addr).
	Addr string
	// StateDir is the crash-safe state directory root; it is created
	// if missing. See the package documentation for the layout.
	StateDir string
	// Workers bounds each job's sweep worker pool (default 4, the
	// sweep package default). The served CSV is byte-identical for
	// any value.
	Workers int
	// Root is the directory a served spec's relative swf trace paths
	// resolve against; submitted specs can only read files under it.
	// Empty means the process working directory at New.
	Root string
}

// Server is the simulation service: the HTTP front end plus the job
// manager behind it. New recovers persisted state; Start binds the
// listener and begins executing queued jobs.
type Server struct {
	cfg  Config
	st   *store
	mgr  *manager
	http *http.Server
	ln   net.Listener
}

// New opens (or creates) the state directory, recovers persisted
// jobs — interrupted queued/running jobs are re-enqueued in ID
// order — and assembles the HTTP front end. Nothing executes until
// Start.
func New(cfg Config) (*Server, error) {
	st, err := openStore(cfg.StateDir)
	if err != nil {
		return nil, err
	}
	if cfg.Root == "" {
		cfg.Root, err = os.Getwd()
		if err != nil {
			return nil, fmt.Errorf("service: %w", err)
		}
	}
	mgr, err := newManager(st, cfg.Workers, cfg.Root)
	if err != nil {
		return nil, err
	}
	s := &Server{cfg: cfg, st: st, mgr: mgr}
	s.http = &http.Server{
		Handler: s.Handler(),
		// Real-I/O timeouts: slow-loris protection on the request
		// head and idle keep-alive reaping. WriteTimeout stays zero —
		// the events endpoint holds its response open indefinitely.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	return s, nil
}

// Handler returns the service's HTTP handler, independent of the
// listener — tests drive it through httptest.
func (s *Server) Handler() http.Handler { return s.routes() }

// Start binds the configured address and starts the job loop and the
// HTTP server in the background.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("service: %w", err)
	}
	s.ln = ln
	s.mgr.start()
	go s.http.Serve(ln) //nolint:errcheck // ErrServerClosed on shutdown
	return nil
}

// Addr reports the bound listen address ("" before Start).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Shutdown stops the service: the in-flight sweep (if any) is
// canceled between cells — its completed cells are already
// checkpointed, and the interrupted job resumes on the next start —
// then the HTTP server drains within ctx. Crash-safety makes graceful
// job draining unnecessary; shutdown is deliberately fast.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mgr.stop()
	s.mgr.wait()
	return s.http.Shutdown(ctx)
}

// Kill is the hard stop the crash-recovery tests exercise: cancel the
// manager and sever every connection immediately, leaving whatever
// the state directory holds exactly as a SIGKILL would.
// It still waits for the executor loop to quiesce — cancellation
// lands between cells — so a successor opening the same state
// directory sees no trailing writes.
func (s *Server) Kill() {
	s.mgr.stop()
	s.http.Close()
	s.mgr.wait()
}
