package deploy

import (
	"strings"
	"testing"

	"repro/internal/hardware"
)

func TestParseV2IdeDiskFigure14(t *testing.T) {
	l, err := ParseIdeDisk(V2IdeDisk)
	if err != nil {
		t.Fatal(err)
	}
	parts := l.Partitions()
	if len(parts) != 4 {
		t.Fatalf("partitions = %d", len(parts))
	}
	if !parts[0].Skip() || parts[0].Index != 1 || parts[0].SizeMB != 16000 {
		t.Fatalf("sda1 = %+v", parts[0])
	}
	if parts[1].TypeName != "ext3" || parts[1].MountPoint != "/boot" || !parts[1].Bootable {
		t.Fatalf("sda2 = %+v", parts[1])
	}
	if parts[2].TypeName != "swap" || parts[2].Index != 5 {
		t.Fatalf("sda5 = %+v", parts[2])
	}
	if parts[3].SizeMB != -1 || parts[3].MountPoint != "/" {
		t.Fatalf("sda6 = %+v", parts[3])
	}
	if !l.HasSkip() {
		t.Fatal("skip not detected")
	}
	if l.BootPartition() != 2 {
		t.Fatalf("boot partition = %d", l.BootPartition())
	}
	// Virtual entries (tmpfs, nfs) parsed but not partitions.
	if len(l.Entries) != 6 {
		t.Fatalf("entries = %d", len(l.Entries))
	}
}

func TestParseV1IdeDisk(t *testing.T) {
	l, err := ParseIdeDisk(V1IdeDisk)
	if err != nil {
		t.Fatal(err)
	}
	if l.HasSkip() {
		t.Fatal("v1 layout should not use skip")
	}
	var fat, ntfs bool
	for _, e := range l.Partitions() {
		if e.TypeName == "fat" {
			fat = true
		}
		if e.TypeName == "ntfs" {
			ntfs = true
		}
	}
	if !fat || !ntfs {
		t.Fatalf("v1 layout needs fat + ntfs: fat=%v ntfs=%v", fat, ntfs)
	}
}

func TestIdeDiskRenderRoundTrip(t *testing.T) {
	for _, src := range []string{V1IdeDisk, V2IdeDisk} {
		l, err := ParseIdeDisk(src)
		if err != nil {
			t.Fatal(err)
		}
		again, err := ParseIdeDisk(l.Render())
		if err != nil {
			t.Fatalf("re-parse: %v\n%s", err, l.Render())
		}
		if len(again.Entries) != len(l.Entries) {
			t.Fatalf("entries %d != %d", len(again.Entries), len(l.Entries))
		}
		for i := range l.Entries {
			if again.Entries[i] != l.Entries[i] {
				t.Fatalf("entry %d: %+v != %+v", i, again.Entries[i], l.Entries[i])
			}
		}
	}
}

func TestParseIdeDiskErrors(t *testing.T) {
	for _, src := range []string{
		"",
		"/dev/sda1\n",
		"/dev/sda1 x ext3 /\n",
		"/dev/sda1 -5 ext3 /\n",
		"/dev/sda1 100 zfs /\n",
		"/dev/sda1 - ext3 /\n",
		"/dev/sda1 100 ext3 /\n/dev/sda1 100 swap\n",
		"/dev/shm - tmpfs /dev/shm defaults\n", // no partitions at all
	} {
		if _, err := ParseIdeDisk(src); err == nil {
			t.Errorf("ParseIdeDisk(%q) succeeded", src)
		}
	}
}

func TestParseIdeDiskComments(t *testing.T) {
	l, err := ParseIdeDisk("# layout\n\n/dev/sda1 100 ext3 / defaults bootable\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Partitions()) != 1 || !l.Partitions()[0].Bootable {
		t.Fatalf("parsed = %+v", l.Partitions())
	}
}

func TestParseDiskpartFigures(t *testing.T) {
	for name, src := range map[string]string{
		"fig9": OriginalDiskpart, "fig10": V1Diskpart, "fig15": V2ReimageDiskpart,
	} {
		s, err := ParseDiskpart(src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Ops[len(s.Ops)-1].Verb != "exit" {
			t.Errorf("%s: last op = %q", name, s.Ops[len(s.Ops)-1].Verb)
		}
	}
	s, _ := ParseDiskpart(V1Diskpart)
	var create DiskpartOp
	for _, op := range s.Ops {
		if op.Verb == "create" {
			create = op
		}
	}
	if create.Args["size"] != "150000" {
		t.Fatalf("create args = %v", create.Args)
	}
}

func TestParseDiskpartErrors(t *testing.T) {
	for _, src := range []string{
		"",
		"select disk\nexit\n",
		"create volume primary\nexit\n",
		"create partition primary size\nexit\n",
		"defragment\nexit\n",
	} {
		if _, err := ParseDiskpart(src); err == nil {
			t.Errorf("ParseDiskpart(%q) succeeded", src)
		}
	}
}

// linuxDisk builds a disk with a v1-era Linux install plus Windows.
func linuxDisk(t *testing.T) *hardware.Disk {
	t.Helper()
	d := hardware.NewDisk(250000)
	win, _ := d.AddPartition(1, 150000)
	win.Format(hardware.FSNTFS)
	win.WriteFile(WindowsBootFile, []byte("w"))
	d.SetActive(1)
	boot, _ := d.AddPartition(2, 100)
	boot.Format(hardware.FSExt3)
	boot.WriteFile("/grub/menu.lst", []byte("default 0"))
	swap, _ := d.AddPartition(5, 512)
	swap.Format(hardware.FSSwap)
	fat, _ := d.AddPartition(6, 100)
	fat.Format(hardware.FSFAT)
	fat.WriteFile("/controlmenu.lst", []byte("default 0"))
	root, _ := d.AddPartition(7, -1)
	root.Format(hardware.FSExt3)
	root.WriteFile("/etc/redhat-release", []byte("CentOS"))
	d.InstallGRUB(2, "/grub/menu.lst")
	return d
}

func TestExecuteOriginalDiskpartWipesDisk(t *testing.T) {
	d := linuxDisk(t)
	s, _ := ParseDiskpart(OriginalDiskpart)
	res, err := s.Execute(d)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cleaned || res.PartitionsWiped != 5 {
		t.Fatalf("res = %+v", res)
	}
	if res.FilesLost == 0 {
		t.Fatal("no files counted lost")
	}
	parts := d.Partitions()
	if len(parts) != 1 || parts[0].SizeMB != d.SizeMB {
		t.Fatalf("post-clean table = %v", d)
	}
	if res.ActiveIndex != 1 {
		t.Fatalf("active = %d", res.ActiveIndex)
	}
}

func TestExecuteV1DiskpartReservesSpace(t *testing.T) {
	d := hardware.NewDisk(250000)
	s, _ := ParseDiskpart(V1Diskpart)
	res, err := s.Execute(d)
	if err != nil {
		t.Fatal(err)
	}
	p, err := d.Partition(1)
	if err != nil {
		t.Fatal(err)
	}
	if p.SizeMB != 150000 || p.Type != hardware.FSNTFS || p.Label != "Node" {
		t.Fatalf("p = %+v", p)
	}
	if d.FreeMB() != 100000 {
		t.Fatalf("free = %d, want 100000 left for Linux", d.FreeMB())
	}
	if len(res.FormattedIndexes) != 1 || res.FormattedIndexes[0] != 1 {
		t.Fatalf("formatted = %v", res.FormattedIndexes)
	}
}

func TestExecuteV2ReimagePreservesLinux(t *testing.T) {
	d := linuxDisk(t)
	s, _ := ParseDiskpart(V2ReimageDiskpart)
	res, err := s.Execute(d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cleaned {
		t.Fatal("v2 reimage cleaned the disk")
	}
	// Linux partitions intact with their files.
	for _, idx := range []int{2, 5, 6, 7} {
		if !d.HasPartition(idx) {
			t.Fatalf("partition %d lost", idx)
		}
	}
	boot, _ := d.Partition(2)
	if !boot.HasFile("/grub/menu.lst") {
		t.Fatal("Linux /boot contents lost")
	}
	// Windows partition reformatted.
	win, _ := d.Partition(1)
	if win.FileCount() != 0 {
		t.Fatal("windows partition not reformatted")
	}
}

func TestExecuteDiskpartErrors(t *testing.T) {
	cases := []string{
		"clean\nexit\n",                         // no disk selected
		"select disk 0\nselect partition 9\n",   // missing partition
		"select disk 0\nformat FS=NTFS\nexit\n", // no partition selected
		"select disk 0\nactive\nexit\n",
		"select disk 0\nassign letter=c\nexit\n",
		"select disk 0\nclean\ncreate partition primary size=999999999\nexit\n",
		"select disk 0\nclean\ncreate partition primary\nformat FS=FOO\nexit\n",
		"select partition x\nexit\n",
		"select volume 1\nexit\n",
		"select disk 0\nclean\ncreate partition logical\nexit\n",
	}
	for _, src := range cases {
		s, err := ParseDiskpart(src)
		if err != nil {
			continue // parse-level rejection also fine
		}
		d := hardware.NewDisk(250000)
		if _, err := s.Execute(d); err == nil {
			t.Errorf("Execute(%q) succeeded", src)
		}
	}
}

func TestDeployWindowsFreshDisk(t *testing.T) {
	n := hardware.NewNode(hardware.NodeSpec{Index: 1})
	s, _ := ParseDiskpart(V1Diskpart)
	rep, err := DeployWindows(n, s)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TargetPartition != 1 || !rep.MBRRewritten || rep.GRUBDestroyed {
		t.Fatalf("rep = %+v", rep)
	}
	p, _ := n.Disk.Partition(1)
	if !p.HasFile(WindowsBootFile) || !p.HasFile(WindowsSystemFile) {
		t.Fatal("windows files missing")
	}
	if n.Disk.MBR.Loader != hardware.BootWindows {
		t.Fatalf("MBR = %v", n.Disk.MBR.Loader)
	}
}

func TestDeployWindowsV1ReimageDestroysLinux(t *testing.T) {
	n := hardware.NewNode(hardware.NodeSpec{Index: 1})
	n.Disk = linuxDisk(t)
	s, _ := ParseDiskpart(V1Diskpart)
	rep, err := DeployWindows(n, s)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.GRUBDestroyed {
		t.Fatal("GRUB survived a clean-based reimage?")
	}
	if rep.LinuxPartitionsLost != 4 {
		t.Fatalf("linux partitions lost = %d, want 4", rep.LinuxPartitionsLost)
	}
	if rep.FilesLost == 0 {
		t.Fatal("no data loss recorded")
	}
}

func TestDeployWindowsV2ReimageKeepsLinuxData(t *testing.T) {
	n := hardware.NewNode(hardware.NodeSpec{Index: 1})
	n.Disk = linuxDisk(t)
	s, _ := ParseDiskpart(V2ReimageDiskpart)
	rep, err := DeployWindows(n, s)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LinuxPartitionsLost != 0 {
		t.Fatalf("linux partitions lost = %d", rep.LinuxPartitionsLost)
	}
	// The MBR is still rewritten (paper: "always rewrites MBR") — v2
	// survives because boot moved to PXE, not because the MBR is safe.
	if !rep.MBRRewritten || !rep.GRUBDestroyed {
		t.Fatalf("rep = %+v", rep)
	}
	root, _ := n.Disk.Partition(7)
	if !root.HasFile("/etc/redhat-release") {
		t.Fatal("linux root lost")
	}
}

func TestDeployWindowsNoActivePartition(t *testing.T) {
	n := hardware.NewNode(hardware.NodeSpec{Index: 1})
	s, err := ParseDiskpart("select disk 0\nclean\ncreate partition primary\nformat FS=NTFS LABEL=\"Node\" QUICK OVERRIDE\nexit\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DeployWindows(n, s); err == nil {
		t.Fatal("deployment without active partition succeeded")
	}
}

func TestDeployWindowsWrongFS(t *testing.T) {
	n := hardware.NewNode(hardware.NodeSpec{Index: 1})
	d := n.Disk
	p, _ := d.AddPartition(1, 1000)
	p.Format(hardware.FSExt3)
	d.SetActive(1)
	s, _ := ParseDiskpart("select disk 0\nselect partition 1\nactive\nexit\n")
	if _, err := DeployWindows(n, s); err == nil || !strings.Contains(err.Error(), "ntfs") {
		t.Fatalf("err = %v", err)
	}
}
