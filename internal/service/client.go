package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Client talks to a running qsim serve instance. It is what the
// submit/status/fetch subcommands use; tests drive it against an
// in-process Server.
type Client struct {
	// Base is the server address: "host:port" or a full
	// "http://host:port" URL.
	Base string
	// HTTPClient overrides http.DefaultClient when set.
	HTTPClient *http.Client
}

func (c *Client) url(path string) string {
	base := c.Base
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return strings.TrimRight(base, "/") + path
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// decodeError turns a non-2xx response into the server's error
// message when the body carries one.
func decodeError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var ej errorJSON
	if json.Unmarshal(body, &ej) == nil && ej.Error != "" {
		return fmt.Errorf("service: %s: %s", resp.Status, ej.Error)
	}
	return fmt.Errorf("service: %s", resp.Status)
}

func (c *Client) getJSON(path string, v any) error {
	resp, err := c.http().Get(c.url(path))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// Submit posts a spec document and returns the job the server
// registered it under — possibly an existing one, when the same
// canonical spec was submitted before.
func (c *Client) Submit(spec io.Reader) (Job, error) {
	resp, err := c.http().Post(c.url("/v1/sweeps"), "application/json", spec)
	if err != nil {
		return Job{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
		return Job{}, decodeError(resp)
	}
	var job Job
	err = json.NewDecoder(resp.Body).Decode(&job)
	return job, err
}

// Status fetches a job's current state.
func (c *Client) Status(id string) (Job, error) {
	var job Job
	err := c.getJSON("/v1/sweeps/"+id, &job)
	return job, err
}

// Result fetches a finished job's sweep table; format is "csv" or
// "json".
func (c *Client) Result(id, format string) ([]byte, error) {
	path := "/v1/sweeps/" + id + "/result"
	if format == "json" {
		path += "?format=json"
	}
	resp, err := c.http().Get(c.url(path))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	return io.ReadAll(resp.Body)
}

// Health probes the healthz endpoint.
func (c *Client) Health() error {
	var v struct {
		OK bool `json:"ok"`
	}
	if err := c.getJSON("/v1/healthz", &v); err != nil {
		return err
	}
	if !v.OK {
		return fmt.Errorf("service: server reports not ok")
	}
	return nil
}

// Wait follows the job's event stream until a terminal event arrives,
// then returns the job's final state. Completion is event-driven —
// the client never sleeps or polls, so waiting costs one held
// connection and nothing else.
func (c *Client) Wait(id string) (Job, error) {
	resp, err := c.http().Get(c.url("/v1/sweeps/" + id + "/events"))
	if err != nil {
		return Job{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Job{}, decodeError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if !bytes.HasPrefix(line, []byte("data: ")) {
			continue // keepalive comments, blank separators
		}
		var e Event
		if err := json.Unmarshal(bytes.TrimPrefix(line, []byte("data: ")), &e); err != nil {
			continue
		}
		if e.terminal() {
			return c.Status(id)
		}
	}
	if err := sc.Err(); err != nil {
		return Job{}, fmt.Errorf("service: event stream: %w", err)
	}
	// Stream ended without a terminal event (server shutdown mid-job).
	return c.Status(id)
}
