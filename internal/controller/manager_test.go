package controller

import (
	"strings"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/detector"
	"repro/internal/osid"
	"repro/internal/simtime"
)

// fakeGateway scripts SideInfo responses and records switch orders.
type fakeGateway struct {
	linux, windows SideState
	orders         []orderRec
	acceptAll      bool
}

type orderRec struct {
	donor, target osid.OS
	count         int
}

func (g *fakeGateway) SideInfo(os osid.OS) SideState {
	if os == osid.Linux {
		return g.linux
	}
	return g.windows
}

func (g *fakeGateway) OrderSwitch(donor, target osid.OS, count int) int {
	g.orders = append(g.orders, orderRec{donor, target, count})
	if g.acceptAll {
		return count
	}
	return count - 1 // model one rejection for partial-acceptance tests
}

func newManager(t *testing.T, gw Gateway, cfg Config) (*simtime.Engine, *Manager, *comm.Bus) {
	t.Helper()
	eng := simtime.NewEngine()
	bus := comm.NewBus(eng, time.Millisecond)
	m := NewManager(eng, bus, gw, cfg)
	return eng, m, bus
}

func TestManagerDefaults(t *testing.T) {
	gw := &fakeGateway{acceptAll: true}
	_, m, _ := newManager(t, gw, Config{})
	if m.Cycle() != 10*time.Minute {
		t.Fatalf("cycle = %v", m.Cycle())
	}
	if m.Policy().Name() != "fcfs" {
		t.Fatalf("policy = %v", m.Policy().Name())
	}
}

func TestCycleSendsWindowsState(t *testing.T) {
	gw := &fakeGateway{
		linux:     side(osid.Linux, 8, 8),
		windows:   side(osid.Windows, 8, 8),
		acceptAll: true,
	}
	eng, m, bus := newManager(t, gw, Config{Cycle: 5 * time.Minute})
	m.Start()
	eng.RunUntil(21 * time.Minute)
	m.Stop()
	st := m.Stats()
	if st.Cycles != 4 {
		t.Fatalf("cycles = %d, want 4 in 21 minutes at 5m", st.Cycles)
	}
	if bus.Stats().ByKind[comm.KindState] != 4 {
		t.Fatalf("state messages = %d", bus.Stats().ByKind[comm.KindState])
	}
	if st.Switches != 0 {
		t.Fatalf("switches = %d with idle cluster", st.Switches)
	}
}

func TestWindowsStuckTriggersRemoteOrderOverBus(t *testing.T) {
	gw := &fakeGateway{
		linux:     side(osid.Linux, 8, 6),
		windows:   stuck(side(osid.Windows, 8, 0), 8, "3.WINHEAD"),
		acceptAll: true,
	}
	eng, m, bus := newManager(t, gw, Config{Cycle: 5 * time.Minute})
	m.Start()
	eng.RunUntil(6 * time.Minute)
	m.Stop()

	if len(gw.orders) != 1 {
		t.Fatalf("orders = %+v", gw.orders)
	}
	o := gw.orders[0]
	if o.donor != osid.Linux || o.target != osid.Windows || o.count != 2 {
		t.Fatalf("order = %+v", o)
	}
	// Donor is Linux, so the order is local: no REBOOT message crosses.
	if bus.Stats().ByKind[comm.KindReboot] != 0 {
		t.Fatalf("unexpected REBOOT traffic: %+v", bus.Stats().ByKind)
	}
	if m.Stats().NodesOrdered != 2 {
		t.Fatalf("nodes ordered = %d", m.Stats().NodesOrdered)
	}
}

func TestLinuxStuckSendsRebootOrderToWindows(t *testing.T) {
	gw := &fakeGateway{
		linux:     stuck(side(osid.Linux, 8, 0), 4, "7.eridani"),
		windows:   side(osid.Windows, 8, 5),
		acceptAll: true,
	}
	eng, m, bus := newManager(t, gw, Config{Cycle: 5 * time.Minute})
	m.Start()
	eng.RunUntil(6 * time.Minute)
	m.Stop()

	if len(gw.orders) != 1 {
		t.Fatalf("orders = %+v", gw.orders)
	}
	o := gw.orders[0]
	if o.donor != osid.Windows || o.target != osid.Linux || o.count != 1 {
		t.Fatalf("order = %+v", o)
	}
	// The order crossed the wire as a REBOOT message.
	if bus.Stats().ByKind[comm.KindReboot] != 1 {
		t.Fatalf("reboot messages = %d", bus.Stats().ByKind[comm.KindReboot])
	}
	hist := m.History()
	if len(hist) != 1 || !hist[0].Decision.Act || hist[0].Submitted != 1 {
		t.Fatalf("history = %+v", hist)
	}
}

func TestHistoryRecordsNoOpCycles(t *testing.T) {
	gw := &fakeGateway{
		linux:     side(osid.Linux, 8, 8),
		windows:   side(osid.Windows, 8, 8),
		acceptAll: true,
	}
	eng, m, _ := newManager(t, gw, Config{Cycle: time.Minute})
	m.Start()
	// One extra second so the third cycle's STATE message clears the
	// 1 ms bus latency before the deadline.
	eng.RunUntil(3*time.Minute + time.Second)
	m.Stop()
	hist := m.History()
	if len(hist) != 3 {
		t.Fatalf("history = %d records", len(hist))
	}
	for _, h := range hist {
		if h.Decision.Act {
			t.Fatalf("unexpected action: %+v", h)
		}
	}
}

func TestStopHaltsCycle(t *testing.T) {
	gw := &fakeGateway{linux: side(osid.Linux, 8, 8), windows: side(osid.Windows, 8, 8), acceptAll: true}
	eng, m, _ := newManager(t, gw, Config{Cycle: time.Minute})
	m.Start()
	eng.RunUntil(2 * time.Minute)
	m.Stop()
	eng.RunUntil(10 * time.Minute)
	if m.Stats().Cycles != 2 {
		t.Fatalf("cycles after Stop = %d", m.Stats().Cycles)
	}
}

func TestRunOnceSynchronous(t *testing.T) {
	gw := &fakeGateway{
		linux:     stuck(side(osid.Linux, 8, 0), 8, "x"),
		windows:   side(osid.Windows, 8, 4),
		acceptAll: true,
	}
	_, m, _ := newManager(t, gw, Config{})
	d := m.RunOnce()
	if !d.Act || d.Nodes != 2 {
		t.Fatalf("d = %+v", d)
	}
	if len(gw.orders) != 1 {
		t.Fatalf("orders = %+v", gw.orders)
	}
	if m.Stats().NodesOrdered != 2 || m.Stats().Switches != 1 {
		t.Fatalf("stats = %+v", m.Stats())
	}
}

func TestPartialSubmissionRecorded(t *testing.T) {
	gw := &fakeGateway{
		linux:     stuck(side(osid.Linux, 8, 0), 8, "x"),
		windows:   side(osid.Windows, 8, 4),
		acceptAll: false, // gateway accepts count-1
	}
	_, m, _ := newManager(t, gw, Config{})
	m.RunOnce()
	hist := m.History()
	if len(hist) != 1 || hist[0].Submitted != 1 {
		t.Fatalf("history = %+v", hist)
	}
}

func TestManagerWithCustomPolicy(t *testing.T) {
	gw := &fakeGateway{
		linux:     stuck(side(osid.Linux, 8, 0), 4, "x"),
		windows:   side(osid.Windows, 8, 8),
		acceptAll: true,
	}
	eng, m, _ := newManager(t, gw, Config{Cycle: time.Minute, Policy: Threshold{MinQueuedCPUs: 99}})
	m.Start()
	eng.RunUntil(5 * time.Minute)
	m.Stop()
	if m.Stats().Switches != 0 {
		t.Fatalf("threshold policy ignored: %+v", m.Stats())
	}
}

// oscGateway models demand that swings between the sides every period:
// the loaded side carries a 32-CPU backlog on fully busy nodes while
// the other side idles. Switch orders are accepted but never change
// the node split, so every cycle re-presents the same temptation — the
// sharpest possible flap bait.
type oscGateway struct {
	now    func() time.Duration
	period time.Duration
	orders []orderRec
}

func (g *oscGateway) SideInfo(os osid.OS) SideState {
	loaded := osid.Linux
	if int(g.now()/g.period)%2 == 1 {
		loaded = osid.Windows
	}
	if os == loaded {
		s := side(os, 8, 0)
		s.QueuedCPUs = 32
		s.QueuedJobs = 4
		return s
	}
	return side(os, 8, 8)
}

func (g *oscGateway) OrderSwitch(donor, target osid.OS, count int) int {
	g.orders = append(g.orders, orderRec{donor, target, count})
	return count
}

// runOscillating drives a manager with the given policy over 4h of
// demand swinging every 30m, reporting its stats and history.
func runOscillating(t *testing.T, policy Policy) (Stats, []DecisionRecord) {
	t.Helper()
	eng := simtime.NewEngine()
	gw := &oscGateway{now: eng.Now, period: 30 * time.Minute}
	bus := comm.NewBus(eng, time.Millisecond)
	m := NewManager(eng, bus, gw, Config{Cycle: 5 * time.Minute, Policy: policy})
	m.Start()
	// One extra second so the final cycle's STATE message clears the
	// 1 ms bus latency before the deadline.
	eng.RunUntil(4*time.Hour + time.Second)
	m.Stop()
	return m.Stats(), m.History()
}

// TestManagerNoFlapHistory is the manager-level no-flap regression:
// on the oscillating gateway the hysteresis policy must order strictly
// fewer switches than threshold, and its history must record the
// dwell-blocked cycles as explicit no-action decisions.
func TestManagerNoFlapHistory(t *testing.T) {
	thrStats, thrHist := runOscillating(t, Threshold{})
	hysStats, hysHist := runOscillating(t, &Hysteresis{})

	if thrStats.Switches == 0 {
		t.Fatal("threshold never switched on the oscillating trace")
	}
	if hysStats.Switches == 0 || hysStats.Switches >= thrStats.Switches {
		t.Fatalf("hysteresis switches = %d, threshold = %d; want strictly fewer (and > 0)",
			hysStats.Switches, thrStats.Switches)
	}
	// Every control cycle leaves a history record, acting or not.
	if len(thrHist) != thrStats.Cycles || len(hysHist) != hysStats.Cycles {
		t.Fatalf("history gaps: threshold %d/%d, hysteresis %d/%d",
			len(thrHist), thrStats.Cycles, len(hysHist), hysStats.Cycles)
	}
	dwellBlocked := 0
	for _, rec := range hysHist {
		if !rec.Decision.Act && strings.Contains(rec.Decision.Reason, "dwell") {
			dwellBlocked++
		}
	}
	if dwellBlocked == 0 {
		t.Fatal("no dwell-blocked cycles recorded in hysteresis history")
	}
}

// TestManagerPredictiveHistoryWarmsUp proves the predictive policy's
// first cycle is a recorded no-action warmup, after which sustained
// one-sided demand produces acting records.
func TestManagerPredictiveHistoryWarmsUp(t *testing.T) {
	gw := &fakeGateway{
		linux:     side(osid.Linux, 8, 6),
		windows:   stuck(side(osid.Windows, 8, 0), 32, "9.W"),
		acceptAll: true,
	}
	gw.windows.QueuedCPUs = 32
	gw.windows.QueuedJobs = 4
	gw.windows.ArrivedCPUs = 32
	eng, m, _ := newManager(t, gw, Config{Cycle: 10 * time.Minute, Policy: &Predictive{}})
	m.Start()
	eng.RunUntil(45 * time.Minute)
	m.Stop()
	hist := m.History()
	if len(hist) != 4 {
		t.Fatalf("history = %d records, want 4", len(hist))
	}
	if hist[0].Decision.Act || !strings.Contains(hist[0].Decision.Reason, "warming up") {
		t.Fatalf("first cycle should be a warmup no-op: %+v", hist[0].Decision)
	}
	acted := false
	for _, rec := range hist[1:] {
		acted = acted || rec.Decision.Act
	}
	if !acted {
		t.Fatalf("predictive never acted on sustained stuck demand: %+v", hist)
	}
}

func TestWindowsReportFromWireOverridesLocal(t *testing.T) {
	// The Linux decision must use the report that crossed the wire,
	// not a locally recomputed one: inject a gateway whose local
	// Windows view says "not stuck" but whose wire report says stuck.
	gw := &wireGateway{}
	eng, m, bus := newManager(t, gw, Config{Cycle: time.Hour})
	m.Start()
	// Hand-deliver a stuck STATE report as if from the Windows daemon.
	bus.Send(WindowsEndpoint, LinuxEndpoint, comm.Message{
		Kind: comm.KindState, From: osid.Windows,
		Report: detector.Report{Stuck: true, NeededCPUs: 4, StuckJobID: "99.W"},
	})
	eng.RunUntil(time.Second)
	m.Stop()
	if len(gw.orders) != 1 {
		t.Fatalf("wire report ignored: %+v", gw.orders)
	}
}

type wireGateway struct {
	orders []orderRec
}

func (g *wireGateway) SideInfo(os osid.OS) SideState {
	if os == osid.Linux {
		return side(osid.Linux, 8, 4) // idle donors available
	}
	return side(osid.Windows, 8, 0) // locally looks NOT stuck
}

func (g *wireGateway) OrderSwitch(donor, target osid.OS, count int) int {
	g.orders = append(g.orders, orderRec{donor, target, count})
	return count
}
