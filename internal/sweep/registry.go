package sweep

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/bootmgr"
	"repro/internal/cluster"
	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/osid"
)

// Axis is one self-describing sweep-axis registration. Everything the
// rest of the system needs to know about an axis hangs off its entry
// here: the grid-spec / document / CLI key, the value parser and its
// canonical inverse, the expansion enumerator, the seed-derivation
// role, the export column, and the cell-name segment. ParseGridSpec,
// the qsim sweep flag set, CSV/JSON headers, Grid.Describe and
// deterministic cell naming are all derived from the registry — adding
// an axis means adding one Grid field and one registration, nothing
// else (see the switchlat axis for the template).
type Axis struct {
	// Key is the grid-spec, document and CLI flag name ("modes").
	Key string
	// Alias is a deprecated alternate key still accepted by the
	// parser ("" = none). Aliases never appear in help or documents.
	Alias string
	// Help is the one-line description shown in flag usage and the
	// generated key table.
	Help string
	// Values returns the value vocabulary for help text ("a|b|c");
	// nil for free-form numeric axes.
	Values func() string
	// Single marks scalar keys (seed, cycle, horizon, hours): exactly
	// one value, never a comma list — ParseGridSpec rejects comma
	// lists for them before dispatching to Parse.
	Single bool

	// Defaults fills the axis's Grid default when the field is unset;
	// nil when Grid.withDefaults already covers it.
	Defaults func(g *Grid)

	// Parse folds the key's raw value string into the parse state.
	Parse func(ps *specState, vals string) error
	// Format renders the grid's value back to canonical spec notation;
	// "" omits the key. It errors when the grid holds something the
	// notation cannot express (custom traces, bespoke topologies).
	Format func(g Grid) (string, error)

	// Points counts the axis's expansion points given the partial
	// cell built from earlier axes; Apply writes point i into the
	// cell. Nil for parse-only keys (rates/winfracs/hours feed the
	// traces axis) and for scalars.
	Points func(g Grid, c Cell) int
	Apply  func(g Grid, c *Cell, i int)
	// Env contributes the axis's coordinate to the cell's cluster
	// seed ("" = treatment axis: variants share the environment seed).
	Env func(c Cell) string
	// Plural labels the axis in Grid.Describe ("modes"); "" omits.
	Plural string
	// Quiet omits the axis from Describe while it sits at a single
	// point, so pre-registry Describe strings stay stable.
	Quiet bool

	// Column names the axis's export column ("" = no column); Col
	// renders a cell's value as its canonical CSV text plus its typed
	// JSON value.
	Column string
	Col    func(c Cell) (text string, js any)
	// OmitEmptyJSON drops the JSON field when the text is empty
	// (routing on single-cluster cells).
	OmitEmptyJSON bool
	// ColumnOptional emits the column only when ColumnActive reports
	// some cell off the axis default — so grids that never touch the
	// axis serialise exactly as they did before it existed.
	ColumnOptional bool
	ColumnActive   func(c Cell) bool

	// Segment renders the cell-name segment ("" omits). NameOrder
	// sorts segments; ties keep registry order.
	Segment   func(c Cell) string
	NameOrder int

	// Configure applies the cell's axis value to the materialised
	// scenario, for axes that act through core.Scenario fields.
	Configure func(c Cell, sc *core.Scenario)
}

// Registry returns the axis registrations in canonical order: the
// order of grid-spec keys, export columns and Describe segments.
func Registry() []*Axis { return registry }

// SpecKeys lists the valid grid-spec keys in registry order (aliases
// excluded).
func SpecKeys() []string {
	keys := make([]string, len(registry))
	for i, ax := range registry {
		keys[i] = ax.Key
	}
	return keys
}

// CanonicalKey resolves a grid-spec key or deprecated alias to its
// canonical axis key; false for unknown keys.
func CanonicalKey(key string) (string, bool) {
	ax, _ := axisByKey(key)
	if ax == nil {
		return "", false
	}
	return ax.Key, true
}

// axisByKey resolves a key or its deprecated alias. The second result
// reports whether the alias was used.
func axisByKey(key string) (*Axis, bool) {
	for _, ax := range registry {
		if ax.Key == key {
			return ax, false
		}
		if ax.Alias != "" && ax.Alias == key {
			return ax, true
		}
	}
	return nil, false
}

// SpecKeyDoc renders the grid-spec key table from the registry — the
// single source the package documentation, the README and the qsim
// help text all agree with (TestSpecKeyDocMatchesPackageDoc pins the
// package doc against it).
func SpecKeyDoc() string {
	width := 0
	for _, ax := range registry {
		if len(ax.Key) > width {
			width = len(ax.Key)
		}
	}
	var b strings.Builder
	for _, ax := range registry {
		line := fmt.Sprintf("%-*s  %s", width, ax.Key, ax.Help)
		if ax.Values != nil {
			line += " (" + ax.Values() + ")"
		}
		b.WriteString(line + "\n")
	}
	return b.String()
}

// ModeNames lists the cluster-mode vocabulary in registry order.
func ModeNames() []string {
	names := make([]string, len(allModes))
	for i, m := range allModes {
		names[i] = m.String()
	}
	return names
}

// TraceKindNames lists the trace-kind vocabulary in registry order.
// The SWF kind renders as its full token syntax — it always travels
// with a file.
func TraceKindNames() []string {
	names := make([]string, len(allTraceKinds))
	for i, k := range allTraceKinds {
		names[i] = k.String()
		if k == TraceSWF {
			names[i] = "swf:<file>"
		}
	}
	return names
}

// RoutingNames lists the campus routing-policy vocabulary.
func RoutingNames() []string {
	names := make([]string, len(allRoutings))
	for i, r := range allRoutings {
		names[i] = r.String()
	}
	return names
}

// TopologyNames lists the fabric preset vocabulary.
func TopologyNames() []string {
	presets := DefaultTopologies()
	names := make([]string, len(presets))
	for i, t := range presets {
		names[i] = t.Name
	}
	return names
}

var (
	allModes      = []cluster.Mode{cluster.HybridV1, cluster.HybridV2, cluster.Static, cluster.MonoStable}
	allTraceKinds = []TraceKind{
		TracePoisson, TracePhased, TraceMatlabGA, TraceDiurnal, TraceBurst,
		TraceMMPP, TraceUsers, TraceSWF,
	}
	allRoutings = []grid.RoutingPolicy{grid.RouteLeastLoaded, grid.RouteRoundRobin, grid.RouteHybridLast}
)

// traceKindPoint is one traces-axis token: a generator kind, plus the
// log path for the swf kind (which always travels with its file).
type traceKindPoint struct {
	kind TraceKind
	file string
}

// kindBinding records that a parameter key was set and which trace
// kind it feeds, so buildTraces can reject a parameter whose kind
// never appears in traces= instead of ignoring it silently.
type kindBinding struct {
	key  string
	kind TraceKind
}

// specState carries ParseGridSpec's intermediate values: the trace
// group (rates × winfracs × hours × kinds, plus the per-kind parameter
// singles) is assembled into Grid.Traces only after every key has
// parsed.
type specState struct {
	g        *Grid
	rates    []float64
	winfracs []float64
	kinds    []traceKindPoint
	hours    float64

	// Per-kind trace parameters (Single keys), folded by buildTraces
	// into every trace of the matching kind.
	swfMaxJobs   int
	swfWindow    time.Duration
	swfNodes     int
	swfRequested bool
	mmppBurst    float64
	mmppDwell    time.Duration
	users        int
	think        time.Duration

	bound []kindBinding
}

func newSpecState(g *Grid) *specState {
	return &specState{g: g, rates: []float64{4}, winfracs: []float64{0.3}, kinds: []traceKindPoint{{kind: TracePoisson}}, hours: 24}
}

// bind notes a per-kind parameter key so buildTraces can verify its
// kind appears on the traces axis.
func (ps *specState) bind(key string, kind TraceKind) {
	ps.bound = append(ps.bound, kindBinding{key, kind})
}

// buildTraces crosses the trace group into Grid.Traces exactly as the
// compact notation documents: kind (outer) × rate × winfrac, one
// submission window, deduplicated by derived name (non-poisson kinds
// ignore some parameters, so the cross can repeat a shape). It errors
// when a per-kind parameter key was set but its kind never appears on
// the traces axis — a silent no-op would read as a typo.
func (ps *specState) buildTraces() error {
	haveKind := map[TraceKind]bool{}
	for _, kp := range ps.kinds {
		haveKind[kp.kind] = true
	}
	for _, b := range ps.bound {
		if !haveKind[b.kind] {
			return fmt.Errorf("sweep: grid key %q only applies to %s traces, and traces= has none", b.key, b.kind)
		}
	}
	seen := map[string]bool{}
	for _, kp := range ps.kinds {
		for _, rate := range ps.rates {
			for _, wf := range ps.winfracs {
				t := TraceSpec{
					Kind:        kp.kind,
					JobsPerHour: rate,
					WindowsFrac: wf,
					Duration:    time.Duration(ps.hours * float64(time.Hour)),
				}
				switch kp.kind {
				case TraceSWF:
					t.SWFFile = kp.file
					t.SWFMaxJobs = ps.swfMaxJobs
					t.SWFWindow = ps.swfWindow
					t.SWFTargetNodes = ps.swfNodes
					t.SWFUseRequested = ps.swfRequested
				case TraceMMPP:
					t.MMPPBurst = ps.mmppBurst
					t.MMPPDwell = ps.mmppDwell
				case TraceUsers:
					t.Users = ps.users
					t.Think = ps.think
				}
				t = t.withDefaults()
				// Derived names embed only the file's basename, so the
				// dedup key carries the full path: two distinct logs that
				// happen to share a basename stay distinct cells (their
				// colliding names get withDefaults' position suffix).
				key := t.Name + "\x00" + t.SWFFile
				if seen[key] {
					continue
				}
				seen[key] = true
				ps.g.Traces = append(ps.g.Traces, t)
			}
		}
	}
	return nil
}

// traceGroup recovers the spec-notation trace group from a grid's
// trace axis, or errors when the traces cannot be expressed (custom
// builders, explicit names, non-default phases/width, per-kind
// parameters that differ between traces of one kind, or a set that is
// not a clean kind × rate × winfrac cross).
type traceGroup struct {
	kinds    []traceKindPoint
	rates    []float64
	winfracs []float64
	hours    float64

	// Per-kind parameter singles, captured from the first trace of
	// each kind; the replay check enforces uniformity across the rest.
	swfMaxJobs   int
	swfWindow    time.Duration
	swfNodes     int
	swfRequested bool
	mmppBurst    float64
	mmppDwell    time.Duration
	users        int
	think        time.Duration
}

// hasKind reports whether the group carries a trace of the kind — the
// per-kind parameter keys omit themselves from documents otherwise.
func (tg traceGroup) hasKind(k TraceKind) bool {
	for _, kp := range tg.kinds {
		if kp.kind == k {
			return true
		}
	}
	return false
}

func traceGroupOf(g Grid) (traceGroup, error) {
	var tg traceGroup
	if len(g.Traces) == 0 {
		return tg, fmt.Errorf("sweep: grid has no traces to express")
	}
	norm := make([]TraceSpec, len(g.Traces))
	seenKind := map[traceKindPoint]bool{}
	seenRate := map[float64]bool{}
	seenWF := map[float64]bool{}
	sawSWF, sawMMPP, sawUsers := false, false, false
	for i, t := range g.Traces {
		norm[i] = t.withDefaults()
		t = norm[i]
		if t.Custom != nil {
			return tg, fmt.Errorf("sweep: trace %q has a custom builder; not expressible in spec notation", t.Name)
		}
		if t.Phases != 8 || t.MaxNodes != 4 {
			return tg, fmt.Errorf("sweep: trace %q overrides phases/width; not expressible in spec notation", t.Name)
		}
		if t.JobsPerHour <= 0 {
			return tg, fmt.Errorf("sweep: trace %q has non-positive rate", t.Name)
		}
		if i == 0 {
			tg.hours = t.Duration.Hours()
		} else if t.Duration != norm[0].Duration {
			return tg, fmt.Errorf("sweep: traces mix submission windows (%v vs %v); not expressible in spec notation",
				norm[0].Duration, t.Duration)
		}
		// The parameter keys are grid-wide singles, so the first trace
		// of each kind donates its values; any later trace that
		// disagrees fails the replay check below.
		switch t.Kind {
		case TraceSWF:
			if !sawSWF {
				sawSWF = true
				tg.swfMaxJobs, tg.swfWindow = t.SWFMaxJobs, t.SWFWindow
				tg.swfNodes, tg.swfRequested = t.SWFTargetNodes, t.SWFUseRequested
			}
		case TraceMMPP:
			if !sawMMPP {
				sawMMPP = true
				tg.mmppBurst, tg.mmppDwell = t.MMPPBurst, t.MMPPDwell
			}
		case TraceUsers:
			if !sawUsers {
				sawUsers = true
				tg.users, tg.think = t.Users, t.Think
			}
		}
		kp := traceKindPoint{kind: t.Kind, file: t.SWFFile}
		if !seenKind[kp] {
			seenKind[kp] = true
			tg.kinds = append(tg.kinds, kp)
		}
		if !seenRate[t.JobsPerHour] {
			seenRate[t.JobsPerHour] = true
			tg.rates = append(tg.rates, t.JobsPerHour)
		}
		if !seenWF[t.WindowsFrac] {
			seenWF[t.WindowsFrac] = true
			tg.winfracs = append(tg.winfracs, t.WindowsFrac)
		}
	}
	// The authoritative check: replaying the collected sets through
	// the parser's own cross-product must regenerate exactly the
	// grid's trace names, in order. Names are lossless by construction
	// (they key the trace seeds), so name equality is behaviour
	// equality.
	replay := Grid{}
	ps := &specState{
		g: &replay, rates: tg.rates, winfracs: tg.winfracs, kinds: tg.kinds, hours: tg.hours,
		swfMaxJobs: tg.swfMaxJobs, swfWindow: tg.swfWindow,
		swfNodes: tg.swfNodes, swfRequested: tg.swfRequested,
		mmppBurst: tg.mmppBurst, mmppDwell: tg.mmppDwell,
		users: tg.users, think: tg.think,
	}
	if err := ps.buildTraces(); err != nil {
		return tg, err
	}
	if len(replay.Traces) != len(norm) {
		return tg, fmt.Errorf("sweep: traces are not a kind × rate × winfrac cross; not expressible in spec notation")
	}
	for i := range norm {
		if replay.Traces[i].Name != norm[i].Name || replay.Traces[i].SWFFile != norm[i].SWFFile {
			return tg, fmt.Errorf("sweep: trace %q is not at its cross-product position; not expressible in spec notation", norm[i].Name)
		}
	}
	return tg, nil
}

func joinFloats(vals []float64) string {
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = fmt.Sprintf("%g", v)
	}
	return strings.Join(parts, ",")
}

// SwitchLatencyModel builds the boot-latency model for one switchlat
// axis value: every stage of the stock model scaled uniformly so the
// zero-jitter planning estimate for a PXE switch to Windows
// (bootmgr.SwitchLatency, the paper's "no more than five minutes"
// number) equals d. Zero returns nil — the stock model.
func SwitchLatencyModel(d time.Duration) *bootmgr.LatencyModel {
	if d <= 0 {
		return nil
	}
	m := bootmgr.DefaultLatencyModel()
	base := bootmgr.SwitchLatency(m, osid.Windows, true, 3)
	f := float64(d) / float64(base)
	scale := func(v time.Duration) time.Duration { return time.Duration(float64(v) * f) }
	m.Shutdown = scale(m.Shutdown)
	m.POST = scale(m.POST)
	m.DHCP = scale(m.DHCP)
	m.TFTP = scale(m.TFTP)
	m.GRUBPerSecond = scale(m.GRUBPerSecond)
	m.KernelLinux = scale(m.KernelLinux)
	m.ServicesLinux = scale(m.ServicesLinux)
	m.KernelWindows = scale(m.KernelWindows)
	m.ServicesWindows = scale(m.ServicesWindows)
	return &m
}

// registry holds the axis registrations in canonical order. The
// ordering is load-bearing three ways: grid-spec keys and documents
// list in this order, export columns emit in this order, and Expand
// nests loops in this order (earlier axes are outermost), which fixes
// both cell expansion order and the env-seed coordinate order.
var registry = buildRegistry()

func buildRegistry() []*Axis {
	return []*Axis{
		{
			Key:    "modes",
			Help:   "cluster organisations",
			Values: func() string { return strings.Join(ModeNames(), "|") },
			Parse: func(ps *specState, vals string) error {
				for _, v := range strings.Split(vals, ",") {
					m, err := ParseMode(strings.TrimSpace(v))
					if err != nil {
						return err
					}
					ps.g.Modes = append(ps.g.Modes, m)
				}
				return nil
			},
			Format: func(g Grid) (string, error) {
				parts := make([]string, len(g.Modes))
				for i, m := range g.Modes {
					parts[i] = m.String()
				}
				return strings.Join(parts, ","), nil
			},
			Points:    func(g Grid, _ Cell) int { return len(g.Modes) },
			Apply:     func(g Grid, c *Cell, i int) { c.Mode = g.Modes[i] },
			Plural:    "modes",
			Column:    "mode",
			Col:       func(c Cell) (string, any) { return c.Mode.String(), c.Mode.String() },
			Segment:   func(c Cell) string { return c.Mode.String() },
			NameOrder: 10,
		},
		{
			Key:    "ctlpolicies",
			Alias:  "policies",
			Help:   "controller policies",
			Values: func() string { return strings.Join(controller.PolicyNames(), "|") },
			Parse: func(ps *specState, vals string) error {
				for _, v := range strings.Split(vals, ",") {
					p, err := PolicyByName(strings.TrimSpace(v))
					if err != nil {
						return err
					}
					ps.g.Policies = append(ps.g.Policies, p)
				}
				return nil
			},
			Format: func(g Grid) (string, error) {
				parts := make([]string, len(g.Policies))
				for i, p := range g.Policies {
					if p.Name == "" {
						return "", fmt.Errorf("sweep: unnamed controller policy; not expressible in spec notation")
					}
					parts[i] = p.Name
				}
				return strings.Join(parts, ","), nil
			},
			Points:    func(g Grid, _ Cell) int { return len(g.Policies) },
			Apply:     func(g Grid, c *Cell, i int) { c.Policy = g.Policies[i] },
			Plural:    "policies",
			Column:    "policy",
			Col:       func(c Cell) (string, any) { return c.Policy.Name, c.Policy.Name },
			Segment:   func(c Cell) string { return c.Policy.Name },
			NameOrder: 20,
		},
		{
			Key:    "schedpolicies",
			Help:   "head-scheduler queue disciplines",
			Values: func() string { return strings.Join(cluster.SchedPolicyNames(), "|") },
			Parse: func(ps *specState, vals string) error {
				for _, v := range strings.Split(vals, ",") {
					p, err := cluster.ParseSchedPolicy(strings.TrimSpace(v))
					if err != nil {
						return fmt.Errorf("sweep: %w", err)
					}
					ps.g.SchedPolicies = append(ps.g.SchedPolicies, p)
				}
				return nil
			},
			Format: func(g Grid) (string, error) {
				parts := make([]string, len(g.SchedPolicies))
				for i, p := range g.SchedPolicies {
					parts[i] = p.String()
				}
				return strings.Join(parts, ","), nil
			},
			Points: func(g Grid, _ Cell) int { return len(g.SchedPolicies) },
			Apply:  func(g Grid, c *Cell, i int) { c.Sched = g.SchedPolicies[i] },
			Plural: "sched policies",
			Column: "sched_policy",
			Col:    func(c Cell) (string, any) { return c.Sched.String(), c.Sched.String() },
			Segment: func(c Cell) string {
				if c.Sched == cluster.SchedFCFS {
					return ""
				}
				return c.Sched.String()
			},
			NameOrder: 60,
		},
		{
			Key:  "nodes",
			Help: "compute-node counts",
			Parse: func(ps *specState, vals string) error {
				for _, v := range strings.Split(vals, ",") {
					n, err := strconv.Atoi(strings.TrimSpace(v))
					if err != nil || n <= 0 {
						return fmt.Errorf("sweep: bad node count %q", v)
					}
					ps.g.NodeCounts = append(ps.g.NodeCounts, n)
				}
				return nil
			},
			Format: func(g Grid) (string, error) {
				parts := make([]string, len(g.NodeCounts))
				for i, n := range g.NodeCounts {
					parts[i] = strconv.Itoa(n)
				}
				return strings.Join(parts, ","), nil
			},
			Points:    func(g Grid, _ Cell) int { return len(g.NodeCounts) },
			Apply:     func(g Grid, c *Cell, i int) { c.Nodes = g.NodeCounts[i] },
			Env:       func(c Cell) string { return fmt.Sprintf("n%d", c.Nodes) },
			Plural:    "node counts",
			Column:    "nodes",
			Col:       func(c Cell) (string, any) { return strconv.Itoa(c.Nodes), c.Nodes },
			Segment:   func(c Cell) string { return fmt.Sprintf("n%d", c.Nodes) },
			NameOrder: 30,
		},
		{
			Key:  "rates",
			Help: "Poisson arrival rates, jobs/hour",
			Parse: func(ps *specState, vals string) error {
				rates, err := parseFloats(strings.Split(vals, ","), 0)
				if err != nil {
					return fmt.Errorf("sweep: rates: %w", err)
				}
				for _, r := range rates {
					// Zero would silently fall through to the 4 jobs/hour
					// default; reject it instead of sweeping a phantom cell.
					if r <= 0 {
						return fmt.Errorf("sweep: rates must be positive, got %g", r)
					}
				}
				ps.rates = rates
				return nil
			},
			Format: func(g Grid) (string, error) {
				tg, err := traceGroupOf(g)
				if err != nil {
					return "", err
				}
				return joinFloats(tg.rates), nil
			},
		},
		{
			Key:  "winfracs",
			Help: "Windows demand shares (0..1)",
			Parse: func(ps *specState, vals string) error {
				wfs, err := parseFloats(strings.Split(vals, ","), 1)
				if err != nil {
					return fmt.Errorf("sweep: winfracs: %w", err)
				}
				ps.winfracs = wfs
				return nil
			},
			Format: func(g Grid) (string, error) {
				tg, err := traceGroupOf(g)
				if err != nil {
					return "", err
				}
				return joinFloats(tg.winfracs), nil
			},
		},
		{
			Key:    "hours",
			Help:   "submission window in hours (single value)",
			Single: true,
			Parse: func(ps *specState, vals string) error {
				h, err := strconv.ParseFloat(strings.TrimSpace(vals), 64)
				if err != nil || h <= 0 {
					return fmt.Errorf("sweep: bad hours %q", vals)
				}
				ps.hours = h
				return nil
			},
			Format: func(g Grid) (string, error) {
				tg, err := traceGroupOf(g)
				if err != nil {
					return "", err
				}
				return fmt.Sprintf("%g", tg.hours), nil
			},
		},
		{
			Key:    "traces",
			Help:   "trace kinds, crossed with rates/winfracs",
			Values: func() string { return strings.Join(TraceKindNames(), "|") },
			Parse: func(ps *specState, vals string) error {
				ps.kinds = ps.kinds[:0]
				for _, v := range strings.Split(vals, ",") {
					kp, err := parseTraceToken(strings.TrimSpace(v))
					if err != nil {
						return err
					}
					ps.kinds = append(ps.kinds, kp)
				}
				return nil
			},
			Format: func(g Grid) (string, error) {
				tg, err := traceGroupOf(g)
				if err != nil {
					return "", err
				}
				parts := make([]string, len(tg.kinds))
				for i, kp := range tg.kinds {
					parts[i] = kp.kind.String()
					if kp.kind == TraceSWF {
						parts[i] = "swf:" + kp.file
					}
				}
				return strings.Join(parts, ","), nil
			},
			Points:    func(g Grid, _ Cell) int { return len(g.Traces) },
			Apply:     func(g Grid, c *Cell, i int) { c.Trace = g.Traces[i] },
			Env:       func(c Cell) string { return c.Trace.Name },
			Plural:    "traces",
			Column:    "trace",
			Col:       func(c Cell) (string, any) { return c.Trace.Name, c.Trace.Name },
			Segment:   func(c Cell) string { return c.Trace.Name },
			NameOrder: 40,
		},
		{
			Key:    "swfmaxjobs",
			Help:   "SWF replay: keep only the first N records (single value; 0 = all)",
			Single: true,
			Parse: func(ps *specState, vals string) error {
				n, err := strconv.Atoi(strings.TrimSpace(vals))
				if err != nil || n < 0 {
					return fmt.Errorf("sweep: bad swfmaxjobs %q", vals)
				}
				ps.swfMaxJobs = n
				ps.bind("swfmaxjobs", TraceSWF)
				return nil
			},
			Format: func(g Grid) (string, error) {
				tg, err := traceGroupOf(g)
				if err != nil {
					return "", err
				}
				if !tg.hasKind(TraceSWF) || tg.swfMaxJobs == 0 {
					return "", nil
				}
				return strconv.Itoa(tg.swfMaxJobs), nil
			},
		},
		{
			Key:    "swfhours",
			Help:   "SWF replay: keep only the first window of submissions, hours (single value; 0 = all)",
			Single: true,
			Parse: func(ps *specState, vals string) error {
				h, err := strconv.ParseFloat(strings.TrimSpace(vals), 64)
				if err != nil || h < 0 {
					return fmt.Errorf("sweep: bad swfhours %q", vals)
				}
				ps.swfWindow = time.Duration(h * float64(time.Hour))
				ps.bind("swfhours", TraceSWF)
				return nil
			},
			Format: func(g Grid) (string, error) {
				tg, err := traceGroupOf(g)
				if err != nil {
					return "", err
				}
				if !tg.hasKind(TraceSWF) || tg.swfWindow == 0 {
					return "", nil
				}
				return fmt.Sprintf("%g", tg.swfWindow.Hours()), nil
			},
		},
		{
			Key:    "swfnodes",
			Help:   "SWF replay: rescale the log's widest job to N nodes (single value; 0 = keep)",
			Single: true,
			Parse: func(ps *specState, vals string) error {
				n, err := strconv.Atoi(strings.TrimSpace(vals))
				if err != nil || n < 0 {
					return fmt.Errorf("sweep: bad swfnodes %q", vals)
				}
				ps.swfNodes = n
				ps.bind("swfnodes", TraceSWF)
				return nil
			},
			Format: func(g Grid) (string, error) {
				tg, err := traceGroupOf(g)
				if err != nil {
					return "", err
				}
				if !tg.hasKind(TraceSWF) || tg.swfNodes == 0 {
					return "", nil
				}
				return strconv.Itoa(tg.swfNodes), nil
			},
		},
		{
			Key:    "swftime",
			Help:   "SWF replay: runtime field choice (single value)",
			Values: func() string { return "used|requested" },
			Single: true,
			Parse: func(ps *specState, vals string) error {
				switch strings.TrimSpace(vals) {
				case "used":
					ps.swfRequested = false
				case "requested":
					ps.swfRequested = true
				default:
					return fmt.Errorf("sweep: bad swftime %q (valid: used | requested)", vals)
				}
				ps.bind("swftime", TraceSWF)
				return nil
			},
			Format: func(g Grid) (string, error) {
				tg, err := traceGroupOf(g)
				if err != nil {
					return "", err
				}
				if !tg.hasKind(TraceSWF) || !tg.swfRequested {
					return "", nil
				}
				return "requested", nil
			},
		},
		{
			Key:    "mmppburst",
			Help:   "MMPP burst-state rate multiplier (single value; default 10)",
			Single: true,
			Parse: func(ps *specState, vals string) error {
				f, err := strconv.ParseFloat(strings.TrimSpace(vals), 64)
				if err != nil || f <= 0 {
					return fmt.Errorf("sweep: bad mmppburst %q", vals)
				}
				ps.mmppBurst = f
				ps.bind("mmppburst", TraceMMPP)
				return nil
			},
			Format: func(g Grid) (string, error) {
				tg, err := traceGroupOf(g)
				if err != nil {
					return "", err
				}
				if !tg.hasKind(TraceMMPP) || tg.mmppBurst == defaultMMPPBurst {
					return "", nil
				}
				return fmt.Sprintf("%g", tg.mmppBurst), nil
			},
		},
		{
			Key:    "mmppdwell",
			Help:   "MMPP mean state dwell, Go duration (single value; default 1h)",
			Single: true,
			Parse: func(ps *specState, vals string) error {
				d, err := time.ParseDuration(strings.TrimSpace(vals))
				if err != nil || d <= 0 {
					return fmt.Errorf("sweep: bad mmppdwell %q", vals)
				}
				ps.mmppDwell = d
				ps.bind("mmppdwell", TraceMMPP)
				return nil
			},
			Format: func(g Grid) (string, error) {
				tg, err := traceGroupOf(g)
				if err != nil {
					return "", err
				}
				if !tg.hasKind(TraceMMPP) || tg.mmppDwell == defaultMMPPDwell {
					return "", nil
				}
				return tg.mmppDwell.String(), nil
			},
		},
		{
			Key:    "users",
			Help:   "user-population size (single value; default 500)",
			Single: true,
			Parse: func(ps *specState, vals string) error {
				n, err := strconv.Atoi(strings.TrimSpace(vals))
				if err != nil || n <= 0 {
					return fmt.Errorf("sweep: bad users %q", vals)
				}
				ps.users = n
				ps.bind("users", TraceUsers)
				return nil
			},
			Format: func(g Grid) (string, error) {
				tg, err := traceGroupOf(g)
				if err != nil {
					return "", err
				}
				if !tg.hasKind(TraceUsers) || tg.users == defaultUsers {
					return "", nil
				}
				return strconv.Itoa(tg.users), nil
			},
		},
		{
			Key:    "think",
			Help:   "user-population mean think time, Go duration (single value; default 2h)",
			Single: true,
			Parse: func(ps *specState, vals string) error {
				d, err := time.ParseDuration(strings.TrimSpace(vals))
				if err != nil || d <= 0 {
					return fmt.Errorf("sweep: bad think %q", vals)
				}
				ps.think = d
				ps.bind("think", TraceUsers)
				return nil
			},
			Format: func(g Grid) (string, error) {
				tg, err := traceGroupOf(g)
				if err != nil {
					return "", err
				}
				if !tg.hasKind(TraceUsers) || tg.think == defaultThink {
					return "", nil
				}
				return tg.think.String(), nil
			},
		},
		{
			Key:  "failrates",
			Help: "per-boot failure probabilities (0..1)",
			Parse: func(ps *specState, vals string) error {
				frs, err := parseFloats(strings.Split(vals, ","), 1)
				if err != nil {
					return fmt.Errorf("sweep: failrates: %w", err)
				}
				ps.g.FailureRates = frs
				return nil
			},
			Format: func(g Grid) (string, error) {
				return joinFloats(g.FailureRates), nil
			},
			Points:    func(g Grid, _ Cell) int { return len(g.FailureRates) },
			Apply:     func(g Grid, c *Cell, i int) { c.FailureRate = g.FailureRates[i] },
			Env:       func(c Cell) string { return fmt.Sprintf("f%g", c.FailureRate) },
			Plural:    "failure rates",
			Column:    "failure_rate",
			Col:       func(c Cell) (string, any) { return fmt.Sprintf("%g", c.FailureRate), c.FailureRate },
			Segment:   func(c Cell) string { return fmt.Sprintf("f%g", c.FailureRate) },
			NameOrder: 50,
		},
		{
			Key:    "topologies",
			Help:   "fabric presets",
			Values: func() string { return strings.Join(TopologyNames(), "|") },
			Parse: func(ps *specState, vals string) error {
				for _, v := range strings.Split(vals, ",") {
					t, err := TopologyByName(strings.TrimSpace(v))
					if err != nil {
						return err
					}
					ps.g.Topologies = append(ps.g.Topologies, t)
				}
				return nil
			},
			Format: func(g Grid) (string, error) {
				parts := make([]string, len(g.Topologies))
				for i, t := range g.Topologies {
					t = t.withDefaults()
					preset, err := TopologyByName(t.Name)
					if err != nil || !topologiesEqual(preset, t) {
						return "", fmt.Errorf("sweep: topology %q is not a named preset; not expressible in spec notation", t.Name)
					}
					parts[i] = t.Name
				}
				return strings.Join(parts, ","), nil
			},
			Points: func(g Grid, _ Cell) int { return len(g.Topologies) },
			Apply:  func(g Grid, c *Cell, i int) { c.Topology = g.Topologies[i] },
			Env: func(c Cell) string {
				if c.Topology.IsGrid() {
					return "topo:" + c.Topology.Name
				}
				return ""
			},
			Plural: "topologies",
			Column: "topology",
			Col:    func(c Cell) (string, any) { return c.Topology.Name, c.Topology.Name },
			Segment: func(c Cell) string {
				if c.Topology.IsGrid() {
					return c.Topology.Name
				}
				return ""
			},
			NameOrder: 70,
		},
		{
			Key:    "routings",
			Help:   "campus routing policies",
			Values: func() string { return strings.Join(RoutingNames(), "|") },
			Parse: func(ps *specState, vals string) error {
				for _, v := range strings.Split(vals, ",") {
					r, err := grid.ParsePolicy(strings.TrimSpace(v))
					if err != nil {
						return fmt.Errorf("sweep: %w", err)
					}
					ps.g.Routings = append(ps.g.Routings, r)
				}
				return nil
			},
			Format: func(g Grid) (string, error) {
				parts := make([]string, len(g.Routings))
				for i, r := range g.Routings {
					parts[i] = r.String()
				}
				return strings.Join(parts, ","), nil
			},
			// Single-cluster cells have no router, so they expand
			// against the first routing alone instead of duplicating.
			Points: func(g Grid, c Cell) int {
				if !c.Topology.IsGrid() {
					return 1
				}
				return len(g.Routings)
			},
			Apply:  func(g Grid, c *Cell, i int) { c.Routing = g.Routings[i] },
			Plural: "routings",
			Column: "routing",
			Col: func(c Cell) (string, any) {
				if !c.Topology.IsGrid() {
					return "", ""
				}
				return c.Routing.String(), c.Routing.String()
			},
			OmitEmptyJSON: true,
			Segment: func(c Cell) string {
				if c.Topology.IsGrid() {
					return c.Routing.String()
				}
				return ""
			},
			NameOrder: 80,
		},
		{
			Key:  "switchlat",
			Help: "per-cell OS switch-latency targets, Go durations (0s = stock model)",
			Defaults: func(g *Grid) {
				if len(g.SwitchLatencies) == 0 {
					g.SwitchLatencies = []time.Duration{0}
				}
			},
			Parse: func(ps *specState, vals string) error {
				for _, v := range strings.Split(vals, ",") {
					d, err := time.ParseDuration(strings.TrimSpace(v))
					if err != nil || d < 0 {
						return fmt.Errorf("sweep: bad switch latency %q", v)
					}
					ps.g.SwitchLatencies = append(ps.g.SwitchLatencies, d)
				}
				return nil
			},
			Format: func(g Grid) (string, error) {
				if len(g.SwitchLatencies) == 1 && g.SwitchLatencies[0] == 0 {
					return "", nil // the stock default; omit the key
				}
				parts := make([]string, len(g.SwitchLatencies))
				for i, d := range g.SwitchLatencies {
					parts[i] = d.String()
				}
				return strings.Join(parts, ","), nil
			},
			Points: func(g Grid, _ Cell) int { return len(g.SwitchLatencies) },
			Apply:  func(g Grid, c *Cell, i int) { c.SwitchLat = g.SwitchLatencies[i] },
			Plural: "switch latencies",
			Quiet:  true,
			Column: "switch_latency_sec",
			// %g keeps fractional-second targets lossless (and agrees
			// with the JSON value), matching the failure_rate column.
			Col:            func(c Cell) (string, any) { return fmt.Sprintf("%g", c.SwitchLat.Seconds()), c.SwitchLat.Seconds() },
			ColumnOptional: true,
			ColumnActive:   func(c Cell) bool { return c.SwitchLat > 0 },
			Segment: func(c Cell) string {
				if c.SwitchLat > 0 {
					return "sl" + c.SwitchLat.String()
				}
				return ""
			},
			NameOrder: 90,
			Configure: func(c Cell, sc *core.Scenario) {
				if m := SwitchLatencyModel(c.SwitchLat); m != nil {
					sc.Latency = m
				}
			},
		},
		{
			Key:    "seed",
			Help:   "base seed (single value)",
			Single: true,
			Parse: func(ps *specState, vals string) error {
				s, err := strconv.ParseInt(strings.TrimSpace(vals), 10, 64)
				if err != nil {
					return fmt.Errorf("sweep: bad seed %q", vals)
				}
				ps.g.BaseSeed = s
				return nil
			},
			Format: func(g Grid) (string, error) {
				if g.BaseSeed == 0 {
					return "", nil
				}
				return strconv.FormatInt(g.BaseSeed, 10), nil
			},
			Column: "seed",
			Col:    func(c Cell) (string, any) { return strconv.FormatInt(c.Seed, 10), c.Seed },
		},
		{
			Key:    "cycle",
			Help:   "controller cycle, Go duration (single value)",
			Single: true,
			Parse: func(ps *specState, vals string) error {
				d, err := time.ParseDuration(strings.TrimSpace(vals))
				if err != nil || d <= 0 {
					return fmt.Errorf("sweep: bad cycle %q", vals)
				}
				ps.g.Cycle = d
				return nil
			},
			Format: func(g Grid) (string, error) {
				if g.Cycle <= 0 {
					return "", nil
				}
				return g.Cycle.String(), nil
			},
		},
		{
			Key:    "horizon",
			Help:   "per-cell virtual-time bound, Go duration (single value; default: trace span + 48h)",
			Single: true,
			Parse: func(ps *specState, vals string) error {
				d, err := time.ParseDuration(strings.TrimSpace(vals))
				if err != nil || d <= 0 {
					return fmt.Errorf("sweep: bad horizon %q", vals)
				}
				ps.g.Horizon = d
				return nil
			},
			Format: func(g Grid) (string, error) {
				if g.Horizon <= 0 {
					return "", nil
				}
				return g.Horizon.String(), nil
			},
		},
	}
}

// topologiesEqual compares a preset with a grid's topology point
// (members carry no functions, so field equality is behavioural
// equality).
func topologiesEqual(a, b TopologySpec) bool {
	if a.Name != b.Name || len(a.Members) != len(b.Members) {
		return false
	}
	for i := range a.Members {
		if a.Members[i] != b.Members[i] {
			return false
		}
	}
	return true
}
