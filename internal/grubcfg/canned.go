package grubcfg

import (
	"fmt"

	"repro/internal/osid"
)

// The builders below generate the exact configuration artifacts the
// paper deploys: the MBR-side redirect menu (Figure 2), the FAT-side
// control menu (Figure 3), and the pre-staged controlmenu_to_<os>.lst
// variants that the v1 batch scripts rename into place.

// LinuxEntrySpec describes the installed Linux system for menu
// generation.
type LinuxEntrySpec struct {
	Title      string
	BootDev    DeviceRef // partition holding /vmlinuz (the /boot partition)
	KernelPath string
	KernelArgs string
	InitrdPath string
}

// DefaultLinuxEntry matches the Eridani install: CentOS 5.4 with
// OSCAR 5.1b2, /boot on /dev/sda2, root filesystem on /dev/sda7.
func DefaultLinuxEntry() LinuxEntrySpec {
	return LinuxEntrySpec{
		Title:      "CentOS-5.4_Oscar-5b2-linux",
		BootDev:    DeviceRef{Disk: 0, Partition: 1},
		KernelPath: "/vmlinuz-2.6.18-164.el5",
		KernelArgs: "ro root=/dev/sda7 enforcing=0",
		InitrdPath: "/sc-initrd-2.6.18-164.el5.gz",
	}
}

// Entry builds the menu entry for the spec.
func (s LinuxEntrySpec) Entry() *Entry {
	kernel := s.KernelPath
	if s.KernelArgs != "" {
		kernel += " " + s.KernelArgs
	}
	cmds := []Command{
		{Name: "root", Args: s.BootDev.String()},
		{Name: "kernel", Args: kernel},
	}
	if s.InitrdPath != "" {
		cmds = append(cmds, Command{Name: "initrd", Args: s.InitrdPath})
	}
	return &Entry{Title: s.Title, Commands: cmds}
}

// WindowsEntrySpec describes the chainloaded Windows system.
type WindowsEntrySpec struct {
	Title   string
	BootDev DeviceRef // the NTFS partition, normally (hd0,0)
}

// DefaultWindowsEntry matches the Eridani install: Windows Server 2008
// R2 on the first primary partition.
func DefaultWindowsEntry() WindowsEntrySpec {
	return WindowsEntrySpec{
		Title:   "Win_Server_2K8_R2-windows",
		BootDev: DeviceRef{Disk: 0, Partition: 0},
	}
}

// Entry builds the chainload entry for the spec.
func (s WindowsEntrySpec) Entry() *Entry {
	return &Entry{Title: s.Title, Commands: []Command{
		{Name: "rootnoverify", Args: s.BootDev.String()},
		{Name: "chainloader", Args: "+1"},
	}}
}

// ControlMenu builds the Figure-3 controlmenu.lst: both OS entries
// with the default pointing at the requested side.
func ControlMenu(linux LinuxEntrySpec, windows WindowsEntrySpec, defaultOS osid.OS) (*Config, error) {
	cfg := New()
	cfg.HasDefault = true
	cfg.Timeout = 10
	cfg.SplashImage = "(hd0,1)/grub/splash.xpm.gz"
	cfg.Entries = []*Entry{linux.Entry(), windows.Entry()}
	if err := cfg.SetDefaultOS(defaultOS); err != nil {
		return nil, err
	}
	return cfg, nil
}

// RedirectMenu builds the Figure-2 menu.lst that lives in the Linux
// /boot partition and immediately hands control to the shared FAT
// partition's control file.
func RedirectMenu(fatDev DeviceRef, controlPath string) *Config {
	cfg := New()
	cfg.HasDefault = true
	cfg.Default = 0
	cfg.Timeout = 5
	cfg.SplashImage = "(hd0,1)/grub/splash.xpm.gz"
	cfg.HiddenMenu = true
	cfg.Entries = []*Entry{{
		Title: "changing to control file",
		Commands: []Command{
			{Name: "root", Args: fatDev.String()},
			{Name: "configfile", Args: controlPath},
		},
	}}
	return cfg
}

// PXEMenu builds the v2 network menu served by GRUB4DOS from the head
// node. Linux boots over TFTP; Windows chainloads the local disk.
func PXEMenu(linux LinuxEntrySpec, windows WindowsEntrySpec, defaultOS osid.OS) (*Config, error) {
	cfg := New()
	cfg.HasDefault = true
	cfg.Timeout = 3
	net := linux
	net.KernelPath = "(pd)" + linux.KernelPath // GRUB4DOS PXE device syntax
	if net.InitrdPath != "" {
		net.InitrdPath = "(pd)" + linux.InitrdPath
	}
	// The PXE Linux entry still uses a local root filesystem; only the
	// kernel/initrd come from TFTP. GRUB4DOS resolves (pd) itself, so
	// the entry needs no root command.
	e := &Entry{Title: net.Title, Commands: []Command{
		{Name: "kernel", Args: net.KernelPath + " " + linux.KernelArgs},
	}}
	if net.InitrdPath != "" {
		e.Commands = append(e.Commands, Command{Name: "initrd", Args: net.InitrdPath})
	}
	cfg.Entries = []*Entry{e, windows.Entry()}
	if err := cfg.SetDefaultOS(defaultOS); err != nil {
		return nil, err
	}
	return cfg, nil
}

// ControlFileName is the live GRUB control file on the FAT partition.
const ControlFileName = "/controlmenu.lst"

// StagedControlFileName returns the pre-staged variant name for an OS
// ("/controlmenu_to_linux.lst"), the files the v1 batch scripts rename
// into place to avoid running Perl on Windows nodes.
func StagedControlFileName(os osid.OS) string {
	return fmt.Sprintf("/controlmenu_to_%s.lst", os)
}
