// Package cluster assembles the full hybrid system: simulated compute
// nodes with dual-boot disks, the PBS and Windows HPC head nodes, the
// PXE service (v2), the communicator bus and the dual-boot controller.
// It is the "Eridani" of this reproduction — the 16-node, 64-core
// cluster the paper deployed dualboot-oscar on — and implements the
// controller's Gateway with the generation-specific switch mechanism:
//
//   - v1: the switch batch job books a full node through the donor
//     scheduler, swaps the FAT partition's controlmenu.lst and reboots
//     (paper §III-B);
//   - v2: the controller flips the cluster-wide PXE target-OS flag
//     once and submits plain reboot jobs (paper §IV-A).
//
// Static-split and mono-stable baselines share the same assembly with
// the controller disabled or configured to return nodes home.
package cluster

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/bootmgr"
	"repro/internal/comm"
	"repro/internal/controller"
	"repro/internal/deploy"
	"repro/internal/detector"
	"repro/internal/grubcfg"
	"repro/internal/hardware"
	"repro/internal/metrics"
	"repro/internal/oscar"
	"repro/internal/osid"
	"repro/internal/pbs"
	"repro/internal/pxe"
	"repro/internal/simtime"
	"repro/internal/winhpc"
)

// Mode selects the cluster organisation under test.
type Mode uint8

const (
	// HybridV1 is dualboot-oscar 1.0: FAT control file, per-node
	// switch jobs, GRUB in the MBR.
	HybridV1 Mode = iota
	// HybridV2 is dualboot-oscar 2.0: PXE flag, plain reboot jobs.
	HybridV2
	// Static is the baseline the paper's introduction argues against:
	// the cluster divided into fixed Linux and Windows sub-clusters.
	Static
	// MonoStable is the AHM2010 comparison system: nodes rest in Linux
	// and are booted to Windows per demand burst, returning home as
	// soon as the Windows queue drains.
	MonoStable
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case HybridV1:
		return "hybrid-v1"
	case HybridV2:
		return "hybrid-v2"
	case Static:
		return "static-split"
	case MonoStable:
		return "mono-stable"
	default:
		return "unknown"
	}
}

// Config parameterises the cluster. Zero values reproduce Eridani.
type Config struct {
	Mode         Mode
	Nodes        int // default 16
	CoresPerNode int // default 4
	// InitialLinux nodes boot into Linux at time zero; the rest run
	// Windows. Zero means half; a negative value pins every node to
	// Windows (the only way to express a Windows-only static split).
	InitialLinux int
	// Cycle is the controller's reporting interval (default 10m).
	Cycle time.Duration
	// Policy overrides the controller decision rule (default FCFS).
	Policy controller.Policy
	// SchedPolicy selects both head schedulers' queue discipline:
	// strict FCFS (the default, the paper's deployment) or
	// reservation-based EASY backfill.
	SchedPolicy SchedPolicy
	// Latency overrides the boot timing model.
	Latency *bootmgr.LatencyModel
	// BusLatency is the head-node link latency (default 1ms).
	BusLatency time.Duration
	// SwitchJobRuntime is the switch job's occupancy (the paper's
	// script sleeps 10 seconds so the reboot outruns job exit).
	SwitchJobRuntime time.Duration
	// BootFailureProb is the probability that any one OS switch's
	// boot attempt suffers a hardware fault, leaving the node broken
	// and out of service (0 = the seed's fault-free behaviour). Drawn
	// from the cluster's seeded RNG, so runs stay deterministic; the
	// sweep subsystem uses it as its failure-rate axis.
	BootFailureProb float64
	// PerMACBoot selects v2's *initial* design (Figure 12): one PXE
	// menu per node MAC, written when the switch job learns which
	// machine it booked. The default is the final single-flag design
	// (Figure 13). Ignored for HybridV1.
	PerMACBoot bool
	Seed       int64
	// Engine, when non-nil, runs this cluster on a shared virtual
	// clock — the campus-grid layer schedules several clusters on one
	// engine. Nil creates a private engine.
	Engine *simtime.Engine
	// NamePrefix distinguishes node and head names when several
	// clusters coexist on a grid ("eridani-", "tauceti-", ...).
	NamePrefix string
}

func (c *Config) applyDefaults() {
	if c.Nodes <= 0 {
		c.Nodes = 16
	}
	if c.CoresPerNode <= 0 {
		c.CoresPerNode = 4
	}
	switch {
	case c.InitialLinux < 0:
		c.InitialLinux = 0 // all-Windows split
	case c.InitialLinux == 0 || c.InitialLinux > c.Nodes:
		c.InitialLinux = c.Nodes / 2
	}
	if c.Cycle <= 0 {
		c.Cycle = 10 * time.Minute
	}
	if c.BusLatency <= 0 {
		c.BusLatency = time.Millisecond
	}
	if c.SwitchJobRuntime <= 0 {
		c.SwitchJobRuntime = 10 * time.Second
	}
	if c.Latency == nil {
		m := bootmgr.DefaultLatencyModel()
		c.Latency = &m
	}
}

// Node is one compute node plus its dual-boot state.
type Node struct {
	HW        *hardware.Node
	OS        osid.OS // current side; None while switching
	Target    osid.OS // boot target while switching
	Switching bool
	Broken    bool // boot chain failed; node out of service

	// pbsNode / winNode cache the node's scheduler registrations (nil
	// on a side a static split never registered), so per-cycle idle
	// censuses skip the name lookups.
	pbsNode *pbs.Node
	winNode *winhpc.Node
}

// Event is a timestamped log line.
type Event struct {
	At   time.Duration
	What string
}

// Cluster is the assembled system.
type Cluster struct {
	Eng *simtime.Engine
	PBS *pbs.Server
	Win *winhpc.Scheduler
	PXE *pxe.Service // nil except v2
	Bus *comm.Bus
	Mgr *controller.Manager // nil in static mode
	Rec *metrics.Recorder

	cfg     Config
	nodes   []*Node
	byName  map[string]*Node
	rng     *rand.Rand
	pbsDet  detector.Detector
	winDet  detector.Detector
	pending map[osid.OS]int // outstanding switch orders by donor side
	arrived map[osid.OS]int // cumulative CPU demand submitted per side

	// controlActions counts mechanism writes: FAT control-file edits
	// (v1) or PXE flag sets (v2). E8 compares these across versions.
	controlActions int
	events         []Event
	submitted      map[string]bool // workload job IDs awaiting completion
	unfinished     int
	toSubmit       int     // trace jobs scheduled but not yet submitted
	hooks          []Hooks // lifecycle observers (see run.go)
}

// New builds and provisions a cluster. Every node's disk is actually
// deployed: Windows via diskpart (Figures 10/15 semantics) and Linux
// via the OSCAR image for the configured generation, so OS switches
// run through the real boot-chain interpreter.
func New(cfg Config) (*Cluster, error) {
	cfg.applyDefaults()
	eng := cfg.Engine
	if eng == nil {
		eng = simtime.NewEngine()
	}
	fqdn := "eridani.qgg.hud.ac.uk"
	winHead := "WINHEAD"
	if cfg.NamePrefix != "" {
		fqdn = cfg.NamePrefix + ".qgg.hud.ac.uk"
		winHead = cfg.NamePrefix + "-WINHEAD"
	}
	c := &Cluster{
		Eng:       eng,
		PBS:       pbs.NewServer(eng, fqdn),
		Win:       winhpc.NewScheduler(eng, winHead),
		Bus:       comm.NewBus(eng, cfg.BusLatency),
		cfg:       cfg,
		byName:    make(map[string]*Node),
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		pending:   map[osid.OS]int{},
		arrived:   map[osid.OS]int{},
		submitted: map[string]bool{},
	}
	c.Rec = metrics.NewRecorder(eng.Now, cfg.Nodes*cfg.CoresPerNode)
	if cfg.SchedPolicy == SchedBackfill {
		c.PBS.Backfill = true
		c.Win.Backfill = true
	}
	c.pbsDet = detector.NewPBSDetector(c.PBS)
	c.winDet = detector.NewWinHPCDetector(c.Win)

	// Every v2-generation organisation boots through PXE; only v1
	// stays on local MBR GRUB. The static split also runs v2
	// deployment (it just never flips the flag).
	if cfg.Mode != HybridV1 {
		pxeMode := pxe.ModeFlag
		if cfg.PerMACBoot {
			pxeMode = pxe.ModePerMAC
		}
		svc, err := pxe.NewService(pxe.Config{Mode: pxeMode, InitialOS: osid.Linux})
		if err != nil {
			return nil, err
		}
		c.PXE = svc
	}

	if err := c.provisionNodes(); err != nil {
		return nil, err
	}
	c.wireSchedulers()

	switch cfg.Mode {
	case Static:
		// no controller
	default:
		c.Mgr = controller.NewManager(eng, c.Bus, c, controller.Config{
			Cycle:  cfg.Cycle,
			Policy: cfg.Policy,
		})
		c.Mgr.Start()
	}
	return c, nil
}

// provisionNodes deploys every compute node's disk and registers it
// with both schedulers (available only on its starting side).
func (c *Cluster) provisionNodes() error {
	version := oscar.V1
	layoutText := deploy.V1IdeDisk
	dpScript := deploy.V1Diskpart
	if c.cfg.Mode != HybridV1 {
		version = oscar.V2
		layoutText = deploy.V2IdeDisk
		dpScript = deploy.V2InitialDiskpart
	}
	layout, err := deploy.ParseIdeDisk(layoutText)
	if err != nil {
		return err
	}
	img, err := oscar.BuildImage("oscarimage", version, layout)
	if err != nil {
		return err
	}
	dp, err := deploy.ParseDiskpart(dpScript)
	if err != nil {
		return err
	}

	for i := 1; i <= c.cfg.Nodes; i++ {
		name := fmt.Sprintf("%senode%02d", nodePrefix(c.cfg.NamePrefix), i)
		hw := hardware.NewNode(hardware.NodeSpec{
			Name:     name,
			Index:    i + macOffset(c.cfg.NamePrefix),
			Cores:    c.cfg.CoresPerNode,
			PXEFirst: c.cfg.Mode != HybridV1,
		})
		// Windows first (v1 ordering requirement), then Linux on top.
		if _, err := deploy.DeployWindows(hw, dp); err != nil {
			return fmt.Errorf("cluster: %s: %w", name, err)
		}
		if _, err := oscar.DeployNode(hw, img); err != nil {
			return fmt.Errorf("cluster: %s: %w", name, err)
		}

		startOS := osid.Windows
		if i <= c.cfg.InitialLinux {
			startOS = osid.Linux
		}
		if c.cfg.Mode == HybridV1 {
			// Point the node's FAT control file at its starting OS.
			if err := c.setV1ControlFile(hw, startOS); err != nil {
				return err
			}
		}
		if c.PXE != nil {
			if err := c.PXE.RegisterNode(hw.Addr); err != nil {
				return err
			}
			// Per-MAC menus start pointing at the node's own OS so an
			// unrelated reboot does not move it (the per-node property
			// the Figure-12 design buys).
			if c.PXE.Mode() == pxe.ModePerMAC {
				if err := c.PXE.SetNodeOS(hw.Addr, startOS); err != nil {
					return err
				}
			}
		}

		hw.Power = hardware.PowerOn
		hw.BootedOS = startOS
		node := &Node{HW: hw, OS: startOS}
		c.nodes = append(c.nodes, node)
		c.byName[name] = node

		// A static split is literally two separate clusters: each
		// scheduler only knows its own nodes. Hybrids register every
		// node with both heads (down on the side it is not booted in).
		if c.cfg.Mode != Static || startOS == osid.Linux {
			pn, err := c.PBS.AddNode(name, c.cfg.CoresPerNode, startOS == osid.Linux)
			if err != nil {
				return err
			}
			node.pbsNode = pn
		}
		if c.cfg.Mode != Static || startOS == osid.Windows {
			wn, err := c.Win.AddNode(name, c.cfg.CoresPerNode, startOS == osid.Windows)
			if err != nil {
				return err
			}
			node.winNode = wn
		}
		c.Rec.NodeUp(startOS)
	}
	return nil
}

func nodePrefix(p string) string {
	if p == "" {
		return ""
	}
	return p + "-"
}

// macOffset keeps MAC addresses unique across grid members.
func macOffset(prefix string) int {
	h := 0
	for _, r := range prefix {
		h = h*31 + int(r)
	}
	if h < 0 {
		h = -h
	}
	return (h % 251) * 1000
}

// setV1ControlFile rewrites a node's FAT controlmenu.lst to boot the
// target OS (copying the pre-staged variant into place, as the batch
// scripts do).
func (c *Cluster) setV1ControlFile(hw *hardware.Node, target osid.OS) error {
	fat, err := c.v1FATPartition(hw)
	if err != nil {
		return err
	}
	if fat.HasFile(grubcfg.ControlFileName) {
		if err := fat.RemoveFile(grubcfg.ControlFileName); err != nil {
			return err
		}
	}
	return fat.CopyFile(grubcfg.StagedControlFileName(target), grubcfg.ControlFileName)
}

// v1FATPartition locates the shared FAT control partition.
func (c *Cluster) v1FATPartition(hw *hardware.Node) (*hardware.Partition, error) {
	for _, p := range hw.Disk.Partitions() {
		if p.Type == hardware.FSFAT {
			return p, nil
		}
	}
	return nil, fmt.Errorf("cluster: %s has no FAT control partition", hw.Name)
}

// wireSchedulers connects job lifecycle hooks to the metrics
// recorder. A job only counts as ok when it genuinely completed: a
// PBS job that died mid-run from node loss reports Failed (a previous
// revision recorded it as ok, so a job that died counted as
// successfully completed in every utilisation/completion metric), and
// requeued rerunnable jobs suspend busy-core integration until their
// next attempt starts.
func (c *Cluster) wireSchedulers() {
	c.PBS.OnJobStart = func(j *pbs.Job) { c.Rec.JobStarted(j.ID) }
	c.PBS.OnJobRequeue = func(j *pbs.Job) { c.Rec.JobInterrupted(j.ID) }
	c.PBS.OnJobEnd = func(j *pbs.Job) {
		ok := !j.KilledAtWalltime() && !j.Failed()
		c.Rec.JobEnded(j.ID, ok)
		c.markDone(j.ID, ok)
	}
	c.Win.OnJobStart = func(j *winhpc.Job) { c.Rec.JobStarted(winJobID(j.ID)) }
	c.Win.OnJobRequeue = func(j *winhpc.Job) { c.Rec.JobInterrupted(winJobID(j.ID)) }
	c.Win.OnJobEnd = func(j *winhpc.Job) {
		ok := j.State == winhpc.JobFinished
		c.Rec.JobEnded(winJobID(j.ID), ok)
		c.markDone(winJobID(j.ID), ok)
		if c.cfg.Mode == MonoStable {
			c.returnNodesHome()
		}
	}
}

func winJobID(id int) string { return fmt.Sprintf("W%d", id) }

func (c *Cluster) markDone(id string, completed bool) {
	if c.submitted[id] {
		delete(c.submitted, id)
		c.unfinished--
		c.notifyJobCompleted(id, completed)
	}
}

// returnNodesHome implements mono-stable behaviour: once the Windows
// queue is empty, every idle Windows node reboots back to Linux.
func (c *Cluster) returnNodesHome() {
	if snap := c.Win.Snapshot(); snap.Queued > 0 || snap.Running > 0 {
		return
	}
	var idle []*Node
	for _, n := range c.nodes {
		if n.OS == osid.Windows && !n.Switching && c.nodeIdle(n) {
			idle = append(idle, n)
		}
	}
	if len(idle) == 0 {
		return
	}
	// The boot configuration must point home before the reboots, or
	// the nodes would come straight back up in Windows.
	if err := c.pointBootConfig(idle, osid.Linux); err != nil {
		c.logf("mono-stable: boot config reset failed: %v", err)
		return
	}
	for _, n := range idle {
		c.logf("mono-stable: returning %s to linux", n.HW.Name)
		c.beginSwitch(n.HW.Name, osid.Linux)
	}
}

// pointBootConfig aims the version-appropriate boot mechanism of the
// given nodes at the target OS: v1 FAT files, v2 per-MAC menus, or the
// v2 cluster-wide flag (one action regardless of node count).
func (c *Cluster) pointBootConfig(nodes []*Node, target osid.OS) error {
	switch {
	case c.cfg.Mode == HybridV1:
		for _, n := range nodes {
			if err := c.setV1ControlFile(n.HW, target); err != nil {
				return err
			}
			c.controlActions++
		}
	case c.PXE != nil && c.PXE.Mode() == pxe.ModePerMAC:
		for _, n := range nodes {
			if err := c.PXE.SetNodeOS(n.HW.Addr, target); err != nil {
				return err
			}
			c.controlActions++
		}
	case c.PXE != nil:
		if c.PXE.Flag() != target {
			if err := c.PXE.SetFlag(target); err != nil {
				return err
			}
			c.controlActions++
		}
	}
	return nil
}

// nodeIdle reports whether the node has no busy CPUs on its side.
func (c *Cluster) nodeIdle(n *Node) bool {
	switch n.OS {
	case osid.Linux:
		pn := n.pbsNode
		return pn != nil && pn.UsedCPUs() == 0 && pn.State() == pbs.NodeFree
	case osid.Windows:
		wn := n.winNode
		return wn != nil && wn.UsedCores() == 0 && wn.State() == winhpc.NodeOnline
	default:
		return false
	}
}

func (c *Cluster) logf(format string, args ...any) {
	c.events = append(c.events, Event{At: c.Eng.Now(), What: fmt.Sprintf(format, args...)})
}

// Events returns the event log.
func (c *Cluster) Events() []Event { return append([]Event(nil), c.events...) }

// ControlActions returns mechanism writes performed so far (FAT edits
// for v1, PXE flag sets for v2).
func (c *Cluster) ControlActions() int { return c.controlActions }

// Nodes returns the node table.
func (c *Cluster) Nodes() []*Node { return append([]*Node(nil), c.nodes...) }

// NodesOn counts nodes currently booted into an OS.
func (c *Cluster) NodesOn(os osid.OS) int {
	n := 0
	for _, node := range c.nodes {
		if node.OS == os && !node.Switching {
			n++
		}
	}
	return n
}

// SwitchingCount counts nodes mid-switch.
func (c *Cluster) SwitchingCount() int {
	n := 0
	for _, node := range c.nodes {
		if node.Switching {
			n++
		}
	}
	return n
}

// BrokenCount counts nodes whose boot chain failed.
func (c *Cluster) BrokenCount() int {
	n := 0
	for _, node := range c.nodes {
		if node.Broken {
			n++
		}
	}
	return n
}

// Config returns the effective configuration.
func (c *Cluster) Config() Config { return c.cfg }
