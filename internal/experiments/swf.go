// E19 replays a committed Standard Workload Format log through the
// sweep subsystem — the first experiment fed by the trace-file side of
// the workload layer rather than a synthetic generator. The fixture
// (specs/pwa_sample_1k.swf) is a synthetic ~1000-job log in PWA
// format: ~60% offered load on a 16-node (64-processor) machine with
// occasional wide head-blockers, so FCFS and EASY backfill separate
// cleanly. Replaying it against both disciplines pins the whole SWF
// path — header parsing, sentinel fallbacks, processor folding and the
// deterministic platform assignment — into the golden CSV and the
// bench gate.
package experiments

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/sweep"
)

// E19Grid is the SWF replay: the committed fixture on a 16-node hybrid
// cluster, FCFS vs EASY backfill. The path is repo-root relative; the
// sweep resolves it against the working directory and its ancestors,
// so the document replays from the repo root and from package test
// directories alike. Exported so the grid travels as a committed spec
// document (see SpecFiles) and CI can replay it.
func E19Grid() sweep.Grid {
	return sweep.Grid{
		Modes:         []cluster.Mode{cluster.HybridV2},
		SchedPolicies: []cluster.SchedPolicy{cluster.SchedFCFS, cluster.SchedBackfill},
		NodeCounts:    []int{16},
		Traces: []sweep.TraceSpec{
			{Kind: sweep.TraceSWF, SWFFile: "specs/pwa_sample_1k.swf", WindowsFrac: 0.3},
		},
		BaseSeed: 1900,
		Cycle:    5 * time.Minute,
	}
}

// E19SWFReplay runs the SWF replay and ranks the cells — the E16 table
// shape on a recorded-format workload instead of a drawn one.
func E19SWFReplay() (Table, error) {
	g := E19Grid()
	out, err := sweep.Run(sweep.Config{Grid: g})
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:        "E19",
		Title:     "SWF replay: committed PWA-format log, FCFS vs EASY backfill",
		Header:    sweep.Header(),
		EventsRun: sumEvents(out),
		Notes: fmt.Sprintf("%s; ~1k jobs over ~6.5 days at ~60%% offered load; platform split hashed per job (30%% Windows)",
			g.Describe()),
	}
	for i, r := range out.Ranked() {
		if r.Err != nil {
			return t, r.Err
		}
		t.Rows = append(t.Rows, sweep.Row(i+1, r))
	}
	return t, nil
}
