package analysis

import (
	"go/parser"
	"go/token"
	"testing"
)

func parseForDirectives(t *testing.T, src string) (*token.FileSet, *directiveSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "d.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, parseDirectives(fset, f, []byte(src))
}

func TestDirectivePlacement(t *testing.T) {
	src := `package p

func f() {
	_ = 1 //simlint:allow walltime -- end-of-line covers line 4
	//simlint:allow maporder -- standalone covers line 6
	_ = 2
}
`
	_, ds := parseForDirectives(t, src)
	if !ds.allows("walltime", 4) {
		t.Error("end-of-line directive must cover its own line")
	}
	if ds.allows("walltime", 5) || ds.allows("walltime", 6) {
		t.Error("end-of-line directive must not leak to other lines")
	}
	if !ds.allows("maporder", 6) {
		t.Error("standalone directive must cover the following line")
	}
	if ds.allows("maporder", 5) {
		t.Error("standalone directive must not cover its own line")
	}
	if ds.allows("globalrand", 4) {
		t.Error("directive must only silence the analyzers it names")
	}
}

func TestDirectiveListAndAll(t *testing.T) {
	src := `package p

func f() {
	_ = 1 //simlint:allow walltime, globalrand -- list with spaces
	_ = 2 //simlint:allow all -- everything
}
`
	_, ds := parseForDirectives(t, src)
	for _, name := range []string{"walltime", "globalrand"} {
		if !ds.allows(name, 4) {
			t.Errorf("comma list must cover %s", name)
		}
	}
	if ds.allows("maporder", 4) {
		t.Error("comma list must not cover unnamed analyzers")
	}
	for _, name := range []string{"walltime", "globalrand", "maporder", "fieldsync"} {
		if !ds.allows(name, 5) {
			t.Errorf("allow all must cover %s", name)
		}
	}
}

func TestDirectiveRequiresReason(t *testing.T) {
	src := `package p

func f() {
	_ = 1 //simlint:allow walltime
	_ = 2 //simlint:allow -- reason with no analyzer names
	_ = 3 //simlint:allowance is some other tool's business
}
`
	_, ds := parseForDirectives(t, src)
	if len(ds.malformed) != 2 {
		t.Fatalf("expected 2 malformed directives, got %d: %v", len(ds.malformed), ds.malformed)
	}
	if ds.allows("walltime", 4) || ds.allows("walltime", 5) {
		t.Error("malformed directives must not silence anything")
	}
}
