// Command dualbootd demonstrates the dualboot-oscar daemons talking
// over real TCP sockets, the way the paper's Perl/Cygwin communicators
// did between the two Eridani head nodes. A simulated hybrid cluster
// provides the queue states; the control messages — the Figure-5 wire
// format inside STATE lines, and REBOOT orders back — cross actual
// localhost connections.
//
// Usage:
//
//	dualbootd                 # run the demo exchange
//	dualbootd -cycles 5       # more control cycles
//	dualbootd -listen :7401   # pick the LINHEAD port
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/comm"
	"repro/internal/controller"
	"repro/internal/metrics"
	"repro/internal/osid"
	"repro/internal/workload"
)

func main() {
	var (
		listenLin = flag.String("listen", "127.0.0.1:0", "LINHEAD listen address")
		listenWin = flag.String("listen-win", "127.0.0.1:0", "WINHEAD listen address")
		cycles    = flag.Int("cycles", 3, "control cycles to run")
	)
	flag.Parse()

	if err := run(*listenLin, *listenWin, *cycles); err != nil {
		fmt.Fprintln(os.Stderr, "dualbootd:", err)
		os.Exit(1)
	}
}

func run(linAddr, winAddr string, cycles int) error {
	// The cluster under control: all nodes Linux, a Windows burst
	// arriving to wedge the Windows queue.
	c, err := cluster.New(cluster.Config{Mode: cluster.HybridV2, InitialLinux: 16, Cycle: time.Hour})
	if err != nil {
		return err
	}
	c.Mgr.Stop() // the in-process controller yields to the TCP daemons
	trace := workload.Burst(workload.BurstConfig{
		Start: 0, Jobs: 2, Gap: time.Minute, App: "ANSYS FLUENT",
		OS: osid.Windows, Nodes: 3, PPN: 4, Runtime: time.Hour, Owner: "cfd",
	})
	if err := c.ScheduleTrace(trace); err != nil {
		return err
	}

	var mu sync.Mutex // guards the cluster across connection goroutines

	// LINHEAD: the decision maker. On a STATE report it consults PBS
	// and replies with reboot orders (Figure 11 steps 3–5).
	var winServerAddr string
	linSrv, err := comm.ListenTCP(linAddr, func(from string, m comm.Message) {
		if m.Kind != comm.KindState {
			return
		}
		mu.Lock()
		windows := c.SideInfo(osid.Windows)
		windows.Report = m.Report
		linux := c.SideInfo(osid.Linux)
		mu.Unlock()
		fmt.Printf("LINHEAD <- STATE %s %s (from %s)\n", m.From, m.Report.Encode(), from)

		d := (controller.FCFS{}).Decide(0, linux, windows)
		fmt.Printf("LINHEAD decision: %s\n", d)
		if !d.Act {
			return
		}
		switch d.Donor {
		case osid.Linux:
			mu.Lock()
			n := c.OrderSwitch(osid.Linux, d.Target, d.Nodes)
			mu.Unlock()
			fmt.Printf("LINHEAD: submitted %d switch job(s) to PBS\n", n)
		case osid.Windows:
			order := comm.Message{Kind: comm.KindReboot, From: osid.Linux, Target: d.Target, Count: d.Nodes}
			if err := comm.SendTCP(winServerAddr, order, 2*time.Second); err != nil {
				fmt.Println("LINHEAD: reboot order failed:", err)
				return
			}
			fmt.Printf("LINHEAD -> %s\n", order.Encode())
		}
	})
	if err != nil {
		return err
	}
	defer linSrv.Close()

	// WINHEAD: executes reboot orders against its own scheduler.
	winSrv, err := comm.ListenTCP(winAddr, func(from string, m comm.Message) {
		if m.Kind != comm.KindReboot {
			return
		}
		mu.Lock()
		n := c.OrderSwitch(osid.Windows, m.Target, m.Count)
		mu.Unlock()
		fmt.Printf("WINHEAD <- %s: submitted %d switch job(s)\n", m.Encode(), n)
	})
	if err != nil {
		return err
	}
	defer winSrv.Close()
	winServerAddr = winSrv.Addr()

	fmt.Printf("LINHEAD listening on %s, WINHEAD on %s\n", linSrv.Addr(), winSrv.Addr())
	fmt.Printf("cluster: %d nodes all Linux; %d Windows jobs queued\n\n", 16, len(trace))

	// The Windows communicator's fixed cycle (Figure 11 steps 1–2):
	// fetch queue state, ship it to LINHEAD over TCP, then let the
	// simulated cluster advance.
	for i := 0; i < cycles; i++ {
		mu.Lock()
		c.Eng.RunFor(10 * time.Minute)
		rep := c.SideInfo(osid.Windows).Report
		mu.Unlock()
		msg := comm.Message{Kind: comm.KindState, From: osid.Windows, Report: rep}
		fmt.Printf("WINHEAD -> %s\n", msg.Encode())
		if err := comm.SendTCP(linSrv.Addr(), msg, 2*time.Second); err != nil {
			return fmt.Errorf("state send: %w", err)
		}
		//simlint:allow walltime -- live daemon shutdown grace, not simulation time
		time.Sleep(50 * time.Millisecond) // let handlers finish
	}

	// Drain the simulation and report.
	mu.Lock()
	c.RunUntilDrained(48 * time.Hour)
	sum := c.Summary()
	mu.Unlock()
	fmt.Printf("\nfinal: windows jobs %d/%d completed, %d switches (mean %s), util %s\n",
		sum.JobsCompleted[osid.Windows], sum.JobsSubmitted[osid.Windows],
		sum.Switches, metrics.Dur(sum.MeanSwitch), metrics.Pct(sum.Utilisation))
	return nil
}
