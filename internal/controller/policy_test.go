package controller

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/detector"
	"repro/internal/osid"
)

func side(os osid.OS, total, idle int) SideState {
	return SideState{OS: os, TotalNodes: total, IdleNodes: idle, CoresPerNode: 4}
}

func stuck(s SideState, cpus int, id string) SideState {
	s.Report = detector.Report{Stuck: true, NeededCPUs: cpus, StuckJobID: id}
	s.QueuedJobs = 1
	s.QueuedCPUs = cpus
	return s
}

func TestFCFSNoStuckNoAction(t *testing.T) {
	d := FCFS{}.Decide(0, side(osid.Linux, 8, 2), side(osid.Windows, 8, 8))
	if d.Act {
		t.Fatalf("acted with nothing stuck: %+v", d)
	}
}

func TestFCFSLinuxStuckTakesWindowsIdle(t *testing.T) {
	lin := stuck(side(osid.Linux, 8, 0), 8, "5.eridani")
	win := side(osid.Windows, 8, 6)
	d := FCFS{}.Decide(0, lin, win)
	if !d.Act || d.Target != osid.Linux || d.Donor != osid.Windows {
		t.Fatalf("d = %+v", d)
	}
	if d.Nodes != 2 { // 8 CPUs / 4 per node
		t.Fatalf("nodes = %d, want 2", d.Nodes)
	}
	if !strings.Contains(d.Reason, "5.eridani") {
		t.Fatalf("reason = %q", d.Reason)
	}
}

func TestFCFSWindowsStuckTakesLinuxIdle(t *testing.T) {
	lin := side(osid.Linux, 10, 5)
	win := stuck(side(osid.Windows, 6, 0), 4, "9.WINHEAD")
	d := FCFS{}.Decide(0, lin, win)
	if !d.Act || d.Target != osid.Windows || d.Donor != osid.Linux || d.Nodes != 1 {
		t.Fatalf("d = %+v", d)
	}
}

func TestFCFSCappedByDonatable(t *testing.T) {
	lin := stuck(side(osid.Linux, 8, 0), 64, "big")
	win := side(osid.Windows, 8, 3)
	d := FCFS{}.Decide(0, lin, win)
	if d.Nodes != 3 {
		t.Fatalf("nodes = %d, want 3 (donor limit)", d.Nodes)
	}
}

func TestFCFSPendingAwayReducesDonatable(t *testing.T) {
	lin := stuck(side(osid.Linux, 8, 0), 64, "big")
	win := side(osid.Windows, 8, 3)
	win.PendingAway = 2
	d := FCFS{}.Decide(0, lin, win)
	if d.Nodes != 1 {
		t.Fatalf("nodes = %d, want 1 (3 idle - 2 pending)", d.Nodes)
	}
	win.PendingAway = 3
	d = FCFS{}.Decide(0, lin, win)
	if d.Act {
		t.Fatalf("acted with nothing donatable: %+v", d)
	}
}

func TestFCFSBothStuckWindowsWinsTie(t *testing.T) {
	// Both queues stuck with idle nodes on both sides (e.g. jobs just
	// finished everywhere): the Windows request is served first because
	// its report opens the control cycle.
	lin := stuck(side(osid.Linux, 8, 4), 4, "L")
	win := stuck(side(osid.Windows, 8, 4), 4, "W")
	d := FCFS{}.Decide(0, lin, win)
	if !d.Act || d.Target != osid.Windows {
		t.Fatalf("tie break = %+v", d)
	}
}

func TestFCFSZeroCPUStuckStillMovesOneNode(t *testing.T) {
	// A stuck report with CPUs=0 (malformed or zero-core request) still
	// moves one node rather than zero.
	lin := stuck(side(osid.Linux, 8, 0), 0, "odd")
	win := side(osid.Windows, 8, 2)
	d := FCFS{}.Decide(0, lin, win)
	if !d.Act || d.Nodes != 1 {
		t.Fatalf("d = %+v", d)
	}
}

func TestThresholdMinQueued(t *testing.T) {
	p := Threshold{MinQueued: 3}
	lin := stuck(side(osid.Linux, 8, 0), 4, "j")
	lin.QueuedJobs = 1
	win := side(osid.Windows, 8, 8)
	if d := p.Decide(0, lin, win); d.Act {
		t.Fatalf("acted below MinQueued: %+v", d)
	}
	lin.QueuedJobs = 3
	if d := p.Decide(0, lin, win); !d.Act {
		t.Fatalf("did not act at MinQueued: %+v", d)
	}
}

func TestThresholdReserveCapsNodes(t *testing.T) {
	p := Threshold{Reserve: 6}
	lin := stuck(side(osid.Linux, 8, 0), 16, "j")
	win := side(osid.Windows, 8, 8)
	d := p.Decide(0, lin, win)
	if !d.Act || d.Nodes != 2 {
		t.Fatalf("d = %+v, want 2 nodes (8 total - 6 reserve)", d)
	}
}

func TestThresholdReserveFloorBlocks(t *testing.T) {
	p := Threshold{Reserve: 8}
	lin := stuck(side(osid.Linux, 8, 0), 4, "j")
	win := side(osid.Windows, 8, 8)
	if d := p.Decide(0, lin, win); d.Act {
		t.Fatalf("acted at reserve floor: %+v", d)
	}
}

func TestThresholdPassThroughNoAction(t *testing.T) {
	p := Threshold{Reserve: 1, MinQueued: 1}
	if d := p.Decide(0, side(osid.Linux, 8, 8), side(osid.Windows, 8, 8)); d.Act {
		t.Fatalf("acted with no stuck side: %+v", d)
	}
}

func TestHysteresisCooldown(t *testing.T) {
	p := &Hysteresis{Inner: FCFS{}, Cooldown: 30 * time.Minute}
	lin := stuck(side(osid.Linux, 8, 0), 4, "j")
	win := side(osid.Windows, 8, 8)

	d := p.Decide(0, lin, win)
	if !d.Act {
		t.Fatalf("first switch blocked: %+v", d)
	}
	d = p.Decide(10*time.Minute, lin, win)
	if d.Act {
		t.Fatalf("switch inside cooldown: %+v", d)
	}
	d = p.Decide(31*time.Minute, lin, win)
	if !d.Act {
		t.Fatalf("switch after cooldown blocked: %+v", d)
	}
}

func TestHysteresisNoActionDoesNotArmCooldown(t *testing.T) {
	p := &Hysteresis{Inner: FCFS{}, Cooldown: time.Hour}
	idle := side(osid.Linux, 8, 8)
	win := side(osid.Windows, 8, 8)
	p.Decide(0, idle, win) // nothing stuck, no switch
	d := p.Decide(time.Minute, stuck(idle, 4, "j"), win)
	if !d.Act {
		t.Fatalf("cooldown armed by a no-op cycle: %+v", d)
	}
}

func TestFairShareMovesTowardDemand(t *testing.T) {
	p := FairShare{MaxStep: 4}
	lin := side(osid.Linux, 8, 0)
	lin.QueuedCPUs = 48
	lin.QueuedJobs = 6
	win := side(osid.Windows, 8, 8)
	d := p.Decide(0, lin, win)
	if !d.Act || d.Target != osid.Linux {
		t.Fatalf("d = %+v", d)
	}
	if d.Nodes < 1 || d.Nodes > 4 {
		t.Fatalf("nodes = %d outside step bound", d.Nodes)
	}
}

func TestFairShareRespectsMaxStep(t *testing.T) {
	p := FairShare{MaxStep: 1}
	lin := side(osid.Linux, 2, 0)
	lin.QueuedCPUs = 100
	win := side(osid.Windows, 14, 14)
	d := p.Decide(0, lin, win)
	if !d.Act || d.Nodes != 1 {
		t.Fatalf("d = %+v", d)
	}
}

func TestFairShareBalancedNoMove(t *testing.T) {
	p := FairShare{}
	lin := side(osid.Linux, 8, 2)
	lin.QueuedCPUs = 16
	win := side(osid.Windows, 8, 2)
	win.QueuedCPUs = 16
	if d := p.Decide(0, lin, win); d.Act {
		t.Fatalf("moved on balanced demand: %+v", d)
	}
}

func TestFairShareNoDemand(t *testing.T) {
	p := FairShare{}
	if d := p.Decide(0, side(osid.Linux, 8, 8), side(osid.Windows, 8, 8)); d.Act {
		t.Fatalf("moved with no demand: %+v", d)
	}
}

func TestFairShareKeepsOneNodePerDemandingSide(t *testing.T) {
	p := FairShare{MaxStep: 16}
	lin := side(osid.Linux, 8, 0)
	lin.QueuedCPUs = 1000
	lin.QueuedJobs = 10
	win := side(osid.Windows, 8, 8)
	win.QueuedCPUs = 4
	win.QueuedJobs = 1
	d := p.Decide(0, lin, win)
	if !d.Act {
		t.Fatal("no move")
	}
	if win.TotalNodes-d.Nodes < 1 {
		t.Fatalf("windows stripped to %d nodes despite demand", win.TotalNodes-d.Nodes)
	}
}

func TestDonatableNodes(t *testing.T) {
	s := SideState{IdleNodes: 3, PendingAway: 1}
	if s.DonatableNodes() != 2 {
		t.Fatalf("= %d", s.DonatableNodes())
	}
	s.PendingAway = 5
	if s.DonatableNodes() != 0 {
		t.Fatalf("= %d, want clamp at 0", s.DonatableNodes())
	}
}

func TestDecisionString(t *testing.T) {
	d := Decision{Act: true, Target: osid.Linux, Donor: osid.Windows, Nodes: 2, Reason: "r"}
	if !strings.Contains(d.String(), "windows->linux") {
		t.Fatalf("String() = %q", d.String())
	}
	n := Decision{Reason: "idle"}
	if !strings.Contains(n.String(), "no-switch") {
		t.Fatalf("String() = %q", n.String())
	}
}

func TestPolicyNames(t *testing.T) {
	if (FCFS{}).Name() != "fcfs" {
		t.Error("fcfs name")
	}
	if (Threshold{}).Name() != "threshold" {
		t.Error("threshold name")
	}
	h := &Hysteresis{Inner: FCFS{}}
	if h.Name() != "hysteresis(fcfs)" {
		t.Errorf("hysteresis name = %q", h.Name())
	}
	if (FairShare{}).Name() != "fairshare" {
		t.Error("fairshare name")
	}
}

func TestNodesForRounding(t *testing.T) {
	s := SideState{CoresPerNode: 4}
	cases := map[int]int{0: 1, 1: 1, 4: 1, 5: 2, 8: 2, 9: 3}
	for cpus, want := range cases {
		if got := s.nodesFor(cpus); got != want {
			t.Errorf("nodesFor(%d) = %d, want %d", cpus, got, want)
		}
	}
	zero := SideState{}
	if zero.nodesFor(8) != 2 {
		t.Error("default cores-per-node not applied")
	}
}

// Property: no policy ever orders more nodes than the donor can give,
// targets an invalid OS, or acts without demand.
func TestQuickPoliciesRespectDonatable(t *testing.T) {
	policies := []Policy{FCFS{}, Threshold{Reserve: 1, MinQueued: 1}, FairShare{MaxStep: 3}}
	f := func(linTotal, linIdle, winTotal, winIdle, cpus uint8, linStuck, winStuck bool) bool {
		lin := SideState{OS: osid.Linux, CoresPerNode: 4,
			TotalNodes: int(linTotal % 16), IdleNodes: int(linIdle % 16)}
		if lin.IdleNodes > lin.TotalNodes {
			lin.IdleNodes = lin.TotalNodes
		}
		win := SideState{OS: osid.Windows, CoresPerNode: 4,
			TotalNodes: int(winTotal % 16), IdleNodes: int(winIdle % 16)}
		if win.IdleNodes > win.TotalNodes {
			win.IdleNodes = win.TotalNodes
		}
		if linStuck {
			lin = stuck(lin, int(cpus), "L")
		}
		if winStuck {
			win = stuck(win, int(cpus), "W")
		}
		for _, p := range policies {
			d := p.Decide(0, lin, win)
			if !d.Act {
				continue
			}
			if !d.Target.Valid() || !d.Donor.Valid() || d.Target == d.Donor {
				return false
			}
			donor := lin
			if d.Donor == osid.Windows {
				donor = win
			}
			if d.Nodes <= 0 || d.Nodes > donor.DonatableNodes() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
