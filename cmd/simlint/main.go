// Command simlint is the multichecker for the repo's determinism-lint
// suite (internal/analysis): walltime, globalrand, maporder and
// fieldsync, statically enforcing the reproducibility invariants the
// goldens and bench gates check dynamically.
//
// Usage:
//
//	go run ./cmd/simlint ./...
//	go run ./cmd/simlint -list
//
// Exit status: 0 clean, 1 findings, 2 errors. Silence a legitimate
// site with a line directive carrying a reason:
//
//	//simlint:allow walltime -- real socket deadline, not simulation time
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and what each enforces")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: simlint [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Println(a.Doc)
			fmt.Println()
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := analysis.Run(patterns, analysis.Analyzers())
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		os.Exit(2)
	}
	if len(findings) > 0 {
		wd, _ := os.Getwd()
		analysis.Print(os.Stdout, wd, findings)
		os.Exit(1)
	}
}
