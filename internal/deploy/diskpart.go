package deploy

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/hardware"
)

// This file implements the diskpart.txt scripts Windows HPC's
// deployment tool feeds to diskpart.exe. The paper patches the stock
// script (Figure 9: wipe the whole disk) into a size-limited variant
// (Figure 10) and, for v2 reimaging, a format-partition-1-only variant
// (Figure 15) that leaves the Linux partitions alone.

// DiskpartOp is one parsed script statement.
type DiskpartOp struct {
	Verb string // select / clean / create / format / assign / active / exit
	Args map[string]string
}

// DiskpartScript is a parsed diskpart.txt.
type DiskpartScript struct {
	Ops []DiskpartOp
}

// ParseDiskpart parses a diskpart.txt script. Figures 9, 10 and 15
// parse verbatim.
func ParseDiskpart(text string) (*DiskpartScript, error) {
	s := &DiskpartScript{}
	for lineNo, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "rem") || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		op := DiskpartOp{Verb: strings.ToLower(fields[0]), Args: map[string]string{}}
		switch op.Verb {
		case "select":
			if len(fields) != 3 {
				return nil, fmt.Errorf("deploy: diskpart line %d: select wants object and id", lineNo+1)
			}
			op.Args["object"] = strings.ToLower(fields[1])
			op.Args["id"] = fields[2]
		case "create":
			if len(fields) < 3 || strings.ToLower(fields[1]) != "partition" {
				return nil, fmt.Errorf("deploy: diskpart line %d: only 'create partition' supported", lineNo+1)
			}
			op.Args["type"] = strings.ToLower(fields[2])
			for _, f := range fields[3:] {
				k, v, ok := strings.Cut(f, "=")
				if !ok {
					return nil, fmt.Errorf("deploy: diskpart line %d: bad argument %q", lineNo+1, f)
				}
				op.Args[strings.ToLower(k)] = v
			}
		case "format":
			for _, f := range fields[1:] {
				if k, v, ok := strings.Cut(f, "="); ok {
					op.Args[strings.ToLower(k)] = strings.Trim(v, `"`)
				} else {
					op.Args[strings.ToLower(f)] = "true"
				}
			}
		case "assign":
			for _, f := range fields[1:] {
				if k, v, ok := strings.Cut(f, "="); ok {
					op.Args[strings.ToLower(k)] = v
				}
			}
		case "clean", "active", "exit":
			// no arguments
		default:
			return nil, fmt.Errorf("deploy: diskpart line %d: unknown verb %q", lineNo+1, fields[0])
		}
		s.Ops = append(s.Ops, op)
	}
	if len(s.Ops) == 0 {
		return nil, fmt.Errorf("deploy: empty diskpart script")
	}
	return s, nil
}

// DiskpartResult reports what a script execution did — the raw
// material for the deployment experiments.
type DiskpartResult struct {
	Cleaned          bool
	PartitionsWiped  int // pre-existing partitions destroyed (clean)
	FormattedIndexes []int
	CreatedIndexes   []int
	ActiveIndex      int
	FilesLost        int // files destroyed by clean/format
}

// Execute runs the script against a disk. It mirrors diskpart
// semantics: an implicit current-partition cursor, "clean" destroying
// the table and the MBR, "format" wiping the selected partition.
func (s *DiskpartScript) Execute(disk *hardware.Disk) (DiskpartResult, error) {
	var res DiskpartResult
	var cur *hardware.Partition
	diskSelected := false
	for i, op := range s.Ops {
		switch op.Verb {
		case "select":
			switch op.Args["object"] {
			case "disk":
				diskSelected = true
			case "partition":
				idx, err := strconv.Atoi(op.Args["id"])
				if err != nil {
					return res, fmt.Errorf("deploy: diskpart op %d: bad partition id %q", i+1, op.Args["id"])
				}
				p, err := disk.Partition(idx)
				if err != nil {
					return res, fmt.Errorf("deploy: diskpart op %d: %w", i+1, err)
				}
				cur = p
			default:
				return res, fmt.Errorf("deploy: diskpart op %d: cannot select %q", i+1, op.Args["object"])
			}
		case "clean":
			if !diskSelected {
				return res, fmt.Errorf("deploy: diskpart op %d: clean with no disk selected", i+1)
			}
			for _, p := range disk.Partitions() {
				res.FilesLost += p.FileCount()
			}
			res.PartitionsWiped = len(disk.Partitions())
			res.Cleaned = true
			disk.Clean()
			cur = nil
		case "create":
			if op.Args["type"] != "primary" {
				return res, fmt.Errorf("deploy: diskpart op %d: only primary partitions supported", i+1)
			}
			size := int64(-1)
			if v, ok := op.Args["size"]; ok {
				n, err := strconv.ParseInt(v, 10, 64)
				if err != nil || n <= 0 {
					return res, fmt.Errorf("deploy: diskpart op %d: bad size %q", i+1, v)
				}
				size = n
			}
			p, err := disk.CreateNextPrimary(size)
			if err != nil {
				return res, fmt.Errorf("deploy: diskpart op %d: %w", i+1, err)
			}
			cur = p
			res.CreatedIndexes = append(res.CreatedIndexes, p.Index)
		case "format":
			if cur == nil {
				return res, fmt.Errorf("deploy: diskpart op %d: format with no partition selected", i+1)
			}
			fsName := strings.ToLower(op.Args["fs"])
			fs, err := hardware.ParseFSType(fsName)
			if err != nil || fs == hardware.FSNone {
				return res, fmt.Errorf("deploy: diskpart op %d: bad FS %q", i+1, op.Args["fs"])
			}
			res.FilesLost += cur.FileCount()
			cur.Format(fs)
			if label, ok := op.Args["label"]; ok {
				cur.Label = label
			}
			res.FormattedIndexes = append(res.FormattedIndexes, cur.Index)
		case "assign":
			if cur == nil {
				return res, fmt.Errorf("deploy: diskpart op %d: assign with no partition selected", i+1)
			}
			// drive letters have no observable effect in the model
		case "active":
			if cur == nil {
				return res, fmt.Errorf("deploy: diskpart op %d: active with no partition selected", i+1)
			}
			if err := disk.SetActive(cur.Index); err != nil {
				return res, fmt.Errorf("deploy: diskpart op %d: %w", i+1, err)
			}
			res.ActiveIndex = cur.Index
		case "exit":
			return res, nil
		}
	}
	return res, nil
}

// OriginalDiskpart is Figure 9: the stock Windows HPC script that
// wipes the entire disk.
const OriginalDiskpart = `select disk 0
clean
create partition primary
assign letter=c
format FS=NTFS LABEL="Node" QUICK OVERRIDE
active
exit
`

// V1Diskpart is Figure 10: dualboot-oscar 1.0's patch reserving only
// part of the disk for Windows (150 GB of the 250 GB disks).
const V1Diskpart = `select disk 0
clean
create partition primary size=150000
assign letter=c
format FS=NTFS LABEL="Node" QUICK OVERRIDE
active
exit
`

// V2ReimageDiskpart is Figure 15: the v2 reimaging script that only
// reformats partition 1, leaving the Linux partitions and their data
// untouched.
const V2ReimageDiskpart = `select disk 0
select partition 1
format FS=NTFS LABEL="Node" QUICK OVERRIDE
active
exit
`

// V2InitialDiskpart sizes the Windows partition to match Figure 14's
// ide.disk (16 GB) for a from-scratch v2 install.
const V2InitialDiskpart = `select disk 0
clean
create partition primary size=16000
assign letter=c
format FS=NTFS LABEL="Node" QUICK OVERRIDE
active
exit
`
