// Command benchtab regenerates every table and figure of the paper's
// evaluation (see README.md for the map) and prints them as text
// tables — the rows EXPERIMENTS.md records. Full-suite runs also
// write BENCH_sim.json, a machine-readable perf record (wall ns plus
// simulation wakeups per experiment) so the repository's performance
// trajectory can be tracked across commits; subset runs leave the
// record alone unless -benchjson is passed explicitly.
//
// Usage:
//
//	benchtab            # run every experiment
//	benchtab E8 A2      # run selected experiments
//	benchtab -list      # list experiment IDs
//	benchtab -benchjson ""  # skip the perf record
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

// benchRecord is one experiment's perf sample in BENCH_sim.json.
type benchRecord struct {
	ID string `json:"id"`
	// NsPerOp is the wall-clock nanoseconds of one full experiment
	// regeneration (the only nondeterministic number this repository
	// emits — everything else is simulated time).
	NsPerOp int64 `json:"ns_per_op"`
	// EventsRun counts the simulation wakeups (engine callbacks)
	// behind the experiment; zero for pure-artifact tables. With the
	// event-driven quiescence driver this is the number the drain
	// refactor optimises.
	EventsRun uint64 `json:"events_run"`
}

func main() {
	list := flag.Bool("list", false, "list experiment IDs and exit")
	benchJSON := flag.String("benchjson", "BENCH_sim.json", "write the per-experiment perf record here (empty to disable)")
	flag.Parse()

	if *list {
		for _, r := range experiments.All() {
			fmt.Println(r.ID)
		}
		return
	}

	runners := experiments.All()
	subset := len(flag.Args()) > 0
	if subset {
		runners = runners[:0]
		for _, id := range flag.Args() {
			r, ok := experiments.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "benchtab: unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			runners = append(runners, r)
		}
	}
	// The default perf record tracks the whole suite; a subset run
	// must not truncate it to a partial array. Writing a subset record
	// still works when -benchjson is given explicitly.
	explicitJSON := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "benchjson" {
			explicitJSON = true
		}
	})
	writeJSON := *benchJSON != "" && (!subset || explicitJSON)

	failed := 0
	var records []benchRecord
	for _, r := range runners {
		start := time.Now()
		tab, err := r.Run()
		elapsed := time.Since(start)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %s: %v\n", r.ID, err)
			failed++
			continue
		}
		records = append(records, benchRecord{
			ID:        r.ID,
			NsPerOp:   elapsed.Nanoseconds(),
			EventsRun: tab.EventsRun,
		})
		fmt.Println(tab.Render())
	}
	switch {
	case writeJSON && failed > 0:
		// A failed experiment would leave a partial array — the same
		// truncation the subset guard prevents. Keep the old record.
		fmt.Fprintf(os.Stderr, "benchtab: %d experiment(s) failed; not writing %s\n", failed, *benchJSON)
	case writeJSON && len(records) > 0:
		if err := writeBenchJSON(*benchJSON, records); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			failed++
		} else {
			fmt.Printf("perf record written to %s\n", *benchJSON)
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}

func writeBenchJSON(path string, records []benchRecord) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(records); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
