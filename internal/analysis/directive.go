package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// directivePrefix is the comment marker for allow directives:
//
//	//simlint:allow walltime -- real socket deadline
//	//simlint:allow walltime,globalrand -- reason covering both
//
// An end-of-line directive silences the named analyzers on its own
// line; a directive standing alone on a line silences them on the
// following line. The reason after " -- " is mandatory: a directive
// without one is itself reported, so every escape hatch in the tree
// carries its justification.
const directivePrefix = "//simlint:allow"

// directiveName attributes malformed-directive findings; it is also a
// reserved analyzer name.
const directiveName = "simlint"

// allowAll silences every analyzer at the directive's site.
const allowAll = "all"

// A directive is one parsed //simlint:allow comment.
type directive struct {
	names map[string]bool // analyzer names (or allowAll), all lower-case
	line  int             // the source line the directive silences
}

// directiveSet holds the directives of one file, keyed by silenced
// line, plus the malformed ones found while scanning.
type directiveSet struct {
	byLine    map[int][]directive
	malformed []Diagnostic
}

// allows reports whether the named analyzer is silenced at line.
func (ds *directiveSet) allows(name string, line int) bool {
	for _, d := range ds.byLine[line] {
		if d.names[allowAll] || d.names[strings.ToLower(name)] {
			return true
		}
	}
	return false
}

// parseDirectives scans a file's comments for //simlint:allow
// directives. src is the file's raw bytes — needed to decide whether a
// directive shares its line with code (silences that line) or stands
// alone (silences the next line).
func parseDirectives(fset *token.FileSet, file *ast.File, src []byte) *directiveSet {
	ds := &directiveSet{byLine: map[int][]directive{}}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, directivePrefix) {
				continue
			}
			pos := fset.Position(c.Pos())
			rest := c.Text[len(directivePrefix):]
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				continue // e.g. //simlint:allowance — not ours
			}
			names, reason, ok := splitDirective(rest)
			if !ok || len(names) == 0 || reason == "" {
				ds.malformed = append(ds.malformed, Diagnostic{
					Pos:     c.Pos(),
					Message: "malformed simlint directive: want //simlint:allow <analyzer>[,<analyzer>] -- <reason>",
				})
				continue
			}
			line := pos.Line
			if standalone(src, fset, c.Pos()) {
				line++
			}
			ds.byLine[line] = append(ds.byLine[line], directive{names: names, line: line})
		}
	}
	return ds
}

// splitDirective parses " walltime,globalrand -- reason" into its name
// set and reason.
func splitDirective(rest string) (names map[string]bool, reason string, ok bool) {
	namePart, reason, found := strings.Cut(rest, " -- ")
	if !found {
		return nil, "", false
	}
	reason = strings.TrimSpace(reason)
	names = map[string]bool{}
	for _, n := range strings.Split(namePart, ",") {
		n = strings.ToLower(strings.TrimSpace(n))
		if n == "" {
			return nil, "", false
		}
		names[n] = true
	}
	return names, reason, true
}

// standalone reports whether the comment at pos is the first non-blank
// text on its source line, i.e. not an end-of-line comment.
func standalone(src []byte, fset *token.FileSet, pos token.Pos) bool {
	off := fset.Position(pos).Offset
	if off > len(src) {
		return false
	}
	for i := off - 1; i >= 0; i-- {
		switch src[i] {
		case '\n':
			return true
		case ' ', '\t':
			continue
		default:
			return false
		}
	}
	return true // first line of the file
}

// filterDiagnostics drops diagnostics silenced by a directive for the
// named analyzer and appends the file set's malformed-directive
// findings exactly once (when name == directiveName).
func filterDiagnostics(ds *directiveSet, fset *token.FileSet, name string, diags []Diagnostic) []Diagnostic {
	kept := diags[:0]
	for _, d := range diags {
		if ds.allows(name, fset.Position(d.Pos).Line) {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}
