// Command benchtab regenerates every table and figure of the paper's
// evaluation (see README.md for the map) and prints them as text
// tables — the rows EXPERIMENTS.md records. Full-suite runs also
// write BENCH_sim.json, a machine-readable perf record (wall ns plus
// simulation wakeups per experiment) so the repository's performance
// trajectory can be tracked across commits; subset runs leave the
// record alone unless -benchjson is passed explicitly.
//
// With -check the binary becomes the CI benchmark-regression gate: it
// reruns the experiments and diffs their deterministic EventsRun
// against the committed baseline, failing on any drift, and compares
// heap allocations per run, failing when an experiment allocates more
// than 5% over its baseline (allocation counts are near-deterministic;
// the tolerance absorbs runtime-internal noise). Wall-clock ns/op is
// printed as an advisory delta only — it depends on the machine; the
// wakeup and allocation counts do not.
//
// Usage:
//
//	benchtab            # run every experiment
//	benchtab E8 A2      # run selected experiments
//	benchtab -list      # list experiment IDs
//	benchtab -benchjson ""  # skip the perf record
//	benchtab -check BENCH_sim.json E8 E13 E15  # CI gate: fail on EventsRun drift
//	benchtab -specs specs   # regenerate the committed experiment spec documents
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/experiments"
)

// benchRecord is one experiment's perf sample in BENCH_sim.json.
type benchRecord struct {
	ID string `json:"id"`
	// NsPerOp is the wall-clock nanoseconds of one full experiment
	// regeneration (the only nondeterministic number this repository
	// emits — everything else is simulated time).
	NsPerOp int64 `json:"ns_per_op"`
	// EventsRun counts the simulation wakeups (engine callbacks)
	// behind the experiment; zero for pure-artifact tables. With the
	// event-driven quiescence driver this is the number the drain
	// refactor optimises.
	EventsRun uint64 `json:"events_run"`
	// AllocsPerOp counts heap allocations (runtime Mallocs delta)
	// across one regeneration — the machine-independent cost metric
	// the gate enforces, since an allocation regression on the hot
	// path shows up here long before wall clock moves on fast
	// hardware.
	AllocsPerOp uint64 `json:"allocs_per_op"`
}

func main() {
	list := flag.Bool("list", false, "list experiment IDs and exit")
	benchJSON := flag.String("benchjson", "BENCH_sim.json", "write the per-experiment perf record here (empty to disable)")
	check := flag.String("check", "", "benchmark-regression gate: compare EventsRun against this baseline record and fail on drift (ns/op stays advisory)")
	specs := flag.String("specs", "", "write the recorded experiments' sweep documents (E12–E19) into this directory and exit")
	flag.Parse()

	if *list {
		for _, r := range experiments.All() {
			fmt.Println(r.ID)
		}
		return
	}
	if *specs != "" {
		if err := experiments.WriteSpecs(*specs); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("experiment spec documents written to %s\n", *specs)
		return
	}

	runners := experiments.All()
	subset := len(flag.Args()) > 0
	if subset {
		runners = runners[:0]
		for _, id := range flag.Args() {
			r, ok := experiments.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "benchtab: unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			runners = append(runners, r)
		}
	}
	// The default perf record tracks the whole suite; a subset run
	// must not truncate it to a partial array. Writing a subset record
	// still works when -benchjson is given explicitly.
	explicitJSON := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "benchjson" {
			explicitJSON = true
		}
	})
	// A gate run only compares; it never rewrites the record it is
	// gating against.
	writeJSON := *check == "" && *benchJSON != "" && (!subset || explicitJSON)

	failed := 0
	var records []benchRecord
	var ms runtime.MemStats
	for _, r := range runners {
		runtime.ReadMemStats(&ms)
		mallocsBefore := ms.Mallocs
		start := time.Now() //simlint:allow walltime -- benchtab measures real ns/op; the advisory timing IS wall-clock
		tab, err := r.Run()
		elapsed := time.Since(start) //simlint:allow walltime -- benchtab measures real ns/op; the advisory timing IS wall-clock
		runtime.ReadMemStats(&ms)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %s: %v\n", r.ID, err)
			failed++
			continue
		}
		records = append(records, benchRecord{
			ID:          r.ID,
			NsPerOp:     elapsed.Nanoseconds(),
			EventsRun:   tab.EventsRun,
			AllocsPerOp: ms.Mallocs - mallocsBefore,
		})
		if *check == "" { // the gate prints its own compact report
			fmt.Println(tab.Render())
		}
	}
	if *check != "" {
		if !checkBaseline(*check, records) {
			failed++
		}
	}
	switch {
	case writeJSON && failed > 0:
		// A failed experiment would leave a partial array — the same
		// truncation the subset guard prevents. Keep the old record.
		fmt.Fprintf(os.Stderr, "benchtab: %d experiment(s) failed; not writing %s\n", failed, *benchJSON)
	case writeJSON && len(records) > 0:
		if err := writeBenchJSON(*benchJSON, records); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			failed++
		} else {
			fmt.Printf("perf record written to %s\n", *benchJSON)
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// allocTolerance is the headroom the allocation gate grants over the
// baseline before failing: allocation counts are near-deterministic,
// but concurrent sweep workers and runtime internals contribute a
// small jitter the gate must not flake on.
const allocTolerance = 1.05

// checkBaseline is the benchmark-regression gate: every record's
// EventsRun must equal the committed baseline's byte for byte — the
// simulation is deterministic, so any difference is a behaviour change
// someone must either fix or deliberately bake into a refreshed
// baseline — and its allocation count must stay within allocTolerance
// of the baseline's. Wall-clock ns/op is reported as an advisory delta
// only.
func checkBaseline(path string, records []benchRecord) bool {
	baseline, err := readBenchJSON(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchtab: baseline: %v\n", err)
		return false
	}
	base := make(map[string]benchRecord, len(baseline))
	for _, r := range baseline {
		base[r.ID] = r
	}
	drift := 0
	for _, r := range records {
		b, ok := base[r.ID]
		if !ok {
			fmt.Printf("%-4s  events %12d  baseline MISSING (refresh %s)\n", r.ID, r.EventsRun, path)
			drift++
			continue
		}
		status := "ok"
		if r.EventsRun != b.EventsRun {
			status = "DRIFT"
			drift++
		}
		allocDelta := "n/a"
		if b.AllocsPerOp > 0 {
			allocDelta = fmt.Sprintf("%+.1f%%", 100*(float64(r.AllocsPerOp)-float64(b.AllocsPerOp))/float64(b.AllocsPerOp))
			if float64(r.AllocsPerOp) > float64(b.AllocsPerOp)*allocTolerance {
				status = "ALLOC"
				drift++
			}
		}
		wallDelta := "n/a"
		if b.NsPerOp > 0 {
			wallDelta = fmt.Sprintf("%+.0f%%", 100*(float64(r.NsPerOp)-float64(b.NsPerOp))/float64(b.NsPerOp))
		}
		fmt.Printf("%-4s  events %12d  baseline %12d  %-5s  allocs %8s  wall %8s vs baseline (advisory)\n",
			r.ID, r.EventsRun, b.EventsRun, status, allocDelta, wallDelta)
	}
	if drift > 0 {
		fmt.Fprintf(os.Stderr, "benchtab: %d experiment(s) drifted from %s\n", drift, path)
		return false
	}
	fmt.Printf("benchtab: %d experiment(s) match %s\n", len(records), path)
	return true
}

func readBenchJSON(path string) ([]benchRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var records []benchRecord
	if err := json.NewDecoder(f).Decode(&records); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return records, nil
}

func writeBenchJSON(path string, records []benchRecord) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(records); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
