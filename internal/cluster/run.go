package cluster

import (
	"fmt"
	"time"

	"repro/internal/driver"
	"repro/internal/metrics"
	"repro/internal/osid"
	"repro/internal/pbs"
	"repro/internal/winhpc"
	"repro/internal/workload"
)

// This file runs workload traces through the cluster and exposes the
// snapshot/summary views the experiments and examples consume. The
// drain loop lives in internal/driver: the cluster only answers Busy
// and shuts its controller down on Quiesce.

// Hooks observe cluster lifecycle transitions. They fire inside engine
// callbacks, so handlers run on the deterministic virtual clock and
// must not block. The grid layer uses them to track per-member
// completions without polling; tests and reactive controllers can
// subscribe the same way.
type Hooks struct {
	// JobCompleted fires when a tracked workload job leaves the
	// system; completed is false when the job died (walltime kill,
	// cancellation).
	JobCompleted func(id string, completed bool)
	// SwitchLanded fires when an OS switch (or maintenance reboot)
	// ends: os is the side the node came up on (None for a boot-chain
	// casualty) and ok whether it matched the intent.
	SwitchLanded func(node string, os osid.OS, ok bool)
	// SubmitFailed fires when a trace submission is rejected by the
	// target scheduler (e.g. a job too wide for the machine).
	SubmitFailed func(j workload.Job, err error)
}

// AddHooks subscribes an observer. Multiple observers fire in
// registration order.
func (c *Cluster) AddHooks(h Hooks) { c.hooks = append(c.hooks, h) }

func (c *Cluster) notifyJobCompleted(id string, completed bool) {
	for _, h := range c.hooks {
		if h.JobCompleted != nil {
			h.JobCompleted(id, completed)
		}
	}
}

func (c *Cluster) notifySwitchLanded(node string, os osid.OS, ok bool) {
	for _, h := range c.hooks {
		if h.SwitchLanded != nil {
			h.SwitchLanded(node, os, ok)
		}
	}
}

func (c *Cluster) notifySubmitFailed(j workload.Job, err error) {
	for _, h := range c.hooks {
		if h.SubmitFailed != nil {
			h.SubmitFailed(j, err)
		}
	}
}

// Submit routes one workload job to the appropriate scheduler now.
// The returned ID is the metrics key ("<seq>.<fqdn>" for PBS, "W<id>"
// for Windows HPC).
func (c *Cluster) Submit(j workload.Job) (string, error) {
	if err := j.Validate(); err != nil {
		return "", err
	}
	switch j.OS {
	case osid.Linux:
		pj, err := c.PBS.Qsub(pbs.SubmitRequest{
			Name:    j.App,
			Owner:   j.Owner + "@" + c.PBS.Name(),
			Nodes:   j.Nodes,
			PPN:     j.PPN,
			Runtime: j.Runtime,
			Rerun:   true, // campus jobs restart if a node is lost
		})
		if err != nil {
			return "", err
		}
		c.track(pj.ID, j)
		return pj.ID, nil
	case osid.Windows:
		spec := winhpc.JobSpec{
			Name:    j.App,
			Owner:   "HPC\\" + j.Owner,
			Runtime: j.Runtime,
			Rerun:   true,
		}
		if j.PPN >= c.cfg.CoresPerNode {
			spec.Unit = winhpc.UnitNode
			spec.Count = j.Nodes
		} else {
			spec.Unit = winhpc.UnitCore
			spec.Count = j.CPUs()
		}
		wj, err := c.Win.SubmitJob(spec)
		if err != nil {
			return "", err
		}
		id := winJobID(wj.ID)
		c.track(id, j)
		return id, nil
	default:
		return "", fmt.Errorf("cluster: job %q has no valid OS", j.App)
	}
}

func (c *Cluster) track(id string, j workload.Job) {
	c.Rec.JobSubmitted(id, j.OS, j.App, j.CPUs())
	c.arrived[j.OS] += j.CPUs()
	c.submitted[id] = true
	c.unfinished++
}

// ScheduleTrace arranges every job in the trace for submission at its
// timestamp. A submission the scheduler rejects is counted — it
// surfaces in Summary.SubmitFailures and fires the SubmitFailed hook —
// so a run that "drains cleanly" cannot silently lose jobs.
func (c *Cluster) ScheduleTrace(trace workload.Trace) error {
	if err := trace.Validate(); err != nil {
		return err
	}
	for _, j := range trace {
		j := j
		c.toSubmit++
		c.Eng.At(j.At, func() {
			c.toSubmit--
			if _, err := c.Submit(j); err != nil {
				c.Rec.SubmitFailed()
				c.notifySubmitFailed(j, err)
				c.logf("submit %s failed: %v", j.App, err)
			}
		})
	}
	return nil
}

// Unfinished reports workload jobs not yet completed.
func (c *Cluster) Unfinished() int { return c.unfinished }

// PendingSubmissions reports trace jobs scheduled but not yet
// submitted.
func (c *Cluster) PendingSubmissions() int { return c.toSubmit }

// Busy implements driver.Workload: outstanding trace submissions,
// unfinished jobs, or switches in flight.
func (c *Cluster) Busy() bool {
	return c.toSubmit > 0 || c.unfinished > 0 || c.SwitchingCount() > 0
}

// Quiesce implements driver.Workload: stop the controller daemons.
func (c *Cluster) Quiesce() {
	if c.Mgr != nil {
		c.Mgr.Stop()
	}
}

// RunTrace schedules a trace and advances virtual time until every
// workload job completes, no switches are in flight, or maxHorizon is
// reached. It returns the metrics summary.
func (c *Cluster) RunTrace(trace workload.Trace, maxHorizon time.Duration) (metrics.Summary, error) {
	if err := c.ScheduleTrace(trace); err != nil {
		return metrics.Summary{}, err
	}
	c.RunUntilDrained(maxHorizon)
	return c.Summary(), nil
}

// RunUntilDrained advances time on the shared quiescence driver: the
// engine hops event-to-event and stops at the exact instant the
// cluster goes quiet (the controller's background ticker never keeps
// the run alive). A wedged cluster — a switch that never lands — rides
// the clock to the horizon, exactly as before, just without the
// fixed-step polling.
func (c *Cluster) RunUntilDrained(maxHorizon time.Duration) {
	driver.Drain(c.Eng, maxHorizon, c)
}

// Summary digests the run so far.
func (c *Cluster) Summary() metrics.Summary {
	return c.Rec.Summarise(c.cfg.Nodes)
}

// Snapshot is a point-in-time view for time-series plots (the case
// study's node-shift curve).
type Snapshot struct {
	At            time.Duration
	LinuxNodes    int
	WindowsNodes  int
	Switching     int
	Broken        int
	LinuxRunning  int
	LinuxQueued   int
	WindowsQueued int
	WindowsRun    int
}

// TakeSnapshot captures the current state from the schedulers'
// maintained census counters.
func (c *Cluster) TakeSnapshot() Snapshot {
	winSnap := c.Win.Snapshot()
	pbsStats := c.PBS.QueueStats()
	return Snapshot{
		At:            c.Eng.Now(),
		LinuxNodes:    c.NodesOn(osid.Linux),
		WindowsNodes:  c.NodesOn(osid.Windows),
		Switching:     c.SwitchingCount(),
		Broken:        c.BrokenCount(),
		LinuxRunning:  pbsStats.Running,
		LinuxQueued:   pbsStats.Queued,
		WindowsQueued: winSnap.Queued,
		WindowsRun:    winSnap.Running,
	}
}

// SampleSeries runs a trace while recording snapshots every interval,
// returning the series and the final summary. Sampling rides a
// background ticker, so an exhausted workload stops the run even with
// samples still scheduled; a final snapshot at the stop instant closes
// the series.
func (c *Cluster) SampleSeries(trace workload.Trace, interval, horizon time.Duration) ([]Snapshot, metrics.Summary, error) {
	if err := c.ScheduleTrace(trace); err != nil {
		return nil, metrics.Summary{}, err
	}
	// Preallocate for the full horizon: series storage must not be the
	// allocation hot spot of a sampled run.
	series := make([]Snapshot, 0, horizon/interval+2)
	tk := c.Eng.EveryBackground(interval, func() {
		series = append(series, c.TakeSnapshot())
	})
	driver.Drain(c.Eng, horizon, c)
	tk.Stop()
	if len(series) == 0 || series[len(series)-1].At != c.Eng.Now() {
		series = append(series, c.TakeSnapshot())
	}
	return series, c.Summary(), nil
}
