package experiments

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/deploy"
	"repro/internal/detector"
	"repro/internal/grubcfg"
	"repro/internal/hardware"
	"repro/internal/metrics"
	"repro/internal/oscar"
	"repro/internal/osid"
	"repro/internal/pbs"
	"repro/internal/simtime"
	"repro/internal/workload"
)

// E1TableI schedules one job per Table-I application on the hybrid and
// reports where each ran.
func E1TableI() (Table, error) {
	var trace workload.Trace
	at := time.Duration(0)
	for _, app := range workload.Catalog {
		os := osid.Linux
		if app.Platform == workload.WindowsOnly {
			os = osid.Windows
		}
		trace = append(trace, workload.Job{
			At: at, App: app.Name, OS: os, Owner: "bench",
			Nodes: 1, PPN: app.TypicalPPN, Runtime: 30 * time.Minute,
		})
		at += time.Minute
	}
	res, err := core.Run(core.Scenario{
		Name:    "table1",
		Cluster: cluster.Config{Mode: cluster.HybridV2, Cycle: 5 * time.Minute},
		Trace:   trace,
	})
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:        "E1",
		Title:     "Table I application catalog placement",
		Header:    []string{"application", "platform", "side-run", "completed"},
		EventsRun: res.EventsRun,
		Notes: fmt.Sprintf("%d/%d catalog applications completed on the hybrid",
			res.Summary.JobsCompleted[osid.Linux]+res.Summary.JobsCompleted[osid.Windows], len(workload.Catalog)),
	}
	for i, app := range workload.Catalog {
		t.Rows = append(t.Rows, []string{app.Name, app.Platform.String(), trace[i].OS.String(), "yes"})
	}
	return t, nil
}

// E2GrubArtifacts parses the Figure-2/3 GRUB files and verifies the
// default-OS flip round-trips.
func E2GrubArtifacts() (Table, error) {
	t := Table{
		ID:     "E2",
		Title:  "Figures 2–3 GRUB menu.lst / controlmenu.lst round-trip",
		Header: []string{"artifact", "entries", "default-boots", "re-parses"},
		Notes:  "configfile redirection from /boot GRUB to FAT controlmenu.lst, as deployed on Eridani",
	}
	redirect := grubcfg.RedirectMenu(grubcfg.DeviceRef{Disk: 0, Partition: 5}, grubcfg.ControlFileName)
	if _, err := grubcfg.Parse(redirect.Render()); err != nil {
		return t, err
	}
	cf, _ := redirect.Entries[0].ConfigFile()
	t.Rows = append(t.Rows, []string{"menu.lst (Fig 2)", "1", "configfile " + cf, "yes"})
	for _, os := range []osid.OS{osid.Linux, osid.Windows} {
		ctl, err := grubcfg.ControlMenu(grubcfg.DefaultLinuxEntry(), grubcfg.DefaultWindowsEntry(), os)
		if err != nil {
			return t, err
		}
		again, err := grubcfg.Parse(ctl.Render())
		if err != nil {
			return t, err
		}
		def, err := again.DefaultEntry()
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("controlmenu_to_%s.lst (Fig 3)", os),
			fmt.Sprintf("%d", len(again.Entries)),
			def.OS().String(), "yes",
		})
	}
	return t, nil
}

// E3SwitchJob runs the Figure-4 batch job end to end.
func E3SwitchJob() (Table, error) {
	c, err := cluster.New(cluster.Config{Mode: cluster.HybridV1, Nodes: 4, InitialLinux: 4})
	if err != nil {
		return Table{}, err
	}
	script := c.SwitchJobScript(osid.Windows)
	parsed, err := pbs.ParseScript(script)
	if err != nil {
		return Table{}, err
	}
	if n := c.OrderSwitch(osid.Linux, osid.Windows, 1); n != 1 {
		return Table{}, fmt.Errorf("switch job not submitted")
	}
	c.Eng.RunFor(time.Hour)
	sw := c.Rec.Switches()
	if len(sw) != 1 {
		return Table{}, fmt.Errorf("no switch recorded")
	}
	return Table{
		ID:        "E3",
		Title:     "Figure 4 PBS OS-switch batch job",
		Header:    []string{"property", "value"},
		EventsRun: c.Eng.EventsRun(),
		Rows: [][]string{
			{"request", fmt.Sprintf("nodes=%d:ppn=%d", parsed.Request.Nodes, parsed.Request.PPN)},
			{"job name", parsed.Request.Name},
			{"rerunnable", fmt.Sprintf("%v (-r n)", parsed.Request.Rerun)},
			{"script commands", fmt.Sprintf("%d (log, bootcontrol.pl, reboot, sleep 10)", len(parsed.Commands))},
			{"node switched", sw[0].Node},
			{"direction", fmt.Sprintf("%s -> %s", sw[0].From, sw[0].To)},
			{"switch latency", metrics.Dur(sw[0].Duration())},
			{"landed in target OS", fmt.Sprintf("%v", sw[0].OK)},
		},
		Notes: "full-node booking protects running jobs; reboot follows job exit",
	}, nil
}

// E4DetectorWire reproduces the three Figure-6 detector outputs.
func E4DetectorWire() (Table, error) {
	eng := simtime.NewEngine()
	s := pbs.NewServer(eng, "eridani.qgg.hud.ac.uk")
	s.AddNode("enode01", 4, true)
	det := detector.NewPBSDetector(s)
	t := Table{
		ID:     "E4",
		Title:  "Figures 5–6 detector wire format",
		Header: []string{"queue state", "wire output", "parses-back"},
		Notes:  "position 0 stuck flag, 1-4 needed CPUs, 5-67 job ID; Figure 6 outputs byte-identical",
	}
	record := func(label string) error {
		rep, err := det.Detect()
		if err != nil {
			return err
		}
		back, err := detector.Parse(rep.Encode())
		ok := err == nil && back == rep
		t.Rows = append(t.Rows, []string{label, rep.Encode(), fmt.Sprintf("%v", ok)})
		return nil
	}
	if err := record("other (idle)"); err != nil {
		return t, err
	}
	s.Qsub(pbs.SubmitRequest{Name: "sleep", Nodes: 1, PPN: 4, Runtime: time.Hour})
	eng.RunUntil(time.Second)
	if err := record("job running, no queuing"); err != nil {
		return t, err
	}
	s.Qdel("1.eridani.qgg.hud.ac.uk")
	s.SetNodeAvailable("enode01", false)
	s.Qsub(pbs.SubmitRequest{Name: "dlpoly", Nodes: 1, PPN: 4, Runtime: time.Hour})
	eng.RunUntil(2 * time.Second)
	if err := record("queue stuck"); err != nil {
		return t, err
	}
	t.EventsRun = eng.EventsRun()
	return t, nil
}

// E5PBSText renders and scrapes the Figure-7/8 command output.
func E5PBSText() (Table, error) {
	eng := simtime.NewEngine()
	s := pbs.NewServer(eng, "eridani.qgg.hud.ac.uk")
	for i := 1; i <= 16; i++ {
		s.AddNode(fmt.Sprintf("enode%02d", i), 4, true)
	}
	for i := 0; i < 20; i++ {
		s.Qsub(pbs.SubmitRequest{Name: fmt.Sprintf("job%02d", i), Owner: "sliang@eridani.qgg.hud.ac.uk",
			Nodes: 1, PPN: 4, Runtime: time.Hour})
	}
	eng.RunUntil(time.Second)
	jobs, err := pbs.ParseQstatF(s.QstatF())
	if err != nil {
		return Table{}, err
	}
	nodes, err := pbs.ParsePBSNodes(s.PBSNodes())
	if err != nil {
		return Table{}, err
	}
	running, queued := 0, 0
	for _, j := range jobs {
		switch j.State {
		case pbs.StateRunning:
			running++
		case pbs.StateQueued:
			queued++
		}
	}
	free, excl := 0, 0
	for _, n := range nodes {
		switch n.State {
		case pbs.NodeFree:
			free++
		case pbs.NodeExclusive:
			excl++
		}
	}
	return Table{
		ID:        "E5",
		Title:     "Figures 7–8 qstat -f / pbsnodes text round-trip",
		Header:    []string{"artifact", "records", "detail"},
		EventsRun: eng.EventsRun(),
		Rows: [][]string{
			{"qstat -f", fmt.Sprintf("%d jobs", len(jobs)), fmt.Sprintf("R=%d Q=%d", running, queued)},
			{"pbsnodes", fmt.Sprintf("%d nodes", len(nodes)), fmt.Sprintf("free=%d job-exclusive=%d", free, excl)},
		},
		Notes: "the detector scrapes this text because Torque of the era had no API",
	}, nil
}

// E6Diskpart compares v1 (clean-based) and v2 (partition-1-only)
// Windows reimaging damage.
func E6Diskpart() (Table, error) {
	run := func(script string) (deploy.WindowsReport, error) {
		n := hardware.NewNode(hardware.NodeSpec{Index: 1})
		dp, err := deploy.ParseDiskpart(deploy.V1Diskpart)
		if err != nil {
			return deploy.WindowsReport{}, err
		}
		if _, err := deploy.DeployWindows(n, dp); err != nil {
			return deploy.WindowsReport{}, err
		}
		layout, err := deploy.ParseIdeDisk(deploy.V1IdeDisk)
		if err != nil {
			return deploy.WindowsReport{}, err
		}
		img, err := oscar.BuildImage("img", oscar.V1, layout)
		if err != nil {
			return deploy.WindowsReport{}, err
		}
		if _, err := oscar.DeployNode(n, img); err != nil {
			return deploy.WindowsReport{}, err
		}
		re, err := deploy.ParseDiskpart(script)
		if err != nil {
			return deploy.WindowsReport{}, err
		}
		return deploy.DeployWindows(n, re)
	}
	v1, err := run(deploy.V1Diskpart)
	if err != nil {
		return Table{}, err
	}
	v2, err := run(deploy.V2ReimageDiskpart)
	if err != nil {
		return Table{}, err
	}
	row := func(name string, rep deploy.WindowsReport) []string {
		return []string{name,
			fmt.Sprintf("%v", rep.Diskpart.Cleaned),
			fmt.Sprintf("%d", rep.LinuxPartitionsLost),
			fmt.Sprintf("%d", rep.FilesLost),
			fmt.Sprintf("%v", rep.GRUBDestroyed),
		}
	}
	return Table{
		ID:     "E6",
		Title:  "Figures 9–10/15 Windows reimage damage: v1 vs v2",
		Header: []string{"script", "disk-cleaned", "linux-parts-lost", "files-lost", "grub-destroyed"},
		Rows: [][]string{
			row("v1 diskpart (Fig 10)", v1),
			row("v2 reimage (Fig 15)", v2),
		},
		Notes: "both rewrite the MBR; v2 survives because boot moved to PXE — §IV-A",
	}, nil
}

// E7IdeDisk verifies the Figure-14 skip label across repeated Linux
// reimages.
func E7IdeDisk() (Table, error) {
	layout, err := deploy.ParseIdeDisk(deploy.V2IdeDisk)
	if err != nil {
		return Table{}, err
	}
	img, err := oscar.BuildImage("oscarimage", oscar.V2, layout)
	if err != nil {
		return Table{}, err
	}
	n := hardware.NewNode(hardware.NodeSpec{Index: 1})
	dp, _ := deploy.ParseDiskpart(deploy.V2InitialDiskpart)
	if _, err := deploy.DeployWindows(n, dp); err != nil {
		return Table{}, err
	}
	win, _ := n.Disk.Partition(1)
	win.WriteFile("/Users/research/results.dat", []byte("precious"))
	t := Table{
		ID:     "E7",
		Title:  "Figure 14 ide.disk with skip label",
		Header: []string{"linux reimage pass", "windows-preserved", "windows-user-data", "manual-steps"},
		Notes:  "v1 required 4 manual patches per image rebuild (§III-C); v2 zero",
	}
	for pass := 1; pass <= 3; pass++ {
		rep, err := oscar.DeployNode(n, img)
		if err != nil {
			return t, err
		}
		win, _ := n.Disk.Partition(1)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", pass),
			fmt.Sprintf("%v", !rep.WindowsLost),
			fmt.Sprintf("%v", win.HasFile("/Users/research/results.dat")),
			fmt.Sprintf("%d", rep.ManualSteps),
		})
	}
	return t, nil
}
