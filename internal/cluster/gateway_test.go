package cluster

import (
	"testing"
	"time"

	"repro/internal/osid"
)

// Unit tests for the Gateway view the controller decides from.

func TestSideInfoCountsNodesAndIdle(t *testing.T) {
	c := newCluster(t, Config{Mode: HybridV2, InitialLinux: 10})
	lin := c.SideInfo(osid.Linux)
	win := c.SideInfo(osid.Windows)
	if lin.TotalNodes != 10 || win.TotalNodes != 6 {
		t.Fatalf("totals = %d/%d", lin.TotalNodes, win.TotalNodes)
	}
	if lin.IdleNodes != 10 || win.IdleNodes != 6 {
		t.Fatalf("idle = %d/%d", lin.IdleNodes, win.IdleNodes)
	}
	if lin.CoresPerNode != 4 {
		t.Fatalf("cores per node = %d", lin.CoresPerNode)
	}
}

func TestSideInfoBusyNodesNotIdle(t *testing.T) {
	c := newCluster(t, Config{Mode: HybridV2, InitialLinux: 8})
	if _, err := c.Submit(linJob(0, 3, time.Hour)); err != nil {
		t.Fatal(err)
	}
	c.Eng.RunFor(time.Minute)
	lin := c.SideInfo(osid.Linux)
	if lin.IdleNodes != 5 {
		t.Fatalf("idle = %d, want 5 (3 busy)", lin.IdleNodes)
	}
	if lin.RunningJobs != 1 {
		t.Fatalf("running = %d", lin.RunningJobs)
	}
}

func TestSideInfoQueuedDemand(t *testing.T) {
	c := newCluster(t, Config{Mode: HybridV2, InitialLinux: 16})
	// Two Windows jobs queue against a zero-node Windows side.
	if _, err := c.Submit(winJob(0, 2, time.Hour)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(winJob(0, 1, time.Hour)); err != nil {
		t.Fatal(err)
	}
	c.Eng.RunFor(time.Minute)
	win := c.SideInfo(osid.Windows)
	if win.QueuedJobs != 2 {
		t.Fatalf("queued = %d", win.QueuedJobs)
	}
	if win.QueuedCPUs != 12 {
		t.Fatalf("queued cpus = %d, want 12", win.QueuedCPUs)
	}
	if !win.Report.Stuck || win.Report.NeededCPUs != 8 {
		t.Fatalf("report = %+v", win.Report)
	}
}

func TestSideInfoPendingAwayTracksOrders(t *testing.T) {
	c := newCluster(t, Config{Mode: HybridV2, InitialLinux: 16})
	if n := c.OrderSwitch(osid.Linux, osid.Windows, 3); n != 3 {
		t.Fatalf("ordered %d", n)
	}
	lin := c.SideInfo(osid.Linux)
	if lin.PendingAway != 3 {
		t.Fatalf("pending = %d", lin.PendingAway)
	}
	// Orders drain as switch jobs complete and reboots finish.
	c.Eng.RunFor(time.Hour)
	lin = c.SideInfo(osid.Linux)
	if lin.PendingAway != 0 {
		t.Fatalf("pending after drain = %d", lin.PendingAway)
	}
	if c.NodesOn(osid.Windows) != 3 {
		t.Fatalf("windows nodes = %d", c.NodesOn(osid.Windows))
	}
}

func TestSideInfoSwitchingNodesBelongToNeitherSide(t *testing.T) {
	c := newCluster(t, Config{Mode: HybridV2, InitialLinux: 16})
	if err := c.ForceSwitch("enode01", osid.Windows); err != nil {
		t.Fatal(err)
	}
	// Mid-switch: the node counts on neither side.
	c.Eng.RunFor(time.Second)
	lin := c.SideInfo(osid.Linux)
	win := c.SideInfo(osid.Windows)
	if lin.TotalNodes+win.TotalNodes != 15 {
		t.Fatalf("totals = %d+%d, want 15 while one switches", lin.TotalNodes, win.TotalNodes)
	}
	if c.SwitchingCount() != 1 {
		t.Fatalf("switching = %d", c.SwitchingCount())
	}
}

func TestOrderSwitchValidation(t *testing.T) {
	c := newCluster(t, Config{Mode: HybridV2, InitialLinux: 8})
	if n := c.OrderSwitch(osid.Linux, osid.Linux, 1); n != 0 {
		t.Fatal("same-OS order accepted")
	}
	if n := c.OrderSwitch(osid.None, osid.Linux, 1); n != 0 {
		t.Fatal("invalid donor accepted")
	}
	if n := c.OrderSwitch(osid.Linux, osid.Windows, 0); n != 0 {
		t.Fatal("zero count accepted")
	}
	if n := c.OrderSwitch(osid.Linux, osid.Windows, -2); n != 0 {
		t.Fatal("negative count accepted")
	}
}

func TestSideInfoInvalidOS(t *testing.T) {
	c := newCluster(t, Config{Mode: HybridV2})
	s := c.SideInfo(osid.None)
	if s.TotalNodes != 0 || s.Report.Stuck {
		t.Fatalf("SideInfo(None) = %+v", s)
	}
}

func TestSideInfoArrivedCPUsCumulative(t *testing.T) {
	c := newCluster(t, Config{Mode: HybridV2, InitialLinux: 8})
	if _, err := c.Submit(linJob(0, 2, 30*time.Minute)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(winJob(0, 1, 30*time.Minute)); err != nil {
		t.Fatal(err)
	}
	c.Eng.RunFor(2 * time.Hour) // both jobs long gone
	lin, win := c.SideInfo(osid.Linux), c.SideInfo(osid.Windows)
	// The counter is cumulative demand ever submitted — it must not
	// fall when jobs complete, or the predictive policy's differenced
	// arrival rates would go negative.
	if lin.ArrivedCPUs != 8 {
		t.Fatalf("linux arrived = %d, want 8 (2 nodes x 4 ppn)", lin.ArrivedCPUs)
	}
	if win.ArrivedCPUs != 4 {
		t.Fatalf("windows arrived = %d, want 4", win.ArrivedCPUs)
	}
	if _, err := c.Submit(linJob(2*time.Hour, 1, time.Minute)); err != nil {
		t.Fatal(err)
	}
	if got := c.SideInfo(osid.Linux).ArrivedCPUs; got != 12 {
		t.Fatalf("linux arrived after third job = %d, want 12", got)
	}
}

func TestSideInfoCarriesSwitchLatencyEstimate(t *testing.T) {
	c := newCluster(t, Config{Mode: HybridV2, InitialLinux: 8})
	for _, os := range []osid.OS{osid.Linux, osid.Windows} {
		if got, want := c.SideInfo(os).SwitchLatency, c.SwitchLatencyEstimate(os); got != want || got <= 0 {
			t.Fatalf("%s switch latency = %v, want %v (>0)", os, got, want)
		}
	}
}
