// Command benchtab regenerates every table and figure of the paper's
// evaluation (see README.md for the map) and prints them as text
// tables — the rows EXPERIMENTS.md records.
//
// Usage:
//
//	benchtab            # run every experiment
//	benchtab E8 A2      # run selected experiments
//	benchtab -list      # list experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiment IDs and exit")
	flag.Parse()

	if *list {
		for _, r := range experiments.All() {
			fmt.Println(r.ID)
		}
		return
	}

	runners := experiments.All()
	if args := flag.Args(); len(args) > 0 {
		runners = runners[:0]
		for _, id := range args {
			r, ok := experiments.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "benchtab: unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			runners = append(runners, r)
		}
	}

	failed := 0
	for _, r := range runners {
		tab, err := r.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %s: %v\n", r.ID, err)
			failed++
			continue
		}
		fmt.Println(tab.Render())
	}
	if failed > 0 {
		os.Exit(1)
	}
}
