// Queensgate Grid: the hybrid "Eridani" as part of a campus grid
// alongside single-OS clusters (paper §I and Acknowledgements, and
// Holmes & Kureshi's QGG paper, ref [2]). A router places jobs on the
// member that can serve them; Windows demand that has no static home
// overflows onto the hybrid.
//
//	go run ./examples/qgg
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/cluster"
	"repro/internal/grid"
	"repro/internal/osid"
	"repro/internal/workload"
)

func main() {
	g, err := grid.New(grid.RouteHybridLast, []grid.MemberSpec{
		// The hybrid dual-boot cluster of this paper.
		{Name: "eridani", Config: cluster.Config{
			Mode: cluster.HybridV2, Nodes: 16, InitialLinux: 8, Cycle: 5 * time.Minute}},
		// A dedicated Linux teaching cluster.
		{Name: "tauceti", Config: cluster.Config{
			Mode: cluster.Static, Nodes: 8, InitialLinux: 8}},
		// A small Windows render farm.
		{Name: "vega", Config: cluster.Config{
			Mode: cluster.Static, Nodes: 4, InitialLinux: 1}}, // 1 linux + 3 windows
	})
	if err != nil {
		log.Fatal(err)
	}

	// A campus day: Linux MD work, Windows rendering, plus a wide CFD
	// job only the 16-node hybrid can host.
	trace := workload.Merge(
		workload.Poisson(workload.PoissonConfig{
			Seed: 3, Duration: 12 * time.Hour, JobsPerHour: 5, WindowsFrac: 0.35, MaxNodes: 3,
		}),
		workload.Trace{{
			At: 2 * time.Hour, App: "ANSYS FLUENT", OS: osid.Windows,
			Owner: "cfd", Nodes: 12, PPN: 4, Runtime: 2 * time.Hour,
		}},
	)
	fmt.Printf("campus day: %d jobs across 3 clusters (%d grid cores)\n\n", len(trace), 16*4+8*4+4*4)

	if err := g.ScheduleTrace(trace); err != nil {
		log.Fatal(err)
	}
	g.RunUntilDrained(72 * time.Hour)

	fmt.Print(g.Report())
	fmt.Println("\nthe 12-node CFD job could only run on eridani — after the dual-boot")
	fmt.Println("controller pulled its Linux nodes over to Windows.")
}
