package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/sweep"
)

// maxSpecBytes bounds a submitted spec document. The committed
// documents are under a kilobyte; a megabyte leaves room for very
// wide grids while keeping a hostile body from ballooning memory.
const maxSpecBytes = 1 << 20

func (s *Server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("POST /v1/sweeps", s.handleSubmit)
	mux.HandleFunc("GET /v1/sweeps/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/sweeps/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/sweeps/{id}/events", s.handleEvents)
	return mux
}

type errorJSON struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone mid-response
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorJSON{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "jobs": s.mgr.jobCount()})
}

// handleSubmit accepts a sweep spec document, validates it through
// the same loader the CLI uses plus the served-spec path guard, and
// registers it under its content address. Submitting a spec whose
// result is already cached (or whose job already exists) returns 200
// with the existing state; a newly created job returns 201.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading spec document: %v", err)
		return
	}
	sp, err := sweep.LoadSpec(bytes.NewReader(body))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := CheckSpecPaths(sp, s.cfg.Root); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	canonical, err := sweep.MarshalSpec(sp)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	hash, err := sweep.SpecHash(sp)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	job, created, err := s.mgr.submit(sp, canonical, hash)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	status := http.StatusOK
	if created {
		status = http.StatusCreated
	}
	writeJSON(w, status, job)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.mgr.job(id)
	if !ok {
		httpError(w, http.StatusNotFound, "no job %q", id)
		return
	}
	writeJSON(w, http.StatusOK, job)
}

// handleResult serves a finished job's sweep table from the result
// cache: CSV by default, JSON with ?format=json. Unfinished jobs get
// 409 — poll the status endpoint or follow the event stream.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.mgr.job(id)
	if !ok {
		httpError(w, http.StatusNotFound, "no job %q", id)
		return
	}
	switch job.State {
	case StateDone:
	case StateFailed:
		httpError(w, http.StatusConflict, "job %s failed: %s", id, job.Error)
		return
	default:
		httpError(w, http.StatusConflict, "job %s is %s (%d/%d cells)", id, job.State, job.CellsDone, job.Cells)
		return
	}
	format := r.URL.Query().Get("format")
	switch format {
	case "", "csv":
		format = "csv"
	case "json":
	default:
		httpError(w, http.StatusBadRequest, "unknown format %q (valid: csv | json)", format)
		return
	}
	b, err := s.st.readCache(job.SpecHash, format)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if format == "json" {
		w.Header().Set("Content-Type", "application/json")
	} else {
		w.Header().Set("Content-Type", "text/csv")
	}
	w.Write(b) //nolint:errcheck // client gone mid-response
}

// sseKeepalive paces comment lines on an idle event stream so
// intermediaries do not reap the connection.
const sseKeepalive = 15 * time.Second

// handleEvents streams a job's progress as Server-Sent Events: the
// history so far (or a synthesised terminal event for jobs that
// finished before this process started), then live events until a
// terminal event, client disconnect, or server shutdown.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.mgr.job(id)
	if !ok {
		httpError(w, http.StatusNotFound, "no job %q", id)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	replay, ch, cancel := s.mgr.bc.subscribe(id)
	defer cancel()
	// Re-read the job after subscribing: a terminal event emitted
	// between the lookup above and the subscription has already pruned
	// the history and will never reach the channel.
	if j, ok := s.mgr.job(id); ok {
		job = j
	}
	if len(replay) == 0 && (job.State == StateDone || job.State == StateFailed) {
		// Finished before this process started, or history already
		// pruned: the replay is gone, the outcome is not.
		replay = []Event{terminalEvent(id, job)}
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	for _, e := range replay {
		writeSSE(w, e)
	}
	fl.Flush()
	if len(replay) > 0 && replay[len(replay)-1].terminal() {
		return
	}

	keepalive := time.NewTicker(sseKeepalive) //simlint:allow walltime -- real I/O: SSE keepalive pacing on a live HTTP stream
	defer keepalive.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.mgr.stopping():
			return
		case e, ok := <-ch:
			if !ok {
				// The job's terminal event outran this subscriber's
				// buffer; the broadcaster closed the channel so the
				// stream still ends. The job record holds the outcome.
				if j, ok := s.mgr.job(id); ok {
					writeSSE(w, terminalEvent(id, j))
					fl.Flush()
				}
				return
			}
			writeSSE(w, e)
			fl.Flush()
			if e.terminal() {
				return
			}
		case <-keepalive.C:
			fmt.Fprint(w, ": keepalive\n\n")
			fl.Flush()
		}
	}
}

// terminalEvent rebuilds a finished job's terminal event from its
// record — used when the broadcaster's history is gone (the job
// finished in an earlier process, or on completion, which prunes it)
// or when the live terminal event outran a slow subscriber.
func terminalEvent(id string, job Job) Event {
	if job.State == StateFailed {
		return Event{Type: "failed", Job: id, Done: job.CellsDone, Total: job.Cells, Err: job.Error}
	}
	return Event{Type: "done", Job: id, Done: job.Cells, Total: job.Cells, Cached: job.Cached}
}

func writeSSE(w io.Writer, e Event) {
	b, err := json.Marshal(e)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "data: %s\n\n", b)
}
