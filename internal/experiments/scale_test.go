package experiments

import (
	"bytes"
	"testing"

	"repro/internal/export"
	"repro/internal/sweep"
)

// TestE17MetroScaleSmoke is the CI smoke for the metro tier: the
// 2500-node grid must run clean, produce one ranked row per cell, and
// actually simulate something. Kept fast enough (a few seconds) to run
// unguarded — `go test -run E17` is the workflow's scale smoke job.
func TestE17MetroScaleSmoke(t *testing.T) {
	if raceEnabled {
		t.Skip("TestAllExperimentsRun/E17 already runs the metro grid under race; a second instrumented run buys nothing")
	}
	tab, err := E17MetroScale()
	if err != nil {
		t.Fatal(err)
	}
	cells := len(E17Grid().Expand())
	if len(tab.Rows) != cells {
		t.Fatalf("E17 produced %d rows, grid has %d cells", len(tab.Rows), cells)
	}
	if tab.EventsRun == 0 {
		t.Fatal("E17 ran no simulation events")
	}
}

// TestE17SweepCSVByteIdenticalAcrossWorkers pins the metro tier's
// determinism across the worker-pool axis: the E17 grid serialised at
// -workers=8 must be byte-identical to the same sweep at -workers=1.
func TestE17SweepCSVByteIdenticalAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("metro-scale sweep twice over is slow")
	}
	if raceEnabled {
		t.Skip("determinism property, not a concurrency one; internal/sweep holds the workers-1-vs-8 line under race on smaller grids")
	}
	g := E17Grid()
	csv := func(workers int) []byte {
		out, err := sweep.Run(sweep.Config{Grid: g, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := export.WriteSweepCSV(&buf, out.Rows()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial, parallel := csv(1), csv(8)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("E17 CSV diverged between workers=1 and workers=8:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
}
