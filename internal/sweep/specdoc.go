package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"
)

// SpecVersion is the sweep/scenario document version this build reads
// and writes. Loading a document with any other spec_version is an
// error, so a future incompatible format can never be half-parsed.
const SpecVersion = 1

// Spec is a versioned, replayable experiment document: a sweep grid
// plus its seeds and horizon, serialised as JSON. A saved document is
// a committed artifact — `qsim run -f` / `qsim sweep -f` replay it,
// and internal/experiments emits one per recorded sweep experiment —
// so every recorded result is reproducible from a file instead of a
// flag incantation.
//
// The canonical on-disk form is stable: SaveSpec always emits the same
// bytes for the same grid (keys in axis-registry order, two-space
// indentation, trailing newline), and SaveSpec∘LoadSpec is the
// identity on canonical documents.
type Spec struct {
	// Version is the document's spec_version (SpecVersion on save).
	Version int
	// Name labels the experiment ("" omits the field).
	Name string
	// Grid is the materialised sweep grid.
	Grid Grid
	// Warnings carries non-fatal loader diagnostics (deprecated axis
	// aliases); never serialised.
	Warnings []string
}

// specDocJSON is the document wire shape. Grid axis values are the
// compact notation's comma-lists keyed by registry key; the scalar
// keys (seed, cycle, horizon) are hoisted to the document top level.
type specDocJSON struct {
	Version *int                       `json:"spec_version"`
	Name    string                     `json:"name,omitempty"`
	Grid    map[string]json.RawMessage `json:"grid"`
	Seeds   *specSeedsJSON             `json:"seeds,omitempty"`
	Cycle   string                     `json:"cycle,omitempty"`
	Horizon string                     `json:"horizon,omitempty"`
}

type specSeedsJSON struct {
	Base int64 `json:"base"`
}

// hoistedKeys are the grid-spec scalars that live at the document top
// level instead of inside the grid object.
var hoistedKeys = map[string]string{
	"seed":    `"seeds": {"base": ...}`,
	"cycle":   `"cycle"`,
	"horizon": `"horizon"`,
}

// LoadSpec parses a sweep/scenario document. Unknown top-level fields,
// unknown grid axis keys (the error lists the valid set) and unknown
// spec_versions are errors; deprecated axis aliases parse but surface
// in Spec.Warnings.
func LoadSpec(r io.Reader) (Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var doc specDocJSON
	if err := dec.Decode(&doc); err != nil {
		return Spec{}, fmt.Errorf("sweep: spec document: %w", err)
	}
	if doc.Version == nil {
		return Spec{}, fmt.Errorf("sweep: spec document has no spec_version (valid: %d)", SpecVersion)
	}
	if *doc.Version != SpecVersion {
		return Spec{}, fmt.Errorf("sweep: unsupported spec_version %d (valid: %d)", *doc.Version, SpecVersion)
	}
	// Reassemble the grid object into compact notation, keys in
	// registry order so diagnostics and repeated-key checks are
	// deterministic; the axis registry then does all validation.
	var fields []string
	seen := 0
	for _, ax := range registry {
		for _, key := range []string{ax.Key, ax.Alias} {
			if key == "" {
				continue
			}
			raw, ok := doc.Grid[key]
			if !ok {
				continue
			}
			if hoisted, is := hoistedKeys[key]; is {
				return Spec{}, fmt.Errorf("sweep: spec document grid key %q belongs at the document top level as %s", key, hoisted)
			}
			var val string
			if err := json.Unmarshal(raw, &val); err != nil {
				return Spec{}, fmt.Errorf("sweep: spec document grid key %q: value must be a string of comma-separated values", key)
			}
			// The values are joined into compact notation below; a
			// separator inside one could smuggle in extra keys.
			if strings.Contains(val, ";") {
				return Spec{}, fmt.Errorf("sweep: spec document grid key %q: value must not contain \";\"", key)
			}
			fields = append(fields, key+"="+val)
			seen++
		}
	}
	if seen != len(doc.Grid) {
		for key := range doc.Grid {
			if ax, _ := axisByKey(key); ax == nil {
				return Spec{}, fmt.Errorf("sweep: spec document: unknown grid axis key %q (valid: %s)",
					key, strings.Join(SpecKeys(), " | "))
			}
		}
	}
	g, warnings, err := ParseGridSpecWarn(strings.Join(fields, ";"))
	if err != nil {
		return Spec{}, err
	}
	if doc.Seeds != nil {
		g.BaseSeed = doc.Seeds.Base
	}
	if doc.Cycle != "" {
		d, err := time.ParseDuration(doc.Cycle)
		if err != nil || d <= 0 {
			return Spec{}, fmt.Errorf("sweep: spec document: bad cycle %q", doc.Cycle)
		}
		g.Cycle = d
	}
	if doc.Horizon != "" {
		d, err := time.ParseDuration(doc.Horizon)
		if err != nil || d <= 0 {
			return Spec{}, fmt.Errorf("sweep: spec document: bad horizon %q", doc.Horizon)
		}
		g.Horizon = d
	}
	return Spec{Version: SpecVersion, Name: doc.Name, Grid: g, Warnings: warnings}, nil
}

// SaveSpec writes the canonical serialisation of a spec: fixed field
// order, grid axis keys in registry order, two-space indentation and a
// trailing newline. Saving what LoadSpec read reproduces a canonical
// document byte for byte. It errors when the grid cannot be expressed
// in spec notation (custom traces, bespoke topologies).
func SaveSpec(w io.Writer, sp Spec) error {
	b, err := MarshalSpec(sp)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// MarshalSpec renders the canonical document bytes for SaveSpec.
func MarshalSpec(sp Spec) ([]byte, error) {
	// Grid fields with no document representation must refuse to
	// serialise — silently dropping one would make the "replayable
	// artifact" replay a different experiment.
	if sp.Grid.InitialLinux != 0 {
		return nil, fmt.Errorf("sweep: InitialLinux is not expressible in a spec document")
	}
	var buf bytes.Buffer
	buf.WriteString("{\n")
	buf.WriteString(fmt.Sprintf("  \"spec_version\": %d", SpecVersion))
	if sp.Name != "" {
		name, _ := json.Marshal(sp.Name)
		buf.WriteString(",\n  \"name\": " + string(name))
	}
	buf.WriteString(",\n  \"grid\": {")
	first := true
	for _, ax := range registry {
		if _, hoisted := hoistedKeys[ax.Key]; hoisted {
			continue
		}
		val, err := ax.Format(sp.Grid)
		if err != nil {
			return nil, err
		}
		if val == "" {
			continue
		}
		if !first {
			buf.WriteString(",")
		}
		first = false
		enc, _ := json.Marshal(val)
		buf.WriteString(fmt.Sprintf("\n    %q: %s", ax.Key, enc))
	}
	buf.WriteString("\n  }")
	if sp.Grid.BaseSeed != 0 {
		buf.WriteString(fmt.Sprintf(",\n  \"seeds\": {\n    \"base\": %d\n  }", sp.Grid.BaseSeed))
	}
	if sp.Grid.Cycle > 0 {
		buf.WriteString(fmt.Sprintf(",\n  \"cycle\": %q", sp.Grid.Cycle.String()))
	}
	if sp.Grid.Horizon > 0 {
		buf.WriteString(fmt.Sprintf(",\n  \"horizon\": %q", sp.Grid.Horizon.String()))
	}
	buf.WriteString("\n}\n")
	return buf.Bytes(), nil
}
