//go:build race

package experiments

// raceEnabled reports that this test binary was built with the race
// detector. The city tier (E18) is skipped under race: it is a
// single-cell sweep, so one worker runs it serially and the detector
// finds no concurrency the metro tier (E17, four concurrent cells)
// does not already cover — while its ~16 s simulation balloons past
// five minutes under instrumentation.
const raceEnabled = true
