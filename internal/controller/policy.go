// Package controller implements the decision-making heart of
// dualboot-oscar: the daemon programs on the two head nodes that
// exchange queue states on a fixed cycle and decide when to reboot
// idle compute nodes into the other operating system (paper §III-B3,
// §IV-A, Figure 11).
//
// The paper's deployed rule is first-come first-served over stuck
// queues; §V notes that "this could be improved to adapt the rules
// from diverse administration requirements", so alongside the paper's
// policy this package ships an adaptive suite: a threshold rule that
// reacts to pending-work imbalance, a hysteresis rule with separate
// donate/reclaim watermarks and a minimum dwell time, a predictive
// rule that extrapolates EWMA arrival rates across the switch
// latency, and a demand-proportional fair-share rule. ParsePolicy is
// the name registry every CLI flag and sweep axis resolves through.
package controller

import (
	"fmt"
	"time"

	"repro/internal/detector"
	"repro/internal/osid"
)

// SideState is everything the controller knows about one side of the
// hybrid when deciding.
type SideState struct {
	OS     osid.OS
	Report detector.Report

	// Node accounting, maintained by the cluster:
	TotalNodes   int // nodes booted into (or booting toward) this OS
	IdleNodes    int // up with no busy CPUs
	PendingAway  int // switch/reboot orders outstanding against this side
	CoresPerNode int

	// Richer demand info for the extension policies (the paper's
	// detectors expose only the head of the queue; these come from the
	// same scheduler interfaces).
	RunningJobs int
	QueuedJobs  int
	QueuedCPUs  int

	// ArrivedCPUs is the cumulative CPU demand ever submitted to this
	// side; the predictive policy differences it across cycles to
	// observe arrival rates.
	ArrivedCPUs int
	// SwitchLatency is the cluster's planning estimate for a donated
	// node to land on this side (shutdown + boot chain). The
	// predictive policy discounts switch benefit by it: backlog that
	// drains before a reboot completes is not worth a reboot.
	SwitchLatency time.Duration
}

// DonatableNodes is how many nodes this side could give away right now
// without touching running work.
func (s SideState) DonatableNodes() int {
	n := s.IdleNodes - s.PendingAway
	if n < 0 {
		return 0
	}
	return n
}

// nodesFor converts a CPU demand into node count on this side's
// hardware.
func (s SideState) nodesFor(cpus int) int {
	cpn := s.coresPerNode()
	n := (cpus + cpn - 1) / cpn
	if n < 1 {
		n = 1
	}
	return n
}

func (s SideState) coresPerNode() int {
	if s.CoresPerNode <= 0 {
		return 4
	}
	return s.CoresPerNode
}

// pressure is the side's queued CPU demand per core of its current
// capacity — the normalised backlog the adaptive policies compare
// across sides. A side with queued work but no nodes at all is under
// unbounded pressure; it saturates to the raw CPU count so comparisons
// stay finite and deterministic.
func (s SideState) pressure() float64 {
	cap := s.TotalNodes * s.coresPerNode()
	if cap <= 0 {
		return float64(s.QueuedCPUs)
	}
	return float64(s.QueuedCPUs) / float64(cap)
}

// needCPUs is the CPU demand the side cannot serve with its own idle
// capacity: queued CPUs minus idle cores, floored at the stuck
// detector's head-of-queue request (a wide job may be unable to use
// fragmented idle cores even when the arithmetic says they suffice).
func (s SideState) needCPUs() int {
	need := s.QueuedCPUs - s.IdleNodes*s.coresPerNode()
	if s.Report.Stuck && need < s.Report.NeededCPUs {
		need = s.Report.NeededCPUs
	}
	if need < 0 {
		return 0
	}
	return need
}

// Decision is a controller verdict for one cycle.
type Decision struct {
	Act    bool
	Target osid.OS // side that gains nodes
	Donor  osid.OS // side that loses nodes
	Nodes  int
	Reason string
}

// String renders the decision for logs.
func (d Decision) String() string {
	if !d.Act {
		return "no-switch: " + d.Reason
	}
	return fmt.Sprintf("switch %d node(s) %s->%s: %s", d.Nodes, d.Donor, d.Target, d.Reason)
}

// Policy decides whether to move nodes given both sides' states.
type Policy interface {
	Name() string
	Decide(now time.Duration, linux, windows SideState) Decision
}

// sidePairs orders the (want, donor) directions the way the control
// cycle does: the Windows report opens the cycle (Figure 11 steps
// 1–3), so a Windows request wins ties.
func sidePairs(linux, windows SideState) [2]struct{ want, donor SideState } {
	return [2]struct{ want, donor SideState }{
		{windows, linux},
		{linux, windows},
	}
}

// giveBound caps a donation at the donor's donatable idle nodes, its
// reserve floor, and the policy's per-cycle step.
func giveBound(donor SideState, want, reserve, maxStep int) int {
	n := want
	if avail := donor.DonatableNodes(); n > avail {
		n = avail
	}
	if keep := donor.TotalNodes - reserve; n > keep {
		n = keep
	}
	if maxStep > 0 && n > maxStep {
		n = maxStep
	}
	if n < 0 {
		return 0
	}
	return n
}

// FCFS is the paper's deployed policy: if exactly one scheduler is
// stuck and the other side has idle nodes, move enough nodes to run
// the stuck job. When both are stuck, the Windows request wins the tie
// because the control cycle begins with the Windows queue state
// arriving at the Linux decision maker (Figure 11 steps 1–3).
type FCFS struct{}

// Name implements Policy.
func (FCFS) Name() string { return "fcfs" }

// Decide implements Policy.
func (FCFS) Decide(now time.Duration, linux, windows SideState) Decision {
	for _, pair := range sidePairs(linux, windows) {
		if !pair.want.Report.Stuck {
			continue
		}
		avail := pair.donor.DonatableNodes()
		if avail == 0 {
			continue
		}
		need := pair.donor.nodesFor(pair.want.Report.NeededCPUs)
		n := min(need, avail)
		return Decision{
			Act:    true,
			Target: pair.want.OS,
			Donor:  pair.donor.OS,
			Nodes:  n,
			Reason: fmt.Sprintf("%s stuck on job %s needing %d CPUs", pair.want.OS, pair.want.Report.StuckJobID, pair.want.Report.NeededCPUs),
		}
	}
	return Decision{Reason: "no stuck queue with donatable nodes"}
}

// Threshold donates when the pending-work imbalance between the sides
// exceeds a configurable ratio: the needy side's normalised backlog
// (queued CPUs per capacity core) must be at least Ratio times the
// donor's. Unlike FCFS it does not wait for a fully stuck scheduler —
// a queue merely growing faster than its side can serve already pulls
// nodes — but it reacts to the instantaneous queue every cycle, so on
// oscillating demand it switches eagerly in both directions.
type Threshold struct {
	// Ratio is the pending-work imbalance that triggers a donation
	// (needy pressure ≥ Ratio × donor pressure; default 2). Any
	// backlog against an idle donor trips the rule regardless of
	// Ratio.
	Ratio float64
	// MinQueuedCPUs is the smallest queued demand worth a reboot
	// (default 1).
	MinQueuedCPUs int
	// Reserve is the node floor the donor always keeps (default 1).
	Reserve int
	// MaxStep caps nodes moved per cycle (default 4).
	MaxStep int
}

func (p Threshold) withDefaults() Threshold {
	if p.Ratio <= 0 {
		p.Ratio = 2
	}
	if p.MinQueuedCPUs <= 0 {
		p.MinQueuedCPUs = 1
	}
	if p.Reserve <= 0 {
		p.Reserve = 1
	}
	if p.MaxStep <= 0 {
		p.MaxStep = 4
	}
	return p
}

// Name implements Policy.
func (p Threshold) Name() string { return "threshold" }

// Decide implements Policy.
func (p Threshold) Decide(now time.Duration, linux, windows SideState) Decision {
	p = p.withDefaults()
	for _, pair := range sidePairs(linux, windows) {
		want, donor := pair.want, pair.donor
		need := want.needCPUs()
		if need <= 0 || want.QueuedCPUs < p.MinQueuedCPUs {
			continue
		}
		pw, pd := want.pressure(), donor.pressure()
		if pd > 0 && pw < p.Ratio*pd {
			continue
		}
		n := giveBound(donor, donor.nodesFor(need), p.Reserve, p.MaxStep)
		if n <= 0 {
			continue
		}
		return Decision{
			Act:    true,
			Target: want.OS,
			Donor:  donor.OS,
			Nodes:  n,
			Reason: fmt.Sprintf("%s backlog %d CPUs, pressure %.2f vs %.2f (ratio %g)", want.OS, need, pw, pd, p.Ratio),
		}
	}
	return Decision{Reason: "pending-work imbalance under ratio"}
}

// Hysteresis is the anti-thrash rule: separate donate and reclaim
// watermarks open a dead band between "busy enough to pull nodes" and
// "idle enough to give them up", and a minimum dwell time after every
// switch stops the reboot ping-pong the paper's five-minute boot cost
// makes expensive. A side gains nodes only when its own pressure is
// above DonateWater while the donor's is below ReclaimWater — demand
// oscillating inside the band moves nothing.
type Hysteresis struct {
	// DonateWater is the normalised backlog (queued CPUs per capacity
	// core) above which a side may pull nodes (default 0.75).
	DonateWater float64
	// ReclaimWater is the donor-side pressure below which it may give
	// nodes up (default 0.25). DonateWater − ReclaimWater is the dead
	// band.
	ReclaimWater float64
	// MinDwell is the minimum time between acting decisions (default
	// DefaultDwell). A switch at t blocks every action before
	// t+MinDwell.
	MinDwell time.Duration
	// Reserve is the node floor the donor always keeps (default 1).
	Reserve int
	// MaxStep caps nodes moved per cycle (default 4).
	MaxStep int

	lastSwitch time.Duration
	switched   bool
}

func (p *Hysteresis) defaults() (donate, reclaim float64, dwell time.Duration, reserve, step int) {
	donate, reclaim, dwell, reserve, step = p.DonateWater, p.ReclaimWater, p.MinDwell, p.Reserve, p.MaxStep
	if donate <= 0 {
		donate = 0.75
	}
	if reclaim <= 0 {
		reclaim = 0.25
	}
	if dwell <= 0 {
		dwell = DefaultDwell
	}
	if reserve <= 0 {
		reserve = 1
	}
	if step <= 0 {
		step = 4
	}
	return
}

// Name implements Policy.
func (p *Hysteresis) Name() string { return "hysteresis" }

// Decide implements Policy.
func (p *Hysteresis) Decide(now time.Duration, linux, windows SideState) Decision {
	donate, reclaim, dwell, reserve, step := p.defaults()
	if p.switched && now-p.lastSwitch < dwell {
		return Decision{Reason: fmt.Sprintf("dwell: %v since last switch < %v", now-p.lastSwitch, dwell)}
	}
	for _, pair := range sidePairs(linux, windows) {
		want, donor := pair.want, pair.donor
		need := want.needCPUs()
		if need <= 0 || want.pressure() < donate || donor.pressure() > reclaim {
			continue
		}
		n := giveBound(donor, donor.nodesFor(need), reserve, step)
		if n <= 0 {
			continue
		}
		p.lastSwitch = now
		p.switched = true
		return Decision{
			Act:    true,
			Target: want.OS,
			Donor:  donor.OS,
			Nodes:  n,
			Reason: fmt.Sprintf("%s pressure %.2f over donate watermark %g, %s under reclaim %g", want.OS, want.pressure(), donate, donor.OS, reclaim),
		}
	}
	return Decision{Reason: "both sides inside the watermark band"}
}

// Predictive extrapolates demand instead of reacting to it: it keeps
// an exponentially weighted moving average of each side's CPU arrival
// rate (differencing SideState.ArrivedCPUs across cycles) and donates
// only when the backlog projected at switch-landing time — current
// queue plus expected arrivals over SwitchLatency, minus the idle
// capacity already on the side — is still positive. The switch
// latency is the discount: a queue that drains before a reboot could
// land never justifies the reboot, while a long boot chain raises the
// bar for acting at all.
type Predictive struct {
	// Alpha weights the newest rate observation in the EWMA (default
	// 0.3).
	Alpha float64
	// Reserve is the node floor the donor always keeps (default 1).
	Reserve int
	// MaxStep caps nodes moved per cycle (default 4).
	MaxStep int
	// FallbackLatency stands in when the gateway reports no
	// SwitchLatency estimate (default 5m, the paper's switch bound).
	FallbackLatency time.Duration

	warmed      bool
	lastNow     time.Duration
	lastArrived map[osid.OS]int
	rate        map[osid.OS]float64 // EWMA, CPUs per hour
}

// Name implements Policy.
func (p *Predictive) Name() string { return "predictive" }

// observe updates the per-side arrival-rate EWMAs from the cumulative
// arrival counters. The first cycle only primes the counters: there
// is no interval to rate over yet.
func (p *Predictive) observe(now time.Duration, sides ...SideState) bool {
	alpha := p.Alpha
	if alpha <= 0 || alpha > 1 {
		alpha = 0.3
	}
	if p.lastArrived == nil {
		p.lastArrived = map[osid.OS]int{}
		p.rate = map[osid.OS]float64{}
	}
	dt := now - p.lastNow
	ready := p.warmed && dt > 0
	for _, s := range sides {
		if ready {
			obs := float64(s.ArrivedCPUs-p.lastArrived[s.OS]) / dt.Hours()
			p.rate[s.OS] = alpha*obs + (1-alpha)*p.rate[s.OS]
		}
		p.lastArrived[s.OS] = s.ArrivedCPUs
	}
	if dt > 0 || !p.warmed {
		p.lastNow = now
		p.warmed = true
	}
	return ready
}

// Decide implements Policy.
func (p *Predictive) Decide(now time.Duration, linux, windows SideState) Decision {
	reserve, step := p.Reserve, p.MaxStep
	if reserve <= 0 {
		reserve = 1
	}
	if step <= 0 {
		step = 4
	}
	if !p.observe(now, linux, windows) {
		return Decision{Reason: "warming up: no arrival-rate history yet"}
	}
	for _, pair := range sidePairs(linux, windows) {
		want, donor := pair.want, pair.donor
		horizon := want.SwitchLatency
		if horizon <= 0 {
			horizon = p.FallbackLatency
		}
		if horizon <= 0 {
			horizon = 5 * time.Minute
		}
		// Projected backlog when a donated node would land: what is
		// queued now, plus what the EWMA says arrives while the node
		// reboots, minus the idle cores already serving the side. A
		// stuck head-of-queue job floors the projection — idle cores
		// it cannot use do not serve it.
		projected := float64(want.QueuedCPUs) + p.rate[want.OS]*horizon.Hours() - float64(want.IdleNodes*want.coresPerNode())
		if want.Report.Stuck && projected < float64(want.Report.NeededCPUs) {
			projected = float64(want.Report.NeededCPUs)
		}
		if projected < 1 {
			continue // queue drains before a switch could land
		}
		// The donor must stay ahead of its own predicted demand after
		// the donation.
		donorProjected := float64(donor.QueuedCPUs) + p.rate[donor.OS]*horizon.Hours()
		surplus := float64(donor.DonatableNodes()*donor.coresPerNode()) - donorProjected
		if surplus < float64(donor.coresPerNode()) {
			continue
		}
		wantNodes := donor.nodesFor(int(projected + 0.5))
		if bySurplus := int(surplus) / donor.coresPerNode(); wantNodes > bySurplus {
			wantNodes = bySurplus
		}
		n := giveBound(donor, wantNodes, reserve, step)
		if n <= 0 {
			continue
		}
		return Decision{
			Act:    true,
			Target: want.OS,
			Donor:  donor.OS,
			Nodes:  n,
			Reason: fmt.Sprintf("%s projected backlog %.0f CPUs at +%v (rate %.1f cpu/h)", want.OS, projected, horizon, p.rate[want.OS]),
		}
	}
	return Decision{Reason: "no side with surviving projected backlog"}
}

// FairShare targets a node split proportional to total queued CPU
// demand on each side, rather than reacting only to fully stuck
// queues. It moves at most MaxStep nodes per cycle.
type FairShare struct {
	MaxStep int // per-cycle cap, default 2
}

// Name implements Policy.
func (p FairShare) Name() string { return "fairshare" }

// Decide implements Policy.
func (p FairShare) Decide(now time.Duration, linux, windows SideState) Decision {
	step := p.MaxStep
	if step <= 0 {
		step = 2
	}
	demandL := linux.QueuedCPUs + linux.RunningJobs // running jobs hold their side
	demandW := windows.QueuedCPUs + windows.RunningJobs
	total := linux.TotalNodes + windows.TotalNodes
	if total == 0 || demandL+demandW == 0 {
		return Decision{Reason: "no demand"}
	}
	wantL := total * demandL / (demandL + demandW)
	// Keep at least one node on a side that has any demand at all.
	if demandL > 0 && wantL == 0 {
		wantL = 1
	}
	if demandW > 0 && wantL == total {
		wantL = total - 1
	}
	delta := wantL - linux.TotalNodes
	switch {
	case delta > 0:
		n := min(min(delta, step), windows.DonatableNodes())
		if n <= 0 {
			return Decision{Reason: "windows has nothing to donate"}
		}
		return Decision{Act: true, Target: osid.Linux, Donor: osid.Windows, Nodes: n,
			Reason: fmt.Sprintf("fair split wants %d linux nodes, have %d", wantL, linux.TotalNodes)}
	case delta < 0:
		n := min(min(-delta, step), linux.DonatableNodes())
		if n <= 0 {
			return Decision{Reason: "linux has nothing to donate"}
		}
		return Decision{Act: true, Target: osid.Windows, Donor: osid.Linux, Nodes: n,
			Reason: fmt.Sprintf("fair split wants %d linux nodes, have %d", wantL, linux.TotalNodes)}
	default:
		return Decision{Reason: "split already fair"}
	}
}
