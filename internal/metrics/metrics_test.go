package metrics

import (
	"strings"
	"testing"
	"time"

	"repro/internal/osid"
)

// fakeClock drives the recorder deterministically.
type fakeClock struct{ t time.Duration }

func (c *fakeClock) now() time.Duration { return c.t }

func TestUtilisationSingleJob(t *testing.T) {
	c := &fakeClock{}
	r := NewRecorder(c.now, 8) // 2 nodes × 4 cores
	r.JobSubmitted("j1", osid.Linux, "GULP", 4)
	r.JobStarted("j1")
	c.t = time.Hour
	r.JobEnded("j1", true)
	c.t = 2 * time.Hour
	s := r.Summarise(2)
	// 4 cores busy for 1h of a 2h × 8-core window = 25%.
	if s.Utilisation < 0.249 || s.Utilisation > 0.251 {
		t.Fatalf("utilisation = %v", s.Utilisation)
	}
	if s.UtilisationOS[osid.Linux] != s.Utilisation || s.UtilisationOS[osid.Windows] != 0 {
		t.Fatalf("per-OS = %v", s.UtilisationOS)
	}
}

func TestWaits(t *testing.T) {
	c := &fakeClock{}
	r := NewRecorder(c.now, 4)
	r.JobSubmitted("a", osid.Windows, "Opera", 4)
	c.t = 10 * time.Minute
	r.JobStarted("a")
	c.t = 30 * time.Minute
	r.JobEnded("a", true)
	r.JobSubmitted("b", osid.Windows, "Opera", 4)
	c.t = 40 * time.Minute
	r.JobStarted("b")
	c.t = time.Hour
	r.JobEnded("b", true)
	s := r.Summarise(1)
	if s.MeanWait[osid.Windows] != 10*time.Minute {
		t.Fatalf("mean wait = %v", s.MeanWait[osid.Windows])
	}
	if s.MaxWait[osid.Windows] != 10*time.Minute {
		t.Fatalf("max wait = %v", s.MaxWait[osid.Windows])
	}
	if s.JobsSubmitted[osid.Windows] != 2 || s.JobsCompleted[osid.Windows] != 2 {
		t.Fatalf("counts = %+v", s)
	}
	if s.Makespan != time.Hour {
		t.Fatalf("makespan = %v", s.Makespan)
	}
}

// TestRequeueKeepsFirstStartWait pins the requeue semantics: a
// rerunnable job interrupted by node loss and restarted keeps its
// first start (the wait measures submission to first service), counts
// its restarts, and only integrates busy cores while actually
// running.
func TestRequeueKeepsFirstStartWait(t *testing.T) {
	c := &fakeClock{}
	r := NewRecorder(c.now, 8)
	r.JobSubmitted("j1", osid.Linux, "LAMMPS", 4)
	c.t = 10 * time.Minute
	r.JobStarted("j1")
	c.t = 40 * time.Minute
	r.JobInterrupted("j1") // node lost; back to the queue
	c.t = time.Hour
	r.JobStarted("j1") // second attempt
	c.t = 2 * time.Hour
	r.JobEnded("j1", true)
	s := r.Summarise(2)

	// Wait is submission → *first* start, not the restart.
	if want := 10 * time.Minute; s.MeanWait[osid.Linux] != want {
		t.Fatalf("wait = %v, want %v (first-start semantics)", s.MeanWait[osid.Linux], want)
	}
	// Busy-core integration covers only the two running windows:
	// 30m + 60m = 90m of 4 cores over a 2h × 8-core window.
	want := (90 * time.Minute).Seconds() * 4 / ((2 * time.Hour).Seconds() * 8)
	if diff := s.Utilisation - want; diff < -1e-9 || diff > 1e-9 {
		t.Fatalf("utilisation = %v, want %v (no busy time while requeued)", s.Utilisation, want)
	}
	jobs := r.Jobs()
	if len(jobs) != 1 || jobs[0].Restarts != 1 {
		t.Fatalf("jobs = %+v, want one record with one restart", jobs)
	}
	if jobs[0].Started != 10*time.Minute || jobs[0].Ended != 2*time.Hour {
		t.Fatalf("record spans %v..%v, want 10m..2h", jobs[0].Started, jobs[0].Ended)
	}
	if got := jobs[0].BusyTime(); got != 90*time.Minute {
		t.Fatalf("busy time = %v, want 90m (running windows only)", got)
	}
	// Per-app CPU-hours follow actual service, not Ended-Started: the
	// 20-minute requeued gap must not count as compute.
	apps := r.AppStats()
	if len(apps) != 1 {
		t.Fatalf("app stats = %+v", apps)
	}
	if wantCPUH := 4 * 1.5; apps[0].CPUHours != wantCPUH {
		t.Fatalf("CPU-hours = %v, want %v", apps[0].CPUHours, wantCPUH)
	}
}

// A job interrupted and never restarted must stop integrating busy
// cores at the interrupt, and ending it afterwards must not
// double-release.
func TestInterruptWithoutRestartReleasesOnce(t *testing.T) {
	c := &fakeClock{}
	r := NewRecorder(c.now, 4)
	r.JobSubmitted("j1", osid.Windows, "Opera", 4)
	r.JobStarted("j1")
	c.t = time.Hour
	r.JobInterrupted("j1")
	c.t = 2 * time.Hour
	r.JobEnded("j1", false)
	c.t = 4 * time.Hour
	s := r.Summarise(1)
	// 4 cores × 1h of a 4h × 4-core window = 25%.
	want := 0.25
	if diff := s.Utilisation - want; diff < -1e-9 || diff > 1e-9 {
		t.Fatalf("utilisation = %v, want %v", s.Utilisation, want)
	}
	if s.JobsCompleted[osid.Windows] != 0 {
		t.Fatalf("failed job counted as completed: %+v", s.JobsCompleted)
	}
}

func TestSwitchRecords(t *testing.T) {
	c := &fakeClock{}
	r := NewRecorder(c.now, 4)
	r.SwitchStarted("n1", osid.Linux, osid.Windows)
	c.t = 4 * time.Minute
	r.SwitchFinished("n1", true)
	r.SwitchStarted("n2", osid.Windows, osid.Linux)
	c.t = 6 * time.Minute
	r.SwitchFinished("n2", false)
	c.t = 10 * time.Minute

	s := r.Summarise(2)
	if s.Switches != 2 || s.SwitchesOK != 1 {
		t.Fatalf("switches = %d ok = %d", s.Switches, s.SwitchesOK)
	}
	if s.MeanSwitch != 3*time.Minute {
		t.Fatalf("mean switch = %v", s.MeanSwitch)
	}
	if s.MaxSwitch != 4*time.Minute {
		t.Fatalf("max switch = %v", s.MaxSwitch)
	}
	// Switch overhead: n1 switching 0–4m, n2 4–6m → 6 node-minutes of
	// 20 node-minutes total = 30%.
	if s.SwitchOverhead < 0.299 || s.SwitchOverhead > 0.301 {
		t.Fatalf("overhead = %v", s.SwitchOverhead)
	}
	recs := r.Switches()
	if len(recs) != 2 || recs[0].Node != "n1" || recs[0].Duration() != 4*time.Minute {
		t.Fatalf("records = %+v", recs)
	}
}

func TestSwitchFinishedUnknownNodeIgnored(t *testing.T) {
	c := &fakeClock{}
	r := NewRecorder(c.now, 4)
	r.SwitchFinished("ghost", true)
	if len(r.Switches()) != 0 {
		t.Fatal("phantom switch recorded")
	}
}

func TestDuplicateSubmissionIgnored(t *testing.T) {
	c := &fakeClock{}
	r := NewRecorder(c.now, 4)
	r.JobSubmitted("x", osid.Linux, "a", 2)
	r.JobSubmitted("x", osid.Linux, "a", 2)
	if len(r.Jobs()) != 1 {
		t.Fatalf("jobs = %d", len(r.Jobs()))
	}
}

func TestUnknownJobEventsIgnored(t *testing.T) {
	c := &fakeClock{}
	r := NewRecorder(c.now, 4)
	r.JobStarted("nope")
	r.JobEnded("nope", true)
	s := r.Summarise(1)
	if s.Utilisation != 0 {
		t.Fatalf("utilisation = %v", s.Utilisation)
	}
}

func TestNodeUpDownIntegration(t *testing.T) {
	c := &fakeClock{}
	r := NewRecorder(c.now, 8)
	r.NodeUp(osid.Linux)
	r.NodeUp(osid.Linux)
	c.t = time.Hour
	r.NodeDown(osid.Linux)
	c.t = 2 * time.Hour
	r.Summarise(2)
	// integration is internal; the guard here is that NodeDown below
	// zero clamps rather than corrupting state
	r.NodeDown(osid.Linux)
	r.NodeDown(osid.Linux)
	r.NodeDown(osid.Linux)
	c.t = 3 * time.Hour
	r.Summarise(2) // must not panic
}

func TestWaitPercentile(t *testing.T) {
	c := &fakeClock{}
	r := NewRecorder(c.now, 100)
	for i, wait := range []time.Duration{0, time.Minute, 2 * time.Minute, 3 * time.Minute, 100 * time.Minute} {
		id := string(rune('a' + i))
		r.JobSubmitted(id, osid.Linux, "x", 1)
		c.t += wait
		r.JobStarted(id)
		r.JobEnded(id, true)
		c.t = 0 // waits measured per-job; reset clock trick
		// NOTE: resetting the fake clock would panic advance(); instead
		// keep time monotonic below.
		c.t = time.Duration(i+1) * 200 * time.Minute
	}
	if got := r.WaitPercentile(osid.Linux, 0); got != 0 {
		t.Fatalf("p0 = %v", got)
	}
	p100 := r.WaitPercentile(osid.Linux, 100)
	if p100 < 100*time.Minute {
		t.Fatalf("p100 = %v", p100)
	}
	if r.WaitPercentile(osid.Windows, 50) != 0 {
		t.Fatal("empty side percentile should be 0")
	}
}

func TestSummariseEmpty(t *testing.T) {
	c := &fakeClock{}
	r := NewRecorder(c.now, 0)
	s := r.Summarise(0)
	if s.Utilisation != 0 || s.Switches != 0 {
		t.Fatalf("s = %+v", s)
	}
}

func TestClockBackwardsPanics(t *testing.T) {
	c := &fakeClock{t: time.Hour}
	r := NewRecorder(c.now, 4)
	r.JobSubmitted("x", osid.Linux, "a", 1)
	c.t = 0
	defer func() {
		if recover() == nil {
			t.Fatal("backwards clock not detected")
		}
	}()
	r.JobSubmitted("y", osid.Linux, "a", 1)
}

func TestTableRendering(t *testing.T) {
	out := Table([]string{"mode", "util"}, [][]string{
		{"hybrid-v2", "81.2%"},
		{"static", "55.0%"},
	})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "mode") || !strings.Contains(lines[0], "util") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[2], "hybrid-v2") {
		t.Fatalf("row = %q", lines[2])
	}
}

func TestFormatters(t *testing.T) {
	if Pct(0.8125) != "81.2%" {
		t.Fatalf("Pct = %q", Pct(0.8125))
	}
	if Dur(90*time.Second+300*time.Millisecond) != "1m30s" {
		t.Fatalf("Dur = %q", Dur(90*time.Second+300*time.Millisecond))
	}
}

func TestCancelledInQueueNotCompleted(t *testing.T) {
	c := &fakeClock{}
	r := NewRecorder(c.now, 4)
	r.JobSubmitted("q", osid.Linux, "x", 2)
	c.t = time.Minute
	r.JobEnded("q", false) // cancelled before start
	s := r.Summarise(1)
	if s.JobsCompleted[osid.Linux] != 0 || s.JobsSubmitted[osid.Linux] != 1 {
		t.Fatalf("s = %+v", s)
	}
}

func TestAppStats(t *testing.T) {
	c := &fakeClock{}
	r := NewRecorder(c.now, 64)
	// Two DL_POLY runs with waits of 0 and 10m, one Opera run.
	r.JobSubmitted("a", osid.Linux, "DL_POLY", 16)
	r.JobStarted("a")
	c.t = time.Hour
	r.JobEnded("a", true)

	r.JobSubmitted("b", osid.Linux, "DL_POLY", 16)
	c.t = time.Hour + 10*time.Minute
	r.JobStarted("b")
	c.t = 2 * time.Hour
	r.JobEnded("b", true)

	r.JobSubmitted("c", osid.Windows, "Opera", 4)
	r.JobStarted("c")
	c.t = 3 * time.Hour
	r.JobEnded("c", true)

	// An incomplete job must not show up.
	r.JobSubmitted("d", osid.Linux, "DL_POLY", 16)

	stats := r.AppStats()
	if len(stats) != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	dl := stats[0]
	if dl.App != "DL_POLY" || dl.Completed != 2 {
		t.Fatalf("dl = %+v", dl)
	}
	if dl.MeanWait != 5*time.Minute {
		t.Fatalf("dl mean wait = %v", dl.MeanWait)
	}
	if dl.LongestWait != 10*time.Minute || dl.ShortestWait != 0 {
		t.Fatalf("dl wait range = %v..%v", dl.ShortestWait, dl.LongestWait)
	}
	// a ran 1h on 16 cpus, b ran 50m on 16 cpus.
	wantCPUh := 16.0 + 16.0*50.0/60.0
	if dl.CPUHours < wantCPUh-0.01 || dl.CPUHours > wantCPUh+0.01 {
		t.Fatalf("dl cpu hours = %v, want %v", dl.CPUHours, wantCPUh)
	}
	op := stats[1]
	if op.App != "Opera" || op.OS != osid.Windows || op.Completed != 1 {
		t.Fatalf("opera = %+v", op)
	}
}

func TestAppStatsEmpty(t *testing.T) {
	c := &fakeClock{}
	r := NewRecorder(c.now, 4)
	if stats := r.AppStats(); len(stats) != 0 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestAggregateCombinesMemberSummaries(t *testing.T) {
	a := Summary{
		Elapsed: 10 * time.Hour, TotalCores: 32, TotalNodes: 8, Utilisation: 0.5, SwitchOverhead: 0.5,
		UtilisationOS: map[osid.OS]float64{osid.Linux: 0.5},
		MeanWait:      map[osid.OS]time.Duration{osid.Linux: 10 * time.Minute},
		MaxWait:       map[osid.OS]time.Duration{osid.Linux: 30 * time.Minute},
		JobsSubmitted: map[osid.OS]int{osid.Linux: 10},
		JobsCompleted: map[osid.OS]int{osid.Linux: 10},
		Switches:      4, SwitchesOK: 4, MeanSwitch: 2 * time.Minute,
		MaxSwitch: 3 * time.Minute, Makespan: 9 * time.Hour, SubmitFailures: 1,
	}
	b := Summary{
		Elapsed: 10 * time.Hour, TotalCores: 32, TotalNodes: 24, Utilisation: 0.25,
		UtilisationOS: map[osid.OS]float64{osid.Linux: 0.25},
		MeanWait:      map[osid.OS]time.Duration{osid.Linux: 20 * time.Minute},
		MaxWait:       map[osid.OS]time.Duration{osid.Linux: 50 * time.Minute},
		JobsSubmitted: map[osid.OS]int{osid.Linux: 5},
		JobsCompleted: map[osid.OS]int{osid.Linux: 5},
		Switches:      2, SwitchesOK: 1, MeanSwitch: 5 * time.Minute,
		MaxSwitch: 6 * time.Minute, Makespan: 8 * time.Hour,
	}
	s := Aggregate([]Summary{a, b})
	if s.TotalCores != 64 {
		t.Fatalf("cores = %d", s.TotalCores)
	}
	// Core-weighted: (0.5×32 + 0.25×32)/64 = 0.375.
	if s.Utilisation != 0.375 {
		t.Fatalf("utilisation = %v", s.Utilisation)
	}
	// Completion-weighted wait: (10m×10 + 20m×5)/15.
	if want := (10*time.Minute*10 + 20*time.Minute*5) / 15; s.MeanWait[osid.Linux] != want {
		t.Fatalf("mean wait = %v, want %v", s.MeanWait[osid.Linux], want)
	}
	if s.MaxWait[osid.Linux] != 50*time.Minute || s.MaxSwitch != 6*time.Minute {
		t.Fatalf("maxima = %v / %v", s.MaxWait[osid.Linux], s.MaxSwitch)
	}
	if s.Switches != 6 || s.SwitchesOK != 5 {
		t.Fatalf("switches = %d/%d", s.Switches, s.SwitchesOK)
	}
	// Switch-count weighted: (2m×4 + 5m×2)/6 = 3m.
	if s.MeanSwitch != 3*time.Minute {
		t.Fatalf("mean switch = %v", s.MeanSwitch)
	}
	if s.JobsCompleted[osid.Linux] != 15 || s.SubmitFailures != 1 {
		t.Fatalf("jobs = %v, submit failures = %d", s.JobsCompleted, s.SubmitFailures)
	}
	if s.Makespan != 9*time.Hour || s.Elapsed != 10*time.Hour {
		t.Fatalf("makespan %v elapsed %v", s.Makespan, s.Elapsed)
	}
	// SwitchOverhead is a per-node fraction: node-weighted, not
	// core-weighted. (0.5×8 + 0×24)/32 = 0.125.
	if s.TotalNodes != 32 || s.SwitchOverhead != 0.125 {
		t.Fatalf("nodes = %d, overhead = %v", s.TotalNodes, s.SwitchOverhead)
	}
}

func TestSubmitFailedCountsIntoSummary(t *testing.T) {
	now := time.Duration(0)
	r := NewRecorder(func() time.Duration { return now }, 4)
	r.SubmitFailed()
	r.SubmitFailed()
	now = time.Hour
	if got := r.Summarise(1).SubmitFailures; got != 2 {
		t.Fatalf("SubmitFailures = %d", got)
	}
}
