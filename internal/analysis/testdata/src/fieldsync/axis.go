// Fixture for the fieldsync analyzer: a structural mirror of the real
// internal/sweep Axis registration type (the analyzer matches any
// type named Axis in a package named sweep). This file is clean.
package sweep

type Grid struct{}
type Cell struct{}
type Scenario struct{}
type specState struct{}

type Axis struct {
	Key    string
	Alias  string
	Help   string
	Values func() string
	Single bool

	Defaults func(g *Grid)

	Parse  func(ps *specState, vals string) error
	Format func(g Grid) (string, error)

	Points func(g Grid, c Cell) int
	Apply  func(g Grid, c *Cell, i int)
	Env    func(c Cell) string
	Plural string
	Quiet  bool

	Column         string
	Col            func(c Cell) (text string, js any)
	OmitEmptyJSON  bool
	ColumnOptional bool
	ColumnActive   func(c Cell) bool

	Segment   func(c Cell) string
	NameOrder int

	Configure func(c Cell, sc *Scenario)
}

// Shared helper values so registrations stay one-liners.
var (
	parseFn  = func(ps *specState, vals string) error { return nil }
	formatFn = func(g Grid) (string, error) { return "", nil }
	pointsFn = func(g Grid, c Cell) int { return 1 }
	applyFn  = func(g Grid, c *Cell, i int) {}
	colFn    = func(c Cell) (string, any) { return "", "" }
	segFn    = func(c Cell) string { return "" }
	activeFn = func(c Cell) bool { return false }
)
