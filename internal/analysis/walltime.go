package analysis

import (
	"go/ast"
)

// wallClockFuncs are the package time functions that read or schedule
// against the machine clock. Pure constructors and conversions
// (time.Unix, time.Date, time.Duration arithmetic, time.ParseDuration)
// are fine: they are deterministic functions of their inputs.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"Tick":      true,
	"Sleep":     true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

// WallTime bans wall-clock time in simulation code. Every observable
// the sweep layer emits is a pure function of (spec, seed); one
// time.Now smuggled into a hot path makes runs differ between
// machines, CI runners, and re-runs, and the goldens/bench gate only
// catch it after the fact. All simulated time must flow through
// internal/simtime's virtual clock. Real-I/O sites (socket deadlines
// in internal/comm, the benchtab stopwatch) opt out per line with
// //simlint:allow walltime -- <reason>.
var WallTime = &Analyzer{
	Name: "walltime",
	Doc: "walltime: forbid wall-clock time (time.Now/Since/Until/After/Tick/Sleep/NewTimer/NewTicker/AfterFunc) " +
		"in simulation code; simulated time must flow through internal/simtime",
	Run: runWallTime,
}

func runWallTime(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || !wallClockFuncs[sel.Sel.Name] {
				return true
			}
			if !pkgFunc(pass.TypesInfo, sel, "time", sel.Sel.Name) {
				return true
			}
			pass.Reportf(sel.Pos(),
				"time.%s reads the wall clock; simulation time must flow through internal/simtime (or annotate the line: //simlint:allow walltime -- <reason>)",
				sel.Sel.Name)
			return true
		})
	}
	return nil
}
