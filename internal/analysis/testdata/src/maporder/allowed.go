// Fixture for the maporder analyzer: //simlint:allow suppression.
package maporder

import (
	"fmt"
	"io"
)

func allowedWrite(m map[string]io.Writer) {
	for k, w := range m {
		//simlint:allow maporder -- fixture: each key writes to its own stream, order is irrelevant
		fmt.Fprintln(w, k)
	}
}

func allowedAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) //simlint:allow maporder -- fixture: caller sorts
	}
	return keys
}
