// Package bootmgr interprets a node's boot chain: BIOS boot order,
// PXE ROM, MBR bootloader, GRUB configuration files (including the
// configfile redirection of dualboot-oscar v1) and chainloading into
// the Windows volume boot record. It answers the question every OS
// switch in the paper ultimately reduces to: *given this disk and this
// network state, which operating system comes up, and how long does it
// take?*
package bootmgr

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/grubcfg"
	"repro/internal/hardware"
	"repro/internal/osid"
	"repro/internal/pxe"
)

// WindowsBootFile is the marker for an installed, bootable Windows
// system on an NTFS partition (the real bootmgr at the NTFS root).
const WindowsBootFile = "/bootmgr"

// LinuxReleaseFile is the marker for an installed Linux root
// filesystem.
const LinuxReleaseFile = "/etc/redhat-release"

// maxConfigDepth bounds configfile redirection chains so a cyclic
// configuration fails cleanly instead of hanging the "machine".
const maxConfigDepth = 8

// LatencyModel parameterises how long each boot stage takes. The
// defaults are calibrated so a full OS switch lands in the paper's
// measured envelope: "booting from one OS to another takes no more
// than five minutes".
type LatencyModel struct {
	Shutdown        time.Duration // clean OS shutdown before reboot
	POST            time.Duration // BIOS power-on self test
	DHCP            time.Duration // PXE DHCP exchange
	TFTP            time.Duration // ROM + menu + kernel fetch
	GRUBPerSecond   time.Duration // cost of one configured timeout second
	KernelLinux     time.Duration // kernel + init to login
	ServicesLinux   time.Duration // pbs_mom start + head-node re-registration
	KernelWindows   time.Duration // Windows boot to services
	ServicesWindows time.Duration // HPC node manager re-registration
	JitterFrac      float64       // uniform ±fraction applied to the total
}

// DefaultLatencyModel returns the calibrated model. Typical totals:
// switch-to-Linux ≈ 2m45s, switch-to-Windows ≈ 4m05s, both under the
// paper's five-minute bound.
func DefaultLatencyModel() LatencyModel {
	return LatencyModel{
		Shutdown:        30 * time.Second,
		POST:            20 * time.Second,
		DHCP:            3 * time.Second,
		TFTP:            4 * time.Second,
		GRUBPerSecond:   time.Second,
		KernelLinux:     75 * time.Second,
		ServicesLinux:   35 * time.Second,
		KernelWindows:   130 * time.Second,
		ServicesWindows: 60 * time.Second,
		JitterFrac:      0.10,
	}
}

// Env is the environment a node boots in.
type Env struct {
	PXE     *pxe.Service // nil when no PXE service answers
	Latency LatencyModel
	Rand    *rand.Rand // jitter source; nil disables jitter
}

// Result describes a completed boot.
type Result struct {
	OS      osid.OS
	Source  hardware.BootSource
	Latency time.Duration
	Steps   []string // human-readable trace for logs and debugging
}

// Error is a failed boot with the partial step trace attached.
type Error struct {
	Node  string
	Steps []string
	Err   error
}

func (e *Error) Error() string {
	return fmt.Sprintf("bootmgr: %s: %v (after %s)", e.Node, e.Err, strings.Join(e.Steps, " -> "))
}

func (e *Error) Unwrap() error { return e.Err }

// Boot resolves the node's boot chain and returns the OS it comes up
// in. It does not mutate the node; callers (the cluster package)
// apply the resulting state transition on their simulated clock.
func Boot(node *hardware.Node, env Env) (Result, error) {
	b := &booter{node: node, env: env}
	return b.run()
}

type booter struct {
	node    *hardware.Node
	env     Env
	steps   []string
	grubSec int // configured GRUB timeout seconds encountered
	usedPXE bool
}

func (b *booter) step(format string, args ...any) {
	b.steps = append(b.steps, fmt.Sprintf(format, args...))
}

func (b *booter) fail(format string, args ...any) (Result, error) {
	return Result{}, &Error{Node: b.node.Name, Steps: b.steps, Err: fmt.Errorf(format, args...)}
}

func (b *booter) run() (Result, error) {
	b.step("POST")
	order := b.node.BootOrder
	if len(order) == 0 {
		order = []hardware.BootSource{hardware.BootFromDisk}
	}
	for _, src := range order {
		switch src {
		case hardware.BootFromPXE:
			res, ok, err := b.tryPXE()
			if err != nil {
				return Result{}, err
			}
			if ok {
				return b.finish(res, hardware.BootFromPXE)
			}
		case hardware.BootFromDisk:
			res, ok, err := b.tryDisk()
			if err != nil {
				return Result{}, err
			}
			if ok {
				return b.finish(res, hardware.BootFromDisk)
			}
		}
	}
	return b.fail("no bootable device")
}

// tryPXE attempts a network boot. ok=false means "fall through to the
// next boot source" (DHCP timeout), matching real BIOS behaviour; a
// returned error means the chain started and then failed terminally.
func (b *booter) tryPXE() (osid.OS, bool, error) {
	if b.env.PXE == nil {
		b.step("PXE: no DHCP offer")
		return osid.None, false, nil
	}
	rom, ok := b.env.PXE.OfferROM(b.node.Addr)
	if !ok {
		b.step("PXE: no DHCP offer")
		return osid.None, false, nil
	}
	b.usedPXE = true
	b.step("PXE: DHCP offer, ROM %s", rom)
	if _, err := b.env.PXE.FetchFile(rom); err != nil {
		_, e := b.fail("PXE ROM fetch: %v", err)
		return osid.None, false, e
	}
	menu, err := b.env.PXE.FetchMenu(b.node.Addr)
	if err != nil {
		_, e := b.fail("PXE menu fetch: %v", err)
		return osid.None, false, e
	}
	b.step("PXE: menu fetched (%d bytes)", len(menu))
	cfg, err := grubcfg.Parse(menu)
	if err != nil {
		_, e := b.fail("PXE menu parse: %v", err)
		return osid.None, false, e
	}
	os, err := b.resolveConfig(cfg, nil, 0)
	if err != nil {
		return osid.None, false, err
	}
	return os, true, nil
}

// tryDisk attempts a local-disk boot via whatever loader owns the MBR.
func (b *booter) tryDisk() (osid.OS, bool, error) {
	disk := b.node.Disk
	switch disk.MBR.Loader {
	case hardware.BootNone:
		b.step("disk: empty MBR")
		return osid.None, false, nil
	case hardware.BootWindows:
		b.step("disk: Windows MBR -> active partition")
		part, ok := disk.ActivePartition()
		if !ok {
			_, e := b.fail("Windows MBR: no active partition")
			return osid.None, false, e
		}
		os, err := b.bootPartitionVBR(part)
		if err != nil {
			return osid.None, false, err
		}
		return os, true, nil
	case hardware.BootGRUB:
		b.step("disk: GRUB MBR, config on partition %d:%s",
			disk.MBR.GrubConfigPartition, disk.MBR.GrubConfigPath)
		part, err := disk.Partition(disk.MBR.GrubConfigPartition)
		if err != nil {
			_, e := b.fail("GRUB config partition: %v", err)
			return osid.None, false, e
		}
		data, err := part.ReadFile(disk.MBR.GrubConfigPath)
		if err != nil {
			_, e := b.fail("GRUB config read: %v", err)
			return osid.None, false, e
		}
		cfg, err := grubcfg.Parse(data)
		if err != nil {
			_, e := b.fail("GRUB config parse: %v", err)
			return osid.None, false, e
		}
		os, err := b.resolveConfig(cfg, part, 0)
		if err != nil {
			return osid.None, false, err
		}
		return os, true, nil
	default:
		_, e := b.fail("unknown MBR loader")
		return osid.None, false, e
	}
}

// resolveConfig evaluates the default entry of a GRUB config, following
// configfile redirections. curPart is the partition the config was read
// from (nil for a PXE menu). When the default entry fails to boot and
// the config names a fallback, GRUB retries with the fallback entry —
// behaviour the dual-boot deployment relies on to survive a
// half-installed OS.
func (b *booter) resolveConfig(cfg *grubcfg.Config, curPart *hardware.Partition, depth int) (osid.OS, error) {
	if depth > maxConfigDepth {
		_, e := b.fail("configfile redirection loop (depth > %d)", maxConfigDepth)
		return osid.None, e
	}
	if cfg.Timeout > 0 {
		b.grubSec += cfg.Timeout
	}
	entry, err := cfg.DefaultEntry()
	if err != nil {
		_, e := b.fail("GRUB: %v", err)
		return osid.None, e
	}
	os, err := b.resolveEntry(cfg, entry, curPart, depth)
	if err != nil && cfg.Fallback >= 0 && cfg.Fallback < len(cfg.Entries) && cfg.Entries[cfg.Fallback] != entry {
		fb := cfg.Entries[cfg.Fallback]
		b.step("GRUB: default failed, fallback to entry %d %q", cfg.Fallback, fb.Title)
		return b.resolveEntry(cfg, fb, curPart, depth)
	}
	return os, err
}

// resolveEntry evaluates one menu entry.
func (b *booter) resolveEntry(cfg *grubcfg.Config, entry *grubcfg.Entry, curPart *hardware.Partition, depth int) (osid.OS, error) {
	b.step("GRUB: entry %q", entry.Title)

	// Resolve the entry's root device to a partition on the local disk.
	rootPart := curPart
	if dev, ok := entry.Root(); ok {
		p, err := b.node.Disk.Partition(dev.LinuxPartition())
		if err != nil {
			_, e := b.fail("GRUB root %s: %v", dev, err)
			return osid.None, e
		}
		rootPart = p
	}

	if path, ok := entry.ConfigFile(); ok {
		if rootPart == nil {
			_, e := b.fail("configfile %s: no root partition", path)
			return osid.None, e
		}
		b.step("GRUB: configfile %s on partition %d", path, rootPart.Index)
		data, err := rootPart.ReadFile(path)
		if err != nil {
			_, e := b.fail("configfile read: %v", err)
			return osid.None, e
		}
		next, err := grubcfg.Parse(data)
		if err != nil {
			_, e := b.fail("configfile parse: %v", err)
			return osid.None, e
		}
		return b.resolveConfig(next, rootPart, depth+1)
	}

	if kernel, ok := entry.KernelPath(); ok {
		return b.bootLinuxKernel(entry, kernel, rootPart)
	}

	if entry.HasChainloader() {
		if rootPart == nil {
			_, e := b.fail("chainloader: no root partition")
			return osid.None, e
		}
		b.step("GRUB: chainloader +1 on partition %d", rootPart.Index)
		return b.bootPartitionVBRDepth(rootPart, depth+1)
	}

	_, e := b.fail("entry %q has no kernel, chainloader or configfile", entry.Title)
	return osid.None, e
}

// bootLinuxKernel loads a kernel either from the TFTP tree ("(pd)"
// prefix) or from the entry's root partition.
func (b *booter) bootLinuxKernel(entry *grubcfg.Entry, kernel string, rootPart *hardware.Partition) (osid.OS, error) {
	if strings.HasPrefix(kernel, "(pd)") {
		if b.env.PXE == nil {
			_, e := b.fail("kernel %s: no PXE service", kernel)
			return osid.None, e
		}
		path := "/tftpboot" + strings.TrimPrefix(kernel, "(pd)")
		if _, err := b.env.PXE.FetchFile(path); err != nil {
			_, e := b.fail("kernel fetch: %v", err)
			return osid.None, e
		}
		b.step("kernel: %s via TFTP", kernel)
		return osid.Linux, nil
	}
	if rootPart == nil {
		_, e := b.fail("kernel %s: no root partition", kernel)
		return osid.None, e
	}
	if !rootPart.HasFile(kernel) {
		_, e := b.fail("kernel %s missing on partition %d", kernel, rootPart.Index)
		return osid.None, e
	}
	b.step("kernel: %s from partition %d", kernel, rootPart.Index)
	return osid.Linux, nil
}

// bootPartitionVBR boots a partition's own volume boot record: the
// Windows loader on an NTFS system partition, or a partition-head
// GRUB (the §II "changing active partition" approach, where a generic
// MBR chainloads whichever partition is active).
func (b *booter) bootPartitionVBR(part *hardware.Partition) (osid.OS, error) {
	return b.bootPartitionVBRDepth(part, 0)
}

func (b *booter) bootPartitionVBRDepth(part *hardware.Partition, depth int) (osid.OS, error) {
	if part.VBR == hardware.BootGRUB {
		path := part.VBRGrubConfig
		if path == "" {
			path = "/grub/menu.lst"
		}
		b.step("VBR: GRUB on partition %d, config %s", part.Index, path)
		data, err := part.ReadFile(path)
		if err != nil {
			_, e := b.fail("VBR GRUB config read: %v", err)
			return osid.None, e
		}
		cfg, err := grubcfg.Parse(data)
		if err != nil {
			_, e := b.fail("VBR GRUB config parse: %v", err)
			return osid.None, e
		}
		return b.resolveConfig(cfg, part, depth+1)
	}
	if part.Type == hardware.FSNTFS && part.HasFile(WindowsBootFile) {
		b.step("VBR: Windows bootmgr on partition %d", part.Index)
		return osid.Windows, nil
	}
	_, e := b.fail("partition %d (%s) has no bootable system", part.Index, part.Type)
	return osid.None, e
}

// finish computes the boot latency and assembles the result.
func (b *booter) finish(os osid.OS, src hardware.BootSource) (Result, error) {
	if !os.Valid() {
		return b.fail("boot resolved to no OS")
	}
	lat := b.latency(os)
	b.step("up: %s after %s", os, lat)
	return Result{OS: os, Source: src, Latency: lat, Steps: b.steps}, nil
}

func (b *booter) latency(os osid.OS) time.Duration {
	m := b.env.Latency
	total := m.POST
	if b.usedPXE {
		total += m.DHCP + m.TFTP
	}
	total += time.Duration(b.grubSec) * m.GRUBPerSecond
	if os == osid.Linux {
		total += m.KernelLinux + m.ServicesLinux
	} else {
		total += m.KernelWindows + m.ServicesWindows
	}
	if b.env.Rand != nil && m.JitterFrac > 0 {
		j := 1 + m.JitterFrac*(2*b.env.Rand.Float64()-1)
		total = time.Duration(float64(total) * j)
	}
	return total
}

// SwitchLatency estimates a full OS switch (shutdown + boot) for
// planning and experiments, without jitter.
func SwitchLatency(m LatencyModel, target osid.OS, viaPXE bool, grubTimeoutSec int) time.Duration {
	total := m.Shutdown + m.POST
	if viaPXE {
		total += m.DHCP + m.TFTP
	}
	total += time.Duration(grubTimeoutSec) * m.GRUBPerSecond
	if target == osid.Linux {
		total += m.KernelLinux + m.ServicesLinux
	} else {
		total += m.KernelWindows + m.ServicesWindows
	}
	return total
}
