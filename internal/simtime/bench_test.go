package simtime

import (
	"testing"
	"time"
)

func BenchmarkEngineThroughput(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		count := 0
		// A chain of 10k events, each scheduling the next — the
		// dominant pattern in the cluster simulation.
		var step func()
		step = func() {
			count++
			if count < 10_000 {
				e.After(time.Second, step)
			}
		}
		e.After(time.Second, step)
		e.Run()
		if count != 10_000 {
			b.Fatalf("count = %d", count)
		}
	}
}

func BenchmarkEngineWideHeap(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 10_000; j++ {
			e.At(time.Duration(j%977)*time.Millisecond, func() {})
		}
		e.Run()
	}
}
