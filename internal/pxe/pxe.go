// Package pxe simulates the network-boot services dualboot-oscar v2
// moves boot control into: a DHCP responder that hands nodes the
// GRUB4DOS PXE ROM and a TFTP tree rooted at /tftpboot from which the
// ROM fetches its menu file.
//
// GRUB4DOS looks for a menu named after the requesting NIC's MAC
// address under /tftpboot/menu.lst/ and falls back to a default menu.
// The paper's v2 design initially wrote one menu per MAC (Figure 12)
// and was then simplified to a single cluster-wide "flag" menu
// (Figure 13): all rebooting nodes land in the same target OS. Both
// modes are implemented here.
package pxe

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/grubcfg"
	"repro/internal/hardware"
	"repro/internal/osid"
)

// MenuDir is the TFTP directory GRUB4DOS searches for menus.
const MenuDir = "/tftpboot/menu.lst"

// DefaultMenuPath is the fallback menu, used when no per-MAC file
// exists; in flag mode it is the only menu.
const DefaultMenuPath = MenuDir + "/default"

// RomPath is the GRUB4DOS PXE ROM the DHCP response points at.
const RomPath = "/tftpboot/grldr"

// Mode selects between the two v2 boot-control designs.
type Mode uint8

const (
	// ModePerMAC writes one menu file per compute-node MAC
	// (Figure 12: the initial v2 approach).
	ModePerMAC Mode = iota
	// ModeFlag maintains a single default menu whose default entry is
	// the cluster-wide target OS (Figure 13: the final v2 approach).
	ModeFlag
)

// String names the mode.
func (m Mode) String() string {
	if m == ModeFlag {
		return "flag"
	}
	return "per-mac"
}

// Stats counts protocol activity for the experiments.
type Stats struct {
	DHCPOffers  int
	TFTPFetches int
	MenuWrites  int
}

// Service is the head-node side of PXE: DHCP + TFTP + menu management.
// It is safe for concurrent use because the live-TCP demo drives it
// from multiple goroutines.
type Service struct {
	mu      sync.Mutex
	enabled bool
	mode    Mode
	flag    osid.OS
	files   map[string][]byte
	linux   grubcfg.LinuxEntrySpec
	windows grubcfg.WindowsEntrySpec
	stats   Stats
}

// Config configures a new Service.
type Config struct {
	Mode    Mode
	Linux   grubcfg.LinuxEntrySpec   // zero value → grubcfg defaults
	Windows grubcfg.WindowsEntrySpec // zero value → grubcfg defaults
	// InitialOS is the flag value / per-MAC default at start-up.
	InitialOS osid.OS
}

// NewService starts an enabled PXE service with the GRUB4DOS ROM and
// kernel images staged in the TFTP tree.
func NewService(cfg Config) (*Service, error) {
	if cfg.Linux.Title == "" {
		cfg.Linux = grubcfg.DefaultLinuxEntry()
	}
	if cfg.Windows.Title == "" {
		cfg.Windows = grubcfg.DefaultWindowsEntry()
	}
	if cfg.InitialOS == osid.None {
		cfg.InitialOS = osid.Linux
	}
	s := &Service{
		enabled: true,
		mode:    cfg.Mode,
		flag:    cfg.InitialOS,
		files:   make(map[string][]byte),
		linux:   cfg.Linux,
		windows: cfg.Windows,
	}
	s.files[RomPath] = []byte("GRUB4DOS-0.4.4 PXE ROM")
	// Kernel and initrd served over TFTP for the (pd) entries.
	s.files["/tftpboot"+cfg.Linux.KernelPath] = []byte("bzImage")
	if cfg.Linux.InitrdPath != "" {
		s.files["/tftpboot"+cfg.Linux.InitrdPath] = []byte("initrd")
	}
	if err := s.writeMenuLocked(DefaultMenuPath, cfg.InitialOS); err != nil {
		return nil, err
	}
	return s, nil
}

// Enabled reports whether the service answers DHCP.
func (s *Service) Enabled() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.enabled
}

// SetEnabled turns the DHCP responder on or off (off models a head
// node outage; nodes then fall through to local-disk boot).
func (s *Service) SetEnabled(v bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.enabled = v
}

// Mode returns the boot-control mode.
func (s *Service) Mode() Mode {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mode
}

// Stats returns a snapshot of protocol counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Flag returns the cluster-wide target OS.
func (s *Service) Flag() osid.OS {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flag
}

// SetFlag flips the cluster-wide target OS flag: the single write that
// v2's "current way" (Figure 13) needs to redirect every subsequent
// reboot.
func (s *Service) SetFlag(os osid.OS) error {
	if !os.Valid() {
		return fmt.Errorf("pxe: invalid flag OS %v", os)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flag = os
	return s.writeMenuLocked(DefaultMenuPath, os)
}

// RegisterNode creates the per-MAC menu for a node (ModePerMAC). In
// flag mode registration is a no-op because all nodes share the
// default menu.
func (s *Service) RegisterNode(mac hardware.MAC) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.mode == ModeFlag {
		return nil
	}
	return s.writeMenuLocked(menuPathFor(mac), s.flag)
}

// SetNodeOS rewrites one node's menu (ModePerMAC). In flag mode it
// returns an error: per-node targeting is exactly what the flag design
// gave up, and callers must use SetFlag.
func (s *Service) SetNodeOS(mac hardware.MAC, os osid.OS) error {
	if !os.Valid() {
		return fmt.Errorf("pxe: invalid OS %v", os)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.mode == ModeFlag {
		return fmt.Errorf("pxe: per-node OS targeting unavailable in flag mode")
	}
	return s.writeMenuLocked(menuPathFor(mac), os)
}

func (s *Service) writeMenuLocked(path string, os osid.OS) error {
	cfg, err := grubcfg.PXEMenu(s.linux, s.windows, os)
	if err != nil {
		return err
	}
	s.files[path] = cfg.Render()
	s.stats.MenuWrites++
	return nil
}

// OfferROM is the DHCP exchange: it reports whether PXE boot is
// available and returns the boot ROM path.
func (s *Service) OfferROM(mac hardware.MAC) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.enabled {
		return "", false
	}
	s.stats.DHCPOffers++
	return RomPath, true
}

// FetchMenu is the ROM's TFTP menu lookup: the per-MAC file when
// present, else the default menu.
func (s *Service) FetchMenu(mac hardware.MAC) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.enabled {
		return nil, fmt.Errorf("pxe: service disabled")
	}
	s.stats.TFTPFetches++
	if data, ok := s.files[menuPathFor(mac)]; ok {
		return append([]byte(nil), data...), nil
	}
	if data, ok := s.files[DefaultMenuPath]; ok {
		return append([]byte(nil), data...), nil
	}
	return nil, fmt.Errorf("pxe: no menu for %s and no default", mac)
}

// FetchFile serves an arbitrary TFTP file (kernel, initrd, images).
func (s *Service) FetchFile(path string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.enabled {
		return nil, fmt.Errorf("pxe: service disabled")
	}
	data, ok := s.files[path]
	if !ok {
		return nil, fmt.Errorf("pxe: %s: no such TFTP file", path)
	}
	s.stats.TFTPFetches++
	return append([]byte(nil), data...), nil
}

// PutFile stages a file into the TFTP tree (deployment images etc.).
func (s *Service) PutFile(path string, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.files[path] = append([]byte(nil), data...)
}

// HasKernelFor reports whether the TFTP tree can serve a network Linux
// boot (kernel present).
func (s *Service) HasKernelFor() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.files["/tftpboot"+s.linux.KernelPath]
	return ok
}

// MenuFiles lists the menu files currently in the tree, sorted, for
// inspection in tests and the qsim CLI.
func (s *Service) MenuFiles() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for p := range s.files {
		if strings.HasPrefix(p, MenuDir+"/") {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

func menuPathFor(mac hardware.MAC) string {
	return MenuDir + "/" + mac.MenuFileName()
}
