package winhpc

import (
	"strings"
	"testing"
	"time"
)

func TestJobList(t *testing.T) {
	eng, s := newTestScheduler(t, 2)
	s.SubmitJob(JobSpec{Name: "render-frames", Owner: "HPC\\render", Unit: UnitNode, Count: 2, Runtime: time.Hour})
	s.SubmitJob(JobSpec{Name: "matlab-sweep", Owner: "HPC\\dhaupt", Unit: UnitCore, Count: 3,
		Runtime: time.Hour, Priority: PriorityAboveNormal})
	eng.RunUntil(time.Second)
	out := s.JobList()
	for _, want := range []string{"Id", "render-frames", "Running", "2 nodes", "matlab-sweep", "Queued", "AboveNormal", "3 cores"} {
		if !strings.Contains(out, want) {
			t.Errorf("job list missing %q:\n%s", want, out)
		}
	}
	// Finished jobs drop off the active list.
	eng.Run()
	if out := s.JobList(); strings.Contains(out, "render-frames") {
		t.Fatalf("finished job still listed:\n%s", out)
	}
}

func TestNodeList(t *testing.T) {
	eng, s := newTestScheduler(t, 2)
	s.SetNodeOnline(nodeName(2), false)
	s.SubmitJob(JobSpec{Name: "j", Unit: UnitCore, Count: 2, Runtime: time.Hour})
	eng.RunUntil(time.Second)
	out := s.NodeList()
	for _, want := range []string{"NodeName", "ENODE01", "Online", "ENODE02", "Unreachable", "Default ComputeNode Template"} {
		if !strings.Contains(out, want) {
			t.Errorf("node list missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.Contains(lines[1], " 2 ") {
		t.Errorf("in-use cores not shown: %q", lines[1])
	}
}

func TestFinishedJobReport(t *testing.T) {
	eng, s := newTestScheduler(t, 1)
	s.SubmitJob(JobSpec{Name: "done", Unit: UnitNode, Count: 1, Runtime: 30 * time.Minute})
	j2, _ := s.SubmitJob(JobSpec{Name: "killed", Unit: UnitNode, Count: 1, Runtime: time.Hour})
	eng.RunUntil(time.Minute)
	s.CancelJob(j2.ID)
	eng.Run()
	out := s.FinishedJobReport()
	for _, want := range []string{"done", "Finished", "30m0s", "killed", "Canceled", "ENODE01"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
