package deploy

import (
	"fmt"

	"repro/internal/hardware"
)

// WindowsBootFile mirrors bootmgr.WindowsBootFile; deploy writes it,
// bootmgr reads it. Kept as a separate constant to avoid an import
// cycle through the boot chain.
const WindowsBootFile = "/bootmgr"

// WindowsSystemFile marks an installed Windows Server system root.
const WindowsSystemFile = "/Windows/System32/ntoskrnl.exe"

// WindowsReport describes what a Windows deployment did to a node.
type WindowsReport struct {
	Diskpart        DiskpartResult
	TargetPartition int
	MBRRewritten    bool
	GRUBDestroyed   bool // an MBR GRUB was present and is now gone
	// LinuxPartitionsLost counts ext3/swap/FAT partitions destroyed by
	// the script (the v1 clean-based reimage kills them all; the v2
	// partition-1 script kills none).
	LinuxPartitionsLost int
	FilesLost           int
}

// DeployWindows runs a diskpart script against the node's disk and
// installs Windows Server onto the resulting active partition. As on
// real hardware, Windows setup unconditionally rewrites the MBR — the
// exact behaviour that wrecks GRUB under dualboot-oscar v1.
func DeployWindows(node *hardware.Node, script *DiskpartScript) (WindowsReport, error) {
	var rep WindowsReport
	disk := node.Disk

	hadGRUB := disk.MBR.Loader == hardware.BootGRUB
	linuxBefore := countLinuxPartitions(disk)

	res, err := script.Execute(disk)
	if err != nil {
		return rep, fmt.Errorf("deploy: windows: %w", err)
	}
	rep.Diskpart = res
	rep.FilesLost = res.FilesLost
	rep.LinuxPartitionsLost = linuxBefore - countLinuxPartitions(disk)
	if rep.LinuxPartitionsLost < 0 {
		rep.LinuxPartitionsLost = 0
	}

	target, ok := disk.ActivePartition()
	if !ok {
		return rep, fmt.Errorf("deploy: windows: script left no active partition")
	}
	if target.Type != hardware.FSNTFS {
		return rep, fmt.Errorf("deploy: windows: active partition %d is %s, want ntfs", target.Index, target.Type)
	}
	rep.TargetPartition = target.Index
	if err := target.WriteFile(WindowsBootFile, []byte("Windows Boot Manager")); err != nil {
		return rep, err
	}
	if err := target.WriteFile(WindowsSystemFile, []byte("Windows Server 2008 R2")); err != nil {
		return rep, err
	}

	disk.InstallWindowsMBR()
	rep.MBRRewritten = true
	rep.GRUBDestroyed = hadGRUB
	return rep, nil
}

func countLinuxPartitions(disk *hardware.Disk) int {
	n := 0
	for _, p := range disk.Partitions() {
		switch p.Type {
		case hardware.FSExt3, hardware.FSSwap, hardware.FSFAT:
			n++
		}
	}
	return n
}
