// Package simtime provides a deterministic discrete-event simulation
// engine. All cluster components in this repository are driven by a
// shared virtual clock so that experiments are reproducible and run in
// milliseconds of wall time regardless of how many simulated hours they
// cover.
//
// Virtual time is a time.Duration measured from the start of the
// simulation (epoch zero). Events scheduled for the same instant fire
// in the order they were scheduled, which makes every run with the same
// inputs bit-for-bit identical.
package simtime

import (
	"fmt"
	"math"
	"time"
)

// Event is a scheduled callback. The callback runs with the engine's
// clock set to exactly the event's due time. Background events (ticker
// maintenance such as controller polling or series sampling) fire like
// any other event but do not count as outstanding work: quiescence
// detection ignores them.
type event struct {
	due        time.Duration
	seq        uint64
	fn         func()
	dead       bool
	background bool
	eng        *Engine
}

// Timer is a handle to a scheduled event that can be cancelled.
type Timer struct {
	ev *event
}

// Stop cancels the timer. It reports whether the timer was still
// pending; a false return means the callback already ran (or the timer
// was stopped earlier). The cancelled event leaves Pending() and (for
// foreground timers) ForegroundPending immediately — quiescence
// detection never waits on a corpse — while the queue slot itself is
// reaped lazily at fire time.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.dead {
		return false
	}
	t.ev.dead = true
	t.ev.fn = nil
	if eng := t.ev.eng; eng != nil {
		eng.live--
		if !t.ev.background {
			eng.foreground--
		}
	}
	return true
}

// Engine is a single-threaded discrete-event scheduler. It is not safe
// for concurrent use; all simulated components run inside engine
// callbacks, mirroring the single-box deployment of the paper's
// daemons. The queue is an indexed calendar/bucket queue (see
// calendar.go) with the exact (due, seq) pop order of a flat min-heap.
type Engine struct {
	now        time.Duration
	seq        uint64
	queue      *calendar
	stopped    bool
	ran        uint64
	live       int // live events still queued (cancelled ones excluded)
	foreground int // live non-background events still queued
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{queue: newCalendar()}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// EventsRun returns the number of callbacks executed so far, which is
// useful for progress assertions in tests.
func (e *Engine) EventsRun() uint64 { return e.ran }

// Pending returns the number of live events still queued. Cancelled
// timers leave the count at Stop time, not at their original fire
// time, even though their queue slots are reaped lazily.
func (e *Engine) Pending() int { return e.live }

// At schedules fn at absolute virtual time t. Scheduling in the past
// (t < Now) panics: it indicates a logic error in the caller, and
// silently reordering time would destroy determinism.
func (e *Engine) At(t time.Duration, fn func()) *Timer {
	return e.at(t, fn, false)
}

// AtBackground schedules fn at absolute time t as a background event:
// it fires like any other event but does not count as outstanding
// work, so it never keeps a quiescence-aware run alive on its own.
func (e *Engine) AtBackground(t time.Duration, fn func()) *Timer {
	return e.at(t, fn, true)
}

func (e *Engine) at(t time.Duration, fn func(), background bool) *Timer {
	if fn == nil {
		panic("simtime: nil callback")
	}
	if t < e.now {
		panic(fmt.Sprintf("simtime: scheduling at %v before now %v", t, e.now))
	}
	ev := &event{due: t, seq: e.seq, fn: fn, background: background, eng: e}
	e.seq++
	e.live++
	if !background {
		e.foreground++
	}
	e.queue.push(ev)
	return &Timer{ev: ev}
}

// After schedules fn d after the current virtual time. Negative d is
// clamped to zero.
func (e *Engine) After(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// AfterBackground schedules a background event d from now.
func (e *Engine) AfterBackground(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return e.AtBackground(e.now+d, fn)
}

// Every schedules fn every interval, first firing one interval from
// now, until the returned Ticker is stopped or the engine runs out of
// other events; a ticker alone does not keep the engine alive past
// RunUntil deadlines.
type Ticker struct {
	stopped bool
	timer   *Timer
}

// Stop cancels future ticks.
func (t *Ticker) Stop() {
	t.stopped = true
	if t.timer != nil {
		t.timer.Stop()
	}
}

// Every arranges for fn to run every interval of virtual time. The
// interval must be positive.
func (e *Engine) Every(interval time.Duration, fn func()) *Ticker {
	return e.every(interval, fn, false)
}

// EveryBackground is Every with the ticks classified as background
// events: a periodic maintenance task (controller polling, series
// sampling) that must never keep a quiescence-aware run alive by
// itself. RunUntilQuiescent and ForegroundPending ignore such ticks.
func (e *Engine) EveryBackground(interval time.Duration, fn func()) *Ticker {
	return e.every(interval, fn, true)
}

func (e *Engine) every(interval time.Duration, fn func(), background bool) *Ticker {
	if interval <= 0 {
		panic("simtime: non-positive ticker interval")
	}
	tk := &Ticker{}
	var schedule func()
	schedule = func() {
		tick := func() {
			if tk.stopped {
				return
			}
			fn()
			if !tk.stopped {
				schedule()
			}
		}
		if background {
			tk.timer = e.AfterBackground(interval, tick)
		} else {
			tk.timer = e.After(interval, tick)
		}
	}
	schedule()
	return tk
}

// Stop halts the run loop after the current event returns.
func (e *Engine) Stop() { e.stopped = true }

// step executes the next pending live event, returning false when the
// queue is exhausted.
func (e *Engine) step() bool {
	for {
		ev := e.queue.pop()
		if ev == nil {
			return false
		}
		if ev.dead {
			continue
		}
		if ev.due < e.now {
			panic("simtime: event queue went backwards")
		}
		e.now = ev.due
		fn := ev.fn
		ev.dead = true
		ev.fn = nil
		e.live--
		if !ev.background {
			e.foreground--
		}
		e.ran++
		fn()
		return true
	}
}

// Run executes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.step() {
	}
}

// RunUntil executes events with due time <= deadline, then sets the
// clock to the deadline. Events after the deadline remain queued.
func (e *Engine) RunUntil(deadline time.Duration) {
	e.stopped = false
	for !e.stopped {
		next, ok := e.peek()
		if !ok || next > deadline {
			break
		}
		e.step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// RunFor advances the clock by d, executing everything due in between.
func (e *Engine) RunFor(d time.Duration) {
	if d < 0 {
		panic("simtime: negative RunFor duration")
	}
	e.RunUntil(e.now + d)
}

// ForegroundPending returns the number of live non-background events
// still queued — the engine's own notion of outstanding work.
func (e *Engine) ForegroundPending() int { return e.foreground }

// RunWhile hops event-to-event while active() reports outstanding
// work, checking the predicate after every callback so the run stops
// at the exact instant of quiescence instead of overshooting to a
// polling boundary. When work persists but no event at or before the
// deadline can advance it (a wedged component, or an empty queue), the
// clock rides to the deadline and the run returns — the caller's
// horizon, not an iteration count, bounds a stuck simulation.
func (e *Engine) RunWhile(deadline time.Duration, active func() bool) {
	e.stopped = false
	for !e.stopped && active() {
		next, ok := e.peek()
		if !ok || next > deadline {
			if e.now < deadline {
				e.now = deadline
			}
			return
		}
		e.step()
	}
}

// RunUntilQuiescent executes events until no live foreground events
// remain at or before the deadline: background tickers alone never
// keep the run alive. Unlike RunWhile it needs no predicate — the
// event queue itself is the work ledger. The clock is left at the last
// executed event (it does not jump to the deadline).
func (e *Engine) RunUntilQuiescent(deadline time.Duration) {
	e.stopped = false
	for !e.stopped && e.foreground > 0 {
		next, ok := e.peek()
		if !ok || next > deadline {
			return
		}
		e.step()
	}
}

// peek returns the due time of the next live event, reaping cancelled
// ones it walks over.
func (e *Engine) peek() (time.Duration, bool) {
	for {
		ev := e.queue.peek()
		if ev == nil {
			return 0, false
		}
		if ev.dead {
			e.queue.pop()
			continue
		}
		return ev.due, true
	}
}

// NextEventAt reports when the next live event is due. ok is false when
// the queue is empty.
func (e *Engine) NextEventAt() (t time.Duration, ok bool) { return e.peek() }

// MaxDuration is a convenient "end of time" for RunUntil.
const MaxDuration = time.Duration(math.MaxInt64)

// Stamp formats a virtual time as D+HH:MM:SS for logs and tables.
func Stamp(t time.Duration) string {
	if t < 0 {
		return "-" + Stamp(-t)
	}
	d := t / (24 * time.Hour)
	t -= d * 24 * time.Hour
	h := t / time.Hour
	t -= h * time.Hour
	m := t / time.Minute
	t -= m * time.Minute
	s := t / time.Second
	if d > 0 {
		return fmt.Sprintf("%d+%02d:%02d:%02d", d, h, m, s)
	}
	return fmt.Sprintf("%02d:%02d:%02d", h, m, s)
}
