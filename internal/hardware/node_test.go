package hardware

import (
	"testing"
	"testing/quick"

	"repro/internal/osid"
)

func TestMACString(t *testing.T) {
	m := MAC{0x02, 0x00, 0x5e, 0x00, 0x00, 0x10}
	if got := m.String(); got != "02:00:5e:00:00:10" {
		t.Fatalf("String() = %q", got)
	}
}

func TestMACMenuFileName(t *testing.T) {
	m := MAC{0xaa, 0xbb, 0xcc, 0x01, 0x02, 0x03}
	if got := m.MenuFileName(); got != "01-AA-BB-CC-01-02-03" {
		t.Fatalf("MenuFileName() = %q", got)
	}
}

func TestParseMAC(t *testing.T) {
	cases := []struct {
		in      string
		want    MAC
		wantErr bool
	}{
		{"02:00:5e:00:00:10", MAC{2, 0, 0x5e, 0, 0, 0x10}, false},
		{"02-00-5E-00-00-10", MAC{2, 0, 0x5e, 0, 0, 0x10}, false},
		{"01-AA-BB-CC-01-02-03", MAC{0xaa, 0xbb, 0xcc, 1, 2, 3}, false}, // PXE prefix stripped
		{" 02:00:5e:00:00:10 ", MAC{2, 0, 0x5e, 0, 0, 0x10}, false},
		{"02:00:5e:00:00", MAC{}, true},
		{"gg:00:5e:00:00:10", MAC{}, true},
		{"", MAC{}, true},
		{"02:00:5e:00:00:10:99", MAC{}, true},
	}
	for _, c := range cases {
		got, err := ParseMAC(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("ParseMAC(%q) err = %v, wantErr = %v", c.in, err, c.wantErr)
			continue
		}
		if !c.wantErr && got != c.want {
			t.Errorf("ParseMAC(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestMACRoundTrip(t *testing.T) {
	f := func(a, b, c, d, e, g byte) bool {
		m := MAC{a, b, c, d, e, g}
		p1, err1 := ParseMAC(m.String())
		p2, err2 := ParseMAC(m.MenuFileName())
		return err1 == nil && err2 == nil && p1 == m && p2 == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMACForIndexDistinct(t *testing.T) {
	seen := map[MAC]bool{}
	for i := 0; i < 256; i++ {
		m := MACForIndex(i)
		if seen[m] {
			t.Fatalf("duplicate MAC for index %d: %v", i, m)
		}
		seen[m] = true
	}
}

func TestNewNodeDefaults(t *testing.T) {
	n := NewNode(NodeSpec{Index: 3})
	if n.Name != "enode03" {
		t.Errorf("Name = %q", n.Name)
	}
	if n.Cores != 4 {
		t.Errorf("Cores = %d", n.Cores)
	}
	if n.MemMB != 8192 {
		t.Errorf("MemMB = %d", n.MemMB)
	}
	if n.Disk.SizeMB != 250000 {
		t.Errorf("DiskSizeMB = %d", n.Disk.SizeMB)
	}
	if n.Power != PowerOff || n.BootedOS != osid.None {
		t.Errorf("initial state = %v/%v", n.Power, n.BootedOS)
	}
	if len(n.BootOrder) != 1 || n.BootOrder[0] != BootFromDisk {
		t.Errorf("BootOrder = %v", n.BootOrder)
	}
	if n.Running() {
		t.Error("powered-off node reports Running")
	}
}

func TestNewNodePXEFirst(t *testing.T) {
	n := NewNode(NodeSpec{Index: 1, PXEFirst: true})
	if len(n.BootOrder) != 2 || n.BootOrder[0] != BootFromPXE || n.BootOrder[1] != BootFromDisk {
		t.Fatalf("BootOrder = %v", n.BootOrder)
	}
}

func TestNodeRunning(t *testing.T) {
	n := NewNode(NodeSpec{Index: 1})
	n.Power = PowerOn
	n.BootedOS = osid.Linux
	if !n.Running() {
		t.Error("booted node not Running")
	}
	n.BootedOS = osid.None
	if n.Running() {
		t.Error("node with no OS reports Running")
	}
}

func TestStateStrings(t *testing.T) {
	if PowerOff.String() != "off" || PowerBooting.String() != "booting" ||
		PowerOn.String() != "on" || PowerShuttingDown.String() != "shutting-down" {
		t.Error("PowerState strings wrong")
	}
	if BootFromDisk.String() != "disk" || BootFromPXE.String() != "pxe" {
		t.Error("BootSource strings wrong")
	}
	if BootGRUB.String() != "grub" || BootWindows.String() != "windows-mbr" || BootNone.String() != "none" {
		t.Error("BootloaderKind strings wrong")
	}
}
