package simtime

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

func TestAfterOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.After(3*time.Second, func() { got = append(got, 3) })
	e.After(1*time.Second, func() { got = append(got, 1) })
	e.After(2*time.Second, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 3*time.Second {
		t.Fatalf("Now() = %v, want 3s", e.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(time.Second, func() { got = append(got, i) })
	}
	e.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-instant events reordered: %v", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	var fired []time.Duration
	e.After(time.Second, func() {
		fired = append(fired, e.Now())
		e.After(time.Second, func() {
			fired = append(fired, e.Now())
		})
	})
	e.Run()
	if len(fired) != 2 || fired[0] != time.Second || fired[1] != 2*time.Second {
		t.Fatalf("fired = %v", fired)
	}
}

func TestTimerStop(t *testing.T) {
	e := NewEngine()
	ran := false
	tm := e.After(time.Second, func() { ran = true })
	if !tm.Stop() {
		t.Fatal("Stop() = false on pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop() = true")
	}
	e.Run()
	if ran {
		t.Fatal("cancelled timer still ran")
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	e := NewEngine()
	tm := e.After(time.Second, func() {})
	e.Run()
	if tm.Stop() {
		t.Fatal("Stop() = true after timer fired")
	}
}

func TestRunUntilLeavesLaterEvents(t *testing.T) {
	e := NewEngine()
	var fired []int
	e.After(1*time.Second, func() { fired = append(fired, 1) })
	e.After(5*time.Second, func() { fired = append(fired, 5) })
	e.RunUntil(2 * time.Second)
	if len(fired) != 1 || fired[0] != 1 {
		t.Fatalf("fired = %v, want [1]", fired)
	}
	if e.Now() != 2*time.Second {
		t.Fatalf("Now() = %v, want 2s", e.Now())
	}
	e.Run()
	if len(fired) != 2 {
		t.Fatalf("later event lost: fired = %v", fired)
	}
}

func TestRunUntilBoundaryInclusive(t *testing.T) {
	e := NewEngine()
	ran := false
	e.At(2*time.Second, func() { ran = true })
	e.RunUntil(2 * time.Second)
	if !ran {
		t.Fatal("event exactly at deadline did not run")
	}
}

func TestRunForAdvancesClock(t *testing.T) {
	e := NewEngine()
	e.RunFor(90 * time.Second)
	if e.Now() != 90*time.Second {
		t.Fatalf("Now() = %v", e.Now())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.After(10*time.Second, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("At() in the past did not panic")
		}
	}()
	e.At(time.Second, func() {})
}

func TestNilCallbackPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("nil callback did not panic")
		}
	}()
	e.After(time.Second, nil)
}

func TestEvery(t *testing.T) {
	e := NewEngine()
	count := 0
	tk := e.Every(time.Minute, func() {
		count++
		if count == 5 {
			e.Stop()
		}
	})
	defer tk.Stop()
	e.Run()
	if count != 5 {
		t.Fatalf("ticks = %d, want 5", count)
	}
	if e.Now() != 5*time.Minute {
		t.Fatalf("Now() = %v, want 5m", e.Now())
	}
}

func TestEveryStop(t *testing.T) {
	e := NewEngine()
	count := 0
	var tk *Ticker
	tk = e.Every(time.Minute, func() {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	e.After(10*time.Minute, func() {}) // keep engine alive past tick 3
	e.Run()
	if count != 3 {
		t.Fatalf("ticks after Stop = %d, want 3", count)
	}
}

func TestEveryNonPositivePanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("Every(0) did not panic")
		}
	}()
	e.Every(0, func() {})
}

func TestStopHaltsRun(t *testing.T) {
	e := NewEngine()
	var fired []int
	e.After(1*time.Second, func() { fired = append(fired, 1); e.Stop() })
	e.After(2*time.Second, func() { fired = append(fired, 2) })
	e.Run()
	if len(fired) != 1 {
		t.Fatalf("Stop did not halt run: %v", fired)
	}
	e.Run() // resumes
	if len(fired) != 2 {
		t.Fatalf("resume after Stop lost events: %v", fired)
	}
}

func TestEventsRunCounter(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 7; i++ {
		e.After(time.Duration(i)*time.Second, func() {})
	}
	e.Run()
	if e.EventsRun() != 7 {
		t.Fatalf("EventsRun() = %d, want 7", e.EventsRun())
	}
}

func TestNextEventAt(t *testing.T) {
	e := NewEngine()
	if _, ok := e.NextEventAt(); ok {
		t.Fatal("NextEventAt ok on empty queue")
	}
	tm := e.After(4*time.Second, func() {})
	e.After(9*time.Second, func() {})
	if at, ok := e.NextEventAt(); !ok || at != 4*time.Second {
		t.Fatalf("NextEventAt = %v,%v", at, ok)
	}
	tm.Stop()
	if at, ok := e.NextEventAt(); !ok || at != 9*time.Second {
		t.Fatalf("NextEventAt after cancel = %v,%v", at, ok)
	}
}

func TestStamp(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{0, "00:00:00"},
		{90 * time.Second, "00:01:30"},
		{3*time.Hour + 4*time.Minute + 5*time.Second, "03:04:05"},
		{26*time.Hour + 30*time.Minute, "1+02:30:00"},
		{-time.Minute, "-00:01:00"},
	}
	for _, c := range cases {
		if got := Stamp(c.d); got != c.want {
			t.Errorf("Stamp(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}

// Property: for any set of non-negative delays, events fire in
// non-decreasing time order and the engine ends at the max delay.
func TestQuickOrdering(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		var fired []time.Duration
		var max time.Duration
		for _, d := range delays {
			due := time.Duration(d) * time.Millisecond
			if due > max {
				max = due
			}
			e.At(due, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(delays) == 0 || e.Now() == max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: RunUntil never executes events due after the deadline.
func TestQuickRunUntilBoundary(t *testing.T) {
	f := func(delays []uint16, deadline uint16) bool {
		e := NewEngine()
		late := 0
		dl := time.Duration(deadline) * time.Millisecond
		for _, d := range delays {
			due := time.Duration(d) * time.Millisecond
			e.At(due, func() {
				if e.Now() > dl {
					late++
				}
			})
		}
		e.RunUntil(dl)
		return late == 0 && e.Now() == dl
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBackgroundEventsDoNotCountAsForeground(t *testing.T) {
	e := NewEngine()
	e.AfterBackground(time.Second, func() {})
	if e.ForegroundPending() != 0 {
		t.Fatalf("ForegroundPending = %d with only background queued", e.ForegroundPending())
	}
	tm := e.After(2*time.Second, func() {})
	if e.ForegroundPending() != 1 {
		t.Fatalf("ForegroundPending = %d, want 1", e.ForegroundPending())
	}
	tm.Stop()
	if e.ForegroundPending() != 0 {
		t.Fatalf("ForegroundPending = %d after cancel", e.ForegroundPending())
	}
	// Background events still execute.
	ran := false
	e.AfterBackground(3*time.Second, func() { ran = true })
	e.Run()
	if !ran {
		t.Fatal("background event never ran")
	}
}

func TestRunUntilQuiescentIgnoresBackgroundTickers(t *testing.T) {
	e := NewEngine()
	ticks := 0
	tk := e.EveryBackground(time.Minute, func() { ticks++ })
	defer tk.Stop()
	done := false
	e.After(5*time.Minute+30*time.Second, func() { done = true })
	e.RunUntilQuiescent(time.Hour)
	if !done {
		t.Fatal("foreground event never ran")
	}
	// Ticks up to the last foreground event fire; the ticker alone
	// must not keep the run alive afterwards.
	if ticks != 5 {
		t.Fatalf("ticks = %d, want 5", ticks)
	}
	if e.Now() != 5*time.Minute+30*time.Second {
		t.Fatalf("Now() = %v, want the last foreground instant", e.Now())
	}
}

func TestForegroundTickerKeepsQuiescentRunAlive(t *testing.T) {
	e := NewEngine()
	ticks := 0
	var tk *Ticker
	tk = e.Every(time.Minute, func() {
		ticks++
		if ticks == 3 {
			tk.Stop()
		}
	})
	e.RunUntilQuiescent(time.Hour)
	if ticks != 3 {
		t.Fatalf("ticks = %d, want 3 (foreground ticker is work)", ticks)
	}
}

func TestRunWhileStopsAtExactQuiescence(t *testing.T) {
	e := NewEngine()
	tk := e.EveryBackground(10*time.Minute, func() {})
	defer tk.Stop()
	busy := true
	e.After(25*time.Minute, func() { busy = false })
	e.RunWhile(24*time.Hour, func() bool { return busy })
	if e.Now() != 25*time.Minute {
		t.Fatalf("Now() = %v, want exactly 25m (no overshoot to a tick)", e.Now())
	}
}

func TestRunWhileRidesToDeadlineWhenStuck(t *testing.T) {
	// Stuck with an empty queue: the clock jumps to the deadline.
	e := NewEngine()
	e.RunWhile(2*time.Hour, func() bool { return true })
	if e.Now() != 2*time.Hour {
		t.Fatalf("empty-queue stuck run ended at %v", e.Now())
	}
	// Stuck with only a ticker: ticks fire until the deadline, then
	// the run returns at the deadline.
	e2 := NewEngine()
	ticks := 0
	tk := e2.EveryBackground(30*time.Minute, func() { ticks++ })
	defer tk.Stop()
	e2.RunWhile(2*time.Hour, func() bool { return true })
	if e2.Now() != 2*time.Hour {
		t.Fatalf("ticker-only stuck run ended at %v", e2.Now())
	}
	if ticks != 4 {
		t.Fatalf("ticks = %d, want 4", ticks)
	}
}

func TestRunWhileInactiveReturnsImmediately(t *testing.T) {
	e := NewEngine()
	e.After(time.Hour, func() { t.Fatal("event ran despite inactive predicate") })
	e.RunWhile(24*time.Hour, func() bool { return false })
	if e.Now() != 0 {
		t.Fatalf("clock moved to %v", e.Now())
	}
}
