package service

import "os"

// The result cache is content-addressed by sweep.SpecHash: the CSV
// and JSON renderings of a finished sweep live at
// cache/<hash>.csv|.json. The CSV is the presence marker — it is
// written last, so a crash between the two writes leaves the entry
// invisible and the job simply re-finishes from its checkpoints.

func (s *store) cacheHas(hash string) bool {
	return fileExists(s.cacheCSV(hash))
}

func (s *store) writeCache(hash string, csv, js []byte) error {
	if err := writeFileSync(s.cacheJSON(hash), js); err != nil {
		return err
	}
	return writeFileSync(s.cacheCSV(hash), csv)
}

func (s *store) readCache(hash, format string) ([]byte, error) {
	if format == "json" {
		return os.ReadFile(s.cacheJSON(hash))
	}
	return os.ReadFile(s.cacheCSV(hash))
}
