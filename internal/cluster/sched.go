package cluster

import (
	"fmt"
	"strings"
)

// SchedPolicy selects the queue discipline both head schedulers run.
// It is a treatment axis like the controller policy: the same cluster
// and trace can be ranked under strict FCFS (the paper's deployment)
// and under reservation-based EASY backfill.
type SchedPolicy uint8

const (
	// SchedFCFS is strict first-come first-served: the head of the
	// queue blocks everything behind it. This is what the paper's
	// Torque/OSCAR and Windows HPC "Queued" deployments ran, and it is
	// what makes the "stuck" detector signal meaningful.
	SchedFCFS SchedPolicy = iota
	// SchedBackfill enables EASY backfill on both schedulers: later
	// jobs may jump a blocked head only when they cannot delay its
	// earliest reservation, so narrow streams can never starve a wide
	// head job.
	SchedBackfill
)

// String names the policy as the CLI and sweep grids spell it.
func (p SchedPolicy) String() string {
	if p == SchedBackfill {
		return "backfill"
	}
	return "fcfs"
}

// SchedPolicyNames lists the valid scheduler policy names in registry
// order.
func SchedPolicyNames() []string { return []string{"fcfs", "backfill"} }

// ParseSchedPolicy resolves a scheduler policy by name; unknown names
// error with the full valid set, so no parse boundary accepts a
// misspelled policy silently.
func ParseSchedPolicy(name string) (SchedPolicy, error) {
	for _, p := range []SchedPolicy{SchedFCFS, SchedBackfill} {
		if p.String() == name {
			return p, nil
		}
	}
	return 0, fmt.Errorf("cluster: unknown scheduler policy %q (valid: %s)",
		name, strings.Join(SchedPolicyNames(), " | "))
}
