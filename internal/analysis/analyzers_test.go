package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// Each fixture package holds positive findings, directive-suppressed
// sites and clean files; the harness fails on any diagnostic without
// a want comment, so suppression and clean cases are load-bearing.

func TestWallTime(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.WallTime, "walltime")
}

func TestGlobalRand(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.GlobalRand, "globalrand")
}

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.MapOrder, "maporder")
}

func TestFieldSync(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.FieldSync, "fieldsync")
}
