package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
)

// axisFieldRules encodes the registry hygiene PR 5 bought: an axis is
// one registration, so the fields that jointly make a value visible —
// parser+formatter, export column+renderer, name segment+order,
// expansion counter+applier — must travel together or the "adding an
// axis means one registration" guarantee rots into partially-wired
// axes that parse but silently drop out of CSVs or cell names.
var (
	// axisRequired must appear in every registration.
	axisRequired = []string{"Key", "Help", "Parse", "Format"}
	// axisPaired fields are meaningless alone.
	axisPaired = [][2]string{
		{"Points", "Apply"},
		{"Column", "Col"},
		{"Segment", "NameOrder"},
		{"ColumnOptional", "ColumnActive"},
	}
	// axisExpanding must appear whenever Points does: an axis that
	// multiplies cells must label them in Describe output, export rows
	// and cell names, or two cells become indistinguishable.
	axisExpanding = []string{"Plural", "Column", "Col", "Segment", "NameOrder"}
)

// FieldSync enforces sweep axis-registry hygiene: every sweep.Axis
// composite literal must populate its co-dependent field groups
// together. This is the static guard for the PR 5 redesign — the
// registry derives ParseGridSpec, the qsim flag set, CSV/JSON columns
// and deterministic cell names from one registration per axis, so a
// registration that parses but lacks its formatter, column or name
// segment would silently desynchronise documents, exports and seeds.
var FieldSync = &Analyzer{
	Name: "fieldsync",
	Doc: "fieldsync: every sweep.Axis registration must populate co-dependent fields together " +
		"(Key/Help/Parse/Format always; Points with Apply, Plural, Column, Col, Segment, NameOrder; " +
		"Column with Col; Segment with NameOrder; ColumnOptional with ColumnActive)",
	Run: runFieldSync,
}

func runFieldSync(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok || !isAxisLiteral(pass.TypesInfo, lit) {
				return true
			}
			checkAxisLiteral(pass, lit)
			return true
		})
	}
	return nil
}

// isAxisLiteral reports whether the composite literal builds a
// sweep.Axis value (directly, via pointer, or as an implicit-type
// element of an []*Axis registry slice).
func isAxisLiteral(info *types.Info, lit *ast.CompositeLit) bool {
	t := info.TypeOf(lit)
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Axis" && obj.Pkg() != nil && obj.Pkg().Name() == "sweep"
}

func checkAxisLiteral(pass *Pass, lit *ast.CompositeLit) {
	set := map[string]bool{}
	key := "?"
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			pass.Reportf(el.Pos(), "sweep.Axis registrations must use keyed fields")
			return
		}
		id, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		set[id.Name] = true
		if id.Name == "Key" {
			if bl, ok := kv.Value.(*ast.BasicLit); ok {
				if s, err := strconv.Unquote(bl.Value); err == nil && s != "" {
					key = s
				}
			}
		}
	}
	for _, name := range axisRequired {
		if !set[name] {
			pass.Reportf(lit.Pos(), "axis %q registration is missing required field %s", key, name)
		}
	}
	for _, pair := range axisPaired {
		if set[pair[0]] != set[pair[1]] {
			pass.Reportf(lit.Pos(), "axis %q must register %s and %s together", key, pair[0], pair[1])
		}
	}
	if set["Points"] {
		for _, name := range axisExpanding {
			if !set[name] {
				pass.Reportf(lit.Pos(),
					"expanding axis %q (has Points) must also register %s, or its cells become indistinguishable in exports and cell names",
					key, name)
			}
		}
	}
}
