package service

import (
	"os"
	"path/filepath"
	"testing"
)

// TestCountCheckpointsIgnoresTempFiles: a crash between CreateTemp and
// rename leaves a ".tmp-*" file in the checkpoint directory. Recovery
// must not count it as a finished cell — and should sweep it away.
func TestCountCheckpointsIgnoresTempFiles(t *testing.T) {
	st, err := openStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const hash = "deadbeef"
	if err := os.MkdirAll(st.checkpointDir(hash), 0o755); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := writeFileSync(st.cellPath(hash, i), []byte("{}\n")); err != nil {
			t.Fatal(err)
		}
	}
	stale := filepath.Join(st.checkpointDir(hash), ".tmp-1234")
	if err := os.WriteFile(stale, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	if n := st.countCheckpoints(hash); n != 2 {
		t.Errorf("countCheckpoints = %d, want 2 (tmp leftovers must not count)", n)
	}
	if fileExists(stale) {
		t.Error("stale .tmp file survived the recovery count")
	}
}
