package controller

import (
	"time"

	"repro/internal/comm"
	"repro/internal/osid"
	"repro/internal/simtime"
)

// Endpoint names on the communicator bus, after the programs in the
// paper's Figure 1.
const (
	LinuxEndpoint   = "LINHEAD"
	WindowsEndpoint = "WINHEAD"
)

// Gateway is what the daemons need from the cluster: a view of each
// side and a way to order switches. The cluster package implements it
// with the v1 (FAT control file) or v2 (PXE flag) mechanism behind
// OrderSwitch.
type Gateway interface {
	// SideInfo reports the current state of one side.
	SideInfo(os osid.OS) SideState
	// OrderSwitch asks the donor side's scheduler to run switch jobs
	// rebooting count nodes into target. It returns how many orders
	// were actually submitted.
	OrderSwitch(donor, target osid.OS, count int) int
}

// Config configures the daemon pair.
type Config struct {
	// Cycle is the Windows communicator's fixed reporting interval;
	// the paper used 5–10 minutes.
	Cycle time.Duration
	// Policy decides switches; nil means the paper's FCFS.
	Policy Policy
}

// DecisionRecord is one logged control-loop outcome.
type DecisionRecord struct {
	At        time.Duration
	Decision  Decision
	Submitted int
}

// Stats summarises controller activity.
type Stats struct {
	Cycles       int
	StatesSent   int
	Switches     int // decisions that acted
	NodesOrdered int // total switch jobs submitted
}

// Manager runs the two daemons on the simulation engine, exchanging
// messages over the bus exactly as Figure 11 describes:
//
//  1. the Windows daemon fetches its queue state on a fixed cycle;
//  2. it sends the state to the Linux daemon;
//  3. the Linux daemon fetches the PBS queue state and decides;
//  4. the target-OS flag is set (inside the gateway's OrderSwitch);
//  5. reboot orders go to whichever scheduler donates nodes.
type Manager struct {
	eng    *simtime.Engine
	bus    *comm.Bus
	gw     Gateway
	policy Policy
	cycle  time.Duration

	ticker  *simtime.Ticker
	stats   Stats
	history []DecisionRecord
}

// NewManager wires the daemons. Call Start to begin the cycle.
func NewManager(eng *simtime.Engine, bus *comm.Bus, gw Gateway, cfg Config) *Manager {
	if cfg.Cycle <= 0 {
		cfg.Cycle = 10 * time.Minute
	}
	if cfg.Policy == nil {
		cfg.Policy = FCFS{}
	}
	return &Manager{eng: eng, bus: bus, gw: gw, policy: cfg.Policy, cycle: cfg.Cycle}
}

// Policy returns the active policy.
func (m *Manager) Policy() Policy { return m.policy }

// Cycle returns the reporting interval.
func (m *Manager) Cycle() time.Duration { return m.cycle }

// Start registers both endpoints and begins the Windows reporting
// cycle. The cycle ticker is a background event: it is maintenance,
// not work, so the engine's quiescence accounting (ForegroundPending,
// RunUntilQuiescent) never mistakes an idle controller polling an
// empty cluster for outstanding activity. (The cluster and grid
// drains stop on their own Busy predicate; the classification keeps
// engine-level quiescence equally honest for any consumer.)
func (m *Manager) Start() {
	m.bus.Register(LinuxEndpoint, m.onLinuxMessage)
	m.bus.Register(WindowsEndpoint, m.onWindowsMessage)
	m.ticker = m.eng.EveryBackground(m.cycle, m.windowsCycle)
}

// Stop halts the reporting cycle and detaches the endpoints.
func (m *Manager) Stop() {
	if m.ticker != nil {
		m.ticker.Stop()
	}
	m.bus.Register(LinuxEndpoint, nil)
	m.bus.Register(WindowsEndpoint, nil)
}

// Stats returns a snapshot of controller counters.
func (m *Manager) Stats() Stats { return m.stats }

// History returns the decision log.
func (m *Manager) History() []DecisionRecord {
	return append([]DecisionRecord(nil), m.history...)
}

// windowsCycle is step 1–2: the Windows communicator fetches its queue
// state and ships it to the Linux head.
func (m *Manager) windowsCycle() {
	m.stats.Cycles++
	side := m.gw.SideInfo(osid.Windows)
	m.stats.StatesSent++
	m.bus.Send(WindowsEndpoint, LinuxEndpoint, comm.Message{
		Kind:   comm.KindState,
		From:   osid.Windows,
		Report: side.Report,
	})
}

// onLinuxMessage is steps 3–5: on a Windows state report, fetch the
// local PBS state, decide, and dispatch reboot orders.
func (m *Manager) onLinuxMessage(from string, msg comm.Message) {
	if msg.Kind != comm.KindState {
		return
	}
	windows := m.gw.SideInfo(osid.Windows)
	windows.Report = msg.Report // trust the wire, not local introspection
	linux := m.gw.SideInfo(osid.Linux)

	d := m.policy.Decide(m.eng.Now(), linux, windows)
	rec := DecisionRecord{At: m.eng.Now(), Decision: d}
	if d.Act {
		m.stats.Switches++
		switch d.Donor {
		case osid.Linux:
			// Local: order PBS directly.
			rec.Submitted = m.gw.OrderSwitch(osid.Linux, d.Target, d.Nodes)
			m.stats.NodesOrdered += rec.Submitted
		case osid.Windows:
			// Remote: the reboot order crosses the wire to the Windows
			// daemon, which submits to its own scheduler.
			m.bus.Send(LinuxEndpoint, WindowsEndpoint, comm.Message{
				Kind:   comm.KindReboot,
				From:   osid.Linux,
				Target: d.Target,
				Count:  d.Nodes,
			})
		}
	}
	m.history = append(m.history, rec)
}

// onWindowsMessage handles reboot orders arriving from the Linux head.
func (m *Manager) onWindowsMessage(from string, msg comm.Message) {
	if msg.Kind != comm.KindReboot {
		return
	}
	submitted := m.gw.OrderSwitch(osid.Windows, msg.Target, msg.Count)
	m.stats.NodesOrdered += submitted
	// Attach the submission count to the most recent acting record so
	// the history reflects what actually happened.
	for i := len(m.history) - 1; i >= 0; i-- {
		if m.history[i].Decision.Act && m.history[i].Decision.Donor == osid.Windows && m.history[i].Submitted == 0 {
			m.history[i].Submitted = submitted
			break
		}
	}
}

// RunOnce drives a single synchronous control cycle without the
// ticker, for tests and the qsim CLI's --step mode.
func (m *Manager) RunOnce() Decision {
	windows := m.gw.SideInfo(osid.Windows)
	linux := m.gw.SideInfo(osid.Linux)
	d := m.policy.Decide(m.eng.Now(), linux, windows)
	if d.Act {
		n := m.gw.OrderSwitch(d.Donor, d.Target, d.Nodes)
		m.stats.Switches++
		m.stats.NodesOrdered += n
		m.history = append(m.history, DecisionRecord{At: m.eng.Now(), Decision: d, Submitted: n})
	}
	return d
}
