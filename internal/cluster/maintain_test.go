package cluster

import (
	"testing"
	"time"

	"repro/internal/osid"
)

func TestV1ReimageDestroysLinuxAndCostsManualSteps(t *testing.T) {
	c := newCluster(t, Config{Mode: HybridV1, InitialLinux: 8})
	// enode09 starts on Windows and is idle: reimage it.
	rep, err := c.ReimageWindows("enode09", true)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.LinuxLost {
		t.Fatal("v1 clean-based reimage kept Linux?")
	}
	if !rep.Redeployed {
		t.Fatal("Linux not redeployed")
	}
	if rep.ManualSteps != 4 {
		t.Fatalf("manual steps = %d, want the §III-C four", rep.ManualSteps)
	}
	c.Eng.RunFor(time.Hour)
	n := c.byName["enode09"]
	if n.OS != osid.Windows || n.Broken {
		t.Fatalf("node after reimage: %+v", n)
	}
	// And it can still switch to Linux afterwards (redeploy restored
	// the dual-boot machinery).
	if err := c.ForceSwitch("enode09", osid.Linux); err != nil {
		t.Fatal(err)
	}
	c.Eng.RunFor(time.Hour)
	if n.OS != osid.Linux {
		t.Fatalf("post-reimage switch failed: %v", n.OS)
	}
}

func TestV1ReimageWithoutRepairBricksLinuxSide(t *testing.T) {
	c := newCluster(t, Config{Mode: HybridV1, InitialLinux: 8})
	rep, err := c.ReimageWindows("enode09", false)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.LinuxLost || rep.Redeployed {
		t.Fatalf("rep = %+v", rep)
	}
	c.Eng.RunFor(time.Hour)
	n := c.byName["enode09"]
	if n.OS != osid.Windows {
		t.Fatalf("node = %v", n.OS)
	}
	// A switch to Linux is now impossible: the FAT control partition
	// (and everything else Linux) is gone, so even pointing the boot
	// config fails.
	if err := c.ForceSwitch("enode09", osid.Linux); err == nil {
		t.Fatal("switch ordered against a destroyed Linux install")
	}
}

func TestV2ReimagePreservesLinux(t *testing.T) {
	c := newCluster(t, Config{Mode: HybridV2, InitialLinux: 8})
	rep, err := c.ReimageWindows("enode09", true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LinuxLost || rep.Redeployed || rep.ManualSteps != 0 {
		t.Fatalf("v2 reimage rep = %+v", rep)
	}
	c.Eng.RunFor(time.Hour)
	n := c.byName["enode09"]
	// The v2 flag points at Linux initially, so after the reimage the
	// PXE boot lands the node on Linux — the batch-reimage behaviour.
	if !n.OS.Valid() || n.Broken {
		t.Fatalf("node after reimage: %+v", n)
	}
	// The Linux system survived: switching (or landing) on Linux works.
	if n.OS != osid.Linux {
		if err := c.ForceSwitch("enode09", osid.Linux); err != nil {
			t.Fatal(err)
		}
		c.Eng.RunFor(time.Hour)
	}
	if c.byName["enode09"].OS != osid.Linux {
		t.Fatal("linux side unusable after v2 reimage")
	}
}

func TestReimageRefusesBusyNode(t *testing.T) {
	c := newCluster(t, Config{Mode: HybridV2, InitialLinux: 8})
	// Occupy the Windows side.
	trace := []struct{}{}
	_ = trace
	if _, err := c.Submit(winJob(0, 8, time.Hour)); err != nil {
		t.Fatal(err)
	}
	c.Eng.RunFor(time.Minute)
	var busy string
	for _, n := range c.Nodes() {
		if n.OS == osid.Windows && !c.nodeIdle(n) {
			busy = n.HW.Name
			break
		}
	}
	if busy == "" {
		t.Fatal("no busy windows node found")
	}
	if _, err := c.ReimageWindows(busy, false); err == nil {
		t.Fatal("reimage of a busy node accepted")
	}
	if _, err := c.ReimageWindows("ghost", false); err == nil {
		t.Fatal("reimage of unknown node accepted")
	}
}

func TestQholdQrls(t *testing.T) {
	c := newCluster(t, Config{Mode: HybridV2, InitialLinux: 8})
	id, err := c.Submit(linJob(0, 8, time.Hour)) // occupies all linux nodes
	if err != nil {
		t.Fatal(err)
	}
	_ = id
	held, err := c.Submit(linJob(0, 2, 30*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	c.Eng.RunFor(time.Minute)
	if err := c.PBS.Qhold(held); err != nil {
		t.Fatal(err)
	}
	// Held job is skipped by the scheduler even after capacity frees.
	c.Eng.RunFor(2 * time.Hour)
	j, _ := c.PBS.Job(held)
	if j.State.String() != "H" {
		t.Fatalf("held state = %v", j.State)
	}
	if err := c.PBS.Qrls(held); err != nil {
		t.Fatal(err)
	}
	c.Eng.RunFor(2 * time.Hour)
	j, _ = c.PBS.Job(held)
	if j.State.String() != "C" {
		t.Fatalf("released job state = %v", j.State)
	}
	// Error paths.
	if err := c.PBS.Qhold(held); err == nil {
		t.Fatal("hold of completed job accepted")
	}
	if err := c.PBS.Qrls(held); err == nil {
		t.Fatal("release of non-held job accepted")
	}
	if err := c.PBS.Qhold("ghost"); err == nil {
		t.Fatal("hold of unknown job accepted")
	}
	if err := c.PBS.Qrls("ghost"); err == nil {
		t.Fatal("release of unknown job accepted")
	}
}
