package workload

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/osid"
)

func TestCatalogMatchesTableI(t *testing.T) {
	if len(Catalog) != 15 {
		t.Fatalf("catalog entries = %d, Table I lists 15", len(Catalog))
	}
	want := map[string]Platform{
		"Abaqus": LinuxOnly, "Amber": LinuxOnly, "Backburner": WindowsOnly,
		"Blender": LinuxOnly, "CASTEP": LinuxOnly, "COMSOL": Both,
		"DL_POLY": LinuxOnly, "ANSYS FLUENT": Both, "GAMESS-UK": LinuxOnly,
		"GULP": LinuxOnly, "LAMMPS": LinuxOnly, "MATLAB": Both,
		"METADISE": LinuxOnly, "NWChem": LinuxOnly, "Opera": WindowsOnly,
	}
	for name, platform := range want {
		app, ok := AppByName(name)
		if !ok {
			t.Errorf("missing app %s", name)
			continue
		}
		if app.Platform != platform {
			t.Errorf("%s platform = %v, want %v", name, app.Platform, platform)
		}
	}
}

func TestCatalogPlatformCounts(t *testing.T) {
	// Table I: 10 Linux-only, 2 Windows-only, 3 both.
	if n := len(CatalogByPlatform(LinuxOnly)); n != 10 {
		t.Errorf("linux-only = %d, want 10", n)
	}
	if n := len(CatalogByPlatform(WindowsOnly)); n != 2 {
		t.Errorf("windows-only = %d, want 2", n)
	}
	if n := len(CatalogByPlatform(Both)); n != 3 {
		t.Errorf("both = %d, want 3", n)
	}
}

func TestAppByNameMissing(t *testing.T) {
	if _, ok := AppByName("Fortnite"); ok {
		t.Fatal("found nonexistent app")
	}
}

func TestPlatformString(t *testing.T) {
	if LinuxOnly.String() != "L" || WindowsOnly.String() != "W" || Both.String() != "W&L" {
		t.Fatal("platform strings wrong")
	}
}

func TestCatalogShapesSane(t *testing.T) {
	for _, a := range Catalog {
		if a.TypicalNodes <= 0 || a.TypicalPPN <= 0 || a.TypicalPPN > 4 {
			t.Errorf("%s shape %d:%d invalid", a.Name, a.TypicalNodes, a.TypicalPPN)
		}
		if a.TypicalRuntime <= 0 {
			t.Errorf("%s runtime %v invalid", a.Name, a.TypicalRuntime)
		}
	}
}

func TestPoissonDeterministic(t *testing.T) {
	cfg := PoissonConfig{Seed: 7, Duration: 24 * time.Hour, JobsPerHour: 4, WindowsFrac: 0.4}
	a := Poisson(cfg)
	b := Poisson(cfg)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("job %d differs", i)
		}
	}
}

func TestPoissonSeedChangesTrace(t *testing.T) {
	cfg := PoissonConfig{Seed: 1, Duration: 24 * time.Hour, JobsPerHour: 4, WindowsFrac: 0.4}
	a := Poisson(cfg)
	cfg.Seed = 2
	b := Poisson(cfg)
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestPoissonValidAndSorted(t *testing.T) {
	trace := Poisson(PoissonConfig{Seed: 3, Duration: 48 * time.Hour, JobsPerHour: 6, WindowsFrac: 0.3})
	if err := trace.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(trace) == 0 {
		t.Fatal("empty trace")
	}
	if trace.Span() > 48*time.Hour {
		t.Fatalf("span = %v", trace.Span())
	}
}

func TestPoissonOSRouting(t *testing.T) {
	trace := Poisson(PoissonConfig{Seed: 5, Duration: 100 * time.Hour, JobsPerHour: 10, WindowsFrac: 0.5})
	for _, j := range trace {
		app, ok := AppByName(j.App)
		if !ok {
			t.Fatalf("unknown app %q in trace", j.App)
		}
		switch app.Platform {
		case LinuxOnly:
			if j.OS != osid.Linux {
				t.Fatalf("%s routed to %v", j.App, j.OS)
			}
		case WindowsOnly:
			if j.OS != osid.Windows {
				t.Fatalf("%s routed to %v", j.App, j.OS)
			}
		}
	}
	byOS := trace.CountByOS()
	if byOS[osid.Linux] == 0 || byOS[osid.Windows] == 0 {
		t.Fatalf("mix = %v", byOS)
	}
}

func TestPoissonWindowsFracExtremes(t *testing.T) {
	all := Poisson(PoissonConfig{Seed: 1, Duration: 50 * time.Hour, JobsPerHour: 5, WindowsFrac: 1})
	if n := all.CountByOS()[osid.Linux]; n != 0 {
		t.Fatalf("frac=1 produced %d linux jobs", n)
	}
	none := Poisson(PoissonConfig{Seed: 1, Duration: 50 * time.Hour, JobsPerHour: 5, WindowsFrac: 0})
	if n := none.CountByOS()[osid.Windows]; n != 0 {
		t.Fatalf("frac=0 produced %d windows jobs", n)
	}
}

func TestPoissonMaxNodesCap(t *testing.T) {
	trace := Poisson(PoissonConfig{Seed: 2, Duration: 100 * time.Hour, JobsPerHour: 5, WindowsFrac: 0.2, MaxNodes: 2})
	for _, j := range trace {
		if j.Nodes > 2 {
			t.Fatalf("job %s has %d nodes", j.App, j.Nodes)
		}
	}
}

func TestPoissonEmptyConfigs(t *testing.T) {
	if Poisson(PoissonConfig{}) != nil {
		t.Fatal("zero config produced jobs")
	}
	if Poisson(PoissonConfig{Duration: time.Hour}) != nil {
		t.Fatal("zero rate produced jobs")
	}
}

func TestPoissonRateApproximation(t *testing.T) {
	trace := Poisson(PoissonConfig{Seed: 11, Duration: 1000 * time.Hour, JobsPerHour: 8, WindowsFrac: 0.5})
	perHour := float64(len(trace)) / 1000
	if perHour < 7 || perHour > 9 {
		t.Fatalf("rate = %.2f jobs/hour, want ≈8", perHour)
	}
}

func TestBurst(t *testing.T) {
	b := Burst(BurstConfig{Start: time.Hour, Jobs: 5, Gap: time.Minute, App: "MATLAB",
		OS: osid.Windows, Nodes: 2, PPN: 4, Runtime: 30 * time.Minute, Owner: "u"})
	if len(b) != 5 {
		t.Fatalf("burst = %d jobs", len(b))
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if b[0].At != time.Hour || b[4].At != time.Hour+4*time.Minute {
		t.Fatalf("times = %v .. %v", b[0].At, b[4].At)
	}
}

func TestMatlabGACase(t *testing.T) {
	trace := MatlabGACase(9)
	if err := trace.Validate(); err != nil {
		t.Fatal(err)
	}
	byOS := trace.CountByOS()
	if byOS[osid.Windows] != 10 {
		t.Fatalf("GA burst = %d windows jobs, want 10", byOS[osid.Windows])
	}
	if byOS[osid.Linux] == 0 {
		t.Fatal("no linux background")
	}
	// All Windows jobs are MATLAB in the case study.
	for _, j := range trace {
		if j.OS == osid.Windows && j.App != "MATLAB" {
			t.Fatalf("windows job is %s", j.App)
		}
	}
}

func TestMergeSorts(t *testing.T) {
	a := Burst(BurstConfig{Start: 2 * time.Hour, Jobs: 2, Gap: time.Minute, App: "Opera",
		OS: osid.Windows, Nodes: 1, PPN: 4, Runtime: time.Hour})
	b := Burst(BurstConfig{Start: time.Hour, Jobs: 2, Gap: time.Minute, App: "GULP",
		OS: osid.Linux, Nodes: 1, PPN: 2, Runtime: time.Hour})
	m := Merge(a, b)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m[0].App != "GULP" {
		t.Fatalf("merge order wrong: %v", m[0])
	}
}

func TestJobValidate(t *testing.T) {
	good := Job{At: 0, App: "x", OS: osid.Linux, Nodes: 1, PPN: 1, Runtime: time.Minute}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Job{
		{At: 0, App: "x", OS: osid.None, Nodes: 1, PPN: 1, Runtime: time.Minute},
		{At: 0, App: "x", OS: osid.Linux, Nodes: 0, PPN: 1, Runtime: time.Minute},
		{At: 0, App: "x", OS: osid.Linux, Nodes: 1, PPN: 0, Runtime: time.Minute},
		{At: 0, App: "x", OS: osid.Linux, Nodes: 1, PPN: 1, Runtime: 0},
		{At: -time.Second, App: "x", OS: osid.Linux, Nodes: 1, PPN: 1, Runtime: time.Minute},
	}
	for i, j := range bad {
		if err := j.Validate(); err == nil {
			t.Errorf("bad job %d validated", i)
		}
	}
}

func TestTraceValidateOrdering(t *testing.T) {
	tr := Trace{
		{At: time.Hour, App: "a", OS: osid.Linux, Nodes: 1, PPN: 1, Runtime: time.Minute},
		{At: time.Minute, App: "b", OS: osid.Linux, Nodes: 1, PPN: 1, Runtime: time.Minute},
	}
	if err := tr.Validate(); err == nil {
		t.Fatal("unsorted trace validated")
	}
	tr.Sort()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPhasedWideMix(t *testing.T) {
	trace := PhasedWideMix(PhasedConfig{Seed: 4, Phases: 8, WindowsFrac: 0.5})
	if err := trace.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(trace) != 8*4 {
		t.Fatalf("jobs = %d, want 32", len(trace))
	}
	wide := 0
	for _, j := range trace {
		if j.Nodes == 10 {
			wide++
		}
	}
	if wide != 8 {
		t.Fatalf("wide jobs = %d, want one per phase", wide)
	}
	byOS := trace.CountByOS()
	if byOS[osid.Windows] != 16 || byOS[osid.Linux] != 16 {
		t.Fatalf("mix = %v", byOS)
	}
}

func TestPhasedWideMixFracExtremes(t *testing.T) {
	all := PhasedWideMix(PhasedConfig{Seed: 1, Phases: 4, WindowsFrac: 1})
	if all.CountByOS()[osid.Linux] != 0 {
		t.Fatal("frac=1 produced linux phases")
	}
	none := PhasedWideMix(PhasedConfig{Seed: 1, Phases: 4, WindowsFrac: 0})
	if none.CountByOS()[osid.Windows] != 0 {
		t.Fatal("frac=0 produced windows phases")
	}
}

func TestPhasedWideMixDeterministic(t *testing.T) {
	a := PhasedWideMix(PhasedConfig{Seed: 2, WindowsFrac: 0.25})
	b := PhasedWideMix(PhasedConfig{Seed: 2, WindowsFrac: 0.25})
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("job %d differs", i)
		}
	}
}

// Property: Poisson traces are always valid for any seed/mix.
func TestQuickPoissonValid(t *testing.T) {
	f := func(seed int64, fracByte uint8) bool {
		frac := float64(fracByte) / 255
		trace := Poisson(PoissonConfig{Seed: seed, Duration: 20 * time.Hour, JobsPerHour: 5, WindowsFrac: frac})
		return trace.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
