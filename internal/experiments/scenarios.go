package experiments

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/bootmgr"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/metrics"
	"repro/internal/osid"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// sumEvents totals the wakeups of a sweep outcome for Table.EventsRun.
func sumEvents(out *sweep.Outcome) uint64 {
	var n uint64
	for _, r := range out.Results {
		n += r.Res.EventsRun
	}
	return n
}

// wideBurst is the canonical stuck-queue scenario: one wide Windows
// job against an all-Linux cluster.
func wideBurst() workload.Trace {
	return workload.Burst(workload.BurstConfig{
		Start: 0, Jobs: 1, Gap: time.Minute, App: "ANSYS FLUENT",
		OS: osid.Windows, Nodes: 4, PPN: 4, Runtime: time.Hour, Owner: "cfd",
	})
}

// alternating builds recurring Windows bursts over a Linux background.
func alternating(seed int64) workload.Trace {
	lin := workload.Poisson(workload.PoissonConfig{
		Seed: seed, Duration: 24 * time.Hour, JobsPerHour: 2, WindowsFrac: 0, MaxNodes: 4,
	})
	var bursts workload.Trace
	for i := 0; i < 4; i++ {
		bursts = append(bursts, workload.Burst(workload.BurstConfig{
			Start: time.Duration(i*6) * time.Hour, Jobs: 4, Gap: 2 * time.Minute,
			App: "Backburner", OS: osid.Windows, Nodes: 2, PPN: 4,
			Runtime: 45 * time.Minute, Owner: "render",
		})...)
	}
	return workload.Merge(lin, bursts)
}

// E8ControlLoop compares the v1 and v2 control loops on the same
// stuck-queue scenario.
func E8ControlLoop() (Table, error) {
	t := Table{
		ID:     "E8",
		Title:  "Figures 1/11–13 control loop: v1 FAT vs v2 per-MAC vs v2 flag",
		Header: []string{"mechanism", "switches", "control-actions", "win-wait", "completed"},
		Notes:  "v1 edits one FAT file per node; the Figure-12 per-MAC variant writes one menu per node; the final flag design (Figure 13) sets it once per direction change",
	}
	variants := []struct {
		name string
		cfg  cluster.Config
	}{
		{"v1 (FAT file)", cluster.Config{Mode: cluster.HybridV1, InitialLinux: 16, Cycle: 5 * time.Minute}},
		{"v2 per-MAC (Fig 12)", cluster.Config{Mode: cluster.HybridV2, PerMACBoot: true, InitialLinux: 16, Cycle: 5 * time.Minute}},
		{"v2 flag (Fig 13)", cluster.Config{Mode: cluster.HybridV2, InitialLinux: 16, Cycle: 5 * time.Minute}},
	}
	for _, v := range variants {
		res, err := core.Run(core.Scenario{Name: v.name, Cluster: v.cfg, Trace: wideBurst()})
		if err != nil {
			return t, err
		}
		t.EventsRun += res.EventsRun
		t.Rows = append(t.Rows, []string{
			v.name,
			fmt.Sprintf("%d", res.Summary.Switches),
			fmt.Sprintf("%d", res.ControlActions),
			metrics.Dur(res.Summary.MeanWait[osid.Windows]),
			fmt.Sprintf("%d", res.Summary.JobsCompleted[osid.Windows]),
		})
	}
	return t, nil
}

// E9SwitchLatency measures the switch-latency distribution against the
// paper's five-minute bound.
func E9SwitchLatency() (Table, error) {
	t := Table{
		ID:     "E9",
		Title:  "OS switch latency (paper: \"no more than five minutes\")",
		Header: []string{"version", "direction", "mean", "max", "samples", "under-5m"},
	}
	for _, mode := range []cluster.Mode{cluster.HybridV1, cluster.HybridV2} {
		c, err := cluster.New(cluster.Config{Mode: mode, Nodes: 16, InitialLinux: 16, Seed: 7})
		if err != nil {
			return t, err
		}
		target := osid.Windows
		for round := 0; round < 6; round++ {
			for n := 1; n <= 16; n++ {
				_ = c.ForceSwitch(fmt.Sprintf("enode%02d", n), target)
			}
			c.Eng.RunFor(time.Hour)
			target = target.Other()
		}
		t.EventsRun += c.Eng.EventsRun()
		byDir := map[osid.OS][]time.Duration{}
		for _, sw := range c.Rec.Switches() {
			if sw.OK {
				byDir[sw.To] = append(byDir[sw.To], sw.Duration())
			}
		}
		for _, dir := range []osid.OS{osid.Linux, osid.Windows} {
			samples := byDir[dir]
			var sum, max time.Duration
			for _, d := range samples {
				sum += d
				if d > max {
					max = d
				}
			}
			if len(samples) == 0 {
				continue
			}
			mean := sum / time.Duration(len(samples))
			t.Rows = append(t.Rows, []string{
				mode.String(), "-> " + dir.String(),
				metrics.Dur(mean), metrics.Dur(max),
				fmt.Sprintf("%d", len(samples)),
				fmt.Sprintf("%v", max <= 5*time.Minute),
			})
		}
	}
	return t, nil
}

// E10BiVsMono compares the bi-stable hybrid to the mono-stable
// one-scheduler baseline on recurring Windows bursts.
func E10BiVsMono() (Table, error) {
	t := Table{
		ID:     "E10",
		Title:  "bi-stable vs mono-stable (§III-C, ref [5])",
		Header: core.ResultHeader(),
		Notes:  "bi-stable keeps a warm Windows pool: fewer reboots and faster Windows service",
	}
	results, err := core.CompareModes(
		[]cluster.Mode{cluster.HybridV2, cluster.MonoStable},
		cluster.Config{InitialLinux: 16, Cycle: 5 * time.Minute},
		alternating(42), 72*time.Hour)
	if err != nil {
		return t, err
	}
	for _, r := range results {
		t.EventsRun += r.EventsRun
		t.Rows = append(t.Rows, core.ResultRow(r))
	}
	return t, nil
}

// E11MatlabGA reproduces the Eridani MATLAB-MDCS case study with a
// node-count time series.
func E11MatlabGA() (Table, error) {
	res, err := core.Run(core.Scenario{
		Name:           "matlab-ga",
		Cluster:        cluster.Config{Mode: cluster.HybridV2, InitialLinux: 16, Cycle: 5 * time.Minute},
		Trace:          workload.MatlabGACase(7),
		Horizon:        48 * time.Hour,
		SampleInterval: time.Hour,
	})
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:        "E11",
		EventsRun: res.EventsRun,
		Title:     "Eridani case study: MATLAB MDCS GA burst (§IV-B)",
		Header:    []string{"t", "linux-nodes", "win-nodes", "switching", "linQ", "winQ"},
		Notes: fmt.Sprintf("GA jobs completed: %d/10; mean Windows wait %s; switches %d",
			res.Summary.JobsCompleted[osid.Windows],
			metrics.Dur(res.Summary.MeanWait[osid.Windows]),
			res.Summary.Switches),
	}
	for _, s := range res.Series {
		t.Rows = append(t.Rows, []string{
			metrics.Dur(s.At),
			fmt.Sprintf("%d", s.LinuxNodes),
			fmt.Sprintf("%d", s.WindowsNodes),
			fmt.Sprintf("%d", s.Switching),
			fmt.Sprintf("%d", s.LinuxQueued),
			fmt.Sprintf("%d", s.WindowsQueued),
		})
	}
	return t, nil
}

// e12Fracs are the Windows demand shares E12 sweeps.
var e12Fracs = []float64{0, 0.25, 0.5, 0.75, 1}

// E12Grid is the sweep E12 runs: hybrid vs static across the phased
// demand mixes. Exported so the grid travels as a committed spec
// document (see SpecFiles) and CI can replay it.
func E12Grid() sweep.Grid {
	g := sweep.Grid{
		Modes:    []cluster.Mode{cluster.HybridV2, cluster.Static},
		BaseSeed: 99,
		Cycle:    5 * time.Minute,
		Horizon:  96 * time.Hour,
	}
	for _, frac := range e12Fracs {
		g.Traces = append(g.Traces, sweep.TraceSpec{
			Name: fmt.Sprintf("phased-w%g", frac),
			Kind: sweep.TracePhased, WindowsFrac: frac,
		})
	}
	return g
}

// E12MixSweep sweeps the Windows demand share over the phased
// wide-job workload: hybrid vs static utilisation. The mode × share
// grid fans out through the sweep subsystem — both modes of each share
// replay the identical trace (paired comparison), and the cells run
// concurrently.
func E12MixSweep() (Table, error) {
	t := Table{
		ID:     "E12",
		Title:  "utilisation: hybrid vs static split across demand mixes (§I)",
		Header: []string{"windows-share", "hybrid-util", "static-util", "hybrid-done", "static-done"},
		Notes:  "wide jobs exceed the 8-node static halves; the split strands them (Torque rejects as infeasible)",
	}
	fracs := e12Fracs
	g := E12Grid()
	out, err := sweep.Run(sweep.Config{Grid: g})
	if err != nil {
		return t, err
	}
	t.EventsRun = sumEvents(out)
	for i, frac := range fracs {
		row, err := hybridVsStaticRow(out, g.Traces[i].Name, frac)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// hybridVsStaticRow digests one trace shape's hybrid and static cells
// into an E12-style comparison row. The completion denominator is the
// full trace length, not the submitted count: the static split's
// stranded wide jobs are rejected at submission (Torque deems them
// infeasible), and hiding them would erase exactly the effect the
// table demonstrates.
func hybridVsStaticRow(out *sweep.Outcome, traceName string, frac float64) ([]string, error) {
	pick := func(mode cluster.Mode) (sweep.CellResult, error) {
		for _, r := range out.Select(func(c sweep.Cell) bool {
			return c.Mode == mode && c.Trace.Name == traceName
		}) {
			return r, r.Err
		}
		return sweep.CellResult{}, fmt.Errorf("experiments: no %v cell for trace %s", mode, traceName)
	}
	h, err := pick(cluster.HybridV2)
	if err != nil {
		return nil, err
	}
	s, err := pick(cluster.Static)
	if err != nil {
		return nil, err
	}
	trace, err := h.Cell.Trace.Build(h.Cell.TraceSeed)
	if err != nil {
		return nil, err
	}
	traceLen := len(trace)
	total := func(m map[osid.OS]int) int { return m[osid.Linux] + m[osid.Windows] }
	return []string{
		metrics.Pct(frac),
		metrics.Pct(h.Res.Summary.Utilisation),
		metrics.Pct(s.Res.Summary.Utilisation),
		fmt.Sprintf("%d/%d", total(h.Res.Summary.JobsCompleted), traceLen),
		fmt.Sprintf("%d/%d", total(s.Res.Summary.JobsCompleted), traceLen),
	}, nil
}

// E13Grid is the sweep E13 runs: every cluster organisation against
// rising Poisson arrival rates. Exported so the grid travels as a
// committed spec document (see SpecFiles) and CI can replay it.
func E13Grid() sweep.Grid {
	return sweep.Grid{
		Modes: []cluster.Mode{cluster.HybridV1, cluster.HybridV2, cluster.Static, cluster.MonoStable},
		Traces: []sweep.TraceSpec{
			{JobsPerHour: 2, WindowsFrac: 0.3, Duration: 24 * time.Hour},
			{JobsPerHour: 4, WindowsFrac: 0.3, Duration: 24 * time.Hour},
			{JobsPerHour: 8, WindowsFrac: 0.3, Duration: 24 * time.Hour},
		},
		BaseSeed: 13,
		Cycle:    5 * time.Minute,
		Horizon:  96 * time.Hour,
	}
}

// E13SweepModes regenerates the mode-vs-load comparison through the
// sweep subsystem: every cluster organisation against rising Poisson
// arrival rates, ranked by utilisation. One sweep call replaces the
// mode-by-mode core.Run loops the earlier experiments hand-rolled.
func E13SweepModes() (Table, error) {
	g := E13Grid()
	out, err := sweep.Run(sweep.Config{Grid: g})
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:        "E13",
		Title:     "sweep: cluster mode vs offered load, ranked by utilisation",
		Header:    sweep.Header(),
		EventsRun: sumEvents(out),
		Notes: fmt.Sprintf("%s; deterministic per-cell seeds, identical table for any worker count",
			g.Describe()),
	}
	for i, r := range out.Ranked() {
		if r.Err != nil {
			return t, r.Err
		}
		t.Rows = append(t.Rows, sweep.Row(i+1, r))
	}
	return t, nil
}

// E15Policies are the policies E15 ranks: the paper's deployed rule
// and the three adaptive extensions, in registry order.
var E15Policies = []string{"fcfs", "threshold", "hysteresis", "predictive"}

// E15Grid is the sweep E15 runs: the four switching policies crossed
// with the diurnal campus pattern and the oscillating render-burst
// trace. The grid travels as the committed specs/e15_policy_suite.json
// document, which the CI artifact and spec-replay jobs run through
// `qsim sweep -f`; a test pins the document to this grid and another
// asserts the headline ordering.
func E15Grid() (sweep.Grid, error) {
	var specs []sweep.PolicySpec
	for _, name := range E15Policies {
		p, err := sweep.PolicyByName(name)
		if err != nil {
			return sweep.Grid{}, err
		}
		specs = append(specs, p)
	}
	return sweep.Grid{
		Modes:    []cluster.Mode{cluster.HybridV2},
		Policies: specs,
		Traces: []sweep.TraceSpec{
			{Kind: sweep.TraceDiurnal, JobsPerHour: 3, WindowsFrac: 0.5, Duration: 72 * time.Hour},
			{Kind: sweep.TraceBurst, JobsPerHour: 3, WindowsFrac: 0.5, Duration: 72 * time.Hour},
		},
		BaseSeed: 15,
		Cycle:    5 * time.Minute,
	}, nil
}

// E15PolicySuite ranks the switching-policy suite on the diurnal and
// burst traces — the repo's headline question ("when is hybrid
// switching worth it?") as a swept result. Within each trace the
// policies are ranked by utilisation, then fewest switches; the thrash
// column counts switches reversed within one dwell window
// (controller.ThrashCount), the reboots a calmer rule would not have
// paid for.
func E15PolicySuite() (Table, error) {
	t := Table{
		ID:     "E15",
		Title:  "adaptive OS-switching policies: thrash vs utilisation (§V \"adapt the rules\")",
		Header: []string{"trace", "policy", "util", "switches", "thrash", "wait(L)", "wait(W)", "makespan", "done/subm"},
		Notes:  "threshold chases every swing of the queue; hysteresis's dead band and dwell time buy the same service for fewer reboots; predictive only pays for backlog that outlives the switch latency",
	}
	g, err := E15Grid()
	if err != nil {
		return t, err
	}
	out, err := sweep.Run(sweep.Config{Grid: g})
	if err != nil {
		return t, err
	}
	t.EventsRun = sumEvents(out)
	// Expansion normalises trace names; read them back off the cells
	// in expansion order rather than re-deriving.
	var traceNames []string
	seen := map[string]bool{}
	for _, r := range out.Results {
		if !seen[r.Cell.Trace.Name] {
			seen[r.Cell.Trace.Name] = true
			traceNames = append(traceNames, r.Cell.Trace.Name)
		}
	}
	for _, trName := range traceNames {
		trName := trName
		cells := out.Select(func(c sweep.Cell) bool { return c.Trace.Name == trName })
		// Rank within the trace: utilisation first, then fewest
		// switches, expansion order as the stable tie-break.
		sort.SliceStable(cells, func(i, j int) bool {
			si, sj := cells[i].Res.Summary, cells[j].Res.Summary
			if si.Utilisation != sj.Utilisation {
				return si.Utilisation > sj.Utilisation
			}
			return si.Switches < sj.Switches
		})
		for _, r := range cells {
			if r.Err != nil {
				return t, r.Err
			}
			s := r.Res.Summary
			done := s.JobsCompleted[osid.Linux] + s.JobsCompleted[osid.Windows]
			subm := s.JobsSubmitted[osid.Linux] + s.JobsSubmitted[osid.Windows]
			t.Rows = append(t.Rows, []string{
				trName,
				r.Cell.Policy.Name,
				metrics.Pct(s.Utilisation),
				fmt.Sprintf("%d", s.Switches),
				fmt.Sprintf("%d", r.Res.Thrash),
				metrics.Dur(s.MeanWait[osid.Linux]),
				metrics.Dur(s.MeanWait[osid.Windows]),
				metrics.Dur(s.Makespan),
				fmt.Sprintf("%d/%d", done, subm),
			})
		}
	}
	return t, nil
}

// E16Grid is the sweep E16 runs: strict FCFS vs EASY backfill on the
// wide-mix traces where head-of-line blocking actually bites — the
// phased wide-job mix whose 10-node phase leaders wedge the queue
// head, plus a dense Poisson day that keeps a deep queue behind the
// wide catalog jobs. The grid travels as the committed
// specs/e16_sched_policies.json document, which the CI artifact and
// spec-replay jobs run through `qsim sweep -f`; a test pins the
// document to this grid and another asserts the headline ordering.
func E16Grid() sweep.Grid {
	return sweep.Grid{
		Modes:         []cluster.Mode{cluster.HybridV2},
		SchedPolicies: []cluster.SchedPolicy{cluster.SchedFCFS, cluster.SchedBackfill},
		Traces: []sweep.TraceSpec{
			// The phased shape ignores its arrival rate (its name and
			// its builder are rate-free); pinning it to the Poisson
			// trace's 6 jobs/hour keeps the grid a clean kind × rate
			// cross, so it is expressible as a spec document.
			{Kind: sweep.TracePhased, JobsPerHour: 6, WindowsFrac: 0.5},
			{JobsPerHour: 6, WindowsFrac: 0.5, Duration: 24 * time.Hour},
		},
		BaseSeed: 16,
		Cycle:    5 * time.Minute,
		Horizon:  200 * time.Hour,
	}
}

// E16SchedPolicies ranks strict FCFS against reservation-based EASY
// backfill on both schedulers. The EASY rule — a job may jump the
// blocked head only when it cannot delay the head's earliest
// reservation — lets narrow work flow around a wedged wide job
// without ever starving it, so backfill should buy
// equal-or-better utilisation while the wide jobs' MaxWait stays
// bounded by their reservations.
func E16SchedPolicies() (Table, error) {
	t := Table{
		ID:     "E16",
		Title:  "scheduler policy: strict FCFS vs EASY backfill on wide-mix traces",
		Header: []string{"trace", "sched", "util", "wait(L)", "wait(W)", "maxwait(L)", "maxwait(W)", "switches", "done/subm"},
		Notes:  "EASY backfill packs narrow jobs around the wedged wide head under a reservation that bounds the head's wait; unreserved greedy backfill would instead let the narrow stream starve it",
	}
	g := E16Grid()
	out, err := sweep.Run(sweep.Config{Grid: g})
	if err != nil {
		return t, err
	}
	t.EventsRun = sumEvents(out)
	// Expansion normalises trace names; read them back off the cells.
	var traceNames []string
	seen := map[string]bool{}
	for _, r := range out.Results {
		if !seen[r.Cell.Trace.Name] {
			seen[r.Cell.Trace.Name] = true
			traceNames = append(traceNames, r.Cell.Trace.Name)
		}
	}
	for _, trName := range traceNames {
		cells := out.Select(func(c sweep.Cell) bool { return c.Trace.Name == trName })
		// Rank within the trace: utilisation first, then completed
		// jobs, expansion order as the stable tie-break.
		sort.SliceStable(cells, func(i, j int) bool {
			si, sj := cells[i].Res.Summary, cells[j].Res.Summary
			if si.Utilisation != sj.Utilisation {
				return si.Utilisation > sj.Utilisation
			}
			di := si.JobsCompleted[osid.Linux] + si.JobsCompleted[osid.Windows]
			dj := sj.JobsCompleted[osid.Linux] + sj.JobsCompleted[osid.Windows]
			return di > dj
		})
		for _, r := range cells {
			if r.Err != nil {
				return t, r.Err
			}
			s := r.Res.Summary
			done := s.JobsCompleted[osid.Linux] + s.JobsCompleted[osid.Windows]
			subm := s.JobsSubmitted[osid.Linux] + s.JobsSubmitted[osid.Windows]
			t.Rows = append(t.Rows, []string{
				trName,
				r.Cell.Sched.String(),
				metrics.Pct(s.Utilisation),
				metrics.Dur(s.MeanWait[osid.Linux]),
				metrics.Dur(s.MeanWait[osid.Windows]),
				metrics.Dur(s.MaxWait[osid.Linux]),
				metrics.Dur(s.MaxWait[osid.Windows]),
				fmt.Sprintf("%d", s.Switches),
				fmt.Sprintf("%d/%d", done, subm),
			})
		}
	}
	return t, nil
}

// A1CycleInterval ablates the detector reporting cycle.
func A1CycleInterval() (Table, error) {
	t := Table{
		ID:     "A1",
		Title:  "ablation: detector cycle interval (paper used 5–10 min)",
		Header: []string{"cycle", "win-wait", "messages", "switches"},
		Notes:  "shorter cycles cut queue wait at the cost of control traffic",
	}
	for _, cycle := range []time.Duration{time.Minute, 5 * time.Minute, 10 * time.Minute, 30 * time.Minute} {
		res, err := core.Run(core.Scenario{
			Name:    cycle.String(),
			Cluster: cluster.Config{Mode: cluster.HybridV2, InitialLinux: 16, Cycle: cycle},
			Trace: workload.Burst(workload.BurstConfig{
				Start: 0, Jobs: 3, Gap: time.Minute, App: "Opera",
				OS: osid.Windows, Nodes: 1, PPN: 4, Runtime: time.Hour, Owner: "u",
			}),
			Horizon: 72 * time.Hour,
		})
		if err != nil {
			return t, err
		}
		t.EventsRun += res.EventsRun
		t.Rows = append(t.Rows, []string{
			cycle.String(),
			metrics.Dur(res.Summary.MeanWait[osid.Windows]),
			fmt.Sprintf("%d", res.Controller.StatesSent),
			fmt.Sprintf("%d", res.Summary.Switches),
		})
	}
	return t, nil
}

// A2Policies ablates the decision rule. The policy axis fans out
// through the sweep subsystem; each cell constructs its own policy
// instance (hysteresis carries state), and every policy faces the
// identical alternating trace.
func A2Policies() (Table, error) {
	t := Table{
		ID:     "A2",
		Title:  "ablation: controller decision policy (§V future work)",
		Header: []string{"policy", "util", "switches", "win-wait"},
		Notes:  "the paper's stuck-only FCFS is conservative; demand-proportional fair-share moves earlier and lifts utilisation",
	}
	g := sweep.Grid{
		Modes:    []cluster.Mode{cluster.HybridV2},
		Policies: sweep.DefaultPolicies(),
		Traces: []sweep.TraceSpec{{
			Name:   "alternating",
			Custom: func(int64) workload.Trace { return alternating(11) },
		}},
		Cycle:        5 * time.Minute,
		InitialLinux: 16,
		Horizon:      72 * time.Hour,
	}
	out, err := sweep.Run(sweep.Config{Grid: g})
	if err != nil {
		return t, err
	}
	t.EventsRun = sumEvents(out)
	for _, r := range out.Results {
		if r.Err != nil {
			return t, r.Err
		}
		t.Rows = append(t.Rows, []string{
			r.Cell.Policy.Name,
			metrics.Pct(r.Res.Summary.Utilisation),
			fmt.Sprintf("%d", r.Res.Summary.Switches),
			metrics.Dur(r.Res.Summary.MeanWait[osid.Windows]),
		})
	}
	return t, nil
}

// A3SwitchCost scales the reboot cost.
func A3SwitchCost() (Table, error) {
	t := Table{
		ID:     "A3",
		Title:  "ablation: reboot cost vs hybrid benefit",
		Header: []string{"boot-scale", "mean-switch", "hybrid-util", "static-util", "switch-overhead"},
		Notes:  "the multi-boot con (§II) grows with boot time; the wide-job advantage persists but overhead climbs",
	}
	for _, scale := range []float64{0.5, 1, 4, 12} {
		lat := bootmgr.DefaultLatencyModel()
		lat.KernelLinux = time.Duration(float64(lat.KernelLinux) * scale)
		lat.KernelWindows = time.Duration(float64(lat.KernelWindows) * scale)
		lat.ServicesLinux = time.Duration(float64(lat.ServicesLinux) * scale)
		lat.ServicesWindows = time.Duration(float64(lat.ServicesWindows) * scale)
		lat.Shutdown = time.Duration(float64(lat.Shutdown) * scale)
		trace := workload.PhasedWideMix(workload.PhasedConfig{Seed: 5, Phases: 8, WindowsFrac: 0.5})
		results, err := core.CompareModes(
			[]cluster.Mode{cluster.HybridV2, cluster.Static},
			cluster.Config{InitialLinux: 8, Cycle: 5 * time.Minute, Latency: &lat},
			trace, 200*time.Hour)
		if err != nil {
			return t, err
		}
		h, s := results[0].Summary, results[1].Summary
		t.EventsRun += results[0].EventsRun + results[1].EventsRun
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("x%.1f", scale),
			metrics.Dur(h.MeanSwitch),
			metrics.Pct(h.Utilisation),
			metrics.Pct(s.Utilisation),
			metrics.Pct(h.SwitchOverhead),
		})
	}
	return t, nil
}

// E14Grid is the sweep E14 runs: the campus fabric under every
// routing policy, with the phased wide-job mix — each phase leads with
// a 10-node job that wedges the flexible member's 8-node half whenever
// the router places it there, so the paper's stuck-only FCFS actually
// fires and the hybrid fabric separates from the all-static one.
// Exported so the grid travels as a committed spec document (see
// SpecFiles) and CI can replay it.
func E14Grid() (sweep.Grid, error) {
	campus, err := sweep.TopologyByName("campus")
	if err != nil {
		return sweep.Grid{}, err
	}
	return sweep.Grid{
		Modes:      []cluster.Mode{cluster.HybridV2, cluster.Static},
		Topologies: []sweep.TopologySpec{campus},
		Routings: []grid.RoutingPolicy{
			grid.RouteLeastLoaded, grid.RouteRoundRobin, grid.RouteHybridLast,
		},
		Traces: []sweep.TraceSpec{{
			Kind: sweep.TracePhased, WindowsFrac: 0.5,
		}},
		BaseSeed: 17,
		Cycle:    5 * time.Minute,
		Horizon:  200 * time.Hour,
	}, nil
}

// E14RoutingPolicies ranks the campus router's placement policies on
// the Queensgate-like fabric: a flexible member (the cell's mode)
// between a Linux-only and a Windows-only static, all on one clock.
// The mode axis flips the flexible member between hybrid-v2 and
// static, so the table also shows whether a hybrid in the fabric pays
// for itself under each routing rule.
func E14RoutingPolicies() (Table, error) {
	t := Table{
		ID:     "E14",
		Title:  "campus-grid routing policies across the QGG fabric",
		Header: []string{"fabric-member", "routing", "util", "wait(L)", "wait(W)", "switches", "dropped", "done/subm"},
		Notes:  "campus topology: flexible member + linux-only static + windows-only static, 16 nodes each; when the router lands a 10-node lead job on the flexible member its 8-node half wedges and dualboot shifts nodes across (switches, nothing dropped), while hybrid-last keeps wide work on the 16-node statics and avoids the churn entirely",
	}
	g, err := E14Grid()
	if err != nil {
		return t, err
	}
	out, err := sweep.Run(sweep.Config{Grid: g})
	if err != nil {
		return t, err
	}
	t.EventsRun = sumEvents(out)
	for _, r := range out.Results {
		if r.Err != nil {
			return t, r.Err
		}
		s := r.Res.Summary
		done := s.JobsCompleted[osid.Linux] + s.JobsCompleted[osid.Windows]
		subm := s.JobsSubmitted[osid.Linux] + s.JobsSubmitted[osid.Windows]
		t.Rows = append(t.Rows, []string{
			r.Cell.Mode.String(),
			r.Cell.Routing.String(),
			metrics.Pct(s.Utilisation),
			metrics.Dur(s.MeanWait[osid.Linux]),
			metrics.Dur(s.MeanWait[osid.Windows]),
			fmt.Sprintf("%d", s.Switches),
			fmt.Sprintf("%d", r.Res.Dropped),
			fmt.Sprintf("%d/%d", done, subm),
		})
	}
	return t, nil
}
