package driver

import (
	"testing"
	"time"

	"repro/internal/simtime"
)

// fakeWorkload counts down outstanding work as its events fire.
type fakeWorkload struct {
	outstanding int
	quiesced    int
}

func (w *fakeWorkload) Busy() bool { return w.outstanding > 0 }
func (w *fakeWorkload) Quiesce()   { w.quiesced++ }

func TestDrainStopsAtQuiescence(t *testing.T) {
	eng := simtime.NewEngine()
	w := &fakeWorkload{outstanding: 2}
	eng.After(10*time.Minute, func() { w.outstanding-- })
	eng.After(45*time.Minute, func() { w.outstanding-- })
	tk := eng.EveryBackground(time.Minute, func() {})
	defer tk.Stop()
	Drain(eng, 24*time.Hour, w)
	if w.quiesced != 1 {
		t.Fatalf("Quiesce called %d times", w.quiesced)
	}
	if eng.Now() != 45*time.Minute {
		t.Fatalf("stopped at %v, want exactly 45m", eng.Now())
	}
}

func TestDrainRidesWedgedWorkloadToHorizon(t *testing.T) {
	eng := simtime.NewEngine()
	w := &fakeWorkload{outstanding: 1} // nothing scheduled can clear it
	Drain(eng, 3*time.Hour, w)
	if eng.Now() != 3*time.Hour {
		t.Fatalf("wedged drain ended at %v", eng.Now())
	}
	if w.quiesced != 1 {
		t.Fatal("Quiesce not called on a wedged drain")
	}
}

func TestDrainNonPositiveHorizonIsUnbounded(t *testing.T) {
	eng := simtime.NewEngine()
	w := &fakeWorkload{outstanding: 1}
	eng.After(100*24*time.Hour, func() { w.outstanding-- })
	Drain(eng, 0, w)
	if eng.Now() != 100*24*time.Hour {
		t.Fatalf("unbounded drain ended at %v", eng.Now())
	}
}
