package workload

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/osid"
)

// swfLine renders one 18-field SWF record from a short field list,
// padding the trailing fields with -1 sentinels.
func swfLine(fields ...string) string {
	for len(fields) < swfFields {
		fields = append(fields, "-1")
	}
	return strings.Join(fields, " ")
}

// A well-formed miniature log: header directives, a comment, and three
// jobs (one relying on the requested-time fallback).
const sampleSWF = `; Version: 2.2
; Computer: test rig
; MaxNodes: 8
; this comment line has no colon-separated value
1 0    -1 3600 4  -1 -1 4  5400 -1 1 7  -1 3  1 1 -1 -1
2 60   -1 -1   -1 -1 -1 12 1800 -1 1 8  -1 5  1 1 -1 -1
3 7260 -1 600  1  -1 -1 1  900  -1 1 -1 -1 -1 1 1 -1 -1
`

func TestReadSWFMapsFields(t *testing.T) {
	trace, hdr, err := ReadSWF(strings.NewReader(sampleSWF), SWFConfig{Seed: 1, PPN: 4})
	if err != nil {
		t.Fatal(err)
	}
	if hdr["MaxNodes"] != "8" || hdr["Computer"] != "test rig" {
		t.Fatalf("header = %v", hdr)
	}
	if len(trace) != 3 {
		t.Fatalf("got %d jobs", len(trace))
	}
	// Job 1: 4 procs at ppn 4 → 1×4, used time 3600s.
	if j := trace[0]; j.At != 0 || j.Nodes != 1 || j.PPN != 4 || j.Runtime != time.Hour || j.Owner != "u7" || j.App != "swf-app3" {
		t.Fatalf("job 1 = %+v", j)
	}
	// Job 2: used time is -1, so the requested 1800s stands in; 12
	// procs fold to 3×4.
	if j := trace[1]; j.At != time.Minute || j.Nodes != 3 || j.PPN != 4 || j.Runtime != 30*time.Minute {
		t.Fatalf("job 2 = %+v", j)
	}
	// Job 3: -1 user and executable sentinels get placeholder labels.
	if j := trace[2]; j.Owner != "unknown" || j.App != "swf-app" {
		t.Fatalf("job 3 = %+v", j)
	}
}

func TestReadSWFRequestedTime(t *testing.T) {
	trace, _, err := ReadSWF(strings.NewReader(sampleSWF), SWFConfig{UseRequested: true})
	if err != nil {
		t.Fatal(err)
	}
	// Job 1 now takes the requested 5400s; job 2 falls back from the
	// missing used time to the requested field either way.
	if trace[0].Runtime != 90*time.Minute || trace[1].Runtime != 30*time.Minute {
		t.Fatalf("runtimes = %v, %v", trace[0].Runtime, trace[1].Runtime)
	}
}

func TestReadSWFTruncation(t *testing.T) {
	trace, _, err := ReadSWF(strings.NewReader(sampleSWF), SWFConfig{MaxJobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != 2 {
		t.Fatalf("maxjobs: got %d jobs", len(trace))
	}
	// The window is measured from the first kept job; job 3 arrives at
	// 7260s and falls outside a 1h window.
	trace, _, err = ReadSWF(strings.NewReader(sampleSWF), SWFConfig{Window: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != 2 {
		t.Fatalf("window: got %d jobs", len(trace))
	}
}

func TestReadSWFRescalesNodes(t *testing.T) {
	trace, _, err := ReadSWF(strings.NewReader(sampleSWF), SWFConfig{TargetNodes: 6})
	if err != nil {
		t.Fatal(err)
	}
	// Widest job was 3 nodes → scaled ×2; the 1-node jobs follow.
	if trace[1].Nodes != 6 || trace[0].Nodes != 2 {
		t.Fatalf("rescaled widths = %d, %d", trace[0].Nodes, trace[1].Nodes)
	}
}

func TestReadSWFPlatformAssignment(t *testing.T) {
	var lines []string
	lines = append(lines, "; Version: 2.2")
	for i := 1; i <= 400; i++ {
		lines = append(lines, swfLine(itoa(i), itoa(i*10), "-1", "600", "1"))
	}
	log := strings.Join(lines, "\n")
	trace, _, err := ReadSWF(strings.NewReader(log), SWFConfig{Seed: 42, WindowsFrac: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	counts := trace.CountByOS()
	if counts[osid.Windows] == 0 || counts[osid.Linux] == 0 {
		t.Fatalf("degenerate split: %v", counts)
	}
	if frac := float64(counts[osid.Windows]) / float64(len(trace)); frac < 0.2 || frac > 0.4 {
		t.Fatalf("windows share %.2f far from 0.3", frac)
	}
	// Deterministic: same seed → same assignment; different seed →
	// (almost surely) a different one.
	again, _, err := ReadSWF(strings.NewReader(log), SWFConfig{Seed: 42, WindowsFrac: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	reseeded, _, err := ReadSWF(strings.NewReader(log), SWFConfig{Seed: 43, WindowsFrac: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	var differs bool
	for i := range trace {
		if trace[i].OS != again[i].OS {
			t.Fatalf("job %d: same seed, different platform", i)
		}
		if trace[i].OS != reseeded[i].OS {
			differs = true
		}
	}
	if !differs {
		t.Fatal("reseeding never moved a job")
	}
}

func TestReadSWFMalformed(t *testing.T) {
	cases := []struct {
		name, input, wantErr string
	}{
		{"header only", "; Version: 2.2\n; MaxJobs: 0\n", "no usable job records"},
		{"empty", "", "no usable job records"},
		{"sentinels only", swfLine("1", "0", "-1", "-1", "-1") + "\n", "no usable job records"},
		{"short row", "1 0 3600 4\n", "line 1: 4 fields, want 18"},
		{"long row", swfLine("1", "0", "-1", "600", "1") + " 9\n", "line 1: 19 fields, want 18"},
		{"non-numeric", swfLine("1", "zero", "-1", "600", "1") + "\n", `line 1: field 2: bad number "zero"`},
		{"bad negative", swfLine("1", "0", "-1", "-600", "1") + "\n", "line 1: field 4: negative value -600"},
		{"missing submit", swfLine("1", "-1", "-1", "600", "1") + "\n", "line 1: missing submit time"},
		{
			"non-monotonic",
			swfLine("1", "100", "-1", "600", "1") + "\n" + swfLine("2", "40", "-1", "600", "1") + "\n",
			"line 2: submit time 40 runs backwards",
		},
		{
			"comment resets nothing",
			swfLine("1", "100", "-1", "600", "1") + "\n; interleaved comment\n" + swfLine("2", "40", "-1", "600", "1") + "\n",
			"line 3: submit time 40 runs backwards",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := ReadSWF(strings.NewReader(tc.input), SWFConfig{})
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

// Lines after the truncation point are cut off, not validated — a
// MaxJobs prefix of a damaged log still replays.
func TestReadSWFTruncationStopsValidation(t *testing.T) {
	log := swfLine("1", "0", "-1", "600", "1") + "\nthis line is garbage\n"
	if _, _, err := ReadSWF(strings.NewReader(log), SWFConfig{}); err == nil {
		t.Fatal("garbage line should fail an untruncated read")
	}
	trace, _, err := ReadSWF(strings.NewReader(log), SWFConfig{MaxJobs: 1})
	if err != nil || len(trace) != 1 {
		t.Fatalf("truncated read = %v, %d jobs", err, len(trace))
	}
}

func itoa(i int) string { return strconv.Itoa(i) }
