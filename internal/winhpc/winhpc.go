// Package winhpc simulates the Microsoft Windows HPC Server 2008 R2
// job scheduler that runs the Windows side of the hybrid cluster.
// Unlike Torque (which the paper's detector scrapes as text), Windows
// HPC ships an SDK, so this package exposes a programmatic API —
// mirroring how the paper's Windows-side detector and communicator
// were built against the HPC Pack SDK.
//
// Scheduling follows the product's "Queued" policy: first-come
// first-served over resource units, with an optional backfill switch.
// The default resource unit is the core; node-exclusive jobs take
// whole nodes, which is what MPI and the MATLAB MDCS case study use.
package winhpc

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/simtime"
)

// JobState follows the HPC Pack state machine (condensed to the states
// the middleware observes).
type JobState uint8

const (
	JobQueued JobState = iota
	JobRunning
	JobFinished
	JobFailed
	JobCanceled
)

// String names the state like the HPC Pack UI.
func (s JobState) String() string {
	switch s {
	case JobQueued:
		return "Queued"
	case JobRunning:
		return "Running"
	case JobFinished:
		return "Finished"
	case JobFailed:
		return "Failed"
	case JobCanceled:
		return "Canceled"
	default:
		return "Unknown"
	}
}

// ResourceUnit selects what a job's Min/Max counts mean.
type ResourceUnit uint8

const (
	// UnitCore schedules individual cores anywhere in the cluster.
	UnitCore ResourceUnit = iota
	// UnitNode schedules whole nodes exclusively.
	UnitNode
)

// String names the unit.
func (u ResourceUnit) String() string {
	if u == UnitNode {
		return "Node"
	}
	return "Core"
}

// Allocation records cores granted on one node.
type Allocation struct {
	Node  string
	Cores int
}

// Job is a Windows HPC job. The simulation uses a single required
// resource count rather than the product's min–max range; grow/shrink
// is out of scope for the middleware's behaviour.
type Job struct {
	ID       int
	Name     string
	Owner    string
	Template string
	State    JobState
	Unit     ResourceUnit
	Count    int // cores (UnitCore) or nodes (UnitNode)

	Runtime    time.Duration
	SubmitTime time.Duration
	StartTime  time.Duration
	EndTime    time.Duration

	Rerunnable bool
	Priority   Priority
	Alloc      []Allocation

	// Exec runs at job start with the allocated node names; OnEnd
	// fires at completion, failure or cancellation.
	Exec  func(nodes []string)
	OnEnd func(*Job)

	// Scheduler ledger bookkeeping: inQueue flags an entry in the
	// scheduler's queued slice (kept in scheduling order — Priority is
	// fixed at submission, so the position never goes stale); runIdx is
	// the slot in the running slice while the job executes.
	inQueue bool
	runIdx  int
}

// Cores returns the total cores the job occupies once allocated, or
// would occupy given 0 knowledge of node sizes for UnitNode jobs.
func (j *Job) Cores(coresPerNode int) int {
	if j.Unit == UnitCore {
		return j.Count
	}
	return j.Count * coresPerNode
}

// AllocatedNodes lists distinct node names in allocation order.
func (j *Job) AllocatedNodes() []string {
	var out []string
	seen := map[string]bool{}
	for _, a := range j.Alloc {
		if !seen[a.Node] {
			seen[a.Node] = true
			out = append(out, a.Node)
		}
	}
	return out
}

// NodeState follows the HPC Pack node states the middleware cares
// about.
type NodeState uint8

const (
	NodeOnline NodeState = iota
	NodeOffline
	NodeUnreachable
)

// String names the state.
func (s NodeState) String() string {
	switch s {
	case NodeOffline:
		return "Offline"
	case NodeUnreachable:
		return "Unreachable"
	default:
		return "Online"
	}
}

// Node is a compute node from the scheduler's perspective.
type Node struct {
	Name     string
	Cores    int
	Template string
	state    NodeState
	used     int
	idx      int // position in Scheduler.nodeOrder
}

// State returns the node state.
func (n *Node) State() NodeState { return n.state }

// FreeCores returns schedulable cores (0 unless online).
func (n *Node) FreeCores() int {
	if n.state != NodeOnline {
		return 0
	}
	return n.Cores - n.used
}

// UsedCores returns cores currently allocated.
func (n *Node) UsedCores() int { return n.used }

// Priority follows the HPC Pack five-level job priority.
type Priority int8

const (
	PriorityLowest      Priority = -2
	PriorityBelowNormal Priority = -1
	PriorityNormal      Priority = 0
	PriorityAboveNormal Priority = 1
	PriorityHighest     Priority = 2
)

// String names the priority level.
func (p Priority) String() string {
	switch p {
	case PriorityLowest:
		return "Lowest"
	case PriorityBelowNormal:
		return "BelowNormal"
	case PriorityAboveNormal:
		return "AboveNormal"
	case PriorityHighest:
		return "Highest"
	default:
		return "Normal"
	}
}

// JobSpec is the submission request (a subset of the SDK's
// ISchedulerJob properties).
type JobSpec struct {
	Name     string
	Owner    string
	Template string
	Unit     ResourceUnit
	Count    int
	Runtime  time.Duration
	Rerun    bool
	Priority Priority
	Exec     func(nodes []string)
	OnEnd    func(*Job)
}

// Scheduler is the head-node scheduler service.
//
// Scheduler state is incremental: live queued/running ledgers, indexed
// free-core profiles over the node table, and O(1) census counters
// replace the full job-history rescans the original implementation did
// on every kick and every Snapshot poll.
type Scheduler struct {
	eng     *simtime.Engine
	cluster string

	seq       int
	jobs      map[int]*Job
	order     []int
	nodes     map[string]*Node
	nodeOrder []string

	// queued holds waiting jobs in scheduling order — priority
	// descending, submission order within a level. Entries whose job
	// has moved on are dead weight until compactQueue sweeps them;
	// Job.inQueue flags membership so a requeue revives its stale
	// entry instead of duplicating it.
	queued     []*Job
	queuedDead int
	queuedHead int // index of the first possibly-live entry in queued
	queuedN    int
	// queuedCores / queuedNodeUnits split pending demand by resource
	// unit, so Snapshot's PendingCores is arithmetic instead of a scan.
	queuedCores     int
	queuedNodeUnits int

	// running holds executing jobs in start order; removal swaps the
	// tail into the vacated slot via Job.runIdx.
	running []*Job

	// Census counters maintained on node mutations.
	allCores    int // every configured node, any state (submission cap)
	coresUp     int // nodes not unreachable (TotalCores)
	onlineNodes int
	onlineCores int // capacity of online nodes
	freeCores   int // free cores on online nodes
	idleNodes   int // online nodes with no allocation at all
	cpn         int // cached typicalCores()

	// freeTree / idleTree are max segment trees over node indices:
	// free cores per node, and a wholly-free flag. chooseAlloc jumps
	// straight to the next usable node instead of scanning the table.
	freeTree []int
	idleTree []int
	treeCap  int

	// Scratch buffers reused across scheduling passes.
	allocBuf []Allocation
	rsvFree  []int
	rsvRun   []*Job

	// coresHist counts configured nodes by core count, for the cached
	// typicalCores recompute on AddNode.
	coresHist map[int]int

	// Backfill enables the product's "backfilling" option, modelled as
	// reservation-based EASY backfill: a job may jump the blocked
	// queue head only when it cannot delay the head's earliest
	// reservation. Off in the paper's deployment. An earlier revision
	// shipped unreserved greedy backfill here, which let a stream of
	// narrow jobs starve a blocked wide job indefinitely.
	Backfill bool

	// OnJobRequeue fires when a running rerunnable job loses a node
	// and returns to the queue; the metrics recorder needs it to stop
	// busy-core integration between attempts.
	OnJobStart   func(*Job)
	OnJobEnd     func(*Job)
	OnJobRequeue func(*Job)

	schedPending bool
	// schedOverride replaces the scheduling pass; tests use it to run
	// a replica of historical policies against the same scheduler.
	schedOverride func()
}

// NewScheduler creates the scheduler for a named cluster.
func NewScheduler(eng *simtime.Engine, cluster string) *Scheduler {
	return &Scheduler{
		eng:       eng,
		cluster:   cluster,
		jobs:      make(map[int]*Job),
		nodes:     make(map[string]*Node),
		coresHist: make(map[int]int),
		cpn:       4,
	}
}

// ClusterName returns the head node name.
func (s *Scheduler) ClusterName() string { return s.cluster }

// AddNode registers a compute node; online=false models a node
// currently booted into the other OS.
func (s *Scheduler) AddNode(name string, cores int, online bool) (*Node, error) {
	if _, ok := s.nodes[name]; ok {
		return nil, fmt.Errorf("winhpc: node %s already exists", name)
	}
	if cores <= 0 {
		return nil, fmt.Errorf("winhpc: node %s: bad core count %d", name, cores)
	}
	n := &Node{Name: name, Cores: cores, Template: "Default ComputeNode Template", idx: len(s.nodeOrder)}
	if !online {
		n.state = NodeUnreachable
	}
	s.nodes[name] = n
	s.nodeOrder = append(s.nodeOrder, name)
	s.allCores += cores
	if n.state != NodeUnreachable {
		s.coresUp += cores
	}
	if n.state == NodeOnline {
		s.onlineNodes++
		s.onlineCores += cores
		s.freeCores += cores
		s.idleNodes++
	}
	s.coresHist[cores]++
	s.recomputeTypicalCores()
	s.refreshNode(n)
	if online {
		s.kick()
	}
	return n, nil
}

// setNodeState applies a state change and keeps every census counter
// and both node indexes consistent.
func (s *Scheduler) setNodeState(n *Node, st NodeState) {
	old := n.state
	if old == st {
		return
	}
	if (old == NodeUnreachable) != (st == NodeUnreachable) {
		if st == NodeUnreachable {
			s.coresUp -= n.Cores
		} else {
			s.coresUp += n.Cores
		}
	}
	if old == NodeOnline {
		s.onlineNodes--
		s.onlineCores -= n.Cores
		s.freeCores -= n.Cores - n.used
		if n.used == 0 {
			s.idleNodes--
		}
	}
	if st == NodeOnline {
		s.onlineNodes++
		s.onlineCores += n.Cores
		s.freeCores += n.Cores - n.used
		if n.used == 0 {
			s.idleNodes++
		}
	}
	n.state = st
	s.refreshNode(n)
}

// addUsed adjusts a node's allocated-core count (clamped at zero, as
// release always was) and maintains the free-core counters and
// indexes.
func (s *Scheduler) addUsed(n *Node, d int) {
	old := n.used
	nu := old + d
	if nu < 0 {
		nu = 0
	}
	if nu == old {
		return
	}
	n.used = nu
	if n.state == NodeOnline {
		s.freeCores += old - nu
		if old == 0 {
			s.idleNodes--
		} else if nu == 0 {
			s.idleNodes++
		}
	}
	s.refreshNode(n)
}

// Node returns a node by name.
func (s *Scheduler) Node(name string) (*Node, error) {
	n, ok := s.nodes[name]
	if !ok {
		return nil, fmt.Errorf("winhpc: unknown node %s", name)
	}
	return n, nil
}

// Nodes lists nodes in registration order.
func (s *Scheduler) Nodes() []*Node {
	out := make([]*Node, len(s.nodeOrder))
	for i, name := range s.nodeOrder {
		out[i] = s.nodes[name]
	}
	return out
}

// SetNodeOnline flips a node between Online and Unreachable (the state
// a node shows when it has rebooted into Linux). Running jobs lose
// their cores; rerunnable jobs requeue, others fail.
func (s *Scheduler) SetNodeOnline(name string, online bool) error {
	n, ok := s.nodes[name]
	if !ok {
		return fmt.Errorf("winhpc: unknown node %s", name)
	}
	if online {
		s.setNodeState(n, NodeOnline)
		s.kick()
		return nil
	}
	s.setNodeState(n, NodeUnreachable)
	// Scan the live running ledger, not the whole job history; process
	// victims in submission order so requeue/end hooks fire in the
	// order the old history scan produced.
	var victims []*Job
	for _, j := range s.running {
		for _, a := range j.Alloc {
			if a.Node == name {
				victims = append(victims, j)
				break
			}
		}
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].ID < victims[j].ID })
	for _, j := range victims {
		s.release(j)
		s.noteStopped(j)
		if j.Rerunnable {
			j.State = JobQueued
			j.Alloc = nil
			s.noteQueued(j)
			if s.OnJobRequeue != nil {
				s.OnJobRequeue(j)
			}
		} else {
			j.State = JobFailed
			j.EndTime = s.eng.Now()
			s.notifyEnd(j)
		}
	}
	s.kick()
	return nil
}

// SetNodeOffline administratively drains a node (no new allocations,
// running jobs continue).
func (s *Scheduler) SetNodeOffline(name string, offline bool) error {
	n, ok := s.nodes[name]
	if !ok {
		return fmt.Errorf("winhpc: unknown node %s", name)
	}
	if offline {
		s.setNodeState(n, NodeOffline)
	} else {
		s.setNodeState(n, NodeOnline)
		s.kick()
	}
	return nil
}

// SubmitJob validates and enqueues a job. Requests exceeding the
// configured node table are rejected at submission (HPC Pack validates
// resource requests against the cluster's node groups); unreachable
// nodes still count, since they may come back.
func (s *Scheduler) SubmitJob(spec JobSpec) (*Job, error) {
	if spec.Count <= 0 {
		spec.Count = 1
	}
	if spec.Name == "" {
		spec.Name = "Job"
	}
	if spec.Owner == "" {
		spec.Owner = "HPC\\user"
	}
	if spec.Runtime < 0 {
		return nil, fmt.Errorf("winhpc: negative runtime")
	}
	switch spec.Unit {
	case UnitNode:
		if spec.Count > len(s.nodes) {
			return nil, fmt.Errorf("winhpc: job needs %d nodes, cluster has %d", spec.Count, len(s.nodes))
		}
	default:
		if spec.Count > s.allCores {
			return nil, fmt.Errorf("winhpc: job needs %d cores, cluster has %d", spec.Count, s.allCores)
		}
	}
	s.seq++
	j := &Job{
		ID:         s.seq,
		Name:       spec.Name,
		Owner:      spec.Owner,
		Template:   spec.Template,
		State:      JobQueued,
		Unit:       spec.Unit,
		Count:      spec.Count,
		Runtime:    spec.Runtime,
		SubmitTime: s.eng.Now(),
		Rerunnable: spec.Rerun,
		Priority:   spec.Priority,
		Exec:       spec.Exec,
		OnEnd:      spec.OnEnd,
	}
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.noteQueued(j)
	s.kick()
	return j, nil
}

// CancelJob cancels a queued or running job.
func (s *Scheduler) CancelJob(id int) error {
	j, ok := s.jobs[id]
	if !ok {
		return fmt.Errorf("winhpc: unknown job %d", id)
	}
	switch j.State {
	case JobQueued:
		j.State = JobCanceled
		j.EndTime = s.eng.Now()
		s.noteDequeued(j)
		s.notifyEnd(j)
	case JobRunning:
		s.release(j)
		s.noteStopped(j)
		j.State = JobCanceled
		j.EndTime = s.eng.Now()
		s.notifyEnd(j)
		s.kick()
	default:
		return fmt.Errorf("winhpc: job %d already %s", id, j.State)
	}
	return nil
}

// Job returns a job by ID.
func (s *Scheduler) Job(id int) (*Job, error) {
	j, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("winhpc: unknown job %d", id)
	}
	return j, nil
}

// Jobs returns all jobs in submission order.
func (s *Scheduler) Jobs() []*Job {
	out := make([]*Job, len(s.order))
	for i, id := range s.order {
		out[i] = s.jobs[id]
	}
	return out
}

// queueLess orders the queued ledger: priority descending (the HPC
// Pack "Queued" policy), submission order within a level.
func queueLess(a, b *Job) bool {
	if a.Priority != b.Priority {
		return a.Priority > b.Priority
	}
	return a.ID < b.ID
}

// noteQueued inserts a job into the queued ledger at its scheduling
// position (or revives its stale entry after a requeue) and adjusts
// the pending-demand counters.
func (s *Scheduler) noteQueued(j *Job) {
	s.queuedN++
	if j.Unit == UnitNode {
		s.queuedNodeUnits += j.Count
	} else {
		s.queuedCores += j.Count
	}
	if j.inQueue {
		s.queuedDead-- // requeue before compaction: the entry is live again
		// The revived entry may sit below the head cursor; pull the
		// cursor back to its scheduling-order position so the next
		// pass sees it.
		at := sort.Search(len(s.queued), func(i int) bool { return !queueLess(s.queued[i], j) })
		if at < s.queuedHead {
			s.queuedHead = at
		}
		return
	}
	j.inQueue = true
	if n := len(s.queued); n == 0 || queueLess(s.queued[n-1], j) {
		s.queued = append(s.queued, j)
		return
	}
	at := sort.Search(len(s.queued), func(i int) bool { return queueLess(j, s.queued[i]) })
	s.queued = append(s.queued, nil)
	copy(s.queued[at+1:], s.queued[at:])
	s.queued[at] = j
	if at < s.queuedHead {
		s.queuedHead = at
	}
}

// noteDequeued adjusts the counters as a job leaves the queued state;
// its ledger entry goes stale until compactQueue sweeps it.
func (s *Scheduler) noteDequeued(j *Job) {
	s.queuedN--
	if j.Unit == UnitNode {
		s.queuedNodeUnits -= j.Count
	} else {
		s.queuedCores -= j.Count
	}
	s.queuedDead++
}

// noteStarted moves a job into the running ledger.
func (s *Scheduler) noteStarted(j *Job) {
	s.noteDequeued(j)
	j.runIdx = len(s.running)
	s.running = append(s.running, j)
}

// noteStopped removes a job from the running ledger (finish, cancel,
// or node loss).
func (s *Scheduler) noteStopped(j *Job) {
	last := len(s.running) - 1
	tail := s.running[last]
	s.running[j.runIdx] = tail
	tail.runIdx = j.runIdx
	s.running[last] = nil
	s.running = s.running[:last]
}

// compactQueue sweeps stale ledger entries once they dominate.
func (s *Scheduler) compactQueue() {
	if s.queuedDead <= 64 || s.queuedDead*2 <= len(s.queued) {
		return
	}
	kept := s.queued[:0]
	for _, j := range s.queued {
		if j.State == JobQueued {
			kept = append(kept, j)
		} else {
			j.inQueue = false
		}
	}
	for i := len(kept); i < len(s.queued); i++ {
		s.queued[i] = nil
	}
	s.queued = kept
	s.queuedDead = 0
	s.queuedHead = 0
}

// advanceQueueHead slides the live-queue cursor past leading stale
// entries — the ones compactQueue drops. Under a deep backlog the
// stale prefix grows by one per started job while compaction waits for
// its majority threshold, and rescanning it every kick made scheduling
// O(backlog) per event; the cursor keeps passes proportional to live
// work.
func (s *Scheduler) advanceQueueHead() {
	for s.queuedHead < len(s.queued) && s.queued[s.queuedHead].State != JobQueued {
		s.queuedHead++
	}
}

// firstQueued returns the scheduling-order head of the queue, nil when
// empty.
func (s *Scheduler) firstQueued() *Job {
	s.advanceQueueHead()
	for _, j := range s.queued[s.queuedHead:] {
		if j.State == JobQueued {
			return j
		}
	}
	return nil
}

// QueuedJobs returns waiting jobs in scheduling order: priority
// descending (the HPC Pack "Queued" policy), submission order within
// a level.
func (s *Scheduler) QueuedJobs() []*Job {
	out := make([]*Job, 0, s.queuedN)
	for _, j := range s.queued {
		if j.State == JobQueued {
			out = append(out, j)
		}
	}
	return out
}

// RunningJobs returns executing jobs in submission order.
func (s *Scheduler) RunningJobs() []*Job {
	out := make([]*Job, len(s.running))
	copy(out, s.running)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// TotalCores sums cores over nodes that are not unreachable.
func (s *Scheduler) TotalCores() int { return s.coresUp }

// OnlineNodes counts online nodes.
func (s *Scheduler) OnlineNodes() int { return s.onlineNodes }

// QueueSnapshot is the condensed queue view the detector polls through
// the SDK (job counts plus the head-of-queue demand).
type QueueSnapshot struct {
	Running      int
	Queued       int
	FirstQueued  int    // job ID, 0 when the queue is empty
	FirstName    string // job name of the queue head
	NeededCores  int    // cores the queue head requires
	OnlineCores  int
	PendingCores int // total cores requested by all queued jobs
}

// Snapshot builds the queue view from the maintained counters — O(1)
// apart from skipping stale entries ahead of the queue head.
func (s *Scheduler) Snapshot() QueueSnapshot {
	cpn := s.typicalCores()
	snap := QueueSnapshot{
		OnlineCores:  s.onlineCores,
		Running:      len(s.running),
		Queued:       s.queuedN,
		PendingCores: s.queuedCores + s.queuedNodeUnits*cpn,
	}
	// The queue head follows scheduling order (priority first), since
	// that is the job whose demand a dual-boot controller must satisfy.
	if head := s.firstQueued(); head != nil {
		snap.FirstQueued = head.ID
		snap.FirstName = head.Name
		snap.NeededCores = head.Cores(cpn)
	}
	return snap
}

// typicalCores returns the modal node size for UnitNode→core
// conversion (cached; recomputed when nodes register). The Eridani
// nodes are uniform quad-cores.
func (s *Scheduler) typicalCores() int { return s.cpn }

// recomputeTypicalCores rebuilds the cached modal node size from the
// core-count histogram, smallest size winning ties, 4 when the node
// table is empty.
func (s *Scheduler) recomputeTypicalCores() {
	best, bestCount := 4, 0
	keys := make([]int, 0, len(s.coresHist))
	for k := range s.coresHist {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		if s.coresHist[k] > bestCount {
			best, bestCount = k, s.coresHist[k]
		}
	}
	s.cpn = best
}

func (s *Scheduler) kick() {
	if s.schedPending {
		return
	}
	s.schedPending = true
	s.eng.After(0, func() {
		s.schedPending = false
		s.schedule()
	})
}

// schedule runs one pass of the "Queued" policy. Without Backfill it
// is strict FCFS over the priority order: stop at the first job that
// does not fit. With Backfill the pass is EASY: the first blocked job
// becomes the pivot and gets a reservation at its shadow time — the
// earliest instant it fits once running jobs release their cores at
// their projected ends — and later jobs may start only when they
// cannot delay that reservation.
func (s *Scheduler) schedule() {
	if s.schedOverride != nil {
		s.schedOverride()
		return
	}
	s.compactQueue()
	s.advanceQueueHead()
	var pivot *Job
	var rsv reservation
	// Iterate the live queue ledger directly; the bound snapshots the
	// pass the way the old QueuedJobs() copy did, so jobs submitted by
	// an Exec callback mid-pass wait for the next kick.
	bound := len(s.queued)
	for i := s.queuedHead; i < bound; i++ {
		j := s.queued[i]
		if j.State != JobQueued {
			continue
		}
		if pivot == nil {
			if s.tryPlace(j) {
				continue
			}
			if !s.Backfill {
				return
			}
			pivot = j
			rsv = s.reserve(pivot)
			continue
		}
		s.tryBackfill(j, pivot, &rsv)
	}
}

// reservation is the pivot's EASY booking: the shadow time plus the
// per-node free-core projection at that instant, indexed by node
// registration order (-1 marks nodes that are not online). totalFree
// and fitIdle are the maintained fit criteria — projected free cores
// in total, and projected wholly-free nodes — so testing the pivot
// against the projection is O(1). ok is false when no projected
// future fits the pivot (its nodes are unreachable in the other OS) —
// nothing to protect, so backfill runs unrestricted.
type reservation struct {
	shadow    time.Duration
	free      []int
	totalFree int
	fitIdle   int
	ok        bool
}

// fits tests the pivot against the projection's maintained criteria.
func (r *reservation) fits(pivot *Job) bool {
	if pivot.Unit == UnitNode {
		return r.fitIdle >= pivot.Count
	}
	return r.totalFree >= pivot.Count
}

// projectedEnd bounds when a running job releases its cores. The HPC
// job model carries no separate walltime estimate, so the runtime is
// the bound.
func projectedEnd(j *Job) time.Duration { return j.StartTime + j.Runtime }

// reserve computes the pivot's shadow state by replaying running
// jobs' projected releases onto the current free cores, in release
// order, until the pivot fits. The projection and the job copy live
// in pooled buffers; the fit counters make each release O(slots)
// instead of O(nodes).
func (s *Scheduler) reserve(pivot *Job) reservation {
	if cap(s.rsvFree) < len(s.nodeOrder) {
		s.rsvFree = make([]int, len(s.nodeOrder))
	}
	rsv := reservation{free: s.rsvFree[:len(s.nodeOrder)]}
	for i, name := range s.nodeOrder {
		n := s.nodes[name]
		if n.state != NodeOnline {
			rsv.free[i] = -1
			continue
		}
		rsv.free[i] = n.Cores - n.used
		rsv.totalFree += rsv.free[i]
		if n.used == 0 {
			rsv.fitIdle++
		}
	}
	running := append(s.rsvRun[:0], s.running...)
	s.rsvRun = running
	sort.Slice(running, func(i, j int) bool {
		ei, ej := projectedEnd(running[i]), projectedEnd(running[j])
		if ei != ej {
			return ei < ej
		}
		return running[i].ID < running[j].ID
	})
	for i := 0; i < len(running); {
		end := projectedEnd(running[i])
		for ; i < len(running) && projectedEnd(running[i]) == end; i++ {
			for _, a := range running[i].Alloc {
				n, ok := s.nodes[a.Node]
				if !ok || rsv.free[n.idx] < 0 {
					continue
				}
				was := rsv.free[n.idx]
				rsv.free[n.idx] = was + a.Cores
				rsv.totalFree += a.Cores
				if was < n.Cores && rsv.free[n.idx] >= n.Cores {
					rsv.fitIdle++
				}
			}
		}
		if rsv.fits(pivot) {
			rsv.shadow = end
			rsv.ok = true
			return rsv
		}
	}
	return reservation{}
}

// tryBackfill starts a candidate behind the blocked pivot if it
// cannot delay the pivot's reservation: either it releases its cores
// by the shadow time, or the pivot still fits at the shadow time with
// the candidate's allocation subtracted. Long candidates that pass
// stay subtracted, so later candidates see the remaining slack only.
func (s *Scheduler) tryBackfill(j *Job, pivot *Job, rsv *reservation) bool {
	alloc := s.chooseAlloc(j)
	if alloc == nil {
		return false
	}
	if rsv.ok && s.eng.Now()+j.Runtime > rsv.shadow {
		for _, a := range alloc {
			n := s.nodes[a.Node]
			was := rsv.free[n.idx]
			rsv.free[n.idx] = was - a.Cores
			rsv.totalFree -= a.Cores
			if was >= n.Cores && rsv.free[n.idx] < n.Cores {
				rsv.fitIdle--
			}
		}
		if !rsv.fits(pivot) {
			for _, a := range alloc {
				n := s.nodes[a.Node]
				was := rsv.free[n.idx]
				rsv.free[n.idx] = was + a.Cores
				rsv.totalFree += a.Cores
				if was < n.Cores && rsv.free[n.idx] >= n.Cores {
					rsv.fitIdle++
				}
			}
			return false
		}
	}
	s.commit(j, alloc)
	return true
}

// refreshNode re-derives the node's leaves in both indexes after a
// busy or state mutation.
func (s *Scheduler) refreshNode(n *Node) {
	if n.idx >= s.treeCap {
		s.rebuildTrees()
		return
	}
	idle := 0
	if n.state == NodeOnline && n.used == 0 {
		idle = 1
	}
	updateMaxTree(s.freeTree, s.treeCap, n.idx, n.FreeCores())
	updateMaxTree(s.idleTree, s.treeCap, n.idx, idle)
}

// rebuildTrees resizes both segment trees to the node count and
// recomputes every level.
func (s *Scheduler) rebuildTrees() {
	capacity := 1
	for capacity < len(s.nodeOrder) {
		capacity <<= 1
	}
	s.treeCap = capacity
	s.freeTree = make([]int, 2*capacity)
	s.idleTree = make([]int, 2*capacity)
	for _, name := range s.nodeOrder {
		n := s.nodes[name]
		s.freeTree[capacity+n.idx] = n.FreeCores()
		if n.state == NodeOnline && n.used == 0 {
			s.idleTree[capacity+n.idx] = 1
		}
	}
	for i := capacity - 1; i >= 1; i-- {
		s.freeTree[i] = maxInt(s.freeTree[2*i], s.freeTree[2*i+1])
		s.idleTree[i] = maxInt(s.idleTree[2*i], s.idleTree[2*i+1])
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// updateMaxTree sets a leaf and repairs ancestors until unchanged.
func updateMaxTree(t []int, treeCap, idx, v int) {
	i := treeCap + idx
	if t[i] == v {
		return
	}
	t[i] = v
	for i >>= 1; i >= 1; i >>= 1 {
		m := maxInt(t[2*i], t[2*i+1])
		if t[i] == m {
			break
		}
		t[i] = m
	}
}

// nextFit returns the first node index >= from whose leaf value in t
// reaches want, or -1. O(log nodes).
func nextFit(t []int, treeCap, limit, from, want int) int {
	if treeCap == 0 || from >= limit {
		return -1
	}
	i := treeCap + from
	for {
		if t[i] >= want {
			for i < treeCap {
				if t[2*i] >= want {
					i = 2 * i
				} else {
					i = 2*i + 1
				}
			}
			idx := i - treeCap
			if idx < limit {
				return idx
			}
			return -1
		}
		for {
			if i == 1 {
				return -1
			}
			if i%2 == 0 {
				i++
				break
			}
			i >>= 1
		}
	}
}

// chooseAlloc selects an allocation for a job without committing it;
// nil when the job does not fit right now. The census counters give
// an O(1) fit test and the node indexes jump between usable nodes,
// preserving the first-fit-in-registration-order placement of the
// linear scan. The returned slice is a pooled buffer valid until the
// next chooseAlloc call.
func (s *Scheduler) chooseAlloc(j *Job) []Allocation {
	s.allocBuf = s.allocBuf[:0]
	switch j.Unit {
	case UnitNode:
		if s.idleNodes < j.Count {
			return nil
		}
		from := 0
		for len(s.allocBuf) < j.Count {
			i := nextFit(s.idleTree, s.treeCap, len(s.nodeOrder), from, 1)
			if i < 0 {
				return nil // unreachable: idleNodes bounds the search
			}
			n := s.nodes[s.nodeOrder[i]]
			s.allocBuf = append(s.allocBuf, Allocation{Node: n.Name, Cores: n.Cores})
			from = i + 1
		}
		return s.allocBuf
	default: // UnitCore
		if s.freeCores < j.Count {
			return nil
		}
		need := j.Count
		from := 0
		for need > 0 {
			i := nextFit(s.freeTree, s.treeCap, len(s.nodeOrder), from, 1)
			if i < 0 {
				return nil // unreachable: freeCores bounds the search
			}
			n := s.nodes[s.nodeOrder[i]]
			take := n.FreeCores()
			if take > need {
				take = need
			}
			s.allocBuf = append(s.allocBuf, Allocation{Node: n.Name, Cores: take})
			need -= take
			from = i + 1
		}
		return s.allocBuf
	}
}

// commit occupies an allocation and starts the job.
func (s *Scheduler) commit(j *Job, alloc []Allocation) {
	j.Alloc = append(j.Alloc, alloc...)
	for _, a := range alloc {
		s.addUsed(s.nodes[a.Node], a.Cores)
	}
	s.start(j)
}

func (s *Scheduler) tryPlace(j *Job) bool {
	alloc := s.chooseAlloc(j)
	if alloc == nil {
		return false
	}
	s.commit(j, alloc)
	return true
}

func (s *Scheduler) start(j *Job) {
	j.State = JobRunning
	j.StartTime = s.eng.Now()
	s.noteStarted(j)
	if s.OnJobStart != nil {
		s.OnJobStart(j)
	}
	if j.Exec != nil {
		j.Exec(j.AllocatedNodes())
	}
	s.eng.After(j.Runtime, func() {
		if j.State != JobRunning {
			return
		}
		s.release(j)
		s.noteStopped(j)
		j.State = JobFinished
		j.EndTime = s.eng.Now()
		s.notifyEnd(j)
		s.kick()
	})
}

func (s *Scheduler) release(j *Job) {
	for _, a := range j.Alloc {
		if n, ok := s.nodes[a.Node]; ok {
			s.addUsed(n, -a.Cores)
		}
	}
}

func (s *Scheduler) notifyEnd(j *Job) {
	if s.OnJobEnd != nil {
		s.OnJobEnd(j)
	}
	if j.OnEnd != nil {
		j.OnEnd(j)
	}
}
