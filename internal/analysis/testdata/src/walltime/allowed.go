// Fixture for the walltime analyzer: //simlint:allow suppression.
// None of these sites carries a want comment — the test fails unless
// the directive machinery removes every finding.
package walltime

import "time"

func allowedInline() time.Time {
	return time.Now() //simlint:allow walltime -- fixture: end-of-line directive silences its own line
}

func allowedStandalone() time.Time {
	//simlint:allow walltime -- fixture: standalone directive silences the next line
	return time.Now()
}

func allowedList() {
	//simlint:allow walltime,globalrand -- fixture: comma-separated analyzer list
	time.Sleep(time.Millisecond)
}

func allowedAll() {
	time.Sleep(time.Millisecond) //simlint:allow all -- fixture: "all" silences every analyzer
}

// A directive for a different analyzer must NOT silence walltime.
func wrongName() {
	//simlint:allow maporder -- fixture: directive names a different analyzer
	time.Sleep(time.Millisecond) // want `time\.Sleep reads the wall clock`
}
