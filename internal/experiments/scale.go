// Scale tiers: the paper's clusters are 16 nodes; E17 and E18 pin the
// simulator at metro (~2.5k nodes) and city (~10k nodes, ~1M
// submissions) scale. They exist to keep the hot paths honest — the
// indexed event calendar, the incremental scheduler ledgers, and the
// batched metrics integration are exactly the code these tiers stress
// — and their EventsRun totals ride in BENCH_sim.json so the bench
// gate catches both perf and determinism drift at sizes the E1–E16
// tables never reach.
package experiments

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/sweep"
)

// E17Grid is the metro tier: a 2500-node hybrid campus under two
// offered loads, with both head-scheduler disciplines. Small enough
// for CI (a few seconds), big enough that an O(backlog) or O(nodes)
// regression in a scheduling pass is visible in the bench gate.
// Exported so the grid travels as a committed spec document (see
// SpecFiles) and CI can replay it.
func E17Grid() sweep.Grid {
	return sweep.Grid{
		Modes:         []cluster.Mode{cluster.HybridV2},
		SchedPolicies: []cluster.SchedPolicy{cluster.SchedFCFS, cluster.SchedBackfill},
		NodeCounts:    []int{2500},
		Traces: []sweep.TraceSpec{
			{JobsPerHour: 250, WindowsFrac: 0.3, Duration: 24 * time.Hour},
			{JobsPerHour: 500, WindowsFrac: 0.3, Duration: 24 * time.Hour},
		},
		BaseSeed: 1700,
		Cycle:    5 * time.Minute,
	}
}

// E17MetroScale runs the metro tier through the sweep subsystem and
// ranks the cells — the same table shape as E13, three orders of
// magnitude up.
func E17MetroScale() (Table, error) {
	g := E17Grid()
	out, err := sweep.Run(sweep.Config{Grid: g})
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:        "E17",
		Title:     "metro scale: 2500-node hybrid campus, FCFS vs EASY backfill",
		Header:    sweep.Header(),
		EventsRun: sumEvents(out),
		Notes: fmt.Sprintf("%s; ~12k submissions per 500jph cell; deterministic per-cell seeds, identical table for any worker count",
			g.Describe()),
	}
	for i, r := range out.Ranked() {
		if r.Err != nil {
			return t, r.Err
		}
		t.Rows = append(t.Rows, sweep.Row(i+1, r))
	}
	return t, nil
}

// E18Grid is the city tier: one 10000-node hybrid cell fed a
// 2000-jobs/hour Poisson stream for 500 hours — just under a million
// submissions, a saturating backlog, and ~3.2M simulation events. One
// cell, because the point is the absolute size: this is the workload
// the flat event queue and the rescan-everything scheduler could not
// finish in useful time.
func E18Grid() sweep.Grid {
	return sweep.Grid{
		Modes:      []cluster.Mode{cluster.HybridV2},
		NodeCounts: []int{10000},
		Traces: []sweep.TraceSpec{
			{JobsPerHour: 2000, WindowsFrac: 0.3, Duration: 500 * time.Hour},
		},
		BaseSeed: 1800,
		Cycle:    5 * time.Minute,
	}
}

// E18CityScale runs the city tier. Deliberately over-saturated: the
// backlog grows without bound, so the queue ledgers, the head cursor,
// and the calendar queue all see their worst case, and mean waits are
// large enough to overflow a naive nanosecond accumulator (the
// metrics package splits seconds for exactly this tier).
func E18CityScale() (Table, error) {
	g := E18Grid()
	out, err := sweep.Run(sweep.Config{Grid: g})
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:        "E18",
		Title:     "city scale: 10000 nodes, ~1M submissions, saturating backlog",
		Header:    sweep.Header(),
		EventsRun: sumEvents(out),
		Notes: fmt.Sprintf("%s; offered load exceeds capacity by design — the tier pins worst-case backlog behaviour, not a balanced operating point",
			g.Describe()),
	}
	for i, r := range out.Ranked() {
		if r.Err != nil {
			return t, r.Err
		}
		t.Rows = append(t.Rows, sweep.Row(i+1, r))
	}
	return t, nil
}
