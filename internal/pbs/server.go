package pbs

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/simtime"
)

// NodeState mirrors pbsnodes state values.
type NodeState string

const (
	NodeFree      NodeState = "free"
	NodeExclusive NodeState = "job-exclusive"
	NodeOffline   NodeState = "offline"
	NodeDown      NodeState = "down"
)

// Node is a pbs_mom as seen by the server.
type Node struct {
	Name       string
	NP         int
	Properties []string
	state      NodeState
	// busy[cpu] holds the job occupying that virtual processor.
	busy map[int]*Job
}

// State derives the reported state: offline/down are administrative or
// connectivity conditions; otherwise free vs job-exclusive depends on
// occupancy.
func (n *Node) State() NodeState {
	if n.state == NodeOffline || n.state == NodeDown {
		return n.state
	}
	if len(n.busy) >= n.NP {
		return NodeExclusive
	}
	return NodeFree
}

// FreeCPUs counts unoccupied virtual processors (0 when offline/down).
func (n *Node) FreeCPUs() int {
	if n.state == NodeOffline || n.state == NodeDown {
		return 0
	}
	return n.NP - len(n.busy)
}

// UsedCPUs counts occupied virtual processors.
func (n *Node) UsedCPUs() int { return len(n.busy) }

// Jobs lists IDs of jobs with slots on this node, PBS-style
// "cpu/jobid" pairs sorted by CPU.
func (n *Node) Jobs() []string {
	cpus := make([]int, 0, len(n.busy))
	for c := range n.busy {
		cpus = append(cpus, c)
	}
	sort.Ints(cpus)
	out := make([]string, len(cpus))
	for i, c := range cpus {
		out[i] = fmt.Sprintf("%d/%s", c, n.busy[c].ID)
	}
	return out
}

// Server is the pbs_server plus a strict-FCFS scheduler (the paper's
// deployment ran stock OSCAR scheduling: first-come first-served, no
// backfill — which is exactly what lets the head of the queue wedge
// the whole system and makes the "stuck" signal meaningful).
type Server struct {
	eng *simtime.Engine
	// domain is the cluster FQDN ("eridani.qgg.hud.ac.uk"): the head
	// node's own name, the suffix of job IDs, and the domain compute
	// node names are qualified with.
	domain string

	seq       int
	jobs      map[string]*Job
	order     []string // submission order of job IDs
	nodes     map[string]*Node
	nodeOrder []string

	queues       map[string]*Queue
	defaultQueue string

	// Backfill enables reservation-based EASY backfill: later jobs may
	// jump a blocked queue head only when they cannot delay its
	// earliest reservation (shadow time). The paper's system has it
	// off. An earlier revision shipped unreserved greedy backfill
	// here, which let a stream of narrow jobs starve a wide head job
	// indefinitely.
	Backfill bool

	// Hooks for the metrics recorder and the controller. OnJobRequeue
	// fires when a running rerunnable job loses its node and returns
	// to the queue — the recorder needs it to stop busy-core
	// integration between the attempts.
	OnJobStart   func(*Job)
	OnJobEnd     func(*Job)
	OnJobRequeue func(*Job)

	schedPending bool
	// schedOverride replaces the scheduling pass; tests use it to run
	// a replica of historical policies against the same server.
	schedOverride func()

	// BaseDate maps virtual time zero to a wall-clock date for the
	// qstat/pbsnodes renderings. The default matches the paper's
	// trace captures (April 2010).
	BaseDate time.Time
}

// NewServer creates a PBS server on the simulation engine. fqdn is the
// cluster name used in job IDs and node qualification
// ("eridani.qgg.hud.ac.uk").
func NewServer(eng *simtime.Engine, fqdn string) *Server {
	s := &Server{
		eng:          eng,
		domain:       fqdn,
		jobs:         make(map[string]*Job),
		nodes:        make(map[string]*Node),
		queues:       make(map[string]*Queue),
		defaultQueue: "default",
		BaseDate:     time.Date(2010, time.April, 16, 8, 0, 0, 0, time.UTC),
	}
	if _, err := s.CreateQueue("default"); err != nil {
		panic(err) // cannot happen: fresh map
	}
	return s
}

// Name returns the server's FQDN ("eridani.qgg.hud.ac.uk").
func (s *Server) Name() string { return s.domain }

// Domain returns the FQDN suffix.
func (s *Server) Domain() string { return s.domain }

// AddNode registers a compute node. Nodes join offline when avail is
// false (e.g. they are currently booted into Windows).
func (s *Server) AddNode(name string, np int, avail bool) (*Node, error) {
	if _, ok := s.nodes[name]; ok {
		return nil, fmt.Errorf("pbs: node %s already registered", name)
	}
	if np <= 0 {
		return nil, fmt.Errorf("pbs: node %s: bad np %d", name, np)
	}
	n := &Node{Name: name, NP: np, Properties: []string{"all"}, busy: make(map[int]*Job)}
	if !avail {
		n.state = NodeDown
	}
	s.nodes[name] = n
	s.nodeOrder = append(s.nodeOrder, name)
	if avail {
		s.kick()
	}
	return n, nil
}

// Node returns a registered node.
func (s *Server) Node(name string) (*Node, error) {
	n, ok := s.nodes[name]
	if !ok {
		return nil, fmt.Errorf("pbs: unknown node %s", name)
	}
	return n, nil
}

// Nodes lists nodes in registration order.
func (s *Server) Nodes() []*Node {
	out := make([]*Node, len(s.nodeOrder))
	for i, name := range s.nodeOrder {
		out[i] = s.nodes[name]
	}
	return out
}

// SetNodeAvailable brings a node up (it re-registered after booting
// Linux) or marks it down (it rebooted away). Jobs running on a node
// that goes down are requeued if rerunnable, otherwise killed.
func (s *Server) SetNodeAvailable(name string, avail bool) error {
	n, ok := s.nodes[name]
	if !ok {
		return fmt.Errorf("pbs: unknown node %s", name)
	}
	if avail {
		n.state = NodeFree
		s.kick()
		return nil
	}
	n.state = NodeDown
	// Collect affected jobs before mutating.
	affected := map[string]*Job{}
	for _, j := range n.busy {
		affected[j.ID] = j
	}
	for _, j := range affected {
		s.interruptJob(j)
	}
	return nil
}

// SetNodeOffline administratively drains a node without killing jobs;
// no new work is placed on it.
func (s *Server) SetNodeOffline(name string, offline bool) error {
	n, ok := s.nodes[name]
	if !ok {
		return fmt.Errorf("pbs: unknown node %s", name)
	}
	if offline {
		n.state = NodeOffline
	} else {
		n.state = NodeFree
		s.kick()
	}
	return nil
}

// interruptJob handles a running job losing a node. A rerunnable job
// requeues; anything else dies mid-run and is marked failed so the
// accounting upstream cannot mistake it for a completed job.
func (s *Server) interruptJob(j *Job) {
	s.releaseSlots(j)
	if j.Rerunnable {
		j.State = StateQueued
		j.ExecHost = nil
		if s.OnJobRequeue != nil {
			s.OnJobRequeue(j)
		}
		s.kick()
		return
	}
	j.State = StateComplete
	j.failed = true
	j.EndTime = s.eng.Now()
	if s.OnJobEnd != nil {
		s.OnJobEnd(j)
	}
	if j.OnEnd != nil {
		j.OnEnd(j)
	}
	s.kick()
}

// Qsub submits a job. Requests that could never run on the configured
// node table are rejected, as Torque does ("cannot locate feasible
// nodes") — down nodes still count as configured, because a hybrid
// cluster's missing nodes may boot back at any time.
func (s *Server) Qsub(req SubmitRequest) (*Job, error) {
	if err := req.normalise(); err != nil {
		return nil, err
	}
	feasible := 0
	for _, n := range s.nodes {
		if n.NP >= req.PPN {
			feasible++
		}
	}
	if feasible < req.Nodes {
		return nil, fmt.Errorf("pbs: qsub: cannot locate feasible nodes (nodes=%d:ppn=%d, %d candidates)",
			req.Nodes, req.PPN, feasible)
	}
	if req.Queue == "" {
		req.Queue = s.defaultQueue
	}
	q, ok := s.queues[req.Queue]
	if !ok {
		return nil, fmt.Errorf("pbs: qsub: unknown queue %q", req.Queue)
	}
	if !q.enabled {
		return nil, fmt.Errorf("pbs: qsub: queue %q is not enabled", req.Queue)
	}
	s.seq++
	j := &Job{
		ID:         fmt.Sprintf("%d.%s", s.seq, s.Name()),
		SeqNo:      s.seq,
		Name:       req.Name,
		Owner:      req.Owner,
		State:      StateQueued,
		Queue:      req.Queue,
		Server:     s.Name(),
		Nodes:      req.Nodes,
		PPN:        req.PPN,
		Runtime:    req.Runtime,
		Walltime:   req.Walltime,
		Priority:   req.Priority,
		Rerunnable: req.Rerun,
		JoinOE:     req.JoinOE,
		OutputPath: req.Output,
		QTime:      s.eng.Now(),
		Exec:       req.Exec,
		OnEnd:      req.OnEnd,
	}
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.kick()
	return j, nil
}

// QsubScript parses a job script and submits it; owner is the
// submitting user. The script's commands are not interpreted — the
// Exec callback carries simulated behaviour.
func (s *Server) QsubScript(script, owner string, runtime time.Duration, exec func(hosts []string)) (*Job, error) {
	parsed, err := ParseScript(script)
	if err != nil {
		return nil, err
	}
	req := parsed.Request
	req.Owner = owner
	req.Runtime = runtime
	req.Exec = exec
	return s.Qsub(req)
}

// Qdel removes a queued job or kills a running one.
func (s *Server) Qdel(id string) error {
	j, ok := s.jobs[id]
	if !ok {
		return fmt.Errorf("pbs: unknown job %s", id)
	}
	switch j.State {
	case StateQueued, StateHeld:
		j.State = StateComplete
		j.EndTime = s.eng.Now()
	case StateRunning:
		s.finishJob(j, true)
	}
	return nil
}

// Qhold places a user hold on a queued job (state H); held jobs are
// not scheduled. Running jobs cannot be held in this model.
func (s *Server) Qhold(id string) error {
	j, ok := s.jobs[id]
	if !ok {
		return fmt.Errorf("pbs: unknown job %s", id)
	}
	if j.State != StateQueued {
		return fmt.Errorf("pbs: qhold: job %s is %s, not queued", id, j.State)
	}
	j.State = StateHeld
	return nil
}

// Qrls releases a held job back to the queue.
func (s *Server) Qrls(id string) error {
	j, ok := s.jobs[id]
	if !ok {
		return fmt.Errorf("pbs: unknown job %s", id)
	}
	if j.State != StateHeld {
		return fmt.Errorf("pbs: qrls: job %s is %s, not held", id, j.State)
	}
	j.State = StateQueued
	s.kick()
	return nil
}

// Job returns a job by ID.
func (s *Server) Job(id string) (*Job, error) {
	j, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("pbs: unknown job %s", id)
	}
	return j, nil
}

// Jobs returns all jobs in submission order.
func (s *Server) Jobs() []*Job {
	out := make([]*Job, len(s.order))
	for i, id := range s.order {
		out[i] = s.jobs[id]
	}
	return out
}

// QueuedJobs returns jobs waiting to run, in submission order.
func (s *Server) QueuedJobs() []*Job {
	var out []*Job
	for _, id := range s.order {
		if j := s.jobs[id]; j.State == StateQueued {
			out = append(out, j)
		}
	}
	return out
}

// RunningJobs returns jobs currently executing.
func (s *Server) RunningJobs() []*Job {
	var out []*Job
	for _, id := range s.order {
		if j := s.jobs[id]; j.State == StateRunning {
			out = append(out, j)
		}
	}
	return out
}

// TotalCPUs sums np over nodes that are not down.
func (s *Server) TotalCPUs() int {
	total := 0
	for _, n := range s.Nodes() {
		if n.state != NodeDown {
			total += n.NP
		}
	}
	return total
}

// AvailableNodes counts nodes that are up (free or busy).
func (s *Server) AvailableNodes() int {
	c := 0
	for _, n := range s.Nodes() {
		if n.state != NodeDown && n.state != NodeOffline {
			c++
		}
	}
	return c
}

// kick coalesces scheduling passes into a single immediate event.
func (s *Server) kick() {
	if s.schedPending {
		return
	}
	s.schedPending = true
	s.eng.After(0, func() {
		s.schedPending = false
		s.schedule()
	})
}

// schedule runs one scheduling pass. FCFS: place the head of the
// queue and stop at the first job that does not fit. With Backfill
// the pass is EASY: the first blocked job becomes the pivot and gets
// a reservation at its shadow time — the earliest instant it fits
// once running jobs release their slots at their projected ends — and
// later jobs may start only if doing so cannot delay that
// reservation. Jobs in stopped or capped queues are skipped without
// blocking the rest.
func (s *Server) schedule() {
	if s.schedOverride != nil {
		s.schedOverride()
		return
	}
	var pivot *Job
	var rsv reservation
	for _, j := range s.QueuedJobs() {
		if !s.schedulable(j) {
			continue
		}
		if pivot == nil {
			if s.tryPlace(j) {
				continue
			}
			if !s.Backfill {
				return
			}
			pivot = j
			rsv = s.reserve(pivot)
			continue
		}
		s.tryBackfill(j, pivot, &rsv)
	}
}

// reservation is the pivot's EASY booking: the shadow time and the
// per-node free-CPU projection at that instant. When ok is false no
// projected future fits the pivot (its nodes are down or booted into
// the other OS) — there is nothing to protect, so backfill runs
// unrestricted, which preserves the hybrid's behaviour of packing
// narrow work while the controller fetches nodes for the wide head.
type reservation struct {
	shadow time.Duration
	free   map[string]int
	ok     bool
}

// projectedEnd bounds when a running job releases its slots: the
// walltime contract when the user gave one (the job is killed there
// at the latest), otherwise the simulator's known runtime. Both are
// upper bounds, so a reservation computed from them can only be
// pessimistic — the pivot never starts later than its shadow time.
func projectedEnd(j *Job) time.Duration {
	d := j.Runtime
	if j.Walltime > 0 {
		d = j.Walltime
	}
	return j.StartTime + d
}

// reserve computes the pivot's shadow state by replaying the running
// jobs' projected releases onto the current per-node free CPUs, in
// release order, until the pivot fits.
func (s *Server) reserve(pivot *Job) reservation {
	free := make(map[string]int, len(s.nodeOrder))
	for _, name := range s.nodeOrder {
		n := s.nodes[name]
		if n.State() == NodeOffline || n.State() == NodeDown {
			continue
		}
		free[name] = n.FreeCPUs()
	}
	running := s.RunningJobs()
	sort.SliceStable(running, func(i, j int) bool {
		return projectedEnd(running[i]) < projectedEnd(running[j])
	})
	for i := 0; i < len(running); {
		end := projectedEnd(running[i])
		for ; i < len(running) && projectedEnd(running[i]) == end; i++ {
			for _, slot := range running[i].ExecHost {
				if _, up := free[slot.Node]; up {
					free[slot.Node]++
				}
			}
		}
		if fitsIn(free, s.nodeOrder, pivot) {
			return reservation{shadow: end, free: free, ok: true}
		}
	}
	return reservation{}
}

// tryBackfill starts a candidate behind the blocked pivot if it
// cannot delay the pivot's reservation: either it releases its slots
// by the shadow time, or the pivot still fits at the shadow time with
// the candidate's slots subtracted. Long candidates that pass stay
// subtracted, so later candidates in the same pass see the remaining
// slack only.
func (s *Server) tryBackfill(j *Job, pivot *Job, rsv *reservation) bool {
	chosen := s.chooseNodes(j)
	if chosen == nil {
		return false
	}
	if rsv.ok && s.eng.Now()+backfillDemand(j) > rsv.shadow {
		for _, c := range chosen {
			rsv.free[c.node.Name] -= len(c.cpus)
		}
		if !fitsIn(rsv.free, s.nodeOrder, pivot) {
			for _, c := range chosen {
				rsv.free[c.node.Name] += len(c.cpus)
			}
			return false
		}
	}
	s.commit(j, chosen)
	return true
}

// backfillDemand is how long a candidate would hold its slots if
// started now — its walltime request when given, else its runtime.
func backfillDemand(j *Job) time.Duration {
	if j.Walltime > 0 {
		return j.Walltime
	}
	return j.Runtime
}

// fitsIn checks a job against a per-node free-CPU projection.
func fitsIn(free map[string]int, order []string, j *Job) bool {
	have := 0
	for _, name := range order {
		if free[name] >= j.PPN {
			have++
			if have == j.Nodes {
				return true
			}
		}
	}
	return false
}

// cand is one node's contribution to a placement.
type cand struct {
	node *Node
	cpus []int
}

// chooseNodes selects nodes and CPU slots for a job without
// committing them; nil when the job does not fit right now.
func (s *Server) chooseNodes(j *Job) []cand {
	var chosen []cand
	for _, name := range s.nodeOrder {
		n := s.nodes[name]
		if n.State() == NodeOffline || n.State() == NodeDown {
			continue
		}
		if n.FreeCPUs() < j.PPN {
			continue
		}
		var cpus []int
		for c := n.NP - 1; c >= 0 && len(cpus) < j.PPN; c-- {
			if _, used := n.busy[c]; !used {
				cpus = append(cpus, c)
			}
		}
		chosen = append(chosen, cand{n, cpus})
		if len(chosen) == j.Nodes {
			return chosen
		}
	}
	return nil
}

// commit occupies the chosen slots and starts the job.
func (s *Server) commit(j *Job, chosen []cand) {
	for _, c := range chosen {
		for _, cpu := range c.cpus {
			c.node.busy[cpu] = j
			j.ExecHost = append(j.ExecHost, ExecSlot{Node: c.node.Name, CPU: cpu})
		}
	}
	s.startJob(j)
}

// tryPlace attempts to allocate nodes for a job and start it.
func (s *Server) tryPlace(j *Job) bool {
	chosen := s.chooseNodes(j)
	if chosen == nil {
		return false
	}
	s.commit(j, chosen)
	return true
}

func (s *Server) startJob(j *Job) {
	j.State = StateRunning
	j.StartTime = s.eng.Now()
	if s.OnJobStart != nil {
		s.OnJobStart(j)
	}
	if j.Exec != nil {
		hosts := make([]string, 0, len(j.ExecHost))
		seen := map[string]bool{}
		for _, slot := range j.ExecHost {
			if !seen[slot.Node] {
				seen[slot.Node] = true
				hosts = append(hosts, slot.Node)
			}
		}
		j.Exec(hosts)
	}
	dur := j.Runtime
	killed := false
	if j.Walltime > 0 && dur > j.Walltime {
		dur = j.Walltime
		killed = true
	}
	s.eng.After(dur, func() {
		if j.State != StateRunning {
			return // interrupted in the meantime (node went down)
		}
		j.killedAtLimit = killed
		s.finishJob(j, false)
	})
}

func (s *Server) finishJob(j *Job, killed bool) {
	if killed {
		j.killedAtLimit = true
	}
	s.releaseSlots(j)
	j.State = StateComplete
	j.EndTime = s.eng.Now()
	if s.OnJobEnd != nil {
		s.OnJobEnd(j)
	}
	if j.OnEnd != nil {
		j.OnEnd(j)
	}
	s.kick()
}

func (s *Server) releaseSlots(j *Job) {
	for _, slot := range j.ExecHost {
		if n, ok := s.nodes[slot.Node]; ok {
			if n.busy[slot.CPU] == j {
				delete(n.busy, slot.CPU)
			}
		}
	}
}

// stamp renders a virtual time as the wall-clock string PBS prints.
func (s *Server) stamp(t time.Duration) string {
	return s.BaseDate.Add(t).Format(time.ANSIC)
}
