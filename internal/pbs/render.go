package pbs

import (
	"fmt"
	"strings"
)

// This file renders the command output the paper's detector scrapes.
// The formats follow Figures 7 (pbsnodes) and 8 (qstat -f): a name
// line followed by indented "key = value" attribute lines, records
// separated by blank lines.

// QstatF renders `qstat -f` for every job that has not completed.
// Completed jobs age out of qstat quickly in real Torque; the detector
// only cares about Q/R/E states.
func (s *Server) QstatF() string {
	var b strings.Builder
	for _, j := range s.Jobs() {
		if j.State == StateComplete {
			continue
		}
		s.renderJob(&b, j)
		b.WriteByte('\n')
	}
	return b.String()
}

// QstatFJob renders one job record regardless of state.
func (s *Server) QstatFJob(id string) (string, error) {
	j, err := s.Job(id)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	s.renderJob(&b, j)
	return b.String(), nil
}

func (s *Server) renderJob(b *strings.Builder, j *Job) {
	fmt.Fprintf(b, "Job Id: %s\n", j.ID)
	attr := func(k, v string) { fmt.Fprintf(b, "    %s = %s\n", k, v) }
	attr("Job_Name", j.Name)
	attr("Job_Owner", j.Owner)
	attr("job_state", j.State.String())
	attr("queue", j.Queue)
	attr("server", j.Server)
	if j.JoinOE {
		attr("Join_Path", "oe")
	}
	if j.OutputPath != "" {
		attr("Output_Path", j.OutputPath)
	}
	if len(j.ExecHost) > 0 {
		attr("exec_host", j.ExecHostString(s.domain))
	}
	attr("Priority", fmt.Sprintf("%d", j.Priority))
	attr("qtime", s.stamp(j.QTime))
	if j.State == StateRunning || j.State == StateExiting {
		attr("start_time", s.stamp(j.StartTime))
	}
	attr("Resource_List.nodes", fmt.Sprintf("%d:ppn=%d", j.Nodes, j.PPN))
	if j.Walltime > 0 {
		attr("Resource_List.walltime", fmtHMS(j.Walltime))
	}
	rerun := "n"
	if j.Rerunnable {
		rerun = "y"
	}
	attr("Rerunable", rerun)
}

// PBSNodes renders `pbsnodes` output for all nodes.
func (s *Server) PBSNodes() string {
	var b strings.Builder
	for _, n := range s.Nodes() {
		s.renderNode(&b, n)
		b.WriteByte('\n')
	}
	return b.String()
}

func (s *Server) renderNode(b *strings.Builder, n *Node) {
	fmt.Fprintf(b, "%s\n", fqdn(n.Name, s.domain))
	attr := func(k, v string) { fmt.Fprintf(b, "     %s = %s\n", k, v) }
	attr("state", string(n.State()))
	attr("np", fmt.Sprintf("%d", n.NP))
	attr("properties", strings.Join(n.Properties, ","))
	attr("ntype", "cluster")
	if jobs := n.Jobs(); len(jobs) > 0 {
		attr("jobs", strings.Join(jobs, ", "))
	}
	// The status line condenses what pbs_mom reports; the fields the
	// paper shows in Figure 7 are kept, values simulated.
	status := fmt.Sprintf("opsys=linux,uname=Linux %s 2.6.18-164.el5 #1 SMP x86_64,ncpus=%d,loadave=%.2f,state=%s",
		fqdn(n.Name, s.domain), n.NP, float64(n.UsedCPUs()), n.State())
	attr("status", status)
}

func fmtHMS(d interface{ Seconds() float64 }) string {
	total := int(d.Seconds())
	return fmt.Sprintf("%02d:%02d:%02d", total/3600, (total%3600)/60, total%60)
}
