package service

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sweep"
)

func swfSpec(path string) sweep.Spec {
	return sweep.Spec{Grid: sweep.Grid{
		Traces: []sweep.TraceSpec{{Kind: sweep.TraceSWF, SWFFile: path, WindowsFrac: 0.3}},
	}}
}

// plantFile creates an empty file (and its parents) under root.
func plantFile(t *testing.T, root string, rel string) {
	t.Helper()
	path := filepath.Join(root, filepath.FromSlash(rel))
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte("; test swf\n"), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCheckSpecPathsRejectsAbsolute(t *testing.T) {
	err := CheckSpecPaths(swfSpec("/etc/passwd"), t.TempDir())
	if err == nil {
		t.Fatal("absolute swf path accepted")
	}
	t.Logf("rejected: %v", err)
}

func TestCheckSpecPathsRejectsTraversal(t *testing.T) {
	root := t.TempDir()
	for _, p := range []string{
		"../secrets.swf",
		"specs/../../outside.swf",
		"specs/sub/../../../outside.swf",
		"..",
	} {
		if err := CheckSpecPaths(swfSpec(p), root); err == nil {
			t.Errorf("traversal path %q accepted", p)
		}
	}
}

// TestCheckSpecPathsRejectsAncestorEscape pins the guard against the
// CLI's cwd-ancestor resolution: "etc/passwd" is relative and has no
// ".." segment, but resolveTracePath would walk the daemon's cwd up
// to "/" and find the real /etc/passwd. The guard must refuse it
// because no such file exists under the server root.
func TestCheckSpecPathsRejectsAncestorEscape(t *testing.T) {
	root := t.TempDir()
	for _, p := range []string{
		"etc/passwd",       // resolves at / via the ancestor walk
		"root/.ssh/id_rsa", // ditto
	} {
		if err := CheckSpecPaths(swfSpec(p), root); err == nil {
			t.Errorf("ancestor-escape path %q accepted", p)
		}
	}
}

// TestCheckSpecPathsRejectsSymlinkEscape plants a symlink inside the
// root that points outside it: the lexical path is clean, but the
// resolved file is not under the root, so the guard must refuse it.
func TestCheckSpecPathsRejectsSymlinkEscape(t *testing.T) {
	root := t.TempDir()
	outside := filepath.Join(t.TempDir(), "outside.swf")
	if err := os.WriteFile(outside, []byte("; outside\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	link := filepath.Join(root, "inside.swf")
	if err := os.Symlink(outside, link); err != nil {
		t.Skipf("symlinks unavailable: %v", err)
	}
	if err := CheckSpecPaths(swfSpec("inside.swf"), root); err == nil {
		t.Error("symlink escaping the server root accepted")
	}
}

func TestCheckSpecPathsRejectsMissingFile(t *testing.T) {
	if err := CheckSpecPaths(swfSpec("specs/does_not_exist.swf"), t.TempDir()); err == nil {
		t.Error("nonexistent swf path accepted")
	}
}

func TestCheckSpecPathsAcceptsWorkingTreePaths(t *testing.T) {
	root := t.TempDir()
	for _, p := range []string{
		"specs/pwa_sample_1k.swf",
		"traces/anl_intrepid.swf",
		"a..b/weird..name.swf", // ".." inside a segment is not traversal
	} {
		plantFile(t, root, p)
		if err := CheckSpecPaths(swfSpec(p), root); err != nil {
			t.Errorf("relative path %q rejected: %v", p, err)
		}
	}
}

// TestConfineSpecPathsPinsUnderRoot checks the execution-side rewrite:
// the confined spec carries the absolute root-joined path (so
// resolveTracePath's ancestor walk never runs), while the submitted
// spec is left untouched (its canonical bytes are what gets hashed
// and stored).
func TestConfineSpecPathsPinsUnderRoot(t *testing.T) {
	root := t.TempDir()
	plantFile(t, root, "specs/pwa_sample_1k.swf")
	orig := swfSpec("specs/pwa_sample_1k.swf")
	confined, err := confineSpecPaths(orig, root)
	if err != nil {
		t.Fatal(err)
	}
	got := confined.Grid.Traces[0].SWFFile
	if !filepath.IsAbs(got) {
		t.Errorf("confined path %q is not absolute", got)
	}
	rootReal, err := filepath.EvalSymlinks(root)
	if err != nil {
		t.Fatal(err)
	}
	if rel, err := filepath.Rel(rootReal, got); err != nil || strings.HasPrefix(rel, "..") {
		t.Errorf("confined path %q does not sit under root %q", got, rootReal)
	}
	if filepath.Base(got) != "pwa_sample_1k.swf" {
		t.Errorf("confined path %q changed the basename (trace names would drift)", got)
	}
	if orig.Grid.Traces[0].SWFFile != "specs/pwa_sample_1k.swf" {
		t.Errorf("confine mutated the submitted spec: %q", orig.Grid.Traces[0].SWFFile)
	}
}

func TestCheckSpecPathsIgnoresNonSWFTraces(t *testing.T) {
	sp := sweep.Spec{Grid: sweep.Grid{
		Traces: []sweep.TraceSpec{{Kind: sweep.TracePoisson, JobsPerHour: 3, WindowsFrac: 0.3}},
	}}
	if err := CheckSpecPaths(sp, t.TempDir()); err != nil {
		t.Fatalf("non-swf trace rejected: %v", err)
	}
}
