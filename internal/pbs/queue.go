package pbs

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Queue is a PBS execution queue. The paper's deployment used the
// single OSCAR "default" queue (Figure 4 submits with -q default);
// additional queues support the multi-group campus usage the paper's
// motivation section describes.
type Queue struct {
	Name string
	// enabled: accepting submissions (qmgr set queue enabled).
	enabled bool
	// started: eligible for scheduling (qmgr set queue started).
	started bool
	// MaxRunning bounds concurrently running jobs from this queue
	// (0 = unlimited).
	MaxRunning int
	// running counts this queue's jobs in state R, maintained by the
	// server's start/stop ledger so the cap check never scans job
	// history.
	running int
}

// Enabled reports whether the queue accepts submissions.
func (q *Queue) Enabled() bool { return q.enabled }

// Started reports whether the queue's jobs are scheduled.
func (q *Queue) Started() bool { return q.started }

// CreateQueue adds an execution queue, enabled and started.
func (s *Server) CreateQueue(name string) (*Queue, error) {
	if name == "" {
		return nil, fmt.Errorf("pbs: queue needs a name")
	}
	if _, ok := s.queues[name]; ok {
		return nil, fmt.Errorf("pbs: queue %s already exists", name)
	}
	q := &Queue{Name: name, enabled: true, started: true}
	s.queues[name] = q
	return q, nil
}

// GetQueue returns a queue by name.
func (s *Server) GetQueue(name string) (*Queue, error) {
	q, ok := s.queues[name]
	if !ok {
		return nil, fmt.Errorf("pbs: unknown queue %s", name)
	}
	return q, nil
}

// Queues lists queues sorted by name.
func (s *Server) Queues() []*Queue {
	out := make([]*Queue, 0, len(s.queues))
	for _, q := range s.queues {
		out = append(out, q)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SetQueueEnabled toggles submission acceptance.
func (s *Server) SetQueueEnabled(name string, enabled bool) error {
	q, err := s.GetQueue(name)
	if err != nil {
		return err
	}
	q.enabled = enabled
	return nil
}

// SetQueueStarted toggles scheduling eligibility; stopping a queue
// holds its jobs without killing anything.
func (s *Server) SetQueueStarted(name string, started bool) error {
	q, err := s.GetQueue(name)
	if err != nil {
		return err
	}
	q.started = started
	if started {
		s.kick()
	}
	return nil
}

// runningInQueue counts running jobs belonging to a queue.
func (s *Server) runningInQueue(name string) int {
	q, ok := s.queues[name]
	if !ok {
		return 0
	}
	return q.running
}

// schedulable reports whether a queued job may be considered in this
// pass: its queue must be started and under its running cap.
func (s *Server) schedulable(j *Job) bool {
	q, ok := s.queues[j.Queue]
	if !ok || !q.started {
		return false
	}
	if q.MaxRunning > 0 && s.runningInQueue(q.Name) >= q.MaxRunning {
		return false
	}
	return true
}

// QstatSummary renders the classic tabular `qstat` output:
//
//	Job ID                 Name            User       Time Use S Queue
//	---------------------- --------------- ---------- -------- - -----
//	1185.eridani.qgg...    release_1_node  sliang     00:00:10 R default
func (s *Server) QstatSummary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %-16s %-12s %-8s %s %s\n", "Job ID", "Name", "User", "Time Use", "S", "Queue")
	fmt.Fprintf(&b, "%s %s %s %s - %s\n",
		strings.Repeat("-", 28), strings.Repeat("-", 16), strings.Repeat("-", 12), strings.Repeat("-", 8), strings.Repeat("-", 7))
	for _, j := range s.Jobs() {
		if j.State == StateComplete {
			continue
		}
		user, _, _ := strings.Cut(j.Owner, "@")
		use := time.Duration(0)
		if j.State == StateRunning {
			use = s.eng.Now() - j.StartTime
		}
		fmt.Fprintf(&b, "%-28s %-16s %-12s %-8s %s %s\n",
			truncate(j.ID, 28), truncate(j.Name, 16), truncate(user, 12),
			fmtHMS(use), j.State, j.Queue)
	}
	return b.String()
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}
