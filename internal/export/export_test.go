package export

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/osid"
)

func TestWriteSeriesCSV(t *testing.T) {
	series := []cluster.Snapshot{
		{At: time.Hour, LinuxNodes: 14, WindowsNodes: 2, Switching: 0, WindowsQueued: 3},
		{At: 2 * time.Hour, LinuxNodes: 12, WindowsNodes: 2, Switching: 2},
	}
	var buf bytes.Buffer
	if err := WriteSeriesCSV(&buf, series); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 3 {
		t.Fatalf("rows = %d", len(records))
	}
	if records[0][0] != "t_sec" {
		t.Fatalf("header = %v", records[0])
	}
	if records[1][0] != "3600" || records[1][1] != "14" || records[1][2] != "2" {
		t.Fatalf("row 1 = %v", records[1])
	}
	if records[2][3] != "2" {
		t.Fatalf("switching cell = %v", records[2])
	}
}

func TestWriteSeriesCSVEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSeriesCSV(&buf, nil); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("expected header only, got %d lines", len(lines))
	}
}

func TestWriteSummaryJSON(t *testing.T) {
	s := metrics.Summary{
		Elapsed:       2 * time.Hour,
		TotalCores:    64,
		Utilisation:   0.5,
		UtilisationOS: map[osid.OS]float64{osid.Linux: 0.4, osid.Windows: 0.1},
		MeanWait:      map[osid.OS]time.Duration{osid.Windows: 5 * time.Minute},
		MaxWait:       map[osid.OS]time.Duration{},
		JobsSubmitted: map[osid.OS]int{osid.Linux: 10},
		JobsCompleted: map[osid.OS]int{osid.Linux: 9},
		Switches:      3,
		SwitchesOK:    3,
		MeanSwitch:    4 * time.Minute,
	}
	var buf bytes.Buffer
	if err := WriteSummaryJSON(&buf, s); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded["utilisation"] != 0.5 {
		t.Fatalf("utilisation = %v", decoded["utilisation"])
	}
	if decoded["total_cores"] != float64(64) {
		t.Fatalf("cores = %v", decoded["total_cores"])
	}
	waits := decoded["mean_wait_sec"].(map[string]any)
	if waits["windows"] != float64(300) {
		t.Fatalf("windows wait = %v", waits["windows"])
	}
	if decoded["mean_switch_sec"] != float64(240) {
		t.Fatalf("switch = %v", decoded["mean_switch_sec"])
	}
}

// axisRow builds the registry-shaped axis fields the sweep package
// emits, so the exporter tests exercise the same schema.
func axisRow(cell, mode, policy, sched string, nodes int, trace string, fail float64, topo, routing string, seed int64) []Field {
	return []Field{
		{Key: "cell", Text: cell, JSON: cell},
		{Key: "mode", Text: mode, JSON: mode},
		{Key: "policy", Text: policy, JSON: policy},
		{Key: "sched_policy", Text: sched, JSON: sched},
		{Key: "nodes", Text: "16", JSON: nodes},
		{Key: "trace", Text: trace, JSON: trace},
		{Key: "failure_rate", Text: "0.1", JSON: fail},
		{Key: "topology", Text: topo, JSON: topo},
		{Key: "routing", Text: routing, JSON: routing, OmitEmptyJSON: true},
		{Key: "seed", Text: "42", JSON: seed},
	}
}

func TestWriteSweepCSV(t *testing.T) {
	a := axisRow("hybrid-v2/fcfs/n16/poisson-4jph-w30%/f0", "hybrid-v2", "fcfs", "backfill",
		16, "poisson-4jph-w30%", 0, "single", "", 42)
	a[6].Text = "0"
	b := axisRow("static-split/fcfs/n16/poisson-4jph-w30%/f0.1", "static-split", "fcfs", "fcfs",
		16, "poisson-4jph-w30%", 0.1, "single", "", 43)
	b[9].Text = "43"
	rows := []SweepRow{
		{Axes: a, Utilisation: 0.4251, MeanWaitWindowsSec: 300, Switches: 6, SwitchesOK: 6, Thrash: 2,
			JobsSubmitted: 96, JobsCompleted: 96, MakespanSec: 90000},
		{Axes: b, Err: "boom"},
	}
	var buf bytes.Buffer
	if err := WriteSweepCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	raw := append([]byte(nil), buf.Bytes()...)
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 3 {
		t.Fatalf("rows = %d", len(records))
	}
	if records[0][0] != "cell" || records[0][3] != "sched_policy" || records[0][6] != "failure_rate" || records[0][7] != "topology" || records[0][8] != "routing" {
		t.Fatalf("header = %v", records[0])
	}
	if records[1][3] != "backfill" || records[2][3] != "fcfs" {
		t.Fatalf("sched_policy cells = %q/%q", records[1][3], records[2][3])
	}
	if records[1][10] != "0.425100" { // fixed-width float formatting
		t.Fatalf("utilisation cell = %q", records[1][10])
	}
	if records[0][15] != "thrash" || records[1][15] != "2" {
		t.Fatalf("thrash column = %q/%q", records[0][15], records[1][15])
	}
	if records[2][6] != "0.1" || records[2][23] != "boom" {
		t.Fatalf("failed-cell row = %v", records[2])
	}

	// Byte-for-byte reproducible on identical input.
	var again bytes.Buffer
	if err := WriteSweepCSV(&again, rows); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, again.Bytes()) {
		t.Fatal("sweep CSV not reproducible")
	}
}

func TestWriteSweepJSON(t *testing.T) {
	rows := []SweepRow{{
		Axes:        axisRow("c", "hybrid-v2", "fcfs", "fcfs", 16, "poisson-4jph-w30%", 0, "single", "", 42),
		Utilisation: 0.5, JobsCompleted: 12,
	}}
	var buf bytes.Buffer
	if err := WriteSweepJSON(&buf, rows); err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 1 || decoded[0]["utilisation"] != 0.5 {
		t.Fatalf("decoded = %v", decoded)
	}
	if decoded[0]["mode"] != "hybrid-v2" || decoded[0]["nodes"] != float64(16) {
		t.Fatalf("axis fields = %v", decoded[0])
	}
	if _, present := decoded[0]["err"]; present {
		t.Fatal("empty err serialised")
	}
	// The routing axis omits its JSON field when empty, as the struct
	// tag `omitempty` used to.
	if _, present := decoded[0]["routing"]; present {
		t.Fatal("empty routing serialised")
	}
}

// WriteSweepCSV without rows cannot know the axis schema; it must
// write nothing rather than invent a header.
func TestWriteSweepCSVEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSweepCSV(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("wrote %q for zero rows", buf.String())
	}
}

func TestWriteJobsCSV(t *testing.T) {
	jobs := []metrics.JobRecord{
		{ID: "1.e", OS: osid.Linux, App: "DL_POLY", CPUs: 8,
			Submitted: 0, Started: time.Minute, Ended: time.Hour, Completed: true},
		{ID: "W2", OS: osid.Windows, App: "Opera", CPUs: 4,
			Submitted: time.Minute, Completed: false},
	}
	var buf bytes.Buffer
	if err := WriteJobsCSV(&buf, jobs); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 3 {
		t.Fatalf("rows = %d", len(records))
	}
	if records[1][7] != "60" { // wait_sec
		t.Fatalf("wait = %v", records[1])
	}
	if records[2][8] != "false" {
		t.Fatalf("completed = %v", records[2])
	}
}

func TestWriteSwitchesCSV(t *testing.T) {
	switches := []metrics.SwitchRecord{
		{Node: "enode01", From: osid.Linux, To: osid.Windows,
			Started: time.Hour, Finished: time.Hour + 4*time.Minute, OK: true},
	}
	var buf bytes.Buffer
	if err := WriteSwitchesCSV(&buf, switches); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 {
		t.Fatalf("rows = %d", len(records))
	}
	row := records[1]
	if row[0] != "enode01" || row[1] != "linux" || row[2] != "windows" || row[5] != "240" || row[6] != "true" {
		t.Fatalf("row = %v", row)
	}
}

// Rows off the first row's axis schema must error instead of writing
// ragged CSV (encoding/csv does not enforce record lengths).
func TestWriteSweepCSVRejectsMismatchedSchemas(t *testing.T) {
	full := SweepRow{Axes: axisRow("a", "hybrid-v2", "fcfs", "fcfs", 16, "t", 0, "single", "", 1)}
	short := SweepRow{Axes: full.Axes[:len(full.Axes)-1]}
	var buf bytes.Buffer
	if err := WriteSweepCSV(&buf, []SweepRow{full, short}); err == nil {
		t.Fatal("mismatched axis counts serialised without error")
	}
	renamed := SweepRow{Axes: append([]Field(nil), full.Axes...)}
	renamed.Axes[3] = Field{Key: "discipline", Text: "fcfs"}
	if err := WriteSweepCSV(&buf, []SweepRow{full, renamed}); err == nil {
		t.Fatal("mismatched axis keys serialised without error")
	}
}
