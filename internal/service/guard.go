package service

import (
	"fmt"
	"path/filepath"
	"strings"

	"repro/internal/sweep"
)

// CheckSpecPaths vets every filesystem path a served spec references.
// The CLI trusts its operator; the service does not — a submitted
// document naming an SWF log must stay inside the server's spec root.
// See confineSpecPaths for what is enforced.
func CheckSpecPaths(sp sweep.Spec, root string) error {
	_, err := confineSpecPaths(sp, root)
	return err
}

// confineSpecPaths pins a served spec's swf trace files to root and
// returns a copy whose paths are rewritten to the verified absolute
// locations. Four gates, in order:
//
//   - absolute paths are rejected outright;
//   - any ".." segment is rejected (lexical traversal);
//   - the file must exist as a regular file under root — crucially,
//     this runs against root alone, never the cwd-ancestor walk the
//     CLI's resolveTracePath performs, so a path like "etc/passwd"
//     cannot ride the walk up to "/" and name a system file;
//   - after symlink resolution the file must still sit under root, so
//     a planted symlink cannot smuggle the read outside either.
//
// The rewritten path is the lexical join root/path (not the
// symlink-resolved one), which keeps the basename — and with it the
// derived trace and cell names in the CSV — identical to a CLI run of
// the same document. Being absolute, it short-circuits
// resolveTracePath at execution time: the ancestor walk never runs
// for a served spec.
func confineSpecPaths(sp sweep.Spec, root string) (sweep.Spec, error) {
	traces := sp.Grid.Traces
	copied := false
	rootReal := ""
	for i, t := range traces {
		if t.Kind != sweep.TraceSWF || t.SWFFile == "" {
			continue
		}
		p := t.SWFFile
		if filepath.IsAbs(p) {
			return sp, fmt.Errorf("service: swf trace file %q: absolute paths are not served", p)
		}
		for _, seg := range strings.Split(filepath.ToSlash(p), "/") {
			if seg == ".." {
				return sp, fmt.Errorf("service: swf trace file %q: path may not traverse outside the server root", p)
			}
		}
		if rootReal == "" {
			abs, err := filepath.Abs(root)
			if err == nil {
				rootReal, err = filepath.EvalSymlinks(abs)
			}
			if err != nil {
				return sp, fmt.Errorf("service: resolving server root %q: %v", root, err)
			}
		}
		pinned := filepath.Join(rootReal, filepath.FromSlash(p))
		if !fileExists(pinned) {
			return sp, fmt.Errorf("service: swf trace file %q: no such file under the server root", p)
		}
		resolved, err := filepath.EvalSymlinks(pinned)
		if err != nil {
			return sp, fmt.Errorf("service: swf trace file %q: %v", p, err)
		}
		if rel, err := filepath.Rel(rootReal, resolved); err != nil ||
			rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
			return sp, fmt.Errorf("service: swf trace file %q: resolves outside the server root", p)
		}
		if !copied {
			traces = append([]sweep.TraceSpec(nil), traces...)
			copied = true
		}
		traces[i].SWFFile = pinned
	}
	sp.Grid.Traces = traces
	return sp, nil
}
