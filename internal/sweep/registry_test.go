package sweep

import (
	"bytes"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/bootmgr"
	"repro/internal/cluster"
	"repro/internal/export"
	"repro/internal/osid"
)

// The acceptance criterion for the registry redesign: the switchlat
// axis is one registration, and everything below — expansion, seed
// pairing, cell naming, spec keys, CSV columns — derives from it.

func TestSwitchLatAxisIsTreatmentAxis(t *testing.T) {
	g := Grid{
		Modes:           []cluster.Mode{cluster.HybridV2},
		Traces:          []TraceSpec{{JobsPerHour: 2, WindowsFrac: 0.4, Duration: 6 * time.Hour}},
		SwitchLatencies: []time.Duration{0, 20 * time.Minute},
		BaseSeed:        3,
	}
	cells := g.Expand()
	if len(cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(cells))
	}
	stock, scaled := cells[0], cells[1]
	if stock.SwitchLat != 0 || scaled.SwitchLat != 20*time.Minute {
		t.Fatalf("axis order: %s then %s", stock.Name(), scaled.Name())
	}
	// A treatment axis: both latency variants face identical seeds.
	if stock.Seed != scaled.Seed || stock.TraceSeed != scaled.TraceSeed {
		t.Fatal("switchlat variants drew different seeds (treatment axis must pair)")
	}
	// The stock cell keeps the classic name; the scaled cell appends
	// its segment.
	if strings.Contains(stock.Name(), "sl") {
		t.Fatalf("stock cell name %q should keep the classic form", stock.Name())
	}
	if !strings.HasSuffix(scaled.Name(), "/sl20m0s") {
		t.Fatalf("scaled cell name %q", scaled.Name())
	}
	// The scaled cell materialises with the latency model applied.
	if sc := mustScenario(scaled); sc.Latency == nil {
		t.Fatal("scaled cell scenario carries no latency model")
	}
	if sc := mustScenario(stock); sc.Latency != nil {
		t.Fatal("stock cell scenario should keep the config's own model")
	}
}

func TestSwitchLatencyModelHitsTarget(t *testing.T) {
	for _, target := range []time.Duration{time.Minute, 5 * time.Minute, 20 * time.Minute} {
		m := SwitchLatencyModel(target)
		got := bootmgr.SwitchLatency(*m, osid.Windows, true, 3)
		if diff := got - target; diff < -time.Millisecond || diff > time.Millisecond {
			t.Fatalf("switchlat %v: estimate %v", target, got)
		}
	}
	if SwitchLatencyModel(0) != nil {
		t.Fatal("zero switchlat should keep the stock model")
	}
}

// End to end: a scaled switch latency actually changes the measured
// switch durations, and only them — the paired seeds keep the job
// stream identical.
func TestSwitchLatAxisScalesMeasuredSwitches(t *testing.T) {
	g := Grid{
		Modes: []cluster.Mode{cluster.HybridV2},
		Traces: []TraceSpec{{
			Kind: TraceBurst, JobsPerHour: 2, Duration: 6 * time.Hour,
		}},
		SwitchLatencies: []time.Duration{0, 20 * time.Minute},
		InitialLinux:    16, // all-Linux start: the Windows bursts force switches
		BaseSeed:        3,
		Horizon:         48 * time.Hour,
	}
	out, err := Run(Config{Grid: g, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range out.Errs() {
		t.Fatalf("cell %s: %v", r.Cell.Name(), r.Err)
	}
	stock, scaled := out.Results[0].Res.Summary, out.Results[1].Res.Summary
	if stock.Switches == 0 {
		t.Fatal("scenario produced no switches; the axis has nothing to scale")
	}
	if scaled.MeanSwitch <= stock.MeanSwitch*2 {
		t.Fatalf("mean switch did not scale: stock %v, 20m-target %v", stock.MeanSwitch, scaled.MeanSwitch)
	}
}

// The switchlat CSV column appears only when the axis is swept, so
// every pre-existing grid's CSV stays byte-identical to the
// pre-registry serialisation.
func TestSwitchLatColumnOnlyWhenActive(t *testing.T) {
	base := Grid{
		Modes:  []cluster.Mode{cluster.HybridV2},
		Traces: []TraceSpec{{JobsPerHour: 2, WindowsFrac: 0.3, Duration: 3 * time.Hour}},
	}
	csvHeader := func(g Grid) string {
		out, err := Run(Config{Grid: g, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := export.WriteSweepCSV(&buf, out.Rows()); err != nil {
			t.Fatal(err)
		}
		header, _, _ := strings.Cut(buf.String(), "\n")
		return header
	}
	if h := csvHeader(base); strings.Contains(h, "switch_latency_sec") {
		t.Fatalf("default grid header carries the optional column: %s", h)
	}
	swept := base
	swept.SwitchLatencies = []time.Duration{0, 10 * time.Minute}
	h := csvHeader(swept)
	if !strings.Contains(h, ",routing,switch_latency_sec,seed,") {
		t.Fatalf("swept grid header misplaces the optional column: %s", h)
	}
}

func TestParseGridSpecSwitchLat(t *testing.T) {
	g, err := ParseGridSpec("switchlat=0s,2m,10m")
	if err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{0, 2 * time.Minute, 10 * time.Minute}
	if len(g.SwitchLatencies) != len(want) {
		t.Fatalf("switchlat = %v", g.SwitchLatencies)
	}
	for i, d := range want {
		if g.SwitchLatencies[i] != d {
			t.Fatalf("switchlat = %v", g.SwitchLatencies)
		}
	}
	for _, bad := range []string{"switchlat=fast", "switchlat=-3m"} {
		if _, err := ParseGridSpec(bad); err == nil {
			t.Errorf("spec %q parsed without error", bad)
		}
	}
}

// Repeated grid keys used to be accepted silently (list keys appended,
// scalars last-won); they are typos and must error — including a
// repeat through the deprecated alias.
func TestParseGridSpecRejectsRepeatedKeys(t *testing.T) {
	for _, bad := range []string{
		"nodes=8;nodes=16",
		"seed=1;seed=2",
		"ctlpolicies=fcfs;policies=threshold",
		"rates=2;rates=4",
	} {
		if _, err := ParseGridSpec(bad); err == nil || !strings.Contains(err.Error(), "repeated grid key") {
			t.Errorf("spec %q: error = %v, want repeated-key error", bad, err)
		}
	}
}

func TestParseGridSpecUnknownKeyListsValidSet(t *testing.T) {
	_, err := ParseGridSpec("bogus=1")
	if err == nil || !strings.Contains(err.Error(), "modes | ctlpolicies | schedpolicies | nodes") {
		t.Fatalf("unknown-key error = %v", err)
	}
	if strings.Contains(err.Error(), "policies |") && !strings.Contains(err.Error(), "ctlpolicies |") {
		t.Fatalf("deprecated alias leaked into the valid set: %v", err)
	}
}

func TestParseGridSpecWarnFlagsDeprecatedAlias(t *testing.T) {
	g, warnings, err := ParseGridSpecWarn("policies=fairshare")
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Policies) != 1 || g.Policies[0].Name != "fairshare" {
		t.Fatalf("legacy policies = %+v", g.Policies)
	}
	if len(warnings) != 1 || !strings.Contains(warnings[0], `"policies" is deprecated`) {
		t.Fatalf("warnings = %v", warnings)
	}
	if _, warnings, err = ParseGridSpecWarn("ctlpolicies=fcfs"); err != nil || len(warnings) != 0 {
		t.Fatalf("canonical key warned: %v / %v", warnings, err)
	}
}

// The package documentation's key table is generated from the
// registry; this pins the two together so they cannot drift.
func TestSpecKeyDocMatchesPackageDoc(t *testing.T) {
	src, err := os.ReadFile("spec.go")
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimRight(SpecKeyDoc(), "\n"), "\n") {
		if !strings.Contains(string(src), "//\t"+line+"\n") {
			t.Errorf("spec.go package doc is missing the generated registry line %q", line)
		}
	}
	// Every registered key must also be documented in the README's
	// grid-notation material via the same generated table — covered by
	// containment above; here, double-check no alias leaked into it.
	if strings.Contains(SpecKeyDoc(), "policies ") && !strings.Contains(SpecKeyDoc(), "ctlpolicies ") {
		t.Fatal("deprecated alias appears in the generated key table")
	}
}

// Adding an axis must keep the registry internally complete: every
// expandable axis needs an Apply, every column a Col renderer, every
// optional column an activity predicate.
func TestRegistryRegistrationsAreComplete(t *testing.T) {
	seen := map[string]bool{}
	for _, ax := range Registry() {
		if ax.Key == "" || seen[ax.Key] {
			t.Fatalf("axis key %q missing or duplicated", ax.Key)
		}
		seen[ax.Key] = true
		if ax.Parse == nil || ax.Format == nil {
			t.Errorf("axis %s: missing Parse/Format", ax.Key)
		}
		if (ax.Points == nil) != (ax.Apply == nil) {
			t.Errorf("axis %s: Points and Apply must come together", ax.Key)
		}
		if ax.Column != "" && ax.Col == nil {
			t.Errorf("axis %s: column %q has no renderer", ax.Key, ax.Column)
		}
		if ax.ColumnOptional && ax.ColumnActive == nil {
			t.Errorf("axis %s: optional column without an activity predicate", ax.Key)
		}
		if ax.Segment != nil && ax.NameOrder == 0 {
			t.Errorf("axis %s: name segment without a NameOrder", ax.Key)
		}
	}
}

// Scalar keys reject comma lists centrally — the Single flag on the
// registration is enforced, not advisory.
func TestParseGridSpecSingleValueKeys(t *testing.T) {
	for _, bad := range []string{"seed=1,2", "cycle=5m,10m", "horizon=4h,8h", "hours=6,12"} {
		if _, err := ParseGridSpec(bad); err == nil || !strings.Contains(err.Error(), "takes a single value") {
			t.Errorf("spec %q: error = %v, want single-value error", bad, err)
		}
	}
}

// Fractional-second switchlat targets stay lossless in the CSV text
// (and agree with the JSON seconds value).
func TestSwitchLatColumnKeepsFractionalSeconds(t *testing.T) {
	for _, ax := range Registry() {
		if ax.Column != "switch_latency_sec" {
			continue
		}
		text, js := ax.Col(Cell{SwitchLat: 500 * time.Millisecond})
		if text != "0.5" || js != 0.5 {
			t.Fatalf("500ms renders as %q / %v", text, js)
		}
		return
	}
	t.Fatal("switch_latency_sec column not registered")
}
