// Fixture for the walltime analyzer: positive findings.
package walltime

import "time"

func bad() {
	_ = time.Now()                      // want `time\.Now reads the wall clock`
	t0 := time.Now()                    // want `time\.Now reads the wall clock`
	_ = time.Since(t0)                  // want `time\.Since reads the wall clock`
	_ = time.Until(t0)                  // want `time\.Until reads the wall clock`
	<-time.After(time.Second)           // want `time\.After reads the wall clock`
	_ = time.Tick(time.Second)          // want `time\.Tick reads the wall clock`
	time.Sleep(time.Millisecond)        // want `time\.Sleep reads the wall clock`
	_ = time.NewTimer(time.Second)      // want `time\.NewTimer reads the wall clock`
	tick := time.NewTicker(time.Second) // want `time\.NewTicker reads the wall clock`
	tick.Stop()
	_ = time.AfterFunc(time.Second, func() {}) // want `time\.AfterFunc reads the wall clock`
}

// A bare reference (not a call) is equally banned: passing time.Now as
// a clock function smuggles the wall clock just as well.
var clock = time.Now // want `time\.Now reads the wall clock`
