package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/export"
	"repro/internal/sweep"
)

// The committed spec documents under specs/ are the reproducibility
// artifacts for E12–E17 and E19. They must stay byte-identical to what the
// in-code grids serialise to (so `benchtab -specs specs` is a no-op on
// a clean tree), and loading them back must yield the exact cell set
// the experiments run.
func TestCommittedSpecDocumentsMatchGrids(t *testing.T) {
	files, err := SpecFiles()
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 7 {
		t.Fatalf("expected one spec document per recorded sweep experiment, got %d", len(files))
	}
	for _, sf := range files {
		path := filepath.Join("..", "..", "specs", sf.File)
		committed, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (regenerate with `go run ./cmd/benchtab -specs specs`)", sf.File, err)
		}
		want, err := sweep.MarshalSpec(sf.Spec)
		if err != nil {
			t.Fatalf("%s: %v", sf.File, err)
		}
		if !bytes.Equal(committed, want) {
			t.Errorf("%s drifted from the in-code grid; regenerate with `go run ./cmd/benchtab -specs specs`", sf.File)
			continue
		}
		loaded, err := sweep.LoadSpec(bytes.NewReader(committed))
		if err != nil {
			t.Fatalf("%s: %v", sf.File, err)
		}
		if len(loaded.Warnings) != 0 {
			t.Errorf("%s: committed document uses deprecated keys: %v", sf.File, loaded.Warnings)
		}
		wantCells := sf.Spec.Grid.Expand()
		gotCells := loaded.Grid.Expand()
		if len(wantCells) != len(gotCells) {
			t.Fatalf("%s: document expands to %d cells, grid to %d", sf.File, len(gotCells), len(wantCells))
		}
		for i := range wantCells {
			if wantCells[i].Name() != gotCells[i].Name() ||
				wantCells[i].Seed != gotCells[i].Seed ||
				wantCells[i].TraceSeed != gotCells[i].TraceSeed {
				t.Fatalf("%s: cell %d diverges: %s vs %s", sf.File, i, wantCells[i].Name(), gotCells[i].Name())
			}
		}
	}
	// And every committed document has a backing grid — no orphans.
	entries, err := os.ReadDir(filepath.Join("..", "..", "specs"))
	if err != nil {
		t.Fatal(err)
	}
	known := map[string]bool{}
	for _, sf := range files {
		known[sf.File] = true
	}
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".json" {
			continue
		}
		if !known[e.Name()] {
			t.Errorf("specs/%s has no backing grid in SpecFiles", e.Name())
		}
	}
}

// Replaying a committed spec document must reproduce its committed
// golden CSV — the same diff CI's spec-replay job performs, at
// workers=1, guarded behind -short because it reruns every recorded
// sweep.
func TestSpecReplayMatchesGoldenCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("replaying every recorded sweep is slow")
	}
	files, err := SpecFiles()
	if err != nil {
		t.Fatal(err)
	}
	for _, sf := range files {
		if raceEnabled && sf.File == "e17_metro_scale.json" {
			// The metro grid replays at workers=1 here — serial, so the
			// detector sees no concurrency — and is minutes-slow under
			// instrumentation; the regular pass and CI's spec-replay job
			// still diff it against the golden.
			continue
		}
		base := sf.File[:len(sf.File)-len(".json")]
		golden, err := os.ReadFile(filepath.Join("..", "..", "specs", "golden", base+".csv"))
		if err != nil {
			t.Fatalf("%s: %v (regenerate with `qsim sweep -f specs/%s -workers 1 -csv ...`)", sf.File, err, sf.File)
		}
		out, err := sweep.Run(sweep.Config{Grid: sf.Spec.Grid, Workers: 1})
		if err != nil {
			t.Fatalf("%s: %v", sf.File, err)
		}
		var buf bytes.Buffer
		if err := export.WriteSweepCSV(&buf, out.Rows()); err != nil {
			t.Fatalf("%s: %v", sf.File, err)
		}
		if !bytes.Equal(buf.Bytes(), golden) {
			t.Errorf("%s: replay diverged from specs/golden/%s.csv", sf.File, base)
		}
	}
}
