package winhpc

import (
	"testing"
	"time"

	"repro/internal/simtime"
)

// This file pins the EASY backfill guarantees on the Windows HPC
// side, for both resource units: a blocked wide head must start no
// later than its reservation under a continuous narrow stream.
// scheduleGreedy is a verbatim replica of the old greedy pass, kept
// here so the starvation it causes stays demonstrable.

// scheduleGreedy replicates the pre-EASY greedy backfill: place
// anything that fits, in queue order, with no reservation for the
// blocked head.
func (s *Scheduler) scheduleGreedy() {
	for _, j := range s.QueuedJobs() {
		s.tryPlace(j)
	}
}

// starvationWorkload builds the canonical scenario on a 2-node×4-core
// scheduler: a node-exclusive blocker pins node 1 for two hours, a
// 2-node job queues behind it, and a 1-core job arrives every ten
// minutes for six hours. The wide job's reservation is the blocker's
// projected end: t=2h.
func starvationWorkload(eng *simtime.Engine, s *Scheduler) (wide *Job, narrows *[]*Job) {
	s.SubmitJob(JobSpec{Name: "blocker", Unit: UnitNode, Count: 1, Runtime: 2 * time.Hour})
	eng.RunUntil(time.Second) // let the blocker start
	wide, _ = s.SubmitJob(JobSpec{Name: "wide", Unit: UnitNode, Count: 2, Runtime: time.Hour})
	narrows = &[]*Job{}
	for i := 0; i < 36; i++ {
		eng.At(90*time.Second+time.Duration(i)*10*time.Minute, func() {
			n, _ := s.SubmitJob(JobSpec{Name: "narrow", Unit: UnitCore, Count: 1,
				Runtime: 30 * time.Minute})
			*narrows = append(*narrows, n)
		})
	}
	return wide, narrows
}

const wideReservation = 2 * time.Hour // the blocker's projected end

func TestEASYBackfillBoundsNodeJobWait(t *testing.T) {
	eng, s := newTestScheduler(t, 2)
	s.Backfill = true
	wide, narrows := starvationWorkload(eng, s)
	eng.RunUntil(6 * time.Hour)

	if wide.State != JobRunning && wide.State != JobFinished {
		t.Fatalf("wide job state = %v, want started", wide.State)
	}
	if wide.StartTime > wideReservation {
		t.Fatalf("wide job started at %v, after its %v reservation", wide.StartTime, wideReservation)
	}
	jumped := 0
	for _, n := range *narrows {
		if n.StartTime > 0 && n.StartTime < wide.StartTime {
			jumped++
		}
	}
	if jumped < 5 {
		t.Fatalf("only %d narrow jobs backfilled ahead of the wide head", jumped)
	}
	eng.Run()
}

// A UnitCore pivot gets the same protection: a core job too big for
// the current slack reserves the first projected instant the cores
// exist, and narrow jobs may not push that instant back.
func TestEASYBackfillBoundsCoreJobWait(t *testing.T) {
	eng, s := newTestScheduler(t, 2)
	s.Backfill = true
	s.SubmitJob(JobSpec{Name: "blocker", Unit: UnitCore, Count: 6, Runtime: 2 * time.Hour})
	eng.RunUntil(time.Second)
	// 8 cores > the 2 free: blocked until the blocker releases at 2h.
	pivot, _ := s.SubmitJob(JobSpec{Name: "pivot", Unit: UnitCore, Count: 8, Runtime: time.Hour})
	var early, late *Job
	eng.At(30*time.Minute, func() {
		// Ends at 60m, inside the 120m shadow: free to backfill.
		early, _ = s.SubmitJob(JobSpec{Name: "early", Unit: UnitCore, Count: 1,
			Runtime: 30 * time.Minute})
	})
	eng.At(100*time.Minute, func() {
		// 100m + 30m = 130m > the 120m shadow, and the pivot needs
		// every core at its reservation: this candidate would delay it.
		late, _ = s.SubmitJob(JobSpec{Name: "late", Unit: UnitCore, Count: 1,
			Runtime: 30 * time.Minute})
	})
	eng.RunUntil(119 * time.Minute)
	if early.StartTime != 30*time.Minute {
		t.Fatalf("early narrow job started at %v, want backfilled immediately", early.StartTime)
	}
	if late.State != JobQueued {
		t.Fatalf("late narrow job state = %v, want queued behind the reservation", late.State)
	}
	eng.RunUntil(3 * time.Hour)
	if pivot.StartTime != wideReservation {
		t.Fatalf("pivot started at %v, want exactly its %v reservation", pivot.StartTime, wideReservation)
	}
	eng.Run()
}

func TestGreedyBackfillReplicaStarvesNodeJob(t *testing.T) {
	eng, s := newTestScheduler(t, 2)
	s.Backfill = true
	s.schedOverride = s.scheduleGreedy
	wide, narrows := starvationWorkload(eng, s)
	eng.RunUntil(6 * time.Hour)

	if wide.State != JobQueued {
		t.Fatalf("wide job state = %v, want starved in queue under greedy backfill", wide.State)
	}
	started := 0
	for _, n := range *narrows {
		if n.StartTime > 0 {
			started++
		}
	}
	if started < 20 {
		t.Fatalf("greedy replica only started %d narrow jobs", started)
	}
	eng.Run()
}
