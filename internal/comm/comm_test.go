package comm

import (
	"net"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/detector"
	"repro/internal/osid"
	"repro/internal/simtime"
)

func TestMessageEncodeDecode(t *testing.T) {
	cases := []Message{
		{Kind: KindState, From: osid.Windows, Report: detector.Report{Stuck: false, StuckJobID: "none"}},
		{Kind: KindState, From: osid.Linux, Report: detector.Report{Stuck: true, NeededCPUs: 16, StuckJobID: "12.eridani.qgg.hud.ac.uk"}},
		{Kind: KindReboot, From: osid.Linux, Target: osid.Windows, Count: 3},
		{Kind: KindAck},
	}
	for _, m := range cases {
		back, err := ParseLine(m.Encode())
		if err != nil {
			t.Fatalf("ParseLine(%q): %v", m.Encode(), err)
		}
		if back != m {
			t.Fatalf("round trip %q: %+v != %+v", m.Encode(), back, m)
		}
	}
}

func TestEncodeShapes(t *testing.T) {
	m := Message{Kind: KindState, From: osid.Windows,
		Report: detector.Report{Stuck: true, NeededCPUs: 4, StuckJobID: "9.WINHEAD"}}
	if got := m.Encode(); got != "STATE windows 100049.WINHEAD" {
		t.Fatalf("Encode = %q", got)
	}
	r := Message{Kind: KindReboot, From: osid.Linux, Target: osid.Windows, Count: 2}
	if got := r.Encode(); got != "REBOOT linux windows 2" {
		t.Fatalf("Encode = %q", got)
	}
}

func TestParseLineErrors(t *testing.T) {
	for _, line := range []string{
		"", "  ", "BOGUS x", "STATE", "STATE windows", "STATE mars 00000none",
		"STATE windows zz", "REBOOT linux windows", "REBOOT linux windows x",
		"REBOOT linux windows 0", "REBOOT linux windows -2", "REBOOT linux pluto 1",
		"REBOOT pluto linux 1",
	} {
		if _, err := ParseLine(line); err == nil {
			t.Errorf("ParseLine(%q) succeeded", line)
		}
	}
}

func TestKindString(t *testing.T) {
	if KindState.String() != "STATE" || KindReboot.String() != "REBOOT" ||
		KindAck.String() != "ACK" || Kind(9).String() != "UNKNOWN" {
		t.Fatal("kind strings wrong")
	}
}

func TestBusDeliversAfterLatency(t *testing.T) {
	eng := simtime.NewEngine()
	bus := NewBus(eng, 100*time.Millisecond)
	var deliveredAt time.Duration
	var got Message
	bus.Register("LINHEAD", func(from string, m Message) {
		deliveredAt = eng.Now()
		got = m
	})
	msg := Message{Kind: KindState, From: osid.Windows,
		Report: detector.Report{Stuck: true, NeededCPUs: 8, StuckJobID: "3.w"}}
	bus.Send("WINHEAD", "LINHEAD", msg)
	eng.Run()
	if deliveredAt != 100*time.Millisecond {
		t.Fatalf("delivered at %v", deliveredAt)
	}
	if got != msg {
		t.Fatalf("got %+v", got)
	}
}

func TestBusDropsUnknownEndpoint(t *testing.T) {
	eng := simtime.NewEngine()
	bus := NewBus(eng, 0)
	bus.Send("a", "ghost", Message{Kind: KindAck})
	eng.Run()
	st := bus.Stats()
	if st.Sent != 1 || st.Dropped != 1 || st.Delivered != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBusReregister(t *testing.T) {
	eng := simtime.NewEngine()
	bus := NewBus(eng, 0)
	calls := 0
	bus.Register("x", func(string, Message) { calls++ })
	bus.Register("x", func(string, Message) { calls += 10 })
	bus.Send("y", "x", Message{Kind: KindAck})
	eng.Run()
	if calls != 10 {
		t.Fatalf("calls = %d, want replacement handler only", calls)
	}
	bus.Register("x", nil) // unregister
	bus.Send("y", "x", Message{Kind: KindAck})
	eng.Run()
	if bus.Stats().Dropped != 1 {
		t.Fatal("unregistered endpoint did not drop")
	}
}

func TestBusStatsByKind(t *testing.T) {
	eng := simtime.NewEngine()
	bus := NewBus(eng, 0)
	bus.Register("x", func(string, Message) {})
	bus.Send("y", "x", Message{Kind: KindState, From: osid.Linux, Report: detector.Report{StuckJobID: "none"}})
	bus.Send("y", "x", Message{Kind: KindReboot, From: osid.Linux, Target: osid.Windows, Count: 1})
	bus.Send("y", "x", Message{Kind: KindReboot, From: osid.Linux, Target: osid.Windows, Count: 1})
	eng.Run()
	st := bus.Stats()
	if st.ByKind[KindState] != 1 || st.ByKind[KindReboot] != 2 {
		t.Fatalf("by kind = %+v", st.ByKind)
	}
}

func TestBusNegativeLatencyClamped(t *testing.T) {
	eng := simtime.NewEngine()
	bus := NewBus(eng, -time.Second)
	done := false
	bus.Register("x", func(string, Message) { done = true })
	bus.Send("y", "x", Message{Kind: KindAck})
	eng.Run()
	if !done {
		t.Fatal("message lost")
	}
}

func TestTCPRoundTrip(t *testing.T) {
	var mu sync.Mutex
	var received []Message
	srv, err := ListenTCP("127.0.0.1:0", func(from string, m Message) {
		mu.Lock()
		received = append(received, m)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	msgs := []Message{
		{Kind: KindState, From: osid.Windows, Report: detector.Report{Stuck: true, NeededCPUs: 4, StuckJobID: "7.w"}},
		{Kind: KindReboot, From: osid.Linux, Target: osid.Linux, Count: 2},
	}
	for _, m := range msgs {
		if err := SendTCP(srv.Addr(), m, time.Second); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(received) != 2 {
		t.Fatalf("received %d messages", len(received))
	}
	for i := range msgs {
		if received[i] != msgs[i] {
			t.Fatalf("msg %d: %+v != %+v", i, received[i], msgs[i])
		}
	}
}

func TestTCPSendToDeadServer(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0", func(string, Message) {})
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	srv.Close()
	if err := SendTCP(addr, Message{Kind: KindAck}, 200*time.Millisecond); err == nil {
		t.Fatal("send to closed server succeeded")
	}
}

func TestTCPNilHandler(t *testing.T) {
	if _, err := ListenTCP("127.0.0.1:0", nil); err == nil {
		t.Fatal("nil handler accepted")
	}
}

func TestTCPDoubleClose(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0", func(string, Message) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestTCPMalformedLineGetsError(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0", func(string, Message) { t.Error("handler called for garbage") })
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// SendTCP validates on encode, so speak raw bytes here.
	err = func() error {
		conn, err := dialRaw(srv.Addr())
		if err != nil {
			return err
		}
		defer conn.Close()
		if _, err := conn.Write([]byte("GARBAGE\n")); err != nil {
			return err
		}
		buf := make([]byte, 64)
		n, _ := conn.Read(buf)
		if !strings.HasPrefix(string(buf[:n]), "ERR") {
			t.Errorf("response = %q, want ERR", buf[:n])
		}
		return nil
	}()
	if err != nil {
		t.Fatal(err)
	}
}

// Property: every syntactically valid REBOOT round-trips.
func TestQuickRebootRoundTrip(t *testing.T) {
	f := func(count uint8, toWindows bool) bool {
		c := int(count)%999 + 1
		target := osid.Linux
		if toWindows {
			target = osid.Windows
		}
		m := Message{Kind: KindReboot, From: target.Other(), Target: target, Count: c}
		back, err := ParseLine(m.Encode())
		return err == nil && back == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func dialRaw(addr string) (interface {
	Write([]byte) (int, error)
	Read([]byte) (int, error)
	Close() error
}, error) {
	return net.DialTimeout("tcp", addr, time.Second)
}
