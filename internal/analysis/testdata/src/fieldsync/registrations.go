// Fixture for the fieldsync analyzer: registration hygiene findings.
package sweep

// A fully-wired expanding axis: parser, formatter, expansion pair,
// describe label, export column and name segment all present.
var good = Axis{
	Key: "modes", Help: "cluster organisations",
	Parse: parseFn, Format: formatFn,
	Points: pointsFn, Apply: applyFn,
	Plural: "modes", Column: "mode", Col: colFn,
	Segment: segFn, NameOrder: 10,
}

// A scalar (parse-only) key needs nothing beyond the required four.
var goodScalar = Axis{
	Key: "seedlike", Help: "a single value", Single: true,
	Parse: parseFn, Format: formatFn,
}

var missingFormat = Axis{ // want `axis "broken" registration is missing required field Format`
	Key: "broken", Help: "parses but cannot round-trip into documents",
	Parse: parseFn,
}

var pointsWithoutApply = Axis{ // want `axis "halfexpand" must register Points and Apply together` `expanding axis "halfexpand" \(has Points\) must also register Plural` `must also register Column` `must also register Col` `must also register Segment` `must also register NameOrder`
	Key: "halfexpand", Help: "expands cells it cannot label",
	Parse: parseFn, Format: formatFn,
	Points: pointsFn,
}

var columnWithoutCol = Axis{ // want `axis "headless" must register Column and Col together`
	Key: "headless", Help: "names a column it never renders",
	Parse: parseFn, Format: formatFn,
	Column: "headless",
}

var segmentWithoutOrder = Axis{ // want `axis "floating" must register Segment and NameOrder together`
	Key: "floating", Help: "a segment with no position in the cell name",
	Parse: parseFn, Format: formatFn,
	Segment: segFn,
}

var optionalWithoutActive = Axis{ // want `axis "ghostcol" must register ColumnOptional and ColumnActive together`
	Key: "ghostcol", Help: "optional column with no activity predicate",
	Parse: parseFn, Format: formatFn,
	Column: "ghost", Col: colFn,
	ColumnOptional: true,
}

// Registry-style slice elements (implicit &Axis) are checked too.
var registry = []*Axis{
	{ // want `axis "inslice" registration is missing required field Help`
		Key:   "inslice",
		Parse: parseFn, Format: formatFn,
	},
}

// The escape hatch works on registrations like on anything else.
//
//simlint:allow fieldsync -- fixture: deliberately partial registration under construction
var allowedPartial = Axis{
	Key: "wip", Help: "under construction",
	Parse: parseFn,
}
