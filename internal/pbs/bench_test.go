package pbs

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/simtime"
)

// Micro-benchmarks for the Torque simulation: scheduling throughput,
// text rendering and scraping at cluster scale.

func BenchmarkSchedulerThroughput(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := simtime.NewEngine()
		s := NewServer(eng, "bench.example")
		for n := 1; n <= 64; n++ {
			s.AddNode(fmt.Sprintf("n%03d", n), 4, true)
		}
		for j := 0; j < 1000; j++ {
			s.Qsub(SubmitRequest{Name: "j", Nodes: 1 + j%4, PPN: 1 + j%4,
				Runtime: time.Duration(j%120+1) * time.Minute})
		}
		eng.Run()
		if len(s.RunningJobs()) != 0 || len(s.QueuedJobs()) != 0 {
			b.Fatal("jobs left behind")
		}
	}
}

func BenchmarkQstatFRender(b *testing.B) {
	eng := simtime.NewEngine()
	s := NewServer(eng, "bench.example")
	for n := 1; n <= 16; n++ {
		s.AddNode(fmt.Sprintf("n%02d", n), 4, true)
	}
	for j := 0; j < 64; j++ {
		s.Qsub(SubmitRequest{Name: "j", Nodes: 1, PPN: 4, Runtime: time.Hour})
	}
	eng.RunUntil(time.Second)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(s.QstatF()) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkParseQstatF(b *testing.B) {
	eng := simtime.NewEngine()
	s := NewServer(eng, "bench.example")
	for n := 1; n <= 16; n++ {
		s.AddNode(fmt.Sprintf("n%02d", n), 4, true)
	}
	for j := 0; j < 64; j++ {
		s.Qsub(SubmitRequest{Name: "j", Nodes: 1, PPN: 4, Runtime: time.Hour})
	}
	eng.RunUntil(time.Second)
	text := s.QstatF()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		jobs, err := ParseQstatF(text)
		if err != nil || len(jobs) != 64 {
			b.Fatalf("%d jobs, %v", len(jobs), err)
		}
	}
}

func BenchmarkParseScriptFigure4(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseScript(figure4); err != nil {
			b.Fatal(err)
		}
	}
}
