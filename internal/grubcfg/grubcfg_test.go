package grubcfg

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/osid"
)

// figure2 is the paper's modified menu.lst verbatim (Figure 2).
const figure2 = `default=0
timeout=5
splashimage=(hd0,1)/grub/splash.xpm.gz
hiddenmenu

title changing to control file
root (hd0,5)
configfile /controlmenu.lst
`

// figure3 is the paper's controlmenu.lst verbatim (Figure 3). Note the
// space-separated "default 0" versus Figure 2's "default=0".
const figure3 = `default 0
timeout=10
splashimage=(hd0,1)/grub/splash.xpm.gz

title CentOS-5.4_Oscar-5b2-linux
root (hd0,1)
kernel /vmlinuz-2.6.18-164.el5 ro root=/dev/sda7 enforcing=0
initrd /sc-initrd-2.6.18-164.el5.gz

title Win_Server_2K8_R2-windows
rootnoverify (hd0,0)
chainloader +1
`

func TestParseFigure2(t *testing.T) {
	cfg, err := Parse([]byte(figure2))
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.HasDefault || cfg.Default != 0 {
		t.Errorf("default = %d/%v", cfg.Default, cfg.HasDefault)
	}
	if cfg.Timeout != 5 {
		t.Errorf("timeout = %d", cfg.Timeout)
	}
	if !cfg.HiddenMenu {
		t.Error("hiddenmenu not parsed")
	}
	if cfg.SplashImage != "(hd0,1)/grub/splash.xpm.gz" {
		t.Errorf("splashimage = %q", cfg.SplashImage)
	}
	if len(cfg.Entries) != 1 {
		t.Fatalf("entries = %d", len(cfg.Entries))
	}
	e := cfg.Entries[0]
	if e.Title != "changing to control file" {
		t.Errorf("title = %q", e.Title)
	}
	dev, ok := e.Root()
	if !ok || dev != (DeviceRef{Disk: 0, Partition: 5}) {
		t.Errorf("root = %v, %v", dev, ok)
	}
	if dev.LinuxPartition() != 6 {
		t.Errorf("LinuxPartition = %d, want 6 (/dev/sda6)", dev.LinuxPartition())
	}
	cf, ok := e.ConfigFile()
	if !ok || cf != "/controlmenu.lst" {
		t.Errorf("configfile = %q, %v", cf, ok)
	}
}

func TestParseFigure3(t *testing.T) {
	cfg, err := Parse([]byte(figure3))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Timeout != 10 {
		t.Errorf("timeout = %d", cfg.Timeout)
	}
	if len(cfg.Entries) != 2 {
		t.Fatalf("entries = %d", len(cfg.Entries))
	}
	lin, win := cfg.Entries[0], cfg.Entries[1]

	if lin.OS() != osid.Linux {
		t.Errorf("entry 0 OS = %v", lin.OS())
	}
	if !lin.HasKernel() {
		t.Error("linux entry has no kernel")
	}
	kp, _ := lin.KernelPath()
	if kp != "/vmlinuz-2.6.18-164.el5" {
		t.Errorf("kernel path = %q", kp)
	}
	if args, _ := lin.Lookup("kernel"); !strings.Contains(args, "root=/dev/sda7") {
		t.Errorf("kernel args = %q", args)
	}
	if ird, ok := lin.Lookup("initrd"); !ok || ird != "/sc-initrd-2.6.18-164.el5.gz" {
		t.Errorf("initrd = %q", ird)
	}

	if win.OS() != osid.Windows {
		t.Errorf("entry 1 OS = %v", win.OS())
	}
	if !win.HasChainloader() {
		t.Error("windows entry has no chainloader")
	}
	dev, ok := win.Root()
	if !ok || dev != (DeviceRef{Disk: 0, Partition: 0}) {
		t.Errorf("windows root = %v", dev)
	}

	def, err := cfg.DefaultEntry()
	if err != nil || def != lin {
		t.Errorf("default entry = %v, %v", def, err)
	}
}

func TestSemanticRoundTripFigures(t *testing.T) {
	for name, src := range map[string]string{"fig2": figure2, "fig3": figure3} {
		cfg, err := Parse([]byte(src))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		again, err := Parse(cfg.Render())
		if err != nil {
			t.Fatalf("%s re-parse: %v", name, err)
		}
		if again.Default != cfg.Default || again.Timeout != cfg.Timeout ||
			again.HiddenMenu != cfg.HiddenMenu || again.SplashImage != cfg.SplashImage ||
			len(again.Entries) != len(cfg.Entries) {
			t.Fatalf("%s: round trip mismatch:\n%s", name, cfg.Render())
		}
		for i := range cfg.Entries {
			if again.Entries[i].Title != cfg.Entries[i].Title {
				t.Errorf("%s entry %d title mismatch", name, i)
			}
			if len(again.Entries[i].Commands) != len(cfg.Entries[i].Commands) {
				t.Errorf("%s entry %d command count mismatch", name, i)
			}
		}
	}
}

func TestParseDevice(t *testing.T) {
	cases := []struct {
		in      string
		want    DeviceRef
		wantErr bool
	}{
		{"(hd0,0)", DeviceRef{0, 0}, false},
		{"(hd0,5)", DeviceRef{0, 5}, false},
		{"(hd1,3)", DeviceRef{1, 3}, false},
		{"(hd0)", DeviceRef{0, -1}, false},
		{" (hd0,1) ", DeviceRef{0, 1}, false},
		{"hd0,0", DeviceRef{}, true},
		{"(fd0)", DeviceRef{}, true},
		{"(hd0,-1)", DeviceRef{}, true},
		{"(hdx,1)", DeviceRef{}, true},
	}
	for _, c := range cases {
		got, err := ParseDevice(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("ParseDevice(%q) err = %v, wantErr = %v", c.in, err, c.wantErr)
			continue
		}
		if !c.wantErr && got != c.want {
			t.Errorf("ParseDevice(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestDeviceRoundTrip(t *testing.T) {
	f := func(disk, part uint8) bool {
		d := DeviceRef{Disk: int(disk), Partition: int(part)}
		got, err := ParseDevice(d.String())
		return err == nil && got == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeviceForLinuxPartition(t *testing.T) {
	d := DeviceForLinuxPartition(6)
	if d.Partition != 5 {
		t.Fatalf("partition = %d, want 5", d.Partition)
	}
	if d.LinuxPartition() != 6 {
		t.Fatalf("round trip = %d", d.LinuxPartition())
	}
}

func TestSetDefaultOS(t *testing.T) {
	cfg, err := Parse([]byte(figure3))
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.SetDefaultOS(osid.Windows); err != nil {
		t.Fatal(err)
	}
	if cfg.Default != 1 {
		t.Fatalf("default = %d, want 1", cfg.Default)
	}
	def, _ := cfg.DefaultEntry()
	if def.OS() != osid.Windows {
		t.Fatalf("default OS = %v", def.OS())
	}
	if err := cfg.SetDefaultOS(osid.Linux); err != nil {
		t.Fatal(err)
	}
	if cfg.Default != 0 {
		t.Fatalf("default = %d, want 0", cfg.Default)
	}
	if err := cfg.SetDefaultOS(osid.None); err == nil {
		t.Fatal("SetDefaultOS(None) succeeded")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"default x\n",
		"default -1\n",
		"timeout x\n",
		"fallback x\n",
		"default 5\n\ntitle a\nroot (hd0,0)\n", // out of range
	}
	for _, src := range cases {
		if _, err := Parse([]byte(src)); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

func TestParseCommentsAndBlanks(t *testing.T) {
	src := "# a comment\n\n  \ndefault 0\n# another\ntitle x\nroot (hd0,0)\n# inside entry\nchainloader +1\n"
	cfg, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Entries) != 1 {
		t.Fatalf("entries = %d", len(cfg.Entries))
	}
	// comments inside entries are skipped, not recorded as commands
	if len(cfg.Entries[0].Commands) != 2 {
		t.Fatalf("commands = %v", cfg.Entries[0].Commands)
	}
}

func TestDefaultSaved(t *testing.T) {
	cfg, err := Parse([]byte("default saved\ntitle a\nroot (hd0,0)\nchainloader +1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.HasDefault || cfg.Default != 0 {
		t.Fatalf("default saved handled wrong: %d/%v", cfg.Default, cfg.HasDefault)
	}
}

func TestUnknownGlobalsPreserved(t *testing.T) {
	src := "color black/cyan yellow/cyan\ndefault 0\ntitle a\nroot (hd0,0)\n"
	cfg, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Preamble) != 1 || cfg.Preamble[0].Name != "color" {
		t.Fatalf("preamble = %v", cfg.Preamble)
	}
	if !strings.Contains(string(cfg.Render()), "color black/cyan yellow/cyan") {
		t.Fatal("preamble lost in render")
	}
}

func TestDefaultEntryNoEntries(t *testing.T) {
	cfg := New()
	if _, err := cfg.DefaultEntry(); err == nil {
		t.Fatal("DefaultEntry on empty config succeeded")
	}
}

func TestEntryOSFallbacks(t *testing.T) {
	// title suffix wins over chainloader heuristic
	e := &Entry{Title: "weird-linux", Commands: []Command{{Name: "chainloader", Args: "+1"}}}
	if e.OS() != osid.Linux {
		t.Errorf("title suffix should dominate: %v", e.OS())
	}
	// bare chainloader with neutral title → Windows
	e2 := &Entry{Title: "other system", Commands: []Command{{Name: "chainloader", Args: "+1"}}}
	if e2.OS() != osid.Windows {
		t.Errorf("chainloader heuristic = %v", e2.OS())
	}
	// nothing at all
	e3 := &Entry{Title: "mystery"}
	if e3.OS() != osid.None {
		t.Errorf("empty entry OS = %v", e3.OS())
	}
}

func TestControlMenuCanned(t *testing.T) {
	for _, os := range []osid.OS{osid.Linux, osid.Windows} {
		cfg, err := ControlMenu(DefaultLinuxEntry(), DefaultWindowsEntry(), os)
		if err != nil {
			t.Fatal(err)
		}
		def, err := cfg.DefaultEntry()
		if err != nil {
			t.Fatal(err)
		}
		if def.OS() != os {
			t.Errorf("ControlMenu(%v) default boots %v", os, def.OS())
		}
		// must re-parse cleanly
		if _, err := Parse(cfg.Render()); err != nil {
			t.Errorf("ControlMenu(%v) render unparseable: %v", os, err)
		}
	}
	if _, err := ControlMenu(DefaultLinuxEntry(), DefaultWindowsEntry(), osid.None); err == nil {
		t.Error("ControlMenu(None) succeeded")
	}
}

func TestControlMenuMatchesFigure3Shape(t *testing.T) {
	cfg, err := ControlMenu(DefaultLinuxEntry(), DefaultWindowsEntry(), osid.Linux)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Parse([]byte(figure3))
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Entries) != len(want.Entries) {
		t.Fatalf("entry count %d != %d", len(cfg.Entries), len(want.Entries))
	}
	for i := range want.Entries {
		if cfg.Entries[i].Title != want.Entries[i].Title {
			t.Errorf("entry %d title %q != %q", i, cfg.Entries[i].Title, want.Entries[i].Title)
		}
		for _, cmd := range want.Entries[i].Commands {
			got, ok := cfg.Entries[i].Lookup(cmd.Name)
			if !ok || got != cmd.Args {
				t.Errorf("entry %d %s = %q, want %q", i, cmd.Name, got, cmd.Args)
			}
		}
	}
}

func TestRedirectMenuMatchesFigure2Shape(t *testing.T) {
	cfg := RedirectMenu(DeviceRef{Disk: 0, Partition: 5}, "/controlmenu.lst")
	want, err := Parse([]byte(figure2))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Timeout != want.Timeout || cfg.HiddenMenu != want.HiddenMenu {
		t.Errorf("globals: timeout %d/%d hidden %v/%v", cfg.Timeout, want.Timeout, cfg.HiddenMenu, want.HiddenMenu)
	}
	e, we := cfg.Entries[0], want.Entries[0]
	if e.Title != we.Title {
		t.Errorf("title %q != %q", e.Title, we.Title)
	}
	gotCF, _ := e.ConfigFile()
	wantCF, _ := we.ConfigFile()
	if gotCF != wantCF {
		t.Errorf("configfile %q != %q", gotCF, wantCF)
	}
}

func TestPXEMenu(t *testing.T) {
	cfg, err := PXEMenu(DefaultLinuxEntry(), DefaultWindowsEntry(), osid.Windows)
	if err != nil {
		t.Fatal(err)
	}
	def, _ := cfg.DefaultEntry()
	if def.OS() != osid.Windows {
		t.Fatalf("PXE default = %v", def.OS())
	}
	lin := cfg.Entries[0]
	kp, _ := lin.KernelPath()
	if !strings.HasPrefix(kp, "(pd)") {
		t.Errorf("PXE kernel path %q lacks (pd) prefix", kp)
	}
	if _, err := Parse(cfg.Render()); err != nil {
		t.Errorf("PXE menu render unparseable: %v", err)
	}
}

func TestStagedControlFileName(t *testing.T) {
	if StagedControlFileName(osid.Linux) != "/controlmenu_to_linux.lst" {
		t.Error("linux staged name wrong")
	}
	if StagedControlFileName(osid.Windows) != "/controlmenu_to_windows.lst" {
		t.Error("windows staged name wrong")
	}
}

// Property: any config built from random valid entries survives a
// render/parse cycle with entry structure intact.
func TestQuickRenderParse(t *testing.T) {
	f := func(titles []string, def uint8, timeout uint8) bool {
		cfg := New()
		for _, title := range titles {
			title = strings.Map(func(r rune) rune {
				if r == '\n' || r == '\r' {
					return ' '
				}
				return r
			}, title)
			if strings.TrimSpace(title) == "" {
				continue
			}
			cfg.Entries = append(cfg.Entries, &Entry{
				Title:    title,
				Commands: []Command{{Name: "root", Args: "(hd0,0)"}, {Name: "chainloader", Args: "+1"}},
			})
		}
		if len(cfg.Entries) > 0 {
			cfg.HasDefault = true
			cfg.Default = int(def) % len(cfg.Entries)
		}
		cfg.Timeout = int(timeout)
		again, err := Parse(cfg.Render())
		if err != nil {
			return false
		}
		if len(again.Entries) != len(cfg.Entries) || again.Default != cfg.Default || again.Timeout != cfg.Timeout {
			return false
		}
		for i := range cfg.Entries {
			if again.Entries[i].Title != strings.TrimSpace(cfg.Entries[i].Title) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
