package analysis_test

import (
	"os"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// TestAnalyzersRegistry pins the suite's contract: names are unique
// (directives address analyzers by name), lower-case, never the
// reserved driver name, and every analyzer is documented — both in
// its Doc string and in the README's static-analysis section.
func TestAnalyzersRegistry(t *testing.T) {
	all := analysis.Analyzers()
	if len(all) < 4 {
		t.Fatalf("expected at least the four core analyzers, got %d", len(all))
	}
	readme, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatalf("reading README: %v", err)
	}
	seen := map[string]bool{}
	for _, a := range all {
		if a.Name == "" || a.Name != strings.ToLower(a.Name) || strings.ContainsAny(a.Name, " ,") {
			t.Errorf("analyzer name %q must be non-empty, lower-case, and free of spaces/commas", a.Name)
		}
		if a.Name == "simlint" || a.Name == "all" {
			t.Errorf("analyzer name %q is reserved (driver attribution / allow-all directive)", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if !strings.HasPrefix(a.Doc, a.Name+":") {
			t.Errorf("analyzer %q Doc must start with %q, got %q", a.Name, a.Name+":", a.Doc)
		}
		if a.Run == nil {
			t.Errorf("analyzer %q has no Run", a.Name)
		}
		if !strings.Contains(string(readme), "`"+a.Name+"`") {
			t.Errorf("analyzer %q is not documented in README.md", a.Name)
		}
	}
}

// TestRunOnOwnPackage smoke-tests the real loader end to end: the
// analysis package itself must load, type-check against build-cache
// export data, and come back clean.
func TestRunOnOwnPackage(t *testing.T) {
	findings, err := analysis.Run([]string{"repro/internal/analysis"}, analysis.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("unexpected finding: %s:%d: %s [%s]", f.Pos.Filename, f.Pos.Line, f.Message, f.Analyzer)
	}
}
