package grid

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/osid"
	"repro/internal/workload"
)

func threeMemberSpecs() []MemberSpec {
	return []MemberSpec{
		{Name: "eridani", Config: cluster.Config{Mode: cluster.HybridV2, Nodes: 8, InitialLinux: 4, Cycle: 5 * time.Minute}},
		{Name: "tauceti", Config: cluster.Config{Mode: cluster.Static, Nodes: 8, InitialLinux: 8}}, // Linux-only
		{Name: "vega", Config: cluster.Config{Mode: cluster.Static, Nodes: 8, InitialLinux: -1}},   // Windows-only
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(RouteLeastLoaded, nil); err == nil {
		t.Fatal("empty grid accepted")
	}
	if _, err := New(RouteLeastLoaded, []MemberSpec{{Name: ""}}); err == nil {
		t.Fatal("unnamed member accepted")
	}
	specs := []MemberSpec{
		{Name: "a", Config: cluster.Config{Mode: cluster.Static, Nodes: 2}},
		{Name: "a", Config: cluster.Config{Mode: cluster.Static, Nodes: 2}},
	}
	if _, err := New(RouteLeastLoaded, specs); err == nil {
		t.Fatal("duplicate member accepted")
	}
}

func TestMembersShareOneClock(t *testing.T) {
	g, err := New(RouteLeastLoaded, threeMemberSpecs())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range g.Members() {
		if m.Cluster.Eng != g.Eng {
			t.Fatalf("member %s has a private engine", m.Name)
		}
	}
}

func TestNodeNamesAndMACsDistinct(t *testing.T) {
	g, err := New(RouteLeastLoaded, threeMemberSpecs())
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	macs := map[string]bool{}
	for _, m := range g.Members() {
		for _, n := range m.Cluster.Nodes() {
			if names[n.HW.Name] {
				t.Fatalf("duplicate node name %s", n.HW.Name)
			}
			names[n.HW.Name] = true
			if macs[n.HW.Addr.String()] {
				t.Fatalf("duplicate MAC %s", n.HW.Addr)
			}
			macs[n.HW.Addr.String()] = true
		}
	}
}

func TestCanServe(t *testing.T) {
	g, err := New(RouteLeastLoaded, []MemberSpec{
		{Name: "hybrid", Config: cluster.Config{Mode: cluster.HybridV2, Nodes: 4, InitialLinux: 2}},
		{Name: "linonly", Config: cluster.Config{Mode: cluster.Static, Nodes: 4, InitialLinux: 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	hybrid, _ := g.Member("hybrid")
	linonly, _ := g.Member("linonly")
	if !hybrid.CanServe(osid.Windows) || !hybrid.CanServe(osid.Linux) {
		t.Fatal("hybrid should serve both")
	}
	if linonly.CanServe(osid.Windows) {
		t.Fatal("linux-only cluster claims windows")
	}
	if !linonly.CanServe(osid.Linux) {
		t.Fatal("linux-only cluster denies linux")
	}
	if hybrid.CanServe(osid.None) {
		t.Fatal("CanServe(None)")
	}
}

func TestRouteCapability(t *testing.T) {
	g, err := New(RouteLeastLoaded, []MemberSpec{
		{Name: "linonly", Config: cluster.Config{Mode: cluster.Static, Nodes: 4, InitialLinux: 4}},
		{Name: "hybrid", Config: cluster.Config{Mode: cluster.HybridV2, Nodes: 4, InitialLinux: 2, Cycle: 5 * time.Minute}},
	})
	if err != nil {
		t.Fatal(err)
	}
	winJob := workload.Job{App: "Opera", OS: osid.Windows, Owner: "u", Nodes: 1, PPN: 4, Runtime: time.Hour}
	m, err := g.Route(winJob)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "hybrid" {
		t.Fatalf("windows job routed to %s", m.Name)
	}
}

func TestRouteDropsUnservable(t *testing.T) {
	g, err := New(RouteLeastLoaded, []MemberSpec{
		{Name: "linonly", Config: cluster.Config{Mode: cluster.Static, Nodes: 4, InitialLinux: 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	winJob := workload.Job{App: "Opera", OS: osid.Windows, Owner: "u", Nodes: 1, PPN: 4, Runtime: time.Hour}
	if _, err := g.Route(winJob); err == nil {
		t.Fatal("unservable job routed")
	}
	if g.Dropped() != 1 {
		t.Fatalf("dropped = %d", g.Dropped())
	}
}

func TestRouteFallsBackWhenTooWide(t *testing.T) {
	// A 6-node job is too wide for the 4-node member but fits the
	// 8-node one; capability filtering alone cannot know that, so the
	// router must retry on submit failure.
	g, err := New(RouteRoundRobin, []MemberSpec{
		{Name: "small", Config: cluster.Config{Mode: cluster.Static, Nodes: 4, InitialLinux: 4}},
		{Name: "large", Config: cluster.Config{Mode: cluster.Static, Nodes: 8, InitialLinux: 8}},
	})
	if err != nil {
		t.Fatal(err)
	}
	wide := workload.Job{App: "LAMMPS", OS: osid.Linux, Owner: "u", Nodes: 6, PPN: 4, Runtime: time.Hour}
	m, err := g.Route(wide)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "large" {
		t.Fatalf("wide job routed to %s", m.Name)
	}
}

func TestRoundRobinSpreads(t *testing.T) {
	g, err := New(RouteRoundRobin, []MemberSpec{
		{Name: "a", Config: cluster.Config{Mode: cluster.Static, Nodes: 4, InitialLinux: 4}},
		{Name: "b", Config: cluster.Config{Mode: cluster.Static, Nodes: 4, InitialLinux: 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		j := workload.Job{App: "GULP", OS: osid.Linux, Owner: "u", Nodes: 1, PPN: 1, Runtime: time.Hour}
		if _, err := g.Route(j); err != nil {
			t.Fatal(err)
		}
	}
	counts := g.RoutedCounts()
	if counts["a"] != 2 || counts["b"] != 2 {
		t.Fatalf("round robin = %v", counts)
	}
}

func TestHybridLastPrefersStatics(t *testing.T) {
	g, err := New(RouteHybridLast, []MemberSpec{
		{Name: "hybrid", Config: cluster.Config{Mode: cluster.HybridV2, Nodes: 8, InitialLinux: 4, Cycle: 5 * time.Minute}},
		{Name: "linonly", Config: cluster.Config{Mode: cluster.Static, Nodes: 8, InitialLinux: 8}},
	})
	if err != nil {
		t.Fatal(err)
	}
	j := workload.Job{App: "GULP", OS: osid.Linux, Owner: "u", Nodes: 1, PPN: 1, Runtime: time.Hour}
	m, err := g.Route(j)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "linonly" {
		t.Fatalf("hybrid-last routed to %s", m.Name)
	}
	// Windows work has no static home here, so it overflows to the hybrid.
	w := workload.Job{App: "Opera", OS: osid.Windows, Owner: "u", Nodes: 1, PPN: 4, Runtime: time.Hour}
	m, err = g.Route(w)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "hybrid" {
		t.Fatalf("windows overflow routed to %s", m.Name)
	}
}

func TestGridEndToEnd(t *testing.T) {
	g, err := New(RouteLeastLoaded, []MemberSpec{
		{Name: "eridani", Config: cluster.Config{Mode: cluster.HybridV2, Nodes: 8, InitialLinux: 8, Cycle: 5 * time.Minute}},
		{Name: "tauceti", Config: cluster.Config{Mode: cluster.Static, Nodes: 8, InitialLinux: 8}},
	})
	if err != nil {
		t.Fatal(err)
	}
	trace := workload.Merge(
		workload.Burst(workload.BurstConfig{Start: 0, Jobs: 4, Gap: time.Minute, App: "DL_POLY",
			OS: osid.Linux, Nodes: 2, PPN: 4, Runtime: time.Hour, Owner: "md"}),
		workload.Burst(workload.BurstConfig{Start: 10 * time.Minute, Jobs: 2, Gap: time.Minute, App: "Opera",
			OS: osid.Windows, Nodes: 1, PPN: 4, Runtime: time.Hour, Owner: "em"}),
	)
	if err := g.ScheduleTrace(trace); err != nil {
		t.Fatal(err)
	}
	g.RunUntilDrained(48 * time.Hour)

	totalDone := 0
	for _, m := range g.Members() {
		s := m.Cluster.Summary()
		totalDone += s.JobsCompleted[osid.Linux] + s.JobsCompleted[osid.Windows]
	}
	if totalDone != len(trace) {
		t.Fatalf("grid completed %d of %d", totalDone, len(trace))
	}
	if g.Dropped() != 0 {
		t.Fatalf("dropped = %d", g.Dropped())
	}
	report := g.Report()
	for _, want := range []string{"eridani", "tauceti", "hybrid-v2", "static-split"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
}

func TestPolicyStrings(t *testing.T) {
	if RouteLeastLoaded.String() != "least-loaded" || RouteRoundRobin.String() != "round-robin" ||
		RouteHybridLast.String() != "hybrid-last" {
		t.Fatal("policy strings wrong")
	}
}

// Regression (determinism contract): tie-breaks resolve to the first
// member in spec order, and a whole grid run replayed from scratch
// routes and reports identically.
func TestLeastLoadedTieBreaksToFirstMember(t *testing.T) {
	g, err := New(RouteLeastLoaded, []MemberSpec{
		{Name: "alpha", Config: cluster.Config{Mode: cluster.Static, Nodes: 4, InitialLinux: 4}},
		{Name: "beta", Config: cluster.Config{Mode: cluster.Static, Nodes: 4, InitialLinux: 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Both members idle: identical zero load, every pick must land on
	// the first member (its queue grows, so later picks may differ —
	// assert only the very first, repeated across fresh grids).
	j := workload.Job{App: "GULP", OS: osid.Linux, Owner: "u", Nodes: 1, PPN: 1, Runtime: time.Hour}
	m, err := g.Route(j)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "alpha" {
		t.Fatalf("tie broke to %s, want the first member", m.Name)
	}
}

func TestGridRunIsDeterministic(t *testing.T) {
	build := func() *Grid {
		g, err := New(RouteLeastLoaded, []MemberSpec{
			{Name: "eridani", Config: cluster.Config{Mode: cluster.HybridV2, Nodes: 8, InitialLinux: 4, Cycle: 5 * time.Minute, Seed: 7}},
			{Name: "tauceti", Config: cluster.Config{Mode: cluster.Static, Nodes: 8, InitialLinux: 8, Seed: 7}},
		})
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	run := func() (map[string]int, map[string]int, string) {
		g := build()
		trace := workload.Merge(
			workload.Poisson(workload.PoissonConfig{Seed: 5, Duration: 8 * time.Hour, JobsPerHour: 4, WindowsFrac: 0.3, MaxNodes: 3}),
		)
		if err := g.ScheduleTrace(trace); err != nil {
			t.Fatal(err)
		}
		g.RunUntilDrained(48 * time.Hour)
		return g.RoutedCounts(), g.CompletedCounts(), g.Report()
	}
	r1, c1, rep1 := run()
	r2, c2, rep2 := run()
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("routing diverged between identical runs:\n%v\nvs\n%v", r1, r2)
	}
	if !reflect.DeepEqual(c1, c2) {
		t.Fatalf("completions diverged: %v vs %v", c1, c2)
	}
	if rep1 != rep2 {
		t.Fatalf("report diverged:\n%s\nvs\n%s", rep1, rep2)
	}
}

// Route edge paths: every drop bumps the counter, hybrid-last with no
// statics falls back to the hybrids, and round-robin wraps around its
// candidate list.
func TestRouteDropCounterAccumulates(t *testing.T) {
	g, err := New(RouteLeastLoaded, []MemberSpec{
		{Name: "linonly", Config: cluster.Config{Mode: cluster.Static, Nodes: 4, InitialLinux: 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	win := workload.Job{App: "Opera", OS: osid.Windows, Owner: "u", Nodes: 1, PPN: 4, Runtime: time.Hour}
	for i := 0; i < 3; i++ {
		if _, err := g.Route(win); err == nil {
			t.Fatal("unservable job routed")
		}
	}
	// An invalid OS is unservable by definition.
	if _, err := g.Route(workload.Job{App: "x", OS: osid.None, Owner: "u", Nodes: 1, PPN: 1, Runtime: time.Hour}); err == nil {
		t.Fatal("OS-less job routed")
	}
	if g.Dropped() != 4 {
		t.Fatalf("dropped = %d, want 4", g.Dropped())
	}
}

func TestHybridLastFallsBackToHybridsWhenNoStatics(t *testing.T) {
	g, err := New(RouteHybridLast, []MemberSpec{
		{Name: "h1", Config: cluster.Config{Mode: cluster.HybridV2, Nodes: 4, InitialLinux: 2, Cycle: 5 * time.Minute}},
		{Name: "h2", Config: cluster.Config{Mode: cluster.HybridV2, Nodes: 4, InitialLinux: 2, Cycle: 5 * time.Minute}},
	})
	if err != nil {
		t.Fatal(err)
	}
	j := workload.Job{App: "GULP", OS: osid.Linux, Owner: "u", Nodes: 1, PPN: 1, Runtime: time.Hour}
	m, err := g.Route(j)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "h1" {
		t.Fatalf("all-hybrid fallback picked %s, want first member", m.Name)
	}
}

func TestRoundRobinWrapsAround(t *testing.T) {
	g, err := New(RouteRoundRobin, []MemberSpec{
		{Name: "a", Config: cluster.Config{Mode: cluster.Static, Nodes: 4, InitialLinux: 4}},
		{Name: "b", Config: cluster.Config{Mode: cluster.Static, Nodes: 4, InitialLinux: 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var order []string
	for i := 0; i < 5; i++ {
		j := workload.Job{App: "GULP", OS: osid.Linux, Owner: "u", Nodes: 1, PPN: 1, Runtime: time.Hour}
		m, err := g.Route(j)
		if err != nil {
			t.Fatal(err)
		}
		order = append(order, m.Name)
	}
	want := []string{"a", "b", "a", "b", "a"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("round robin order = %v, want %v", order, want)
	}
	counts := g.RoutedCounts()
	if counts["a"] != 3 || counts["b"] != 2 {
		t.Fatalf("wraparound counts = %v", counts)
	}
}

// CompletedCounts is maintained by the members' completion hooks, not
// by polling: after a drained run it matches the routed totals.
func TestCompletedCountsTrackRoutedJobs(t *testing.T) {
	g, err := New(RouteRoundRobin, []MemberSpec{
		{Name: "a", Config: cluster.Config{Mode: cluster.Static, Nodes: 4, InitialLinux: 4}},
		{Name: "b", Config: cluster.Config{Mode: cluster.Static, Nodes: 4, InitialLinux: 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	trace := workload.Burst(workload.BurstConfig{
		Start: 0, Jobs: 4, Gap: time.Minute, App: "GULP",
		OS: osid.Linux, Nodes: 1, PPN: 2, Runtime: time.Hour, Owner: "chem",
	})
	if err := g.ScheduleTrace(trace); err != nil {
		t.Fatal(err)
	}
	g.RunUntilDrained(24 * time.Hour)
	routed, completed := g.RoutedCounts(), g.CompletedCounts()
	if !reflect.DeepEqual(routed, completed) {
		t.Fatalf("completed %v != routed %v", completed, routed)
	}
}
