package sweep

import (
	"strings"
	"testing"
	"time"
)

func TestParseGridSpecHeavyTrafficKinds(t *testing.T) {
	g, err := ParseGridSpec("traces=mmpp,users;rates=2;winfracs=0.4;mmppburst=5;mmppdwell=30m;users=40;think=1h")
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Traces) != 2 {
		t.Fatalf("traces = %+v", g.Traces)
	}
	m := g.Traces[0]
	if m.Kind != TraceMMPP || m.JobsPerHour != 2 || m.MMPPBurst != 5 || m.MMPPDwell != 30*time.Minute {
		t.Fatalf("mmpp trace = %+v", m)
	}
	u := g.Traces[1]
	if u.Kind != TraceUsers || u.Users != 40 || u.Think != time.Hour {
		t.Fatalf("users trace = %+v", u)
	}

	// The population size, not the rate axis, sets a users trace's
	// load, so crossing with rates dedups instead of duplicating.
	g, err = ParseGridSpec("traces=users;rates=2,4,8")
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Traces) != 1 {
		t.Fatalf("users traces across 3 rates = %d, want 1 (deduped)", len(g.Traces))
	}
}

func TestParseGridSpecSWF(t *testing.T) {
	g, err := ParseGridSpec("traces=swf:specs/sample.swf;swfmaxjobs=100;swfhours=2;swfnodes=8;swftime=requested")
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Traces) != 1 {
		t.Fatalf("traces = %+v", g.Traces)
	}
	tr := g.Traces[0]
	if tr.Kind != TraceSWF || tr.SWFFile != "specs/sample.swf" ||
		tr.SWFMaxJobs != 100 || tr.SWFWindow != 2*time.Hour ||
		tr.SWFTargetNodes != 8 || !tr.SWFUseRequested {
		t.Fatalf("swf trace = %+v", tr)
	}
	if !strings.HasPrefix(tr.Name, "swf-sample-") {
		t.Fatalf("swf trace name = %q", tr.Name)
	}

	// Two logs that happen to share a basename stay distinct cells.
	g, err = ParseGridSpec("traces=swf:a/log.swf,swf:b/log.swf")
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Traces) != 2 {
		t.Fatalf("same-basename logs deduped: %d traces", len(g.Traces))
	}
	cells := g.Expand()
	if cells[0].Trace.Name == cells[1].Trace.Name || cells[0].TraceSeed == cells[1].TraceSeed {
		t.Fatalf("same-basename logs share name %q / seed", cells[0].Trace.Name)
	}
}

func TestParseGridSpecTraceAxisRejections(t *testing.T) {
	for _, bad := range []string{
		"traces=swf",          // the swf kind always travels with a file
		"traces=swf:",         // ... a non-empty one
		"users=50",            // parameter keys need their kind on the traces axis
		"mmppburst=5",         //
		"swfmaxjobs=10",       //
		"think=1h",            // (even the well-formed ones)
		"traces=mmpp;users=5", // bound to users, grid has only mmpp
		"traces=mmpp;mmppburst=0",
		"traces=mmpp;mmppdwell=never",
		"traces=users;users=-3",
		"traces=users;think=0s",
		"traces=swf:x.swf;swfmaxjobs=-1",
		"traces=swf:x.swf;swfhours=-2",
		"traces=swf:x.swf;swfnodes=-1",
		"traces=swf:x.swf;swftime=guessed",
		"traces=swf:x.swf;swfmaxjobs=5,10", // singles reject comma lists
	} {
		if _, err := ParseGridSpec(bad); err == nil {
			t.Errorf("spec %q parsed without error", bad)
		}
	}
	// The kind-binding error names the offending key.
	_, err := ParseGridSpec("traces=poisson;swfnodes=8")
	if err == nil || !strings.Contains(err.Error(), `"swfnodes" only applies to swf traces`) {
		t.Fatalf("unbound parameter error = %v", err)
	}
}

// ParseGridSpec(GridString(g)) is an equivalent grid for every new
// trace kind, including the full path of an SWF log (cell names carry
// only its basename, so the file round-trip is checked explicitly).
func TestGridStringRoundTripHeavyTraffic(t *testing.T) {
	grids := map[string]Grid{
		"swf": {
			Traces: []TraceSpec{{
				Kind: TraceSWF, SWFFile: "specs/pwa_sample_1k.swf",
				WindowsFrac: 0.3, JobsPerHour: 4, Duration: 24 * time.Hour,
				SWFMaxJobs: 500, SWFWindow: 12 * time.Hour,
				SWFTargetNodes: 8, SWFUseRequested: true,
			}},
			BaseSeed: 19,
		},
		"mmpp-users": {
			Traces: []TraceSpec{
				{Kind: TraceMMPP, JobsPerHour: 3, WindowsFrac: 0.5, Duration: 24 * time.Hour, MMPPBurst: 4, MMPPDwell: 45 * time.Minute},
				{Kind: TraceUsers, JobsPerHour: 3, WindowsFrac: 0.5, Duration: 24 * time.Hour, Users: 64, Think: 90 * time.Minute},
			},
		},
		"defaults-omitted": {
			Traces: []TraceSpec{
				{Kind: TraceMMPP, JobsPerHour: 4, WindowsFrac: 0.3, Duration: 24 * time.Hour},
			},
		},
	}
	for name, g := range grids {
		spec, err := GridString(g)
		if err != nil {
			t.Fatalf("%s: GridString: %v", name, err)
		}
		back, err := ParseGridSpec(spec)
		if err != nil {
			t.Fatalf("%s: reparse %q: %v", name, spec, err)
		}
		gridsEquivalent(t, g, back)
		for i := range g.Traces {
			want := g.Traces[i].withDefaults()
			got := back.Traces[i]
			if got.SWFFile != want.SWFFile || got.SWFMaxJobs != want.SWFMaxJobs ||
				got.SWFWindow != want.SWFWindow || got.SWFTargetNodes != want.SWFTargetNodes ||
				got.SWFUseRequested != want.SWFUseRequested ||
				got.MMPPBurst != want.MMPPBurst || got.MMPPDwell != want.MMPPDwell ||
				got.Users != want.Users || got.Think != want.Think {
				t.Fatalf("%s: trace %d round-tripped to %+v, want %+v", name, i, got, want)
			}
		}
	}
	// Default-valued parameters stay out of the canonical notation.
	spec, err := GridString(grids["defaults-omitted"])
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"mmppburst", "mmppdwell", "users", "think", "swfmaxjobs"} {
		if strings.Contains(spec, key) {
			t.Fatalf("spec %q carries default-valued key %s", spec, key)
		}
	}
}

// Traces of one kind that disagree on a grid-wide parameter single
// cannot travel as a document.
func TestGridStringRejectsMixedKindParameters(t *testing.T) {
	g := Grid{Traces: []TraceSpec{
		{Kind: TraceUsers, Users: 10, JobsPerHour: 4, WindowsFrac: 0.3, Duration: 24 * time.Hour},
		{Kind: TraceUsers, Users: 20, JobsPerHour: 4, WindowsFrac: 0.3, Duration: 24 * time.Hour},
	}}
	if _, err := GridString(g); err == nil {
		t.Fatal("mixed users populations serialised without error")
	}
}
