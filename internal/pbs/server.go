package pbs

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/simtime"
)

// NodeState mirrors pbsnodes state values.
type NodeState string

const (
	NodeFree      NodeState = "free"
	NodeExclusive NodeState = "job-exclusive"
	NodeOffline   NodeState = "offline"
	NodeDown      NodeState = "down"
)

// Node is a pbs_mom as seen by the server.
type Node struct {
	Name       string
	NP         int
	Properties []string
	state      NodeState
	idx        int // position in Server.nodeOrder
	// busy[cpu] holds the job occupying that virtual processor (nil
	// when the slot is free); used counts occupied slots.
	busy []*Job
	used int
}

// State derives the reported state: offline/down are administrative or
// connectivity conditions; otherwise free vs job-exclusive depends on
// occupancy.
func (n *Node) State() NodeState {
	if n.state == NodeOffline || n.state == NodeDown {
		return n.state
	}
	if n.used >= n.NP {
		return NodeExclusive
	}
	return NodeFree
}

// FreeCPUs counts unoccupied virtual processors (0 when offline/down).
func (n *Node) FreeCPUs() int {
	if n.state == NodeOffline || n.state == NodeDown {
		return 0
	}
	return n.NP - n.used
}

// effFree is the schedulable free-CPU count maintained in the free-CPU
// index: identical to FreeCPUs but spelled out here because it defines
// the segment-tree leaf value.
func (n *Node) effFree() int {
	if n.state == NodeOffline || n.state == NodeDown {
		return 0
	}
	return n.NP - n.used
}

// UsedCPUs counts occupied virtual processors.
func (n *Node) UsedCPUs() int { return n.used }

// Jobs lists IDs of jobs with slots on this node, PBS-style
// "cpu/jobid" pairs sorted by CPU.
func (n *Node) Jobs() []string {
	out := make([]string, 0, n.used)
	for c, j := range n.busy {
		if j != nil {
			out = append(out, fmt.Sprintf("%d/%s", c, j.ID))
		}
	}
	return out
}

// Server is the pbs_server plus a strict-FCFS scheduler (the paper's
// deployment ran stock OSCAR scheduling: first-come first-served, no
// backfill — which is exactly what lets the head of the queue wedge
// the whole system and makes the "stuck" signal meaningful).
//
// Scheduler state is incremental: the server maintains live queued and
// running job lists, per-queue running counts, an indexed free-CPU
// profile over the node table, and O(1) census counters, so a
// scheduling pass or a controller poll never rescans the full job
// history.
type Server struct {
	eng *simtime.Engine
	// domain is the cluster FQDN ("eridani.qgg.hud.ac.uk"): the head
	// node's own name, the suffix of job IDs, and the domain compute
	// node names are qualified with.
	domain string

	seq       int
	jobs      map[string]*Job
	order     []string // submission order of job IDs
	nodes     map[string]*Node
	nodeOrder []string

	queues       map[string]*Queue
	defaultQueue string

	// queued holds jobs with queue presence (states Q and H) in SeqNo
	// order. Entries whose job has moved on (started, finished) are
	// dead weight until compactQueue sweeps them; Job.inQueue flags
	// membership so a requeued job revives its stale entry instead of
	// duplicating it.
	queued     []*Job
	queuedDead int // entries in queued whose state is neither Q nor H
	queuedHead int // index of the first possibly-live entry in queued
	queuedN    int // jobs currently in state Q
	queuedCPUs int // sum of Nodes*PPN over state-Q jobs

	// running holds executing jobs in start order; removal swaps the
	// tail into the vacated slot via Job.runIdx.
	running []*Job

	// cpusUp / nodesUp are the O(1) forms of TotalCPUs / AvailableNodes.
	cpusUp  int
	nodesUp int

	// npHist[c] counts configured nodes with NP == c (regardless of
	// state), giving Qsub's feasibility check without a node scan.
	npHist []int

	// freeTree is a max segment tree over node indices keyed by
	// effective free CPUs: chooseNodes jumps straight to the next node
	// that fits instead of walking the whole table.
	freeTree []int
	treeCap  int

	// Scratch buffers reused across scheduling passes.
	candBuf  []cand
	cpuArena []int
	rsvFree  []int
	rsvRun   []*Job

	// Backfill enables reservation-based EASY backfill: later jobs may
	// jump a blocked queue head only when they cannot delay its
	// earliest reservation (shadow time). The paper's system has it
	// off. An earlier revision shipped unreserved greedy backfill
	// here, which let a stream of narrow jobs starve a wide head job
	// indefinitely.
	Backfill bool

	// Hooks for the metrics recorder and the controller. OnJobRequeue
	// fires when a running rerunnable job loses its node and returns
	// to the queue — the recorder needs it to stop busy-core
	// integration between the attempts.
	OnJobStart   func(*Job)
	OnJobEnd     func(*Job)
	OnJobRequeue func(*Job)

	schedPending bool
	// schedOverride replaces the scheduling pass; tests use it to run
	// a replica of historical policies against the same server.
	schedOverride func()

	// BaseDate maps virtual time zero to a wall-clock date for the
	// qstat/pbsnodes renderings. The default matches the paper's
	// trace captures (April 2010).
	BaseDate time.Time
}

// NewServer creates a PBS server on the simulation engine. fqdn is the
// cluster name used in job IDs and node qualification
// ("eridani.qgg.hud.ac.uk").
func NewServer(eng *simtime.Engine, fqdn string) *Server {
	s := &Server{
		eng:          eng,
		domain:       fqdn,
		jobs:         make(map[string]*Job),
		nodes:        make(map[string]*Node),
		queues:       make(map[string]*Queue),
		defaultQueue: "default",
		BaseDate:     time.Date(2010, time.April, 16, 8, 0, 0, 0, time.UTC),
	}
	if _, err := s.CreateQueue("default"); err != nil {
		panic(err) // cannot happen: fresh map
	}
	return s
}

// Name returns the server's FQDN ("eridani.qgg.hud.ac.uk").
func (s *Server) Name() string { return s.domain }

// Domain returns the FQDN suffix.
func (s *Server) Domain() string { return s.domain }

// AddNode registers a compute node. Nodes join offline when avail is
// false (e.g. they are currently booted into Windows).
func (s *Server) AddNode(name string, np int, avail bool) (*Node, error) {
	if _, ok := s.nodes[name]; ok {
		return nil, fmt.Errorf("pbs: node %s already registered", name)
	}
	if np <= 0 {
		return nil, fmt.Errorf("pbs: node %s: bad np %d", name, np)
	}
	n := &Node{Name: name, NP: np, Properties: []string{"all"}, busy: make([]*Job, np), idx: len(s.nodeOrder)}
	if !avail {
		n.state = NodeDown
	}
	s.nodes[name] = n
	s.nodeOrder = append(s.nodeOrder, name)
	for len(s.npHist) <= np {
		s.npHist = append(s.npHist, 0)
	}
	s.npHist[np]++
	if n.state != NodeDown {
		s.cpusUp += np
		s.nodesUp++
	}
	s.refreshNodeFree(n)
	if avail {
		s.kick()
	}
	return n, nil
}

// Node returns a registered node.
func (s *Server) Node(name string) (*Node, error) {
	n, ok := s.nodes[name]
	if !ok {
		return nil, fmt.Errorf("pbs: unknown node %s", name)
	}
	return n, nil
}

// Nodes lists nodes in registration order.
func (s *Server) Nodes() []*Node {
	out := make([]*Node, len(s.nodeOrder))
	for i, name := range s.nodeOrder {
		out[i] = s.nodes[name]
	}
	return out
}

// setNodeState applies an administrative/connectivity state change and
// keeps the up-CPU and up-node counters plus the free-CPU index
// consistent.
func (s *Server) setNodeState(n *Node, st NodeState) {
	old := n.state
	if old == st {
		return
	}
	wasDown, isDown := old == NodeDown, st == NodeDown
	if wasDown != isDown {
		if isDown {
			s.cpusUp -= n.NP
		} else {
			s.cpusUp += n.NP
		}
	}
	wasUp := old != NodeDown && old != NodeOffline
	isUp := st != NodeDown && st != NodeOffline
	if wasUp != isUp {
		if isUp {
			s.nodesUp++
		} else {
			s.nodesUp--
		}
	}
	n.state = st
	s.refreshNodeFree(n)
}

// SetNodeAvailable brings a node up (it re-registered after booting
// Linux) or marks it down (it rebooted away). Jobs running on a node
// that goes down are requeued if rerunnable, otherwise killed.
func (s *Server) SetNodeAvailable(name string, avail bool) error {
	n, ok := s.nodes[name]
	if !ok {
		return fmt.Errorf("pbs: unknown node %s", name)
	}
	if avail {
		s.setNodeState(n, NodeFree)
		s.kick()
		return nil
	}
	s.setNodeState(n, NodeDown)
	// Collect affected jobs before mutating — in slot order, not map
	// order, so the interrupt/requeue sequence (and the hooks it
	// fires) is deterministic across runs.
	seen := map[string]bool{}
	var affected []*Job
	for _, j := range n.busy {
		if j != nil && !seen[j.ID] {
			seen[j.ID] = true
			affected = append(affected, j)
		}
	}
	for _, j := range affected {
		s.interruptJob(j)
	}
	return nil
}

// SetNodeOffline administratively drains a node without killing jobs;
// no new work is placed on it.
func (s *Server) SetNodeOffline(name string, offline bool) error {
	n, ok := s.nodes[name]
	if !ok {
		return fmt.Errorf("pbs: unknown node %s", name)
	}
	if offline {
		s.setNodeState(n, NodeOffline)
	} else {
		s.setNodeState(n, NodeFree)
		s.kick()
	}
	return nil
}

// interruptJob handles a running job losing a node. A rerunnable job
// requeues; anything else dies mid-run and is marked failed so the
// accounting upstream cannot mistake it for a completed job.
func (s *Server) interruptJob(j *Job) {
	s.releaseSlots(j)
	s.noteStopped(j)
	if j.Rerunnable {
		j.State = StateQueued
		j.ExecHost = nil
		s.noteRequeued(j)
		if s.OnJobRequeue != nil {
			s.OnJobRequeue(j)
		}
		s.kick()
		return
	}
	j.State = StateComplete
	j.failed = true
	j.EndTime = s.eng.Now()
	if s.OnJobEnd != nil {
		s.OnJobEnd(j)
	}
	if j.OnEnd != nil {
		j.OnEnd(j)
	}
	s.kick()
}

// Qsub submits a job. Requests that could never run on the configured
// node table are rejected, as Torque does ("cannot locate feasible
// nodes") — down nodes still count as configured, because a hybrid
// cluster's missing nodes may boot back at any time.
func (s *Server) Qsub(req SubmitRequest) (*Job, error) {
	if err := req.normalise(); err != nil {
		return nil, err
	}
	feasible := 0
	for np := req.PPN; np < len(s.npHist); np++ {
		feasible += s.npHist[np]
	}
	if feasible < req.Nodes {
		return nil, fmt.Errorf("pbs: qsub: cannot locate feasible nodes (nodes=%d:ppn=%d, %d candidates)",
			req.Nodes, req.PPN, feasible)
	}
	if req.Queue == "" {
		req.Queue = s.defaultQueue
	}
	q, ok := s.queues[req.Queue]
	if !ok {
		return nil, fmt.Errorf("pbs: qsub: unknown queue %q", req.Queue)
	}
	if !q.enabled {
		return nil, fmt.Errorf("pbs: qsub: queue %q is not enabled", req.Queue)
	}
	s.seq++
	j := &Job{
		ID:         fmt.Sprintf("%d.%s", s.seq, s.Name()),
		SeqNo:      s.seq,
		Name:       req.Name,
		Owner:      req.Owner,
		State:      StateQueued,
		Queue:      req.Queue,
		Server:     s.Name(),
		Nodes:      req.Nodes,
		PPN:        req.PPN,
		Runtime:    req.Runtime,
		Walltime:   req.Walltime,
		Priority:   req.Priority,
		Rerunnable: req.Rerun,
		JoinOE:     req.JoinOE,
		OutputPath: req.Output,
		QTime:      s.eng.Now(),
		Exec:       req.Exec,
		OnEnd:      req.OnEnd,
	}
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	j.inQueue = true
	s.queued = append(s.queued, j) // SeqNo is monotonic: append keeps order
	s.queuedN++
	s.queuedCPUs += j.Nodes * j.PPN
	s.kick()
	return j, nil
}

// QsubScript parses a job script and submits it; owner is the
// submitting user. The script's commands are not interpreted — the
// Exec callback carries simulated behaviour.
func (s *Server) QsubScript(script, owner string, runtime time.Duration, exec func(hosts []string)) (*Job, error) {
	parsed, err := ParseScript(script)
	if err != nil {
		return nil, err
	}
	req := parsed.Request
	req.Owner = owner
	req.Runtime = runtime
	req.Exec = exec
	return s.Qsub(req)
}

// Qdel removes a queued job or kills a running one.
func (s *Server) Qdel(id string) error {
	j, ok := s.jobs[id]
	if !ok {
		return fmt.Errorf("pbs: unknown job %s", id)
	}
	switch j.State {
	case StateQueued:
		j.State = StateComplete
		j.EndTime = s.eng.Now()
		s.queuedN--
		s.queuedCPUs -= j.Nodes * j.PPN
		s.queuedDead++
	case StateHeld:
		j.State = StateComplete
		j.EndTime = s.eng.Now()
		s.queuedDead++
	case StateRunning:
		s.finishJob(j, true)
	}
	return nil
}

// Qhold places a user hold on a queued job (state H); held jobs are
// not scheduled. Running jobs cannot be held in this model.
func (s *Server) Qhold(id string) error {
	j, ok := s.jobs[id]
	if !ok {
		return fmt.Errorf("pbs: unknown job %s", id)
	}
	if j.State != StateQueued {
		return fmt.Errorf("pbs: qhold: job %s is %s, not queued", id, j.State)
	}
	j.State = StateHeld
	s.queuedN--
	s.queuedCPUs -= j.Nodes * j.PPN
	return nil
}

// Qrls releases a held job back to the queue.
func (s *Server) Qrls(id string) error {
	j, ok := s.jobs[id]
	if !ok {
		return fmt.Errorf("pbs: unknown job %s", id)
	}
	if j.State != StateHeld {
		return fmt.Errorf("pbs: qrls: job %s is %s, not held", id, j.State)
	}
	j.State = StateQueued
	s.queuedN++
	s.queuedCPUs += j.Nodes * j.PPN
	s.kick()
	return nil
}

// Job returns a job by ID.
func (s *Server) Job(id string) (*Job, error) {
	j, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("pbs: unknown job %s", id)
	}
	return j, nil
}

// Jobs returns all jobs in submission order.
func (s *Server) Jobs() []*Job {
	out := make([]*Job, len(s.order))
	for i, id := range s.order {
		out[i] = s.jobs[id]
	}
	return out
}

// QueuedJobs returns jobs waiting to run, in submission order.
func (s *Server) QueuedJobs() []*Job {
	out := make([]*Job, 0, s.queuedN)
	for _, j := range s.queued {
		if j.State == StateQueued {
			out = append(out, j)
		}
	}
	return out
}

// RunningJobs returns jobs currently executing, in submission order.
func (s *Server) RunningJobs() []*Job {
	out := make([]*Job, len(s.running))
	copy(out, s.running)
	sort.Slice(out, func(i, j int) bool { return out[i].SeqNo < out[j].SeqNo })
	return out
}

// Stats is the O(1) scheduler census: what the controller's polling
// cycle needs, without rendering or rescanning anything.
type Stats struct {
	Running    int // jobs in state R
	Queued     int // jobs in state Q
	QueuedCPUs int // total CPUs requested by state-Q jobs
}

// QueueStats returns the maintained census counters.
func (s *Server) QueueStats() Stats {
	return Stats{Running: len(s.running), Queued: s.queuedN, QueuedCPUs: s.queuedCPUs}
}

// FirstQueued returns the oldest job in state Q, or nil when the queue
// is empty — the detector's head-of-line candidate.
func (s *Server) FirstQueued() *Job {
	s.advanceQueueHead()
	for _, j := range s.queued[s.queuedHead:] {
		if j.State == StateQueued {
			return j
		}
	}
	return nil
}

// advanceQueueHead slides the live-queue cursor past leading stale
// entries — exactly the states compactQueue drops. Under a deep
// backlog the stale prefix grows by one per started job while
// compaction waits for its majority threshold, and rescanning that
// prefix on every kick made scheduling O(backlog) per event; the
// cursor keeps each pass proportional to live work. It never skips
// states Q or H: a held entry can revive in place via Qrls.
func (s *Server) advanceQueueHead() {
	for s.queuedHead < len(s.queued) {
		st := s.queued[s.queuedHead].State
		if st == StateQueued || st == StateHeld {
			return
		}
		s.queuedHead++
	}
}

// TotalCPUs sums np over nodes that are not down.
func (s *Server) TotalCPUs() int { return s.cpusUp }

// AvailableNodes counts nodes that are up (free or busy).
func (s *Server) AvailableNodes() int { return s.nodesUp }

// noteStarted moves a job into the running ledger as it leaves the
// queue.
func (s *Server) noteStarted(j *Job) {
	s.queuedN--
	s.queuedCPUs -= j.Nodes * j.PPN
	s.queuedDead++ // its queue entry is now stale
	j.runIdx = len(s.running)
	s.running = append(s.running, j)
	if q, ok := s.queues[j.Queue]; ok {
		q.running++
	}
}

// noteStopped removes a job from the running ledger (finish, kill, or
// node-loss interruption).
func (s *Server) noteStopped(j *Job) {
	last := len(s.running) - 1
	tail := s.running[last]
	s.running[j.runIdx] = tail
	tail.runIdx = j.runIdx
	s.running[last] = nil
	s.running = s.running[:last]
	if q, ok := s.queues[j.Queue]; ok {
		q.running--
	}
}

// noteRequeued returns an interrupted job to the queue ledger at its
// original submission position.
func (s *Server) noteRequeued(j *Job) {
	s.queuedN++
	s.queuedCPUs += j.Nodes * j.PPN
	if j.inQueue {
		s.queuedDead-- // its stale entry is live again
		// The revived entry may sit below the head cursor; pull the
		// cursor back to its SeqNo-ordered position so the next pass
		// sees it.
		at := sort.Search(len(s.queued), func(i int) bool { return s.queued[i].SeqNo >= j.SeqNo })
		if at < s.queuedHead {
			s.queuedHead = at
		}
		return
	}
	j.inQueue = true
	if n := len(s.queued); n == 0 || s.queued[n-1].SeqNo < j.SeqNo {
		s.queued = append(s.queued, j)
		return
	}
	at := sort.Search(len(s.queued), func(i int) bool { return s.queued[i].SeqNo > j.SeqNo })
	s.queued = append(s.queued, nil)
	copy(s.queued[at+1:], s.queued[at:])
	s.queued[at] = j
	if at < s.queuedHead {
		s.queuedHead = at
	}
}

// compactQueue sweeps stale entries once they dominate the queue
// slice. Entries in states Q and H stay; everything else is dropped
// and unflagged so a later requeue re-inserts cleanly.
func (s *Server) compactQueue() {
	if s.queuedDead <= 64 || s.queuedDead*2 <= len(s.queued) {
		return
	}
	kept := s.queued[:0]
	for _, j := range s.queued {
		if j.State == StateQueued || j.State == StateHeld {
			kept = append(kept, j)
		} else {
			j.inQueue = false
		}
	}
	for i := len(kept); i < len(s.queued); i++ {
		s.queued[i] = nil
	}
	s.queued = kept
	s.queuedDead = 0
	s.queuedHead = 0
}

// kick coalesces scheduling passes into a single immediate event.
func (s *Server) kick() {
	if s.schedPending {
		return
	}
	s.schedPending = true
	s.eng.After(0, func() {
		s.schedPending = false
		s.schedule()
	})
}

// schedule runs one scheduling pass. FCFS: place the head of the
// queue and stop at the first job that does not fit. With Backfill
// the pass is EASY: the first blocked job becomes the pivot and gets
// a reservation at its shadow time — the earliest instant it fits
// once running jobs release their slots at their projected ends — and
// later jobs may start only if doing so cannot delay that
// reservation. Jobs in stopped or capped queues are skipped without
// blocking the rest.
func (s *Server) schedule() {
	if s.schedOverride != nil {
		s.schedOverride()
		return
	}
	s.compactQueue()
	s.advanceQueueHead()
	var pivot *Job
	var rsv reservation
	// Iterate the live queue ledger directly; the bound snapshots the
	// pass the way the old QueuedJobs() copy did, so jobs submitted by
	// an Exec callback mid-pass wait for the next kick.
	bound := len(s.queued)
	for i := s.queuedHead; i < bound; i++ {
		j := s.queued[i]
		if j.State != StateQueued || !s.schedulable(j) {
			continue
		}
		if pivot == nil {
			if s.tryPlace(j) {
				continue
			}
			if !s.Backfill {
				return
			}
			pivot = j
			rsv = s.reserve(pivot)
			continue
		}
		s.tryBackfill(j, pivot, &rsv)
	}
}

// reservation is the pivot's EASY booking: the shadow time and the
// per-node free-CPU projection at that instant, indexed by node
// registration order (-1 marks nodes that are not up). fit counts
// nodes whose projected free CPUs satisfy the pivot's PPN, so
// tryBackfill can test "does the pivot still fit" by threshold
// crossings instead of a node-table scan. When ok is false no
// projected future fits the pivot (its nodes are down or booted into
// the other OS) — there is nothing to protect, so backfill runs
// unrestricted, which preserves the hybrid's behaviour of packing
// narrow work while the controller fetches nodes for the wide head.
type reservation struct {
	shadow time.Duration
	free   []int
	fit    int
	ok     bool
}

// projectedEnd bounds when a running job releases its slots: the
// walltime contract when the user gave one (the job is killed there
// at the latest), otherwise the simulator's known runtime. Both are
// upper bounds, so a reservation computed from them can only be
// pessimistic — the pivot never starts later than its shadow time.
func projectedEnd(j *Job) time.Duration {
	d := j.Runtime
	if j.Walltime > 0 {
		d = j.Walltime
	}
	return j.StartTime + d
}

// reserve computes the pivot's shadow state by replaying the running
// jobs' projected releases onto the current per-node free CPUs, in
// release order, until the pivot fits. The projection and the job
// copy live in pooled buffers; the fit counter makes each release
// O(slots) instead of O(nodes).
func (s *Server) reserve(pivot *Job) reservation {
	if cap(s.rsvFree) < len(s.nodeOrder) {
		s.rsvFree = make([]int, len(s.nodeOrder))
	}
	free := s.rsvFree[:len(s.nodeOrder)]
	fit := 0
	for i, name := range s.nodeOrder {
		n := s.nodes[name]
		if n.state == NodeOffline || n.state == NodeDown {
			free[i] = -1
			continue
		}
		free[i] = n.NP - n.used
		if free[i] >= pivot.PPN {
			fit++
		}
	}
	running := append(s.rsvRun[:0], s.running...)
	s.rsvRun = running
	sort.Slice(running, func(i, j int) bool {
		ei, ej := projectedEnd(running[i]), projectedEnd(running[j])
		if ei != ej {
			return ei < ej
		}
		return running[i].SeqNo < running[j].SeqNo
	})
	for i := 0; i < len(running); {
		end := projectedEnd(running[i])
		for ; i < len(running) && projectedEnd(running[i]) == end; i++ {
			for _, slot := range running[i].ExecHost {
				if n, ok := s.nodes[slot.Node]; ok && free[n.idx] >= 0 {
					free[n.idx]++
					if free[n.idx] == pivot.PPN {
						fit++
					}
				}
			}
		}
		if fit >= pivot.Nodes {
			return reservation{shadow: end, free: free, fit: fit, ok: true}
		}
	}
	return reservation{}
}

// tryBackfill starts a candidate behind the blocked pivot if it
// cannot delay the pivot's reservation: either it releases its slots
// by the shadow time, or the pivot still fits at the shadow time with
// the candidate's slots subtracted. Long candidates that pass stay
// subtracted, so later candidates in the same pass see the remaining
// slack only.
func (s *Server) tryBackfill(j *Job, pivot *Job, rsv *reservation) bool {
	chosen := s.chooseNodes(j)
	if chosen == nil {
		return false
	}
	if rsv.ok && s.eng.Now()+backfillDemand(j) > rsv.shadow {
		for _, c := range chosen {
			i := c.node.idx
			if rsv.free[i] >= pivot.PPN && rsv.free[i]-len(c.cpus) < pivot.PPN {
				rsv.fit--
			}
			rsv.free[i] -= len(c.cpus)
		}
		if rsv.fit < pivot.Nodes {
			for _, c := range chosen {
				i := c.node.idx
				if rsv.free[i] < pivot.PPN && rsv.free[i]+len(c.cpus) >= pivot.PPN {
					rsv.fit++
				}
				rsv.free[i] += len(c.cpus)
			}
			return false
		}
	}
	s.commit(j, chosen)
	return true
}

// backfillDemand is how long a candidate would hold its slots if
// started now — its walltime request when given, else its runtime.
func backfillDemand(j *Job) time.Duration {
	if j.Walltime > 0 {
		return j.Walltime
	}
	return j.Runtime
}

// cand is one node's contribution to a placement.
type cand struct {
	node *Node
	cpus []int
}

// refreshNodeFree re-derives the node's leaf in the free-CPU segment
// tree after a busy or state mutation.
func (s *Server) refreshNodeFree(n *Node) {
	if n.idx >= s.treeCap {
		s.rebuildFreeTree()
		return
	}
	i := s.treeCap + n.idx
	v := n.effFree()
	if s.freeTree[i] == v {
		return
	}
	s.freeTree[i] = v
	for i >>= 1; i >= 1; i >>= 1 {
		m := s.freeTree[2*i]
		if r := s.freeTree[2*i+1]; r > m {
			m = r
		}
		if s.freeTree[i] == m {
			break
		}
		s.freeTree[i] = m
	}
}

// rebuildFreeTree resizes the segment tree to the node count and
// recomputes every level.
func (s *Server) rebuildFreeTree() {
	capacity := 1
	for capacity < len(s.nodeOrder) {
		capacity <<= 1
	}
	s.treeCap = capacity
	s.freeTree = make([]int, 2*capacity)
	for _, name := range s.nodeOrder {
		n := s.nodes[name]
		s.freeTree[capacity+n.idx] = n.effFree()
	}
	for i := capacity - 1; i >= 1; i-- {
		m := s.freeTree[2*i]
		if r := s.freeTree[2*i+1]; r > m {
			m = r
		}
		s.freeTree[i] = m
	}
}

// nextFit returns the first node index >= from whose effective free
// CPUs reach want, or -1. O(log nodes) via the segment tree.
func (s *Server) nextFit(from, want int) int {
	if s.treeCap == 0 || from >= len(s.nodeOrder) {
		return -1
	}
	i := s.treeCap + from
	for {
		if s.freeTree[i] >= want {
			for i < s.treeCap {
				if s.freeTree[2*i] >= want {
					i = 2 * i
				} else {
					i = 2*i + 1
				}
			}
			idx := i - s.treeCap
			if idx < len(s.nodeOrder) {
				return idx
			}
			return -1
		}
		for {
			if i == 1 {
				return -1
			}
			if i%2 == 0 {
				i++
				break
			}
			i >>= 1
		}
	}
}

// chooseNodes selects nodes and CPU slots for a job without
// committing them; nil when the job does not fit right now. The
// free-CPU index jumps between qualifying nodes, preserving the
// first-fit-in-registration-order placement of the linear scan; the
// candidate list and CPU slots come from pooled buffers valid until
// the next chooseNodes call.
func (s *Server) chooseNodes(j *Job) []cand {
	s.candBuf = s.candBuf[:0]
	s.cpuArena = s.cpuArena[:0]
	from := 0
	for len(s.candBuf) < j.Nodes {
		i := s.nextFit(from, j.PPN)
		if i < 0 {
			return nil
		}
		n := s.nodes[s.nodeOrder[i]]
		start := len(s.cpuArena)
		for c := n.NP - 1; c >= 0 && len(s.cpuArena)-start < j.PPN; c-- {
			if n.busy[c] == nil {
				s.cpuArena = append(s.cpuArena, c)
			}
		}
		s.candBuf = append(s.candBuf, cand{n, s.cpuArena[start:len(s.cpuArena):len(s.cpuArena)]})
		from = i + 1
	}
	return s.candBuf
}

// commit occupies the chosen slots and starts the job.
func (s *Server) commit(j *Job, chosen []cand) {
	for _, c := range chosen {
		for _, cpu := range c.cpus {
			c.node.busy[cpu] = j
			j.ExecHost = append(j.ExecHost, ExecSlot{Node: c.node.Name, CPU: cpu})
		}
		c.node.used += len(c.cpus)
		s.refreshNodeFree(c.node)
	}
	s.startJob(j)
}

// tryPlace attempts to allocate nodes for a job and start it.
func (s *Server) tryPlace(j *Job) bool {
	chosen := s.chooseNodes(j)
	if chosen == nil {
		return false
	}
	s.commit(j, chosen)
	return true
}

func (s *Server) startJob(j *Job) {
	j.State = StateRunning
	j.StartTime = s.eng.Now()
	s.noteStarted(j)
	if s.OnJobStart != nil {
		s.OnJobStart(j)
	}
	if j.Exec != nil {
		hosts := make([]string, 0, len(j.ExecHost))
		seen := map[string]bool{}
		for _, slot := range j.ExecHost {
			if !seen[slot.Node] {
				seen[slot.Node] = true
				hosts = append(hosts, slot.Node)
			}
		}
		j.Exec(hosts)
	}
	dur := j.Runtime
	killed := false
	if j.Walltime > 0 && dur > j.Walltime {
		dur = j.Walltime
		killed = true
	}
	s.eng.After(dur, func() {
		if j.State != StateRunning {
			return // interrupted in the meantime (node went down)
		}
		j.killedAtLimit = killed
		s.finishJob(j, false)
	})
}

func (s *Server) finishJob(j *Job, killed bool) {
	if killed {
		j.killedAtLimit = true
	}
	s.releaseSlots(j)
	s.noteStopped(j)
	j.State = StateComplete
	j.EndTime = s.eng.Now()
	if s.OnJobEnd != nil {
		s.OnJobEnd(j)
	}
	if j.OnEnd != nil {
		j.OnEnd(j)
	}
	s.kick()
}

func (s *Server) releaseSlots(j *Job) {
	for _, slot := range j.ExecHost {
		if n, ok := s.nodes[slot.Node]; ok {
			if n.busy[slot.CPU] == j {
				n.busy[slot.CPU] = nil
				n.used--
				s.refreshNodeFree(n)
			}
		}
	}
}

// stamp renders a virtual time as the wall-clock string PBS prints.
func (s *Server) stamp(t time.Duration) string {
	return s.BaseDate.Add(t).Format(time.ANSIC)
}
