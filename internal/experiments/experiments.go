// Package experiments regenerates every table and figure of the
// paper's evaluation as text tables: the same scenarios the
// bench_test.go harness measures, digested for human reading. The
// cmd/benchtab binary prints them; EXPERIMENTS.md records one run.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/metrics"
)

// Table is one regenerated experiment artifact.
type Table struct {
	ID     string // "E1", "A3", ...
	Title  string // paper artifact being reproduced
	Header []string
	Rows   [][]string
	Notes  string // expected shape, caveats, substitutions
	// EventsRun totals the simulation wakeups (engine callbacks)
	// behind the table — zero for pure-artifact experiments. The
	// cmd/benchtab BENCH_sim.json perf record tracks it per
	// experiment.
	EventsRun uint64
}

// Render formats the experiment for terminal output.
func (t Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s ==\n", t.ID, t.Title)
	b.WriteString(metrics.Table(t.Header, t.Rows))
	if t.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Notes)
	}
	return b.String()
}

// Runner produces one experiment table.
type Runner struct {
	ID  string
	Run func() (Table, error)
}

// All returns every experiment in index order.
func All() []Runner {
	return []Runner{
		{"E1", E1TableI},
		{"E2", E2GrubArtifacts},
		{"E3", E3SwitchJob},
		{"E4", E4DetectorWire},
		{"E5", E5PBSText},
		{"E6", E6Diskpart},
		{"E7", E7IdeDisk},
		{"E8", E8ControlLoop},
		{"E9", E9SwitchLatency},
		{"E10", E10BiVsMono},
		{"E11", E11MatlabGA},
		{"E12", E12MixSweep},
		{"E13", E13SweepModes},
		{"E14", E14RoutingPolicies},
		{"E15", E15PolicySuite},
		{"E16", E16SchedPolicies},
		{"E17", E17MetroScale},
		{"E18", E18CityScale},
		{"E19", E19SWFReplay},
		{"A1", A1CycleInterval},
		{"A2", A2Policies},
		{"A3", A3SwitchCost},
	}
}

// ByID finds a runner.
func ByID(id string) (Runner, bool) {
	for _, r := range All() {
		if strings.EqualFold(r.ID, id) {
			return r, true
		}
	}
	return Runner{}, false
}
