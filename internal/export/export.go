// Package export serialises experiment results for plotting: CSV for
// spreadsheet/gnuplot workflows and JSON for everything else. The qsim
// CLI exposes these through -csv/-json flags.
package export

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/osid"
)

// WriteSeriesCSV writes a node-count time series as CSV with a header
// row. Times are in seconds of virtual time.
func WriteSeriesCSV(w io.Writer, series []cluster.Snapshot) error {
	cw := csv.NewWriter(w)
	header := []string{"t_sec", "linux_nodes", "windows_nodes", "switching", "broken",
		"linux_running", "linux_queued", "windows_running", "windows_queued"}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("export: %w", err)
	}
	for _, s := range series {
		row := []string{
			fmt.Sprintf("%.0f", s.At.Seconds()),
			fmt.Sprintf("%d", s.LinuxNodes),
			fmt.Sprintf("%d", s.WindowsNodes),
			fmt.Sprintf("%d", s.Switching),
			fmt.Sprintf("%d", s.Broken),
			fmt.Sprintf("%d", s.LinuxRunning),
			fmt.Sprintf("%d", s.LinuxQueued),
			fmt.Sprintf("%d", s.WindowsRun),
			fmt.Sprintf("%d", s.WindowsQueued),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("export: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// summaryJSON is the stable JSON shape for a run summary.
type summaryJSON struct {
	ElapsedSec      float64            `json:"elapsed_sec"`
	TotalCores      int                `json:"total_cores"`
	Utilisation     float64            `json:"utilisation"`
	UtilisationByOS map[string]float64 `json:"utilisation_by_os"`
	MeanWaitSec     map[string]float64 `json:"mean_wait_sec"`
	MaxWaitSec      map[string]float64 `json:"max_wait_sec"`
	JobsSubmitted   map[string]int     `json:"jobs_submitted"`
	JobsCompleted   map[string]int     `json:"jobs_completed"`
	Switches        int                `json:"switches"`
	SwitchesOK      int                `json:"switches_ok"`
	MeanSwitchSec   float64            `json:"mean_switch_sec"`
	MaxSwitchSec    float64            `json:"max_switch_sec"`
	SwitchOverhead  float64            `json:"switch_overhead"`
	MakespanSec     float64            `json:"makespan_sec"`
}

// WriteSummaryJSON writes a metrics summary as indented JSON.
func WriteSummaryJSON(w io.Writer, s metrics.Summary) error {
	out := summaryJSON{
		ElapsedSec:      s.Elapsed.Seconds(),
		TotalCores:      s.TotalCores,
		Utilisation:     s.Utilisation,
		UtilisationByOS: map[string]float64{},
		MeanWaitSec:     map[string]float64{},
		MaxWaitSec:      map[string]float64{},
		JobsSubmitted:   map[string]int{},
		JobsCompleted:   map[string]int{},
		Switches:        s.Switches,
		SwitchesOK:      s.SwitchesOK,
		MeanSwitchSec:   s.MeanSwitch.Seconds(),
		MaxSwitchSec:    s.MaxSwitch.Seconds(),
		SwitchOverhead:  s.SwitchOverhead,
		MakespanSec:     s.Makespan.Seconds(),
	}
	for _, os := range []osid.OS{osid.Linux, osid.Windows} {
		key := os.String()
		out.UtilisationByOS[key] = s.UtilisationOS[os]
		out.MeanWaitSec[key] = s.MeanWait[os].Seconds()
		out.MaxWaitSec[key] = s.MaxWait[os].Seconds()
		out.JobsSubmitted[key] = s.JobsSubmitted[os]
		out.JobsCompleted[key] = s.JobsCompleted[os]
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Field is one axis column of a sweep row: a key, its canonical CSV
// rendering and its typed JSON value. The sweep package derives the
// fields from its axis registry, so the exporters stay schema-agnostic
// — a new sweep axis becomes a new column with no edits here.
type Field struct {
	Key  string
	Text string // canonical CSV cell
	JSON any    // typed JSON value; nil falls back to Text
	// OmitEmptyJSON drops the JSON field when Text is empty (the
	// routing column on single-cluster cells).
	OmitEmptyJSON bool
}

// SweepRow is one parameter-grid cell flattened for export: the axis
// coordinates as ordered fields (registry-derived, uniform across the
// rows of one sweep) plus the fixed metric columns. Keeping the type
// here lets the exporters stay free of a dependency on the sweep
// machinery.
type SweepRow struct {
	Axes               []Field
	Utilisation        float64
	MeanWaitLinuxSec   float64
	MeanWaitWindowsSec float64
	Switches           int
	SwitchesOK         int
	Thrash             int // switches reversed within one dwell window
	MeanSwitchSec      float64
	JobsSubmitted      int
	JobsCompleted      int
	SubmitFailures     int
	BrokenNodes        int
	Dropped            int // grid jobs no member could serve
	MakespanSec        float64
	Err                string
}

// metricColumns fixes the metric part of the sweep schema: names,
// order and CSV formatting. The err column stays last.
var metricColumns = []struct {
	name string
	csv  func(r SweepRow) string
	json func(r SweepRow) any
}{
	{"utilisation", func(r SweepRow) string { return fmt.Sprintf("%.6f", r.Utilisation) }, func(r SweepRow) any { return r.Utilisation }},
	{"mean_wait_linux_sec", func(r SweepRow) string { return fmt.Sprintf("%.0f", r.MeanWaitLinuxSec) }, func(r SweepRow) any { return r.MeanWaitLinuxSec }},
	{"mean_wait_windows_sec", func(r SweepRow) string { return fmt.Sprintf("%.0f", r.MeanWaitWindowsSec) }, func(r SweepRow) any { return r.MeanWaitWindowsSec }},
	{"switches", func(r SweepRow) string { return fmt.Sprintf("%d", r.Switches) }, func(r SweepRow) any { return r.Switches }},
	{"switches_ok", func(r SweepRow) string { return fmt.Sprintf("%d", r.SwitchesOK) }, func(r SweepRow) any { return r.SwitchesOK }},
	{"thrash", func(r SweepRow) string { return fmt.Sprintf("%d", r.Thrash) }, func(r SweepRow) any { return r.Thrash }},
	{"mean_switch_sec", func(r SweepRow) string { return fmt.Sprintf("%.0f", r.MeanSwitchSec) }, func(r SweepRow) any { return r.MeanSwitchSec }},
	{"jobs_submitted", func(r SweepRow) string { return fmt.Sprintf("%d", r.JobsSubmitted) }, func(r SweepRow) any { return r.JobsSubmitted }},
	{"jobs_completed", func(r SweepRow) string { return fmt.Sprintf("%d", r.JobsCompleted) }, func(r SweepRow) any { return r.JobsCompleted }},
	{"submit_failures", func(r SweepRow) string { return fmt.Sprintf("%d", r.SubmitFailures) }, func(r SweepRow) any { return r.SubmitFailures }},
	{"broken_nodes", func(r SweepRow) string { return fmt.Sprintf("%d", r.BrokenNodes) }, func(r SweepRow) any { return r.BrokenNodes }},
	{"dropped", func(r SweepRow) string { return fmt.Sprintf("%d", r.Dropped) }, func(r SweepRow) any { return r.Dropped }},
	{"makespan_sec", func(r SweepRow) string { return fmt.Sprintf("%.0f", r.MakespanSec) }, func(r SweepRow) any { return r.MakespanSec }},
}

// MarshalJSON emits the axis fields in order, then the metric
// columns, then err (omitted when empty) — the same object shape the
// pre-registry struct tags produced.
func (r SweepRow) MarshalJSON() ([]byte, error) {
	var b bytes.Buffer
	b.WriteByte('{')
	first := true
	put := func(key string, v any) error {
		enc, err := json.Marshal(v)
		if err != nil {
			return err
		}
		if !first {
			b.WriteByte(',')
		}
		first = false
		kb, _ := json.Marshal(key)
		b.Write(kb)
		b.WriteByte(':')
		b.Write(enc)
		return nil
	}
	for _, f := range r.Axes {
		if f.OmitEmptyJSON && f.Text == "" {
			continue
		}
		v := f.JSON
		if v == nil {
			v = f.Text
		}
		if err := put(f.Key, v); err != nil {
			return nil, err
		}
	}
	for _, m := range metricColumns {
		if err := put(m.name, m.json(r)); err != nil {
			return nil, err
		}
	}
	if r.Err != "" {
		if err := put("err", r.Err); err != nil {
			return nil, err
		}
	}
	b.WriteByte('}')
	return b.Bytes(), nil
}

// WriteSweepCSV writes sweep rows as CSV with a header: the first
// row's axis keys (every row of one sweep shares them), then the fixed
// metric columns, then err. Output is a pure function of the rows —
// fixed column order, fixed float formatting — so two identical sweeps
// serialise byte-identically. No rows writes nothing: without a row
// the axis schema is unknown.
func WriteSweepCSV(w io.Writer, rows []SweepRow) error {
	if len(rows) == 0 {
		return nil
	}
	cw := csv.NewWriter(w)
	header := make([]string, 0, len(rows[0].Axes)+len(metricColumns)+1)
	for _, f := range rows[0].Axes {
		header = append(header, f.Key)
	}
	for _, m := range metricColumns {
		header = append(header, m.name)
	}
	header = append(header, "err")
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("export: %w", err)
	}
	for i, r := range rows {
		// encoding/csv does not enforce record lengths, so rows off the
		// first row's axis schema would silently shift columns.
		if len(r.Axes) != len(rows[0].Axes) {
			return fmt.Errorf("export: sweep row %d carries %d axis fields, header has %d", i, len(r.Axes), len(rows[0].Axes))
		}
		rec := make([]string, 0, len(header))
		for j, f := range r.Axes {
			if f.Key != rows[0].Axes[j].Key {
				return fmt.Errorf("export: sweep row %d axis %q does not match header column %q", i, f.Key, rows[0].Axes[j].Key)
			}
			rec = append(rec, f.Text)
		}
		for _, m := range metricColumns {
			rec = append(rec, m.csv(r))
		}
		rec = append(rec, r.Err)
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("export: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteSweepJSON writes sweep rows as an indented JSON array.
func WriteSweepJSON(w io.Writer, rows []SweepRow) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}

// WriteJobsCSV writes per-job lifecycle records.
func WriteJobsCSV(w io.Writer, jobs []metrics.JobRecord) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"id", "os", "app", "cpus", "submitted_sec", "started_sec", "ended_sec", "wait_sec", "completed"}); err != nil {
		return fmt.Errorf("export: %w", err)
	}
	for _, j := range jobs {
		wait := time.Duration(0)
		if j.Completed {
			wait = j.Wait()
		}
		row := []string{
			j.ID, j.OS.String(), j.App,
			fmt.Sprintf("%d", j.CPUs),
			fmt.Sprintf("%.0f", j.Submitted.Seconds()),
			fmt.Sprintf("%.0f", j.Started.Seconds()),
			fmt.Sprintf("%.0f", j.Ended.Seconds()),
			fmt.Sprintf("%.0f", wait.Seconds()),
			fmt.Sprintf("%v", j.Completed),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("export: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteSwitchesCSV writes per-switch records.
func WriteSwitchesCSV(w io.Writer, switches []metrics.SwitchRecord) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"node", "from", "to", "started_sec", "finished_sec", "duration_sec", "ok"}); err != nil {
		return fmt.Errorf("export: %w", err)
	}
	for _, s := range switches {
		row := []string{
			s.Node, s.From.String(), s.To.String(),
			fmt.Sprintf("%.0f", s.Started.Seconds()),
			fmt.Sprintf("%.0f", s.Finished.Seconds()),
			fmt.Sprintf("%.0f", s.Duration().Seconds()),
			fmt.Sprintf("%v", s.OK),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("export: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}
