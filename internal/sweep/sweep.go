// Package sweep runs whole parameter grids of hybrid-cluster
// scenarios instead of one hand-picked run at a time. A Grid spans
// nine axes — cluster modes × controller policies × scheduler
// policies × node counts × trace shapes × boot-failure rates ×
// topologies × routing policies × switch latencies —
// and expands into concrete cells, each a self-contained
// core.Scenario: a single cluster, or a whole campus fabric of
// members behind a job router. Run executes the cells on a bounded
// worker pool and aggregates their metrics summaries into ranked
// comparison tables and flat export rows. Long-running callers (the
// internal/service daemon) observe and steer an execution through the
// Config hooks: Progress fires once per finished cell, Cached lets a
// resume supply checkpointed results without re-running their cells,
// and closing Cancel stops the sweep between cells.
//
// Every axis is one registration in the self-describing axis registry
// (registry.go): grid-spec parsing, the qsim sweep flag set, CSV/JSON
// columns and deterministic cell naming all derive from it, so adding
// an axis is one Grid field plus one registration. Experiments also
// travel as versioned, replayable JSON documents (Spec, specdoc.go)
// with LoadSpec/SaveSpec and a byte-stable canonical form.
//
// Determinism contract: every cell derives its random seeds from the
// grid coordinates alone (FNV-1a over BaseSeed plus the cell's axis
// values), never from execution order, wall clock, or worker identity.
// Seeds pair comparisons: the trace seed depends only on the trace
// axis and the cluster seed only on the environment axes (node count,
// trace, failure rate), so cells compared across the mode and policy
// treatment axes face identical job streams and RNG draws.
// Each cell builds its own simtime.Engine, its own cluster, and a
// fresh controller policy instance, so no simulation state is shared
// across workers. Results land at the cell's expansion index. The
// aggregate output of a sweep is therefore bit-identical regardless of
// worker count or completion order.
package sweep

import (
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/export"
	"repro/internal/grid"
	"repro/internal/metrics"
	"repro/internal/osid"
	"repro/internal/workload"
)

// TraceKind selects a workload generator family for one trace axis
// entry.
type TraceKind uint8

const (
	// TracePoisson draws the mixed campus workload (the default).
	TracePoisson TraceKind = iota
	// TracePhased generates the alternating wide-job demand phases.
	TracePhased
	// TraceMatlabGA replays the §IV-B MATLAB-MDCS case study.
	TraceMatlabGA
	// TraceDiurnal draws the day/night campus pattern: submission
	// rates peak in working hours and fall overnight.
	TraceDiurnal
	// TraceBurst lays recurring Windows render-farm bursts over a
	// steady Linux background — the sharpest demand oscillation in the
	// suite, the shape the anti-thrash policies are judged on.
	TraceBurst
	// TraceMMPP draws a two-state Markov-modulated Poisson process:
	// the arrival rate flips between the axis rate and a burst
	// multiple of it, with exponential dwell times.
	TraceMMPP
	// TraceUsers draws the closed interactive user-population model: N
	// simulated users submitting with think times, the offered load
	// self-limiting the way real user populations do.
	TraceUsers
	// TraceSWF replays a Standard Workload Format log (the Parallel
	// Workloads Archive format). The axis value carries the file:
	// "swf:<path>".
	TraceSWF
)

// String names the kind.
func (k TraceKind) String() string {
	switch k {
	case TracePhased:
		return "phased"
	case TraceMatlabGA:
		return "matlabga"
	case TraceDiurnal:
		return "diurnal"
	case TraceBurst:
		return "burst"
	case TraceMMPP:
		return "mmpp"
	case TraceUsers:
		return "users"
	case TraceSWF:
		return "swf"
	default:
		return "poisson"
	}
}

// TraceSpec is one point on the trace-shape axis. The zero value is a
// 24-hour Poisson trace at 4 jobs/hour with a 30% Windows share.
type TraceSpec struct {
	// Name labels the shape in cell names and tables; when empty a
	// name is derived from the parameters.
	Name string
	Kind TraceKind
	// Poisson / phased shape parameters.
	JobsPerHour float64       // default 4 (poisson)
	WindowsFrac float64       // Windows share of jobs (poisson) or phases (phased)
	Duration    time.Duration // submission window, default 24h (poisson)
	MaxNodes    int           // job width cap, default 4 (poisson)
	Phases      int           // default 8 (phased)

	// SWF replay parameters (kind swf). SWFFile is the log path —
	// relative paths in committed spec documents are repo-root
	// relative and resolved against the working directory and then its
	// ancestors. The remaining fields mirror workload.SWFConfig:
	// MaxJobs/Window truncation, node-count rescale, and the
	// requested-vs-used runtime choice.
	SWFFile         string
	SWFMaxJobs      int           // keep only the first N records (0 = all)
	SWFWindow       time.Duration // keep only the first window of submissions (0 = all)
	SWFTargetNodes  int           // rescale the widest job to this many nodes (0 = keep)
	SWFUseRequested bool          // prefer requested over used runtimes

	// MMPP parameters (kind mmpp): the burst-state rate is
	// JobsPerHour × MMPPBurst (default 10), with mean state dwell
	// MMPPDwell (default 1h).
	MMPPBurst float64
	MMPPDwell time.Duration

	// User-population parameters (kind users): Users simulated users
	// (default 500) with mean think time Think (default 2h).
	// JobsPerHour does not apply — the population size sets the load.
	Users int
	Think time.Duration

	// Custom, when non-nil, overrides Kind entirely: the sweep calls
	// it with the cell's trace seed. Experiments use this to fan
	// bespoke traces through the grid machinery.
	Custom func(seed int64) workload.Trace
}

// Defaults for the heavy-traffic trace parameters; values the derived
// names omit, so explicitly setting a default is behaviour- and
// name-identical to leaving the field zero.
const (
	defaultMMPPBurst = 10.0
	defaultMMPPDwell = time.Hour
	defaultUsers     = 500
	defaultThink     = 2 * time.Hour
)

func (t TraceSpec) withDefaults() TraceSpec {
	if t.JobsPerHour <= 0 {
		t.JobsPerHour = 4
	}
	if t.Duration <= 0 {
		t.Duration = 24 * time.Hour
	}
	if t.MaxNodes <= 0 {
		t.MaxNodes = 4
	}
	if t.Phases <= 0 {
		t.Phases = 8
	}
	if t.MMPPBurst <= 0 {
		t.MMPPBurst = defaultMMPPBurst
	}
	if t.MMPPDwell <= 0 {
		t.MMPPDwell = defaultMMPPDwell
	}
	if t.Users <= 0 {
		t.Users = defaultUsers
	}
	if t.Think <= 0 {
		t.Think = defaultThink
	}
	if t.Name == "" {
		// %g keeps derived names lossless: distinct parameters must
		// never collide, because the name keys both the trace seed and
		// the spec parser's dedup.
		switch {
		case t.Custom != nil:
			t.Name = "custom"
		case t.Kind == TracePhased:
			t.Name = fmt.Sprintf("phased-w%g", t.WindowsFrac)
		case t.Kind == TraceMatlabGA:
			t.Name = "matlabga"
		case t.Kind == TraceDiurnal:
			t.Name = fmt.Sprintf("diurnal-%gjph-w%g", t.JobsPerHour, t.WindowsFrac)
		case t.Kind == TraceBurst:
			// The burst shape fixes its Windows share by construction,
			// so the name ignores WindowsFrac — crossing it with the
			// winfracs axis dedups instead of duplicating cells.
			t.Name = fmt.Sprintf("burst-%gjph", t.JobsPerHour)
		case t.Kind == TraceMMPP:
			t.Name = fmt.Sprintf("mmpp-%gjph-w%g", t.JobsPerHour, t.WindowsFrac)
			if t.MMPPBurst != defaultMMPPBurst {
				t.Name += fmt.Sprintf("-b%g", t.MMPPBurst)
			}
			if t.MMPPDwell != defaultMMPPDwell {
				t.Name += "-d" + t.MMPPDwell.String()
			}
		case t.Kind == TraceUsers:
			// The population size, not the rate axis, sets the load, so
			// the name ignores JobsPerHour — crossing with the rates
			// axis dedups instead of duplicating cells.
			t.Name = fmt.Sprintf("users%d-w%g", t.Users, t.WindowsFrac)
			if t.Think != defaultThink {
				t.Name += "-t" + t.Think.String()
			}
		case t.Kind == TraceSWF:
			// Like every derived name this one is lossless over the
			// parameters that shape the trace: distinct truncation,
			// rescale or runtime choices must never collide, because
			// the name keys the trace seed and the parser's dedup.
			// (Rate and submission window do not apply to a replay.)
			t.Name = "swf-" + swfNameBase(t.SWFFile) + fmt.Sprintf("-w%g", t.WindowsFrac)
			if t.SWFMaxJobs > 0 {
				t.Name += fmt.Sprintf("-j%d", t.SWFMaxJobs)
			}
			if t.SWFWindow > 0 {
				t.Name += fmt.Sprintf("-h%g", t.SWFWindow.Hours())
			}
			if t.SWFTargetNodes > 0 {
				t.Name += fmt.Sprintf("-n%d", t.SWFTargetNodes)
			}
			if t.SWFUseRequested {
				t.Name += "-req"
			}
		default:
			t.Name = fmt.Sprintf("poisson-%gjph-w%g", t.JobsPerHour, t.WindowsFrac)
		}
	}
	return t
}

// swfNameBase derives the trace-name stem from an SWF path: the
// basename without its extension, any character outside [a-zA-Z0-9._-]
// replaced so the name stays safe in cell names and CSV.
func swfNameBase(path string) string {
	base := filepath.Base(path)
	base = strings.TrimSuffix(base, filepath.Ext(base))
	if base == "" || base == "." || base == string(filepath.Separator) {
		return "log"
	}
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			return r
		default:
			return '-'
		}
	}, base)
}

// resolveTracePath finds a trace file: the path as given, or — when it
// is relative and missing — the same path against each ancestor
// directory. Committed spec documents carry repo-root-relative paths
// ("specs/sample.swf"), so replays keep working from package test
// directories and nested working directories alike. When nothing
// matches, the original path is returned so the open error names it.
func resolveTracePath(path string) string {
	if filepath.IsAbs(path) {
		return path
	}
	if _, err := os.Stat(path); err == nil {
		return path
	}
	dir, err := os.Getwd()
	if err != nil {
		return path
	}
	for {
		parent := filepath.Dir(dir)
		if parent == dir {
			return path
		}
		dir = parent
		if cand := filepath.Join(dir, path); fileExists(cand) {
			return cand
		}
	}
}

func fileExists(path string) bool {
	fi, err := os.Stat(path)
	return err == nil && !fi.IsDir()
}

// Build materialises the trace with the given seed. Cells sharing a
// TraceSpec receive the same seed, so every mode/policy/failure-rate
// variant replays the identical job stream — comparisons are paired.
// The error path exists for the file-backed kinds (swf): the synthetic
// generators cannot fail.
func (t TraceSpec) Build(seed int64) (workload.Trace, error) {
	t = t.withDefaults()
	if t.Custom != nil {
		return t.Custom(seed), nil
	}
	switch t.Kind {
	case TracePhased:
		return workload.PhasedWideMix(workload.PhasedConfig{
			Seed: seed, Phases: t.Phases, WindowsFrac: t.WindowsFrac,
		}), nil
	case TraceMatlabGA:
		return workload.MatlabGACase(seed), nil
	case TraceDiurnal:
		days := int(t.Duration / (24 * time.Hour))
		if days < 1 {
			days = 1
		}
		return workload.Diurnal(workload.DiurnalConfig{
			Seed: seed, Days: days, PeakPerHour: t.JobsPerHour,
			WindowsFrac: t.WindowsFrac, MaxNodes: t.MaxNodes,
		}), nil
	case TraceBurst:
		// Render-farm bursts every six hours over a Linux-only Poisson
		// background at half the axis rate: demand that swings hard to
		// Windows and back, four times a day.
		lin := workload.Poisson(workload.PoissonConfig{
			Seed: seed, Duration: t.Duration, JobsPerHour: t.JobsPerHour / 2,
			WindowsFrac: 0, MaxNodes: t.MaxNodes,
		})
		var bursts workload.Trace
		for start := time.Duration(0); start < t.Duration; start += 6 * time.Hour {
			bursts = append(bursts, workload.Burst(workload.BurstConfig{
				Start: start, Jobs: 4, Gap: 2 * time.Minute, App: "Backburner",
				OS: osid.Windows, Nodes: 2, PPN: 4,
				Runtime: 45 * time.Minute, Owner: "render",
			})...)
		}
		return workload.Merge(lin, bursts), nil
	case TraceMMPP:
		return workload.MMPP(workload.MMPPConfig{
			Seed: seed, Duration: t.Duration, BaseRate: t.JobsPerHour,
			BurstFactor: t.MMPPBurst, MeanDwell: t.MMPPDwell,
			WindowsFrac: t.WindowsFrac, MaxNodes: t.MaxNodes,
		}), nil
	case TraceUsers:
		return workload.UserPopulation(workload.UserPopulationConfig{
			Seed: seed, Users: t.Users, Duration: t.Duration,
			MeanThink: t.Think, WindowsFrac: t.WindowsFrac, MaxNodes: t.MaxNodes,
		}), nil
	case TraceSWF:
		if t.SWFFile == "" {
			return nil, fmt.Errorf("sweep: trace %q: swf kind needs a file", t.Name)
		}
		tr, _, err := workload.ReadSWFFile(resolveTracePath(t.SWFFile), workload.SWFConfig{
			Seed: seed, WindowsFrac: t.WindowsFrac,
			MaxJobs: t.SWFMaxJobs, Window: t.SWFWindow,
			TargetNodes: t.SWFTargetNodes, UseRequested: t.SWFUseRequested,
		})
		if err != nil {
			return nil, fmt.Errorf("sweep: trace %q: %w", t.Name, err)
		}
		return tr, nil
	default:
		return workload.Poisson(workload.PoissonConfig{
			Seed: seed, Duration: t.Duration, JobsPerHour: t.JobsPerHour,
			WindowsFrac: t.WindowsFrac, MaxNodes: t.MaxNodes,
		}), nil
	}
}

// PolicySpec is one point on the controller-policy axis. New must
// return a fresh instance on every call: policies such as Hysteresis
// and Predictive carry mutable state, and sharing one instance across
// concurrently running cells would be both a data race and a
// determinism leak.
type PolicySpec struct {
	Name string
	New  func() controller.Policy
}

// DefaultPolicies returns the controller registry's policy
// constructors as sweep axis points — the vocabulary the CLI and
// grid-spec parser understand.
func DefaultPolicies() []PolicySpec {
	fs := controller.Factories()
	out := make([]PolicySpec, len(fs))
	for i, f := range fs {
		out[i] = PolicySpec{Name: f.Name, New: f.New}
	}
	return out
}

// PolicyByName resolves a policy constructor through the controller
// registry. Unknown names error with the full valid set — no parse
// boundary accepts a misspelled policy silently.
func PolicyByName(name string) (PolicySpec, error) {
	for _, f := range controller.Factories() {
		if f.Name == name {
			return PolicySpec{Name: f.Name, New: f.New}, nil
		}
	}
	return PolicySpec{}, fmt.Errorf("sweep: unknown controller policy %q (valid: %s)",
		name, strings.Join(controller.PolicyNames(), " | "))
}

// Split selects a topology member's initial OS split.
type Split uint8

const (
	// SplitHalf boots half the nodes into Linux (the cluster default).
	SplitHalf Split = iota
	// SplitAllLinux boots every node into Linux (a Linux-only static).
	SplitAllLinux
	// SplitAllWindows boots every node into Windows.
	SplitAllWindows
)

// TopologyMember describes one member cluster of a topology axis
// point, relative to the cell it lands in: zero Nodes inherits the
// cell's node count, and Inherit follows the cell's mode axis — so
// crossing a campus topology with the mode axis flips its flexible
// members between organisations while the pinned statics stand still.
type TopologyMember struct {
	Name string
	// Mode pins the member's organisation; ignored when Inherit is
	// set, in which case the member takes the cell's mode.
	Mode    cluster.Mode
	Inherit bool
	// Nodes overrides the cell's node count (0 = inherit).
	Nodes int
	// Split selects the member's initial OS split.
	Split Split
}

// TopologySpec is one point on the topology axis. No members means a
// single cluster — the classic sweep path.
type TopologySpec struct {
	// Name keys the cell's derived seeds and its display name.
	Name    string
	Members []TopologyMember
}

// IsGrid reports whether the topology expands into a campus fabric.
func (t TopologySpec) IsGrid() bool { return len(t.Members) > 0 }

func (t TopologySpec) withDefaults() TopologySpec {
	if t.Name == "" {
		if len(t.Members) == 0 {
			t.Name = "single"
		} else {
			t.Name = fmt.Sprintf("grid%d", len(t.Members))
		}
	}
	return t
}

// DefaultTopologies returns the named topology presets the CLI and
// grid-spec parser understand: the single cluster, the Queensgate-like
// campus (a flexible member between a Linux-only and a Windows-only
// static), and a twin-hybrid pair.
func DefaultTopologies() []TopologySpec {
	return []TopologySpec{
		{Name: "single"},
		{Name: "campus", Members: []TopologyMember{
			{Name: "eridani", Inherit: true},
			{Name: "tauceti", Mode: cluster.Static, Split: SplitAllLinux},
			{Name: "vega", Mode: cluster.Static, Split: SplitAllWindows},
		}},
		{Name: "twin-hybrid", Members: []TopologyMember{
			{Name: "eridani", Inherit: true},
			{Name: "altair", Inherit: true},
		}},
	}
}

// TopologyByName finds a default topology preset; unknown names error
// with the valid set.
func TopologyByName(name string) (TopologySpec, error) {
	presets := DefaultTopologies()
	valid := make([]string, len(presets))
	for i, t := range presets {
		if t.Name == name {
			return t, nil
		}
		valid[i] = t.Name
	}
	return TopologySpec{}, fmt.Errorf("sweep: unknown topology %q (valid: %s)",
		name, strings.Join(valid, " | "))
}

// Grid spans the scenario space to sweep. Empty axes collapse to a
// single default point, so the zero Grid is one hybrid-v2 FCFS cell.
type Grid struct {
	Modes    []cluster.Mode
	Policies []PolicySpec
	// SchedPolicies is the head-scheduler discipline axis (fcfs |
	// backfill). Like the controller policy it is a treatment axis:
	// every variant of a cell faces identical seeds and job streams.
	SchedPolicies []cluster.SchedPolicy
	NodeCounts    []int
	Traces        []TraceSpec
	FailureRates  []float64 // per-boot probability of a node breaking
	// Topologies spans single clusters and campus fabrics; empty means
	// the single cluster only.
	Topologies []TopologySpec
	// Routings is the campus router's policy axis. It only multiplies
	// grid topologies: single-cluster cells have no router, so they
	// expand against the first routing alone instead of duplicating.
	Routings []grid.RoutingPolicy
	// SwitchLatencies is the per-cell OS switch-latency axis: each
	// value scales the boot-latency model so the planning estimate for
	// a switch to Windows hits the target (see SwitchLatencyModel).
	// Zero keeps the stock model. A treatment axis: every latency
	// variant of a cell replays identical seeds and job streams.
	SwitchLatencies []time.Duration

	// BaseSeed perturbs every derived seed; two sweeps with different
	// BaseSeeds are independent replications of the same grid.
	BaseSeed int64
	// Cycle is the controller reporting interval for every cell
	// (default 5m).
	Cycle time.Duration
	// InitialLinux is the number of nodes booted into Linux at time
	// zero in every cell (0 = half; clamped to the cell's node count
	// by the cluster defaults).
	InitialLinux int
	// Horizon bounds each cell's virtual time (default: trace span +
	// 48h, as core.Run).
	Horizon time.Duration
}

func (g Grid) withDefaults() Grid {
	if len(g.Modes) == 0 {
		g.Modes = []cluster.Mode{cluster.HybridV2}
	}
	if len(g.Policies) == 0 {
		g.Policies = []PolicySpec{{"fcfs", nil}} // nil: manager default (FCFS)
	}
	if len(g.SchedPolicies) == 0 {
		g.SchedPolicies = []cluster.SchedPolicy{cluster.SchedFCFS}
	}
	if len(g.NodeCounts) == 0 {
		g.NodeCounts = []int{16}
	}
	// Normalise into a fresh slice: withDefaults has value-receiver
	// semantics, so the caller's Grid must not be written through.
	src := g.Traces
	if len(src) == 0 {
		src = []TraceSpec{{}}
	}
	traces := make([]TraceSpec, len(src))
	counts := map[string]int{}
	for i, t := range src {
		traces[i] = t.withDefaults()
		// Names key both the trace seed and result lookups, so they
		// must be unique; duplicates (e.g. several unnamed Custom
		// traces) get a deterministic position suffix.
		counts[traces[i].Name]++
		if n := counts[traces[i].Name]; n > 1 {
			traces[i].Name = fmt.Sprintf("%s#%d", traces[i].Name, n)
		}
	}
	g.Traces = traces
	if len(g.FailureRates) == 0 {
		g.FailureRates = []float64{0}
	}
	topos := g.Topologies
	if len(topos) == 0 {
		topos = []TopologySpec{{}}
	}
	g.Topologies = make([]TopologySpec, len(topos))
	for i, t := range topos {
		g.Topologies[i] = t.withDefaults()
	}
	if len(g.Routings) == 0 {
		g.Routings = []grid.RoutingPolicy{grid.RouteLeastLoaded}
	}
	if g.Cycle <= 0 {
		g.Cycle = 5 * time.Minute
	}
	// Axes registered with their own default hook (the registry-era
	// axes) fill themselves in; the hook must not write through to the
	// caller's slices, which the nil-check-then-assign pattern honours.
	for _, ax := range registry {
		if ax.Defaults != nil {
			ax.Defaults(&g)
		}
	}
	return g
}

// Cell is one concrete point of the grid: a scenario plus the seeds
// derived from its coordinates.
type Cell struct {
	Index  int // position in expansion order
	Mode   cluster.Mode
	Policy PolicySpec
	// Sched is the head schedulers' queue discipline (fcfs|backfill).
	Sched       cluster.SchedPolicy
	Nodes       int
	Trace       TraceSpec
	FailureRate float64
	// Topology and Routing place the cell on the fabric axes; a
	// single-cluster cell carries the "single" topology and the grid's
	// first routing (which it never uses).
	Topology TopologySpec
	Routing  grid.RoutingPolicy
	// SwitchLat is the cell's OS switch-latency target (0 = stock
	// boot-latency model).
	SwitchLat time.Duration

	// Seed drives the cell's cluster (boot jitter, failure draws). It
	// is derived from the environment axes only — node count, trace
	// shape, failure rate — never from mode or policy, so cells
	// compared across those treatment axes share their RNG stream
	// exactly as core.CompareModes runs every mode on one seed.
	Seed int64
	// TraceSeed drives the workload generator. It depends only on the
	// trace axis, so cells differing in mode, policy, node count or
	// failure rate replay the identical trace.
	TraceSeed int64

	cycle        time.Duration
	horizon      time.Duration
	initialLinux int
}

// Name renders the cell's coordinates as a stable slash-joined label,
// derived from the axis registry: every axis contributes its segment
// (or withholds it at its default), ordered by the registrations'
// NameOrder. Single-cluster FCFS cells keep the classic five-segment
// form; backfill cells append the scheduler-policy segment, grid cells
// their topology and routing coordinates, and scaled-latency cells an
// "sl<duration>" segment.
func (c Cell) Name() string {
	type seg struct {
		order, reg int
		text       string
	}
	var segs []seg
	for i, ax := range registry {
		if ax.Segment == nil {
			continue
		}
		if s := ax.Segment(c); s != "" {
			segs = append(segs, seg{ax.NameOrder, i, s})
		}
	}
	sort.Slice(segs, func(i, j int) bool {
		if segs[i].order != segs[j].order {
			return segs[i].order < segs[j].order
		}
		return segs[i].reg < segs[j].reg
	})
	parts := make([]string, len(segs))
	for i, s := range segs {
		parts[i] = s.text
	}
	return strings.Join(parts, "/")
}

// Scenario materialises the cell into a runnable core.Scenario. Grid
// cells expand their topology into concrete member configs: each
// member derives its seed from the cell seed and its own name (so
// members draw independent RNG streams that are still pure functions
// of the grid coordinates) and gets a fresh policy instance. The error
// comes from trace materialisation (file-backed kinds).
func (c Cell) Scenario() (core.Scenario, error) {
	trace, err := c.Trace.Build(c.TraceSeed)
	if err != nil {
		return core.Scenario{}, err
	}
	sc := core.Scenario{
		Name:        c.Name(),
		Trace:       trace,
		Horizon:     c.horizon,
		SchedPolicy: c.Sched,
	}
	if !c.Topology.IsGrid() {
		sc.Cluster = cluster.Config{
			Mode:            c.Mode,
			Nodes:           c.Nodes,
			InitialLinux:    c.initialLinux,
			Cycle:           c.cycle,
			Policy:          c.newPolicy(),
			SchedPolicy:     c.Sched,
			Seed:            c.Seed,
			BootFailureProb: c.FailureRate,
		}
		return c.configure(sc), nil
	}
	// Grid runs read only the mode from the root config (for
	// Result.Mode); the members below carry the real configurations.
	sc.Cluster.Mode = c.Mode
	members := make([]grid.MemberSpec, 0, len(c.Topology.Members))
	for _, m := range c.Topology.Members {
		mode := m.Mode
		if m.Inherit {
			mode = c.Mode
		}
		nodes := m.Nodes
		if nodes <= 0 {
			nodes = c.Nodes
		}
		initialLinux := 0 // half
		switch m.Split {
		case SplitAllLinux:
			initialLinux = nodes
		case SplitAllWindows:
			initialLinux = -1
		}
		members = append(members, grid.MemberSpec{
			Name: m.Name,
			Config: cluster.Config{
				Mode:            mode,
				Nodes:           nodes,
				InitialLinux:    initialLinux,
				Cycle:           c.cycle,
				Policy:          c.newPolicy(),
				SchedPolicy:     c.Sched,
				Seed:            deriveSeed(c.Seed, "member", m.Name),
				BootFailureProb: c.FailureRate,
			},
		})
	}
	sc.Topology = core.Topology{Routing: c.Routing, Members: members}
	return c.configure(sc), nil
}

// configure lets registry axes that act through core.Scenario fields
// (switchlat sets Scenario.Latency) apply themselves — the cell
// materialiser stays axis-agnostic.
func (c Cell) configure(sc core.Scenario) core.Scenario {
	for _, ax := range registry {
		if ax.Configure != nil {
			ax.Configure(c, &sc)
		}
	}
	return sc
}

// newPolicy builds a fresh controller policy instance — one per
// cluster, never shared (policies carry mutable state).
func (c Cell) newPolicy() controller.Policy {
	if c.Policy.New != nil {
		return c.Policy.New()
	}
	return nil
}

// deriveSeed hashes coordinate strings into a seed with FNV-1a.
// Deterministic across runs, platforms and Go versions.
func deriveSeed(base int64, parts ...string) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d", base)
	for _, p := range parts {
		h.Write([]byte{0})
		h.Write([]byte(p))
	}
	return int64(h.Sum64() &^ (1 << 63)) // keep it non-negative
}

// Expand enumerates every cell by nesting the registry's expandable
// axes in registration order: mode (outermost), controller policy,
// scheduler policy, node count, trace shape, failure rate, topology,
// routing, switch latency (innermost). Single-cluster topologies have
// no router, so they expand against the first routing only instead of
// duplicating cells.
//
// Seed pairing is a registry property: axes registered with an Env
// contribution (node count, trace, failure rate, topology — a campus
// fabric is a different machine, so it draws its own cluster seed,
// while single-cluster cells keep their historical seeds) key the
// cluster seed; every other axis is a treatment axis whose variants
// face identical RNG draws and replay the identical trace.
func (g Grid) Expand() []Cell {
	g = g.withDefaults()
	var axes []*Axis
	for _, ax := range registry {
		if ax.Points != nil {
			axes = append(axes, ax)
		}
	}
	var cells []Cell
	var rec func(depth int, c Cell)
	rec = func(depth int, c Cell) {
		if depth == len(axes) {
			c.Index = len(cells)
			envParts := []string{"cluster"}
			for _, ax := range axes {
				if ax.Env == nil {
					continue
				}
				if part := ax.Env(c); part != "" {
					envParts = append(envParts, part)
				}
			}
			c.Seed = deriveSeed(g.BaseSeed, envParts...)
			c.TraceSeed = deriveSeed(g.BaseSeed, "trace", c.Trace.Name)
			c.cycle = g.Cycle
			c.horizon = g.Horizon
			c.initialLinux = g.InitialLinux
			cells = append(cells, c)
			return
		}
		ax := axes[depth]
		for i := 0; i < ax.Points(g, c); i++ {
			next := c
			ax.Apply(g, &next, i)
			rec(depth+1, next)
		}
	}
	rec(0, Cell{})
	return cells
}

// ErrCanceled marks the cells a canceled sweep never ran: when
// Config.Cancel is closed mid-sweep, every cell not yet started lands
// in the outcome with this error instead of a result.
var ErrCanceled = errors.New("sweep: canceled")

// Config configures one sweep execution.
type Config struct {
	Grid Grid
	// Workers bounds concurrent cell runs (default 4). Each worker
	// owns the engine of whichever cell it is running; workers share
	// nothing but the work queue and the result slots.
	Workers int

	// Progress, when non-nil, is called once per finished cell — run
	// or supplied by Cached, never canceled — as results land. Calls
	// are serialised (never concurrent) but arrive in completion
	// order, which depends on worker scheduling; the determinism
	// contract covers the returned Outcome, not the progress stream.
	// The service layer hangs its per-cell checkpoints and live event
	// stream off this hook.
	Progress func(CellResult)
	// Cached, when non-nil, is consulted before running each cell: a
	// true return supplies the cell's result without running it (the
	// service's crash-recovery resume replays checkpointed cells this
	// way). Run overwrites the supplied result's Cell field with the
	// expanded cell, and reports it through Progress like any other
	// completion. Unlike Progress, calls may be concurrent — each
	// worker consults the hook itself — so implementations must be
	// safe for concurrent use.
	Cached func(Cell) (CellResult, bool)
	// Cancel, when non-nil, stops the sweep between cells once
	// closed: cells not yet started finish as Err == ErrCanceled,
	// while cells already running complete normally (and still reach
	// Progress, so their checkpoints land before the caller shuts
	// down).
	Cancel <-chan struct{}
}

// CellResult pairs a cell with its outcome. Err is non-nil when the
// scenario failed to run; the sweep continues past failed cells.
type CellResult struct {
	Cell Cell
	Res  core.Result
	Err  error
}

// Outcome aggregates a completed sweep. Results is in expansion order.
type Outcome struct {
	Results []CellResult
}

// Run expands the grid and executes every cell on a bounded worker
// pool. The outcome is deterministic in the sense documented on the
// package: identical for any Workers value.
func Run(cfg Config) (*Outcome, error) {
	cells := cfg.Grid.Expand()
	if len(cells) == 0 {
		return nil, fmt.Errorf("sweep: empty grid")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 4
	}
	if workers > len(cells) {
		workers = len(cells)
	}

	results := make([]CellResult, len(cells))
	// Progress calls are serialised under one mutex so the hook never
	// races with itself — completion order still depends on worker
	// scheduling.
	var progressMu sync.Mutex
	report := func(r CellResult) {
		if cfg.Progress == nil {
			return
		}
		progressMu.Lock()
		cfg.Progress(r)
		progressMu.Unlock()
	}
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				if cfg.Cancel != nil {
					select {
					case <-cfg.Cancel:
						results[i] = CellResult{Cell: cells[i], Err: ErrCanceled}
						continue
					default:
					}
				}
				if cfg.Cached != nil {
					if r, ok := cfg.Cached(cells[i]); ok {
						r.Cell = cells[i]
						results[i] = r
						report(results[i])
						continue
					}
				}
				// Scenario() builds a private engine, cluster and
				// policy instance per cell; the only shared write is
				// this cell's own result slot.
				sc, err := cells[i].Scenario()
				if err != nil {
					results[i] = CellResult{Cell: cells[i], Err: err}
					report(results[i])
					continue
				}
				res, err := core.Run(sc)
				results[i] = CellResult{Cell: cells[i], Res: res, Err: err}
				report(results[i])
			}
		}()
	}
	for i := range cells {
		work <- i
	}
	close(work)
	wg.Wait()
	return &Outcome{Results: results}, nil
}

// Select returns the results whose cells satisfy pred, in expansion
// order.
func (o *Outcome) Select(pred func(Cell) bool) []CellResult {
	var out []CellResult
	for _, r := range o.Results {
		if pred(r.Cell) {
			out = append(out, r)
		}
	}
	return out
}

// Errs returns the failed cells.
func (o *Outcome) Errs() []CellResult {
	var out []CellResult
	for _, r := range o.Results {
		if r.Err != nil {
			out = append(out, r)
		}
	}
	return out
}

// Ranked orders results best-first: by utilisation, then completed
// jobs, with the expansion index as the final tie-break so the order
// is total and reproducible. Failed cells sink to the bottom.
func (o *Outcome) Ranked() []CellResult {
	out := append([]CellResult(nil), o.Results...)
	sort.SliceStable(out, func(i, j int) bool {
		if (out[i].Err == nil) != (out[j].Err == nil) {
			return out[i].Err == nil
		}
		si, sj := out[i].Res.Summary, out[j].Res.Summary
		if si.Utilisation != sj.Utilisation {
			return si.Utilisation > sj.Utilisation
		}
		ci := si.JobsCompleted[osid.Linux] + si.JobsCompleted[osid.Windows]
		cj := sj.JobsCompleted[osid.Linux] + sj.JobsCompleted[osid.Windows]
		if ci != cj {
			return ci > cj
		}
		return out[i].Cell.Index < out[j].Cell.Index
	})
	return out
}

// Header matches the rows of Table.
func Header() []string {
	return []string{"rank", "cell", "util", "wait(L)", "wait(W)", "switches", "broken", "done/subm"}
}

// Row renders one ranked result.
func Row(rank int, r CellResult) []string {
	if r.Err != nil {
		return []string{fmt.Sprintf("%d", rank), r.Cell.Name(), "-", "-", "-", "-", "-", "error: " + r.Err.Error()}
	}
	s := r.Res.Summary
	done := s.JobsCompleted[osid.Linux] + s.JobsCompleted[osid.Windows]
	subm := s.JobsSubmitted[osid.Linux] + s.JobsSubmitted[osid.Windows]
	return []string{
		fmt.Sprintf("%d", rank),
		r.Cell.Name(),
		metrics.Pct(s.Utilisation),
		metrics.Dur(s.MeanWait[osid.Linux]),
		metrics.Dur(s.MeanWait[osid.Windows]),
		fmt.Sprintf("%d", s.Switches),
		fmt.Sprintf("%d", r.Res.BrokenNodes),
		fmt.Sprintf("%d/%d", done, subm),
	}
}

// Table renders the ranked comparison table.
func (o *Outcome) Table() string {
	ranked := o.Ranked()
	rows := make([][]string, len(ranked))
	for i, r := range ranked {
		rows[i] = Row(i+1, r)
	}
	return metrics.Table(Header(), rows)
}

// AxisFields renders a cell's axis coordinates as ordered export
// fields, derived from the registry: the cell name first, then one
// field per axis column. Optional columns (switchlat) appear only when
// active is true for them, so grids that never touch a new axis
// serialise exactly as they did before the axis existed.
func axisFields(c Cell, active map[string]bool) []export.Field {
	fields := []export.Field{{Key: "cell", Text: c.Name(), JSON: c.Name()}}
	for _, ax := range registry {
		if ax.Column == "" {
			continue
		}
		if ax.ColumnOptional && !active[ax.Column] {
			continue
		}
		text, js := ax.Col(c)
		fields = append(fields, export.Field{Key: ax.Column, Text: text, JSON: js, OmitEmptyJSON: ax.OmitEmptyJSON})
	}
	return fields
}

// activeColumns reports which optional axis columns any cell switches
// on.
func (o *Outcome) activeColumns() map[string]bool {
	active := map[string]bool{}
	for _, ax := range registry {
		if ax.Column == "" || !ax.ColumnOptional {
			continue
		}
		for _, r := range o.Results {
			if ax.ColumnActive(r.Cell) {
				active[ax.Column] = true
				break
			}
		}
	}
	return active
}

// Rows flattens the outcome (in expansion order) for CSV/JSON export.
// The axis columns — names, order and values — derive from the axis
// registry; export only supplies the metric columns.
func (o *Outcome) Rows() []export.SweepRow {
	active := o.activeColumns()
	rows := make([]export.SweepRow, len(o.Results))
	for i, r := range o.Results {
		row := export.SweepRow{Axes: axisFields(r.Cell, active)}
		if r.Err != nil {
			row.Err = r.Err.Error()
		} else {
			s := r.Res.Summary
			row.Utilisation = s.Utilisation
			row.MeanWaitLinuxSec = s.MeanWait[osid.Linux].Seconds()
			row.MeanWaitWindowsSec = s.MeanWait[osid.Windows].Seconds()
			row.Switches = s.Switches
			row.SwitchesOK = s.SwitchesOK
			row.Thrash = r.Res.Thrash
			row.MeanSwitchSec = s.MeanSwitch.Seconds()
			row.JobsSubmitted = s.JobsSubmitted[osid.Linux] + s.JobsSubmitted[osid.Windows]
			row.JobsCompleted = s.JobsCompleted[osid.Linux] + s.JobsCompleted[osid.Windows]
			row.SubmitFailures = s.SubmitFailures
			row.BrokenNodes = r.Res.BrokenNodes
			row.Dropped = r.Res.Dropped
			row.MakespanSec = s.Makespan.Seconds()
		}
		rows[i] = row
	}
	return rows
}

// Describe summarises the grid axes ("2 modes × ... = 24 cells"),
// with both the axis labels and the cell count derived from the
// registry. Quiet axes (switchlat) appear only when actually swept, so
// pre-registry grids keep their historical description.
func (g Grid) Describe() string {
	gd := g.withDefaults()
	var axes []*Axis
	var parts []string
	for _, ax := range registry {
		if ax.Points == nil {
			continue
		}
		axes = append(axes, ax)
		if ax.Plural == "" {
			continue
		}
		// The routing axis's per-cell collapse does not change how
		// many points the axis itself holds, so a grid-shaped probe
		// cell reads the full axis length.
		n := ax.Points(gd, Cell{Topology: TopologySpec{Members: []TopologyMember{{}}}})
		if ax.Quiet && n <= 1 {
			continue
		}
		parts = append(parts, fmt.Sprintf("%d %s", n, ax.Plural))
	}
	// Count by mirroring Expand's nesting without materialising cells
	// or deriving seeds — the collapse rules (single topologies take
	// one routing) come from the same Points functions.
	var count func(depth int, c Cell) int
	count = func(depth int, c Cell) int {
		if depth == len(axes) {
			return 1
		}
		ax := axes[depth]
		total := 0
		for i := 0; i < ax.Points(gd, c); i++ {
			next := c
			ax.Apply(gd, &next, i)
			total += count(depth+1, next)
		}
		return total
	}
	return fmt.Sprintf("%s = %d cells", strings.Join(parts, " × "), count(0, Cell{}))
}
