package service

import (
	"fmt"
	"path/filepath"
	"strings"

	"repro/internal/sweep"
)

// CheckSpecPaths vets every filesystem path a served spec references.
// The CLI trusts its operator; the service does not — a submitted
// document naming an SWF log must stay inside the server's working
// tree. Absolute paths and any ".." segment are rejected, closing the
// classic traversal routes (/etc/passwd, ../../secrets) while leaving
// the committed relative layouts (specs/pwa_sample_1k.swf) usable.
func CheckSpecPaths(sp sweep.Spec) error {
	for _, t := range sp.Grid.Traces {
		if t.Kind != sweep.TraceSWF || t.SWFFile == "" {
			continue
		}
		p := t.SWFFile
		if filepath.IsAbs(p) {
			return fmt.Errorf("service: swf trace file %q: absolute paths are not served", p)
		}
		for _, seg := range strings.Split(filepath.ToSlash(p), "/") {
			if seg == ".." {
				return fmt.Errorf("service: swf trace file %q: path may not traverse outside the working tree", p)
			}
		}
	}
	return nil
}
