package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"repro/internal/export"
	"repro/internal/sweep"
)

// testSpec is a deliberately tiny two-cell sweep so the end-to-end
// tests finish in well under a second.
const testSpec = `{
  "spec_version": 1,
  "name": "service test sweep",
  "grid": {
    "modes": "hybrid-v1",
    "rates": "2,4",
    "winfracs": "0.3",
    "hours": "8",
    "traces": "poisson"
  },
  "seeds": {
    "base": 7
  },
  "cycle": "5m0s",
  "horizon": "24h0m0s"
}
`

// startServer builds and starts a service on a fresh port over the
// given state dir, shutting it down with the test.
func startServer(t *testing.T, dir string, workers int) *Server {
	t.Helper()
	srv, err := New(Config{Addr: "127.0.0.1:0", StateDir: dir, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Kill() })
	return srv
}

// directCSV renders the spec's sweep table the way the CLI would:
// sweep.Run at workers=1, CSV export.
func directCSV(t *testing.T, doc string) []byte {
	t.Helper()
	sp, err := sweep.LoadSpec(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	out, err := sweep.Run(sweep.Config{Grid: sp.Grid, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := export.WriteSweepCSV(&buf, out.Rows()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestServiceEndToEnd(t *testing.T) {
	srv := startServer(t, t.TempDir(), 3)
	c := &Client{Base: srv.Addr()}

	if err := c.Health(); err != nil {
		t.Fatal(err)
	}
	job, err := c.Submit(strings.NewReader(testSpec))
	if err != nil {
		t.Fatal(err)
	}
	if job.ID == "" || job.Cells != 2 {
		t.Fatalf("submitted job = %+v, want 2 cells", job)
	}
	job, err = c.Wait(job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if job.State != StateDone || job.CellsDone != 2 || job.Cached {
		t.Fatalf("after wait job = %+v, want done 2/2 uncached", job)
	}

	got, err := c.Result(job.ID, "csv")
	if err != nil {
		t.Fatal(err)
	}
	if want := directCSV(t, testSpec); !bytes.Equal(got, want) {
		t.Errorf("served CSV differs from direct sweep run:\ngot:\n%s\nwant:\n%s", got, want)
	}
	js, err := c.Result(job.ID, "json")
	if err != nil {
		t.Fatal(err)
	}
	var rows []map[string]any
	if err := json.Unmarshal(js, &rows); err != nil {
		t.Fatalf("result JSON does not parse: %v", err)
	}
	if len(rows) != 2 {
		t.Errorf("result JSON has %d rows, want 2", len(rows))
	}
}

// TestSubmitDedupesByCanonicalHash resubmits the same spec with
// different JSON formatting and a reordered grid: the content address
// is taken over the canonical bytes, so the server returns the
// existing job instead of creating a second one.
func TestSubmitDedupesByCanonicalHash(t *testing.T) {
	srv := startServer(t, t.TempDir(), 2)
	c := &Client{Base: srv.Addr()}

	first, err := c.Submit(strings.NewReader(testSpec))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(first.ID); err != nil {
		t.Fatal(err)
	}

	reformatted := `{"name":"service test sweep","cycle":"5m0s","horizon":"24h0m0s",` +
		`"seeds":{"base":7},` +
		`"grid":{"traces":"poisson","hours":"8","winfracs":"0.3","rates":"2,4","modes":"hybrid-v1"},` +
		`"spec_version":1}`
	second, err := c.Submit(strings.NewReader(reformatted))
	if err != nil {
		t.Fatal(err)
	}
	if second.ID != first.ID {
		t.Fatalf("reformatted spec created a new job %s, want existing %s", second.ID, first.ID)
	}
	if second.State != StateDone {
		t.Fatalf("deduped job state = %s, want done", second.State)
	}
}

// TestCacheServesForgottenJobs deletes the finished job's record (as
// if the jobs table were lost) and restarts over the same state dir:
// the result cache still holds the rendered table, so resubmission
// births a done job with Cached=true and the identical CSV — no cell
// re-runs.
func TestCacheServesForgottenJobs(t *testing.T) {
	dir := t.TempDir()
	srvA := startServer(t, dir, 2)
	c := &Client{Base: srvA.Addr()}
	job, err := c.Submit(strings.NewReader(testSpec))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(job.ID); err != nil {
		t.Fatal(err)
	}
	want, err := c.Result(job.ID, "csv")
	if err != nil {
		t.Fatal(err)
	}
	srvA.Kill()
	if err := os.Remove(srvA.st.jobPath(job.ID)); err != nil {
		t.Fatal(err)
	}

	srvB := startServer(t, dir, 2)
	c = &Client{Base: srvB.Addr()}
	reborn, err := c.Submit(strings.NewReader(testSpec))
	if err != nil {
		t.Fatal(err)
	}
	if reborn.State != StateDone || !reborn.Cached || reborn.CellsDone != reborn.Cells {
		t.Fatalf("resubmission after table loss = %+v, want done from cache", reborn)
	}
	got, err := c.Result(reborn.ID, "csv")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("cache-served CSV differs from the originally computed CSV")
	}
}

func TestSubmitRejectsBadSpecs(t *testing.T) {
	srv, err := New(Config{StateDir: t.TempDir(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(body string) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	for name, body := range map[string]string{
		"not json":       "{",
		"no version":     `{"grid":{"modes":"hybrid-v1"}}`,
		"unknown axis":   `{"spec_version":1,"grid":{"modes":"hybrid-v1","flux":"3"}}`,
		"absolute swf":   `{"spec_version":1,"grid":{"traces":"swf:/etc/passwd","winfracs":"0.3"}}`,
		"traversal swf":  `{"spec_version":1,"grid":{"traces":"swf:../../etc/passwd","winfracs":"0.3"}}`,
		// Relative, no "..", but resolveTracePath's ancestor walk would
		// find the real /etc/passwd — the root confinement must not.
		"ancestor swf": `{"spec_version":1,"grid":{"traces":"swf:etc/passwd","winfracs":"0.3"}}`,
		"oversized body": `{"spec_version":1,"name":"` + strings.Repeat("x", maxSpecBytes) + `"}`,
	} {
		resp := post(body)
		var ej errorJSON
		if err := json.NewDecoder(resp.Body).Decode(&ej); err != nil {
			t.Errorf("%s: error body does not parse: %v", name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (error %q)", name, resp.StatusCode, ej.Error)
		} else if ej.Error == "" {
			t.Errorf("%s: 400 with empty error message", name)
		}
	}
}

func TestStatusAndResultErrors(t *testing.T) {
	// The manager is never started, so a submitted job stays queued —
	// which pins down the 409 on a premature result fetch.
	srv, err := New(Config{StateDir: t.TempDir(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string) int {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/v1/sweeps/j999999"); code != http.StatusNotFound {
		t.Errorf("unknown job status = %d, want 404", code)
	}
	if code := get("/v1/sweeps/j999999/result"); code != http.StatusNotFound {
		t.Errorf("unknown job result = %d, want 404", code)
	}

	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(testSpec))
	if err != nil {
		t.Fatal(err)
	}
	var job Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || job.State != StateQueued {
		t.Fatalf("submit = %d %+v, want 201 queued", resp.StatusCode, job)
	}
	if code := get("/v1/sweeps/" + job.ID + "/result"); code != http.StatusConflict {
		t.Errorf("queued job result = %d, want 409", code)
	}
	if code := get("/v1/sweeps/" + job.ID + "/result?format=yaml"); code != http.StatusConflict {
		t.Errorf("queued job result (bad format) = %d, want 409 before format check", code)
	}
}

// TestEventsStreamAfterCompletion subscribes after the job finished:
// per-cell history is pruned when the terminal event fires, so a late
// subscriber gets exactly one synthesized terminal event — and, most
// importantly, a stream that actually ends.
func TestEventsStreamAfterCompletion(t *testing.T) {
	srv := startServer(t, t.TempDir(), 2)
	c := &Client{Base: srv.Addr()}
	job, err := c.Submit(strings.NewReader(testSpec))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(job.ID); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get("http://" + srv.Addr() + "/v1/sweeps/" + job.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body) // terminal event closes the stream
	if err != nil {
		t.Fatal(err)
	}
	var events []Event
	for _, line := range strings.Split(string(body), "\n") {
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var e Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &e); err != nil {
			t.Fatalf("bad event line %q: %v", line, err)
		}
		events = append(events, e)
	}
	if len(events) != 1 || events[0].Type != "done" {
		t.Fatalf("late subscription events = %+v, want exactly one done", events)
	}
	if events[0].Done != 2 || events[0].Total != 2 {
		t.Errorf("synthesized done = %d/%d, want 2/2", events[0].Done, events[0].Total)
	}
}

// TestEventsStreamLive subscribes while the job is still queued (the
// executor starts only after the subscription is confirmed) and sees
// the full queued → running → cell… → done sequence as it happens.
func TestEventsStreamLive(t *testing.T) {
	srv, err := New(Config{StateDir: t.TempDir(), Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := &Client{Base: ts.URL}
	job, err := c.Submit(strings.NewReader(testSpec))
	if err != nil {
		t.Fatal(err)
	}

	// Once Get returns, response headers are out — the handler has
	// subscribed. Only then may the executor start.
	resp, err := http.Get(ts.URL + "/v1/sweeps/" + job.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	srv.mgr.start()
	t.Cleanup(func() { srv.mgr.stop(); srv.mgr.wait() })
	body, err := io.ReadAll(resp.Body) // terminal event closes the stream
	if err != nil {
		t.Fatal(err)
	}
	var types []string
	cells := 0
	for _, line := range strings.Split(string(body), "\n") {
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var e Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &e); err != nil {
			t.Fatalf("bad event line %q: %v", line, err)
		}
		types = append(types, e.Type)
		if e.Type == "cell" {
			cells++
		}
	}
	if len(types) == 0 || types[0] != "queued" || types[len(types)-1] != "done" {
		t.Errorf("event sequence = %v, want queued … done", types)
	}
	if cells != 2 {
		t.Errorf("saw %d cell events, want 2", cells)
	}
}
