package bootmgr

import (
	"strings"
	"testing"

	"repro/internal/grubcfg"
	"repro/internal/hardware"
	"repro/internal/osid"
)

// Tests for the §II "changing active partition" multi-boot approach:
// a generic Windows MBR chainloads whichever primary partition is
// active; Linux boots through a GRUB installed in its partition's own
// boot record rather than the MBR.

// buildActivePartitionDisk: partition 1 = Windows (NTFS, its own
// loader), partition 2 = Linux (ext3, partition-head GRUB with a
// single Linux entry and the kernel on the same partition).
func buildActivePartitionDisk(t *testing.T) *hardware.Disk {
	t.Helper()
	d := hardware.NewDisk(250000)
	win, err := d.AddPartition(1, 150000)
	if err != nil {
		t.Fatal(err)
	}
	win.Format(hardware.FSNTFS)
	if err := win.WriteFile(WindowsBootFile, []byte("bootmgr")); err != nil {
		t.Fatal(err)
	}

	lin, err := d.AddPartition(2, -1)
	if err != nil {
		t.Fatal(err)
	}
	lin.Format(hardware.FSExt3)
	if err := lin.WriteFile("/vmlinuz-2.6.18-164.el5", []byte("kernel")); err != nil {
		t.Fatal(err)
	}
	menu := grubcfg.New()
	menu.HasDefault = true
	menu.Timeout = 5
	menu.Entries = []*grubcfg.Entry{{
		Title: "CentOS-5.4-linux",
		Commands: []grubcfg.Command{
			{Name: "root", Args: "(hd0,1)"},
			{Name: "kernel", Args: "/vmlinuz-2.6.18-164.el5 ro root=/dev/sda2"},
		},
	}}
	if err := lin.WriteFile("/grub/menu.lst", menu.Render()); err != nil {
		t.Fatal(err)
	}
	lin.InstallGRUBVBR("/grub/menu.lst")

	// Generic MBR: boots whatever partition is active.
	d.InstallWindowsMBR()
	return d
}

func TestActivePartitionSwitching(t *testing.T) {
	n := hardware.NewNode(hardware.NodeSpec{Index: 1})
	n.Disk = buildActivePartitionDisk(t)

	// Active = Windows partition.
	if err := n.Disk.SetActive(1); err != nil {
		t.Fatal(err)
	}
	res, err := Boot(n, noJitterEnv())
	if err != nil {
		t.Fatal(err)
	}
	if res.OS != osid.Windows {
		t.Fatalf("active=1 boots %v", res.OS)
	}

	// Flip the active flag: the same disk now boots Linux through the
	// partition-head GRUB.
	if err := n.Disk.SetActive(2); err != nil {
		t.Fatal(err)
	}
	res, err = Boot(n, noJitterEnv())
	if err != nil {
		t.Fatal(err)
	}
	if res.OS != osid.Linux {
		t.Fatalf("active=2 boots %v", res.OS)
	}
	trace := strings.Join(res.Steps, "\n")
	if !strings.Contains(trace, "VBR: GRUB on partition 2") {
		t.Fatalf("partition GRUB not traced:\n%s", trace)
	}
}

func TestVBRGrubMissingConfigFails(t *testing.T) {
	n := hardware.NewNode(hardware.NodeSpec{Index: 1})
	n.Disk = buildActivePartitionDisk(t)
	lin, _ := n.Disk.Partition(2)
	lin.RemoveFile("/grub/menu.lst")
	n.Disk.SetActive(2)
	if _, err := Boot(n, noJitterEnv()); err == nil || !strings.Contains(err.Error(), "VBR GRUB config read") {
		t.Fatalf("err = %v", err)
	}
}

func TestVBRGrubChainloaderLoopDetected(t *testing.T) {
	n := hardware.NewNode(hardware.NodeSpec{Index: 1})
	n.Disk = buildActivePartitionDisk(t)
	lin, _ := n.Disk.Partition(2)
	// A menu whose only entry chainloads its own partition: the boot
	// must fail with a depth error, not hang.
	menu := grubcfg.New()
	menu.HasDefault = true
	menu.Entries = []*grubcfg.Entry{{
		Title: "self",
		Commands: []grubcfg.Command{
			{Name: "root", Args: "(hd0,1)"},
			{Name: "chainloader", Args: "+1"},
		},
	}}
	lin.WriteFile("/grub/menu.lst", menu.Render())
	n.Disk.SetActive(2)
	if _, err := Boot(n, noJitterEnv()); err == nil || !strings.Contains(err.Error(), "loop") {
		t.Fatalf("err = %v", err)
	}
}

func TestFormatClearsVBR(t *testing.T) {
	d := hardware.NewDisk(1000)
	p, _ := d.AddPartition(1, 500)
	p.Format(hardware.FSExt3)
	p.InstallGRUBVBR("/grub/menu.lst")
	if p.VBR != hardware.BootGRUB {
		t.Fatal("VBR not installed")
	}
	p.Format(hardware.FSNTFS)
	if p.VBR != hardware.BootNone || p.VBRGrubConfig != "" {
		t.Fatalf("VBR survived format: %v %q", p.VBR, p.VBRGrubConfig)
	}
}
