package sweep

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/export"
	"repro/internal/grid"
	"repro/internal/workload"
)

// smallGrid is cheap enough to run repeatedly: 2×1×1×1×2 = 4 cells of
// a short Poisson day on a small cluster.
func smallGrid() Grid {
	return Grid{
		Modes:        []cluster.Mode{cluster.HybridV2, cluster.Static},
		NodeCounts:   []int{8},
		Traces:       []TraceSpec{{JobsPerHour: 3, WindowsFrac: 0.4, Duration: 8 * time.Hour}},
		FailureRates: []float64{0, 0.2},
		BaseSeed:     7,
		Horizon:      48 * time.Hour,
	}
}

// wideGrid crosses enough axes for the byte-identical-CSV acceptance
// criterion, including campus-grid cells: 2 modes × 1 node count ×
// 3 traces × 2 failure rates × 2 topologies (single + campus) =
// 24 cells, half of them three-member fabrics.
func wideGrid() Grid {
	campus, err := TopologyByName("campus")
	if err != nil {
		panic(err)
	}
	return Grid{
		Modes:      []cluster.Mode{cluster.HybridV2, cluster.Static},
		NodeCounts: []int{8},
		Traces: []TraceSpec{
			{JobsPerHour: 2, WindowsFrac: 0.2, Duration: 6 * time.Hour},
			{JobsPerHour: 3, WindowsFrac: 0.5, Duration: 6 * time.Hour},
			{JobsPerHour: 4, WindowsFrac: 0.8, Duration: 6 * time.Hour},
		},
		FailureRates: []float64{0, 0.1},
		Topologies:   []TopologySpec{{Name: "single"}, campus},
		BaseSeed:     42,
		Horizon:      48 * time.Hour,
	}
}

func TestExpandProducesExactCellSet(t *testing.T) {
	g := Grid{
		Modes:        []cluster.Mode{cluster.HybridV1, cluster.MonoStable},
		Policies:     []PolicySpec{{Name: "fcfs"}, {Name: "fairshare"}},
		NodeCounts:   []int{4},
		Traces:       []TraceSpec{{Name: "day"}, {Name: "night"}},
		FailureRates: []float64{0, 0.5},
	}
	cells := g.Expand()
	// Fixed axis order: mode ≻ policy ≻ nodes ≻ trace ≻ failure rate.
	want := []struct {
		mode   cluster.Mode
		policy string
		nodes  int
		trace  string
		fail   float64
	}{
		{cluster.HybridV1, "fcfs", 4, "day", 0},
		{cluster.HybridV1, "fcfs", 4, "day", 0.5},
		{cluster.HybridV1, "fcfs", 4, "night", 0},
		{cluster.HybridV1, "fcfs", 4, "night", 0.5},
		{cluster.HybridV1, "fairshare", 4, "day", 0},
		{cluster.HybridV1, "fairshare", 4, "day", 0.5},
		{cluster.HybridV1, "fairshare", 4, "night", 0},
		{cluster.HybridV1, "fairshare", 4, "night", 0.5},
		{cluster.MonoStable, "fcfs", 4, "day", 0},
		{cluster.MonoStable, "fcfs", 4, "day", 0.5},
		{cluster.MonoStable, "fcfs", 4, "night", 0},
		{cluster.MonoStable, "fcfs", 4, "night", 0.5},
		{cluster.MonoStable, "fairshare", 4, "day", 0},
		{cluster.MonoStable, "fairshare", 4, "day", 0.5},
		{cluster.MonoStable, "fairshare", 4, "night", 0},
		{cluster.MonoStable, "fairshare", 4, "night", 0.5},
	}
	if len(cells) != len(want) {
		t.Fatalf("expanded %d cells, want %d", len(cells), len(want))
	}
	for i, w := range want {
		c := cells[i]
		if c.Index != i {
			t.Errorf("cell %d: index %d", i, c.Index)
		}
		if c.Mode != w.mode || c.Policy.Name != w.policy || c.Nodes != w.nodes ||
			c.Trace.Name != w.trace || c.FailureRate != w.fail {
			t.Errorf("cell %d = %s, want %v/%v/n%d/%v/f%g", i, c.Name(),
				w.mode, w.policy, w.nodes, w.trace, w.fail)
		}
	}
}

func TestCellSeedsAreCoordinateDerived(t *testing.T) {
	g := smallGrid()
	a, b := g.Expand(), g.Expand()
	for i := range a {
		// Stable across expansions.
		if a[i].Seed != b[i].Seed || a[i].TraceSeed != b[i].TraceSeed {
			t.Fatalf("cell %d seeds differ between expansions", i)
		}
		for j := range a {
			if i == j {
				continue
			}
			// The cluster seed depends only on the environment axes
			// (nodes, trace, failure rate): mode and policy are
			// treatments and must face identical RNG draws.
			sameEnv := a[i].Nodes == a[j].Nodes &&
				a[i].Trace.Name == a[j].Trace.Name &&
				a[i].FailureRate == a[j].FailureRate
			if sameEnv != (a[i].Seed == a[j].Seed) {
				t.Fatalf("cells %s and %s: same environment %v but seed equality %v",
					a[i].Name(), a[j].Name(), sameEnv, a[i].Seed == a[j].Seed)
			}
			// The trace seed depends only on the trace axis: every cell
			// sharing a shape replays the identical job stream.
			if (a[i].Trace.Name == a[j].Trace.Name) != (a[i].TraceSeed == a[j].TraceSeed) {
				t.Fatalf("cells %s and %s: trace-seed pairing broken", a[i].Name(), a[j].Name())
			}
		}
	}
	// A different base seed re-seeds everything.
	g.BaseSeed = 8
	c := g.Expand()
	if c[0].Seed == a[0].Seed {
		t.Fatal("base seed change did not change cell seeds")
	}
}

// The aggregated outcome must be identical however many workers run
// the grid. Hysteresis is deliberately on the policy axis: it carries
// mutable state, so a shared instance would both race and diverge.
func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	g := smallGrid()
	g.Policies = []PolicySpec{
		{"fcfs", nil},
		PolicyByNameMust("hysteresis"),
	}
	var first *Outcome
	for _, workers := range []int{1, 4, 16} {
		out, err := Run(Config{Grid: g, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range out.Errs() {
			t.Fatalf("cell %s: %v", r.Cell.Name(), r.Err)
		}
		if first == nil {
			first = out
			continue
		}
		for i := range out.Results {
			a, b := first.Results[i], out.Results[i]
			if !reflect.DeepEqual(a.Res.Summary, b.Res.Summary) {
				t.Fatalf("workers=%d: cell %s summary diverged:\n%+v\nvs\n%+v",
					workers, b.Cell.Name(), a.Res.Summary, b.Res.Summary)
			}
			if !reflect.DeepEqual(a.Res.Events, b.Res.Events) {
				t.Fatalf("workers=%d: cell %s event log diverged", workers, b.Cell.Name())
			}
		}
		if first.Table() != out.Table() {
			t.Fatalf("workers=%d: ranked table diverged", workers)
		}
	}
}

// Acceptance criterion: a ≥24-cell sweep at -workers=8 serialises to
// byte-identical CSV against the same sweep at -workers=1.
func TestSweepCSVByteIdenticalAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("24-cell sweep is slow")
	}
	g := wideGrid()
	csv := func(workers int) []byte {
		out, err := Run(Config{Grid: g, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if n := len(out.Results); n < 24 {
			t.Fatalf("grid has %d cells, want >= 24", n)
		}
		var buf bytes.Buffer
		if err := export.WriteSweepCSV(&buf, out.Rows()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial, parallel := csv(1), csv(8)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("CSV diverged between workers=1 and workers=8:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
}

// PolicyByNameMust is a test helper; panics on unknown names.
func PolicyByNameMust(name string) PolicySpec {
	p, err := PolicyByName(name)
	if err != nil {
		panic(err)
	}
	return p
}

func TestPolicySpecsReturnFreshInstances(t *testing.T) {
	spec := PolicyByNameMust("hysteresis")
	a, b := spec.New(), spec.New()
	if a == b {
		t.Fatal("hysteresis constructor returned a shared instance")
	}
}

func TestRankedIsTotalOrder(t *testing.T) {
	out, err := Run(Config{Grid: smallGrid(), Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ranked := out.Ranked()
	if len(ranked) != len(out.Results) {
		t.Fatalf("ranked %d of %d results", len(ranked), len(out.Results))
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i-1].Res.Summary.Utilisation < ranked[i].Res.Summary.Utilisation {
			t.Fatalf("rank %d util %.3f below rank %d util %.3f",
				i, ranked[i-1].Res.Summary.Utilisation, i+1, ranked[i].Res.Summary.Utilisation)
		}
	}
	// Expansion order must be untouched by ranking.
	for i, r := range out.Results {
		if r.Cell.Index != i {
			t.Fatalf("result %d holds cell index %d", i, r.Cell.Index)
		}
	}
}

func TestExpandDoesNotMutateCallerGrid(t *testing.T) {
	g := Grid{Traces: []TraceSpec{{JobsPerHour: 2}}}
	_ = g.Expand()
	if g.Traces[0].Name != "" || g.Traces[0].Duration != 0 {
		t.Fatalf("Expand wrote defaults through to the caller's trace spec: %+v", g.Traces[0])
	}
}

func TestDuplicateTraceNamesGetUniqueSuffixes(t *testing.T) {
	g := Grid{Traces: []TraceSpec{
		{Custom: func(int64) workload.Trace { return nil }},
		{Custom: func(int64) workload.Trace { return nil }},
	}}
	cells := g.Expand()
	if len(cells) != 2 {
		t.Fatalf("cells = %d", len(cells))
	}
	if cells[0].Trace.Name == cells[1].Trace.Name {
		t.Fatalf("duplicate custom traces share name %q", cells[0].Trace.Name)
	}
	if cells[0].TraceSeed == cells[1].TraceSeed {
		t.Fatal("duplicate custom traces share a trace seed")
	}
}

func TestDerivedTraceNamesAreLossless(t *testing.T) {
	a := TraceSpec{WindowsFrac: 0.333}.withDefaults()
	b := TraceSpec{WindowsFrac: 0.335}.withDefaults()
	if a.Name == b.Name {
		t.Fatalf("distinct winfracs collide on name %q", a.Name)
	}
	g, err := ParseGridSpec("winfracs=0.333,0.335")
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Traces) != 2 {
		t.Fatalf("dedup dropped a distinct winfrac: %d traces", len(g.Traces))
	}
}

func TestParseGridSpec(t *testing.T) {
	g, err := ParseGridSpec("modes=hybrid-v2,static-split;ctlpolicies=fcfs,fairshare;nodes=8,16;rates=2,4;winfracs=0.25,0.5;hours=6;failrates=0,0.05;seed=9;cycle=5m")
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Modes) != 2 || len(g.Policies) != 2 || len(g.NodeCounts) != 2 ||
		len(g.Traces) != 4 || len(g.FailureRates) != 2 {
		t.Fatalf("axes: %s", g.Describe())
	}
	if g.BaseSeed != 9 || g.Cycle != 5*time.Minute {
		t.Fatalf("seed %d cycle %v", g.BaseSeed, g.Cycle)
	}
	if got := len(g.Expand()); got != 64 {
		t.Fatalf("expanded %d cells, want 64", got)
	}
	for _, tr := range g.Traces {
		if tr.Duration != 6*time.Hour {
			t.Fatalf("trace %s duration %v", tr.Name, tr.Duration)
		}
	}

	for _, bad := range []string{
		"modes=plan9", "policies=dictator", "nodes=0", "winfracs=2",
		"failrates=-1", "bogus=1", "rates", "rates=0", "cycle=never",
		"horizon=never", "horizon=-4h",
	} {
		if _, err := ParseGridSpec(bad); err == nil {
			t.Errorf("spec %q parsed without error", bad)
		}
	}

	// Non-poisson kinds collapse the rate axis instead of duplicating
	// identical shapes.
	g, err = ParseGridSpec("traces=phased;rates=2,4;winfracs=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Traces) != 1 {
		t.Fatalf("phased traces = %d, want 1 (deduped)", len(g.Traces))
	}
}

// The topology axis: single-cluster topologies expand against only
// the first routing (no router to vary), grid topologies cross the
// full routing axis, and names/seeds stay coordinate-derived.
func TestTopologyAxisExpansion(t *testing.T) {
	campus := mustTopology("campus")
	g := Grid{
		Modes:      []cluster.Mode{cluster.HybridV2},
		Topologies: []TopologySpec{{Name: "single"}, campus},
		Routings:   []grid.RoutingPolicy{grid.RouteLeastLoaded, grid.RouteHybridLast},
	}
	cells := g.Expand()
	// 1 mode × 1 policy × 1 nodes × 1 trace × 1 failure × (single×1 + campus×2)
	if len(cells) != 3 {
		t.Fatalf("cells = %d, want 3", len(cells))
	}
	if cells[0].Topology.IsGrid() || cells[0].Routing != grid.RouteLeastLoaded {
		t.Fatalf("cell 0 = %s", cells[0].Name())
	}
	if !cells[1].Topology.IsGrid() || cells[1].Routing != grid.RouteLeastLoaded {
		t.Fatalf("cell 1 = %s", cells[1].Name())
	}
	if cells[2].Routing != grid.RouteHybridLast {
		t.Fatalf("cell 2 = %s", cells[2].Name())
	}
	// Single-cluster names keep the classic five-segment form; grid
	// cells append topology and routing.
	if strings.Contains(cells[0].Name(), "single") {
		t.Fatalf("single cell name %q should not carry topology", cells[0].Name())
	}
	if !strings.HasSuffix(cells[1].Name(), "/campus/least-loaded") {
		t.Fatalf("campus cell name %q", cells[1].Name())
	}
	// Routing is a treatment axis: both campus cells share seeds.
	if cells[1].Seed != cells[2].Seed || cells[1].TraceSeed != cells[2].TraceSeed {
		t.Fatal("routing variants drew different seeds")
	}
	// Topology is an environment axis: the fabric draws its own seed.
	if cells[0].Seed == cells[1].Seed {
		t.Fatal("single and campus cells share a cluster seed")
	}
}

// mustTopology is a test helper; panics on unknown topology names.
func mustTopology(name string) TopologySpec {
	tp, err := TopologyByName(name)
	if err != nil {
		panic(err)
	}
	return tp
}

// mustScenario is a test helper; panics when the cell fails to
// materialise (only file-backed traces can).
func mustScenario(c Cell) core.Scenario {
	sc, err := c.Scenario()
	if err != nil {
		panic(err)
	}
	return sc
}

// Grid cells materialise into campus scenarios: inherit members take
// the cell's mode and node count, pinned members keep theirs, splits
// resolve, and each member derives its own seed from the cell seed.
func TestGridCellScenarioBuildsMembers(t *testing.T) {
	campus := mustTopology("campus")
	g := Grid{
		Modes:      []cluster.Mode{cluster.MonoStable},
		NodeCounts: []int{4},
		Topologies: []TopologySpec{campus},
		Routings:   []grid.RoutingPolicy{grid.RouteRoundRobin},
	}
	cells := g.Expand()
	if len(cells) != 1 {
		t.Fatalf("cells = %d", len(cells))
	}
	sc := mustScenario(cells[0])
	if !sc.Topology.IsGrid() || len(sc.Topology.Members) != 3 {
		t.Fatalf("topology = %+v", sc.Topology)
	}
	if sc.Topology.Routing != grid.RouteRoundRobin {
		t.Fatalf("routing = %v", sc.Topology.Routing)
	}
	eridani, tauceti, vega := sc.Topology.Members[0], sc.Topology.Members[1], sc.Topology.Members[2]
	if eridani.Config.Mode != cluster.MonoStable {
		t.Fatalf("inherit member mode = %v", eridani.Config.Mode)
	}
	if tauceti.Config.Mode != cluster.Static || tauceti.Config.InitialLinux != 4 {
		t.Fatalf("linux static = %+v", tauceti.Config)
	}
	if vega.Config.Mode != cluster.Static || vega.Config.InitialLinux != -1 {
		t.Fatalf("windows static = %+v", vega.Config)
	}
	for _, m := range sc.Topology.Members {
		if m.Config.Nodes != 4 {
			t.Fatalf("member %s nodes = %d", m.Name, m.Config.Nodes)
		}
	}
	if eridani.Config.Seed == tauceti.Config.Seed || tauceti.Config.Seed == vega.Config.Seed {
		t.Fatal("members share a derived seed")
	}
	// Member seeds are pure functions of the cell coordinates.
	sc2 := mustScenario(cells[0])
	for i := range sc.Topology.Members {
		if sc.Topology.Members[i].Config.Seed != sc2.Topology.Members[i].Config.Seed {
			t.Fatal("member seeds unstable across materialisations")
		}
	}
}

// Grid-axis cells keep the worker-count determinism contract: the
// per-member summaries and the fabric aggregate are identical for any
// worker count.
func TestGridCellsDeterministicAcrossWorkerCounts(t *testing.T) {
	campus := mustTopology("campus")
	g := Grid{
		Modes:      []cluster.Mode{cluster.HybridV2},
		NodeCounts: []int{4},
		Traces:     []TraceSpec{{JobsPerHour: 3, WindowsFrac: 0.4, Duration: 6 * time.Hour}},
		Topologies: []TopologySpec{campus},
		Routings:   []grid.RoutingPolicy{grid.RouteLeastLoaded, grid.RouteHybridLast},
		BaseSeed:   5,
		Horizon:    48 * time.Hour,
	}
	var first *Outcome
	for _, workers := range []int{1, 4} {
		out, err := Run(Config{Grid: g, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range out.Errs() {
			t.Fatalf("cell %s: %v", r.Cell.Name(), r.Err)
		}
		if first == nil {
			first = out
			continue
		}
		for i := range out.Results {
			a, b := first.Results[i], out.Results[i]
			if !reflect.DeepEqual(a.Res.Summary, b.Res.Summary) {
				t.Fatalf("workers=%d: cell %s aggregate diverged", workers, b.Cell.Name())
			}
			if !reflect.DeepEqual(a.Res.Members, b.Res.Members) {
				t.Fatalf("workers=%d: cell %s member summaries diverged", workers, b.Cell.Name())
			}
		}
	}
	// Sanity: the campus cells actually ran as three-member fabrics.
	for _, r := range first.Results {
		if len(r.Res.Members) != 3 {
			t.Fatalf("cell %s has %d member results", r.Cell.Name(), len(r.Res.Members))
		}
	}
}

func TestParseGridSpecTopologyAxes(t *testing.T) {
	g, err := ParseGridSpec("modes=hybrid-v2;topologies=single,campus;routings=least-loaded,hybrid-last")
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Topologies) != 2 || len(g.Routings) != 2 {
		t.Fatalf("axes: %s", g.Describe())
	}
	// single×1 + campus×2 = 3 cells.
	if got := len(g.Expand()); got != 3 {
		t.Fatalf("expanded %d cells, want 3", got)
	}
	for _, bad := range []string{"topologies=atlantis", "routings=dartboard"} {
		if _, err := ParseGridSpec(bad); err == nil {
			t.Errorf("spec %q parsed without error", bad)
		}
	}
}

// Acceptance criterion for the policy axis: sweeping every registry
// policy (stateful hysteresis and predictive included) over the
// diurnal and burst traces serialises to byte-identical CSV at
// -workers 1 and -workers 8 — the `qsim sweep -ctlpolicies
// fcfs,threshold,hysteresis,predictive` contract.
func TestSweepCtlPoliciesCSVByteIdenticalAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("policy-axis sweep is slow")
	}
	g := Grid{
		Modes:    []cluster.Mode{cluster.HybridV2},
		Policies: DefaultPolicies(),
		Traces: []TraceSpec{
			{Kind: TraceDiurnal, JobsPerHour: 3, WindowsFrac: 0.5, Duration: 24 * time.Hour},
			{Kind: TraceBurst, JobsPerHour: 3, Duration: 24 * time.Hour},
		},
		BaseSeed: 15,
		Cycle:    5 * time.Minute,
	}
	csv := func(workers int) []byte {
		out, err := Run(Config{Grid: g, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range out.Results {
			if r.Err != nil {
				t.Fatalf("cell %s: %v", r.Cell.Name(), r.Err)
			}
		}
		var buf bytes.Buffer
		if err := export.WriteSweepCSV(&buf, out.Rows()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial, parallel := csv(1), csv(8)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("policy-axis CSV diverged between workers=1 and workers=8:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
}

func TestParseGridSpecCtlPolicies(t *testing.T) {
	g, err := ParseGridSpec("ctlpolicies=fcfs,threshold,hysteresis,predictive")
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Policies) != 4 || g.Policies[3].Name != "predictive" {
		t.Fatalf("policies = %+v", g.Policies)
	}
	// The legacy key still parses.
	g, err = ParseGridSpec("policies=fairshare")
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Policies) != 1 || g.Policies[0].Name != "fairshare" {
		t.Fatalf("legacy policies = %+v", g.Policies)
	}
	// Unknown names error listing the valid set.
	if _, err := ParseGridSpec("ctlpolicies=fcsf"); err == nil || !strings.Contains(err.Error(), "fcfs | threshold | hysteresis | predictive | fairshare") {
		t.Fatalf("unknown policy error = %v", err)
	}
}

// The scheduler-policy axis is a treatment axis: fcfs and backfill
// variants of a cell share every derived seed, expand adjacently, and
// only the backfill cells carry the extra name segment.
func TestSchedPolicyAxisExpansion(t *testing.T) {
	g := Grid{
		Modes:         []cluster.Mode{cluster.HybridV2},
		SchedPolicies: []cluster.SchedPolicy{cluster.SchedFCFS, cluster.SchedBackfill},
		NodeCounts:    []int{8},
	}
	cells := g.Expand()
	if len(cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(cells))
	}
	fcfs, bf := cells[0], cells[1]
	if fcfs.Sched != cluster.SchedFCFS || bf.Sched != cluster.SchedBackfill {
		t.Fatalf("axis order: %s then %s", fcfs.Name(), bf.Name())
	}
	if fcfs.Seed != bf.Seed || fcfs.TraceSeed != bf.TraceSeed {
		t.Fatal("sched variants drew different seeds (treatment axis must pair)")
	}
	if strings.Contains(fcfs.Name(), "backfill") {
		t.Fatalf("fcfs cell name %q should keep the classic form", fcfs.Name())
	}
	if !strings.HasSuffix(bf.Name(), "/backfill") {
		t.Fatalf("backfill cell name %q", bf.Name())
	}
	// The cells materialise with the policy applied to the cluster
	// config and mirrored on the scenario.
	sc := mustScenario(bf)
	if sc.Cluster.SchedPolicy != cluster.SchedBackfill || sc.SchedPolicy != cluster.SchedBackfill {
		t.Fatalf("scenario sched = %v / cluster %v", sc.SchedPolicy, sc.Cluster.SchedPolicy)
	}
	if sc := mustScenario(fcfs); sc.Cluster.SchedPolicy != cluster.SchedFCFS {
		t.Fatalf("fcfs scenario cluster sched = %v", sc.Cluster.SchedPolicy)
	}
}

// Grid-topology cells propagate the scheduler policy to every member
// config.
func TestSchedPolicyReachesTopologyMembers(t *testing.T) {
	campus := mustTopology("campus")
	g := Grid{
		Modes:         []cluster.Mode{cluster.HybridV2},
		SchedPolicies: []cluster.SchedPolicy{cluster.SchedBackfill},
		Topologies:    []TopologySpec{campus},
	}
	cells := g.Expand()
	if len(cells) != 1 {
		t.Fatalf("cells = %d", len(cells))
	}
	sc := mustScenario(cells[0])
	for _, m := range sc.Topology.Members {
		if m.Config.SchedPolicy != cluster.SchedBackfill {
			t.Fatalf("member %s sched = %v", m.Name, m.Config.SchedPolicy)
		}
	}
}

func TestParseGridSpecSchedPolicies(t *testing.T) {
	g, err := ParseGridSpec("schedpolicies=fcfs,backfill")
	if err != nil {
		t.Fatal(err)
	}
	if len(g.SchedPolicies) != 2 ||
		g.SchedPolicies[0] != cluster.SchedFCFS || g.SchedPolicies[1] != cluster.SchedBackfill {
		t.Fatalf("schedpolicies = %v", g.SchedPolicies)
	}
	if got := len(g.Expand()); got != 2 {
		t.Fatalf("expanded %d cells, want 2", got)
	}
	// Unknown names error listing the valid set.
	if _, err := ParseGridSpec("schedpolicies=easy"); err == nil || !strings.Contains(err.Error(), "fcfs | backfill") {
		t.Fatalf("unknown sched policy error = %v", err)
	}
}

// Acceptance criterion for the scheduler-policy axis: the E16-shaped
// sweep (fcfs vs backfill over the phased wide mix) serialises to
// byte-identical CSV at -workers 1 and -workers 8, and the CSV carries
// the sched_policy column.
func TestSweepSchedPoliciesCSVByteIdenticalAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("sched-policy sweep is slow")
	}
	g := Grid{
		Modes:         []cluster.Mode{cluster.HybridV2, cluster.Static},
		SchedPolicies: []cluster.SchedPolicy{cluster.SchedFCFS, cluster.SchedBackfill},
		Traces: []TraceSpec{
			{Kind: TracePhased, WindowsFrac: 0.5},
			{JobsPerHour: 4, WindowsFrac: 0.3, Duration: 12 * time.Hour},
		},
		BaseSeed: 16,
		Cycle:    5 * time.Minute,
		Horizon:  96 * time.Hour,
	}
	csvBytes := func(workers int) []byte {
		out, err := Run(Config{Grid: g, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range out.Results {
			if r.Err != nil {
				t.Fatalf("cell %s: %v", r.Cell.Name(), r.Err)
			}
		}
		var buf bytes.Buffer
		if err := export.WriteSweepCSV(&buf, out.Rows()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial, parallel := csvBytes(1), csvBytes(8)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("sched-policy CSV diverged between workers=1 and workers=8:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
	if !strings.Contains(string(serial), "sched_policy") || !strings.Contains(string(serial), ",backfill,") {
		t.Fatalf("CSV missing the sched_policy axis:\n%s", serial)
	}
}

func TestParseGridSpecTraceKinds(t *testing.T) {
	g, err := ParseGridSpec("traces=diurnal,burst;rates=3;winfracs=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Traces) != 2 || g.Traces[0].Kind != TraceDiurnal || g.Traces[1].Kind != TraceBurst {
		t.Fatalf("traces = %+v", g.Traces)
	}
	if _, err := ParseGridSpec("traces=tidal"); err == nil || !strings.Contains(err.Error(), "poisson | phased | matlabga | diurnal | burst") {
		t.Fatalf("unknown trace error = %v", err)
	}
}
