package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/bootmgr"
	"repro/internal/cluster"
	"repro/internal/grid"
	"repro/internal/osid"
	"repro/internal/workload"
)

func smallTrace() workload.Trace {
	return workload.Trace{
		{At: 0, App: "DL_POLY", OS: osid.Linux, Owner: "u1", Nodes: 2, PPN: 4, Runtime: time.Hour},
		{At: 10 * time.Minute, App: "Backburner", OS: osid.Windows, Owner: "u2", Nodes: 1, PPN: 4, Runtime: 30 * time.Minute},
	}
}

func TestRunScenario(t *testing.T) {
	res, err := Run(Scenario{
		Name:    "smoke",
		Cluster: cluster.Config{Mode: cluster.HybridV2, Cycle: 5 * time.Minute},
		Trace:   smallTrace(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != cluster.HybridV2 {
		t.Fatalf("mode = %v", res.Mode)
	}
	s := res.Summary
	if s.JobsCompleted[osid.Linux] != 1 || s.JobsCompleted[osid.Windows] != 1 {
		t.Fatalf("completed = %v", s.JobsCompleted)
	}
	if s.Utilisation <= 0 {
		t.Fatalf("utilisation = %v", s.Utilisation)
	}
	if res.Controller.Cycles == 0 {
		t.Fatal("controller never cycled")
	}
}

func TestRunScenarioWithSeries(t *testing.T) {
	res, err := Run(Scenario{
		Name:           "series",
		Cluster:        cluster.Config{Mode: cluster.HybridV2, InitialLinux: 16, Cycle: 5 * time.Minute},
		Trace:          smallTrace(),
		SampleInterval: 10 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) == 0 {
		t.Fatal("no series recorded")
	}
}

func TestRunRejectsBadTrace(t *testing.T) {
	bad := workload.Trace{{At: 0, App: "x", OS: osid.None, Nodes: 1, PPN: 1, Runtime: time.Minute}}
	if _, err := Run(Scenario{Cluster: cluster.Config{Mode: cluster.Static}, Trace: bad}); err == nil {
		t.Fatal("bad trace accepted")
	}
}

func TestCompareModes(t *testing.T) {
	modes := []cluster.Mode{cluster.Static, cluster.HybridV2}
	results, err := CompareModes(modes, cluster.Config{Cycle: 5 * time.Minute, InitialLinux: 8}, smallTrace(), 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	if results[0].Name != "static-split" || results[1].Name != "hybrid-v2" {
		t.Fatalf("names = %v, %v", results[0].Name, results[1].Name)
	}
	table := ComparisonTable(results)
	for _, want := range []string{"scenario", "util", "static-split", "hybrid-v2"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}

func TestResultRowShape(t *testing.T) {
	res, err := Run(Scenario{
		Name:    "row",
		Cluster: cluster.Config{Mode: cluster.Static, InitialLinux: 8},
		Trace:   smallTrace(),
	})
	if err != nil {
		t.Fatal(err)
	}
	row := ResultRow(res)
	if len(row) != len(ResultHeader()) {
		t.Fatalf("row len %d != header len %d", len(row), len(ResultHeader()))
	}
	if row[0] != "row" {
		t.Fatalf("row[0] = %q", row[0])
	}
	if !strings.HasSuffix(row[len(row)-1], "/2") {
		t.Fatalf("completion cell = %q", row[len(row)-1])
	}
}

// A scenario with a grid topology runs every member on one clock,
// routes the trace, and reports per-member summaries plus the fabric
// aggregate.
func TestRunGridTopology(t *testing.T) {
	sc := Scenario{
		Name:    "campus",
		Cluster: cluster.Config{Mode: cluster.HybridV2},
		Trace:   smallTrace(),
		Horizon: 24 * time.Hour,
		Topology: Topology{
			Routing: grid.RouteLeastLoaded,
			Members: []grid.MemberSpec{
				{Name: "eridani", Config: cluster.Config{Mode: cluster.HybridV2, Nodes: 4, InitialLinux: 2, Cycle: 5 * time.Minute}},
				{Name: "tauceti", Config: cluster.Config{Mode: cluster.Static, Nodes: 4, InitialLinux: 4}},
			},
		},
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Members) != 2 {
		t.Fatalf("members = %d", len(res.Members))
	}
	if res.Members[0].Name != "eridani" || res.Members[1].Name != "tauceti" {
		t.Fatalf("member order = %v, %v", res.Members[0].Name, res.Members[1].Name)
	}
	s := res.Summary
	if s.JobsCompleted[osid.Linux]+s.JobsCompleted[osid.Windows] != len(sc.Trace) {
		t.Fatalf("aggregate completed = %v", s.JobsCompleted)
	}
	if s.TotalCores != 32 { // 2 members × 4 nodes × 4 cores
		t.Fatalf("aggregate cores = %d", s.TotalCores)
	}
	var routedTotal int
	var memberDone int
	for _, m := range res.Members {
		routedTotal += m.Routed
		memberDone += m.Summary.JobsCompleted[osid.Linux] + m.Summary.JobsCompleted[osid.Windows]
	}
	if routedTotal != len(sc.Trace) || res.Dropped != 0 {
		t.Fatalf("routed = %d, dropped = %d", routedTotal, res.Dropped)
	}
	if memberDone != len(sc.Trace) {
		t.Fatalf("member completions = %d", memberDone)
	}
	if res.EventsRun == 0 {
		t.Fatal("EventsRun not recorded")
	}
	for _, e := range res.Events {
		if !strings.Contains(e.What, ": ") {
			t.Fatalf("merged event missing member prefix: %+v", e)
		}
	}
}

// Sampling is a single-cluster feature; a grid topology rejects it
// explicitly rather than silently dropping the series.
func TestRunGridTopologyRejectsSampling(t *testing.T) {
	_, err := Run(Scenario{
		Trace:          smallTrace(),
		SampleInterval: time.Hour,
		Topology: Topology{Members: []grid.MemberSpec{
			{Name: "a", Config: cluster.Config{Mode: cluster.Static, Nodes: 4, InitialLinux: 2}},
		}},
	})
	if err == nil {
		t.Fatal("sampling on a grid topology accepted")
	}
}

// Scenario.Latency is a treatment axis like SchedPolicy: it overrides
// the boot-latency model on the single cluster and on every topology
// member, without writing through the caller's specs.
func TestScenarioLatencyOverride(t *testing.T) {
	// One Windows job against an all-Linux cluster forces a switch.
	trace := workload.Trace{
		{At: 0, App: "Backburner", OS: osid.Windows, Owner: "u", Nodes: 1, PPN: 4, Runtime: 30 * time.Minute},
	}
	run := func(lat *bootmgr.LatencyModel) time.Duration {
		res, err := Run(Scenario{
			Cluster: cluster.Config{Mode: cluster.HybridV2, InitialLinux: 16, Cycle: 5 * time.Minute, Seed: 7},
			Trace:   trace,
			Latency: lat,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Summary.Switches == 0 {
			t.Fatal("scenario produced no switches")
		}
		return res.Summary.MeanSwitch
	}
	slow := bootmgr.DefaultLatencyModel()
	slow.KernelWindows *= 10
	slow.KernelLinux *= 10
	if stock, scaled := run(nil), run(&slow); scaled <= stock {
		t.Fatalf("latency override ignored: stock %v, slow %v", stock, scaled)
	}

	members := []grid.MemberSpec{
		{Name: "a", Config: cluster.Config{Mode: cluster.HybridV2, Nodes: 4, InitialLinux: 4}},
	}
	res, err := Run(Scenario{
		Trace:    trace,
		Topology: Topology{Members: members},
		Latency:  &slow,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Switches == 0 {
		t.Fatal("grid scenario produced no switches")
	}
	if members[0].Config.Latency != nil {
		t.Fatal("latency override wrote through the caller's member spec")
	}
}
