package pbs

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/simtime"
)

func TestQstatFShape(t *testing.T) {
	eng, s := newTestServer(t, 1)
	s.Qsub(SubmitRequest{Name: "release_1_node", Owner: "sliang@eridani.qgg.hud.ac.uk",
		Nodes: 1, PPN: 4, Runtime: time.Hour})
	eng.RunUntil(time.Second)
	out := s.QstatF()
	for _, want := range []string{
		"Job Id: 1.eridani.qgg.hud.ac.uk",
		"    Job_Name = release_1_node",
		"    Job_Owner = sliang@eridani.qgg.hud.ac.uk",
		"    job_state = R",
		"    queue = default",
		"    server = eridani.qgg.hud.ac.uk",
		"    exec_host = enode01.eridani.qgg.hud.ac.uk/3",
		"    Priority = 0",
		"    qtime = ",
		"    Resource_List.nodes = 1:ppn=4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("qstat -f missing %q:\n%s", want, out)
		}
	}
}

func TestQstatFOmitsCompleted(t *testing.T) {
	eng, s := newTestServer(t, 1)
	s.Qsub(SubmitRequest{Name: "quick", Runtime: time.Second})
	eng.Run()
	if out := s.QstatF(); strings.Contains(out, "quick") {
		t.Fatalf("completed job still in qstat:\n%s", out)
	}
}

func TestQstatFJobSingle(t *testing.T) {
	eng, s := newTestServer(t, 1)
	j, _ := s.Qsub(SubmitRequest{Name: "one", Runtime: time.Second})
	out, err := s.QstatFJob(j.ID)
	if err != nil || !strings.Contains(out, "Job Id: "+j.ID) {
		t.Fatalf("QstatFJob = %q, %v", out, err)
	}
	if _, err := s.QstatFJob("nope"); err == nil {
		t.Fatal("unknown job rendered")
	}
	eng.Run()
}

func TestPBSNodesShape(t *testing.T) {
	eng, s := newTestServer(t, 2)
	s.Qsub(SubmitRequest{Name: "j", Nodes: 1, PPN: 4, Runtime: time.Hour})
	eng.RunUntil(time.Second)
	out := s.PBSNodes()
	for _, want := range []string{
		"enode01.eridani.qgg.hud.ac.uk\n",
		"     state = job-exclusive",
		"     state = free",
		"     np = 4",
		"     properties = all",
		"     ntype = cluster",
		"     jobs = 0/1.eridani.qgg.hud.ac.uk",
		"opsys=linux",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("pbsnodes missing %q:\n%s", want, out)
		}
	}
}

func TestQstatRoundTrip(t *testing.T) {
	eng, s := newTestServer(t, 2)
	s.Qsub(SubmitRequest{Name: "running", Owner: "a@b", Nodes: 2, PPN: 4, Runtime: time.Hour})
	s.Qsub(SubmitRequest{Name: "waiting", Owner: "c@d", Nodes: 1, PPN: 2, Runtime: time.Hour})
	eng.RunUntil(time.Second)

	jobs, err := ParseQstatF(s.QstatF())
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 {
		t.Fatalf("parsed %d jobs", len(jobs))
	}
	r, w := jobs[0], jobs[1]
	if r.Name != "running" || r.State != StateRunning || r.CPUs() != 8 {
		t.Fatalf("r = %+v", r)
	}
	if w.Name != "waiting" || w.State != StateQueued || w.CPUs() != 2 {
		t.Fatalf("w = %+v", w)
	}
	if r.ExecHost == "" || !strings.Contains(r.ExecHost, "+") {
		t.Fatalf("exec host = %q", r.ExecHost)
	}
	if w.Owner != "c@d" || w.Queue != "default" {
		t.Fatalf("w = %+v", w)
	}
}

func TestPBSNodesRoundTrip(t *testing.T) {
	eng, s := newTestServer(t, 3)
	s.SetNodeAvailable(nodeName(3), false)
	s.Qsub(SubmitRequest{Name: "j", Nodes: 1, PPN: 4, Runtime: time.Hour})
	eng.RunUntil(time.Second)

	nodes, err := ParsePBSNodes(s.PBSNodes())
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 3 {
		t.Fatalf("parsed %d nodes", len(nodes))
	}
	if nodes[0].State != NodeExclusive || len(nodes[0].Jobs) != 4 {
		t.Fatalf("n0 = %+v", nodes[0])
	}
	if nodes[1].State != NodeFree || nodes[1].NP != 4 {
		t.Fatalf("n1 = %+v", nodes[1])
	}
	if nodes[2].State != NodeDown {
		t.Fatalf("n2 = %+v", nodes[2])
	}
}

func TestParseQstatFFigure8Shape(t *testing.T) {
	// A hand-written record in the exact shape of the paper's Figure 8.
	text := `Job Id: 1185.eridani.qgg.hud.ac.uk
    Job_Name = release_1_node
    Job_Owner = sliang@eridani.qgg.hud.ac.uk
    job_state = R
    queue = default
    server = eridani.qgg.hud.ac.uk
    exec_host = node16.eridani.qgg.hud.ac.uk/3+node16.eridani.qgg.hud.ac.uk/2+node16.eridani.qgg.hud.ac.uk/1+node16.eridani.qgg.hud.ac.uk/0
    Priority = 0
    qtime = Fri Apr 16 17:55:40 2010
    Resource_List.nodes = 1:ppn=4
    Variable_List = PBS_O_HOME=/home/sliang,PBS_O_LANG=en_US.UTF-8,
`
	jobs, err := ParseQstatF(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 {
		t.Fatalf("jobs = %d", len(jobs))
	}
	j := jobs[0]
	if j.ID != "1185.eridani.qgg.hud.ac.uk" {
		t.Errorf("id = %q", j.ID)
	}
	if j.Name != "release_1_node" || j.State != StateRunning {
		t.Errorf("j = %+v", j)
	}
	if j.Nodes != 1 || j.PPN != 4 || j.CPUs() != 4 {
		t.Errorf("resources = %d:%d", j.Nodes, j.PPN)
	}
}

func TestParsePBSNodesFigure7Shape(t *testing.T) {
	text := `enode01.eridani.qgg.hud.ac.uk
     state = free
     np = 4
     properties = all
     ntype = cluster
     status = opsys=linux, uname=Linux enode01.eridani.qgg.hud.ac.uk 2.6.18, ncpus=4, state=free
`
	nodes, err := ParsePBSNodes(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 1 {
		t.Fatalf("nodes = %d", len(nodes))
	}
	n := nodes[0]
	if n.Name != "enode01.eridani.qgg.hud.ac.uk" || n.State != NodeFree || n.NP != 4 {
		t.Fatalf("n = %+v", n)
	}
}

func TestParseQstatFErrors(t *testing.T) {
	if _, err := ParseQstatF("    job_state = R\n"); err == nil {
		t.Fatal("attribute outside record accepted")
	}
}

func TestParsePBSNodesErrors(t *testing.T) {
	if _, err := ParsePBSNodes("     state = free\n"); err == nil {
		t.Fatal("attribute before node accepted")
	}
	if _, err := ParsePBSNodes("n1\n     np = four\n"); err == nil {
		t.Fatal("bad np accepted")
	}
}

func TestParseEmptyOutputs(t *testing.T) {
	jobs, err := ParseQstatF("")
	if err != nil || len(jobs) != 0 {
		t.Fatalf("empty qstat: %v, %v", jobs, err)
	}
	nodes, err := ParsePBSNodes("")
	if err != nil || len(nodes) != 0 {
		t.Fatalf("empty pbsnodes: %v, %v", nodes, err)
	}
}

// Property: render→parse round-trips job names, states and CPU
// requests for arbitrary job mixes.
func TestQuickQstatRoundTrip(t *testing.T) {
	f := func(ppns []uint8) bool {
		eng := simtime.NewEngine()
		s := NewServer(eng, "h.dom.example")
		s.AddNode("n1", 64, true)
		want := 0
		for i, p := range ppns {
			if i >= 10 {
				break
			}
			ppn := int(p%8) + 1
			s.Qsub(SubmitRequest{Name: "job", Nodes: 1, PPN: ppn, Runtime: time.Hour})
			want++
		}
		eng.RunUntil(time.Second)
		jobs, err := ParseQstatF(s.QstatF())
		if err != nil || len(jobs) != want {
			return false
		}
		orig := s.Jobs()
		for i, pj := range jobs {
			if pj.CPUs() != orig[i].CPUs() || pj.State != orig[i].State {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestStampFormat(t *testing.T) {
	_, s := newTestServer(t, 1)
	// Base date is Fri Apr 16 2010 08:00 UTC; ANSIC format.
	got := s.stamp(0)
	if got != "Fri Apr 16 08:00:00 2010" {
		t.Fatalf("stamp(0) = %q", got)
	}
	got = s.stamp(9*time.Hour + 55*time.Minute + 40*time.Second)
	if got != "Fri Apr 16 17:55:40 2010" {
		t.Fatalf("stamp = %q", got)
	}
}
