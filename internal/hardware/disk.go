// Package hardware models the commodity PCs the paper's cluster was
// built from: a node with CPU cores and a NIC, a single IDE/SATA disk
// with an MBR partition table, and simulated filesystems that hold the
// configuration files the dual-boot machinery reads and writes.
//
// The model is deliberately file-level, not block-level: the behaviour
// the middleware depends on is "who owns the MBR", "which partition
// holds controlmenu.lst" and "does reimaging Windows destroy the Linux
// partitions", all of which are partition-table and file-map questions.
package hardware

import (
	"fmt"
	"sort"
	"strings"
)

// FSType is a simulated filesystem format.
type FSType uint8

const (
	FSNone FSType = iota // unformatted space
	FSExt3
	FSNTFS
	FSFAT
	FSSwap
)

// String returns the conventional name for the filesystem.
func (f FSType) String() string {
	switch f {
	case FSExt3:
		return "ext3"
	case FSNTFS:
		return "ntfs"
	case FSFAT:
		return "fat"
	case FSSwap:
		return "swap"
	default:
		return "none"
	}
}

// ParseFSType recognises the spellings used in ide.disk and
// diskpart.txt files.
func ParseFSType(s string) (FSType, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "ext3":
		return FSExt3, nil
	case "ntfs":
		return FSNTFS, nil
	case "fat", "fat32", "vfat", "msdos":
		return FSFAT, nil
	case "swap":
		return FSSwap, nil
	case "none", "":
		return FSNone, nil
	default:
		return FSNone, fmt.Errorf("hardware: unknown filesystem %q", s)
	}
}

// Partition is one entry of the MBR partition table plus its simulated
// contents. Index is Linux-style and 1-based: 1–4 are primary
// partitions, 5+ are logical partitions inside the extended partition.
// (GRUB device syntax is 0-based; the grubcfg package converts.)
type Partition struct {
	Index    int
	SizeMB   int64
	Type     FSType
	Label    string
	Active   bool // MBR active flag (what a generic bootloader boots)
	Bootable bool // ide.disk "bootable" marker

	// VBR is the partition's own volume boot record: what a generic
	// MBR chainloads when this partition is active. Windows setup
	// writes its loader here; GRUB can be installed to a partition
	// head instead of the MBR (the §II "changing active partition"
	// multi-boot approach).
	VBR BootloaderKind
	// VBRGrubConfig is the menu.lst path (on this partition) when VBR
	// is BootGRUB; empty means "/grub/menu.lst".
	VBRGrubConfig string

	files       map[string][]byte
	formatCount int
}

// InstallGRUBVBR writes GRUB into the partition's boot record, reading
// its configuration from a file on the same partition.
func (p *Partition) InstallGRUBVBR(configPath string) {
	p.VBR = BootGRUB
	p.VBRGrubConfig = cleanPath(configPath)
}

// Formatted reports whether the partition has a filesystem.
func (p *Partition) Formatted() bool { return p.Type != FSNone && p.Type != FSSwap }

// FormatCount returns how many times the partition has been formatted,
// used by deployment experiments to count destructive operations.
func (p *Partition) FormatCount() int { return p.formatCount }

// Format gives the partition a (new) filesystem, destroying all files
// and its volume boot record.
func (p *Partition) Format(fs FSType) {
	p.Type = fs
	p.files = nil
	p.VBR = BootNone
	p.VBRGrubConfig = ""
	p.formatCount++
}

// WriteFile stores a file on the partition. Paths are cleaned to a
// leading-slash form so "/boot/grub/menu.lst" and "boot/grub/menu.lst"
// address the same file.
func (p *Partition) WriteFile(path string, data []byte) error {
	if !p.Formatted() {
		return fmt.Errorf("hardware: write %s: partition %d is not formatted", path, p.Index)
	}
	if p.files == nil {
		p.files = make(map[string][]byte)
	}
	p.files[cleanPath(path)] = append([]byte(nil), data...)
	return nil
}

// ReadFile retrieves a file from the partition.
func (p *Partition) ReadFile(path string) ([]byte, error) {
	data, ok := p.files[cleanPath(path)]
	if !ok {
		return nil, fmt.Errorf("hardware: %s: no such file on partition %d", path, p.Index)
	}
	return append([]byte(nil), data...), nil
}

// HasFile reports whether path exists on the partition.
func (p *Partition) HasFile(path string) bool {
	_, ok := p.files[cleanPath(path)]
	return ok
}

// RemoveFile deletes a file; deleting a missing file is an error so
// that scripted deployments notice typos.
func (p *Partition) RemoveFile(path string) error {
	cp := cleanPath(path)
	if _, ok := p.files[cp]; !ok {
		return fmt.Errorf("hardware: remove %s: no such file on partition %d", path, p.Index)
	}
	delete(p.files, cp)
	return nil
}

// RenameFile renames a file in place, the operation the paper's batch
// scripts use to swap controlmenu_to_<os>.lst into controlmenu.lst.
func (p *Partition) RenameFile(from, to string) error {
	data, err := p.ReadFile(from)
	if err != nil {
		return err
	}
	if err := p.WriteFile(to, data); err != nil {
		return err
	}
	return p.RemoveFile(from)
}

// CopyFile duplicates a file on the same partition.
func (p *Partition) CopyFile(from, to string) error {
	data, err := p.ReadFile(from)
	if err != nil {
		return err
	}
	return p.WriteFile(to, data)
}

// Files returns the sorted list of file paths on the partition.
func (p *Partition) Files() []string {
	out := make([]string, 0, len(p.files))
	for k := range p.files {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// FileCount returns the number of files on the partition.
func (p *Partition) FileCount() int { return len(p.files) }

func cleanPath(path string) string {
	path = strings.TrimSpace(path)
	if !strings.HasPrefix(path, "/") {
		path = "/" + path
	}
	for strings.Contains(path, "//") {
		path = strings.ReplaceAll(path, "//", "/")
	}
	return path
}

// BootloaderKind identifies what code lives in the disk's MBR boot
// sector.
type BootloaderKind uint8

const (
	// BootNone: freshly cleaned disk, nothing to boot locally.
	BootNone BootloaderKind = iota
	// BootGRUB: GRUB stage1 in the MBR; it ignores the active flag and
	// reads its configuration file instead.
	BootGRUB
	// BootWindows: the generic Windows MBR code, which boots the
	// active primary partition.
	BootWindows
)

// String names the bootloader.
func (b BootloaderKind) String() string {
	switch b {
	case BootGRUB:
		return "grub"
	case BootWindows:
		return "windows-mbr"
	default:
		return "none"
	}
}

// MBR models the master boot record: which loader owns the boot
// sector, and — when GRUB is installed — where GRUB finds its
// configuration file. The paper's v1 pain point is exactly this state:
// reimaging Windows rewrites the MBR and "damages GRUB which boots
// Linux".
type MBR struct {
	Loader BootloaderKind
	// GrubConfigPartition / GrubConfigPath locate menu.lst when Loader
	// is BootGRUB (e.g. partition 2, "/grub/menu.lst").
	GrubConfigPartition int
	GrubConfigPath      string
}

// Disk is a single direct-attached disk with an MBR partition table.
type Disk struct {
	SizeMB int64
	MBR    MBR
	parts  []*Partition
}

// NewDisk returns an empty disk of the given size. The paper's nodes
// used 250 GB disks.
func NewDisk(sizeMB int64) *Disk {
	if sizeMB <= 0 {
		panic("hardware: non-positive disk size")
	}
	return &Disk{SizeMB: sizeMB}
}

// maxPrimary is the MBR limit on primary partition slots. Logical
// partitions (index >= 5) live inside an extended partition which we
// model implicitly.
const maxPrimary = 4

// Partitions returns the partition table sorted by index.
func (d *Disk) Partitions() []*Partition {
	out := append([]*Partition(nil), d.parts...)
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// Partition returns the partition with the given 1-based index.
func (d *Disk) Partition(index int) (*Partition, error) {
	for _, p := range d.parts {
		if p.Index == index {
			return p, nil
		}
	}
	return nil, fmt.Errorf("hardware: no partition %d", index)
}

// HasPartition reports whether the index is allocated.
func (d *Disk) HasPartition(index int) bool {
	_, err := d.Partition(index)
	return err == nil
}

// UsedMB returns the space consumed by all partitions.
func (d *Disk) UsedMB() int64 {
	var used int64
	for _, p := range d.parts {
		used += p.SizeMB
	}
	return used
}

// FreeMB returns unallocated space.
func (d *Disk) FreeMB() int64 { return d.SizeMB - d.UsedMB() }

// AddPartition creates a partition with an explicit index. Index 1–4
// are primary; 5+ logical. A sizeMB of -1 means "rest of the disk"
// (the '*' convention in ide.disk).
func (d *Disk) AddPartition(index int, sizeMB int64) (*Partition, error) {
	if index < 1 {
		return nil, fmt.Errorf("hardware: invalid partition index %d", index)
	}
	if d.HasPartition(index) {
		return nil, fmt.Errorf("hardware: partition %d already exists", index)
	}
	if sizeMB == -1 {
		sizeMB = d.FreeMB()
	}
	if sizeMB <= 0 {
		return nil, fmt.Errorf("hardware: invalid partition size %d MB", sizeMB)
	}
	if sizeMB > d.FreeMB() {
		return nil, fmt.Errorf("hardware: partition %d needs %d MB, only %d MB free", index, sizeMB, d.FreeMB())
	}
	p := &Partition{Index: index, SizeMB: sizeMB}
	d.parts = append(d.parts, p)
	return p, nil
}

// CreateNextPrimary allocates the lowest free primary slot, mirroring
// diskpart's "create partition primary". sizeMB of -1 takes the rest
// of the disk.
func (d *Disk) CreateNextPrimary(sizeMB int64) (*Partition, error) {
	for i := 1; i <= maxPrimary; i++ {
		if !d.HasPartition(i) {
			return d.AddPartition(i, sizeMB)
		}
	}
	return nil, fmt.Errorf("hardware: all %d primary slots in use", maxPrimary)
}

// DeletePartition removes a partition and its contents.
func (d *Disk) DeletePartition(index int) error {
	for i, p := range d.parts {
		if p.Index == index {
			d.parts = append(d.parts[:i], d.parts[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("hardware: no partition %d", index)
}

// Clean wipes the partition table and the MBR, as diskpart's "clean"
// does. Every file on every partition is lost.
func (d *Disk) Clean() {
	d.parts = nil
	d.MBR = MBR{}
}

// SetActive marks exactly one partition active (and clears the flag on
// the others), as diskpart's "active" does.
func (d *Disk) SetActive(index int) error {
	target, err := d.Partition(index)
	if err != nil {
		return err
	}
	if target.Index > maxPrimary {
		return fmt.Errorf("hardware: cannot mark logical partition %d active", index)
	}
	for _, p := range d.parts {
		p.Active = false
	}
	target.Active = true
	return nil
}

// ActivePartition returns the active primary partition, if any.
func (d *Disk) ActivePartition() (*Partition, bool) {
	for _, p := range d.parts {
		if p.Active {
			return p, true
		}
	}
	return nil, false
}

// InstallGRUB writes GRUB into the MBR, pointing it at a config file
// on a partition. This is what OSCAR's systemconfigurator does at the
// end of a Linux node install.
func (d *Disk) InstallGRUB(configPartition int, configPath string) error {
	if !d.HasPartition(configPartition) {
		return fmt.Errorf("hardware: GRUB config partition %d does not exist", configPartition)
	}
	d.MBR = MBR{Loader: BootGRUB, GrubConfigPartition: configPartition, GrubConfigPath: cleanPath(configPath)}
	return nil
}

// InstallWindowsMBR overwrites the boot sector with the generic
// Windows loader. If GRUB was installed it is destroyed — the exact
// failure mode that forces v1 of dualboot-oscar to reinstall Linux
// after every Windows reimage.
func (d *Disk) InstallWindowsMBR() {
	d.MBR = MBR{Loader: BootWindows}
}

// String summarises the disk for logs.
func (d *Disk) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "disk %dMB mbr=%s", d.SizeMB, d.MBR.Loader)
	for _, p := range d.Partitions() {
		fmt.Fprintf(&b, " [%d:%s %dMB", p.Index, p.Type, p.SizeMB)
		if p.Active {
			b.WriteString(" active")
		}
		if p.Label != "" {
			fmt.Fprintf(&b, " %q", p.Label)
		}
		b.WriteString("]")
	}
	return b.String()
}
