package sweep

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// specHashGoldens pins the content address of every committed spec
// document. These are load-bearing constants: the service layer keys
// its result cache on SpecHash, so a refactor that perturbs
// MarshalSpec's canonical form — reordered keys, changed indentation,
// a default that starts serialising — would silently orphan every
// cached result. If this test fails, the canonical form changed:
// either fix the regression or deliberately accept the new hashes
// (and the cache invalidation they imply) by updating the table.
var specHashGoldens = map[string]string{
	"e12_mix_sweep.json":        "4055c12171b5d7879e98fd290cc02494a454d7de5bf189d7cc059db8d28364b8",
	"e13_sweep_modes.json":      "04e6dab60e9d9044796888acb9ae7d15d25681462081442f654b4def1e89b773",
	"e14_routing_policies.json": "d89d608d87ecc08efcf6531af550024d7afab08e5521502f3006862279336021",
	"e15_policy_suite.json":     "91624d6322b25e393445f35a364b130c0ba2b6e1d209990edb56b2be440c493d",
	"e16_sched_policies.json":   "89e887356af49723253f2933aee1387d2de9a243eb0cc658e6a283c7290b8b65",
	"e17_metro_scale.json":      "c6d4eee4419ed88c420dbc75bb01744c663467da6ef7304b81c9ebedf0ccea6e",
	"e19_swf_replay.json":       "1912480f8fa4a7c10ca574fca896fafb0dc5616657cbe9fe2835adf79d8dda2e",
}

func TestSpecHashGoldenValues(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "specs", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != len(specHashGoldens) {
		t.Fatalf("specs/ holds %d documents, golden table has %d — add the new document's hash",
			len(paths), len(specHashGoldens))
	}
	for _, path := range paths {
		base := filepath.Base(path)
		want, ok := specHashGoldens[base]
		if !ok {
			t.Errorf("specs/%s has no golden hash", base)
			continue
		}
		committed, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		sp, err := LoadSpec(bytes.NewReader(committed))
		if err != nil {
			t.Fatalf("%s: %v", base, err)
		}
		got, err := SpecHash(sp)
		if err != nil {
			t.Fatalf("%s: %v", base, err)
		}
		if got != want {
			t.Errorf("%s: SpecHash = %s, want %s (canonical form changed — see specHashGoldens)", base, got, want)
		}
	}
}

// The committed documents are canonical (SaveSpec output), so loading
// one and hashing it must equal hashing the raw file bytes — the
// property that lets a submitted document of any formatting land on
// the same cache entry as its canonical twin.
func TestSpecHashIsHashOfCanonicalBytes(t *testing.T) {
	path := filepath.Join("..", "..", "specs", "e13_sweep_modes.json")
	committed, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := LoadSpec(bytes.NewReader(committed))
	if err != nil {
		t.Fatal(err)
	}
	canonical, err := MarshalSpec(sp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(canonical, committed) {
		t.Fatal("committed e13 document is not canonical; SpecHash goldens assume SaveSpec output")
	}
	// Reformat the document (different whitespace, same content): the
	// hash must not move.
	reformatted := bytes.ReplaceAll(committed, []byte("\n  "), []byte("\n      "))
	sp2, err := LoadSpec(bytes.NewReader(reformatted))
	if err != nil {
		t.Fatal(err)
	}
	h1, err := SpecHash(sp)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := SpecHash(sp2)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("reformatting the document moved the hash: %s vs %s", h1, h2)
	}
}
