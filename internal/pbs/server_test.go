package pbs

import (
	"testing"
	"time"

	"repro/internal/simtime"
)

func newTestServer(t *testing.T, nodes int) (*simtime.Engine, *Server) {
	t.Helper()
	eng := simtime.NewEngine()
	s := NewServer(eng, "eridani.qgg.hud.ac.uk")
	for i := 1; i <= nodes; i++ {
		if _, err := s.AddNode(nodeName(i), 4, true); err != nil {
			t.Fatal(err)
		}
	}
	return eng, s
}

func nodeName(i int) string {
	return "enode" + string(rune('0'+i/10)) + string(rune('0'+i%10))
}

func TestServerName(t *testing.T) {
	_, s := newTestServer(t, 1)
	if s.Name() != "eridani.qgg.hud.ac.uk" {
		t.Fatalf("Name() = %q", s.Name())
	}
}

func TestQsubAssignsSequentialIDs(t *testing.T) {
	eng, s := newTestServer(t, 2)
	j1, err := s.Qsub(SubmitRequest{Name: "a", Runtime: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	j2, _ := s.Qsub(SubmitRequest{Name: "b", Runtime: time.Minute})
	if j1.ID != "1.eridani.qgg.hud.ac.uk" || j2.ID != "2.eridani.qgg.hud.ac.uk" {
		t.Fatalf("IDs = %q, %q", j1.ID, j2.ID)
	}
	eng.Run()
}

func TestFCFSRunsJobToCompletion(t *testing.T) {
	eng, s := newTestServer(t, 1)
	var started, ended time.Duration
	j, err := s.Qsub(SubmitRequest{
		Name: "sleep", Nodes: 1, PPN: 4, Runtime: 10 * time.Minute,
		OnEnd: func(j *Job) { ended = eng.Now() },
	})
	if err != nil {
		t.Fatal(err)
	}
	s.OnJobStart = func(job *Job) { started = eng.Now() }
	eng.Run()
	if j.State != StateComplete {
		t.Fatalf("state = %v", j.State)
	}
	if started != 0 {
		t.Fatalf("started at %v, want 0", started)
	}
	if ended != 10*time.Minute {
		t.Fatalf("ended at %v, want 10m", ended)
	}
	if len(j.ExecHost) != 4 {
		t.Fatalf("exec slots = %d", len(j.ExecHost))
	}
}

func TestExclusiveNodeAllocation(t *testing.T) {
	eng, s := newTestServer(t, 2)
	jA, _ := s.Qsub(SubmitRequest{Name: "a", Nodes: 1, PPN: 4, Runtime: time.Hour})
	jB, _ := s.Qsub(SubmitRequest{Name: "b", Nodes: 1, PPN: 4, Runtime: time.Hour})
	jC, _ := s.Qsub(SubmitRequest{Name: "c", Nodes: 1, PPN: 4, Runtime: time.Hour})
	eng.RunUntil(time.Minute)
	if jA.State != StateRunning || jB.State != StateRunning {
		t.Fatalf("a=%v b=%v", jA.State, jB.State)
	}
	if jC.State != StateQueued {
		t.Fatalf("c=%v, want queued (cluster full)", jC.State)
	}
	// a and b end at 1h, freeing both nodes; c starts.
	eng.RunUntil(61 * time.Minute)
	if jC.State != StateRunning {
		t.Fatalf("c=%v after backlog drained", jC.State)
	}
	eng.Run()
	if jC.State != StateComplete {
		t.Fatalf("c=%v at end", jC.State)
	}
}

func TestMultiNodeJob(t *testing.T) {
	eng, s := newTestServer(t, 4)
	j, _ := s.Qsub(SubmitRequest{Name: "mpi", Nodes: 3, PPN: 4, Runtime: time.Minute})
	eng.RunUntil(time.Second)
	if j.State != StateRunning {
		t.Fatalf("state = %v", j.State)
	}
	hosts := map[string]bool{}
	for _, slot := range j.ExecHost {
		hosts[slot.Node] = true
	}
	if len(hosts) != 3 || len(j.ExecHost) != 12 {
		t.Fatalf("hosts = %v, slots = %d", hosts, len(j.ExecHost))
	}
	eng.Run()
}

func TestPartialNodeSharing(t *testing.T) {
	eng, s := newTestServer(t, 1)
	j1, _ := s.Qsub(SubmitRequest{Name: "a", Nodes: 1, PPN: 2, Runtime: time.Hour})
	j2, _ := s.Qsub(SubmitRequest{Name: "b", Nodes: 1, PPN: 2, Runtime: time.Hour})
	eng.RunUntil(time.Second)
	if j1.State != StateRunning || j2.State != StateRunning {
		t.Fatalf("two ppn=2 jobs should share one 4-core node: %v %v", j1.State, j2.State)
	}
	n, _ := s.Node(nodeName(1))
	if n.State() != NodeExclusive {
		t.Fatalf("full node state = %v", n.State())
	}
	eng.Run()
}

func TestStrictFCFSHeadOfLineBlocking(t *testing.T) {
	eng, s := newTestServer(t, 2)
	s.Qsub(SubmitRequest{Name: "big", Nodes: 2, PPN: 4, Runtime: 2 * time.Hour})
	eng.RunUntil(time.Second)
	// Head job takes the whole cluster; a wide job queues behind it,
	// and strict FCFS must not let a small job jump the wide one.
	wide, _ := s.Qsub(SubmitRequest{Name: "wide", Nodes: 2, PPN: 4, Runtime: time.Hour})
	small, _ := s.Qsub(SubmitRequest{Name: "small", Nodes: 1, PPN: 1, Runtime: time.Minute})
	eng.RunUntil(time.Hour)
	if wide.State != StateQueued || small.State != StateQueued {
		t.Fatalf("wide=%v small=%v, want both queued behind the blocker", wide.State, small.State)
	}
	eng.Run()
	if wide.StartTime >= small.StartTime {
		t.Fatalf("small (start %v) jumped wide (start %v)", small.StartTime, wide.StartTime)
	}
}

func TestBackfillExtension(t *testing.T) {
	eng, s := newTestServer(t, 2)
	s.Backfill = true
	// One node down: the 2-node head job is feasible on the configured
	// table but cannot start, so backfill lets the small job through.
	s.SetNodeAvailable(nodeName(2), false)
	head, _ := s.Qsub(SubmitRequest{Name: "head", Nodes: 2, PPN: 4, Runtime: time.Hour})
	small, _ := s.Qsub(SubmitRequest{Name: "small", Nodes: 1, PPN: 1, Runtime: time.Minute})
	eng.RunUntil(time.Second)
	if head.State != StateQueued {
		t.Fatalf("head = %v", head.State)
	}
	if small.State != StateRunning {
		t.Fatalf("small = %v, want running via backfill", small.State)
	}
	s.SetNodeAvailable(nodeName(2), true)
	eng.Run()
}

func TestQsubRejectsInfeasibleRequests(t *testing.T) {
	_, s := newTestServer(t, 2)
	// More nodes than the cluster has.
	if _, err := s.Qsub(SubmitRequest{Name: "huge", Nodes: 3, PPN: 4, Runtime: time.Hour}); err == nil {
		t.Fatal("3-node job accepted on a 2-node cluster")
	}
	// PPN beyond any node's core count.
	if _, err := s.Qsub(SubmitRequest{Name: "fat", Nodes: 1, PPN: 8, Runtime: time.Hour}); err == nil {
		t.Fatal("ppn=8 accepted on 4-core nodes")
	}
	// Down nodes still count as configured: the hybrid's other-side
	// nodes may boot back any time.
	s.SetNodeAvailable(nodeName(1), false)
	s.SetNodeAvailable(nodeName(2), false)
	if _, err := s.Qsub(SubmitRequest{Name: "ok", Nodes: 2, PPN: 4, Runtime: time.Hour}); err != nil {
		t.Fatalf("feasible-but-down request rejected: %v", err)
	}
}

func TestWalltimeKill(t *testing.T) {
	eng, s := newTestServer(t, 1)
	j, _ := s.Qsub(SubmitRequest{Name: "over", Runtime: time.Hour, Walltime: 10 * time.Minute})
	eng.Run()
	if j.State != StateComplete || !j.KilledAtWalltime() {
		t.Fatalf("state=%v killed=%v", j.State, j.KilledAtWalltime())
	}
	if j.EndTime != 10*time.Minute {
		t.Fatalf("end = %v", j.EndTime)
	}
}

func TestQdelQueuedAndRunning(t *testing.T) {
	eng, s := newTestServer(t, 1)
	run, _ := s.Qsub(SubmitRequest{Name: "r", Nodes: 1, PPN: 4, Runtime: time.Hour})
	wait, _ := s.Qsub(SubmitRequest{Name: "w", Nodes: 1, PPN: 4, Runtime: time.Hour})
	eng.RunUntil(time.Minute)
	if err := s.Qdel(wait.ID); err != nil {
		t.Fatal(err)
	}
	if wait.State != StateComplete {
		t.Fatalf("queued qdel state = %v", wait.State)
	}
	if err := s.Qdel(run.ID); err != nil {
		t.Fatal(err)
	}
	if run.State != StateComplete {
		t.Fatalf("running qdel state = %v", run.State)
	}
	n, _ := s.Node(nodeName(1))
	if n.FreeCPUs() != 4 {
		t.Fatalf("cpus not released: %d free", n.FreeCPUs())
	}
	if err := s.Qdel("999.x"); err == nil {
		t.Fatal("qdel of unknown job succeeded")
	}
	eng.Run()
}

func TestNodeDownRequeuesRerunnable(t *testing.T) {
	eng, s := newTestServer(t, 2)
	j, _ := s.Qsub(SubmitRequest{Name: "rerun", Nodes: 1, PPN: 4, Runtime: time.Hour, Rerun: true})
	eng.RunUntil(time.Minute)
	if j.State != StateRunning {
		t.Fatal("not running")
	}
	victim := j.ExecHost[0].Node
	if err := s.SetNodeAvailable(victim, false); err != nil {
		t.Fatal(err)
	}
	if j.State != StateQueued {
		t.Fatalf("state after node loss = %v, want Q (rerunnable)", j.State)
	}
	// It restarts on the surviving node.
	eng.RunUntil(2 * time.Minute)
	if j.State != StateRunning {
		t.Fatalf("state = %v, want rescheduled", j.State)
	}
	if j.ExecHost[0].Node == victim {
		t.Fatal("rescheduled onto the dead node")
	}
}

func TestNodeDownKillsNonRerunnable(t *testing.T) {
	eng, s := newTestServer(t, 1)
	ended := false
	j, _ := s.Qsub(SubmitRequest{Name: "fragile", Nodes: 1, PPN: 4, Runtime: time.Hour,
		OnEnd: func(*Job) { ended = true }})
	eng.RunUntil(time.Minute)
	s.SetNodeAvailable(j.ExecHost[0].Node, false)
	if j.State != StateComplete || !ended {
		t.Fatalf("state=%v ended=%v", j.State, ended)
	}
	// The job died mid-run: it must carry the explicit failure signal
	// (it was NOT killed at a walltime limit, and treating it as a
	// clean completion would count a dead job as successful work).
	if !j.Failed() {
		t.Fatal("interrupted non-rerunnable job not marked failed")
	}
	if j.KilledAtWalltime() {
		t.Fatal("node-loss interrupt misreported as a walltime kill")
	}
}

func TestRequeueFiresOnJobRequeueNotEnd(t *testing.T) {
	eng, s := newTestServer(t, 2)
	var requeued, ended int
	s.OnJobRequeue = func(*Job) { requeued++ }
	s.OnJobEnd = func(*Job) { ended++ }
	j, _ := s.Qsub(SubmitRequest{Name: "rerun", Nodes: 1, PPN: 4, Runtime: time.Hour, Rerun: true})
	eng.RunUntil(time.Minute)
	s.SetNodeAvailable(j.ExecHost[0].Node, false)
	if requeued != 1 || ended != 0 {
		t.Fatalf("requeued=%d ended=%d after node loss", requeued, ended)
	}
	eng.Run()
	if requeued != 1 || ended != 1 {
		t.Fatalf("requeued=%d ended=%d after drain", requeued, ended)
	}
	if j.Failed() {
		t.Fatal("rerun job that completed on its second attempt marked failed")
	}
}

func TestNodeOfflineDrainsWithoutKilling(t *testing.T) {
	eng, s := newTestServer(t, 1)
	j, _ := s.Qsub(SubmitRequest{Name: "j", Nodes: 1, PPN: 4, Runtime: 30 * time.Minute})
	eng.RunUntil(time.Minute)
	if err := s.SetNodeOffline(nodeName(1), true); err != nil {
		t.Fatal(err)
	}
	if j.State != StateRunning {
		t.Fatalf("offline killed the job: %v", j.State)
	}
	// New work does not start on the offline node.
	j2, _ := s.Qsub(SubmitRequest{Name: "j2", Nodes: 1, PPN: 1, Runtime: time.Minute})
	eng.Run()
	if j2.State != StateQueued {
		t.Fatalf("j2 = %v, want queued on drained cluster", j2.State)
	}
	s.SetNodeOffline(nodeName(1), false)
	eng.Run()
	if j2.State != StateComplete {
		t.Fatalf("j2 = %v after node back online", j2.State)
	}
}

func TestNodeJoinsDownThenComesUp(t *testing.T) {
	eng := simtime.NewEngine()
	s := NewServer(eng, "eridani.qgg")
	s.AddNode("w1", 4, false) // currently booted into Windows
	j, _ := s.Qsub(SubmitRequest{Name: "j", Runtime: time.Minute})
	eng.RunUntil(time.Minute)
	if j.State != StateQueued {
		t.Fatalf("job ran on a down node: %v", j.State)
	}
	if s.TotalCPUs() != 0 {
		t.Fatalf("TotalCPUs = %d with all nodes down", s.TotalCPUs())
	}
	s.SetNodeAvailable("w1", true)
	eng.Run()
	if j.State != StateComplete {
		t.Fatalf("job = %v after node came up", j.State)
	}
}

func TestAddNodeValidation(t *testing.T) {
	eng := simtime.NewEngine()
	s := NewServer(eng, "h.d")
	if _, err := s.AddNode("n", 0, true); err == nil {
		t.Fatal("np=0 accepted")
	}
	if _, err := s.AddNode("n", 4, true); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddNode("n", 4, true); err == nil {
		t.Fatal("duplicate node accepted")
	}
	if _, err := s.Node("missing"); err == nil {
		t.Fatal("unknown node lookup succeeded")
	}
	if err := s.SetNodeAvailable("missing", true); err == nil {
		t.Fatal("SetNodeAvailable on unknown node succeeded")
	}
	if err := s.SetNodeOffline("missing", true); err == nil {
		t.Fatal("SetNodeOffline on unknown node succeeded")
	}
}

func TestExecCallbackReceivesHosts(t *testing.T) {
	eng, s := newTestServer(t, 2)
	var hosts []string
	s.Qsub(SubmitRequest{Name: "switch", Nodes: 1, PPN: 4, Runtime: 10 * time.Second,
		Exec: func(h []string) { hosts = h }})
	eng.Run()
	if len(hosts) != 1 {
		t.Fatalf("hosts = %v", hosts)
	}
}

func TestQueuedAndRunningViews(t *testing.T) {
	eng, s := newTestServer(t, 1)
	s.Qsub(SubmitRequest{Name: "a", Nodes: 1, PPN: 4, Runtime: time.Hour})
	s.Qsub(SubmitRequest{Name: "b", Nodes: 1, PPN: 4, Runtime: time.Hour})
	s.Qsub(SubmitRequest{Name: "c", Nodes: 1, PPN: 4, Runtime: time.Hour})
	eng.RunUntil(time.Second)
	if len(s.RunningJobs()) != 1 || len(s.QueuedJobs()) != 2 {
		t.Fatalf("R=%d Q=%d", len(s.RunningJobs()), len(s.QueuedJobs()))
	}
	if s.QueuedJobs()[0].Name != "b" {
		t.Fatalf("queue order wrong: %v", s.QueuedJobs()[0].Name)
	}
}

func TestJobLookup(t *testing.T) {
	eng, s := newTestServer(t, 1)
	j, _ := s.Qsub(SubmitRequest{Name: "x", Runtime: time.Second})
	got, err := s.Job(j.ID)
	if err != nil || got != j {
		t.Fatalf("Job() = %v, %v", got, err)
	}
	if _, err := s.Job("nope"); err == nil {
		t.Fatal("unknown job lookup succeeded")
	}
	eng.Run()
}

func TestEmptyRequestDefaults(t *testing.T) {
	eng, s := newTestServer(t, 1)
	j, err := s.Qsub(SubmitRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if j.Nodes != 1 || j.PPN != 1 || j.Name != "STDIN" || j.Owner != "nobody" || j.Queue != "default" {
		t.Fatalf("defaults = %+v", j)
	}
	eng.Run()
}

func TestNegativeRuntimeRejected(t *testing.T) {
	_, s := newTestServer(t, 1)
	if _, err := s.Qsub(SubmitRequest{Runtime: -time.Second}); err == nil {
		t.Fatal("negative runtime accepted")
	}
}

func TestWaitTimes(t *testing.T) {
	eng, s := newTestServer(t, 1)
	a, _ := s.Qsub(SubmitRequest{Name: "a", Nodes: 1, PPN: 4, Runtime: time.Hour})
	b, _ := s.Qsub(SubmitRequest{Name: "b", Nodes: 1, PPN: 4, Runtime: time.Hour})
	eng.Run()
	if a.StartTime != 0 {
		t.Fatalf("a start = %v", a.StartTime)
	}
	if b.StartTime != time.Hour {
		t.Fatalf("b start = %v, want 1h", b.StartTime)
	}
	if b.QTime != 0 {
		t.Fatalf("b qtime = %v", b.QTime)
	}
}
