package sweep

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/workload"
)

// e15Shape is a document-worthy grid: multi-axis, scalar seed/cycle,
// derived trace names.
func e15Shape() Grid {
	return Grid{
		Modes: []cluster.Mode{cluster.HybridV2},
		Policies: []PolicySpec{
			PolicyByNameMust("fcfs"), PolicyByNameMust("threshold"),
		},
		Traces: []TraceSpec{
			{Kind: TraceDiurnal, JobsPerHour: 3, WindowsFrac: 0.5, Duration: 72 * time.Hour},
			{Kind: TraceBurst, JobsPerHour: 3, WindowsFrac: 0.5, Duration: 72 * time.Hour},
		},
		BaseSeed: 15,
		Cycle:    5 * time.Minute,
	}
}

// gridsEquivalent compares two grids by what actually matters: the
// cells they expand to — names, seeds and scenario-shaping coordinates.
func gridsEquivalent(t *testing.T, a, b Grid) {
	t.Helper()
	ca, cb := a.Expand(), b.Expand()
	if len(ca) != len(cb) {
		t.Fatalf("cell counts differ: %d vs %d", len(ca), len(cb))
	}
	for i := range ca {
		if ca[i].Name() != cb[i].Name() {
			t.Fatalf("cell %d names differ: %s vs %s", i, ca[i].Name(), cb[i].Name())
		}
		if ca[i].Seed != cb[i].Seed || ca[i].TraceSeed != cb[i].TraceSeed {
			t.Fatalf("cell %s seeds differ", ca[i].Name())
		}
		if ca[i].cycle != cb[i].cycle || ca[i].horizon != cb[i].horizon || ca[i].initialLinux != cb[i].initialLinux {
			t.Fatalf("cell %s run parameters differ", ca[i].Name())
		}
	}
}

// Satellite acceptance: ParseGridSpec(GridString(g)) is an equivalent
// grid.
func TestGridStringRoundTrip(t *testing.T) {
	grids := map[string]Grid{
		"e15-shape": e15Shape(),
		"topology": {
			Modes:        []cluster.Mode{cluster.HybridV2, cluster.Static},
			NodeCounts:   []int{8, 16},
			Traces:       []TraceSpec{{JobsPerHour: 3, WindowsFrac: 0.4, Duration: 8 * time.Hour}},
			FailureRates: []float64{0, 0.05},
			Topologies:   []TopologySpec{{Name: "single"}, mustTopology("campus")},
			Routings:     allRoutings,
			BaseSeed:     7,
			Horizon:      48 * time.Hour,
		},
		"switchlat": {
			Modes:           []cluster.Mode{cluster.HybridV2},
			Traces:          []TraceSpec{{Kind: TracePhased, WindowsFrac: 0.5, JobsPerHour: 4, Duration: 24 * time.Hour}},
			SwitchLatencies: []time.Duration{0, 10 * time.Minute},
			BaseSeed:        9,
		},
	}
	for name, g := range grids {
		spec, err := GridString(g)
		if err != nil {
			t.Fatalf("%s: GridString: %v", name, err)
		}
		back, err := ParseGridSpec(spec)
		if err != nil {
			t.Fatalf("%s: reparse %q: %v", name, spec, err)
		}
		gridsEquivalent(t, g, back)
	}
}

func TestGridStringRejectsInexpressibleGrids(t *testing.T) {
	custom := Grid{Traces: []TraceSpec{{Name: "alternating", Custom: func(int64) workload.Trace { return nil }}}}
	if _, err := GridString(custom); err == nil {
		t.Fatal("custom trace serialised without error")
	}
	bespoke := Grid{Topologies: []TopologySpec{{Name: "lab", Members: []TopologyMember{{Name: "x"}}}}}
	bespoke.Traces = []TraceSpec{{}}
	if _, err := GridString(bespoke); err == nil {
		t.Fatal("bespoke topology serialised without error")
	}
	// Trace shapes that are not a full kind × rate × winfrac cross
	// cannot be expressed either.
	ragged := Grid{Traces: []TraceSpec{
		{JobsPerHour: 2, WindowsFrac: 0.2, Duration: 6 * time.Hour},
		{JobsPerHour: 3, WindowsFrac: 0.5, Duration: 6 * time.Hour},
	}}
	if _, err := GridString(ragged); err == nil {
		t.Fatal("ragged trace set serialised without error")
	}
}

// Satellite acceptance: SaveSpec(LoadSpec(x)) is byte-identical for a
// canonical document, and one Save canonicalises any loadable input.
func TestSpecDocumentRoundTripByteStable(t *testing.T) {
	sp := Spec{Version: SpecVersion, Name: "round-trip", Grid: e15Shape()}
	var first bytes.Buffer
	if err := SaveSpec(&first, sp); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSpec(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Name != "round-trip" || loaded.Version != SpecVersion {
		t.Fatalf("loaded = %+v", loaded)
	}
	gridsEquivalent(t, sp.Grid, loaded.Grid)
	var second bytes.Buffer
	if err := SaveSpec(&second, loaded); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("SaveSpec(LoadSpec(x)) diverged:\n--- first ---\n%s\n--- second ---\n%s", first.String(), second.String())
	}

	// A hand-written, non-canonical document (reordered keys, extra
	// whitespace) converges to the canonical form after one pass.
	hand := `{
		"grid": {"traces": "diurnal,burst", "hours": "72", "modes": "hybrid-v2",
		         "ctlpolicies": "fcfs,threshold", "winfracs": "0.5", "rates": "3"},
		"cycle": "5m",
		"name": "round-trip",
		"seeds": {"base": 15},
		"spec_version": 1
	}`
	fromHand, err := LoadSpec(strings.NewReader(hand))
	if err != nil {
		t.Fatal(err)
	}
	var canon bytes.Buffer
	if err := SaveSpec(&canon, fromHand); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(canon.Bytes(), first.Bytes()) {
		t.Fatalf("hand-written document did not canonicalise:\n%s\nvs\n%s", canon.String(), first.String())
	}
}

func TestLoadSpecErrors(t *testing.T) {
	cases := map[string]string{
		`{"grid": {}}`:                                             "no spec_version",
		`{"spec_version": 99, "grid": {}}`:                         "unsupported spec_version 99 (valid: 1)",
		`{"spec_version": 1, "grid": {"plan9": "x"}}`:              "unknown grid axis key",
		`{"spec_version": 1, "grid": {"plan9": "x"}} `:             "valid: modes | ctlpolicies",
		`{"spec_version": 1, "grid": {"seed": "4"}}`:               "belongs at the document top level",
		`{"spec_version": 1, "grid": {"nodes": 8}}`:                "must be a string",
		`{"spec_version": 1, "grid": {}, "cycle": "never"}`:        "bad cycle",
		`{"spec_version": 1, "grid": {}, "horizon": "-4h"}`:        "bad horizon",
		`{"spec_version": 1, "grid": {}, "unknown_field": 1}`:      "unknown field",
		`{"spec_version": 1, "grid": {"nodes": "8;switchlat=5m"}}`: "must not contain", // smuggled separator must not inject a key
	}
	for doc, want := range cases {
		_, err := LoadSpec(strings.NewReader(doc))
		if err == nil {
			t.Errorf("document %s loaded without error", doc)
			continue
		}
		if want != "" && !strings.Contains(err.Error(), want) {
			t.Errorf("document %s: error %v, want substring %q", doc, err, want)
		}
	}
}

// Deprecated aliases inside a document parse but surface as loader
// warnings, exactly like the compact notation.
func TestLoadSpecAliasWarning(t *testing.T) {
	doc := `{"spec_version": 1, "grid": {"policies": "fairshare"}}`
	sp, err := LoadSpec(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Grid.Policies) != 1 || sp.Grid.Policies[0].Name != "fairshare" {
		t.Fatalf("policies = %+v", sp.Grid.Policies)
	}
	if len(sp.Warnings) != 1 || !strings.Contains(sp.Warnings[0], "deprecated") {
		t.Fatalf("warnings = %v", sp.Warnings)
	}
}

// A grid field with no document representation must refuse to
// serialise rather than silently replay a different experiment.
func TestMarshalSpecRejectsInexpressibleInitialLinux(t *testing.T) {
	g := e15Shape()
	g.InitialLinux = 3
	if _, err := MarshalSpec(Spec{Version: SpecVersion, Grid: g}); err == nil {
		t.Fatal("InitialLinux serialised without error")
	}
}
