package sweep

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/grid"
)

// ParseGridSpec builds a Grid from the qsim CLI's compact grid
// notation: semicolon-separated key=comma-list pairs, e.g.
//
//	modes=hybrid-v2,static-split;nodes=8,16;winfracs=0.25,0.5;failrates=0,0.05
//
// Keys:
//
//	modes       cluster organisations (hybrid-v1|hybrid-v2|static-split|mono-stable)
//	ctlpolicies controller policies (fcfs|threshold|hysteresis|predictive|fairshare);
//	            "policies" is accepted as a legacy alias
//	schedpolicies head-scheduler queue disciplines (fcfs|backfill)
//	nodes     compute-node counts
//	rates     Poisson arrival rates, jobs/hour (one trace shape per rate×winfrac)
//	winfracs  Windows demand shares (0..1)
//	hours     Poisson submission window in hours (single value)
//	traces    trace kinds (poisson|phased|matlabga|diurnal|burst); crossed with rates/winfracs
//	failrates per-boot failure probabilities (0..1)
//	topologies fabric presets (single|campus|twin-hybrid)
//	routings  campus routing policies (least-loaded|round-robin|hybrid-last)
//	seed      base seed (single value)
//	cycle     controller cycle, Go duration (single value)
//	horizon   per-cell virtual-time bound, Go duration (single value;
//	          default: trace span + 48h)
//
// Unknown keys are errors; omitted keys take the Grid defaults.
func ParseGridSpec(spec string) (Grid, error) {
	var g Grid
	rates := []float64{4}
	winfracs := []float64{0.3}
	kinds := []TraceKind{TracePoisson}
	hours := 24.0
	for _, field := range strings.Split(spec, ";") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, vals, ok := strings.Cut(field, "=")
		if !ok {
			return g, fmt.Errorf("sweep: grid field %q is not key=values", field)
		}
		key = strings.TrimSpace(key)
		list := strings.Split(vals, ",")
		switch key {
		case "modes":
			for _, v := range list {
				m, err := ParseMode(strings.TrimSpace(v))
				if err != nil {
					return g, err
				}
				g.Modes = append(g.Modes, m)
			}
		case "ctlpolicies", "policies": // "policies" is the legacy alias
			for _, v := range list {
				p, err := PolicyByName(strings.TrimSpace(v))
				if err != nil {
					return g, err
				}
				g.Policies = append(g.Policies, p)
			}
		case "schedpolicies":
			for _, v := range list {
				p, err := cluster.ParseSchedPolicy(strings.TrimSpace(v))
				if err != nil {
					return g, fmt.Errorf("sweep: %w", err)
				}
				g.SchedPolicies = append(g.SchedPolicies, p)
			}
		case "nodes":
			for _, v := range list {
				n, err := strconv.Atoi(strings.TrimSpace(v))
				if err != nil || n <= 0 {
					return g, fmt.Errorf("sweep: bad node count %q", v)
				}
				g.NodeCounts = append(g.NodeCounts, n)
			}
		case "rates":
			var err error
			if rates, err = parseFloats(list, 0); err != nil {
				return g, fmt.Errorf("sweep: rates: %w", err)
			}
			for _, r := range rates {
				// Zero would silently fall through to the 4 jobs/hour
				// default; reject it instead of sweeping a phantom cell.
				if r <= 0 {
					return g, fmt.Errorf("sweep: rates must be positive, got %g", r)
				}
			}
		case "winfracs":
			var err error
			if winfracs, err = parseFloats(list, 1); err != nil {
				return g, fmt.Errorf("sweep: winfracs: %w", err)
			}
		case "traces":
			kinds = kinds[:0]
			for _, v := range list {
				k, err := ParseTraceKind(strings.TrimSpace(v))
				if err != nil {
					return g, err
				}
				kinds = append(kinds, k)
			}
		case "hours":
			h, err := strconv.ParseFloat(strings.TrimSpace(vals), 64)
			if err != nil || h <= 0 {
				return g, fmt.Errorf("sweep: bad hours %q", vals)
			}
			hours = h
		case "failrates":
			var err error
			if g.FailureRates, err = parseFloats(list, 1); err != nil {
				return g, fmt.Errorf("sweep: failrates: %w", err)
			}
		case "topologies":
			for _, v := range list {
				t, err := TopologyByName(strings.TrimSpace(v))
				if err != nil {
					return g, err
				}
				g.Topologies = append(g.Topologies, t)
			}
		case "routings":
			for _, v := range list {
				r, err := grid.ParsePolicy(strings.TrimSpace(v))
				if err != nil {
					return g, fmt.Errorf("sweep: %w", err)
				}
				g.Routings = append(g.Routings, r)
			}
		case "seed":
			s, err := strconv.ParseInt(strings.TrimSpace(vals), 10, 64)
			if err != nil {
				return g, fmt.Errorf("sweep: bad seed %q", vals)
			}
			g.BaseSeed = s
		case "cycle":
			d, err := time.ParseDuration(strings.TrimSpace(vals))
			if err != nil || d <= 0 {
				return g, fmt.Errorf("sweep: bad cycle %q", vals)
			}
			g.Cycle = d
		case "horizon":
			d, err := time.ParseDuration(strings.TrimSpace(vals))
			if err != nil || d <= 0 {
				return g, fmt.Errorf("sweep: bad horizon %q", vals)
			}
			g.Horizon = d
		default:
			return g, fmt.Errorf("sweep: unknown grid key %q", key)
		}
	}
	seen := map[string]bool{}
	for _, kind := range kinds {
		for _, rate := range rates {
			for _, wf := range winfracs {
				t := TraceSpec{
					Kind:        kind,
					JobsPerHour: rate,
					WindowsFrac: wf,
					Duration:    time.Duration(hours * float64(time.Hour)),
				}.withDefaults()
				// Non-poisson kinds ignore some parameters, so crossing
				// the axes can repeat a shape; keep each name once.
				if seen[t.Name] {
					continue
				}
				seen[t.Name] = true
				g.Traces = append(g.Traces, t)
			}
		}
	}
	return g, nil
}

// ParseTraceKind resolves a trace-shape kind by its String name;
// unknown names error with the valid set.
func ParseTraceKind(name string) (TraceKind, error) {
	kinds := []TraceKind{TracePoisson, TracePhased, TraceMatlabGA, TraceDiurnal, TraceBurst}
	valid := make([]string, len(kinds))
	for i, k := range kinds {
		if k.String() == name {
			return k, nil
		}
		valid[i] = k.String()
	}
	return 0, fmt.Errorf("sweep: unknown trace kind %q (valid: %s)", name, strings.Join(valid, " | "))
}

// ParseMode resolves a cluster mode by its String name. The qsim CLI
// shares this registry so the -mode flag and the sweep grid spec can
// never drift apart; unknown names error with the valid set.
func ParseMode(name string) (cluster.Mode, error) {
	modes := []cluster.Mode{cluster.HybridV1, cluster.HybridV2, cluster.Static, cluster.MonoStable}
	valid := make([]string, len(modes))
	for i, m := range modes {
		if m.String() == name {
			return m, nil
		}
		valid[i] = m.String()
	}
	return 0, fmt.Errorf("sweep: unknown mode %q (valid: %s)", name, strings.Join(valid, " | "))
}

func parseFloats(list []string, max float64) ([]float64, error) {
	var out []float64
	for _, v := range list {
		f, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
		if err != nil || f < 0 || (max > 0 && f > max) {
			return nil, fmt.Errorf("bad value %q", v)
		}
		out = append(out, f)
	}
	return out, nil
}
