package controller

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/detector"
	"repro/internal/osid"
)

func side(os osid.OS, total, idle int) SideState {
	return SideState{OS: os, TotalNodes: total, IdleNodes: idle, CoresPerNode: 4}
}

func stuck(s SideState, cpus int, id string) SideState {
	s.Report = detector.Report{Stuck: true, NeededCPUs: cpus, StuckJobID: id}
	s.QueuedJobs = 1
	s.QueuedCPUs = cpus
	return s
}

// loaded returns a side whose queue holds the given CPU demand and
// whose nodes are all busy.
func loaded(os osid.OS, total, queuedCPUs int) SideState {
	s := side(os, total, 0)
	s.QueuedCPUs = queuedCPUs
	s.QueuedJobs = (queuedCPUs + 15) / 16
	if s.QueuedJobs < 1 && queuedCPUs > 0 {
		s.QueuedJobs = 1
	}
	return s
}

func TestFCFSNoStuckNoAction(t *testing.T) {
	d := FCFS{}.Decide(0, side(osid.Linux, 8, 2), side(osid.Windows, 8, 8))
	if d.Act {
		t.Fatalf("acted with nothing stuck: %+v", d)
	}
}

func TestFCFSLinuxStuckTakesWindowsIdle(t *testing.T) {
	lin := stuck(side(osid.Linux, 8, 0), 8, "5.eridani")
	win := side(osid.Windows, 8, 6)
	d := FCFS{}.Decide(0, lin, win)
	if !d.Act || d.Target != osid.Linux || d.Donor != osid.Windows {
		t.Fatalf("d = %+v", d)
	}
	if d.Nodes != 2 { // 8 CPUs / 4 per node
		t.Fatalf("nodes = %d, want 2", d.Nodes)
	}
	if !strings.Contains(d.Reason, "5.eridani") {
		t.Fatalf("reason = %q", d.Reason)
	}
}

func TestFCFSWindowsStuckTakesLinuxIdle(t *testing.T) {
	lin := side(osid.Linux, 10, 5)
	win := stuck(side(osid.Windows, 6, 0), 4, "9.WINHEAD")
	d := FCFS{}.Decide(0, lin, win)
	if !d.Act || d.Target != osid.Windows || d.Donor != osid.Linux || d.Nodes != 1 {
		t.Fatalf("d = %+v", d)
	}
}

func TestFCFSCappedByDonatable(t *testing.T) {
	lin := stuck(side(osid.Linux, 8, 0), 64, "big")
	win := side(osid.Windows, 8, 3)
	d := FCFS{}.Decide(0, lin, win)
	if d.Nodes != 3 {
		t.Fatalf("nodes = %d, want 3 (donor limit)", d.Nodes)
	}
}

func TestFCFSPendingAwayReducesDonatable(t *testing.T) {
	lin := stuck(side(osid.Linux, 8, 0), 64, "big")
	win := side(osid.Windows, 8, 3)
	win.PendingAway = 2
	d := FCFS{}.Decide(0, lin, win)
	if d.Nodes != 1 {
		t.Fatalf("nodes = %d, want 1 (3 idle - 2 pending)", d.Nodes)
	}
	win.PendingAway = 3
	d = FCFS{}.Decide(0, lin, win)
	if d.Act {
		t.Fatalf("acted with nothing donatable: %+v", d)
	}
}

func TestFCFSBothStuckWindowsWinsTie(t *testing.T) {
	// Both queues stuck with idle nodes on both sides (e.g. jobs just
	// finished everywhere): the Windows request is served first because
	// its report opens the control cycle.
	lin := stuck(side(osid.Linux, 8, 4), 4, "L")
	win := stuck(side(osid.Windows, 8, 4), 4, "W")
	d := FCFS{}.Decide(0, lin, win)
	if !d.Act || d.Target != osid.Windows {
		t.Fatalf("tie break = %+v", d)
	}
}

func TestFCFSZeroCPUStuckStillMovesOneNode(t *testing.T) {
	// A stuck report with CPUs=0 (malformed or zero-core request) still
	// moves one node rather than zero.
	lin := stuck(side(osid.Linux, 8, 0), 0, "odd")
	win := side(osid.Windows, 8, 2)
	d := FCFS{}.Decide(0, lin, win)
	if !d.Act || d.Nodes != 1 {
		t.Fatalf("d = %+v", d)
	}
}

func TestThresholdImbalanceRatio(t *testing.T) {
	p := Threshold{Ratio: 2}
	// Linux backlog 16 CPUs on 8×4 cores: pressure 0.5. Donor backlog 8
	// CPUs: pressure 0.25, threshold 2×0.25 = 0.5 — exactly at the
	// ratio, so the rule fires.
	lin := loaded(osid.Linux, 8, 16)
	win := loaded(osid.Windows, 8, 8)
	win.IdleNodes = 4
	if d := p.Decide(0, lin, win); !d.Act || d.Target != osid.Linux {
		t.Fatalf("at-ratio imbalance did not act: %+v", d)
	}
	// Donor backlog 9 CPUs: pressure 0.28, bar rises to 0.5625 > 0.5.
	win.QueuedCPUs = 9
	if d := p.Decide(0, lin, win); d.Act {
		t.Fatalf("acted under the imbalance ratio: %+v", d)
	}
}

func TestThresholdIdleDonorAnyBacklog(t *testing.T) {
	// Against a fully idle donor any unserved backlog trips the rule,
	// regardless of how large Ratio is.
	p := Threshold{Ratio: 100}
	lin := loaded(osid.Linux, 8, 4)
	win := side(osid.Windows, 8, 8)
	d := p.Decide(0, lin, win)
	if !d.Act || d.Donor != osid.Windows || d.Nodes != 1 {
		t.Fatalf("d = %+v", d)
	}
}

func TestThresholdIdleCapacityAbsorbs(t *testing.T) {
	// Queued work the side's own idle cores can serve is not a reason
	// to pull nodes across.
	p := Threshold{}
	lin := side(osid.Linux, 8, 2) // 8 idle cores
	lin.QueuedCPUs = 8
	lin.QueuedJobs = 2
	win := side(osid.Windows, 8, 8)
	if d := p.Decide(0, lin, win); d.Act {
		t.Fatalf("acted with absorbing idle capacity: %+v", d)
	}
}

func TestThresholdStuckFloorsNeed(t *testing.T) {
	// A stuck wide job cannot use fragmented idle cores: the detector
	// report floors the need even when the CPU arithmetic says the
	// side has room.
	p := Threshold{}
	lin := stuck(side(osid.Linux, 8, 2), 8, "wide")
	win := side(osid.Windows, 8, 8)
	d := p.Decide(0, lin, win)
	if !d.Act || d.Nodes != 2 {
		t.Fatalf("d = %+v", d)
	}
}

func TestThresholdReserveFloor(t *testing.T) {
	p := Threshold{Reserve: 6}
	lin := loaded(osid.Linux, 8, 64)
	win := side(osid.Windows, 8, 8)
	d := p.Decide(0, lin, win)
	if !d.Act || d.Nodes != 2 {
		t.Fatalf("d = %+v, want 2 nodes (8 total - 6 reserve)", d)
	}
	p.Reserve = 8
	if d := p.Decide(0, lin, win); d.Act {
		t.Fatalf("acted at reserve floor: %+v", d)
	}
}

func TestThresholdMaxStepCaps(t *testing.T) {
	p := Threshold{} // default MaxStep 4
	lin := loaded(osid.Linux, 8, 640)
	win := side(osid.Windows, 16, 16)
	d := p.Decide(0, lin, win)
	if !d.Act || d.Nodes != 4 {
		t.Fatalf("d = %+v, want the 4-node step cap", d)
	}
}

func TestThresholdMinQueuedCPUs(t *testing.T) {
	p := Threshold{MinQueuedCPUs: 8}
	lin := loaded(osid.Linux, 8, 4)
	win := side(osid.Windows, 8, 8)
	if d := p.Decide(0, lin, win); d.Act {
		t.Fatalf("acted below MinQueuedCPUs: %+v", d)
	}
	lin.QueuedCPUs = 8
	if d := p.Decide(0, lin, win); !d.Act {
		t.Fatalf("did not act at MinQueuedCPUs: %+v", d)
	}
}

func TestHysteresisDonatesOverWatermark(t *testing.T) {
	p := &Hysteresis{}
	lin := loaded(osid.Linux, 8, 24) // pressure 0.75 = donate watermark
	win := side(osid.Windows, 8, 8)  // pressure 0 ≤ reclaim watermark
	d := p.Decide(0, lin, win)
	if !d.Act || d.Target != osid.Linux || d.Donor != osid.Windows {
		t.Fatalf("d = %+v", d)
	}
}

func TestHysteresisDeadBand(t *testing.T) {
	p := &Hysteresis{DonateWater: 0.75, ReclaimWater: 0.25}
	// Needy side inside the band: pressure 0.5 < donate watermark.
	lin := loaded(osid.Linux, 8, 16)
	win := side(osid.Windows, 8, 8)
	if d := p.Decide(0, lin, win); d.Act {
		t.Fatalf("acted inside the dead band: %+v", d)
	}
	// Needy side over the donate watermark but donor over the reclaim
	// watermark: the donor is too busy to strip.
	lin = loaded(osid.Linux, 8, 32)
	win = loaded(osid.Windows, 8, 16)
	win.IdleNodes = 4
	if d := p.Decide(0, lin, win); d.Act {
		t.Fatalf("stripped a donor over the reclaim watermark: %+v", d)
	}
}

func TestHysteresisDwellBoundary(t *testing.T) {
	p := &Hysteresis{MinDwell: 30 * time.Minute}
	lin := loaded(osid.Linux, 8, 32)
	win := side(osid.Windows, 8, 8)

	if d := p.Decide(0, lin, win); !d.Act {
		t.Fatalf("first switch blocked: %+v", d)
	}
	// Strictly inside the dwell window: blocked, and the reason says so.
	d := p.Decide(30*time.Minute-time.Nanosecond, lin, win)
	if d.Act {
		t.Fatalf("acted inside dwell: %+v", d)
	}
	if !strings.Contains(d.Reason, "dwell") {
		t.Fatalf("reason = %q, want dwell", d.Reason)
	}
	// Exactly at the boundary: the window has elapsed.
	if d := p.Decide(30*time.Minute, lin, win); !d.Act {
		t.Fatalf("blocked at exact dwell boundary: %+v", d)
	}
	// And the new switch re-arms the window from its own timestamp.
	if d := p.Decide(40*time.Minute, lin, win); d.Act {
		t.Fatalf("dwell not re-armed: %+v", d)
	}
}

func TestHysteresisNoActionDoesNotArmDwell(t *testing.T) {
	p := &Hysteresis{MinDwell: time.Hour}
	idle := side(osid.Linux, 8, 8)
	win := side(osid.Windows, 8, 8)
	p.Decide(0, idle, win) // nothing queued, no switch
	d := p.Decide(time.Minute, loaded(osid.Linux, 8, 32), win)
	if !d.Act {
		t.Fatalf("dwell armed by a no-op cycle: %+v", d)
	}
}

// TestNoFlapHysteresisVsThreshold is the no-flap regression: on demand
// that oscillates between the sides every cycle, the threshold rule
// chases every swing while hysteresis — dead band plus dwell — must
// perform strictly fewer switches.
func TestNoFlapHysteresisVsThreshold(t *testing.T) {
	thr := Threshold{}
	hys := &Hysteresis{}
	states := func(i int) (lin, win SideState) {
		lin = loaded(osid.Linux, 8, 32)
		win = side(osid.Windows, 8, 8)
		if i%2 == 1 {
			win = loaded(osid.Windows, 8, 32)
			lin = side(osid.Linux, 8, 8)
		}
		return
	}
	thrActs, hysActs := 0, 0
	cycle := 5 * time.Minute
	for i := 0; i < 24; i++ {
		now := time.Duration(i) * cycle
		lin, win := states(i)
		if thr.Decide(now, lin, win).Act {
			thrActs++
		}
		if hys.Decide(now, lin, win).Act {
			hysActs++
		}
	}
	if thrActs != 24 {
		t.Fatalf("threshold acted %d/24 times on the oscillating feed", thrActs)
	}
	if hysActs == 0 || hysActs >= thrActs {
		t.Fatalf("hysteresis acted %d times, want 0 < acts < %d", hysActs, thrActs)
	}
	// 24 cycles × 5m = 2h; a 30m dwell admits at most 5 switches.
	if hysActs > 5 {
		t.Fatalf("hysteresis acted %d times, dwell admits at most 5", hysActs)
	}
}

func TestPredictiveWarmsUpBeforeActing(t *testing.T) {
	p := &Predictive{}
	lin := loaded(osid.Linux, 8, 32)
	win := side(osid.Windows, 8, 8)
	d := p.Decide(0, lin, win)
	if d.Act {
		t.Fatalf("acted with no rate history: %+v", d)
	}
	if !strings.Contains(d.Reason, "warming up") {
		t.Fatalf("reason = %q", d.Reason)
	}
}

func TestPredictiveProjectsArrivals(t *testing.T) {
	p := &Predictive{}
	quietL := side(osid.Linux, 14, 10)
	quietW := side(osid.Windows, 2, 0)
	p.Decide(0, quietL, quietW) // warmup primes the counters

	// One hour later 40 CPUs of Windows work have arrived, 12 still
	// queued; EWMA rate = 0.3×40 = 12 cpu/h. Over a 30m switch horizon
	// that projects 12 + 6 − 0 = 18 CPUs of surviving backlog.
	win := loaded(osid.Windows, 2, 12)
	win.ArrivedCPUs = 40
	win.SwitchLatency = 30 * time.Minute
	d := p.Decide(time.Hour, quietL, win)
	if !d.Act || d.Target != osid.Windows || d.Donor != osid.Linux {
		t.Fatalf("d = %+v", d)
	}
	if d.Nodes != 4 { // 18 CPUs wants 5 nodes, step cap 4
		t.Fatalf("nodes = %d, want the 4-node step cap", d.Nodes)
	}
}

func TestPredictiveLatencyDiscountsDrainingQueue(t *testing.T) {
	// A queue the side's own idle cores will absorb before a reboot
	// could land is not worth a switch: the projection discounts the
	// backlog by the switch latency.
	p := &Predictive{}
	lin := side(osid.Linux, 8, 8)
	win := side(osid.Windows, 8, 1)
	p.Decide(0, lin, win)

	win.QueuedCPUs = 4
	win.QueuedJobs = 1
	win.SwitchLatency = 30 * time.Minute // no arrivals → projection 4 − 4 = 0
	if d := p.Decide(time.Hour, lin, win); d.Act {
		t.Fatalf("switched for a self-draining queue: %+v", d)
	}
}

func TestPredictiveDonorKeepsAheadOfOwnDemand(t *testing.T) {
	// The donor's own predicted arrivals block the donation even when
	// it has idle nodes right now.
	p := &Predictive{}
	lin := side(osid.Linux, 8, 2)
	win := side(osid.Windows, 8, 0)
	p.Decide(0, lin, win)

	lin2 := side(osid.Linux, 8, 2)
	lin2.ArrivedCPUs = 200 // EWMA 60 cpu/h → 30 CPUs over the horizon
	win2 := loaded(osid.Windows, 8, 32)
	win2.SwitchLatency = 30 * time.Minute
	if d := p.Decide(time.Hour, lin2, win2); d.Act {
		t.Fatalf("stripped a donor with predicted demand: %+v", d)
	}
}

func TestPredictiveStuckFloorsProjection(t *testing.T) {
	// A stuck wide job survives any amount of idle capacity: the
	// detector report floors the projection.
	p := &Predictive{}
	lin := side(osid.Linux, 8, 8)
	win := side(osid.Windows, 8, 2)
	p.Decide(0, lin, win)

	win2 := stuck(side(osid.Windows, 8, 2), 16, "wide")
	if d := p.Decide(time.Hour, lin, win2); !d.Act || d.Target != osid.Windows {
		t.Fatalf("d = %+v", d)
	}
}

func TestFairShareMovesTowardDemand(t *testing.T) {
	p := FairShare{MaxStep: 4}
	lin := side(osid.Linux, 8, 0)
	lin.QueuedCPUs = 48
	lin.QueuedJobs = 6
	win := side(osid.Windows, 8, 8)
	d := p.Decide(0, lin, win)
	if !d.Act || d.Target != osid.Linux {
		t.Fatalf("d = %+v", d)
	}
	if d.Nodes < 1 || d.Nodes > 4 {
		t.Fatalf("nodes = %d outside step bound", d.Nodes)
	}
}

func TestFairShareRespectsMaxStep(t *testing.T) {
	p := FairShare{MaxStep: 1}
	lin := side(osid.Linux, 2, 0)
	lin.QueuedCPUs = 100
	win := side(osid.Windows, 14, 14)
	d := p.Decide(0, lin, win)
	if !d.Act || d.Nodes != 1 {
		t.Fatalf("d = %+v", d)
	}
}

func TestFairShareBalancedNoMove(t *testing.T) {
	p := FairShare{}
	lin := side(osid.Linux, 8, 2)
	lin.QueuedCPUs = 16
	win := side(osid.Windows, 8, 2)
	win.QueuedCPUs = 16
	if d := p.Decide(0, lin, win); d.Act {
		t.Fatalf("moved on balanced demand: %+v", d)
	}
}

func TestFairShareNoDemand(t *testing.T) {
	p := FairShare{}
	if d := p.Decide(0, side(osid.Linux, 8, 8), side(osid.Windows, 8, 8)); d.Act {
		t.Fatalf("moved with no demand: %+v", d)
	}
}

func TestFairShareKeepsOneNodePerDemandingSide(t *testing.T) {
	p := FairShare{MaxStep: 16}
	lin := side(osid.Linux, 8, 0)
	lin.QueuedCPUs = 1000
	lin.QueuedJobs = 10
	win := side(osid.Windows, 8, 8)
	win.QueuedCPUs = 4
	win.QueuedJobs = 1
	d := p.Decide(0, lin, win)
	if !d.Act {
		t.Fatal("no move")
	}
	if win.TotalNodes-d.Nodes < 1 {
		t.Fatalf("windows stripped to %d nodes despite demand", win.TotalNodes-d.Nodes)
	}
}

func TestDonatableNodes(t *testing.T) {
	s := SideState{IdleNodes: 3, PendingAway: 1}
	if s.DonatableNodes() != 2 {
		t.Fatalf("= %d", s.DonatableNodes())
	}
	s.PendingAway = 5
	if s.DonatableNodes() != 0 {
		t.Fatalf("= %d, want clamp at 0", s.DonatableNodes())
	}
}

func TestDecisionString(t *testing.T) {
	d := Decision{Act: true, Target: osid.Linux, Donor: osid.Windows, Nodes: 2, Reason: "r"}
	if !strings.Contains(d.String(), "windows->linux") {
		t.Fatalf("String() = %q", d.String())
	}
	n := Decision{Reason: "idle"}
	if !strings.Contains(n.String(), "no-switch") {
		t.Fatalf("String() = %q", n.String())
	}
}

func TestPolicyNamesMatchRegistry(t *testing.T) {
	want := []string{"fcfs", "threshold", "hysteresis", "predictive", "fairshare"}
	got := PolicyNames()
	if len(got) != len(want) {
		t.Fatalf("PolicyNames() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PolicyNames()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	for _, name := range want {
		p, err := ParsePolicy(name)
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Fatalf("ParsePolicy(%q).Name() = %q", name, p.Name())
		}
	}
}

func TestParsePolicyUnknownListsValidSet(t *testing.T) {
	_, err := ParsePolicy("fifo")
	if err == nil {
		t.Fatal("unknown policy accepted")
	}
	for _, name := range PolicyNames() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not list %q", err, name)
		}
	}
}

func TestParsePolicyReturnsFreshInstances(t *testing.T) {
	a, _ := ParsePolicy("hysteresis")
	b, _ := ParsePolicy("hysteresis")
	if a == b {
		t.Fatal("ParsePolicy shared a stateful instance")
	}
	// Acting through one instance must not arm the other's dwell.
	lin := loaded(osid.Linux, 8, 32)
	win := side(osid.Windows, 8, 8)
	if d := a.Decide(0, lin, win); !d.Act {
		t.Fatalf("a did not act: %+v", d)
	}
	if d := b.Decide(time.Minute, lin, win); !d.Act {
		t.Fatalf("b inherited a's dwell state: %+v", d)
	}
}

func TestNodesForRounding(t *testing.T) {
	s := SideState{CoresPerNode: 4}
	cases := map[int]int{0: 1, 1: 1, 4: 1, 5: 2, 8: 2, 9: 3}
	for cpus, want := range cases {
		if got := s.nodesFor(cpus); got != want {
			t.Errorf("nodesFor(%d) = %d, want %d", cpus, got, want)
		}
	}
	zero := SideState{}
	if zero.nodesFor(8) != 2 {
		t.Error("default cores-per-node not applied")
	}
}

// Property: no policy ever orders more nodes than the donor can give,
// targets an invalid OS, or acts without demand. Stateful policies get
// a fresh instance per case and two observation cycles so the
// predictive rule has a rate history to act on.
func TestQuickPoliciesRespectDonatable(t *testing.T) {
	f := func(linTotal, linIdle, winTotal, winIdle, cpus uint8, linStuck, winStuck bool) bool {
		lin := SideState{OS: osid.Linux, CoresPerNode: 4,
			TotalNodes: int(linTotal % 16), IdleNodes: int(linIdle % 16)}
		if lin.IdleNodes > lin.TotalNodes {
			lin.IdleNodes = lin.TotalNodes
		}
		win := SideState{OS: osid.Windows, CoresPerNode: 4,
			TotalNodes: int(winTotal % 16), IdleNodes: int(winIdle % 16)}
		if win.IdleNodes > win.TotalNodes {
			win.IdleNodes = win.TotalNodes
		}
		if linStuck {
			lin = stuck(lin, int(cpus), "L")
		}
		if winStuck {
			win = stuck(win, int(cpus), "W")
		}
		lin.ArrivedCPUs = lin.QueuedCPUs
		win.ArrivedCPUs = win.QueuedCPUs
		policies := []Policy{
			FCFS{}, Threshold{}, &Hysteresis{}, &Predictive{}, FairShare{MaxStep: 3},
		}
		for _, p := range policies {
			p.Decide(0, lin, win)
			d := p.Decide(time.Hour, lin, win)
			if !d.Act {
				continue
			}
			if !d.Target.Valid() || !d.Donor.Valid() || d.Target == d.Donor {
				return false
			}
			donor := lin
			if d.Donor == osid.Windows {
				donor = win
			}
			if d.Nodes <= 0 || d.Nodes > donor.DonatableNodes() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
