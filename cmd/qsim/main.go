// Command qsim runs hybrid-cluster scenarios from the command line:
// pick a cluster organisation, a workload, and get the utilisation /
// wait / switch report — optionally with the node-count time series
// and the event log.
//
// Examples:
//
//	qsim -mode hybrid-v2 -trace matlabga -series
//	qsim -mode static -trace phased -winfrac 0.5
//	qsim -compare -trace poisson -winfrac 0.3 -hours 24
//
// The sweep subcommand runs a whole parameter grid concurrently with
// deterministic per-cell seeding (identical output for any -workers),
// including whole campus fabrics behind a routing policy:
//
//	qsim sweep -grid "modes=hybrid-v2,static-split;nodes=8,16;winfracs=0.25,0.5" -workers 8
//	qsim sweep -grid "modes=hybrid-v2,static-split;rates=8" \
//	  -topologies campus -routings least-loaded,round-robin,hybrid-last
//	qsim sweep -grid "modes=hybrid-v2;traces=diurnal,burst" \
//	  -ctlpolicies fcfs,threshold,hysteresis,predictive
//	qsim sweep -grid "modes=hybrid-v2;traces=phased;winfracs=0.5" \
//	  -schedpolicies fcfs,backfill
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/export"
	"repro/internal/grid"
	"repro/internal/metrics"
	"repro/internal/osid"
	"repro/internal/sweep"
	"repro/internal/workload"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "sweep" {
		runSweep(os.Args[2:])
		return
	}
	var (
		modeName = flag.String("mode", "hybrid-v2", "cluster mode: hybrid-v1 | hybrid-v2 | static-split | mono-stable")
		traceGen = flag.String("trace", "poisson", "workload: poisson | diurnal | phased | matlabga | burst | file")
		traceIn  = flag.String("tracefile", "", "CSV trace to replay (with -trace file)")
		nodes    = flag.Int("nodes", 16, "compute nodes")
		initLin  = flag.Int("linux", 0, "nodes starting in Linux (0 = half)")
		cycle    = flag.Duration("cycle", 10*time.Minute, "controller cycle interval")
		policy   = flag.String("policy", "fcfs", "controller policy: "+strings.Join(controller.PolicyNames(), " | "))
		sched    = flag.String("sched", "fcfs", "head-scheduler queue discipline: "+strings.Join(cluster.SchedPolicyNames(), " | "))
		seed     = flag.Int64("seed", 1, "workload seed")
		winfrac  = flag.Float64("winfrac", 0.3, "Windows share of the workload")
		hours    = flag.Float64("hours", 24, "submission window (poisson)")
		rate     = flag.Float64("rate", 4, "jobs per hour (poisson)")
		compare  = flag.Bool("compare", false, "run all four modes and print a comparison")
		series   = flag.Bool("series", false, "print the node-count time series")
		events   = flag.Bool("events", false, "print the event log")
		apps     = flag.Bool("apps", false, "print per-application statistics")
		csvPath  = flag.String("csv", "", "write the time series as CSV to this file")
		jsonPath = flag.String("json", "", "write the run summary as JSON to this file")
	)
	flag.Parse()

	trace, err := buildTrace(*traceGen, *traceIn, *seed, *winfrac, *hours, *rate)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qsim:", err)
		os.Exit(2)
	}

	pol, err := parsePolicy(*policy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qsim:", err)
		os.Exit(2)
	}
	schedPol, err := cluster.ParseSchedPolicy(*sched)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qsim:", err)
		os.Exit(2)
	}
	base := cluster.Config{Nodes: *nodes, InitialLinux: *initLin, Cycle: *cycle, Seed: *seed, Policy: pol, SchedPolicy: schedPol}

	if *compare {
		modes := []cluster.Mode{cluster.Static, cluster.MonoStable, cluster.HybridV1, cluster.HybridV2}
		results, err := core.CompareModes(modes, base, trace, 0)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qsim:", err)
			os.Exit(1)
		}
		fmt.Printf("workload: %s (%d jobs, %v span)\n\n", *traceGen, len(trace), trace.Span().Round(time.Minute))
		fmt.Print(core.ComparisonTable(results))
		return
	}

	mode, err := parseMode(*modeName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qsim:", err)
		os.Exit(2)
	}
	base.Mode = mode
	sc := core.Scenario{Name: *modeName, Cluster: base, Trace: trace}
	if *series || *csvPath != "" {
		sc.SampleInterval = time.Hour
	}
	res, err := core.Run(sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qsim:", err)
		os.Exit(1)
	}

	s := res.Summary
	fmt.Printf("scenario  %s on %d nodes, %d jobs\n", *modeName, *nodes, len(trace))
	fmt.Printf("elapsed   %s (makespan %s)\n", metrics.Dur(s.Elapsed), metrics.Dur(s.Makespan))
	fmt.Printf("util      %s total (linux %s, windows %s)\n",
		metrics.Pct(s.Utilisation), metrics.Pct(s.UtilisationOS[osid.Linux]), metrics.Pct(s.UtilisationOS[osid.Windows]))
	fmt.Printf("waits     linux %s, windows %s\n", metrics.Dur(s.MeanWait[osid.Linux]), metrics.Dur(s.MeanWait[osid.Windows]))
	fmt.Printf("jobs      linux %d/%d, windows %d/%d completed\n",
		s.JobsCompleted[osid.Linux], s.JobsSubmitted[osid.Linux],
		s.JobsCompleted[osid.Windows], s.JobsSubmitted[osid.Windows])
	fmt.Printf("switches  %d (%d ok, mean %s, max %s), control actions %d\n",
		s.Switches, s.SwitchesOK, metrics.Dur(s.MeanSwitch), metrics.Dur(s.MaxSwitch), res.ControlActions)

	if *series && len(res.Series) > 0 {
		fmt.Println("\ntime series:")
		rows := make([][]string, 0, len(res.Series))
		for _, p := range res.Series {
			rows = append(rows, []string{
				metrics.Dur(p.At), fmt.Sprintf("%d", p.LinuxNodes), fmt.Sprintf("%d", p.WindowsNodes),
				fmt.Sprintf("%d", p.Switching), fmt.Sprintf("%d", p.LinuxQueued), fmt.Sprintf("%d", p.WindowsQueued),
			})
		}
		fmt.Print(metrics.Table([]string{"t", "linux", "windows", "switching", "linQ", "winQ"}, rows))
	}
	if *apps && len(res.AppStats) > 0 {
		fmt.Println("\nper-application:")
		rows := make([][]string, 0, len(res.AppStats))
		for _, a := range res.AppStats {
			rows = append(rows, []string{
				a.App, a.OS.String(), fmt.Sprintf("%d", a.Completed),
				metrics.Dur(a.MeanWait), fmt.Sprintf("%.1f", a.CPUHours),
			})
		}
		fmt.Print(metrics.Table([]string{"app", "os", "done", "mean-wait", "cpu-hours"}, rows))
	}
	if *events {
		fmt.Println("\nevents:")
		for _, e := range res.Events {
			fmt.Printf("  [%s] %s\n", metrics.Dur(e.At), e.What)
		}
	}
	if *csvPath != "" {
		if err := writeFile(*csvPath, func(w *os.File) error {
			return export.WriteSeriesCSV(w, res.Series)
		}); err != nil {
			fmt.Fprintln(os.Stderr, "qsim:", err)
			os.Exit(1)
		}
		fmt.Printf("series written to %s\n", *csvPath)
	}
	if *jsonPath != "" {
		if err := writeFile(*jsonPath, func(w *os.File) error {
			return export.WriteSummaryJSON(w, res.Summary)
		}); err != nil {
			fmt.Fprintln(os.Stderr, "qsim:", err)
			os.Exit(1)
		}
		fmt.Printf("summary written to %s\n", *jsonPath)
	}
}

// runSweep is the sweep subcommand: expand -grid, run the cells on
// -workers goroutines, print the ranked comparison table.
func runSweep(args []string) {
	fs := flag.NewFlagSet("qsim sweep", flag.ExitOnError)
	var (
		gridSpec = fs.String("grid", "modes=hybrid-v2,static-split,mono-stable;nodes=16;rates=4;winfracs=0.3",
			"grid spec: 'key=v,v;...' with keys modes|ctlpolicies|schedpolicies|nodes|rates|winfracs|hours|traces|failrates|topologies|routings|seed|cycle|horizon")
		ctlpolicies = fs.String("ctlpolicies", "",
			"comma list of controller policies ("+strings.Join(controller.PolicyNames(), "|")+"); overrides the grid spec's ctlpolicies key")
		schedpolicies = fs.String("schedpolicies", "",
			"comma list of head-scheduler disciplines ("+strings.Join(cluster.SchedPolicyNames(), "|")+"); overrides the grid spec's schedpolicies key")
		topologies = fs.String("topologies", "",
			"comma list of fabric presets (single|campus|twin-hybrid); overrides the grid spec's topologies key")
		routings = fs.String("routings", "",
			"comma list of campus routing policies (least-loaded|round-robin|hybrid-last); overrides the grid spec's routings key")
		workers  = fs.Int("workers", runtime.GOMAXPROCS(0), "concurrent scenario workers")
		csvPath  = fs.String("csv", "", "write per-cell results as CSV to this file")
		jsonPath = fs.String("json", "", "write per-cell results as JSON to this file")
	)
	fs.Parse(args)

	if *workers <= 0 {
		*workers = runtime.GOMAXPROCS(0)
	}
	g, err := sweep.ParseGridSpec(*gridSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qsim:", err)
		os.Exit(2)
	}
	if *ctlpolicies != "" {
		g.Policies = g.Policies[:0]
		for _, name := range strings.Split(*ctlpolicies, ",") {
			p, err := sweep.PolicyByName(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(os.Stderr, "qsim:", err)
				os.Exit(2)
			}
			g.Policies = append(g.Policies, p)
		}
	}
	if *schedpolicies != "" {
		g.SchedPolicies = g.SchedPolicies[:0]
		for _, name := range strings.Split(*schedpolicies, ",") {
			p, err := cluster.ParseSchedPolicy(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(os.Stderr, "qsim:", err)
				os.Exit(2)
			}
			g.SchedPolicies = append(g.SchedPolicies, p)
		}
	}
	if *topologies != "" {
		g.Topologies = g.Topologies[:0]
		for _, name := range strings.Split(*topologies, ",") {
			t, err := sweep.TopologyByName(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(os.Stderr, "qsim:", err)
				os.Exit(2)
			}
			g.Topologies = append(g.Topologies, t)
		}
	}
	if *routings != "" {
		g.Routings = g.Routings[:0]
		for _, name := range strings.Split(*routings, ",") {
			r, err := grid.ParsePolicy(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(os.Stderr, "qsim:", err)
				os.Exit(2)
			}
			g.Routings = append(g.Routings, r)
		}
	}
	fmt.Printf("sweep: %s, %d workers\n\n", g.Describe(), *workers)
	out, err := sweep.Run(sweep.Config{Grid: g, Workers: *workers})
	if err != nil {
		fmt.Fprintln(os.Stderr, "qsim:", err)
		os.Exit(1)
	}
	fmt.Print(out.Table())
	failed := len(out.Errs())
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "qsim: %d cell(s) failed\n", failed)
	}
	if *csvPath != "" {
		if err := writeFile(*csvPath, func(w *os.File) error {
			return export.WriteSweepCSV(w, out.Rows())
		}); err != nil {
			fmt.Fprintln(os.Stderr, "qsim:", err)
			os.Exit(1)
		}
		fmt.Printf("results written to %s\n", *csvPath)
	}
	if *jsonPath != "" {
		if err := writeFile(*jsonPath, func(w *os.File) error {
			return export.WriteSweepJSON(w, out.Rows())
		}); err != nil {
			fmt.Fprintln(os.Stderr, "qsim:", err)
			os.Exit(1)
		}
		fmt.Printf("results written to %s\n", *jsonPath)
	}
	if failed > 0 {
		os.Exit(1)
	}
}

func writeFile(path string, fn func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func buildTrace(name, traceFile string, seed int64, winfrac, hours, rate float64) (workload.Trace, error) {
	switch name {
	case "poisson":
		return workload.Poisson(workload.PoissonConfig{
			Seed: seed, Duration: time.Duration(hours * float64(time.Hour)),
			JobsPerHour: rate, WindowsFrac: winfrac, MaxNodes: 4,
		}), nil
	case "diurnal":
		return workload.Diurnal(workload.DiurnalConfig{
			Seed: seed, Days: int(hours/24) + 1, PeakPerHour: rate,
			WindowsFrac: winfrac, MaxNodes: 4,
		}), nil
	case "file":
		if traceFile == "" {
			return nil, fmt.Errorf("-trace file needs -tracefile")
		}
		f, err := os.Open(traceFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return workload.ReadCSV(f)
	case "phased":
		return workload.PhasedWideMix(workload.PhasedConfig{Seed: seed, Phases: 8, WindowsFrac: winfrac}), nil
	case "matlabga":
		return workload.MatlabGACase(seed), nil
	case "burst":
		return workload.Burst(workload.BurstConfig{
			Start: 0, Jobs: 6, Gap: 2 * time.Minute, App: "Backburner",
			OS: osid.Windows, Nodes: 2, PPN: 4, Runtime: 45 * time.Minute, Owner: "render",
		}), nil
	default:
		return nil, fmt.Errorf("unknown trace %q (valid: poisson | diurnal | phased | matlabga | burst | file)", name)
	}
}

// parsePolicy and parseMode delegate to the controller and sweep name
// registries so the single-run flags and the sweep grid spec accept
// exactly the same vocabulary — and an unknown name errors listing the
// valid set instead of being accepted silently.
func parsePolicy(name string) (controller.Policy, error) {
	if name == "" {
		name = "fcfs"
	}
	return controller.ParsePolicy(name)
}

func parseMode(name string) (cluster.Mode, error) { return sweep.ParseMode(name) }
