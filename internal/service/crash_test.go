package service

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCrashRecoveryResumesByteIdentical is the subsystem's acceptance
// test: a daemon is hard-stopped after exactly one cell of the
// committed e13 sweep has been checkpointed, a fresh daemon over the
// same state directory resumes the job, and the final CSV is
// byte-identical to the committed golden — the crash is invisible in
// the output. A resubmission of the same spec then returns the
// finished job without re-running a cell.
func TestCrashRecoveryResumesByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full e13 sweep in -short mode")
	}
	spec, err := os.ReadFile(filepath.Join("..", "..", "specs", "e13_sweep_modes.json"))
	if err != nil {
		t.Fatal(err)
	}
	golden, err := os.ReadFile(filepath.Join("..", "..", "specs", "golden", "e13_sweep_modes.csv"))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	// Daemon A: one worker, so cells finish strictly in index order,
	// and a hook that pulls the plug the moment the first cell's
	// checkpoint and event have landed.
	srvA, err := New(Config{Addr: "127.0.0.1:0", StateDir: dir, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	stopped := make(chan struct{})
	srvA.mgr.cellHook = func(jobID string, index, done int) {
		if done == 1 {
			srvA.mgr.stop()
			close(stopped)
		}
	}
	if err := srvA.Start(); err != nil {
		t.Fatal(err)
	}
	c := &Client{Base: srvA.Addr()}
	job, err := c.Submit(bytes.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	if job.Cells != 12 {
		t.Fatalf("e13 expands to %d cells, want 12", job.Cells)
	}
	<-stopped
	srvA.Kill() // idempotent stop + close sockets + wait for quiescence

	// The state directory now looks exactly like a SIGKILL mid-sweep:
	// the job record still says running, and exactly one cell is
	// checkpointed.
	b, err := os.ReadFile(srvA.st.jobPath(job.ID))
	if err != nil {
		t.Fatal(err)
	}
	var onDisk Job
	if err := json.Unmarshal(b, &onDisk); err != nil {
		t.Fatal(err)
	}
	if onDisk.State != StateRunning {
		t.Fatalf("job state on disk after hard stop = %s, want running", onDisk.State)
	}
	if n := srvA.st.countCheckpoints(job.SpecHash); n != 1 {
		t.Fatalf("checkpoints after hard stop = %d, want exactly 1", n)
	}

	// Daemon B: different worker count on purpose — resume must stay
	// byte-identical regardless. Recovery re-enqueues the job.
	srvB, err := New(Config{Addr: "127.0.0.1:0", StateDir: dir, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Recovery (before anything executes) re-queued the job with its
	// progress recounted from the checkpoint directory.
	resumed, ok := srvB.mgr.job(job.ID)
	if !ok {
		t.Fatalf("job %s not recovered", job.ID)
	}
	if resumed.State != StateQueued || resumed.CellsDone != 1 {
		t.Errorf("recovered job = %+v, want queued with 1 cell from the checkpoint", resumed)
	}
	if err := srvB.Start(); err != nil {
		t.Fatal(err)
	}
	defer srvB.Kill()
	c = &Client{Base: srvB.Addr()}
	final, err := c.Wait(job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone || final.CellsDone != 12 {
		t.Fatalf("resumed job = %+v, want done 12/12", final)
	}
	got, err := c.Result(job.ID, "csv")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, golden) {
		t.Errorf("resumed CSV is not byte-identical to the golden (%d vs %d bytes)", len(got), len(golden))
	}

	// Checkpoints are cleared once the cache holds the result …
	if n := srvB.st.countCheckpoints(job.SpecHash); n != 0 {
		t.Errorf("finished job still has %d checkpoints, want 0", n)
	}
	// … and resubmitting the identical spec returns the finished job
	// as-is: no new job, no cell re-runs.
	again, err := c.Submit(strings.NewReader(string(spec)))
	if err != nil {
		t.Fatal(err)
	}
	if again.ID != job.ID || again.State != StateDone {
		t.Errorf("resubmission = %+v, want existing done job %s", again, job.ID)
	}
}
