package pbs

import (
	"strings"
	"testing"
	"time"
)

func TestDefaultQueueExists(t *testing.T) {
	_, s := newTestServer(t, 1)
	q, err := s.GetQueue("default")
	if err != nil {
		t.Fatal(err)
	}
	if !q.Enabled() || !q.Started() {
		t.Fatalf("default queue = %+v", q)
	}
	if len(s.Queues()) != 1 {
		t.Fatalf("queues = %d", len(s.Queues()))
	}
}

func TestCreateQueueValidation(t *testing.T) {
	_, s := newTestServer(t, 1)
	if _, err := s.CreateQueue(""); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := s.CreateQueue("default"); err == nil {
		t.Fatal("duplicate accepted")
	}
	if _, err := s.CreateQueue("batch"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetQueue("batch"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetQueue("nope"); err == nil {
		t.Fatal("phantom queue found")
	}
}

func TestQueuesSorted(t *testing.T) {
	_, s := newTestServer(t, 1)
	s.CreateQueue("zed")
	s.CreateQueue("alpha")
	qs := s.Queues()
	if qs[0].Name != "alpha" || qs[1].Name != "default" || qs[2].Name != "zed" {
		t.Fatalf("order = %v %v %v", qs[0].Name, qs[1].Name, qs[2].Name)
	}
}

func TestQsubUnknownQueueRejected(t *testing.T) {
	_, s := newTestServer(t, 1)
	if _, err := s.Qsub(SubmitRequest{Name: "x", Queue: "ghost", Runtime: time.Minute}); err == nil {
		t.Fatal("unknown queue accepted")
	}
}

func TestDisabledQueueRejectsSubmissions(t *testing.T) {
	eng, s := newTestServer(t, 1)
	s.CreateQueue("batch")
	if err := s.SetQueueEnabled("batch", false); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Qsub(SubmitRequest{Name: "x", Queue: "batch", Runtime: time.Minute}); err == nil {
		t.Fatal("disabled queue accepted a job")
	}
	s.SetQueueEnabled("batch", true)
	if _, err := s.Qsub(SubmitRequest{Name: "x", Queue: "batch", Runtime: time.Minute}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
}

func TestStoppedQueueHoldsJobsWithoutBlocking(t *testing.T) {
	eng, s := newTestServer(t, 1)
	s.CreateQueue("held")
	if err := s.SetQueueStarted("held", false); err != nil {
		t.Fatal(err)
	}
	heldJob, _ := s.Qsub(SubmitRequest{Name: "held", Queue: "held", Nodes: 1, PPN: 4, Runtime: time.Minute})
	freeJob, _ := s.Qsub(SubmitRequest{Name: "free", Nodes: 1, PPN: 4, Runtime: time.Minute})
	eng.RunUntil(30 * time.Second)
	if heldJob.State != StateQueued {
		t.Fatalf("held job state = %v", heldJob.State)
	}
	// The held job must not block the default queue behind it.
	if freeJob.State != StateRunning {
		t.Fatalf("free job state = %v", freeJob.State)
	}
	// Starting the queue releases the job.
	s.SetQueueStarted("held", true)
	eng.Run()
	if heldJob.State != StateComplete {
		t.Fatalf("held job = %v after queue start", heldJob.State)
	}
}

func TestQueueMaxRunning(t *testing.T) {
	eng, s := newTestServer(t, 4)
	q, _ := s.CreateQueue("limited")
	q.MaxRunning = 1
	a, _ := s.Qsub(SubmitRequest{Name: "a", Queue: "limited", Nodes: 1, PPN: 4, Runtime: time.Hour})
	bJob, _ := s.Qsub(SubmitRequest{Name: "b", Queue: "limited", Nodes: 1, PPN: 4, Runtime: time.Hour})
	other, _ := s.Qsub(SubmitRequest{Name: "c", Nodes: 1, PPN: 4, Runtime: time.Hour})
	eng.RunUntil(time.Minute)
	if a.State != StateRunning {
		t.Fatalf("a = %v", a.State)
	}
	if bJob.State != StateQueued {
		t.Fatalf("b = %v, queue cap ignored", bJob.State)
	}
	if other.State != StateRunning {
		t.Fatalf("other = %v, capped queue blocked default", other.State)
	}
	eng.RunUntil(90 * time.Minute)
	if bJob.State != StateRunning {
		t.Fatalf("b = %v after a finished", bJob.State)
	}
	eng.Run()
}

func TestSetQueueFlagsUnknown(t *testing.T) {
	_, s := newTestServer(t, 1)
	if err := s.SetQueueEnabled("ghost", true); err == nil {
		t.Fatal("enable on unknown queue succeeded")
	}
	if err := s.SetQueueStarted("ghost", true); err == nil {
		t.Fatal("start on unknown queue succeeded")
	}
}

func TestQstatSummaryShape(t *testing.T) {
	eng, s := newTestServer(t, 1)
	s.Qsub(SubmitRequest{Name: "release_1_node", Owner: "sliang@eridani.qgg.hud.ac.uk",
		Nodes: 1, PPN: 4, Runtime: time.Hour})
	s.Qsub(SubmitRequest{Name: "dlpoly-run", Owner: "chem@eridani.qgg.hud.ac.uk",
		Nodes: 1, PPN: 4, Runtime: time.Hour})
	eng.RunUntil(10 * time.Second)
	out := s.QstatSummary()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header, separator, two jobs
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Job ID") || !strings.Contains(lines[0], "Queue") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[2], "release_1_node") || !strings.Contains(lines[2], " R ") {
		t.Fatalf("running row = %q", lines[2])
	}
	if !strings.Contains(lines[2], "sliang") || strings.Contains(lines[2], "@") {
		t.Fatalf("user column = %q", lines[2])
	}
	if !strings.Contains(lines[2], "00:00:10") {
		t.Fatalf("time use = %q", lines[2])
	}
	if !strings.Contains(lines[3], " Q ") {
		t.Fatalf("queued row = %q", lines[3])
	}
	// Completed jobs drop out.
	eng.Run()
	out = s.QstatSummary()
	if strings.Contains(out, "release_1_node") {
		t.Fatalf("completed job still listed:\n%s", out)
	}
}
