// Package metrics collects the quantities the paper's evaluation
// argues about: cluster utilisation ("better utilisation of the HPC
// resources"), per-side queue waits, OS-switch counts and durations,
// and job completion statistics. Integration is event-driven against
// the virtual clock, so results are exact rather than sampled.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/osid"
)

// JobRecord is one job's lifecycle summary. Started is the *first*
// start: a rerunnable job that is requeued after node loss and served
// again keeps its original start, so Wait measures submission to
// first service and the job's span covers every attempt. (A previous
// revision overwrote Started on restart, which silently deflated the
// reported queue wait and shrank the job's span to the last attempt.)
type JobRecord struct {
	ID        string
	OS        osid.OS
	App       string
	CPUs      int
	Submitted time.Duration
	Started   time.Duration
	Ended     time.Duration
	Completed bool
	// Restarts counts requeue-and-start cycles after the first start.
	Restarts int

	running     bool          // busy-core integration in progress
	everStarted bool          // first start seen (Started == 0 is ambiguous at t=0)
	lastStart   time.Duration // start of the current attempt
	busy        time.Duration // accumulated actual service time across attempts
}

// BusyTime returns the job's accumulated actual service time: the sum
// of its running windows across every attempt. For a never-interrupted
// job this equals Ended - Started; for a requeued one it counts each
// attempt's running window but not the queued gap between them.
func (j JobRecord) BusyTime() time.Duration { return j.busy }

// Wait returns queue wait (first start - submit).
func (j JobRecord) Wait() time.Duration { return j.Started - j.Submitted }

// SwitchRecord is one OS switch of one node.
type SwitchRecord struct {
	Node     string
	From, To osid.OS
	Started  time.Duration
	Finished time.Duration
	OK       bool
}

// Duration returns the switch latency.
func (s SwitchRecord) Duration() time.Duration { return s.Finished - s.Started }

// osSlots sizes the per-OS integration arrays: osid values are dense
// small integers (None, Linux, Windows).
const osSlots = int(osid.Windows) + 1

// Recorder accumulates cluster state over virtual time.
type Recorder struct {
	now func() time.Duration

	totalCores int

	// The integration state is indexed by osid value rather than keyed
	// by map: advance runs on every recorder event, so at city scale
	// (millions of events) per-event map iteration is pure overhead.
	last       time.Duration
	busyCores  [osSlots]int
	upNodes    [osSlots]int
	switching  int
	busyCoreNS [osSlots]float64 // ∫ busy cores dt
	upNodeNS   [osSlots]float64 // ∫ nodes-up dt
	switchNS   float64          // ∫ nodes-switching dt

	jobs        map[string]*JobRecord
	order       []string
	switches    []SwitchRecord
	inFlight    map[string]*SwitchRecord
	seenSwitch  int
	submitFails int
}

// NewRecorder creates a recorder over a virtual clock. totalCores is
// the whole machine's core count (utilisation denominator).
func NewRecorder(now func() time.Duration, totalCores int) *Recorder {
	return &Recorder{
		now:        now,
		totalCores: totalCores,
		jobs:       map[string]*JobRecord{},
		inFlight:   map[string]*SwitchRecord{},
	}
}

// advance integrates state up to the current instant. Events landing
// at the same instant — the common case inside a scheduling cascade —
// integrate a zero-width interval and return immediately.
func (r *Recorder) advance() {
	now := r.now()
	if now == r.last {
		return
	}
	dt := float64(now - r.last)
	if dt < 0 {
		panic("metrics: clock went backwards")
	}
	for os := 0; os < osSlots; os++ {
		r.busyCoreNS[os] += float64(r.busyCores[os]) * dt
		r.upNodeNS[os] += float64(r.upNodes[os]) * dt
	}
	r.switchNS += float64(r.switching) * dt
	r.last = now
}

// JobSubmitted records a submission.
func (r *Recorder) JobSubmitted(id string, os osid.OS, app string, cpus int) {
	r.advance()
	if _, dup := r.jobs[id]; dup {
		return
	}
	r.jobs[id] = &JobRecord{ID: id, OS: os, App: app, CPUs: cpus, Submitted: r.now()}
	r.order = append(r.order, id)
}

// JobStarted records a start and begins busy-core integration. A
// restart after a requeue (see JobInterrupted) resumes integration
// but keeps the first Started — first-start wait semantics.
func (r *Recorder) JobStarted(id string) {
	r.advance()
	j, ok := r.jobs[id]
	if !ok || j.running {
		return
	}
	if !j.everStarted {
		j.everStarted = true
		j.Started = r.now()
	} else {
		j.Restarts++
	}
	j.running = true
	j.lastStart = r.now()
	r.busyCores[j.OS] += j.CPUs
}

// JobInterrupted records a running job losing its slots and returning
// to the queue (a rerunnable job whose node was lost). Busy-core
// integration stops until the job is started again; without this the
// lost attempt would keep inflating utilisation while the job sat
// queued.
func (r *Recorder) JobInterrupted(id string) {
	r.advance()
	j, ok := r.jobs[id]
	if !ok || !j.running {
		return
	}
	j.running = false
	j.busy += r.now() - j.lastStart
	r.busyCores[j.OS] -= j.CPUs
	if r.busyCores[j.OS] < 0 {
		r.busyCores[j.OS] = 0
	}
}

// JobEnded records completion and releases busy cores.
func (r *Recorder) JobEnded(id string, completed bool) {
	r.advance()
	j, ok := r.jobs[id]
	if !ok {
		return
	}
	j.Ended = r.now()
	if j.running {
		j.running = false
		j.busy += r.now() - j.lastStart
		r.busyCores[j.OS] -= j.CPUs
		if r.busyCores[j.OS] < 0 {
			r.busyCores[j.OS] = 0
		}
	}
	if !j.everStarted && !completed {
		// never started (cancelled in queue)
		return
	}
	j.Completed = completed
}

// SubmitFailed counts a submission the target scheduler rejected. The
// job never enters the lifecycle records, but the failure must not
// vanish from the run's books: Summary.SubmitFailures surfaces it.
func (r *Recorder) SubmitFailed() { r.submitFails++ }

// NodeUp marks a node available on a side.
func (r *Recorder) NodeUp(os osid.OS) {
	r.advance()
	r.upNodes[os]++
}

// NodeDown marks a node unavailable on a side.
func (r *Recorder) NodeDown(os osid.OS) {
	r.advance()
	if r.upNodes[os] > 0 {
		r.upNodes[os]--
	}
}

// SwitchStarted begins tracking an OS switch.
func (r *Recorder) SwitchStarted(node string, from, to osid.OS) {
	r.advance()
	r.switching++
	r.seenSwitch++
	rec := &SwitchRecord{Node: node, From: from, To: to, Started: r.now()}
	r.inFlight[node] = rec
}

// SwitchFinished completes a switch record.
func (r *Recorder) SwitchFinished(node string, ok bool) {
	r.advance()
	if r.switching > 0 {
		r.switching--
	}
	rec, found := r.inFlight[node]
	if !found {
		return
	}
	delete(r.inFlight, node)
	rec.Finished = r.now()
	rec.OK = ok
	r.switches = append(r.switches, *rec)
}

// durSum accumulates a sum of non-negative durations without the
// int64-nanosecond overflow a city-scale run hits: a million completed
// jobs waiting hours each total centuries of queue time, past what
// time.Duration can hold. Seconds and sub-second nanoseconds are
// carried separately, and the mean is computed with the remainder
// folded in before the final division, so for sums that do fit in a
// Duration the result is bit-identical to naive accumulation.
type durSum struct {
	sec int64 // whole seconds
	ns  int64 // sub-second remainder, always < count × 1e9
}

func (a *durSum) add(d time.Duration) {
	a.sec += int64(d / time.Second)
	a.ns += int64(d % time.Second)
}

// addN accumulates d × n (a per-part mean re-weighted by its count)
// without forming the overflowing product in nanoseconds.
func (a *durSum) addN(d time.Duration, n int) {
	a.sec += int64(d/time.Second) * int64(n)
	a.ns += int64(d%time.Second) * int64(n)
}

// mean divides by n (n > 0). Exact: sec*1e9+ns = (q*n+r)*1e9+ns with
// q = sec/n, r = sec%n, so the naive (sec*1e9+ns)/n equals
// q*1e9 + (r*1e9+ns)/n without ever forming the overflowing product.
func (a durSum) mean(n int) time.Duration {
	q, r := a.sec/int64(n), a.sec%int64(n)
	return time.Duration(q)*time.Second + time.Duration((r*int64(time.Second)+a.ns)/int64(n))
}

// Summary is the digested result of a run.
type Summary struct {
	Elapsed        time.Duration
	TotalCores     int
	TotalNodes     int     // SwitchOverhead denominator (Aggregate weights by it)
	Utilisation    float64 // busy core-time / (total cores × elapsed)
	UtilisationOS  map[osid.OS]float64
	MeanWait       map[osid.OS]time.Duration
	MaxWait        map[osid.OS]time.Duration
	JobsSubmitted  map[osid.OS]int
	JobsCompleted  map[osid.OS]int
	Switches       int
	SwitchesOK     int
	MeanSwitch     time.Duration
	MaxSwitch      time.Duration
	SwitchOverhead float64 // node-time spent switching / (nodes × elapsed)
	Makespan       time.Duration
	// SubmitFailures counts jobs the scheduler rejected at submission
	// — they never ran, and without this counter a drained run would
	// hide them entirely.
	SubmitFailures int
}

// Summarise integrates to now and digests.
func (r *Recorder) Summarise(totalNodes int) Summary {
	r.advance()
	elapsed := r.last
	s := Summary{
		Elapsed:        elapsed,
		TotalCores:     r.totalCores,
		TotalNodes:     totalNodes,
		UtilisationOS:  map[osid.OS]float64{},
		MeanWait:       map[osid.OS]time.Duration{},
		MaxWait:        map[osid.OS]time.Duration{},
		JobsSubmitted:  map[osid.OS]int{},
		JobsCompleted:  map[osid.OS]int{},
		SubmitFailures: r.submitFails,
	}
	if elapsed <= 0 || r.totalCores <= 0 {
		return s
	}
	denom := float64(r.totalCores) * float64(elapsed)
	var busyTotal float64
	waitSums := map[osid.OS]*durSum{}
	waitCounts := map[osid.OS]int{}
	for _, os := range []osid.OS{osid.Linux, osid.Windows} {
		busyTotal += r.busyCoreNS[os]
		s.UtilisationOS[os] = r.busyCoreNS[os] / denom
	}
	s.Utilisation = busyTotal / denom
	for _, id := range r.order {
		j := r.jobs[id]
		s.JobsSubmitted[j.OS]++
		if j.Completed {
			s.JobsCompleted[j.OS]++
			sum := waitSums[j.OS]
			if sum == nil {
				sum = &durSum{}
				waitSums[j.OS] = sum
			}
			sum.add(j.Wait())
			waitCounts[j.OS]++
			if j.Wait() > s.MaxWait[j.OS] {
				s.MaxWait[j.OS] = j.Wait()
			}
			if j.Ended > s.Makespan {
				s.Makespan = j.Ended
			}
		}
	}
	for os, sum := range waitSums {
		s.MeanWait[os] = sum.mean(waitCounts[os])
	}
	s.Switches = len(r.switches)
	var switchSum time.Duration
	for _, sw := range r.switches {
		if sw.OK {
			s.SwitchesOK++
		}
		d := sw.Duration()
		switchSum += d
		if d > s.MaxSwitch {
			s.MaxSwitch = d
		}
	}
	if len(r.switches) > 0 {
		s.MeanSwitch = switchSum / time.Duration(len(r.switches))
	}
	if totalNodes > 0 {
		s.SwitchOverhead = r.switchNS / (float64(totalNodes) * float64(elapsed))
	}
	return s
}

// Aggregate combines the summaries of several clusters sharing one
// virtual clock — grid members — into a fabric-wide digest.
// Utilisation is core-weighted (members share the same elapsed time on
// a common engine, so core-weighting equals busy-time weighting),
// switch overhead node-weighted (it is a per-node fraction), mean
// waits are weighted by completed jobs, mean switch time by switch
// count; maxima take the max, counters sum.
func Aggregate(parts []Summary) Summary {
	out := Summary{
		UtilisationOS: map[osid.OS]float64{},
		MeanWait:      map[osid.OS]time.Duration{},
		MaxWait:       map[osid.OS]time.Duration{},
		JobsSubmitted: map[osid.OS]int{},
		JobsCompleted: map[osid.OS]int{},
	}
	var busyCores, overheadNodes float64
	busyByOS := map[osid.OS]float64{}
	waitSums := map[osid.OS]*durSum{}
	waitCounts := map[osid.OS]int{}
	var switchSum time.Duration
	for _, p := range parts {
		out.TotalCores += p.TotalCores
		out.TotalNodes += p.TotalNodes
		if p.Elapsed > out.Elapsed {
			out.Elapsed = p.Elapsed
		}
		busyCores += p.Utilisation * float64(p.TotalCores)
		overheadNodes += p.SwitchOverhead * float64(p.TotalNodes)
		for _, os := range []osid.OS{osid.Linux, osid.Windows} {
			busyByOS[os] += p.UtilisationOS[os] * float64(p.TotalCores)
			out.JobsSubmitted[os] += p.JobsSubmitted[os]
			out.JobsCompleted[os] += p.JobsCompleted[os]
			sum := waitSums[os]
			if sum == nil {
				sum = &durSum{}
				waitSums[os] = sum
			}
			sum.addN(p.MeanWait[os], p.JobsCompleted[os])
			waitCounts[os] += p.JobsCompleted[os]
			if p.MaxWait[os] > out.MaxWait[os] {
				out.MaxWait[os] = p.MaxWait[os]
			}
		}
		out.Switches += p.Switches
		out.SwitchesOK += p.SwitchesOK
		switchSum += p.MeanSwitch * time.Duration(p.Switches)
		if p.MaxSwitch > out.MaxSwitch {
			out.MaxSwitch = p.MaxSwitch
		}
		if p.Makespan > out.Makespan {
			out.Makespan = p.Makespan
		}
		out.SubmitFailures += p.SubmitFailures
	}
	if out.TotalCores > 0 {
		out.Utilisation = busyCores / float64(out.TotalCores)
		for _, os := range []osid.OS{osid.Linux, osid.Windows} {
			out.UtilisationOS[os] = busyByOS[os] / float64(out.TotalCores)
		}
	}
	if out.TotalNodes > 0 {
		out.SwitchOverhead = overheadNodes / float64(out.TotalNodes)
	}
	for os, n := range waitCounts {
		if n > 0 {
			out.MeanWait[os] = waitSums[os].mean(n)
		}
	}
	if out.Switches > 0 {
		out.MeanSwitch = switchSum / time.Duration(out.Switches)
	}
	return out
}

// Jobs returns job records in submission order.
func (r *Recorder) Jobs() []JobRecord {
	out := make([]JobRecord, 0, len(r.order))
	for _, id := range r.order {
		out = append(out, *r.jobs[id])
	}
	return out
}

// Switches returns completed switch records.
func (r *Recorder) Switches() []SwitchRecord {
	return append([]SwitchRecord(nil), r.switches...)
}

// AppStat aggregates completed jobs of one application.
type AppStat struct {
	App          string
	OS           osid.OS
	Completed    int
	MeanWait     time.Duration
	CPUHours     float64 // cores × runtime, in hours
	LongestWait  time.Duration
	ShortestWait time.Duration
}

// AppStats digests completed jobs per application — the Table-I view
// of a run. Results are sorted by application name.
func (r *Recorder) AppStats() []AppStat {
	acc := map[string]*AppStat{}
	waitSums := map[string]*durSum{}
	for _, id := range r.order {
		j := r.jobs[id]
		if !j.Completed {
			continue
		}
		key := j.App + "/" + j.OS.String()
		st, ok := acc[key]
		if !ok {
			st = &AppStat{App: j.App, OS: j.OS, ShortestWait: time.Duration(1<<62 - 1)}
			acc[key] = st
		}
		st.Completed++
		w := j.Wait()
		sum := waitSums[key]
		if sum == nil {
			sum = &durSum{}
			waitSums[key] = sum
		}
		sum.add(w)
		if w > st.LongestWait {
			st.LongestWait = w
		}
		if w < st.ShortestWait {
			st.ShortestWait = w
		}
		// Actual service time, not Ended-Started: a requeued job's
		// queue gap must not count as compute.
		st.CPUHours += float64(j.CPUs) * j.busy.Hours()
	}
	out := make([]AppStat, 0, len(acc))
	for key, st := range acc {
		st.MeanWait = waitSums[key].mean(st.Completed)
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].App != out[j].App {
			return out[i].App < out[j].App
		}
		return out[i].OS < out[j].OS
	})
	return out
}

// WaitPercentile computes the p-th percentile queue wait over
// completed jobs on a side (p in [0,100]).
func (r *Recorder) WaitPercentile(os osid.OS, p float64) time.Duration {
	var waits []time.Duration
	for _, id := range r.order {
		j := r.jobs[id]
		if j.Completed && (os == osid.None || j.OS == os) {
			waits = append(waits, j.Wait())
		}
	}
	if len(waits) == 0 {
		return 0
	}
	sort.Slice(waits, func(i, j int) bool { return waits[i] < waits[j] })
	idx := int(p / 100 * float64(len(waits)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(waits) {
		idx = len(waits) - 1
	}
	return waits[idx]
}

// Table renders rows as an aligned text table; the benchmark harness
// and CLI share it.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// Pct formats a ratio as a percentage string.
func Pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

// Dur formats a duration at seconds resolution.
func Dur(d time.Duration) string { return d.Round(time.Second).String() }
