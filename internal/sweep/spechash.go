package sweep

import (
	"crypto/sha256"
	"fmt"
)

// SpecHash returns the content address of a spec: the lowercase-hex
// SHA-256 of MarshalSpec's byte-stable canonical form. Because the
// canonical form is a pure function of the grid — keys in registry
// order, fixed indentation, defaults omitted — two specs hash equal
// exactly when they replay the same experiment, regardless of how the
// submitted JSON was formatted. The service layer keys its
// content-addressed result cache on this hash, and the committed
// documents under specs/ pin their hashes in a golden test so a
// refactor that silently perturbs the canonical form cannot slip
// through. It errors when the grid has no canonical form (custom
// traces, bespoke topologies), exactly as MarshalSpec does.
func SpecHash(sp Spec) (string, error) {
	b, err := MarshalSpec(sp)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%x", sha256.Sum256(b)), nil
}
