package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/service"
)

// runServe is the serve subcommand: the long-running simulation
// service. It binds -addr, recovers the -state-dir (re-enqueueing any
// job a previous process left queued or running), and serves the
// /v1 sweep API until SIGINT/SIGTERM.
func runServe(args []string) {
	fs := flag.NewFlagSet("qsim serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
	stateDir := fs.String("state-dir", "qsim-state", "crash-safe state directory (created if missing)")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "sweep worker pool size per job (output is identical for any value)")
	root := fs.String("root", "", "directory served specs' relative swf trace paths resolve against; submitted specs can only read files under it (default: working directory)")
	fs.Parse(args)

	srv, err := service.New(service.Config{Addr: *addr, StateDir: *stateDir, Workers: *workers, Root: *root})
	if err != nil {
		fmt.Fprintln(os.Stderr, "qsim:", err)
		os.Exit(1)
	}
	if err := srv.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "qsim:", err)
		os.Exit(1)
	}
	fmt.Printf("qsim serve: state dir %s\n", *stateDir)
	fmt.Printf("qsim serve: listening on %s\n", srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("qsim serve: shutting down")
	// The in-flight sweep is canceled between cells; its checkpoints
	// make the interruption recoverable, so draining is bounded by one
	// cell, not one job.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "qsim:", err)
		os.Exit(1)
	}
}

// runSubmit posts a spec document to a running service and prints the
// job it landed as.
func runSubmit(args []string) {
	fs := flag.NewFlagSet("qsim submit", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "service address")
	specFile := fs.String("f", "", "sweep spec document to submit (required)")
	quiet := fs.Bool("q", false, "print only the job ID")
	fs.Parse(args)
	if *specFile == "" {
		fmt.Fprintln(os.Stderr, "qsim: submit needs -f <spec.json>")
		os.Exit(2)
	}
	f, err := os.Open(*specFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qsim:", err)
		os.Exit(1)
	}
	defer f.Close()
	c := &service.Client{Base: *addr}
	job, err := c.Submit(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qsim:", err)
		os.Exit(1)
	}
	if *quiet {
		fmt.Println(job.ID)
		return
	}
	printJob(job)
}

// runStatus prints a job's current state.
func runStatus(args []string) {
	fs := flag.NewFlagSet("qsim status", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "service address")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "qsim: status needs exactly one job ID")
		os.Exit(2)
	}
	c := &service.Client{Base: *addr}
	job, err := c.Status(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "qsim:", err)
		os.Exit(1)
	}
	printJob(job)
}

// runFetch downloads a finished job's result table; -wait follows the
// job's event stream to completion first (event-driven — no polling).
func runFetch(args []string) {
	fs := flag.NewFlagSet("qsim fetch", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "service address")
	asJSON := fs.Bool("json", false, "fetch the JSON rendering instead of CSV")
	outPath := fs.String("o", "", "write the result to this file instead of stdout")
	wait := fs.Bool("wait", false, "wait for the job to finish first")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "qsim: fetch needs exactly one job ID")
		os.Exit(2)
	}
	id := fs.Arg(0)
	c := &service.Client{Base: *addr}
	if *wait {
		job, err := c.Wait(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qsim:", err)
			os.Exit(1)
		}
		if job.State != service.StateDone {
			fmt.Fprintf(os.Stderr, "qsim: job %s ended %s: %s\n", id, job.State, job.Error)
			os.Exit(1)
		}
	}
	format := "csv"
	if *asJSON {
		format = "json"
	}
	b, err := c.Result(id, format)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qsim:", err)
		os.Exit(1)
	}
	if *outPath == "" {
		os.Stdout.Write(b)
		return
	}
	if err := os.WriteFile(*outPath, b, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "qsim:", err)
		os.Exit(1)
	}
	fmt.Printf("result written to %s\n", *outPath)
}

func printJob(j service.Job) {
	fmt.Printf("job       %s", j.ID)
	if j.Name != "" {
		fmt.Printf("  (%s)", j.Name)
	}
	fmt.Println()
	fmt.Printf("state     %s", j.State)
	if j.Cached {
		fmt.Print("  (served from result cache)")
	}
	if j.Error != "" {
		fmt.Printf("  (%s)", j.Error)
	}
	fmt.Println()
	fmt.Printf("cells     %d/%d\n", j.CellsDone, j.Cells)
	fmt.Printf("spec      sha256:%s\n", j.SpecHash)
}
