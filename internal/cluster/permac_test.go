package cluster

import (
	"testing"
	"time"

	"repro/internal/osid"
	"repro/internal/pxe"
	"repro/internal/workload"
)

// These tests cover the Figure-12 per-MAC boot control variant — v2's
// initial design — against the final single-flag design (Figure 13).

func TestPerMACProvisioning(t *testing.T) {
	c := newCluster(t, Config{Mode: HybridV2, PerMACBoot: true, InitialLinux: 8})
	if c.PXE.Mode() != pxe.ModePerMAC {
		t.Fatalf("pxe mode = %v", c.PXE.Mode())
	}
	// One menu per node plus the default.
	if got := len(c.PXE.MenuFiles()); got != 17 {
		t.Fatalf("menu files = %d, want 17", got)
	}
}

func TestPerMACSwitchLandsOnTarget(t *testing.T) {
	c := newCluster(t, Config{Mode: HybridV2, PerMACBoot: true, InitialLinux: 16, Cycle: 5 * time.Minute})
	sum, err := c.RunTrace(workload.Trace{winJob(0, 2, time.Hour)}, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if sum.JobsCompleted[osid.Windows] != 1 {
		t.Fatalf("completed = %v", sum.JobsCompleted)
	}
	for _, sw := range c.Rec.Switches() {
		if !sw.OK {
			t.Fatalf("per-MAC switch missed target: %+v", sw)
		}
	}
}

func TestPerMACPaysOneActionPerNode(t *testing.T) {
	// The same wide-job scenario through both v2 variants: per-MAC
	// needs one menu write per node, the flag amortises to one.
	trace := workload.Trace{winJob(0, 3, time.Hour)}

	perMAC := newCluster(t, Config{Mode: HybridV2, PerMACBoot: true, InitialLinux: 16, Cycle: 5 * time.Minute})
	if _, err := perMAC.RunTrace(trace, 24*time.Hour); err != nil {
		t.Fatal(err)
	}
	flag := newCluster(t, Config{Mode: HybridV2, InitialLinux: 16, Cycle: 5 * time.Minute})
	if _, err := flag.RunTrace(trace, 24*time.Hour); err != nil {
		t.Fatal(err)
	}

	pm, fl := perMAC.Summary(), flag.Summary()
	if pm.Switches != fl.Switches {
		t.Fatalf("switch counts diverge: %d vs %d", pm.Switches, fl.Switches)
	}
	if perMAC.ControlActions() != pm.Switches {
		t.Fatalf("per-MAC actions = %d, want one per switch (%d)", perMAC.ControlActions(), pm.Switches)
	}
	if flag.ControlActions() >= perMAC.ControlActions() {
		t.Fatalf("flag actions (%d) should undercut per-MAC (%d)", flag.ControlActions(), perMAC.ControlActions())
	}
}

func TestPerMACRebootDoesNotMoveOtherNodes(t *testing.T) {
	// The property the per-MAC design buys: an unrelated reboot keeps
	// a node on its own OS even while another node is being switched.
	c := newCluster(t, Config{Mode: HybridV2, PerMACBoot: true, InitialLinux: 8})
	if err := c.ForceSwitch("enode01", osid.Windows); err != nil {
		t.Fatal(err)
	}
	// enode02 reboots "accidentally" (power reset) while enode01's
	// switch is pending: its per-MAC menu still says Linux.
	if err := c.ForceSwitch("enode02", osid.Linux); err != nil {
		t.Fatal(err)
	}
	c.Eng.RunFor(time.Hour)
	if c.byName["enode01"].OS != osid.Windows {
		t.Fatalf("enode01 = %v", c.byName["enode01"].OS)
	}
	if c.byName["enode02"].OS != osid.Linux {
		t.Fatalf("enode02 = %v, per-MAC menu failed to pin it", c.byName["enode02"].OS)
	}
}

func TestFlagModeRebootMovesEveryRebootingNode(t *testing.T) {
	// The flag design's hazard (accepted by the paper because "the
	// whole dual-boot cluster will only need one system at one time"):
	// any reboot while the flag points away moves the node.
	c := newCluster(t, Config{Mode: HybridV2, InitialLinux: 8})
	if err := c.ForceSwitch("enode01", osid.Windows); err != nil {
		t.Fatal(err)
	}
	// enode02 (Linux) power-cycles while the flag says Windows.
	c.beginSwitch("enode02", osid.Linux) // intent: stay on Linux
	c.Eng.RunFor(time.Hour)
	if c.byName["enode02"].OS != osid.Windows {
		t.Fatalf("enode02 = %v, expected the shared flag to capture it", c.byName["enode02"].OS)
	}
	// And the switch record is marked as missing its target.
	found := false
	for _, sw := range c.Rec.Switches() {
		if sw.Node == "enode02" && !sw.OK {
			found = true
		}
	}
	if !found {
		t.Fatal("captured reboot not recorded as off-target")
	}
}
