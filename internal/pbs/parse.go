package pbs

import (
	"fmt"
	"strconv"
	"strings"
)

// This file implements the scraping side: the paper's Perl detector
// parses the text of `qstat -f` and `pbsnodes` because the Torque of
// the day "does not provide APIs for other programs". The parsers are
// deliberately tolerant the way the Perl was: they key on the
// "Name\n    attr = value" shape and ignore attributes they do not
// know.

// JobStatus is one scraped qstat -f record.
type JobStatus struct {
	ID       string
	Name     string
	Owner    string
	State    JobState
	Queue    string
	ExecHost string
	Nodes    int
	PPN      int
}

// CPUs returns the scraped CPU request.
func (j JobStatus) CPUs() int { return j.Nodes * j.PPN }

// NodeStatus is one scraped pbsnodes record.
type NodeStatus struct {
	Name  string
	State NodeState
	NP    int
	Jobs  []string
}

// ParseQstatF scrapes `qstat -f` output into job records.
func ParseQstatF(text string) ([]JobStatus, error) {
	var out []JobStatus
	var cur *JobStatus
	flush := func() {
		if cur != nil {
			out = append(out, *cur)
			cur = nil
		}
	}
	for lineNo, raw := range strings.Split(text, "\n") {
		line := strings.TrimRight(raw, "\r")
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			continue
		}
		if after, ok := strings.CutPrefix(trimmed, "Job Id:"); ok && !isIndented(line) {
			flush()
			cur = &JobStatus{ID: strings.TrimSpace(after), Nodes: 1, PPN: 1}
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("pbs: qstat parse: line %d: attribute outside record: %q", lineNo+1, trimmed)
		}
		key, val, ok := strings.Cut(trimmed, "=")
		if !ok {
			// continuation lines (wrapped values) are appended to
			// nothing we track; skip
			continue
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		switch key {
		case "Job_Name":
			cur.Name = val
		case "Job_Owner":
			cur.Owner = val
		case "job_state":
			if len(val) == 1 {
				cur.State = JobState(val[0])
			}
		case "queue":
			cur.Queue = val
		case "exec_host":
			cur.ExecHost = val
		case "Resource_List.nodes":
			nodes, ppn, err := parseNodesSpec(val)
			if err == nil {
				cur.Nodes, cur.PPN = nodes, ppn
			}
		}
	}
	flush()
	return out, nil
}

// ParsePBSNodes scrapes `pbsnodes` output into node records.
func ParsePBSNodes(text string) ([]NodeStatus, error) {
	var out []NodeStatus
	var cur *NodeStatus
	flush := func() {
		if cur != nil {
			out = append(out, *cur)
			cur = nil
		}
	}
	for _, raw := range strings.Split(text, "\n") {
		line := strings.TrimRight(raw, "\r")
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			continue
		}
		if !isIndented(line) {
			flush()
			cur = &NodeStatus{Name: trimmed}
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("pbs: pbsnodes parse: attribute before any node: %q", trimmed)
		}
		key, val, ok := strings.Cut(trimmed, "=")
		if !ok {
			continue
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		switch key {
		case "state":
			cur.State = NodeState(val)
		case "np":
			np, err := strconv.Atoi(val)
			if err != nil {
				return nil, fmt.Errorf("pbs: pbsnodes parse: node %s: bad np %q", cur.Name, val)
			}
			cur.NP = np
		case "jobs":
			for _, item := range strings.Split(val, ",") {
				item = strings.TrimSpace(item)
				if item != "" {
					cur.Jobs = append(cur.Jobs, item)
				}
			}
		}
	}
	flush()
	return out, nil
}

func isIndented(line string) bool {
	return strings.HasPrefix(line, " ") || strings.HasPrefix(line, "\t")
}
