package workload

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"time"

	"repro/internal/osid"
)

// This file holds the heavy-traffic arrival processes: a two-state
// Markov-modulated Poisson process (MMPP) whose rate flips between a
// quiet and a burst level, and a closed user-population model where N
// simulated users submit interactively with think times. Both draw job
// shapes from the Table-I catalog exactly like Poisson does, and both
// are seeded and deterministic.

// MMPPConfig parameterises the two-state MMPP arrival process.
type MMPPConfig struct {
	Seed     int64
	Duration time.Duration // submission window
	// BaseRate is the quiet-state submission rate in jobs/hour.
	BaseRate float64
	// BurstFactor multiplies BaseRate in the burst state (default 10).
	BurstFactor float64
	// MeanDwell is the mean sojourn time in each state, exponentially
	// distributed (default 1h).
	MeanDwell   time.Duration
	WindowsFrac float64 // fraction of jobs routed to Windows (0..1)
	MaxNodes    int     // job width cap (default: uncapped)
}

// MMPP draws a Markov-modulated Poisson trace: the arrival rate
// alternates between BaseRate and BaseRate×BurstFactor, with
// exponential dwell times in each state. The marginal process is far
// burstier than a plain Poisson stream at the same mean rate — long
// quiet stretches punctuated by dense arrival clusters, the shape
// heavy production traffic actually has.
func MMPP(cfg MMPPConfig) Trace {
	if cfg.BaseRate <= 0 || cfg.Duration <= 0 {
		return nil
	}
	if cfg.BurstFactor <= 0 {
		cfg.BurstFactor = 10
	}
	if cfg.MeanDwell <= 0 {
		cfg.MeanDwell = time.Hour
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var trace Trace
	burst := false
	now := time.Duration(0)
	segEnd := time.Duration(rng.ExpFloat64() * float64(cfg.MeanDwell))
	for now <= cfg.Duration {
		rate := cfg.BaseRate
		if burst {
			rate *= cfg.BurstFactor
		}
		gap := time.Duration(rng.ExpFloat64() * float64(time.Hour) / rate)
		if next := now + gap; next > segEnd {
			// The state flips before the next arrival would land. The
			// exponential gap is memoryless, so restarting the draw at
			// the boundary with the new state's rate is exact.
			now = segEnd
			burst = !burst
			segEnd += time.Duration(rng.ExpFloat64() * float64(cfg.MeanDwell))
			continue
		} else {
			now = next
		}
		if now > cfg.Duration {
			break
		}
		trace = append(trace, drawCatalogJob(rng, now, cfg.WindowsFrac, cfg.MaxNodes))
	}
	trace.Sort()
	return trace
}

// UserPopulationConfig parameterises the interactive user-population
// model.
type UserPopulationConfig struct {
	Seed     int64
	Users    int           // population size
	Duration time.Duration // submission window
	// MeanThink is the mean think time between a user's job finishing
	// and their next submission, exponentially distributed (default 2h).
	MeanThink   time.Duration
	WindowsFrac float64
	MaxNodes    int
}

// UserPopulation simulates N users in a closed interactive loop: each
// user thinks for an exponential think time, submits a catalog job,
// conceptually waits out its runtime, and thinks again. Unlike an open
// Poisson stream the offered load self-limits — a user with a job in
// flight submits nothing — which is how populations of real users
// behave. Every user draws from an independent RNG stream derived from
// (Seed, user index), so the trace is a pure function of the
// configuration regardless of generation order.
func UserPopulation(cfg UserPopulationConfig) Trace {
	if cfg.Users <= 0 || cfg.Duration <= 0 {
		return nil
	}
	if cfg.MeanThink <= 0 {
		cfg.MeanThink = 2 * time.Hour
	}
	var trace Trace
	for u := 0; u < cfg.Users; u++ {
		rng := rand.New(rand.NewSource(mixSeed(cfg.Seed, int64(u))))
		owner := fmt.Sprintf("user%04d", u+1)
		now := time.Duration(rng.ExpFloat64() * float64(cfg.MeanThink))
		for now <= cfg.Duration {
			j := drawCatalogJob(rng, now, cfg.WindowsFrac, cfg.MaxNodes)
			j.Owner = owner
			trace = append(trace, j)
			// Closed loop: the user waits for the job, then thinks.
			now += j.Runtime + time.Duration(rng.ExpFloat64()*float64(cfg.MeanThink))
		}
	}
	trace.Sort()
	return trace
}

// drawCatalogJob draws one submission from the Table-I catalog with
// the same per-job draw sequence Poisson uses: the OS share first,
// then the application, then the log-normal-ish runtime scatter, then
// the owner.
func drawCatalogJob(rng *rand.Rand, at time.Duration, winFrac float64, maxNodes int) Job {
	var app App
	var os osid.OS
	if rng.Float64() < winFrac {
		apps := append(CatalogByPlatform(WindowsOnly), CatalogByPlatform(Both)...)
		app = apps[rng.Intn(len(apps))]
		os = osid.Windows
	} else {
		apps := append(CatalogByPlatform(LinuxOnly), CatalogByPlatform(Both)...)
		app = apps[rng.Intn(len(apps))]
		os = osid.Linux
	}
	nodes := app.TypicalNodes
	if maxNodes > 0 && nodes > maxNodes {
		nodes = maxNodes
	}
	scatter := math.Exp(0.5 * rng.NormFloat64())
	runtime := time.Duration(float64(app.TypicalRuntime) * scatter)
	if runtime < time.Minute {
		runtime = time.Minute
	}
	return Job{
		At:      at,
		App:     app.Name,
		OS:      os,
		Owner:   fmt.Sprintf("user%02d", rng.Intn(12)+1),
		Nodes:   nodes,
		PPN:     app.TypicalPPN,
		Runtime: runtime,
	}
}

// mixSeed folds a stream index into a base seed with FNV-1a, matching
// the coordinate-derived seeding style the sweep package uses:
// deterministic across runs, platforms and Go versions.
func mixSeed(base, idx int64) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%d", base, idx)
	return int64(h.Sum64() &^ (1 << 63))
}
