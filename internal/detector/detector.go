// Package detector implements the queue-state fetching programs of
// dualboot-oscar: one per head node, each answering "is this scheduler
// stuck, and how many CPUs does the job at the head of the queue
// need?". A scheduler is *stuck* — the paper's definition — "when the
// scheduler has no job running and several jobs are queuing".
//
// The Linux detector scrapes `qstat -f` and `pbsnodes` text (Torque of
// the era offered no API); the Windows detector queries the HPC Pack
// SDK. Both emit the same wire format (Figure 5) so the communicators
// can exchange them symmetrically:
//
//	position 0     queue state: '1' stuck, '0' otherwise
//	positions 1–4  CPUs needed by the first queued job, zero-padded
//	positions 5–67 stuck job ID, "none" when not stuck
//	positions 68+  undefined
package detector

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/pbs"
	"repro/internal/winhpc"
)

// maxIDLen is the job-ID field width: positions 5 through 67.
const maxIDLen = 63

// maxCPUs is the largest demand the 4-digit field can carry.
const maxCPUs = 9999

// NoneID is the job-ID placeholder when the queue is not stuck.
const NoneID = "none"

// Report is the decoded detector output.
type Report struct {
	Stuck      bool
	NeededCPUs int
	StuckJobID string
}

// Encode renders the Figure-5 wire string. Values outside the field
// widths are clamped (CPUs) or truncated (job ID) the way a fixed-
// format protocol forces.
func (r Report) Encode() string {
	state := byte('0')
	if r.Stuck {
		state = '1'
	}
	cpus := r.NeededCPUs
	if cpus < 0 {
		cpus = 0
	}
	if cpus > maxCPUs {
		cpus = maxCPUs
	}
	id := r.StuckJobID
	if id == "" {
		id = NoneID
	}
	if len(id) > maxIDLen {
		id = id[:maxIDLen]
	}
	return fmt.Sprintf("%c%04d%s", state, cpus, id)
}

// Parse decodes a wire string produced by Encode (or by the original
// Perl detectors, whose outputs in Figure 6 parse verbatim).
func Parse(s string) (Report, error) {
	s = strings.TrimSpace(s)
	if len(s) < 6 {
		return Report{}, fmt.Errorf("detector: report %q too short", s)
	}
	var r Report
	switch s[0] {
	case '1':
		r.Stuck = true
	case '0':
		r.Stuck = false
	default:
		return Report{}, fmt.Errorf("detector: bad state byte %q", s[0])
	}
	cpus, err := strconv.Atoi(s[1:5])
	if err != nil || cpus < 0 {
		return Report{}, fmt.Errorf("detector: bad CPU field %q", s[1:5])
	}
	r.NeededCPUs = cpus
	id := s[5:]
	if len(id) > maxIDLen {
		id = id[:maxIDLen]
	}
	r.StuckJobID = id
	if !r.Stuck && r.StuckJobID != NoneID {
		// tolerated: the format only promises "default none"
		_ = id
	}
	return r, nil
}

// Detector produces queue-state reports for one scheduler.
type Detector interface {
	// Detect returns the current report.
	Detect() (Report, error)
	// Describe returns the human-oriented debug output in the shape of
	// Figure 6 (wire line, state description, R/nR counts).
	Describe() (string, error)
}

// PBSDetector scrapes a Torque server's command output. It reads
// through function values so it can be pointed at a live simulated
// server, canned text from the paper, or (in the original deployment)
// actual pbs command invocations.
//
// When wired to a live simulated server, Detect answers from the
// server's maintained queue census instead of rendering and re-parsing
// the full `qstat -f` text every poll — the render/scrape cycle is
// O(total jobs ever submitted) and dominated whole-run profiles at
// metro scale. Describe keeps the text path: its output *is* the
// scrape (Figure 6), and canned-text detectors have no server to ask.
type PBSDetector struct {
	QstatF   func() string
	PBSNodes func() string

	// Server, when non-nil, enables the structured fast path for
	// Detect. The text path remains authoritative for Describe and for
	// detectors built from canned command output.
	Server *pbs.Server
}

// NewPBSDetector wires a detector to a simulated PBS server.
func NewPBSDetector(s *pbs.Server) *PBSDetector {
	return &PBSDetector{QstatF: s.QstatF, PBSNodes: s.PBSNodes, Server: s}
}

// scan parses the command output into running/queued job lists.
func (d *PBSDetector) scan() (running, queued []pbs.JobStatus, err error) {
	jobs, err := pbs.ParseQstatF(d.QstatF())
	if err != nil {
		return nil, nil, fmt.Errorf("detector: %w", err)
	}
	for _, j := range jobs {
		switch j.State {
		case pbs.StateRunning, pbs.StateExiting:
			running = append(running, j)
		case pbs.StateQueued:
			queued = append(queued, j)
		}
	}
	return running, queued, nil
}

// Detect implements Detector.
func (d *PBSDetector) Detect() (Report, error) {
	if d.Server != nil {
		// Structured fast path: the maintained census carries the same
		// running/queued counts and queue head the text scrape yields
		// (the simulated server never renders transient E states).
		stats := d.Server.QueueStats()
		return buildReport(stats.Running, stats.Queued, func() (int, string) {
			j := d.Server.FirstQueued()
			return j.Nodes * j.PPN, j.ID
		}), nil
	}
	running, queued, err := d.scan()
	if err != nil {
		return Report{}, err
	}
	return buildReport(len(running), len(queued), func() (int, string) {
		return queued[0].CPUs(), queued[0].ID
	}), nil
}

// Describe implements Detector, reproducing the three output shapes of
// Figure 6.
func (d *PBSDetector) Describe() (string, error) {
	running, queued, err := d.scan()
	if err != nil {
		return "", err
	}
	rep := buildReport(len(running), len(queued), func() (int, string) {
		return queued[0].CPUs(), queued[0].ID
	})
	var b strings.Builder
	b.WriteString(rep.Encode())
	b.WriteByte('\n')
	b.WriteString(stateDescription(len(running), len(queued)))
	b.WriteByte('\n')
	fmt.Fprintf(&b, "R=%d nR=%d\n", len(running), len(queued))
	for _, j := range running {
		fmt.Fprintf(&b, "%s\n", j.ID)
		fmt.Fprintf(&b, "    Job_Name=%s\n", j.Name)
		fmt.Fprintf(&b, "    Job_Owner=%s\n", j.Owner)
		fmt.Fprintf(&b, "    state=%s\n", j.State)
	}
	return b.String(), nil
}

// WinHPCDetector queries the Windows HPC scheduler through its SDK
// snapshot, following "the same output format" as the PBS detector.
type WinHPCDetector struct {
	Sched *winhpc.Scheduler
}

// NewWinHPCDetector wires a detector to a simulated HPC scheduler.
func NewWinHPCDetector(s *winhpc.Scheduler) *WinHPCDetector {
	return &WinHPCDetector{Sched: s}
}

// Detect implements Detector.
func (d *WinHPCDetector) Detect() (Report, error) {
	snap := d.Sched.Snapshot()
	return buildReport(snap.Running, snap.Queued, func() (int, string) {
		return snap.NeededCores, fmt.Sprintf("%d.%s", snap.FirstQueued, d.Sched.ClusterName())
	}), nil
}

// Describe implements Detector.
func (d *WinHPCDetector) Describe() (string, error) {
	snap := d.Sched.Snapshot()
	rep, _ := d.Detect()
	var b strings.Builder
	b.WriteString(rep.Encode())
	b.WriteByte('\n')
	b.WriteString(stateDescription(snap.Running, snap.Queued))
	b.WriteByte('\n')
	fmt.Fprintf(&b, "R=%d nR=%d\n", snap.Running, snap.Queued)
	for _, j := range d.Sched.RunningJobs() {
		fmt.Fprintf(&b, "%d.%s\n", j.ID, d.Sched.ClusterName())
		fmt.Fprintf(&b, "    Job_Name=%s\n", j.Name)
		fmt.Fprintf(&b, "    Job_Owner=%s\n", j.Owner)
		fmt.Fprintf(&b, "    state=%s\n", j.State)
	}
	return b.String(), nil
}

// buildReport applies the stuck rule: no job running, at least one
// queued. firstQueued is only consulted when queued > 0.
func buildReport(running, queued int, firstQueued func() (int, string)) Report {
	if running == 0 && queued > 0 {
		cpus, id := firstQueued()
		return Report{Stuck: true, NeededCPUs: cpus, StuckJobID: id}
	}
	return Report{Stuck: false, NeededCPUs: 0, StuckJobID: NoneID}
}

// stateDescription matches Figure 6's middle lines.
func stateDescription(running, queued int) string {
	switch {
	case running == 0 && queued > 0:
		return "Queue stuck"
	case running > 0 && queued == 0:
		return "Job running, no queuing."
	case running > 0 && queued > 0:
		return "Job running, jobs queuing."
	default:
		return "Other state"
	}
}
