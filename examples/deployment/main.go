// Deployment walkthrough: the v1 vs v2 maintenance story on one node
// (paper §III-C and §IV-B). Watch the v1 clean-based Windows reimage
// destroy the Linux install and the MBR, and the v2 skip label +
// partition-1-only script keep everything.
//
//	go run ./examples/deployment
package main

import (
	"fmt"
	"log"

	"repro/internal/deploy"
	"repro/internal/hardware"
	"repro/internal/oscar"
)

func main() {
	fmt.Println("== dualboot-oscar v1 deployment (Figures 9-10, §III-C) ==")
	v1()
	fmt.Println()
	fmt.Println("== dualboot-oscar v2 deployment (Figures 14-15, §IV-B) ==")
	v2()
}

func v1() {
	node := hardware.NewNode(hardware.NodeSpec{Name: "enode01", Index: 1})

	// Windows must go first: its installer owns the whole disk.
	dp := must(deploy.ParseDiskpart(deploy.V1Diskpart))
	winRep := must(deploy.DeployWindows(node, dp))
	fmt.Printf("1. Windows installed on partition %d (150 GB of 250 GB reserved)\n", winRep.TargetPartition)

	// Linux on top, with the manual patches v1 demands every rebuild.
	layout := must(deploy.ParseIdeDisk(deploy.V1IdeDisk))
	img := must(oscar.BuildImage("oscarimage", oscar.V1, layout))
	fmt.Printf("2. OSCAR image built; manual patches required each rebuild:\n")
	for _, p := range img.ManualPatches {
		fmt.Printf("   - %s\n", p)
	}
	linRep := must(oscar.DeployNode(node, img))
	fmt.Printf("3. Linux deployed: %d partitions created, GRUB in MBR: %v\n",
		linRep.PartitionsCreated, linRep.GRUBInstalled)

	// Now reimage Windows: the clean wipes everything.
	reRep := must(deploy.DeployWindows(node, dp))
	fmt.Printf("4. Windows reimaged: disk cleaned=%v, Linux partitions lost=%d, GRUB destroyed=%v\n",
		reRep.Diskpart.Cleaned, reRep.LinuxPartitionsLost, reRep.GRUBDestroyed)
	fmt.Println("   -> Linux must be fully reinstalled. This is the v1 pain.")
}

func v2() {
	node := hardware.NewNode(hardware.NodeSpec{Name: "enode01", Index: 1, PXEFirst: true})

	dp := must(deploy.ParseDiskpart(deploy.V2InitialDiskpart))
	winRep := must(deploy.DeployWindows(node, dp))
	fmt.Printf("1. Windows installed on partition %d (16 GB per Figure 14)\n", winRep.TargetPartition)

	layout := must(deploy.ParseIdeDisk(deploy.V2IdeDisk))
	img := must(oscar.BuildImage("oscarimage", oscar.V2, layout))
	fmt.Printf("2. OSCAR image built with the skip label; manual patches: %d\n", len(img.ManualPatches))
	linRep := must(oscar.DeployNode(node, img))
	fmt.Printf("3. Linux deployed: %d created, %d preserved (the skip partition)\n",
		linRep.PartitionsCreated, linRep.PartitionsPreserved)

	// Reimage each OS independently.
	re := must(deploy.ParseDiskpart(deploy.V2ReimageDiskpart))
	reRep := must(deploy.DeployWindows(node, re))
	fmt.Printf("4. Windows reimaged: cleaned=%v, Linux partitions lost=%d (MBR rewritten=%v — irrelevant under PXE)\n",
		reRep.Diskpart.Cleaned, reRep.LinuxPartitionsLost, reRep.MBRRewritten)

	// Plant Windows user data, then reimage Linux: the skip label
	// protects it.
	win := mustPart(node, 1)
	_ = win.WriteFile("/Users/research/results.dat", []byte("precious"))
	linRep2 := must(oscar.DeployNode(node, img))
	win = mustPart(node, 1)
	fmt.Printf("5. Linux reimaged: Windows preserved=%v, user data intact=%v\n",
		!linRep2.WindowsLost, win.HasFile("/Users/research/results.dat"))
	fmt.Println("   -> Each OS reimages independently. This is the v2 fix.")
}

func must[T any](v T, err error) T {
	if err != nil {
		log.Fatal(err)
	}
	return v
}

func mustPart(n *hardware.Node, idx int) *hardware.Partition {
	p, err := n.Disk.Partition(idx)
	if err != nil {
		log.Fatal(err)
	}
	return p
}
