package pxe

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/grubcfg"
	"repro/internal/hardware"
	"repro/internal/osid"
)

func newFlagService(t *testing.T) *Service {
	t.Helper()
	s, err := NewService(Config{Mode: ModeFlag})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func newPerMACService(t *testing.T) *Service {
	t.Helper()
	s, err := NewService(Config{Mode: ModePerMAC})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func menuDefaultOS(t *testing.T, data []byte) osid.OS {
	t.Helper()
	cfg, err := grubcfg.Parse(data)
	if err != nil {
		t.Fatalf("menu unparseable: %v\n%s", err, data)
	}
	e, err := cfg.DefaultEntry()
	if err != nil {
		t.Fatal(err)
	}
	return e.OS()
}

func TestNewServiceDefaults(t *testing.T) {
	s := newFlagService(t)
	if !s.Enabled() {
		t.Error("service starts disabled")
	}
	if s.Flag() != osid.Linux {
		t.Errorf("initial flag = %v, want linux", s.Flag())
	}
	if !s.HasKernelFor() {
		t.Error("kernel not staged in TFTP tree")
	}
	if s.Mode() != ModeFlag {
		t.Errorf("mode = %v", s.Mode())
	}
}

func TestOfferROM(t *testing.T) {
	s := newFlagService(t)
	mac := hardware.MACForIndex(1)
	rom, ok := s.OfferROM(mac)
	if !ok || rom != RomPath {
		t.Fatalf("OfferROM = %q, %v", rom, ok)
	}
	s.SetEnabled(false)
	if _, ok := s.OfferROM(mac); ok {
		t.Fatal("disabled service still offers ROM")
	}
	if s.Stats().DHCPOffers != 1 {
		t.Fatalf("DHCPOffers = %d", s.Stats().DHCPOffers)
	}
}

func TestFlagModeMenuFollowsFlag(t *testing.T) {
	s := newFlagService(t)
	mac := hardware.MACForIndex(7)
	if err := s.RegisterNode(mac); err != nil {
		t.Fatal(err)
	}
	data, err := s.FetchMenu(mac)
	if err != nil {
		t.Fatal(err)
	}
	if got := menuDefaultOS(t, data); got != osid.Linux {
		t.Fatalf("menu boots %v, want linux", got)
	}
	if err := s.SetFlag(osid.Windows); err != nil {
		t.Fatal(err)
	}
	data, err = s.FetchMenu(mac)
	if err != nil {
		t.Fatal(err)
	}
	if got := menuDefaultOS(t, data); got != osid.Windows {
		t.Fatalf("after SetFlag menu boots %v, want windows", got)
	}
}

func TestFlagModeSingleMenuFile(t *testing.T) {
	s := newFlagService(t)
	for i := 0; i < 16; i++ {
		if err := s.RegisterNode(hardware.MACForIndex(i)); err != nil {
			t.Fatal(err)
		}
	}
	files := s.MenuFiles()
	if len(files) != 1 || files[0] != DefaultMenuPath {
		t.Fatalf("flag mode menu files = %v, want only default", files)
	}
}

func TestFlagModeRejectsPerNodeTargeting(t *testing.T) {
	s := newFlagService(t)
	if err := s.SetNodeOS(hardware.MACForIndex(1), osid.Windows); err == nil {
		t.Fatal("SetNodeOS succeeded in flag mode")
	}
}

func TestPerMACMode(t *testing.T) {
	s := newPerMACService(t)
	macA, macB := hardware.MACForIndex(1), hardware.MACForIndex(2)
	if err := s.RegisterNode(macA); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterNode(macB); err != nil {
		t.Fatal(err)
	}
	if err := s.SetNodeOS(macA, osid.Windows); err != nil {
		t.Fatal(err)
	}
	da, _ := s.FetchMenu(macA)
	db, _ := s.FetchMenu(macB)
	if menuDefaultOS(t, da) != osid.Windows {
		t.Error("macA menu not switched to windows")
	}
	if menuDefaultOS(t, db) != osid.Linux {
		t.Error("macB menu affected by macA switch")
	}
	// one menu per MAC plus the default
	if got := len(s.MenuFiles()); got != 3 {
		t.Fatalf("menu files = %d, want 3 (%v)", got, s.MenuFiles())
	}
}

func TestPerMACMenuFileNaming(t *testing.T) {
	s := newPerMACService(t)
	mac := hardware.MACForIndex(3)
	s.RegisterNode(mac)
	found := false
	for _, f := range s.MenuFiles() {
		if strings.HasSuffix(f, mac.MenuFileName()) {
			found = true
		}
	}
	if !found {
		t.Fatalf("no menu named after MAC: %v", s.MenuFiles())
	}
}

func TestUnregisteredNodeFallsBackToDefault(t *testing.T) {
	s := newPerMACService(t)
	data, err := s.FetchMenu(hardware.MACForIndex(99))
	if err != nil {
		t.Fatal(err)
	}
	if menuDefaultOS(t, data) != osid.Linux {
		t.Fatal("default menu wrong")
	}
}

func TestFetchMenuDisabled(t *testing.T) {
	s := newFlagService(t)
	s.SetEnabled(false)
	if _, err := s.FetchMenu(hardware.MACForIndex(1)); err == nil {
		t.Fatal("FetchMenu succeeded while disabled")
	}
}

func TestSetFlagInvalid(t *testing.T) {
	s := newFlagService(t)
	if err := s.SetFlag(osid.None); err == nil {
		t.Fatal("SetFlag(None) succeeded")
	}
}

func TestSetNodeOSInvalid(t *testing.T) {
	s := newPerMACService(t)
	if err := s.SetNodeOS(hardware.MACForIndex(1), osid.None); err == nil {
		t.Fatal("SetNodeOS(None) succeeded")
	}
}

func TestFetchFile(t *testing.T) {
	s := newFlagService(t)
	if _, err := s.FetchFile(RomPath); err != nil {
		t.Fatal(err)
	}
	if _, err := s.FetchFile("/tftpboot/nope"); err == nil {
		t.Fatal("missing file fetch succeeded")
	}
	s.PutFile("/tftpboot/images/node.img", []byte("image"))
	data, err := s.FetchFile("/tftpboot/images/node.img")
	if err != nil || string(data) != "image" {
		t.Fatalf("PutFile/FetchFile = %q, %v", data, err)
	}
}

func TestStatsCount(t *testing.T) {
	s := newFlagService(t)
	mac := hardware.MACForIndex(1)
	s.OfferROM(mac)
	s.FetchMenu(mac)
	s.FetchMenu(mac)
	st := s.Stats()
	if st.DHCPOffers != 1 || st.TFTPFetches != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.MenuWrites == 0 {
		t.Fatal("MenuWrites not counted")
	}
}

func TestInitialOSWindows(t *testing.T) {
	s, err := NewService(Config{Mode: ModeFlag, InitialOS: osid.Windows})
	if err != nil {
		t.Fatal(err)
	}
	data, err := s.FetchMenu(hardware.MACForIndex(0))
	if err != nil {
		t.Fatal(err)
	}
	if menuDefaultOS(t, data) != osid.Windows {
		t.Fatal("InitialOS not honoured")
	}
}

func TestModeString(t *testing.T) {
	if ModeFlag.String() != "flag" || ModePerMAC.String() != "per-mac" {
		t.Fatal("mode strings wrong")
	}
}

func TestConcurrentAccess(t *testing.T) {
	// The live-TCP demo drives the service from connection goroutines;
	// exercise the mutex under the race detector's eye.
	s := newFlagService(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			mac := hardware.MACForIndex(i)
			for j := 0; j < 50; j++ {
				s.OfferROM(mac)
				if _, err := s.FetchMenu(mac); err != nil {
					t.Error(err)
					return
				}
				os := osid.Linux
				if j%2 == 0 {
					os = osid.Windows
				}
				if err := s.SetFlag(os); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if s.Stats().TFTPFetches != 8*50 {
		t.Fatalf("fetches = %d", s.Stats().TFTPFetches)
	}
}
