package winhpc

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"repro/internal/simtime"
)

// scratchRebuild throws away every piece of incremental scheduler
// state and recomputes it from the ground truth (the job map and the
// node table): the queued and running ledgers, the pending-demand and
// node census counters, and both segment trees. The equivalence test
// rebuilds before every scheduling pass on one of two twin schedulers;
// if the incremental state ever drifted from a from-scratch recompute,
// the twins' placement decisions would diverge.
func scratchRebuild(s *Scheduler) {
	for _, j := range s.queued {
		j.inQueue = false
	}
	s.queued = s.queued[:0]
	s.queuedDead, s.queuedHead, s.queuedN = 0, 0, 0
	s.queuedCores, s.queuedNodeUnits = 0, 0
	s.running = s.running[:0]
	queued := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		j := s.jobs[id]
		switch j.State {
		case JobQueued:
			queued = append(queued, j)
		case JobRunning:
			j.runIdx = len(s.running)
			s.running = append(s.running, j)
		}
	}
	sort.Slice(queued, func(i, k int) bool { return queueLess(queued[i], queued[k]) })
	for _, j := range queued {
		j.inQueue = true
		s.queued = append(s.queued, j)
		s.queuedN++
		if j.Unit == UnitNode {
			s.queuedNodeUnits += j.Count
		} else {
			s.queuedCores += j.Count
		}
	}
	s.allCores, s.coresUp = 0, 0
	s.onlineNodes, s.onlineCores, s.freeCores, s.idleNodes = 0, 0, 0, 0
	for _, name := range s.nodeOrder {
		n := s.nodes[name]
		s.allCores += n.Cores
		if n.state != NodeUnreachable {
			s.coresUp += n.Cores
		}
		if n.state == NodeOnline {
			s.onlineNodes++
			s.onlineCores += n.Cores
			s.freeCores += n.Cores - n.used
			if n.used == 0 {
				s.idleNodes++
			}
		}
	}
	s.rebuildTrees()
}

// winAction is one scripted step; the same script drives both twins.
type winAction struct {
	at   time.Duration
	kind int // 0 submit, 1 cancel, 2 node unreachable, 3 node online
	job  int // submission index for cancel
	node string
	spec JobSpec
}

// winScript generates a deterministic randomized workload: core- and
// node-unit jobs across all priority levels, cancellations, and node
// outages (which requeue rerunnable jobs through the priority-ordered
// revival path of the queue ledger).
func winScript(seed int64, nodes, jobs int) []winAction {
	rng := rand.New(rand.NewSource(seed))
	var script []winAction
	for i := 0; i < jobs; i++ {
		at := time.Duration(rng.Int63n(int64(6 * time.Hour)))
		spec := JobSpec{
			Name:     fmt.Sprintf("job%03d", i),
			Owner:    "eq",
			Runtime:  time.Duration(rng.Int63n(int64(2*time.Hour))) + 5*time.Minute,
			Rerun:    rng.Intn(4) != 0,
			Priority: Priority(rng.Intn(5) - 2),
		}
		if rng.Intn(3) == 0 {
			spec.Unit = UnitNode
			spec.Count = 1 + rng.Intn(2)
		} else {
			spec.Unit = UnitCore
			spec.Count = 1 + rng.Intn(8)
		}
		script = append(script, winAction{at: at, kind: 0, job: i, spec: spec})
		if rng.Intn(10) == 0 {
			script = append(script, winAction{at: at + time.Duration(rng.Int63n(int64(time.Hour))), kind: 1, job: i})
		}
	}
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("eqwin%02d", 1+rng.Intn(nodes))
		down := time.Duration(rng.Int63n(int64(4 * time.Hour)))
		script = append(script, winAction{at: down, kind: 2, node: name})
		script = append(script, winAction{at: down + time.Duration(rng.Int63n(int64(time.Hour))) + time.Minute, kind: 3, node: name})
	}
	return script
}

// runWinScript drives one scheduler through the script. When rebuild
// is set, every scheduling pass is preceded by a from-scratch state
// recompute.
func runWinScript(t *testing.T, script []winAction, nodes int, backfill, rebuild bool) *Scheduler {
	t.Helper()
	eng := simtime.NewEngine()
	s := NewScheduler(eng, "EQHEAD")
	s.Backfill = backfill
	if rebuild {
		var wrap func()
		wrap = func() {
			scratchRebuild(s)
			s.schedOverride = nil
			s.schedule()
			s.schedOverride = wrap
		}
		s.schedOverride = wrap
	}
	for i := 1; i <= nodes; i++ {
		if _, err := s.AddNode(fmt.Sprintf("eqwin%02d", i), 4, true); err != nil {
			t.Fatal(err)
		}
	}
	ids := make([]int, len(script))
	for _, a := range script {
		a := a
		eng.After(a.at, func() {
			switch a.kind {
			case 0:
				j, err := s.SubmitJob(a.spec)
				if err != nil {
					t.Errorf("submit %s: %v", a.spec.Name, err)
					return
				}
				ids[a.job] = j.ID
			case 1:
				_ = s.CancelJob(ids[a.job]) // may legitimately race completion
			case 2:
				_ = s.SetNodeOnline(a.node, false)
			case 3:
				_ = s.SetNodeOnline(a.node, true)
			}
		})
	}
	eng.Run()
	return s
}

// TestWinHPCIncrementalMatchesScratchRecompute runs the identical
// randomized workload on twin schedulers — one scheduling off its
// incremental ledgers and free-core profile, one rebuilding all of it
// from scratch before every pass — and requires identical outcomes:
// same start times, same allocations, same final states.
func TestWinHPCIncrementalMatchesScratchRecompute(t *testing.T) {
	for _, backfill := range []bool{false, true} {
		name := "fcfs"
		if backfill {
			name = "backfill"
		}
		t.Run(name, func(t *testing.T) {
			script := winScript(733, 12, 120)
			inc := runWinScript(t, script, 12, backfill, false)
			ref := runWinScript(t, script, 12, backfill, true)
			if len(inc.order) != len(ref.order) {
				t.Fatalf("job counts diverged: %d vs %d", len(inc.order), len(ref.order))
			}
			for _, id := range inc.order {
				a, b := inc.jobs[id], ref.jobs[id]
				if a.State != b.State || a.StartTime != b.StartTime || a.EndTime != b.EndTime {
					t.Fatalf("job %d diverged: incremental (%v start=%v end=%v) vs scratch (%v start=%v end=%v)",
						id, a.State, a.StartTime, a.EndTime, b.State, b.StartTime, b.EndTime)
				}
				if fmt.Sprint(a.Alloc) != fmt.Sprint(b.Alloc) {
					t.Fatalf("job %d allocation diverged:\n%v\nvs\n%v", id, a.Alloc, b.Alloc)
				}
			}
		})
	}
}
