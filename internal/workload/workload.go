// Package workload generates the job streams the experiments run:
// the application catalog of the paper's Table I, Poisson arrival
// mixes, bursty traces, and the MATLAB-MDCS genetic-algorithm case
// study of §IV-B. All generators are seeded and deterministic.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/osid"
)

// Platform is an application's OS support per Table I.
type Platform uint8

const (
	LinuxOnly Platform = iota
	WindowsOnly
	Both
)

// String renders the Table-I column value.
func (p Platform) String() string {
	switch p {
	case WindowsOnly:
		return "W"
	case Both:
		return "W&L"
	default:
		return "L"
	}
}

// App is one catalog entry.
type App struct {
	Name        string
	Description string
	Platform    Platform
	// Typical job shape on the Huddersfield campus cluster.
	TypicalNodes   int
	TypicalPPN     int
	TypicalRuntime time.Duration
}

// Catalog reproduces Table I: applications on the Huddersfield campus
// cluster with their OS requirement (W: Windows, L: Linux). Job shapes
// are this reproduction's calibration, not from the paper.
var Catalog = []App{
	{"Abaqus", "Finite Element Analysis", LinuxOnly, 1, 4, 2 * time.Hour},
	{"Amber", "Assisted Model Building with Energy Refinement aimed at biological systems", LinuxOnly, 2, 4, 6 * time.Hour},
	{"Backburner", "Rendering software for 3ds Max", WindowsOnly, 1, 4, 45 * time.Minute},
	{"Blender", "Open Source 3D Modeller and Renderer", LinuxOnly, 1, 4, 30 * time.Minute},
	{"CASTEP", "CAmbridge Sequential Total Energy Package", LinuxOnly, 2, 4, 4 * time.Hour},
	{"COMSOL", "Multiphysics Modelling, Finite Element Analysis, Engineering Simulation Software", Both, 1, 4, 90 * time.Minute},
	{"DL_POLY", "General purpose classical molecular dynamics (MD) simulation software", LinuxOnly, 4, 4, 8 * time.Hour},
	{"ANSYS FLUENT", "Computational Fluid Dynamics (CFD)", Both, 2, 4, 3 * time.Hour},
	{"GAMESS-UK", "Molecular QM code", LinuxOnly, 1, 4, 5 * time.Hour},
	{"GULP", "General Utility Lattice Program", LinuxOnly, 1, 2, time.Hour},
	{"LAMMPS", "Large-scale Atomic/Molecular Massively Parallel Simulator", LinuxOnly, 4, 4, 6 * time.Hour},
	{"MATLAB", "Numerical Computing Environment", Both, 1, 4, time.Hour},
	{"METADISE", "Minimum Energy Techniques Applied to Defects, Interfaces and Surface Energies", LinuxOnly, 1, 1, 40 * time.Minute},
	{"NWChem", "Multi-purpose QM and MM code", LinuxOnly, 2, 4, 4 * time.Hour},
	{"Opera", "Finite Element Analysis for Electromagnetics", WindowsOnly, 1, 4, 2 * time.Hour},
}

// AppByName finds a catalog entry.
func AppByName(name string) (App, bool) {
	for _, a := range Catalog {
		if a.Name == name {
			return a, true
		}
	}
	return App{}, false
}

// CatalogByPlatform filters the catalog.
func CatalogByPlatform(p Platform) []App {
	var out []App
	for _, a := range Catalog {
		if a.Platform == p {
			out = append(out, a)
		}
	}
	return out
}

// Job is one submission in a trace.
type Job struct {
	At      time.Duration // submission time
	App     string
	OS      osid.OS // resolved side (Both apps are pinned by the generator)
	Owner   string
	Nodes   int
	PPN     int
	Runtime time.Duration
}

// CPUs returns the job's processor demand.
func (j Job) CPUs() int { return j.Nodes * j.PPN }

// Validate checks a job for internal consistency.
func (j Job) Validate() error {
	if !j.OS.Valid() {
		return fmt.Errorf("workload: job %q has no OS", j.App)
	}
	if j.Nodes <= 0 || j.PPN <= 0 {
		return fmt.Errorf("workload: job %q has bad shape %d:%d", j.App, j.Nodes, j.PPN)
	}
	if j.Runtime <= 0 {
		return fmt.Errorf("workload: job %q has no runtime", j.App)
	}
	if j.At < 0 {
		return fmt.Errorf("workload: job %q submitted before time zero", j.App)
	}
	return nil
}

// Trace is an ordered job stream.
type Trace []Job

// Sort orders the trace by submission time (stable on ties).
func (t Trace) Sort() {
	sort.SliceStable(t, func(i, j int) bool { return t[i].At < t[j].At })
}

// Validate checks every job and the time ordering.
func (t Trace) Validate() error {
	for i, j := range t {
		if err := j.Validate(); err != nil {
			return fmt.Errorf("job %d: %w", i, err)
		}
		if i > 0 && j.At < t[i-1].At {
			return fmt.Errorf("workload: trace not sorted at %d", i)
		}
	}
	return nil
}

// Span returns the time of the last submission.
func (t Trace) Span() time.Duration {
	if len(t) == 0 {
		return 0
	}
	return t[len(t)-1].At
}

// CountByOS tallies jobs per side.
func (t Trace) CountByOS() map[osid.OS]int {
	out := map[osid.OS]int{}
	for _, j := range t {
		out[j.OS]++
	}
	return out
}

// PoissonConfig parameterises the mixed campus workload.
type PoissonConfig struct {
	Seed        int64
	Duration    time.Duration // submission window
	JobsPerHour float64
	WindowsFrac float64 // fraction of jobs routed to Windows (0..1)
	// RuntimeScale multiplies catalog runtimes (1.0 = as calibrated).
	RuntimeScale float64
	// MaxNodes caps job width so traces fit small clusters.
	MaxNodes int
}

// Poisson draws an arrival-process trace from the Table-I catalog.
// Windows-only apps are only used for the Windows share, Linux-only
// apps for the Linux share, and W&L apps fill both.
func Poisson(cfg PoissonConfig) Trace {
	if cfg.JobsPerHour <= 0 || cfg.Duration <= 0 {
		return nil
	}
	if cfg.RuntimeScale <= 0 {
		cfg.RuntimeScale = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var trace Trace
	winApps := append(CatalogByPlatform(WindowsOnly), CatalogByPlatform(Both)...)
	linApps := append(CatalogByPlatform(LinuxOnly), CatalogByPlatform(Both)...)

	meanGap := time.Duration(float64(time.Hour) / cfg.JobsPerHour)
	now := time.Duration(0)
	seq := 0
	for {
		gap := time.Duration(rng.ExpFloat64() * float64(meanGap))
		now += gap
		if now > cfg.Duration {
			break
		}
		seq++
		var app App
		var os osid.OS
		if rng.Float64() < cfg.WindowsFrac {
			app = winApps[rng.Intn(len(winApps))]
			os = osid.Windows
		} else {
			app = linApps[rng.Intn(len(linApps))]
			os = osid.Linux
		}
		nodes := app.TypicalNodes
		if cfg.MaxNodes > 0 && nodes > cfg.MaxNodes {
			nodes = cfg.MaxNodes
		}
		// Log-normal-ish runtime scatter around the typical value.
		scatter := math.Exp(0.5 * rng.NormFloat64())
		runtime := time.Duration(float64(app.TypicalRuntime) * scatter * cfg.RuntimeScale)
		if runtime < time.Minute {
			runtime = time.Minute
		}
		trace = append(trace, Job{
			At:      now,
			App:     app.Name,
			OS:      os,
			Owner:   fmt.Sprintf("user%02d", rng.Intn(12)+1),
			Nodes:   nodes,
			PPN:     app.TypicalPPN,
			Runtime: runtime,
		})
	}
	trace.Sort()
	return trace
}

// BurstConfig parameterises a demand burst on one side.
type BurstConfig struct {
	Start   time.Duration
	Jobs    int
	Gap     time.Duration // spacing between burst submissions
	App     string
	OS      osid.OS
	Nodes   int
	PPN     int
	Runtime time.Duration
	Owner   string
}

// Burst generates a rapid-fire run of similar jobs, e.g. a render
// farm batch or a parameter sweep.
func Burst(cfg BurstConfig) Trace {
	var trace Trace
	for i := 0; i < cfg.Jobs; i++ {
		trace = append(trace, Job{
			At:      cfg.Start + time.Duration(i)*cfg.Gap,
			App:     cfg.App,
			OS:      cfg.OS,
			Owner:   cfg.Owner,
			Nodes:   cfg.Nodes,
			PPN:     cfg.PPN,
			Runtime: cfg.Runtime,
		})
	}
	return trace
}

// MatlabGACase reproduces the §IV-B case study: a background stream of
// Linux molecular-dynamics work plus a burst of Windows MATLAB-MDCS
// genetic-algorithm jobs ("optimisation of Genetic Algorithms using
// the Distributed and Parallel MATLAB"). As the GA burst arrives the
// hybrid must shift nodes to Windows, then give them back.
func MatlabGACase(seed int64) Trace {
	background := Poisson(PoissonConfig{
		Seed:        seed,
		Duration:    12 * time.Hour,
		JobsPerHour: 3,
		WindowsFrac: 0, // pure Linux background
		MaxNodes:    4,
	})
	ga := Burst(BurstConfig{
		Start:   3 * time.Hour,
		Jobs:    10,
		Gap:     2 * time.Minute,
		App:     "MATLAB",
		OS:      osid.Windows,
		Nodes:   2,
		PPN:     4,
		Runtime: 40 * time.Minute,
		Owner:   "dhaupt",
	})
	trace := append(background, ga...)
	trace.Sort()
	return trace
}

// PhasedConfig parameterises PhasedWideMix.
type PhasedConfig struct {
	Seed        int64
	Phases      int           // total demand phases (default 8)
	WindowsFrac float64       // fraction of phases that are Windows-heavy
	PhaseGap    time.Duration // spacing between phase starts (default 3h)
	// WideNodes is the width of the big MPI-style job in each phase
	// (default 10 — wider than one half of a 16-node split).
	WideNodes int
	PPN       int // default 4
}

// PhasedWideMix generates the demand pattern the hybrid exists for:
// alternating OS-heavy phases, each mixing narrow jobs with one wide
// job that exceeds a static half-cluster. On a fixed split the wide
// jobs strand (head-of-line blocking forever); the hybrid's stuck
// detector fires and borrows the other side's nodes. The Windows
// fraction steers how many phases land on each OS.
func PhasedWideMix(cfg PhasedConfig) Trace {
	if cfg.Phases <= 0 {
		cfg.Phases = 8
	}
	if cfg.PhaseGap <= 0 {
		cfg.PhaseGap = 3 * time.Hour
	}
	if cfg.WideNodes <= 0 {
		cfg.WideNodes = 10
	}
	if cfg.PPN <= 0 {
		cfg.PPN = 4
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	winPhases := int(math.Round(cfg.WindowsFrac * float64(cfg.Phases)))
	var trace Trace
	for p := 0; p < cfg.Phases; p++ {
		os := osid.Linux
		app := "LAMMPS"
		narrowApp := "GULP"
		if p < winPhases {
			os = osid.Windows
			app = "ANSYS FLUENT"
			narrowApp = "Backburner"
		}
		start := time.Duration(p) * cfg.PhaseGap
		// One wide job leading the phase...
		trace = append(trace, Job{
			At: start, App: app, OS: os, Owner: fmt.Sprintf("phase%02d", p),
			Nodes: cfg.WideNodes, PPN: cfg.PPN,
			Runtime: time.Hour + time.Duration(rng.Intn(30))*time.Minute,
		})
		// ...plus narrow fill behind it.
		for j := 0; j < 3; j++ {
			trace = append(trace, Job{
				At: start + time.Duration(j+1)*2*time.Minute, App: narrowApp, OS: os,
				Owner: fmt.Sprintf("phase%02d", p), Nodes: 2, PPN: cfg.PPN,
				Runtime: 30*time.Minute + time.Duration(rng.Intn(20))*time.Minute,
			})
		}
	}
	trace.Sort()
	return trace
}

// Merge combines traces into one ordered stream.
func Merge(traces ...Trace) Trace {
	var out Trace
	for _, t := range traces {
		out = append(out, t...)
	}
	out.Sort()
	return out
}
