// Package osid defines the operating-system identity shared by every
// layer of the hybrid cluster: disks are formatted for an OS, nodes
// boot an OS, jobs require an OS, and the dual-boot controller moves
// nodes between the two sides.
package osid

import (
	"fmt"
	"strings"
)

// OS identifies one of the two bootable operating systems of the
// bi-stable hybrid cluster, or the absence of one.
type OS uint8

const (
	// None means no OS: an unbooted node or an unformatted partition.
	None OS = iota
	// Linux is the CentOS + OSCAR side of the hybrid.
	Linux
	// Windows is the Windows HPC Server 2008 R2 side.
	Windows
)

// String returns the lower-case name used throughout configuration
// files and logs ("linux", "windows", "none").
func (o OS) String() string {
	switch o {
	case Linux:
		return "linux"
	case Windows:
		return "windows"
	default:
		return "none"
	}
}

// Other returns the opposite side of the hybrid. Other(None) is None.
func (o OS) Other() OS {
	switch o {
	case Linux:
		return Windows
	case Windows:
		return Linux
	default:
		return None
	}
}

// Valid reports whether o is Linux or Windows.
func (o OS) Valid() bool { return o == Linux || o == Windows }

// Parse converts a name to an OS. It accepts the spellings used in the
// paper's artifacts: "linux"/"l", "windows"/"win"/"w", case-insensitive.
func Parse(s string) (OS, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "linux", "l", "lin":
		return Linux, nil
	case "windows", "win", "w":
		return Windows, nil
	case "none", "":
		return None, nil
	default:
		return None, fmt.Errorf("osid: unknown OS %q", s)
	}
}

// FromTitleSuffix infers the OS from a GRUB menu entry title using the
// paper's naming convention, where titles end in "-linux" or
// "-windows" (e.g. "CentOS-5.4_Oscar-5b2-linux",
// "Win_Server_2K8_R2-windows"). It returns None when no suffix matches.
func FromTitleSuffix(title string) OS {
	t := strings.ToLower(strings.TrimSpace(title))
	switch {
	case strings.HasSuffix(t, "-linux"):
		return Linux
	case strings.HasSuffix(t, "-windows"):
		return Windows
	default:
		return None
	}
}
