package controller

import (
	"testing"
	"time"

	"repro/internal/osid"
)

func act(at time.Duration, donor, target osid.OS) DecisionRecord {
	return DecisionRecord{At: at, Decision: Decision{Act: true, Donor: donor, Target: target, Nodes: 1}}
}

func noop(at time.Duration) DecisionRecord {
	return DecisionRecord{At: at, Decision: Decision{Reason: "idle"}}
}

func TestThrashCountsReversalsInsideWindow(t *testing.T) {
	hist := []DecisionRecord{
		act(0, osid.Linux, osid.Windows),
		noop(10 * time.Minute),
		act(20*time.Minute, osid.Windows, osid.Linux), // reversal at 20m: thrash
		act(40*time.Minute, osid.Linux, osid.Windows), // reversal at +20m: thrash
	}
	if got := ThrashCount(hist, 30*time.Minute); got != 2 {
		t.Fatalf("thrash = %d, want 2", got)
	}
}

func TestThrashIgnoresSlowReversals(t *testing.T) {
	hist := []DecisionRecord{
		act(0, osid.Linux, osid.Windows),
		act(31*time.Minute, osid.Windows, osid.Linux), // outside the 30m window
	}
	if got := ThrashCount(hist, 30*time.Minute); got != 0 {
		t.Fatalf("thrash = %d, want 0", got)
	}
	// A reversal at exactly one window is NOT thrash — it mirrors the
	// dwell rule, which permits action at exactly t+MinDwell, so a
	// dwell-honouring policy can never score.
	hist[1].At = 30 * time.Minute
	if got := ThrashCount(hist, 30*time.Minute); got != 0 {
		t.Fatalf("boundary thrash = %d, want 0", got)
	}
	hist[1].At = 30*time.Minute - time.Second
	if got := ThrashCount(hist, 30*time.Minute); got != 1 {
		t.Fatalf("inside-window thrash = %d, want 1", got)
	}
}

func TestThrashIgnoresSameDirectionRuns(t *testing.T) {
	hist := []DecisionRecord{
		act(0, osid.Linux, osid.Windows),
		act(5*time.Minute, osid.Linux, osid.Windows),
		act(10*time.Minute, osid.Linux, osid.Windows),
	}
	if got := ThrashCount(hist, 30*time.Minute); got != 0 {
		t.Fatalf("thrash = %d, want 0", got)
	}
}

func TestThrashZeroWindowDefaultsToDwell(t *testing.T) {
	hist := []DecisionRecord{
		act(0, osid.Linux, osid.Windows),
		act(DefaultDwell-time.Minute, osid.Windows, osid.Linux),
	}
	if got := ThrashCount(hist, 0); got != 1 {
		t.Fatalf("thrash = %d, want 1 (default window %v)", got, DefaultDwell)
	}
}

func TestManagerThrashOnOscillatingGateway(t *testing.T) {
	thrStats, thrHist := runOscillating(t, Threshold{})
	if thrStats.Switches == 0 {
		t.Fatal("threshold never switched")
	}
	// The oscillating gateway swings demand every 30 minutes, so the
	// eager threshold rule's about-faces land inside the dwell window.
	if got := ThrashCount(thrHist, DefaultDwell); got == 0 {
		t.Fatal("threshold thrash = 0 on the oscillating trace")
	}
	_, hysHist := runOscillating(t, &Hysteresis{})
	if got := ThrashCount(hysHist, DefaultDwell); got != 0 {
		t.Fatalf("hysteresis thrash = %d, want 0 (dwell blocks fast reversals)", got)
	}
}
