// Package core is the dualboot-oscar middleware façade: it assembles
// a hybrid cluster, drives a workload through it and digests the
// outcome. The experiments in bench_test.go, the qsim CLI and the
// examples all run through this package; the repository root package
// re-exports it as the public API.
package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/bootmgr"
	"repro/internal/cluster"
	"repro/internal/controller"
	"repro/internal/grid"
	"repro/internal/metrics"
	"repro/internal/osid"
	"repro/internal/workload"
)

// Topology describes the fabric a scenario runs on. With no members
// it is a single cluster (Scenario.Cluster, the classic path); with
// members the run assembles a campus grid on one shared clock and the
// trace flows through the routing policy.
type Topology struct {
	// Routing selects the campus router's placement policy.
	Routing grid.RoutingPolicy
	// Members configures the grid's clusters; empty means single.
	Members []grid.MemberSpec
}

// IsGrid reports whether the topology is a multi-cluster fabric.
func (t Topology) IsGrid() bool { return len(t.Members) > 0 }

// Scenario is one configured run: a cluster organisation (or a grid
// of them) plus a job trace.
type Scenario struct {
	Name    string
	Cluster cluster.Config
	Trace   workload.Trace
	// Horizon bounds virtual time (default: trace span + 48h).
	Horizon time.Duration
	// SampleInterval, when positive, records a node-count time series
	// (single-cluster topologies only).
	SampleInterval time.Duration
	// Topology, when it has members, runs the trace across a campus
	// grid instead of Scenario.Cluster.
	Topology Topology
	// SchedPolicy selects both head schedulers' queue discipline for
	// the whole run — a treatment axis applied uniformly to
	// Scenario.Cluster and to every topology member. The zero value
	// (fcfs) leaves the configs' own setting untouched, so a
	// backfill cluster.Config still runs backfill.
	SchedPolicy cluster.SchedPolicy
	// Latency overrides every cluster's boot-latency model — a
	// treatment axis applied uniformly to Scenario.Cluster and to
	// every topology member (the sweep switchlat axis acts through
	// it). Nil keeps each config's own model. The model is read-only
	// during a run, so members may share the pointer.
	Latency *bootmgr.LatencyModel
}

// MemberResult is one grid member's share of a topology run.
type MemberResult struct {
	Name        string
	Mode        cluster.Mode
	Routed      int // jobs the campus router placed here
	BrokenNodes int
	Summary     metrics.Summary
}

// Result is a completed scenario. For grid topologies Summary is the
// fabric-wide aggregate and Members holds the per-member digests.
type Result struct {
	Name           string
	Mode           cluster.Mode
	Summary        metrics.Summary
	Series         []cluster.Snapshot
	ControlActions int
	Controller     controller.Stats
	// Thrash counts switch decisions the controller reversed within
	// one dwell window (controller.ThrashCount) — the anti-flap number
	// the policy experiments rank on. Grid runs sum their members.
	Thrash      int
	BrokenNodes int
	Events      []cluster.Event
	AppStats    []metrics.AppStat
	// Members carries per-member summaries for grid topologies.
	Members []MemberResult
	// Dropped counts jobs no grid member could serve.
	Dropped int
	// EventsRun is the engine's callback count — the run's wakeups.
	EventsRun uint64
}

// Run executes a scenario from time zero.
func Run(sc Scenario) (Result, error) {
	if err := sc.Trace.Validate(); err != nil {
		return Result{}, fmt.Errorf("core: %w", err)
	}
	horizon := sc.Horizon
	if horizon <= 0 {
		horizon = sc.Trace.Span() + 48*time.Hour
	}
	if sc.Topology.IsGrid() {
		return runGrid(sc, horizon)
	}
	if sc.SchedPolicy != cluster.SchedFCFS {
		sc.Cluster.SchedPolicy = sc.SchedPolicy
	}
	if sc.Latency != nil {
		sc.Cluster.Latency = sc.Latency
	}
	c, err := cluster.New(sc.Cluster)
	if err != nil {
		return Result{}, err
	}
	res := Result{Name: sc.Name, Mode: c.Config().Mode}
	if sc.SampleInterval > 0 {
		series, sum, err := c.SampleSeries(sc.Trace, sc.SampleInterval, horizon)
		if err != nil {
			return Result{}, err
		}
		res.Series = series
		res.Summary = sum
	} else {
		sum, err := c.RunTrace(sc.Trace, horizon)
		if err != nil {
			return Result{}, err
		}
		res.Summary = sum
	}
	res.ControlActions = c.ControlActions()
	res.BrokenNodes = c.BrokenCount()
	res.Events = c.Events()
	res.AppStats = c.Rec.AppStats()
	res.EventsRun = c.Eng.EventsRun()
	if c.Mgr != nil {
		res.Controller = c.Mgr.Stats()
		res.Thrash = c.Mgr.Thrash()
	}
	return res, nil
}

// runGrid executes a scenario across a campus fabric: every member on
// one clock, the trace flowing through the routing policy, the whole
// grid drained by the shared quiescence driver.
func runGrid(sc Scenario, horizon time.Duration) (Result, error) {
	if sc.SampleInterval > 0 {
		return Result{}, fmt.Errorf("core: time-series sampling is not supported on grid topologies")
	}
	members := sc.Topology.Members
	if sc.SchedPolicy != cluster.SchedFCFS || sc.Latency != nil {
		// Copy before overriding: the caller's member specs must not be
		// written through.
		members = append([]grid.MemberSpec(nil), members...)
		for i := range members {
			if sc.SchedPolicy != cluster.SchedFCFS {
				members[i].Config.SchedPolicy = sc.SchedPolicy
			}
			if sc.Latency != nil {
				members[i].Config.Latency = sc.Latency
			}
		}
	}
	g, err := grid.New(sc.Topology.Routing, members)
	if err != nil {
		return Result{}, err
	}
	if err := g.ScheduleTrace(sc.Trace); err != nil {
		return Result{}, err
	}
	g.RunUntilDrained(horizon)

	res := Result{Name: sc.Name, Mode: sc.Cluster.Mode, Dropped: g.Dropped()}
	routed := g.RoutedCounts()
	var sums []metrics.Summary
	for _, m := range g.Members() {
		s := m.Cluster.Summary()
		sums = append(sums, s)
		res.Members = append(res.Members, MemberResult{
			Name:        m.Name,
			Mode:        m.Cluster.Config().Mode,
			Routed:      routed[m.Name],
			BrokenNodes: m.Cluster.BrokenCount(),
			Summary:     s,
		})
		res.ControlActions += m.Cluster.ControlActions()
		res.BrokenNodes += m.Cluster.BrokenCount()
		if m.Cluster.Mgr != nil {
			res.Thrash += m.Cluster.Mgr.Thrash()
		}
		for _, e := range m.Cluster.Events() {
			res.Events = append(res.Events, cluster.Event{At: e.At, What: m.Name + ": " + e.What})
		}
	}
	sort.SliceStable(res.Events, func(i, j int) bool { return res.Events[i].At < res.Events[j].At })
	res.Summary = metrics.Aggregate(sums)
	res.EventsRun = g.Eng.EventsRun()
	return res, nil
}

// CompareModes runs the same trace through several cluster
// organisations (fresh cluster per mode, identical seed) and returns
// results in mode order — the harness behind the bi-stable vs
// mono-stable vs static comparisons.
func CompareModes(modes []cluster.Mode, base cluster.Config, trace workload.Trace, horizon time.Duration) ([]Result, error) {
	var out []Result
	for _, m := range modes {
		cfg := base
		cfg.Mode = m
		r, err := Run(Scenario{
			Name:    m.String(),
			Cluster: cfg,
			Trace:   trace,
			Horizon: horizon,
		})
		if err != nil {
			return nil, fmt.Errorf("core: mode %v: %w", m, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// ResultRow renders a result as a table row for the experiment
// harness: mode, utilisation, per-OS waits, switches, completion.
func ResultRow(r Result) []string {
	s := r.Summary
	completed := s.JobsCompleted[osid.Linux] + s.JobsCompleted[osid.Windows]
	submitted := s.JobsSubmitted[osid.Linux] + s.JobsSubmitted[osid.Windows]
	return []string{
		r.Name,
		metrics.Pct(s.Utilisation),
		metrics.Dur(s.MeanWait[osid.Linux]),
		metrics.Dur(s.MeanWait[osid.Windows]),
		fmt.Sprintf("%d", s.Switches),
		metrics.Dur(s.MeanSwitch),
		fmt.Sprintf("%d/%d", completed, submitted),
	}
}

// ResultHeader matches ResultRow.
func ResultHeader() []string {
	return []string{"scenario", "util", "wait(L)", "wait(W)", "switches", "mean-switch", "done/subm"}
}

// ComparisonTable renders results for display.
func ComparisonTable(results []Result) string {
	rows := make([][]string, len(results))
	for i, r := range results {
		rows[i] = ResultRow(r)
	}
	return metrics.Table(ResultHeader(), rows)
}
