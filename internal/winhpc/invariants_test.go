package winhpc

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/simtime"
)

// Property suite mirroring the PBS invariants on the Windows side.

func propScheduler() (*simtime.Engine, *Scheduler) {
	eng := simtime.NewEngine()
	s := NewScheduler(eng, "PROP")
	for i := 1; i <= 4; i++ {
		s.AddNode(nodeName(i), 4, true)
	}
	return eng, s
}

// TestQuickCoresNeverOversubscribed: free cores never go negative and
// used never exceeds capacity, under random core/node jobs with random
// priorities.
func TestQuickCoresNeverOversubscribed(t *testing.T) {
	f := func(raw []byte) bool {
		eng, s := propScheduler()
		ok := true
		s.OnJobStart = func(*Job) {
			for _, n := range s.Nodes() {
				if n.UsedCores() > n.Cores || n.FreeCores() < 0 {
					ok = false
				}
			}
		}
		for i, b := range raw {
			if i >= 24 {
				break
			}
			unit := UnitCore
			count := int(b%8) + 1
			if b%3 == 0 {
				unit = UnitNode
				count = int(b%4) + 1
			}
			s.SubmitJob(JobSpec{
				Name: "p", Unit: unit, Count: count,
				Priority: Priority(int8(b%5) - 2),
				Runtime:  time.Duration(b%40+1) * time.Minute,
			})
		}
		eng.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCoresReleasedAfterDrain: all cores free once the engine
// drains, including through cancellations and node bounces.
func TestQuickCoresReleasedAfterDrain(t *testing.T) {
	f := func(raw []byte) bool {
		eng, s := propScheduler()
		for i, b := range raw {
			if i >= 20 {
				break
			}
			j, err := s.SubmitJob(JobSpec{
				Name: "p", Unit: UnitCore, Count: int(b%8) + 1,
				Runtime: time.Duration(b%60+1) * time.Minute,
			})
			if err == nil && b%11 == 0 {
				s.CancelJob(j.ID)
			}
			if b%13 == 0 {
				name := nodeName(int(b%4) + 1)
				s.SetNodeOnline(name, false)
				s.SetNodeOnline(name, true)
			}
		}
		eng.Run()
		for _, n := range s.Nodes() {
			if n.UsedCores() != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTerminalStatesStable: once a job reaches a terminal state
// it never runs again.
func TestQuickTerminalStatesStable(t *testing.T) {
	f := func(raw []byte) bool {
		eng, s := propScheduler()
		terminal := map[int]JobState{}
		ok := true
		s.OnJobEnd = func(j *Job) {
			if prev, seen := terminal[j.ID]; seen && prev != j.State {
				ok = false
			}
			terminal[j.ID] = j.State
		}
		s.OnJobStart = func(j *Job) {
			if _, seen := terminal[j.ID]; seen {
				ok = false // resurrection
			}
		}
		for i, b := range raw {
			if i >= 16 {
				break
			}
			j, err := s.SubmitJob(JobSpec{Name: "p", Unit: UnitNode, Count: int(b%2) + 1,
				Runtime: time.Duration(b%30+1) * time.Minute})
			if err == nil && b%7 == 0 {
				s.CancelJob(j.ID)
			}
		}
		eng.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
