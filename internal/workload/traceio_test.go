package workload

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/osid"
)

func TestDiurnalValidAndDeterministic(t *testing.T) {
	cfg := DiurnalConfig{Seed: 5, Days: 3, PeakPerHour: 8, WindowsFrac: 0.3, MaxNodes: 4}
	a := Diurnal(cfg)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 {
		t.Fatal("empty trace")
	}
	b := Diurnal(cfg)
	if len(a) != len(b) {
		t.Fatal("not deterministic")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("job %d differs", i)
		}
	}
}

func TestDiurnalDayNightShape(t *testing.T) {
	trace := Diurnal(DiurnalConfig{Seed: 9, Days: 20, PeakPerHour: 10, WindowsFrac: 0.3})
	day, night := 0, 0
	for _, j := range trace {
		hour := float64(j.At%(24*time.Hour)) / float64(time.Hour)
		switch {
		case hour >= 9 && hour < 17:
			day++
		case hour >= 21 || hour < 7:
			night++
		}
	}
	// Day window (8h) at full rate vs night window (10h) at 15%:
	// expect day >> night.
	if day < 3*night {
		t.Fatalf("day=%d night=%d, no diurnal shape", day, night)
	}
}

func TestDiurnalFactorBounds(t *testing.T) {
	for h := 0; h < 24; h++ {
		f := diurnalFactor(time.Duration(h)*time.Hour, 0.15)
		if f < 0.149 || f > 1.001 {
			t.Fatalf("factor(%dh) = %v out of range", h, f)
		}
	}
	if diurnalFactor(12*time.Hour, 0.15) != 1 {
		t.Fatal("noon not at peak")
	}
	if diurnalFactor(2*time.Hour, 0.15) != 0.15 {
		t.Fatal("2am not at night rate")
	}
	// Shoulders are monotone.
	if diurnalFactor(8*time.Hour, 0.15) <= diurnalFactor(7*time.Hour, 0.15) {
		t.Fatal("morning ramp not rising")
	}
	if diurnalFactor(19*time.Hour, 0.15) >= diurnalFactor(17*time.Hour, 0.15) {
		t.Fatal("evening decay not falling")
	}
}

func TestTraceCSVRoundTrip(t *testing.T) {
	orig := Poisson(PoissonConfig{Seed: 2, Duration: 10 * time.Hour, JobsPerHour: 5, WindowsFrac: 0.4})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(orig) {
		t.Fatalf("len %d != %d", len(back), len(orig))
	}
	for i := range orig {
		// At and Runtime round to whole seconds in CSV.
		if back[i].App != orig[i].App || back[i].OS != orig[i].OS ||
			back[i].Nodes != orig[i].Nodes || back[i].PPN != orig[i].PPN ||
			back[i].Owner != orig[i].Owner {
			t.Fatalf("job %d: %+v != %+v", i, back[i], orig[i])
		}
		if d := back[i].At - orig[i].At; d < -time.Second || d > time.Second {
			t.Fatalf("job %d At drift %v", i, d)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"wrong,header\n1,2\n",
		"at_sec,app,os,owner,nodes,ppn,runtime_sec\nx,a,linux,u,1,1,60\n",
		"at_sec,app,os,owner,nodes,ppn,runtime_sec\n0,a,mars,u,1,1,60\n",
		"at_sec,app,os,owner,nodes,ppn,runtime_sec\n0,a,linux,u,0,1,60\n",
		"at_sec,app,os,owner,nodes,ppn,runtime_sec\n0,a,linux,u,1,1,0\n",
	}
	for _, src := range cases {
		if _, err := ReadCSV(strings.NewReader(src)); err == nil {
			t.Errorf("ReadCSV(%q) succeeded", src)
		}
	}
}

func TestReadCSVHandWritten(t *testing.T) {
	src := `at_sec,app,os,owner,nodes,ppn,runtime_sec
3600,DL_POLY,linux,alice,2,4,7200
0,Backburner,windows,bob,1,4,1800
`
	trace, err := ReadCSV(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != 2 {
		t.Fatalf("jobs = %d", len(trace))
	}
	// Sorted on read.
	if trace[0].App != "Backburner" || trace[0].OS != osid.Windows {
		t.Fatalf("first = %+v", trace[0])
	}
	if trace[1].At != time.Hour || trace[1].Runtime != 2*time.Hour {
		t.Fatalf("second = %+v", trace[1])
	}
}
