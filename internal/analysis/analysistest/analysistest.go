// Package analysistest runs simlint analyzers over fixture packages
// and checks their findings against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest on the standard library
// only.
//
// A fixture lives under <testdata>/src/<pkg>/*.go. Each expected
// finding is declared next to the offending code:
//
//	_ = time.Now() // want `time\.Now reads the wall clock`
//
// A want comment holds one Go string literal (quoted or backquoted)
// per expected diagnostic on that line; each is a regular expression
// matched against the diagnostic message. Lines without a want
// comment must produce no diagnostics — which is how fixtures also
// prove //simlint:allow suppression and clean files: a banned call
// annotated with a directive carries no want, so the test fails
// unless suppression removes the finding.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// Run applies the analyzer to each fixture package under
// dir/src/<pkg> and reports mismatches between its diagnostics and
// the fixtures' want comments. Directive suppression is applied
// exactly as the simlint driver applies it.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		t.Run(pkg, func(t *testing.T) {
			t.Helper()
			runPackage(t, filepath.Join(dir, "src", pkg), a)
		})
	}
}

func runPackage(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	cp, err := loadFixture(dir)
	if err != nil {
		t.Fatal(err)
	}
	diags, malformed, err := analysis.RunAnalyzer(a, cp)
	if err != nil {
		t.Fatal(err)
	}
	diags = append(diags, malformed...)

	got := map[lineKey][]string{}
	for _, d := range diags {
		pos := cp.Fset.Position(d.Pos)
		k := lineKey{pos.Filename, pos.Line}
		got[k] = append(got[k], d.Message)
	}
	want, err := expectations(cp)
	if err != nil {
		t.Fatal(err)
	}

	for _, k := range sortedKeys(want) {
		patterns := want[k]
		messages := got[k]
		for _, pat := range patterns {
			re, err := regexp.Compile(pat)
			if err != nil {
				t.Fatalf("%s:%d: bad want pattern %q: %v", k.file, k.line, pat, err)
			}
			idx := -1
			for i, m := range messages {
				if re.MatchString(m) {
					idx = i
					break
				}
			}
			if idx < 0 {
				t.Errorf("%s:%d: no diagnostic matching %q (got %q)", k.file, k.line, pat, messages)
				continue
			}
			messages = append(messages[:idx], messages[idx+1:]...)
		}
		if len(messages) > 0 {
			t.Errorf("%s:%d: unexpected diagnostics beyond want comments: %q", k.file, k.line, messages)
		}
		delete(got, k)
	}
	for _, k := range sortedKeys(got) {
		t.Errorf("%s:%d: unexpected diagnostics (no want comment): %q", k.file, k.line, got[k])
	}
}

// sortedKeys orders line keys by (file, line) so harness output is
// deterministic — the same discipline the maporder analyzer enforces.
func sortedKeys(m map[lineKey][]string) []lineKey {
	keys := make([]lineKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	return keys
}

// loadFixture parses and type-checks one fixture directory, resolving
// its (standard library) imports from build-cache export data.
func loadFixture(dir string) (*analysis.CheckedPackage, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	cp := &analysis.CheckedPackage{PkgPath: dir, Fset: fset, Sources: map[string][]byte{}}
	importSet := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		filename := filepath.Join(dir, e.Name())
		src, err := os.ReadFile(filename)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(fset, filename, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		cp.Sources[filename] = src
		cp.Files = append(cp.Files, f)
		for _, imp := range f.Imports {
			if path, err := strconv.Unquote(imp.Path.Value); err == nil {
				importSet[path] = true
			}
		}
	}
	if len(cp.Files) == 0 {
		return nil, fmt.Errorf("no fixture files in %s", dir)
	}
	var imports []string
	for path := range importSet {
		imports = append(imports, path)
	}
	sort.Strings(imports) // deterministic go list argument order
	imp, err := analysis.NewImporter(fset, imports...)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp, FakeImportC: true}
	pkg, err := conf.Check(dir, fset, cp.Files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking fixture %s: %v", dir, err)
	}
	cp.Pkg = pkg
	cp.Info = info
	return cp, nil
}

// lineKey addresses one fixture source line.
type lineKey struct {
	file string
	line int
}

// expectations collects the want comments of every fixture file,
// keyed by (file, line).
func expectations(cp *analysis.CheckedPackage) (map[lineKey][]string, error) {
	want := map[lineKey][]string{}
	for _, f := range cp.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := cp.Fset.Position(c.Pos())
				patterns, err := parseWant(strings.TrimPrefix(text, "want "))
				if err != nil {
					return nil, fmt.Errorf("%s:%d: %v", pos.Filename, pos.Line, err)
				}
				k := lineKey{pos.Filename, pos.Line}
				want[k] = append(want[k], patterns...)
			}
		}
	}
	return want, nil
}

// parseWant reads the sequence of Go string literals in a want
// comment's payload.
func parseWant(s string) ([]string, error) {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out, nil
		}
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated backquoted want pattern")
			}
			out = append(out, s[1:1+end])
			s = s[end+2:]
		case '"':
			lit, rest, err := scanQuoted(s)
			if err != nil {
				return nil, err
			}
			out = append(out, lit)
			s = rest
		default:
			return nil, fmt.Errorf("want patterns must be quoted or backquoted Go strings, got %q", s)
		}
	}
}

// scanQuoted consumes one double-quoted Go string literal from the
// front of s.
func scanQuoted(s string) (lit, rest string, err error) {
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			u, err := strconv.Unquote(s[:i+1])
			if err != nil {
				return "", "", err
			}
			return u, s[i+1:], nil
		}
	}
	return "", "", fmt.Errorf("unterminated quoted want pattern")
}
