// Fixture for the maporder analyzer: clean files. Commutative loop
// bodies and the collect-then-sort idiom must not be flagged — the
// idiom is the fix the analyzer's message recommends.
package maporder

import (
	"fmt"
	"io"
	"sort"
)

func cleanCollectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func cleanSortSlice(m map[string]int) []int {
	var vals []int
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

func cleanCommutative(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v // int accumulation commutes; only string building is ordered
	}
	return total
}

func cleanMapWrite(m map[string]int) map[string]int {
	inverted := map[string]int{}
	for k, v := range m {
		inverted[k] = -v // keyed writes don't depend on iteration order
	}
	return inverted
}

func cleanSliceRange(xs []string, w io.Writer) {
	for _, x := range xs {
		fmt.Fprintln(w, x) // slices iterate deterministically
	}
}
