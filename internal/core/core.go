// Package core is the dualboot-oscar middleware façade: it assembles
// a hybrid cluster, drives a workload through it and digests the
// outcome. The experiments in bench_test.go, the qsim CLI and the
// examples all run through this package; the repository root package
// re-exports it as the public API.
package core

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/controller"
	"repro/internal/metrics"
	"repro/internal/osid"
	"repro/internal/workload"
)

// Scenario is one configured run: a cluster organisation plus a job
// trace.
type Scenario struct {
	Name    string
	Cluster cluster.Config
	Trace   workload.Trace
	// Horizon bounds virtual time (default: trace span + 48h).
	Horizon time.Duration
	// SampleInterval, when positive, records a node-count time series.
	SampleInterval time.Duration
}

// Result is a completed scenario.
type Result struct {
	Name           string
	Mode           cluster.Mode
	Summary        metrics.Summary
	Series         []cluster.Snapshot
	ControlActions int
	Controller     controller.Stats
	BrokenNodes    int
	Events         []cluster.Event
	AppStats       []metrics.AppStat
}

// Run executes a scenario from time zero.
func Run(sc Scenario) (Result, error) {
	if err := sc.Trace.Validate(); err != nil {
		return Result{}, fmt.Errorf("core: %w", err)
	}
	horizon := sc.Horizon
	if horizon <= 0 {
		horizon = sc.Trace.Span() + 48*time.Hour
	}
	c, err := cluster.New(sc.Cluster)
	if err != nil {
		return Result{}, err
	}
	res := Result{Name: sc.Name, Mode: c.Config().Mode}
	if sc.SampleInterval > 0 {
		series, sum, err := c.SampleSeries(sc.Trace, sc.SampleInterval, horizon)
		if err != nil {
			return Result{}, err
		}
		res.Series = series
		res.Summary = sum
	} else {
		sum, err := c.RunTrace(sc.Trace, horizon)
		if err != nil {
			return Result{}, err
		}
		res.Summary = sum
	}
	res.ControlActions = c.ControlActions()
	res.BrokenNodes = c.BrokenCount()
	res.Events = c.Events()
	res.AppStats = c.Rec.AppStats()
	if c.Mgr != nil {
		res.Controller = c.Mgr.Stats()
	}
	return res, nil
}

// CompareModes runs the same trace through several cluster
// organisations (fresh cluster per mode, identical seed) and returns
// results in mode order — the harness behind the bi-stable vs
// mono-stable vs static comparisons.
func CompareModes(modes []cluster.Mode, base cluster.Config, trace workload.Trace, horizon time.Duration) ([]Result, error) {
	var out []Result
	for _, m := range modes {
		cfg := base
		cfg.Mode = m
		r, err := Run(Scenario{
			Name:    m.String(),
			Cluster: cfg,
			Trace:   trace,
			Horizon: horizon,
		})
		if err != nil {
			return nil, fmt.Errorf("core: mode %v: %w", m, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// ResultRow renders a result as a table row for the experiment
// harness: mode, utilisation, per-OS waits, switches, completion.
func ResultRow(r Result) []string {
	s := r.Summary
	completed := s.JobsCompleted[osid.Linux] + s.JobsCompleted[osid.Windows]
	submitted := s.JobsSubmitted[osid.Linux] + s.JobsSubmitted[osid.Windows]
	return []string{
		r.Name,
		metrics.Pct(s.Utilisation),
		metrics.Dur(s.MeanWait[osid.Linux]),
		metrics.Dur(s.MeanWait[osid.Windows]),
		fmt.Sprintf("%d", s.Switches),
		metrics.Dur(s.MeanSwitch),
		fmt.Sprintf("%d/%d", completed, submitted),
	}
}

// ResultHeader matches ResultRow.
func ResultHeader() []string {
	return []string{"scenario", "util", "wait(L)", "wait(W)", "switches", "mean-switch", "done/subm"}
}

// ComparisonTable renders results for display.
func ComparisonTable(results []Result) string {
	rows := make([][]string, len(results))
	for i, r := range results {
		rows[i] = ResultRow(r)
	}
	return metrics.Table(ResultHeader(), rows)
}
