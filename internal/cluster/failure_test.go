package cluster

import (
	"strings"
	"testing"
	"time"

	"repro/internal/grubcfg"
	"repro/internal/osid"
	"repro/internal/workload"
)

// Failure-injection tests: the hybrid must degrade sanely when the
// infrastructure under it misbehaves.

func TestPXEOutageFallsBackToLocalBoot(t *testing.T) {
	// v2 nodes PXE-boot, but if the head's DHCP is down they fall
	// through to the local GRUB menu (which the OSCAR image installs
	// as a Linux-default fallback).
	c := newCluster(t, Config{Mode: HybridV2, InitialLinux: 8})
	c.PXE.SetFlag(osid.Windows)
	c.PXE.SetEnabled(false)
	c.beginSwitch("enode01", osid.Windows)
	c.Eng.RunFor(time.Hour)
	n := c.byName["enode01"]
	if n.Broken {
		t.Fatal("PXE outage bricked the node")
	}
	if n.OS != osid.Linux {
		t.Fatalf("fallback boot landed in %v, local menu defaults to linux", n.OS)
	}
	// The switch is recorded as off-target, not successful.
	sw := c.Rec.Switches()
	if len(sw) != 1 || sw[0].OK {
		t.Fatalf("switch records = %+v", sw)
	}
}

func TestPXERecoveryAfterOutage(t *testing.T) {
	c := newCluster(t, Config{Mode: HybridV2, InitialLinux: 8})
	c.PXE.SetEnabled(false)
	c.beginSwitch("enode01", osid.Windows)
	c.Eng.RunFor(time.Hour)
	c.PXE.SetEnabled(true)
	if err := c.ForceSwitch("enode01", osid.Windows); err != nil {
		t.Fatal(err)
	}
	c.Eng.RunFor(time.Hour)
	if c.byName["enode01"].OS != osid.Windows {
		t.Fatalf("node did not recover after PXE restore: %v", c.byName["enode01"].OS)
	}
}

func TestCorruptControlFileBricksV1Node(t *testing.T) {
	// A truncated FAT control file is a real v1 failure mode (FAT and
	// abrupt power-off do not mix). The boot must fail cleanly and the
	// node must be quarantined, not looped.
	c := newCluster(t, Config{Mode: HybridV1, InitialLinux: 16})
	n := c.byName["enode03"]
	fat, err := c.v1FATPartition(n.HW)
	if err != nil {
		t.Fatal(err)
	}
	if err := fat.WriteFile(grubcfg.ControlFileName, []byte("default 7\n")); err != nil {
		t.Fatal(err)
	}
	c.beginSwitch("enode03", osid.Windows)
	c.Eng.RunFor(time.Hour)
	if !n.Broken {
		t.Fatal("corrupt control file not detected")
	}
	if c.BrokenCount() != 1 {
		t.Fatalf("broken = %d", c.BrokenCount())
	}
}

func TestBrokenNodeExcludedFromFurtherSwitches(t *testing.T) {
	c := newCluster(t, Config{Mode: HybridV1, InitialLinux: 16})
	n := c.byName["enode01"]
	winPart, _ := n.HW.Disk.Partition(1)
	winPart.RemoveFile("/bootmgr")
	c.ForceSwitch("enode01", osid.Windows)
	c.Eng.RunFor(time.Hour)
	if !n.Broken {
		t.Fatal("node not broken")
	}
	if err := c.ForceSwitch("enode01", osid.Linux); err != nil {
		t.Fatal(err) // accepted but ignored by beginSwitch
	}
	c.Eng.RunFor(time.Hour)
	if n.OS != osid.None || !n.Broken {
		t.Fatalf("broken node resurrected: %+v", n)
	}
}

func TestClusterSurvivesBrokenNodeUnderLoad(t *testing.T) {
	// A node dies mid-run; the remaining 15 still serve the workload.
	c := newCluster(t, Config{Mode: HybridV2, InitialLinux: 16, Cycle: 5 * time.Minute})
	victim := c.byName["enode05"]
	winPart, _ := victim.HW.Disk.Partition(1)
	winPart.RemoveFile("/bootmgr")

	trace := workload.Trace{
		winJob(0, 2, time.Hour),
		linJob(10*time.Minute, 2, time.Hour),
	}
	// Force the victim toward Windows so its boot fails.
	c.Eng.After(time.Minute, func() { _ = c.ForceSwitch("enode05", osid.Windows) })
	sum, err := c.RunTrace(trace, 48*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if sum.JobsCompleted[osid.Windows] != 1 || sum.JobsCompleted[osid.Linux] != 1 {
		t.Fatalf("completed = %v with one broken node", sum.JobsCompleted)
	}
	if c.BrokenCount() != 1 {
		t.Fatalf("broken = %d", c.BrokenCount())
	}
}

func TestSwitchJobOnNodeLostMidFlight(t *testing.T) {
	// The donor node goes down between switch-job submission and
	// placement; the order must not strand the pending counter.
	c := newCluster(t, Config{Mode: HybridV2, InitialLinux: 1, Cycle: 5 * time.Minute})
	// Only enode01 is on Linux. Submit a switch order against it, then
	// kill it before the job completes.
	if n := c.OrderSwitch(osid.Linux, osid.Windows, 1); n != 1 {
		t.Fatalf("order = %d", n)
	}
	c.Eng.RunFor(time.Second) // job placed, occupying the node
	c.PBS.SetNodeAvailable("enode01", false)
	c.Eng.RunFor(time.Hour)
	// The switch job was not rerunnable (-r n): it dies with the node;
	// pending must drain back to zero.
	if got := c.SideInfo(osid.Linux).PendingAway; got != 0 {
		t.Fatalf("pending stuck at %d", got)
	}
}

func TestEventLogCarriesFailures(t *testing.T) {
	c := newCluster(t, Config{Mode: HybridV1, InitialLinux: 16})
	n := c.byName["enode01"]
	winPart, _ := n.HW.Disk.Partition(1)
	winPart.RemoveFile("/bootmgr")
	c.ForceSwitch("enode01", osid.Windows)
	c.Eng.RunFor(time.Hour)
	joined := ""
	for _, e := range c.Events() {
		joined += e.What + "\n"
	}
	if !strings.Contains(joined, "boot FAILED") {
		t.Fatalf("failure not logged:\n%s", joined)
	}
}
