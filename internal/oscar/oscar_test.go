package oscar

import (
	"strings"
	"testing"

	"repro/internal/bootmgr"
	"repro/internal/deploy"
	"repro/internal/grubcfg"
	"repro/internal/hardware"
	"repro/internal/osid"
)

func layoutV1(t *testing.T) *deploy.Layout {
	t.Helper()
	l, err := deploy.ParseIdeDisk(deploy.V1IdeDisk)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func layoutV2(t *testing.T) *deploy.Layout {
	t.Helper()
	l, err := deploy.ParseIdeDisk(deploy.V2IdeDisk)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestBuildImageV1(t *testing.T) {
	img, err := BuildImage("oscarimage", V1, layoutV1(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(img.ManualPatches) != 4 {
		t.Fatalf("manual patches = %d, want 4 (§III-C list)", len(img.ManualPatches))
	}
	if img.Kernel.BootDev != grubcfg.DeviceForLinuxPartition(2) {
		t.Fatalf("boot dev = %v", img.Kernel.BootDev)
	}
	if !strings.Contains(img.Kernel.KernelArgs, "root=/dev/sda7") {
		t.Fatalf("kernel args = %q", img.Kernel.KernelArgs)
	}
}

func TestBuildImageV2(t *testing.T) {
	img, err := BuildImage("oscarimage", V2, layoutV2(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(img.ManualPatches) != 0 {
		t.Fatalf("v2 should need no per-rebuild patches: %v", img.ManualPatches)
	}
	if !strings.Contains(img.Kernel.KernelArgs, "root=/dev/sda6") {
		t.Fatalf("kernel args = %q", img.Kernel.KernelArgs)
	}
}

func TestBuildImageValidation(t *testing.T) {
	if _, err := BuildImage("", V2, layoutV2(t)); err == nil {
		t.Error("empty name accepted")
	}
	// v2 without skip rejected
	if _, err := BuildImage("x", V2, layoutV1(t)); err == nil {
		t.Error("v2 image without skip accepted")
	}
	// v1 without FAT rejected
	if _, err := BuildImage("x", V1, layoutV2(t)); err == nil {
		t.Error("v1 image without FAT accepted")
	}
	// no bootable partition
	l, err := deploy.ParseIdeDisk("/dev/sda1 100 ext3 / defaults\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildImage("x", V2, l); err == nil {
		t.Error("layout without bootable partition accepted")
	}
}

func TestDeployNodeV1ThenBoot(t *testing.T) {
	// v1 order: Windows first, then Linux on top.
	n := hardware.NewNode(hardware.NodeSpec{Index: 1})
	dp, _ := deploy.ParseDiskpart(deploy.V1Diskpart)
	if _, err := deploy.DeployWindows(n, dp); err != nil {
		t.Fatal(err)
	}
	img, err := BuildImage("oscarimage", V1, layoutV1(t))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := DeployNode(n, img)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WindowsLost {
		t.Fatal("Linux deploy destroyed Windows")
	}
	if rep.PartitionsPreserved != 1 {
		t.Fatalf("preserved = %d, want 1 (the NTFS partition)", rep.PartitionsPreserved)
	}
	if rep.ManualSteps != 4 {
		t.Fatalf("manual steps = %d", rep.ManualSteps)
	}
	if !rep.GRUBInstalled || n.Disk.MBR.Loader != hardware.BootGRUB {
		t.Fatal("GRUB not installed in MBR")
	}

	// The deployed node boots Linux through the Figure-2 redirect.
	res, err := bootmgr.Boot(n, bootmgr.Env{Latency: bootmgr.DefaultLatencyModel()})
	if err != nil {
		t.Fatal(err)
	}
	if res.OS != osid.Linux {
		t.Fatalf("booted %v", res.OS)
	}
	if !strings.Contains(strings.Join(res.Steps, "\n"), "configfile") {
		t.Fatalf("v1 boot did not pass through the FAT redirect: %v", res.Steps)
	}

	// Flip the FAT control file and the same node boots Windows.
	fat, _ := n.Disk.Partition(6)
	if err := fat.RemoveFile(grubcfg.ControlFileName); err != nil {
		t.Fatal(err)
	}
	if err := fat.RenameFile(grubcfg.StagedControlFileName(osid.Windows), grubcfg.ControlFileName); err != nil {
		t.Fatal(err)
	}
	res, err = bootmgr.Boot(n, bootmgr.Env{Latency: bootmgr.DefaultLatencyModel()})
	if err != nil {
		t.Fatal(err)
	}
	if res.OS != osid.Windows {
		t.Fatalf("after control flip booted %v", res.OS)
	}
}

func TestDeployNodeV2PreservesWindowsViaSkip(t *testing.T) {
	n := hardware.NewNode(hardware.NodeSpec{Index: 2})
	dp, _ := deploy.ParseDiskpart(deploy.V2InitialDiskpart)
	if _, err := deploy.DeployWindows(n, dp); err != nil {
		t.Fatal(err)
	}
	win, _ := n.Disk.Partition(1)
	win.WriteFile("/Users/research/results.dat", []byte("precious"))

	img, err := BuildImage("oscarimage", V2, layoutV2(t))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := DeployNode(n, img)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WindowsLost {
		t.Fatal("skip label failed to protect Windows")
	}
	win, _ = n.Disk.Partition(1)
	if !win.HasFile("/Users/research/results.dat") {
		t.Fatal("windows user data lost")
	}
	// Reimage Linux again: Windows still intact (individual reimaging,
	// §IV-B).
	if _, err := DeployNode(n, img); err != nil {
		t.Fatal(err)
	}
	win, _ = n.Disk.Partition(1)
	if !win.HasFile("/Users/research/results.dat") {
		t.Fatal("second Linux reimage destroyed Windows data")
	}
}

func TestDeployNodeV2FreshDiskReservesSkipSpace(t *testing.T) {
	n := hardware.NewNode(hardware.NodeSpec{Index: 3})
	img, _ := BuildImage("oscarimage", V2, layoutV2(t))
	rep, err := DeployNode(n, img)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PartitionsCreated != 4 {
		t.Fatalf("created = %d", rep.PartitionsCreated)
	}
	p, err := n.Disk.Partition(1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Formatted() {
		t.Fatal("skip partition was formatted")
	}
	if p.SizeMB != 16000 {
		t.Fatalf("skip size = %d", p.SizeMB)
	}
}

func TestDeployNodePopulatesSystem(t *testing.T) {
	n := hardware.NewNode(hardware.NodeSpec{Index: 4})
	img, _ := BuildImage("oscarimage", V2, layoutV2(t))
	if _, err := DeployNode(n, img); err != nil {
		t.Fatal(err)
	}
	boot, _ := n.Disk.Partition(2)
	if !boot.HasFile(img.Kernel.KernelPath) || !boot.HasFile("/grub/menu.lst") {
		t.Fatalf("boot contents = %v", boot.Files())
	}
	root, _ := n.Disk.Partition(6)
	if !root.HasFile(LinuxReleaseFile) {
		t.Fatal("release file missing")
	}
	for _, pkg := range DefaultPackages {
		if !root.HasFile("/opt/oscar/packages/" + pkg) {
			t.Fatalf("package %s missing", pkg)
		}
	}
}

func TestV1BootMenuIsRedirect(t *testing.T) {
	img, _ := BuildImage("i", V1, layoutV1(t))
	n := hardware.NewNode(hardware.NodeSpec{Index: 5})
	if _, err := DeployNode(n, img); err != nil {
		t.Fatal(err)
	}
	boot, _ := n.Disk.Partition(2)
	data, _ := boot.ReadFile("/grub/menu.lst")
	cfg, err := grubcfg.Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cfg.Entries[0].ConfigFile(); !ok {
		t.Fatalf("v1 menu.lst is not a redirect:\n%s", data)
	}
	// FAT partition has live + both staged menus + the switch script.
	fat, _ := n.Disk.Partition(6)
	for _, f := range []string{grubcfg.ControlFileName,
		grubcfg.StagedControlFileName(osid.Linux), grubcfg.StagedControlFileName(osid.Windows),
		"/bootcontrol.pl"} {
		if !fat.HasFile(f) {
			t.Errorf("FAT missing %s: has %v", f, fat.Files())
		}
	}
}

func TestV2BootMenuIsLocalFallback(t *testing.T) {
	img, _ := BuildImage("i", V2, layoutV2(t))
	n := hardware.NewNode(hardware.NodeSpec{Index: 6})
	if _, err := DeployNode(n, img); err != nil {
		t.Fatal(err)
	}
	boot, _ := n.Disk.Partition(2)
	data, _ := boot.ReadFile("/grub/menu.lst")
	cfg, err := grubcfg.Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Entries) != 2 {
		t.Fatalf("v2 local menu entries = %d, want dual menu", len(cfg.Entries))
	}
}

func TestGenerateMasterScript(t *testing.T) {
	v1img, _ := BuildImage("oscarimage", V1, layoutV1(t))
	v2img, _ := BuildImage("oscarimage", V2, layoutV2(t))
	s1 := GenerateMasterScript(v1img)
	s2 := GenerateMasterScript(v2img)
	if !strings.Contains(s1, "mkpartfs") {
		t.Errorf("v1 script lacks mkpartfs patch:\n%s", s1)
	}
	if !strings.Contains(s1, "--modify-window=1 --size-only") {
		t.Errorf("v1 script lacks rsync FAT flags:\n%s", s1)
	}
	if !strings.Contains(s2, "skip label") {
		t.Errorf("v2 script lacks skip handling:\n%s", s2)
	}
	if strings.Contains(s2, "--modify-window") {
		t.Errorf("v2 script carries v1 rsync patch:\n%s", s2)
	}
}

func TestVersionString(t *testing.T) {
	if V1.String() != "dualboot-oscar-1.0" || V2.String() != "dualboot-oscar-2.0" {
		t.Fatal("version strings wrong")
	}
}
