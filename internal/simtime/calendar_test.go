package simtime

import (
	"container/heap"
	"math/rand"
	"testing"
	"time"
)

// refHeap replicates the engine's previous flat container/heap queue —
// the reference the calendar queue must match event for event.
type refHeap []*event

func (q refHeap) Len() int { return len(q) }
func (q refHeap) Less(i, j int) bool {
	if q[i].due != q[j].due {
		return q[i].due < q[j].due
	}
	return q[i].seq < q[j].seq
}
func (q refHeap) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *refHeap) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *refHeap) Pop() any     { old := *q; n := len(old); ev := old[n-1]; *q = old[:n-1]; return ev }
func (q refHeap) peekDue() (time.Duration, bool) {
	if len(q) == 0 {
		return 0, false
	}
	return q[0].due, true
}

// TestCalendarMatchesReferenceHeap fuzzes random interleavings of
// inserts (immediate, near-window, far-future) and pops against the
// reference heap: the calendar must produce the identical (due, seq)
// sequence, including across window rebuilds and deadline jumps.
func TestCalendarMatchesReferenceHeap(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 7, 99} {
		rng := rand.New(rand.NewSource(seed))
		cal := newCalendar()
		ref := &refHeap{}
		var now time.Duration
		var seq uint64
		push := func(due time.Duration) {
			ev := &event{due: due, seq: seq}
			seq++
			cal.push(ev)
			heap.Push(ref, &event{due: due, seq: ev.seq})
		}
		randDue := func() time.Duration {
			switch rng.Intn(10) {
			case 0, 1, 2: // immediate kick
				return now
			case 3, 4, 5: // sub-window
				return now + time.Duration(rng.Int63n(int64(10*time.Minute)))
			case 6, 7: // near the window edge
				return now + time.Duration(rng.Int63n(int64(time.Hour)))
			default: // far future
				return now + time.Duration(rng.Int63n(int64(300*time.Hour)))
			}
		}
		for op := 0; op < 20000; op++ {
			if cal.size == 0 || rng.Intn(3) != 0 {
				push(randDue())
				continue
			}
			got := cal.pop()
			want := heap.Pop(ref).(*event)
			if got == nil || got.due != want.due || got.seq != want.seq {
				t.Fatalf("seed %d op %d: pop = (%v, %d), reference (%v, %d)",
					seed, op, got.due, got.seq, want.due, want.seq)
			}
			if got.due < now {
				t.Fatalf("seed %d op %d: queue went backwards (%v < %v)", seed, op, got.due, now)
			}
			now = got.due
			// Occasionally jump the clock the way RunUntil does, so
			// inserts land behind the calendar's seek point.
			if rng.Intn(50) == 0 {
				now += time.Duration(rng.Int63n(int64(2 * time.Hour)))
				if due, ok := (*ref).peekDue(); ok && now > due {
					now = due
				}
			}
		}
		// Drain: the remaining order must match exactly.
		for ref.Len() > 0 {
			got, want := cal.pop(), heap.Pop(ref).(*event)
			if got == nil || got.due != want.due || got.seq != want.seq {
				t.Fatalf("seed %d drain: pop = %+v, want (%v, %d)", seed, got, want.due, want.seq)
			}
		}
		if cal.pop() != nil || cal.size != 0 {
			t.Fatalf("seed %d: calendar not empty after drain", seed)
		}
	}
}

// TestCalendarPeekDoesNotConsume pins that peek leaves the next event
// in place across bands.
func TestCalendarPeekDoesNotConsume(t *testing.T) {
	cal := newCalendar()
	far := &event{due: 400 * time.Hour, seq: 0}
	cal.push(far)
	for i := 0; i < 3; i++ {
		if got := cal.peek(); got != far {
			t.Fatalf("peek %d = %+v, want the far event", i, got)
		}
	}
	if got := cal.pop(); got != far {
		t.Fatalf("pop = %+v, want the far event", got)
	}
	if cal.pop() != nil {
		t.Fatal("queue should be empty")
	}
}

// TestStopLeavesPendingImmediately pins the Timer.Stop fix: a
// cancelled timer must leave Pending() and ForegroundPending at Stop
// time, not linger until its fire time is reaped.
func TestStopLeavesPendingImmediately(t *testing.T) {
	e := NewEngine()
	tm := e.After(time.Hour, func() { t.Fatal("cancelled timer fired") })
	bg := e.AfterBackground(2*time.Hour, func() {})
	if e.Pending() != 2 || e.ForegroundPending() != 1 {
		t.Fatalf("Pending=%d ForegroundPending=%d before Stop", e.Pending(), e.ForegroundPending())
	}
	if !tm.Stop() {
		t.Fatal("Stop() = false on a pending timer")
	}
	if e.Pending() != 1 || e.ForegroundPending() != 0 {
		t.Fatalf("Pending=%d ForegroundPending=%d after foreground Stop (want 1, 0)",
			e.Pending(), e.ForegroundPending())
	}
	bg.Stop()
	if e.Pending() != 0 {
		t.Fatalf("Pending=%d after background Stop, want 0", e.Pending())
	}
	if tm.Stop() {
		t.Fatal("second Stop() = true")
	}
	if e.Pending() != 0 {
		t.Fatalf("double Stop double-counted: Pending=%d", e.Pending())
	}
}

// TestStopUnblocksQuiescence pins the behavioural consequence of the
// fix: RunUntilQuiescent must return at the instant the last live
// foreground event completes, not ride out a cancelled timer's due
// time.
func TestStopUnblocksQuiescence(t *testing.T) {
	e := NewEngine()
	e.After(time.Minute, func() {})
	ghost := e.After(10*time.Hour, func() {})
	ghost.Stop()
	e.RunUntilQuiescent(MaxDuration)
	if e.Now() != time.Minute {
		t.Fatalf("RunUntilQuiescent stopped at %v, want %v", e.Now(), time.Minute)
	}
}
