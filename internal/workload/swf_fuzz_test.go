package workload

import (
	"bytes"
	"os"
	"reflect"
	"testing"
)

// FuzzParseSWF throws arbitrary bytes at the SWF reader. The parser
// must never panic — a malformed log is an error, not a crash — and
// whatever it accepts must honour the reader's own contract: valid
// jobs, a deterministic reparse, and submit offsets that never run
// backwards (the reader rebases the first submit to zero and clamps
// non-monotone inputs).
func FuzzParseSWF(f *testing.F) {
	// Seed with the committed fixture's header plus its first records —
	// the full 77 KB log would slow every mutation round to a crawl
	// without adding input shapes the prefix doesn't already cover.
	if sample, err := os.ReadFile("../../specs/pwa_sample_1k.swf"); err == nil {
		lines := bytes.SplitAfterN(sample, []byte("\n"), 61)
		f.Add(bytes.Join(lines[:60], nil))
	}
	f.Add([]byte("; Computer: fuzz\n; MaxNodes: 8\n"))
	f.Add([]byte("1 0 -1 3600 4 3600 4 4 -1 -1 1 1 1 1 1 -1 -1 -1\n"))
	f.Add([]byte("1 100 -1 60 8\n2 50 -1 30 2\n")) // short rows, submits out of order
	f.Add([]byte("1 0 -1 -2 -3 0 -4 0 0 0 0 0 0 0 0 0 0 0\n"))
	f.Add([]byte("; UnixStartTime: 0\n\n1 1e300 -1 1e300 2147483648\n"))
	f.Add([]byte("not an swf log at all\x00\xff"))

	configs := []SWFConfig{
		{Seed: 1, WindowsFrac: 0.5},
		{Seed: 2, WindowsFrac: 1, PPN: 1, MaxJobs: 16, UseRequested: true},
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, cfg := range configs {
			trace, hdr, err := ReadSWF(bytes.NewReader(data), cfg)
			if err != nil {
				continue
			}
			for i, j := range trace {
				if err := j.Validate(); err != nil {
					t.Fatalf("cfg %+v: job %d invalid after accepted parse: %v (%+v)", cfg, i, err, j)
				}
				if i > 0 && j.At < trace[i-1].At {
					t.Fatalf("cfg %+v: job %d submitted at %v before predecessor's %v", cfg, i, j.At, trace[i-1].At)
				}
			}
			again, hdr2, err := ReadSWF(bytes.NewReader(data), cfg)
			if err != nil {
				t.Fatalf("cfg %+v: accepted log failed on reparse: %v", cfg, err)
			}
			if !reflect.DeepEqual(trace, again) || !reflect.DeepEqual(hdr, hdr2) {
				t.Fatalf("cfg %+v: reparse of identical bytes diverged", cfg)
			}
		}
	})
}
