// Package driver advances a simulation to quiescence. It is the one
// run loop behind every drain in the repository: the cluster and the
// campus grid both implement Workload, and the driver hops the shared
// engine event-to-event until the workload reports no outstanding
// work or the horizon passes. Replacing the former fixed-step polling
// loops, it wakes only when an event is actually due and stops at the
// exact quiescence instant — no 10-minute overshoot inflating elapsed
// time, no per-step predicate polling while the fabric idles.
package driver

import (
	"time"

	"repro/internal/simtime"
)

// Workload is a simulation that knows whether it still has work
// outstanding. Implementations must answer Busy from state that only
// changes inside engine callbacks, so the answer is stable between
// events.
type Workload interface {
	// Busy reports outstanding work: pending submissions, unfinished
	// jobs, switches in flight.
	Busy() bool
	// Quiesce is called once after the run stops — the hook for
	// shutting down controllers and detaching bus endpoints.
	Quiesce()
}

// Drain runs the engine until the workload quiesces or the horizon is
// reached, then quiesces the workload. A non-positive horizon means
// effectively unbounded. A workload that wedges (Busy forever, with
// nothing scheduled that can unwedge it) rides the clock to the
// horizon and returns; it can never hang the caller.
func Drain(eng *simtime.Engine, horizon time.Duration, w Workload) {
	if horizon <= 0 {
		horizon = simtime.MaxDuration / 2
	}
	eng.RunWhile(horizon, w.Busy)
	w.Quiesce()
}
