// The Eridani case study (paper §IV-B): a Linux molecular-dynamics
// background is interrupted by a burst of Windows MATLAB-MDCS
// genetic-algorithm jobs. The cluster starts fully Linux; watch the
// dual-boot controller shift nodes to Windows and the system
// "seamlessly adjust".
//
//	go run ./examples/matlabga
package main

import (
	"fmt"
	"log"
	"time"

	hybridcluster "repro"
)

func main() {
	trace := hybridcluster.MatlabGATrace(7)
	byOS := trace.CountByOS()
	fmt.Printf("case study: %d linux MD jobs + %d windows MATLAB GA jobs\n\n",
		byOS[hybridcluster.Linux], byOS[hybridcluster.Windows])

	result, err := hybridcluster.Run(hybridcluster.Scenario{
		Name: "matlab-ga",
		Cluster: hybridcluster.ClusterConfig{
			Mode:         hybridcluster.HybridV2,
			InitialLinux: 16, // all nodes start on the Linux side
			Cycle:        5 * time.Minute,
		},
		Trace:          trace,
		Horizon:        48 * time.Hour,
		SampleInterval: time.Hour,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("node allocation over time:")
	fmt.Println("  t       linux  windows  switching  winQ")
	for _, snap := range result.Series {
		bar := ""
		for i := 0; i < snap.WindowsNodes; i++ {
			bar += "#"
		}
		fmt.Printf("  %-7v %5d  %7d  %9d  %4d  %s\n",
			snap.At.Round(time.Minute), snap.LinuxNodes, snap.WindowsNodes,
			snap.Switching, snap.WindowsQueued, bar)
	}

	s := result.Summary
	fmt.Printf("\nGA jobs completed: %d/10, mean Windows wait %v\n",
		s.JobsCompleted[hybridcluster.Windows], s.MeanWait[hybridcluster.Windows].Round(time.Second))
	fmt.Printf("switches: %d (all under 5 minutes: %v)\n",
		s.Switches, s.MaxSwitch <= 5*time.Minute)
}
