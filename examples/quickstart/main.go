// Quickstart: run a day of mixed campus workload through the
// dualboot-oscar hybrid cluster and print the report.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	hybridcluster "repro"
)

func main() {
	// A Table-I style workload: 24 hours of submissions, 30% Windows.
	trace := hybridcluster.PoissonTrace(hybridcluster.PoissonConfig{
		Seed:         1,
		Duration:     24 * time.Hour,
		JobsPerHour:  2,
		WindowsFrac:  0.3,
		MaxNodes:     4,
		RuntimeScale: 0.5,
	})
	fmt.Printf("workload: %d jobs over %v\n", len(trace), trace.Span().Round(time.Minute))

	// The Eridani defaults: 16 nodes x 4 cores, half on each OS,
	// dualboot-oscar v2 with a 10-minute detector cycle.
	result, err := hybridcluster.Run(hybridcluster.Scenario{
		Name:    "quickstart",
		Cluster: hybridcluster.ClusterConfig{Mode: hybridcluster.HybridV2},
		Trace:   trace,
	})
	if err != nil {
		log.Fatal(err)
	}

	s := result.Summary
	fmt.Printf("utilisation: %.1f%%\n", s.Utilisation*100)
	fmt.Printf("completed:   %d linux + %d windows jobs\n",
		s.JobsCompleted[hybridcluster.Linux], s.JobsCompleted[hybridcluster.Windows])
	fmt.Printf("mean waits:  linux %v, windows %v\n",
		s.MeanWait[hybridcluster.Linux].Round(time.Second),
		s.MeanWait[hybridcluster.Windows].Round(time.Second))
	fmt.Printf("OS switches: %d (mean %v)\n", s.Switches, s.MeanSwitch.Round(time.Second))
}
