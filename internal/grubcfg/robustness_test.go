package grubcfg

import (
	"testing"
	"testing/quick"
)

// Robustness: the parser must never panic, whatever bytes it is fed —
// a corrupted FAT partition hands GRUB (and us) arbitrary garbage.
func TestQuickParseNeverPanics(t *testing.T) {
	f := func(data []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		cfg, err := Parse(data)
		if err == nil && cfg != nil {
			// Anything accepted must render and re-parse.
			if _, err := Parse(cfg.Render()); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickParseDeviceNeverPanics(t *testing.T) {
	f := func(s string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = ParseDevice(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkParseFigure3(b *testing.B) {
	src := []byte(figure3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRenderControlMenu(b *testing.B) {
	cfg, err := ControlMenu(DefaultLinuxEntry(), DefaultWindowsEntry(), 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if out := cfg.Render(); len(out) == 0 {
			b.Fatal("empty")
		}
	}
}
