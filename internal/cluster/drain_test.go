package cluster

import (
	"testing"
	"time"

	"repro/internal/osid"
	"repro/internal/workload"
)

// A switch that never completes must not hang RunUntilDrained: the
// drain is bounded by the horizon, not by an iteration count.
func TestRunUntilDrainedStuckSwitchStopsAtHorizon(t *testing.T) {
	c, err := New(Config{Mode: HybridV2, Nodes: 4, InitialLinux: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Wedge a node mid-switch with no pending event to release it —
	// the permanently-stuck case (e.g. a machine that powers off
	// during reboot and never reports back).
	c.nodes[0].Switching = true

	const horizon = 2 * time.Hour
	done := make(chan struct{})
	go func() {
		c.RunUntilDrained(horizon)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("RunUntilDrained did not terminate with a stuck switch")
	}
	if got := c.Eng.Now(); got != horizon {
		t.Fatalf("clock stopped at %v, want horizon %v", got, horizon)
	}
	if c.SwitchingCount() != 1 {
		t.Fatalf("stuck switch count = %d, want 1", c.SwitchingCount())
	}
}

// BootFailureProb must break nodes deterministically: the same seed
// yields the same casualties, and a zero probability never breaks
// anything.
func TestBootFailureInjection(t *testing.T) {
	trace := workload.Burst(workload.BurstConfig{
		Start: 0, Jobs: 6, Gap: time.Minute, App: "Backburner",
		OS: osid.Windows, Nodes: 2, PPN: 4, Runtime: 30 * time.Minute, Owner: "render",
	})
	run := func(prob float64) (broken int, summarySwitches int) {
		c, err := New(Config{
			Mode: HybridV2, Nodes: 8, InitialLinux: 8,
			Cycle: 5 * time.Minute, Seed: 11, BootFailureProb: prob,
		})
		if err != nil {
			t.Fatal(err)
		}
		sum, err := c.RunTrace(trace, 24*time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		return c.BrokenCount(), sum.Switches
	}

	if broken, _ := run(0); broken != 0 {
		t.Fatalf("fault-free run broke %d nodes", broken)
	}
	b1, s1 := run(1)
	if b1 == 0 {
		t.Fatal("probability-1 faults broke no nodes")
	}
	b2, s2 := run(1)
	if b1 != b2 || s1 != s2 {
		t.Fatalf("same seed diverged: broken %d vs %d, switches %d vs %d", b1, b2, s1, s2)
	}
}
