// Fixture for the walltime analyzer: a clean file. Deterministic
// time constructors, arithmetic and types are all fine, as is a
// local identifier that shadows the package name.
package walltime

import "time"

func cleanConstructors() {
	_ = time.Unix(1356998400, 0)
	_ = time.Date(2012, time.September, 24, 0, 0, 0, 0, time.UTC)
	d, _ := time.ParseDuration("5m")
	_ = d * 3
	var t time.Time
	_ = t.Add(2 * time.Hour)
}

type fakeClock struct{}

func (fakeClock) Now() int { return 0 }

func cleanShadowed() {
	// A local value named like the package is not the time package:
	// the type checker, not the token text, decides.
	time := fakeClock{}
	_ = time.Now()
}
