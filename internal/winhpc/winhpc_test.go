package winhpc

import (
	"testing"
	"time"

	"repro/internal/simtime"
)

func newTestScheduler(t *testing.T, nodes int) (*simtime.Engine, *Scheduler) {
	t.Helper()
	eng := simtime.NewEngine()
	s := NewScheduler(eng, "WINHEAD")
	for i := 1; i <= nodes; i++ {
		if _, err := s.AddNode(nodeName(i), 4, true); err != nil {
			t.Fatal(err)
		}
	}
	return eng, s
}

func nodeName(i int) string {
	return "ENODE" + string(rune('0'+i/10)) + string(rune('0'+i%10))
}

func TestSubmitRunFinish(t *testing.T) {
	eng, s := newTestScheduler(t, 1)
	var endedAt time.Duration
	j, err := s.SubmitJob(JobSpec{Name: "render", Unit: UnitCore, Count: 4,
		Runtime: 20 * time.Minute, OnEnd: func(*Job) { endedAt = eng.Now() }})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if j.State != JobFinished {
		t.Fatalf("state = %v", j.State)
	}
	if endedAt != 20*time.Minute {
		t.Fatalf("ended at %v", endedAt)
	}
	if j.ID != 1 {
		t.Fatalf("id = %d", j.ID)
	}
}

func TestCoreSchedulingSpansNodes(t *testing.T) {
	eng, s := newTestScheduler(t, 2)
	j, _ := s.SubmitJob(JobSpec{Name: "wide", Unit: UnitCore, Count: 6, Runtime: time.Hour})
	eng.RunUntil(time.Second)
	if j.State != JobRunning {
		t.Fatalf("state = %v", j.State)
	}
	if len(j.Alloc) != 2 || j.Alloc[0].Cores != 4 || j.Alloc[1].Cores != 2 {
		t.Fatalf("alloc = %+v", j.Alloc)
	}
	n2, _ := s.Node(nodeName(2))
	if n2.FreeCores() != 2 {
		t.Fatalf("n2 free = %d", n2.FreeCores())
	}
}

func TestNodeExclusiveScheduling(t *testing.T) {
	eng, s := newTestScheduler(t, 3)
	small, _ := s.SubmitJob(JobSpec{Name: "small", Unit: UnitCore, Count: 1, Runtime: time.Hour})
	mpi, _ := s.SubmitJob(JobSpec{Name: "mpi", Unit: UnitNode, Count: 2, Runtime: time.Hour})
	eng.RunUntil(time.Second)
	if small.State != JobRunning || mpi.State != JobRunning {
		t.Fatalf("small=%v mpi=%v", small.State, mpi.State)
	}
	// The node running "small" is not exclusive, so mpi takes nodes 2 and 3.
	nodes := mpi.AllocatedNodes()
	if len(nodes) != 2 || nodes[0] != nodeName(2) || nodes[1] != nodeName(3) {
		t.Fatalf("mpi nodes = %v", nodes)
	}
}

func TestFCFSBlocking(t *testing.T) {
	eng, s := newTestScheduler(t, 2)
	s.SubmitJob(JobSpec{Name: "big", Unit: UnitNode, Count: 2, Runtime: time.Hour})
	blocked, _ := s.SubmitJob(JobSpec{Name: "blocked", Unit: UnitNode, Count: 2, Runtime: time.Minute})
	small, _ := s.SubmitJob(JobSpec{Name: "small", Unit: UnitCore, Count: 1, Runtime: time.Minute})
	eng.RunUntil(30 * time.Minute)
	if blocked.State != JobQueued || small.State != JobQueued {
		t.Fatalf("blocked=%v small=%v, want queued behind head", blocked.State, small.State)
	}
	eng.Run()
}

func TestBackfill(t *testing.T) {
	eng, s := newTestScheduler(t, 2)
	s.Backfill = true
	// One node unreachable: the 2-node head job is feasible but cannot
	// start, so backfill lets the core job through.
	s.SetNodeOnline(nodeName(2), false)
	head, _ := s.SubmitJob(JobSpec{Name: "head", Unit: UnitNode, Count: 2, Runtime: time.Hour})
	small, _ := s.SubmitJob(JobSpec{Name: "small", Unit: UnitCore, Count: 2, Runtime: time.Minute})
	eng.RunUntil(time.Second)
	if head.State != JobQueued {
		t.Fatalf("head = %v", head.State)
	}
	if small.State != JobRunning {
		t.Fatalf("small = %v", small.State)
	}
	s.SetNodeOnline(nodeName(2), true)
	eng.Run()
}

func TestSubmitRejectsInfeasible(t *testing.T) {
	_, s := newTestScheduler(t, 2)
	if _, err := s.SubmitJob(JobSpec{Name: "huge", Unit: UnitNode, Count: 3, Runtime: time.Hour}); err == nil {
		t.Fatal("3-node job accepted on 2-node cluster")
	}
	if _, err := s.SubmitJob(JobSpec{Name: "wide", Unit: UnitCore, Count: 9, Runtime: time.Hour}); err == nil {
		t.Fatal("9-core job accepted on 8-core cluster")
	}
	// Unreachable nodes still count as configured capacity.
	s.SetNodeOnline(nodeName(1), false)
	s.SetNodeOnline(nodeName(2), false)
	if _, err := s.SubmitJob(JobSpec{Name: "ok", Unit: UnitNode, Count: 2, Runtime: time.Hour}); err != nil {
		t.Fatalf("feasible-but-unreachable request rejected: %v", err)
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	eng, s := newTestScheduler(t, 1)
	run, _ := s.SubmitJob(JobSpec{Name: "r", Unit: UnitNode, Count: 1, Runtime: time.Hour})
	wait, _ := s.SubmitJob(JobSpec{Name: "w", Unit: UnitNode, Count: 1, Runtime: time.Hour})
	eng.RunUntil(time.Minute)
	if err := s.CancelJob(wait.ID); err != nil {
		t.Fatal(err)
	}
	if wait.State != JobCanceled {
		t.Fatalf("wait = %v", wait.State)
	}
	if err := s.CancelJob(run.ID); err != nil {
		t.Fatal(err)
	}
	if run.State != JobCanceled {
		t.Fatalf("run = %v", run.State)
	}
	if err := s.CancelJob(run.ID); err == nil {
		t.Fatal("double cancel succeeded")
	}
	if err := s.CancelJob(99); err == nil {
		t.Fatal("cancel of unknown job succeeded")
	}
	n, _ := s.Node(nodeName(1))
	if n.FreeCores() != 4 {
		t.Fatalf("cores leaked: free = %d", n.FreeCores())
	}
	eng.Run()
}

func TestNodeUnreachableRequeuesRerunnable(t *testing.T) {
	eng, s := newTestScheduler(t, 2)
	j, _ := s.SubmitJob(JobSpec{Name: "ga", Unit: UnitNode, Count: 1, Runtime: time.Hour, Rerun: true})
	eng.RunUntil(time.Minute)
	victim := j.AllocatedNodes()[0]
	if err := s.SetNodeOnline(victim, false); err != nil {
		t.Fatal(err)
	}
	if j.State != JobQueued {
		t.Fatalf("state = %v, want requeued", j.State)
	}
	eng.RunUntil(2 * time.Minute)
	if j.State != JobRunning || j.AllocatedNodes()[0] == victim {
		t.Fatalf("state=%v nodes=%v", j.State, j.AllocatedNodes())
	}
}

func TestNodeUnreachableFailsNonRerunnable(t *testing.T) {
	eng, s := newTestScheduler(t, 1)
	failed := false
	j, _ := s.SubmitJob(JobSpec{Name: "frail", Unit: UnitNode, Count: 1, Runtime: time.Hour,
		OnEnd: func(*Job) { failed = true }})
	eng.RunUntil(time.Minute)
	s.SetNodeOnline(j.AllocatedNodes()[0], false)
	if j.State != JobFailed || !failed {
		t.Fatalf("state=%v notified=%v", j.State, failed)
	}
}

func TestOfflineDrains(t *testing.T) {
	eng, s := newTestScheduler(t, 1)
	j, _ := s.SubmitJob(JobSpec{Name: "j", Unit: UnitCore, Count: 2, Runtime: 30 * time.Minute})
	eng.RunUntil(time.Minute)
	if err := s.SetNodeOffline(nodeName(1), true); err != nil {
		t.Fatal(err)
	}
	if j.State != JobRunning {
		t.Fatalf("offline killed job: %v", j.State)
	}
	j2, _ := s.SubmitJob(JobSpec{Name: "j2", Unit: UnitCore, Count: 1, Runtime: time.Minute})
	eng.Run()
	if j2.State != JobQueued {
		t.Fatalf("j2 = %v on drained node", j2.State)
	}
	s.SetNodeOffline(nodeName(1), false)
	eng.Run()
	if j2.State != JobFinished {
		t.Fatalf("j2 = %v", j2.State)
	}
}

func TestSnapshot(t *testing.T) {
	eng, s := newTestScheduler(t, 2)
	s.SubmitJob(JobSpec{Name: "r1", Unit: UnitNode, Count: 2, Runtime: time.Hour})
	s.SubmitJob(JobSpec{Name: "q1", Unit: UnitNode, Count: 1, Runtime: time.Hour})
	s.SubmitJob(JobSpec{Name: "q2", Unit: UnitCore, Count: 2, Runtime: time.Hour})
	eng.RunUntil(time.Second)
	snap := s.Snapshot()
	if snap.Running != 1 || snap.Queued != 2 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.FirstQueued == 0 || snap.FirstName != "q1" {
		t.Fatalf("head = %+v", snap)
	}
	if snap.NeededCores != 4 {
		t.Fatalf("needed = %d (UnitNode on quad-core)", snap.NeededCores)
	}
	if snap.PendingCores != 6 {
		t.Fatalf("pending = %d", snap.PendingCores)
	}
	if snap.OnlineCores != 8 {
		t.Fatalf("online = %d", snap.OnlineCores)
	}
}

func TestSnapshotEmptyQueue(t *testing.T) {
	_, s := newTestScheduler(t, 1)
	snap := s.Snapshot()
	if snap.Running != 0 || snap.Queued != 0 || snap.FirstQueued != 0 || snap.NeededCores != 0 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestAddNodeValidation(t *testing.T) {
	eng := simtime.NewEngine()
	s := NewScheduler(eng, "W")
	if _, err := s.AddNode("n", 0, true); err == nil {
		t.Fatal("0 cores accepted")
	}
	if _, err := s.AddNode("n", 4, true); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddNode("n", 4, true); err == nil {
		t.Fatal("duplicate accepted")
	}
	if _, err := s.Node("x"); err == nil {
		t.Fatal("unknown node lookup succeeded")
	}
	if err := s.SetNodeOnline("x", true); err == nil {
		t.Fatal("SetNodeOnline on unknown node succeeded")
	}
	if err := s.SetNodeOffline("x", true); err == nil {
		t.Fatal("SetNodeOffline on unknown node succeeded")
	}
	if _, err := s.SubmitJob(JobSpec{Runtime: -1}); err == nil {
		t.Fatal("negative runtime accepted")
	}
}

func TestDefaults(t *testing.T) {
	eng, s := newTestScheduler(t, 1)
	j, err := s.SubmitJob(JobSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if j.Name != "Job" || j.Owner != "HPC\\user" || j.Count != 1 || j.Unit != UnitCore {
		t.Fatalf("defaults = %+v", j)
	}
	eng.Run()
}

func TestNodesJoinUnreachable(t *testing.T) {
	eng := simtime.NewEngine()
	s := NewScheduler(eng, "W")
	s.AddNode("n1", 4, false)
	j, _ := s.SubmitJob(JobSpec{Name: "j", Unit: UnitCore, Count: 1, Runtime: time.Minute})
	eng.RunUntil(time.Minute)
	if j.State != JobQueued {
		t.Fatalf("job ran on unreachable node: %v", j.State)
	}
	if s.TotalCores() != 0 || s.OnlineNodes() != 0 {
		t.Fatalf("capacity = %d/%d", s.TotalCores(), s.OnlineNodes())
	}
	s.SetNodeOnline("n1", true)
	eng.Run()
	if j.State != JobFinished {
		t.Fatalf("j = %v", j.State)
	}
}

func TestExecCallback(t *testing.T) {
	eng, s := newTestScheduler(t, 2)
	var got []string
	s.SubmitJob(JobSpec{Name: "cb", Unit: UnitNode, Count: 2, Runtime: time.Second,
		Exec: func(nodes []string) { got = nodes }})
	eng.Run()
	if len(got) != 2 {
		t.Fatalf("exec nodes = %v", got)
	}
}

func TestStateStrings(t *testing.T) {
	for s, want := range map[JobState]string{
		JobQueued: "Queued", JobRunning: "Running", JobFinished: "Finished",
		JobFailed: "Failed", JobCanceled: "Canceled", JobState(99): "Unknown",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
	if UnitCore.String() != "Core" || UnitNode.String() != "Node" {
		t.Error("unit strings wrong")
	}
	if NodeOnline.String() != "Online" || NodeOffline.String() != "Offline" || NodeUnreachable.String() != "Unreachable" {
		t.Error("node state strings wrong")
	}
}

func TestJobsViews(t *testing.T) {
	eng, s := newTestScheduler(t, 1)
	s.SubmitJob(JobSpec{Name: "a", Unit: UnitNode, Count: 1, Runtime: time.Hour})
	s.SubmitJob(JobSpec{Name: "b", Unit: UnitNode, Count: 1, Runtime: time.Hour})
	eng.RunUntil(time.Second)
	if len(s.Jobs()) != 2 || len(s.RunningJobs()) != 1 || len(s.QueuedJobs()) != 1 {
		t.Fatalf("views: %d/%d/%d", len(s.Jobs()), len(s.RunningJobs()), len(s.QueuedJobs()))
	}
	if _, err := s.Job(1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Job(42); err == nil {
		t.Fatal("unknown id lookup succeeded")
	}
}

func TestPriorityOrdering(t *testing.T) {
	eng, s := newTestScheduler(t, 1)
	// Fill the node first, then queue three jobs at different priorities.
	s.SubmitJob(JobSpec{Name: "filler", Unit: UnitNode, Count: 1, Runtime: time.Hour})
	eng.RunUntil(time.Second)
	low, _ := s.SubmitJob(JobSpec{Name: "low", Unit: UnitNode, Count: 1, Runtime: time.Minute, Priority: PriorityLowest})
	normal, _ := s.SubmitJob(JobSpec{Name: "normal", Unit: UnitNode, Count: 1, Runtime: time.Minute})
	high, _ := s.SubmitJob(JobSpec{Name: "high", Unit: UnitNode, Count: 1, Runtime: time.Minute, Priority: PriorityHighest})
	eng.RunUntil(2 * time.Second)
	queued := s.QueuedJobs()
	if queued[0] != high || queued[1] != normal || queued[2] != low {
		t.Fatalf("order = %v %v %v", queued[0].Name, queued[1].Name, queued[2].Name)
	}
	eng.Run()
	if !(high.StartTime < normal.StartTime && normal.StartTime < low.StartTime) {
		t.Fatalf("starts: high=%v normal=%v low=%v", high.StartTime, normal.StartTime, low.StartTime)
	}
}

func TestPriorityTiePreservesSubmissionOrder(t *testing.T) {
	eng, s := newTestScheduler(t, 1)
	s.SubmitJob(JobSpec{Name: "filler", Unit: UnitNode, Count: 1, Runtime: time.Hour})
	first, _ := s.SubmitJob(JobSpec{Name: "first", Unit: UnitNode, Count: 1, Runtime: time.Minute})
	second, _ := s.SubmitJob(JobSpec{Name: "second", Unit: UnitNode, Count: 1, Runtime: time.Minute})
	eng.Run()
	if first.StartTime >= second.StartTime {
		t.Fatalf("FIFO within priority broken: %v >= %v", first.StartTime, second.StartTime)
	}
}

func TestSnapshotHeadFollowsPriority(t *testing.T) {
	eng, s := newTestScheduler(t, 1)
	s.SubmitJob(JobSpec{Name: "filler", Unit: UnitNode, Count: 1, Runtime: time.Hour})
	eng.RunUntil(time.Second)
	s.SubmitJob(JobSpec{Name: "norm", Unit: UnitCore, Count: 1, Runtime: time.Minute})
	s.SubmitJob(JobSpec{Name: "urgent", Unit: UnitCore, Count: 2, Runtime: time.Minute, Priority: PriorityHighest})
	eng.RunUntil(2 * time.Second)
	snap := s.Snapshot()
	if snap.FirstName != "urgent" || snap.NeededCores != 2 {
		t.Fatalf("snapshot head = %+v", snap)
	}
}

func TestPriorityStrings(t *testing.T) {
	for p, want := range map[Priority]string{
		PriorityLowest: "Lowest", PriorityBelowNormal: "BelowNormal",
		PriorityNormal: "Normal", PriorityAboveNormal: "AboveNormal",
		PriorityHighest: "Highest",
	} {
		if p.String() != want {
			t.Errorf("%d = %q", p, p.String())
		}
	}
}
