package cluster

import (
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/osid"
	"repro/internal/pbs"
	"repro/internal/simtime"
	"repro/internal/winhpc"
	"repro/internal/workload"
)

// This file runs workload traces through the cluster and exposes the
// snapshot/summary views the experiments and examples consume.

// Submit routes one workload job to the appropriate scheduler now.
// The returned ID is the metrics key ("<seq>.<fqdn>" for PBS, "W<id>"
// for Windows HPC).
func (c *Cluster) Submit(j workload.Job) (string, error) {
	if err := j.Validate(); err != nil {
		return "", err
	}
	switch j.OS {
	case osid.Linux:
		pj, err := c.PBS.Qsub(pbs.SubmitRequest{
			Name:    j.App,
			Owner:   j.Owner + "@" + c.PBS.Name(),
			Nodes:   j.Nodes,
			PPN:     j.PPN,
			Runtime: j.Runtime,
			Rerun:   true, // campus jobs restart if a node is lost
		})
		if err != nil {
			return "", err
		}
		c.track(pj.ID, j)
		return pj.ID, nil
	case osid.Windows:
		spec := winhpc.JobSpec{
			Name:    j.App,
			Owner:   "HPC\\" + j.Owner,
			Runtime: j.Runtime,
			Rerun:   true,
		}
		if j.PPN >= c.cfg.CoresPerNode {
			spec.Unit = winhpc.UnitNode
			spec.Count = j.Nodes
		} else {
			spec.Unit = winhpc.UnitCore
			spec.Count = j.CPUs()
		}
		wj, err := c.Win.SubmitJob(spec)
		if err != nil {
			return "", err
		}
		id := winJobID(wj.ID)
		c.track(id, j)
		return id, nil
	default:
		return "", fmt.Errorf("cluster: job %q has no valid OS", j.App)
	}
}

func (c *Cluster) track(id string, j workload.Job) {
	c.Rec.JobSubmitted(id, j.OS, j.App, j.CPUs())
	c.submitted[id] = true
	c.unfinished++
}

// ScheduleTrace arranges every job in the trace for submission at its
// timestamp.
func (c *Cluster) ScheduleTrace(trace workload.Trace) error {
	if err := trace.Validate(); err != nil {
		return err
	}
	for _, j := range trace {
		j := j
		c.toSubmit++
		c.Eng.At(j.At, func() {
			c.toSubmit--
			if _, err := c.Submit(j); err != nil {
				c.logf("submit %s failed: %v", j.App, err)
			}
		})
	}
	return nil
}

// Unfinished reports workload jobs not yet completed.
func (c *Cluster) Unfinished() int { return c.unfinished }

// PendingSubmissions reports trace jobs scheduled but not yet
// submitted.
func (c *Cluster) PendingSubmissions() int { return c.toSubmit }

// RunTrace schedules a trace and advances virtual time until every
// workload job completes, no switches are in flight, or maxHorizon is
// reached. It returns the metrics summary.
func (c *Cluster) RunTrace(trace workload.Trace, maxHorizon time.Duration) (metrics.Summary, error) {
	if err := c.ScheduleTrace(trace); err != nil {
		return metrics.Summary{}, err
	}
	c.RunUntilDrained(maxHorizon)
	return c.Summary(), nil
}

// rebootDrainStep is the granularity at which RunUntilDrained waits
// for in-flight reboots to land after the controller stops. The drain
// is bounded by the horizon, never by an iteration count: a node whose
// switch never completes must not hang the run, it just rides the
// clock to the horizon.
const rebootDrainStep = time.Minute

// RunUntilDrained advances time in controller-cycle steps until the
// cluster is quiescent or the horizon is hit.
func (c *Cluster) RunUntilDrained(maxHorizon time.Duration) {
	if maxHorizon <= 0 {
		maxHorizon = simtime.MaxDuration / 2
	}
	step := c.cfg.Cycle
	if step <= 0 {
		step = 10 * time.Minute
	}
	for c.Eng.Now() < maxHorizon {
		if c.toSubmit == 0 && c.unfinished == 0 && c.SwitchingCount() == 0 {
			break
		}
		next := c.Eng.Now() + step
		if next > maxHorizon {
			next = maxHorizon
		}
		c.Eng.RunUntil(next)
	}
	if c.Mgr != nil {
		c.Mgr.Stop()
	}
	// Drain any in-flight reboots so switch records close. RunUntil
	// advances the clock even with an empty queue, so this terminates
	// at maxHorizon in the worst case.
	for c.SwitchingCount() > 0 && c.Eng.Now() < maxHorizon {
		next := c.Eng.Now() + rebootDrainStep
		if next > maxHorizon {
			next = maxHorizon
		}
		c.Eng.RunUntil(next)
	}
}

// Summary digests the run so far.
func (c *Cluster) Summary() metrics.Summary {
	return c.Rec.Summarise(c.cfg.Nodes)
}

// Snapshot is a point-in-time view for time-series plots (the case
// study's node-shift curve).
type Snapshot struct {
	At            time.Duration
	LinuxNodes    int
	WindowsNodes  int
	Switching     int
	Broken        int
	LinuxRunning  int
	LinuxQueued   int
	WindowsQueued int
	WindowsRun    int
}

// TakeSnapshot captures the current state.
func (c *Cluster) TakeSnapshot() Snapshot {
	winSnap := c.Win.Snapshot()
	return Snapshot{
		At:            c.Eng.Now(),
		LinuxNodes:    c.NodesOn(osid.Linux),
		WindowsNodes:  c.NodesOn(osid.Windows),
		Switching:     c.SwitchingCount(),
		Broken:        c.BrokenCount(),
		LinuxRunning:  len(c.PBS.RunningJobs()),
		LinuxQueued:   len(c.PBS.QueuedJobs()),
		WindowsQueued: winSnap.Queued,
		WindowsRun:    winSnap.Running,
	}
}

// SampleSeries runs a trace while recording snapshots every interval,
// returning the series and the final summary.
func (c *Cluster) SampleSeries(trace workload.Trace, interval, horizon time.Duration) ([]Snapshot, metrics.Summary, error) {
	if err := c.ScheduleTrace(trace); err != nil {
		return nil, metrics.Summary{}, err
	}
	var series []Snapshot
	for c.Eng.Now() < horizon {
		next := c.Eng.Now() + interval
		if next > horizon {
			next = horizon
		}
		c.Eng.RunUntil(next)
		series = append(series, c.TakeSnapshot())
		if c.toSubmit == 0 && c.unfinished == 0 && c.SwitchingCount() == 0 {
			break
		}
	}
	if c.Mgr != nil {
		c.Mgr.Stop()
	}
	return series, c.Summary(), nil
}
