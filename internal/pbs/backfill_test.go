package pbs

import (
	"testing"
	"time"

	"repro/internal/simtime"
)

// This file pins the EASY backfill guarantees against the starvation
// bug the old greedy backfill shipped: under a continuous stream of
// narrow jobs, a blocked wide head job must start no later than its
// reservation (shadow) time. scheduleGreedy below is a verbatim
// replica of the old greedy pass, kept here so the starvation it
// causes stays demonstrable.

// scheduleGreedy replicates the pre-EASY greedy backfill: place
// anything that fits, in queue order, with no reservation for the
// blocked head.
func (s *Server) scheduleGreedy() {
	for _, j := range s.QueuedJobs() {
		if !s.schedulable(j) {
			continue
		}
		s.tryPlace(j)
	}
}

// starvationWorkload builds the canonical starvation scenario on a
// 2-node×4-CPU server: a blocker pins node 1 for two hours, a wide
// 2-node job queues behind it, and a narrow 1-CPU job arrives every
// ten minutes for six hours. The wide job's EASY reservation is the
// blocker's projected end: t=2h.
func starvationWorkload(eng *simtime.Engine, s *Server) (wide *Job, narrows *[]*Job) {
	s.Qsub(SubmitRequest{Name: "blocker", Nodes: 1, PPN: 4,
		Runtime: 2 * time.Hour, Walltime: 2 * time.Hour})
	eng.RunUntil(time.Second) // let the blocker start
	wide, _ = s.Qsub(SubmitRequest{Name: "wide", Nodes: 2, PPN: 4,
		Runtime: time.Hour, Walltime: time.Hour})
	narrows = &[]*Job{}
	for i := 0; i < 36; i++ {
		eng.At(90*time.Second+time.Duration(i)*10*time.Minute, func() {
			n, _ := s.Qsub(SubmitRequest{Name: "narrow", Nodes: 1, PPN: 1,
				Runtime: 30 * time.Minute, Walltime: 30 * time.Minute})
			*narrows = append(*narrows, n)
		})
	}
	return wide, narrows
}

const wideReservation = 2 * time.Hour // the blocker's projected end

func TestEASYBackfillBoundsWideJobWait(t *testing.T) {
	eng, s := newTestServer(t, 2)
	s.Backfill = true
	wide, narrows := starvationWorkload(eng, s)
	eng.RunUntil(6 * time.Hour)

	if wide.State != StateRunning && wide.State != StateComplete {
		t.Fatalf("wide job state = %v, want started", wide.State)
	}
	if wide.StartTime > wideReservation {
		t.Fatalf("wide job started at %v, after its %v reservation", wide.StartTime, wideReservation)
	}
	// The run genuinely backfilled: narrow jobs jumped the blocked
	// head without delaying it.
	jumped := 0
	for _, n := range *narrows {
		if n.StartTime > 0 && n.StartTime < wide.StartTime {
			jumped++
		}
	}
	if jumped < 5 {
		t.Fatalf("only %d narrow jobs backfilled ahead of the wide head", jumped)
	}
	eng.Run()
}

// TestEASYRejectsCandidatesThatWouldDelayTheHead drives the scenario
// to just before the reservation: a narrow job whose walltime crosses
// the shadow time must wait even though CPUs are free.
func TestEASYRejectsCandidatesThatWouldDelayTheHead(t *testing.T) {
	eng, s := newTestServer(t, 2)
	s.Backfill = true
	s.Qsub(SubmitRequest{Name: "blocker", Nodes: 1, PPN: 4,
		Runtime: 2 * time.Hour, Walltime: 2 * time.Hour})
	eng.RunUntil(time.Second)
	wide, _ := s.Qsub(SubmitRequest{Name: "wide", Nodes: 2, PPN: 4,
		Runtime: time.Hour, Walltime: time.Hour})
	var late *Job
	eng.At(100*time.Minute, func() {
		// 100m + 30m walltime = 130m > the 120m shadow: starting it
		// would hold a CPU the wide job is booked to use.
		late, _ = s.Qsub(SubmitRequest{Name: "late", Nodes: 1, PPN: 1,
			Runtime: 30 * time.Minute, Walltime: 30 * time.Minute})
	})
	eng.RunUntil(119 * time.Minute)
	if late.State != StateQueued {
		t.Fatalf("late narrow job state = %v, want queued behind the reservation", late.State)
	}
	eng.RunUntil(3 * time.Hour)
	if wide.StartTime != wideReservation {
		t.Fatalf("wide job started at %v, want exactly its %v reservation", wide.StartTime, wideReservation)
	}
	// Once the wide job holds the machine, the late narrow follows it.
	eng.Run()
	if late.State != StateComplete {
		t.Fatalf("late narrow job state = %v", late.State)
	}
}

func TestGreedyBackfillReplicaStarvesWideJob(t *testing.T) {
	eng, s := newTestServer(t, 2)
	s.Backfill = true
	s.schedOverride = s.scheduleGreedy
	wide, narrows := starvationWorkload(eng, s)
	eng.RunUntil(6 * time.Hour)

	// The greedy replica keeps feeding narrow jobs onto the free node:
	// the wide head is still queued past the whole six-hour stream.
	if wide.State != StateQueued {
		t.Fatalf("wide job state = %v, want starved in queue under greedy backfill", wide.State)
	}
	started := 0
	for _, n := range *narrows {
		if n.StartTime > 0 {
			started++
		}
	}
	if started < 20 {
		t.Fatalf("greedy replica only started %d narrow jobs", started)
	}
	eng.Run()
}
