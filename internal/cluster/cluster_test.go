package cluster

import (
	"strings"
	"testing"
	"time"

	"repro/internal/osid"
	"repro/internal/pbs"
	"repro/internal/workload"
)

func newCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func linJob(at time.Duration, nodes int, runtime time.Duration) workload.Job {
	return workload.Job{At: at, App: "DL_POLY", OS: osid.Linux, Owner: "u1",
		Nodes: nodes, PPN: 4, Runtime: runtime}
}

func winJob(at time.Duration, nodes int, runtime time.Duration) workload.Job {
	return workload.Job{At: at, App: "Backburner", OS: osid.Windows, Owner: "u2",
		Nodes: nodes, PPN: 4, Runtime: runtime}
}

func TestProvisioningDefaults(t *testing.T) {
	c := newCluster(t, Config{Mode: HybridV2})
	if len(c.Nodes()) != 16 {
		t.Fatalf("nodes = %d", len(c.Nodes()))
	}
	if c.NodesOn(osid.Linux) != 8 || c.NodesOn(osid.Windows) != 8 {
		t.Fatalf("split = %d/%d", c.NodesOn(osid.Linux), c.NodesOn(osid.Windows))
	}
	// PBS sees 8 available nodes (the Linux ones), WinHPC the other 8.
	if c.PBS.AvailableNodes() != 8 {
		t.Fatalf("pbs nodes = %d", c.PBS.AvailableNodes())
	}
	if c.Win.OnlineNodes() != 8 {
		t.Fatalf("win nodes = %d", c.Win.OnlineNodes())
	}
	if c.PXE == nil {
		t.Fatal("v2 cluster has no PXE service")
	}
	if c.Mgr == nil {
		t.Fatal("hybrid cluster has no controller")
	}
}

func TestV1HasNoPXE(t *testing.T) {
	c := newCluster(t, Config{Mode: HybridV1})
	if c.PXE != nil {
		t.Fatal("v1 cluster has a PXE service")
	}
	// v1 disks carry the FAT control partition.
	fat, err := c.v1FATPartition(c.Nodes()[0].HW)
	if err != nil {
		t.Fatal(err)
	}
	if !fat.HasFile("/controlmenu.lst") {
		t.Fatalf("FAT contents: %v", fat.Files())
	}
}

func TestStaticHasNoController(t *testing.T) {
	c := newCluster(t, Config{Mode: Static})
	if c.Mgr != nil {
		t.Fatal("static cluster has a controller")
	}
}

func TestLinuxJobRunsOnLinuxSide(t *testing.T) {
	c := newCluster(t, Config{Mode: HybridV2})
	sum, err := c.RunTrace(workload.Trace{linJob(0, 2, time.Hour)}, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if sum.JobsCompleted[osid.Linux] != 1 {
		t.Fatalf("completed = %v", sum.JobsCompleted)
	}
	if sum.Switches != 0 {
		t.Fatalf("switches = %d for a fitting job", sum.Switches)
	}
	if sum.MeanWait[osid.Linux] != 0 {
		t.Fatalf("wait = %v", sum.MeanWait[osid.Linux])
	}
}

func TestStuckWindowsQueuePullsLinuxNodes(t *testing.T) {
	// All nodes start in Linux; a Windows job arrives and is stuck
	// until the controller moves nodes across.
	c := newCluster(t, Config{Mode: HybridV2, InitialLinux: 16, Cycle: 5 * time.Minute})
	sum, err := c.RunTrace(workload.Trace{winJob(0, 2, time.Hour)}, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if sum.JobsCompleted[osid.Windows] != 1 {
		t.Fatalf("windows job did not complete: %+v", sum.JobsCompleted)
	}
	if sum.Switches < 2 {
		t.Fatalf("switches = %d, want >= 2", sum.Switches)
	}
	if c.NodesOn(osid.Windows) < 2 {
		t.Fatalf("windows nodes = %d", c.NodesOn(osid.Windows))
	}
	// The wait includes at least one controller cycle plus a boot.
	if sum.MeanWait[osid.Windows] < 5*time.Minute {
		t.Fatalf("windows wait = %v, implausibly low", sum.MeanWait[osid.Windows])
	}
}

func TestStuckLinuxQueuePullsWindowsNodes(t *testing.T) {
	c := newCluster(t, Config{Mode: HybridV2, InitialLinux: 1, Cycle: 5 * time.Minute})
	// Linux job needs 4 nodes; only 1 Linux node exists.
	sum, err := c.RunTrace(workload.Trace{linJob(0, 4, time.Hour)}, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if sum.JobsCompleted[osid.Linux] != 1 {
		t.Fatalf("linux job did not complete: %+v", sum.JobsCompleted)
	}
	if c.NodesOn(osid.Linux) < 4 {
		t.Fatalf("linux nodes = %d", c.NodesOn(osid.Linux))
	}
}

func TestV1SwitchGoesThroughFATControlFile(t *testing.T) {
	c := newCluster(t, Config{Mode: HybridV1, InitialLinux: 16, Cycle: 5 * time.Minute})
	sum, err := c.RunTrace(workload.Trace{winJob(0, 1, 30*time.Minute)}, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if sum.JobsCompleted[osid.Windows] != 1 {
		t.Fatalf("completed = %+v", sum.JobsCompleted)
	}
	// v1 writes one FAT control file per switched node.
	if c.ControlActions() == 0 {
		t.Fatal("no control actions recorded")
	}
	// The switched node's FAT file now points at Windows.
	var switched *Node
	for _, n := range c.Nodes() {
		if n.OS == osid.Windows {
			switched = n
			break
		}
	}
	if switched == nil {
		t.Fatal("no node on windows side")
	}
	fat, _ := c.v1FATPartition(switched.HW)
	data, err := fat.ReadFile("/controlmenu.lst")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Win_Server_2K8_R2-windows") {
		t.Fatalf("control file:\n%s", data)
	}
}

func TestV2FlagSharedAcrossBatch(t *testing.T) {
	// One stuck Windows job needing several nodes: v2 sets the flag
	// once, not once per node.
	c := newCluster(t, Config{Mode: HybridV2, InitialLinux: 16, Cycle: 5 * time.Minute})
	if _, err := c.RunTrace(workload.Trace{winJob(0, 3, 30*time.Minute)}, 24*time.Hour); err != nil {
		t.Fatal(err)
	}
	if c.PXE.Flag() != osid.Windows {
		t.Fatalf("flag = %v", c.PXE.Flag())
	}
	sum := c.Summary()
	if sum.Switches < 3 {
		t.Fatalf("switches = %d", sum.Switches)
	}
	if c.ControlActions() >= sum.Switches {
		t.Fatalf("v2 control actions (%d) should be < switches (%d)", c.ControlActions(), sum.Switches)
	}
}

func TestStaticClusterNeverSwitches(t *testing.T) {
	c := newCluster(t, Config{Mode: Static, InitialLinux: 8})
	trace := workload.Trace{winJob(0, 2, time.Hour), linJob(time.Minute, 2, time.Hour)}
	sum, err := c.RunTrace(trace, 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Switches != 0 || c.ControlActions() != 0 {
		t.Fatalf("static switched: %d/%d", sum.Switches, c.ControlActions())
	}
	if sum.JobsCompleted[osid.Windows] != 1 || sum.JobsCompleted[osid.Linux] != 1 {
		t.Fatalf("completed = %v", sum.JobsCompleted)
	}
}

func TestStaticClusterStrandsOversizedJobs(t *testing.T) {
	// A Windows job needing more nodes than the static Windows side
	// owns can never run — the poor-utilisation story of §I.
	c := newCluster(t, Config{Mode: Static, InitialLinux: 8})
	sum, err := c.RunTrace(workload.Trace{winJob(0, 12, time.Hour)}, 8*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if sum.JobsCompleted[osid.Windows] != 0 {
		t.Fatal("oversized job completed on a static split?")
	}
	// The same job on a hybrid completes.
	h := newCluster(t, Config{Mode: HybridV2, InitialLinux: 8, Cycle: 5 * time.Minute})
	sum, err = h.RunTrace(workload.Trace{winJob(0, 12, time.Hour)}, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if sum.JobsCompleted[osid.Windows] != 1 {
		t.Fatalf("hybrid failed the oversized job: %+v", sum.JobsCompleted)
	}
}

func TestMonoStableReturnsNodesHome(t *testing.T) {
	c := newCluster(t, Config{Mode: MonoStable, InitialLinux: 16, Cycle: 5 * time.Minute})
	sum, err := c.RunTrace(workload.Trace{winJob(0, 1, 30*time.Minute)}, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if sum.JobsCompleted[osid.Windows] != 1 {
		t.Fatalf("completed = %v", sum.JobsCompleted)
	}
	if c.NodesOn(osid.Linux) != 16 {
		t.Fatalf("nodes did not return home: linux=%d windows=%d",
			c.NodesOn(osid.Linux), c.NodesOn(osid.Windows))
	}
	// Round trip = at least 2 switches (out and back).
	if sum.Switches < 2 {
		t.Fatalf("switches = %d", sum.Switches)
	}
}

func TestBiStableLeavesNodesWarm(t *testing.T) {
	c := newCluster(t, Config{Mode: HybridV2, InitialLinux: 16, Cycle: 5 * time.Minute})
	if _, err := c.RunTrace(workload.Trace{winJob(0, 1, 30*time.Minute)}, 24*time.Hour); err != nil {
		t.Fatal(err)
	}
	if c.NodesOn(osid.Windows) == 0 {
		t.Fatal("bi-stable node was pulled back without demand")
	}
}

func TestRunningJobsProtectedFromSwitch(t *testing.T) {
	// All Linux nodes busy; a Windows job gets stuck. Switch jobs must
	// queue behind the running work, never kill it.
	c := newCluster(t, Config{Mode: HybridV2, InitialLinux: 16, Cycle: 5 * time.Minute})
	trace := workload.Trace{
		linJob(0, 8, 2*time.Hour),
		{At: 0, App: "LAMMPS", OS: osid.Linux, Owner: "u3", Nodes: 8, PPN: 4, Runtime: 2 * time.Hour},
		winJob(time.Minute, 1, 30*time.Minute),
	}
	sum, err := c.RunTrace(trace, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if sum.JobsCompleted[osid.Linux] != 2 {
		t.Fatalf("linux jobs harmed: %+v", sum.JobsCompleted)
	}
	if sum.JobsCompleted[osid.Windows] != 1 {
		t.Fatalf("windows job lost: %+v", sum.JobsCompleted)
	}
	// The windows job could only start after Linux work finished
	// (2h) plus switch latency.
	if sum.MeanWait[osid.Windows] < 2*time.Hour {
		t.Fatalf("windows wait = %v, want > 2h (protection)", sum.MeanWait[osid.Windows])
	}
}

func TestSwitchLatencyUnderFiveMinutes(t *testing.T) {
	c := newCluster(t, Config{Mode: HybridV2, InitialLinux: 16, Cycle: 5 * time.Minute})
	if _, err := c.RunTrace(workload.Trace{winJob(0, 2, 30*time.Minute)}, 24*time.Hour); err != nil {
		t.Fatal(err)
	}
	for _, sw := range c.Rec.Switches() {
		if sw.Duration() > 5*time.Minute {
			t.Fatalf("switch %s took %v > 5m", sw.Node, sw.Duration())
		}
		if !sw.OK {
			t.Fatalf("switch %s landed in the wrong OS", sw.Node)
		}
	}
}

func TestForceSwitch(t *testing.T) {
	c := newCluster(t, Config{Mode: HybridV2, InitialLinux: 16})
	if err := c.ForceSwitch("enode01", osid.Windows); err != nil {
		t.Fatal(err)
	}
	if err := c.ForceSwitch("enode01", osid.Windows); err == nil {
		t.Fatal("double switch accepted")
	}
	if err := c.ForceSwitch("ghost", osid.Windows); err == nil {
		t.Fatal("unknown node accepted")
	}
	c.Eng.RunFor(time.Hour)
	n := c.byName["enode01"]
	if n.OS != osid.Windows {
		t.Fatalf("node OS = %v", n.OS)
	}
	if c.Win.OnlineNodes() != 1 {
		t.Fatalf("win online = %d", c.Win.OnlineNodes())
	}
	if c.PBS.AvailableNodes() != 15 {
		t.Fatalf("pbs available = %d", c.PBS.AvailableNodes())
	}
}

func TestBrokenBootMarksNode(t *testing.T) {
	c := newCluster(t, Config{Mode: HybridV1, InitialLinux: 16})
	// Sabotage enode01: delete the Windows boot file so a switch to
	// Windows fails in the chainloader.
	n := c.byName["enode01"]
	winPart, _ := n.HW.Disk.Partition(1)
	if err := winPart.RemoveFile("/bootmgr"); err != nil {
		t.Fatal(err)
	}
	if err := c.ForceSwitch("enode01", osid.Windows); err != nil {
		t.Fatal(err)
	}
	c.Eng.RunFor(time.Hour)
	if !n.Broken {
		t.Fatal("node not marked broken")
	}
	if c.BrokenCount() != 1 {
		t.Fatalf("broken = %d", c.BrokenCount())
	}
	sw := c.Rec.Switches()
	if len(sw) != 1 || sw[0].OK {
		t.Fatalf("switch records = %+v", sw)
	}
}

func TestSampleSeries(t *testing.T) {
	c := newCluster(t, Config{Mode: HybridV2, InitialLinux: 16, Cycle: 5 * time.Minute})
	trace := workload.Trace{winJob(0, 2, time.Hour)}
	series, sum, err := c.SampleSeries(trace, 10*time.Minute, 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) == 0 {
		t.Fatal("no snapshots")
	}
	if sum.JobsCompleted[osid.Windows] != 1 {
		t.Fatalf("completed = %v", sum.JobsCompleted)
	}
	// Node counts must shift toward Windows somewhere in the series.
	sawWindows := false
	for _, s := range series {
		if s.WindowsNodes > 0 {
			sawWindows = true
		}
		if s.LinuxNodes+s.WindowsNodes+s.Switching+s.Broken != 16 {
			t.Fatalf("node conservation violated: %+v", s)
		}
	}
	if !sawWindows {
		t.Fatal("series never showed windows nodes")
	}
}

func TestSubmitValidation(t *testing.T) {
	c := newCluster(t, Config{Mode: Static})
	if _, err := c.Submit(workload.Job{App: "x", OS: osid.None, Nodes: 1, PPN: 1, Runtime: time.Minute}); err == nil {
		t.Fatal("OS-less job accepted")
	}
}

func TestSmallPPNWindowsJobUsesCoreScheduling(t *testing.T) {
	c := newCluster(t, Config{Mode: Static, InitialLinux: 8})
	j := workload.Job{At: 0, App: "MATLAB", OS: osid.Windows, Owner: "u",
		Nodes: 1, PPN: 2, Runtime: 30 * time.Minute}
	id, err := c.Submit(j)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(id, "W") {
		t.Fatalf("id = %q", id)
	}
	c.Eng.RunFor(time.Hour)
	if c.Unfinished() != 0 {
		t.Fatalf("unfinished = %d", c.Unfinished())
	}
}

func TestModeStrings(t *testing.T) {
	for m, want := range map[Mode]string{
		HybridV1: "hybrid-v1", HybridV2: "hybrid-v2",
		Static: "static-split", MonoStable: "mono-stable", Mode(9): "unknown",
	} {
		if m.String() != want {
			t.Errorf("%d = %q", m, m.String())
		}
	}
}

func TestSwitchJobScriptParsesAsFigure4(t *testing.T) {
	c := newCluster(t, Config{Mode: HybridV1})
	script := c.SwitchJobScript(osid.Windows)
	parsed, err := pbs.ParseScript(script)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Request.Name != "release_1_node" || parsed.Request.Nodes != 1 || parsed.Request.PPN != 4 {
		t.Fatalf("request = %+v", parsed.Request)
	}
	if parsed.Request.Rerun {
		t.Fatal("switch job must not be rerunnable (-r n)")
	}
	if !strings.Contains(script, "bootcontrol.pl /boot/swap/controlmenu.lst windows") {
		t.Fatalf("script:\n%s", script)
	}
}

func TestEventsLogged(t *testing.T) {
	c := newCluster(t, Config{Mode: HybridV2, InitialLinux: 16, Cycle: 5 * time.Minute})
	if _, err := c.RunTrace(workload.Trace{winJob(0, 1, 30*time.Minute)}, 24*time.Hour); err != nil {
		t.Fatal(err)
	}
	var sawFlag, sawSwitch bool
	for _, e := range c.Events() {
		if strings.Contains(e.What, "flag -> windows") {
			sawFlag = true
		}
		if strings.Contains(e.What, "up in windows") {
			sawSwitch = true
		}
	}
	if !sawFlag || !sawSwitch {
		t.Fatalf("events missing flag/switch: %+v", c.Events())
	}
}

func TestSwitchLatencyEstimate(t *testing.T) {
	v1 := newCluster(t, Config{Mode: HybridV1})
	v2 := newCluster(t, Config{Mode: HybridV2})
	for _, target := range []osid.OS{osid.Linux, osid.Windows} {
		e1, e2 := v1.SwitchLatencyEstimate(target), v2.SwitchLatencyEstimate(target)
		if e1 > 5*time.Minute || e2 > 5*time.Minute {
			t.Fatalf("estimates exceed 5m: v1=%v v2=%v", e1, e2)
		}
	}
}

// A trace job the scheduler rejects must not vanish from the books:
// the run drains (the job never entered the system) but the failure
// is counted in the summary and fires the SubmitFailed hook.
func TestSubmitFailuresSurfaceInSummary(t *testing.T) {
	// 40 nodes exceed the 16-node machine: Torque rejects at qsub.
	c := newCluster(t, Config{Mode: HybridV2, InitialLinux: 16, Cycle: 5 * time.Minute})
	var hooked []string
	c.AddHooks(Hooks{SubmitFailed: func(j workload.Job, err error) {
		if err == nil {
			t.Error("SubmitFailed hook fired without an error")
		}
		hooked = append(hooked, j.App)
	}})
	trace := workload.Trace{
		linJob(0, 2, time.Hour),
		{At: time.Minute, App: "LAMMPS", OS: osid.Linux, Owner: "u", Nodes: 40, PPN: 4, Runtime: time.Hour},
	}
	sum, err := c.RunTrace(trace, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if sum.SubmitFailures != 1 {
		t.Fatalf("SubmitFailures = %d, want 1", sum.SubmitFailures)
	}
	if len(hooked) != 1 || hooked[0] != "LAMMPS" {
		t.Fatalf("hook saw %v", hooked)
	}
	if sum.JobsCompleted[osid.Linux] != 1 {
		t.Fatalf("completed = %v", sum.JobsCompleted)
	}
	if c.Unfinished() != 0 || c.PendingSubmissions() != 0 {
		t.Fatalf("accounting dirty: unfinished=%d pending=%d", c.Unfinished(), c.PendingSubmissions())
	}
}

// The lifecycle hooks observe completions and switch landings as they
// happen on the virtual clock — the event-driven alternative to
// polling the summary.
func TestHooksObserveCompletionsAndSwitches(t *testing.T) {
	c := newCluster(t, Config{Mode: HybridV2, InitialLinux: 16, Cycle: 5 * time.Minute})
	var completions, landings int
	var landedOS osid.OS
	c.AddHooks(Hooks{
		JobCompleted: func(id string, completed bool) {
			if !completed {
				t.Errorf("job %s reported incomplete", id)
			}
			completions++
		},
		SwitchLanded: func(node string, os osid.OS, ok bool) {
			if !ok {
				t.Errorf("switch on %s reported failed", node)
			}
			landings++
			landedOS = os
		},
	})
	sum, err := c.RunTrace(workload.Trace{winJob(0, 2, 30*time.Minute)}, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if completions != 1 {
		t.Fatalf("completion hooks = %d, want 1", completions)
	}
	if landings != sum.Switches {
		t.Fatalf("landing hooks = %d, switches = %d", landings, sum.Switches)
	}
	if landedOS != osid.Windows {
		t.Fatalf("last landing OS = %v", landedOS)
	}
}

// A non-rerunnable PBS job that dies with its node must not count as
// completed anywhere: the completion hook reports completed=false and
// the summary books zero completions. (A previous revision checked
// only the walltime kill, so a job that died mid-run from node loss
// counted as successfully completed in every utilisation/completion
// metric.)
func TestInterruptedNonRerunnableJobNotCounted(t *testing.T) {
	c := newCluster(t, Config{Mode: Static, Nodes: 2, InitialLinux: 2})
	var sawCompleted *bool
	c.AddHooks(Hooks{JobCompleted: func(id string, completed bool) {
		sawCompleted = &completed
	}})
	j, err := c.PBS.Qsub(pbs.SubmitRequest{Name: "fragile", Owner: "u@x",
		Nodes: 1, PPN: 4, Runtime: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	c.track(j.ID, workload.Job{App: "fragile", OS: osid.Linux, Owner: "u",
		Nodes: 1, PPN: 4, Runtime: time.Hour})
	c.Eng.RunUntil(time.Minute)
	if j.State != pbs.StateRunning {
		t.Fatalf("job state = %v, want running", j.State)
	}
	if err := c.PBS.SetNodeAvailable(j.ExecHost[0].Node, false); err != nil {
		t.Fatal(err)
	}
	c.Eng.RunUntil(2 * time.Minute)
	if sawCompleted == nil {
		t.Fatal("completion hook never fired for the dead job")
	}
	if *sawCompleted {
		t.Fatal("job that died with its node reported completed=true")
	}
	sum := c.Summary()
	if sum.JobsSubmitted[osid.Linux] != 1 || sum.JobsCompleted[osid.Linux] != 0 {
		t.Fatalf("submitted/completed = %d/%d, want 1/0",
			sum.JobsSubmitted[osid.Linux], sum.JobsCompleted[osid.Linux])
	}
}

// A rerunnable workload job requeued by node loss keeps first-start
// wait semantics end to end: the recorder books the original start,
// counts the restart, and still reports the job completed.
func TestRequeuedJobKeepsFirstStartAccounting(t *testing.T) {
	c := newCluster(t, Config{Mode: Static, Nodes: 2, InitialLinux: 2})
	id, err := c.Submit(workload.Job{App: "DL_POLY", OS: osid.Linux, Owner: "u",
		Nodes: 1, PPN: 4, Runtime: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	c.Eng.RunUntil(10 * time.Minute)
	j, err := c.PBS.Job(id)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.PBS.SetNodeAvailable(j.ExecHost[0].Node, false); err != nil {
		t.Fatal(err)
	}
	c.Eng.Run()
	recs := c.Rec.Jobs()
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
	rec := recs[0]
	if !rec.Completed {
		t.Fatal("requeued job did not complete")
	}
	if rec.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1", rec.Restarts)
	}
	// First start was at submission (t=0, empty cluster), not the 10m
	// restart: the wait must not deflate to the last attempt.
	if rec.Started >= 10*time.Minute {
		t.Fatalf("recorded start %v is the restart, want the first start", rec.Started)
	}
}

// A negative InitialLinux pins every node to Windows — the only way
// to express a Windows-only static split.
func TestNegativeInitialLinuxMeansAllWindows(t *testing.T) {
	c := newCluster(t, Config{Mode: Static, Nodes: 4, InitialLinux: -1})
	if c.NodesOn(osid.Windows) != 4 || c.NodesOn(osid.Linux) != 0 {
		t.Fatalf("split = %d linux / %d windows",
			c.NodesOn(osid.Linux), c.NodesOn(osid.Windows))
	}
}
