package hardware

import (
	"fmt"
	"strings"

	"repro/internal/osid"
)

// MAC is a 6-byte Ethernet hardware address. PXE menu files in
// dualboot-oscar v2 are named after it.
type MAC [6]byte

// String renders the address in the colon-separated form used for
// logging ("00:16:3e:00:00:01").
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// MenuFileName renders the address the way GRUB4DOS names PXE menu
// files under /tftpboot/menu.lst/: dash-separated, upper-case, with a
// leading "01-" ARP hardware type prefix.
func (m MAC) MenuFileName() string {
	return fmt.Sprintf("01-%02X-%02X-%02X-%02X-%02X-%02X", m[0], m[1], m[2], m[3], m[4], m[5])
}

// ParseMAC accepts colon- or dash-separated addresses, with or without
// the "01-" PXE prefix, case-insensitive.
func ParseMAC(s string) (MAC, error) {
	var m MAC
	s = strings.TrimSpace(s)
	norm := strings.ReplaceAll(strings.ToLower(s), "-", ":")
	parts := strings.Split(norm, ":")
	if len(parts) == 7 && parts[0] == "01" {
		parts = parts[1:]
	}
	if len(parts) != 6 {
		return m, fmt.Errorf("hardware: malformed MAC %q", s)
	}
	for i, p := range parts {
		var b int
		if _, err := fmt.Sscanf(p, "%x", &b); err != nil || b < 0 || b > 255 || len(p) != 2 {
			return m, fmt.Errorf("hardware: malformed MAC octet %q in %q", p, s)
		}
		m[i] = byte(b)
	}
	return m, nil
}

// MACForIndex returns a deterministic locally-administered address for
// compute node i, so simulations are reproducible.
func MACForIndex(i int) MAC {
	return MAC{0x02, 0x00, 0x5e, byte(i >> 16), byte(i >> 8), byte(i)}
}

// PowerState describes a node's power/boot lifecycle.
type PowerState uint8

const (
	PowerOff PowerState = iota
	PowerBooting
	PowerOn
	PowerShuttingDown
)

// String names the power state.
func (p PowerState) String() string {
	switch p {
	case PowerBooting:
		return "booting"
	case PowerOn:
		return "on"
	case PowerShuttingDown:
		return "shutting-down"
	default:
		return "off"
	}
}

// BootSource is an entry in the BIOS boot order.
type BootSource uint8

const (
	BootFromDisk BootSource = iota
	BootFromPXE
)

// String names the boot source.
func (b BootSource) String() string {
	if b == BootFromPXE {
		return "pxe"
	}
	return "disk"
}

// Node is one commodity compute PC: the paper's machines were re-used
// laboratory computers with Intel Core 2 Quad Q8200 processors (4
// cores) and no hardware virtualisation support — hence the whole
// dual-boot design.
type Node struct {
	Name      string
	Addr      MAC
	Cores     int
	MemMB     int64
	Disk      *Disk
	BootOrder []BootSource

	Power    PowerState
	BootedOS osid.OS
}

// NodeSpec configures NewNode.
type NodeSpec struct {
	Name       string
	Index      int // used to derive a deterministic MAC
	Cores      int
	MemMB      int64
	DiskSizeMB int64
	PXEFirst   bool // v2 nodes boot PXE before disk
}

// NewNode builds a powered-off node. Defaults follow the Eridani
// cluster: 4 cores, 8 GB RAM, 250 GB disk.
func NewNode(spec NodeSpec) *Node {
	if spec.Cores <= 0 {
		spec.Cores = 4
	}
	if spec.MemMB <= 0 {
		spec.MemMB = 8 * 1024
	}
	if spec.DiskSizeMB <= 0 {
		spec.DiskSizeMB = 250 * 1000
	}
	if spec.Name == "" {
		spec.Name = fmt.Sprintf("enode%02d", spec.Index)
	}
	order := []BootSource{BootFromDisk}
	if spec.PXEFirst {
		order = []BootSource{BootFromPXE, BootFromDisk}
	}
	return &Node{
		Name:      spec.Name,
		Addr:      MACForIndex(spec.Index),
		Cores:     spec.Cores,
		MemMB:     spec.MemMB,
		Disk:      NewDisk(spec.DiskSizeMB),
		BootOrder: order,
		Power:     PowerOff,
		BootedOS:  osid.None,
	}
}

// Running reports whether the node is up with an OS.
func (n *Node) Running() bool { return n.Power == PowerOn && n.BootedOS.Valid() }

// String summarises the node.
func (n *Node) String() string {
	return fmt.Sprintf("%s(%s, %d cores, %s, %s)", n.Name, n.Addr, n.Cores, n.Power, n.BootedOS)
}
