package osid

import "testing"

func TestString(t *testing.T) {
	cases := []struct {
		os   OS
		want string
	}{
		{None, "none"},
		{Linux, "linux"},
		{Windows, "windows"},
		{OS(99), "none"},
	}
	for _, c := range cases {
		if got := c.os.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", c.os, got, c.want)
		}
	}
}

func TestOther(t *testing.T) {
	if Linux.Other() != Windows {
		t.Error("Linux.Other() != Windows")
	}
	if Windows.Other() != Linux {
		t.Error("Windows.Other() != Linux")
	}
	if None.Other() != None {
		t.Error("None.Other() != None")
	}
}

func TestValid(t *testing.T) {
	if !Linux.Valid() || !Windows.Valid() {
		t.Error("Linux/Windows should be valid")
	}
	if None.Valid() {
		t.Error("None should not be valid")
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		in      string
		want    OS
		wantErr bool
	}{
		{"linux", Linux, false},
		{"LINUX", Linux, false},
		{"l", Linux, false},
		{"lin", Linux, false},
		{"windows", Windows, false},
		{"Win", Windows, false},
		{"W", Windows, false},
		{" windows ", Windows, false},
		{"none", None, false},
		{"", None, false},
		{"solaris", None, true},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("Parse(%q) err = %v, wantErr %v", c.in, err, c.wantErr)
			continue
		}
		if got != c.want {
			t.Errorf("Parse(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestFromTitleSuffix(t *testing.T) {
	cases := []struct {
		title string
		want  OS
	}{
		{"CentOS-5.4_Oscar-5b2-linux", Linux},
		{"Win_Server_2K8_R2-windows", Windows},
		{"changing to control file", None},
		{"something-LINUX", Linux},
		{"  x-windows  ", Windows},
		{"", None},
	}
	for _, c := range cases {
		if got := FromTitleSuffix(c.title); got != c.want {
			t.Errorf("FromTitleSuffix(%q) = %v, want %v", c.title, got, c.want)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	for _, o := range []OS{None, Linux, Windows} {
		got, err := Parse(o.String())
		if err != nil || got != o {
			t.Errorf("Parse(%v.String()) = %v, %v", o, got, err)
		}
	}
}
