package sweep

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/cluster"
)

// ParseGridSpec builds a Grid from the qsim CLI's compact grid
// notation: semicolon-separated key=comma-list pairs, e.g.
//
//	modes=hybrid-v2,static-split;nodes=8,16;winfracs=0.25,0.5;failrates=0,0.05
//
// Key dispatch, validation and help text all derive from the axis
// registry (see registry.go); the table below is generated from it and
// TestSpecKeyDocMatchesPackageDoc fails if the two drift apart:
//
//	modes          cluster organisations (hybrid-v1|hybrid-v2|static-split|mono-stable)
//	ctlpolicies    controller policies (fcfs|threshold|hysteresis|predictive|fairshare)
//	schedpolicies  head-scheduler queue disciplines (fcfs|backfill)
//	nodes          compute-node counts
//	rates          Poisson arrival rates, jobs/hour
//	winfracs       Windows demand shares (0..1)
//	hours          submission window in hours (single value)
//	traces         trace kinds, crossed with rates/winfracs (poisson|phased|matlabga|diurnal|burst|mmpp|users|swf:<file>)
//	swfmaxjobs     SWF replay: keep only the first N records (single value; 0 = all)
//	swfhours       SWF replay: keep only the first window of submissions, hours (single value; 0 = all)
//	swfnodes       SWF replay: rescale the log's widest job to N nodes (single value; 0 = keep)
//	swftime        SWF replay: runtime field choice (single value) (used|requested)
//	mmppburst      MMPP burst-state rate multiplier (single value; default 10)
//	mmppdwell      MMPP mean state dwell, Go duration (single value; default 1h)
//	users          user-population size (single value; default 500)
//	think          user-population mean think time, Go duration (single value; default 2h)
//	failrates      per-boot failure probabilities (0..1)
//	topologies     fabric presets (single|campus|twin-hybrid)
//	routings       campus routing policies (least-loaded|round-robin|hybrid-last)
//	switchlat      per-cell OS switch-latency targets, Go durations (0s = stock model)
//	seed           base seed (single value)
//	cycle          controller cycle, Go duration (single value)
//	horizon        per-cell virtual-time bound, Go duration (single value; default: trace span + 48h)
//
// Unknown and repeated keys are errors; omitted keys take the Grid
// defaults. "policies" is still accepted as a deprecated alias for
// "ctlpolicies" — callers that surface diagnostics should use
// ParseGridSpecWarn and relay its deprecation warnings.
func ParseGridSpec(spec string) (Grid, error) {
	g, _, err := ParseGridSpecWarn(spec)
	return g, err
}

// ParseGridSpecWarn is ParseGridSpec plus the parser's non-fatal
// diagnostics: one warning line per deprecated alias used (the qsim
// CLI prints them to stderr).
func ParseGridSpecWarn(spec string) (Grid, []string, error) {
	var g Grid
	var warnings []string
	ps := newSpecState(&g)
	seen := map[string]bool{}
	for _, field := range strings.Split(spec, ";") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, vals, ok := strings.Cut(field, "=")
		if !ok {
			return g, warnings, fmt.Errorf("sweep: grid field %q is not key=values", field)
		}
		key = strings.TrimSpace(key)
		ax, viaAlias := axisByKey(key)
		if ax == nil {
			return g, warnings, fmt.Errorf("sweep: unknown grid key %q (valid: %s)",
				key, strings.Join(SpecKeys(), " | "))
		}
		if viaAlias {
			warnings = append(warnings,
				fmt.Sprintf("grid key %q is deprecated; use %q", key, ax.Key))
		}
		// A repeated key would silently append to list axes and
		// last-win on scalars; both read as a typo, so reject.
		if seen[ax.Key] {
			return g, warnings, fmt.Errorf("sweep: repeated grid key %q", ax.Key)
		}
		seen[ax.Key] = true
		if ax.Single && strings.Contains(vals, ",") {
			return g, warnings, fmt.Errorf("sweep: grid key %q takes a single value, got %q", ax.Key, vals)
		}
		if err := ax.Parse(ps, vals); err != nil {
			return g, warnings, err
		}
	}
	if err := ps.buildTraces(); err != nil {
		return g, warnings, err
	}
	return g, warnings, nil
}

// GridString renders a grid back to the canonical compact notation, a
// registry-derived inverse of ParseGridSpec: parsing the result yields
// an equivalent grid (same cells, names and seeds). It errors when the
// grid holds something the notation cannot express — custom trace
// builders, bespoke topologies, explicit trace names off the derived
// form, or a non-zero InitialLinux.
func GridString(g Grid) (string, error) {
	if g.InitialLinux != 0 {
		return "", fmt.Errorf("sweep: InitialLinux is not expressible in spec notation")
	}
	var fields []string
	for _, ax := range registry {
		val, err := ax.Format(g)
		if err != nil {
			return "", err
		}
		if val != "" {
			fields = append(fields, ax.Key+"="+val)
		}
	}
	return strings.Join(fields, ";"), nil
}

// ParseTraceKind resolves a trace-shape kind by its String name;
// unknown names error with the valid set.
func ParseTraceKind(name string) (TraceKind, error) {
	for _, k := range allTraceKinds {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("sweep: unknown trace kind %q (valid: %s)", name, strings.Join(TraceKindNames(), " | "))
}

// ParseTraceValue resolves one traces-axis token — a kind name, or
// "swf:<path>" for SWF replay — into a TraceSpec carrying the kind
// (and the log file for swf). The qsim -trace flag shares this parser
// so the CLI and the grid spec can never drift apart.
func ParseTraceValue(tok string) (TraceSpec, error) {
	kp, err := parseTraceToken(tok)
	if err != nil {
		return TraceSpec{}, err
	}
	return TraceSpec{Kind: kp.kind, SWFFile: kp.file}, nil
}

func parseTraceToken(tok string) (traceKindPoint, error) {
	if rest, ok := strings.CutPrefix(tok, "swf:"); ok {
		rest = strings.TrimSpace(rest)
		if rest == "" {
			return traceKindPoint{}, fmt.Errorf("sweep: trace kind swf needs a file: swf:<path>")
		}
		return traceKindPoint{kind: TraceSWF, file: rest}, nil
	}
	k, err := ParseTraceKind(tok)
	if err != nil {
		return traceKindPoint{}, err
	}
	if k == TraceSWF {
		return traceKindPoint{}, fmt.Errorf("sweep: trace kind swf needs a file: swf:<path>")
	}
	return traceKindPoint{kind: k}, nil
}

// ParseMode resolves a cluster mode by its String name. The qsim CLI
// shares this registry so the -mode flag and the sweep grid spec can
// never drift apart; unknown names error with the valid set.
func ParseMode(name string) (cluster.Mode, error) {
	for _, m := range allModes {
		if m.String() == name {
			return m, nil
		}
	}
	return 0, fmt.Errorf("sweep: unknown mode %q (valid: %s)", name, strings.Join(ModeNames(), " | "))
}

func parseFloats(list []string, max float64) ([]float64, error) {
	var out []float64
	for _, v := range list {
		f, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
		if err != nil || f < 0 || (max > 0 && f > max) {
			return nil, fmt.Errorf("bad value %q", v)
		}
		out = append(out, f)
	}
	return out, nil
}
