package workload

import (
	"testing"
	"time"

	"repro/internal/osid"
)

func TestMMPPDeterministicAndBursty(t *testing.T) {
	cfg := MMPPConfig{
		Seed: 7, Duration: 48 * time.Hour, BaseRate: 2,
		BurstFactor: 20, MeanDwell: 2 * time.Hour,
		WindowsFrac: 0.3, MaxNodes: 4,
	}
	a, b := MMPP(cfg), MMPP(cfg)
	if len(a) == 0 {
		t.Fatal("empty trace")
	}
	if len(a) != len(b) {
		t.Fatalf("non-deterministic length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("job %d differs between identical runs", i)
		}
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.Span() > cfg.Duration {
		t.Fatalf("span %v exceeds duration", a.Span())
	}
	// Burstiness: the index of dispersion of hourly arrival counts must
	// exceed 1 by a wide margin — a plain Poisson stream sits at ~1.
	hours := int(cfg.Duration / time.Hour)
	counts := make([]float64, hours)
	for _, j := range a {
		if h := int(j.At / time.Hour); h < hours {
			counts[h]++
		}
	}
	var mean, varsum float64
	for _, c := range counts {
		mean += c
	}
	mean /= float64(hours)
	for _, c := range counts {
		varsum += (c - mean) * (c - mean)
	}
	if iod := varsum / float64(hours) / mean; iod < 2 {
		t.Fatalf("index of dispersion %.2f; MMPP should be far burstier than Poisson (~1)", iod)
	}
}

func TestMMPPDefaultsAndDegenerate(t *testing.T) {
	if tr := MMPP(MMPPConfig{}); tr != nil {
		t.Fatalf("zero config should yield no trace, got %d jobs", len(tr))
	}
	tr := MMPP(MMPPConfig{Seed: 1, Duration: 24 * time.Hour, BaseRate: 4})
	if len(tr) == 0 {
		t.Fatal("defaults produced an empty trace")
	}
}

func TestUserPopulationClosedLoop(t *testing.T) {
	cfg := UserPopulationConfig{
		Seed: 11, Users: 40, Duration: 48 * time.Hour,
		MeanThink: time.Hour, WindowsFrac: 0.4, MaxNodes: 4,
	}
	a, b := UserPopulation(cfg), UserPopulation(cfg)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("job %d differs between identical runs", i)
		}
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	// Closed loop: each user's submissions must be separated by at
	// least the preceding job's runtime — no user has two jobs in
	// flight.
	last := map[string]Job{}
	perUser := map[string]int{}
	for _, j := range a {
		if prev, ok := last[j.Owner]; ok {
			if j.At < prev.At+prev.Runtime {
				t.Fatalf("user %s submitted at %v with a job still running until %v",
					j.Owner, j.At, prev.At+prev.Runtime)
			}
		}
		last[j.Owner] = j
		perUser[j.Owner]++
	}
	if len(perUser) != cfg.Users {
		t.Fatalf("%d distinct users, want %d", len(perUser), cfg.Users)
	}
	if got := a.CountByOS(); got[osid.Windows] == 0 || got[osid.Linux] == 0 {
		t.Fatalf("degenerate OS split: %v", got)
	}
}

// Population size scales offered load: more users, more jobs — and the
// per-user RNG streams mean a prefix of the population submits exactly
// the jobs it would in a bigger population.
func TestUserPopulationScalesWithUsers(t *testing.T) {
	small := UserPopulation(UserPopulationConfig{Seed: 3, Users: 10, Duration: 24 * time.Hour})
	big := UserPopulation(UserPopulationConfig{Seed: 3, Users: 50, Duration: 24 * time.Hour})
	if len(big) <= len(small) {
		t.Fatalf("50 users submitted %d jobs, 10 users %d", len(big), len(small))
	}
	smallJobs := map[Job]int{}
	for _, j := range small {
		smallJobs[j]++
	}
	for _, j := range big {
		if smallJobs[j] > 0 {
			smallJobs[j]--
		}
	}
	for j, n := range smallJobs {
		if n > 0 {
			t.Fatalf("job %+v from the small population missing from the big one", j)
		}
	}
}
