package service

import "sync"

// Event is one notification on a job's progress stream. Types:
// "queued" and "running" mark state transitions, "cell" reports one
// finished cell (Done of Total so far; Cell/Index name it; Err set
// when the cell failed to build or run), and "done"/"failed" are
// terminal. A terminal event always ends the stream.
type Event struct {
	Type   string `json:"type"`
	Job    string `json:"job"`
	Cell   string `json:"cell,omitempty"`
	Index  int    `json:"index"`
	Done   int    `json:"done"`
	Total  int    `json:"total"`
	Cached bool   `json:"cached,omitempty"`
	Err    string `json:"err,omitempty"`
}

func (e Event) terminal() bool { return e.Type == "done" || e.Type == "failed" }

// broadcaster fans job events out to SSE subscribers. Every
// non-terminal event is also appended to the job's in-memory history,
// which new subscribers replay first — subscribing while a job is
// live loses nothing the process has seen. A terminal event ends the
// job's history: it is delivered (or, for a full subscriber, signaled
// by closing the channel) and the history is dropped, so a
// long-running daemon does not accumulate per-cell history for every
// job it ever ran. Subscribers arriving after that — like subscribers
// after a restart — get a terminal event synthesized from the job
// record instead. A resumed job re-emits its checkpointed cells as it
// replays them, so post-crash subscribers watch the full progress
// sequence.
type broadcaster struct {
	mu      sync.Mutex
	history map[string][]Event
	subs    map[string]map[int]chan Event
	nextSub int
}

func newBroadcaster() *broadcaster {
	return &broadcaster{
		history: map[string][]Event{},
		subs:    map[string]map[int]chan Event{},
	}
}

// emit records and fans out one event. Subscriber channels are
// buffered; a subscriber that falls a full buffer behind misses
// intermediate events rather than stalling the job executor. A
// terminal event is never silently lost: it closes every subscriber
// channel, so even a subscriber whose buffer was full finds the end
// of the stream once it drains — the handler then recovers the
// outcome from the job record, which was persisted before the emit.
func (b *broadcaster) emit(e Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if e.terminal() {
		for _, ch := range b.subs[e.Job] {
			select {
			case ch <- e:
			default:
			}
			close(ch)
		}
		delete(b.subs, e.Job)
		delete(b.history, e.Job)
		return
	}
	b.history[e.Job] = append(b.history[e.Job], e)
	for _, ch := range b.subs[e.Job] {
		select {
		case ch <- e:
		default:
		}
	}
}

// subscribe returns the job's history so far plus a live channel for
// what follows. The two are consistent: events emitted after the
// snapshot arrive on the channel.
func (b *broadcaster) subscribe(job string) (replay []Event, ch chan Event, cancel func()) {
	b.mu.Lock()
	defer b.mu.Unlock()
	replay = append([]Event(nil), b.history[job]...)
	ch = make(chan Event, 1024)
	if b.subs[job] == nil {
		b.subs[job] = map[int]chan Event{}
	}
	id := b.nextSub
	b.nextSub++
	b.subs[job][id] = ch
	cancel = func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		delete(b.subs[job], id)
	}
	return replay, ch, cancel
}
