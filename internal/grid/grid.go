// Package grid models the Queensgate Grid (QGG) context the paper
// deploys into: "This hybrid cluster is utilised as part of the
// University of Huddersfield campus grid." Several clusters — hybrid,
// static Linux-only, static Windows-only — share one virtual clock,
// and a campus router places incoming jobs on a member that can serve
// their operating system, balancing by pending demand.
package grid

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/osid"
	"repro/internal/simtime"
	"repro/internal/workload"
)

// RoutingPolicy selects a member for a job.
type RoutingPolicy uint8

const (
	// RouteLeastLoaded picks the capable member with the lowest
	// pending CPU demand per core.
	RouteLeastLoaded RoutingPolicy = iota
	// RouteRoundRobin cycles through capable members.
	RouteRoundRobin
	// RouteHybridLast prefers single-OS members, keeping the flexible
	// hybrid free to absorb overflow (a common campus-grid rule).
	RouteHybridLast
)

// String names the policy.
func (p RoutingPolicy) String() string {
	switch p {
	case RouteRoundRobin:
		return "round-robin"
	case RouteHybridLast:
		return "hybrid-last"
	default:
		return "least-loaded"
	}
}

// Member is one cluster on the grid.
type Member struct {
	Name    string
	Cluster *cluster.Cluster
}

// CanServe reports whether the member can ever run a job on the given
// OS: a static split only serves an OS if it has nodes on that side;
// hybrids serve both.
func (m *Member) CanServe(os osid.OS) bool {
	if !os.Valid() {
		return false
	}
	cfg := m.Cluster.Config()
	if cfg.Mode != cluster.Static {
		return true
	}
	switch os {
	case osid.Linux:
		return cfg.InitialLinux > 0
	case osid.Windows:
		return cfg.Nodes-cfg.InitialLinux > 0
	default:
		return false
	}
}

// pendingPerCore estimates load: queued CPU demand over total cores.
func (m *Member) pendingPerCore(os osid.OS) float64 {
	cfg := m.Cluster.Config()
	cores := cfg.Nodes * cfg.CoresPerNode
	if cores == 0 {
		return 0
	}
	side := m.Cluster.SideInfo(os)
	return float64(side.QueuedCPUs+side.RunningJobs) / float64(cores)
}

// Grid is the campus fabric.
type Grid struct {
	Eng       *simtime.Engine
	members   []*Member
	policy    RoutingPolicy
	rrNext    int
	routed    map[string]int // jobs per member
	dropped   int
	scheduled int // grid-level submissions not yet routed
}

// MemberSpec configures one grid member.
type MemberSpec struct {
	Name   string
	Config cluster.Config
}

// New assembles a grid; all members share the grid's engine.
func New(policy RoutingPolicy, specs []MemberSpec) (*Grid, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("grid: no members")
	}
	g := &Grid{Eng: simtime.NewEngine(), policy: policy, routed: map[string]int{}}
	seen := map[string]bool{}
	for _, spec := range specs {
		if spec.Name == "" {
			return nil, fmt.Errorf("grid: member needs a name")
		}
		if seen[spec.Name] {
			return nil, fmt.Errorf("grid: duplicate member %q", spec.Name)
		}
		seen[spec.Name] = true
		cfg := spec.Config
		cfg.Engine = g.Eng
		cfg.NamePrefix = spec.Name
		c, err := cluster.New(cfg)
		if err != nil {
			return nil, fmt.Errorf("grid: member %s: %w", spec.Name, err)
		}
		g.members = append(g.members, &Member{Name: spec.Name, Cluster: c})
	}
	return g, nil
}

// Members returns the member list.
func (g *Grid) Members() []*Member { return append([]*Member(nil), g.members...) }

// Member finds a member by name.
func (g *Grid) Member(name string) (*Member, bool) {
	for _, m := range g.members {
		if m.Name == name {
			return m, true
		}
	}
	return nil, false
}

// RoutedCounts returns jobs routed per member.
func (g *Grid) RoutedCounts() map[string]int {
	out := make(map[string]int, len(g.routed))
	for k, v := range g.routed {
		out[k] = v
	}
	return out
}

// Dropped returns jobs no member could serve.
func (g *Grid) Dropped() int { return g.dropped }

// Route picks a member for a job and submits it there.
func (g *Grid) Route(j workload.Job) (*Member, error) {
	candidates := g.candidatesFor(j)
	if len(candidates) == 0 {
		g.dropped++
		return nil, fmt.Errorf("grid: no member can serve %s job %q", j.OS, j.App)
	}
	m := g.pick(candidates, j)
	if _, err := m.Cluster.Submit(j); err != nil {
		// Capability said yes but the scheduler refused (e.g. job too
		// wide for the member): try the remaining candidates.
		for _, alt := range candidates {
			if alt == m {
				continue
			}
			if _, err2 := alt.Cluster.Submit(j); err2 == nil {
				g.routed[alt.Name]++
				return alt, nil
			}
		}
		g.dropped++
		return nil, fmt.Errorf("grid: no member accepted %q: %w", j.App, err)
	}
	g.routed[m.Name]++
	return m, nil
}

func (g *Grid) candidatesFor(j workload.Job) []*Member {
	var out []*Member
	for _, m := range g.members {
		if m.CanServe(j.OS) {
			out = append(out, m)
		}
	}
	return out
}

func (g *Grid) pick(candidates []*Member, j workload.Job) *Member {
	switch g.policy {
	case RouteRoundRobin:
		m := candidates[g.rrNext%len(candidates)]
		g.rrNext++
		return m
	case RouteHybridLast:
		var statics []*Member
		for _, m := range candidates {
			if m.Cluster.Config().Mode == cluster.Static {
				statics = append(statics, m)
			}
		}
		if len(statics) > 0 {
			return leastLoaded(statics, j.OS)
		}
		return leastLoaded(candidates, j.OS)
	default:
		return leastLoaded(candidates, j.OS)
	}
}

func leastLoaded(members []*Member, os osid.OS) *Member {
	best := members[0]
	bestLoad := best.pendingPerCore(os)
	for _, m := range members[1:] {
		if load := m.pendingPerCore(os); load < bestLoad {
			best, bestLoad = m, load
		}
	}
	return best
}

// ScheduleTrace arranges routing for every job at its submission time.
func (g *Grid) ScheduleTrace(trace workload.Trace) error {
	if err := trace.Validate(); err != nil {
		return err
	}
	for _, j := range trace {
		j := j
		g.scheduled++
		g.Eng.At(j.At, func() {
			g.scheduled--
			_, _ = g.Route(j) // drops are counted
		})
	}
	return nil
}

// RunUntilDrained advances the shared clock until every member is
// quiescent or the horizon passes.
func (g *Grid) RunUntilDrained(horizon time.Duration) {
	step := 10 * time.Minute
	pendingRoutes := func() bool {
		// Routed submissions are scheduled on the grid's own events;
		// members only learn of them when they fire.
		for _, m := range g.members {
			if m.Cluster.PendingSubmissions() > 0 {
				return true
			}
		}
		return false
	}
	for g.Eng.Now() < horizon {
		busy := g.scheduled > 0 || pendingRoutes()
		for _, m := range g.members {
			if m.Cluster.Unfinished() > 0 || m.Cluster.SwitchingCount() > 0 {
				busy = true
				break
			}
		}
		if !busy {
			break
		}
		next := g.Eng.Now() + step
		if next > horizon {
			next = horizon
		}
		g.Eng.RunUntil(next)
	}
	for _, m := range g.members {
		if m.Cluster.Mgr != nil {
			m.Cluster.Mgr.Stop()
		}
	}
}

// Report summarises every member.
func (g *Grid) Report() string {
	header := []string{"member", "mode", "routed", "util", "done(L)", "done(W)", "switches"}
	var rows [][]string
	for _, m := range g.members {
		s := m.Cluster.Summary()
		rows = append(rows, []string{
			m.Name,
			m.Cluster.Config().Mode.String(),
			fmt.Sprintf("%d", g.routed[m.Name]),
			metrics.Pct(s.Utilisation),
			fmt.Sprintf("%d", s.JobsCompleted[osid.Linux]),
			fmt.Sprintf("%d", s.JobsCompleted[osid.Windows]),
			fmt.Sprintf("%d", s.Switches),
		})
	}
	out := metrics.Table(header, rows)
	if g.dropped > 0 {
		out += fmt.Sprintf("dropped: %d jobs no member could serve\n", g.dropped)
	}
	return out
}
