package detector

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/pbs"
	"repro/internal/simtime"
	"repro/internal/winhpc"
)

func TestEncodeNotStuck(t *testing.T) {
	got := Report{}.Encode()
	// Figure 6, first output: "00000none"
	if got != "00000none" {
		t.Fatalf("Encode = %q, want 00000none", got)
	}
}

func TestEncodeStuckMatchesFigure6(t *testing.T) {
	// Figure 6, third output: "100041191.eridani.qgg.hud.ac.uk"
	r := Report{Stuck: true, NeededCPUs: 4, StuckJobID: "1191.eridani.qgg.hud.ac.uk"}
	if got := r.Encode(); got != "100041191.eridani.qgg.hud.ac.uk" {
		t.Fatalf("Encode = %q", got)
	}
}

func TestParseFigure6Outputs(t *testing.T) {
	r, err := Parse("00000none")
	if err != nil {
		t.Fatal(err)
	}
	if r.Stuck || r.NeededCPUs != 0 || r.StuckJobID != "none" {
		t.Fatalf("r = %+v", r)
	}

	r, err = Parse("100041191.eridani.qgg.hud.ac.uk")
	if err != nil {
		t.Fatal(err)
	}
	if !r.Stuck || r.NeededCPUs != 4 || r.StuckJobID != "1191.eridani.qgg.hud.ac.uk" {
		t.Fatalf("r = %+v", r)
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{"", "1", "10004", "2000Xnone", "1abcdnone", "1-001none"} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded", in)
		}
	}
}

func TestEncodeClampsCPUs(t *testing.T) {
	r := Report{Stuck: true, NeededCPUs: 123456, StuckJobID: "x"}
	if got := r.Encode(); !strings.HasPrefix(got, "19999") {
		t.Fatalf("Encode = %q", got)
	}
	r = Report{Stuck: true, NeededCPUs: -3, StuckJobID: "x"}
	if got := r.Encode(); !strings.HasPrefix(got, "10000") {
		t.Fatalf("Encode = %q", got)
	}
}

func TestEncodeTruncatesLongID(t *testing.T) {
	long := strings.Repeat("j", 100)
	r := Report{Stuck: true, NeededCPUs: 4, StuckJobID: long}
	enc := r.Encode()
	if len(enc) != 5+63 {
		t.Fatalf("len = %d, want 68", len(enc))
	}
	back, err := Parse(enc)
	if err != nil {
		t.Fatal(err)
	}
	if back.StuckJobID != long[:63] {
		t.Fatalf("id = %q", back.StuckJobID)
	}
}

// Property: Encode→Parse round-trips any report with in-range fields.
func TestQuickRoundTrip(t *testing.T) {
	f := func(stuck bool, cpus uint16, idBytes []byte) bool {
		id := strings.Map(func(r rune) rune {
			if r < 33 || r > 126 {
				return 'x'
			}
			return r
		}, string(idBytes))
		if len(id) > 63 {
			id = id[:63]
		}
		if id == "" {
			id = "none"
		}
		r := Report{Stuck: stuck, NeededCPUs: int(cpus % 10000), StuckJobID: id}
		back, err := Parse(r.Encode())
		return err == nil && back == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func newPBS(t *testing.T) (*simtime.Engine, *pbs.Server, *PBSDetector) {
	t.Helper()
	eng := simtime.NewEngine()
	s := pbs.NewServer(eng, "eridani.qgg.hud.ac.uk")
	for _, n := range []string{"enode01", "enode02"} {
		if _, err := s.AddNode(n, 4, true); err != nil {
			t.Fatal(err)
		}
	}
	return eng, s, NewPBSDetector(s)
}

func TestPBSDetectorOtherState(t *testing.T) {
	_, _, d := newPBS(t)
	rep, err := d.Detect()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stuck || rep.Encode() != "00000none" {
		t.Fatalf("rep = %+v", rep)
	}
	desc, err := d.Describe()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"00000none", "Other state", "R=0 nR=0"} {
		if !strings.Contains(desc, want) {
			t.Errorf("describe missing %q:\n%s", want, desc)
		}
	}
}

func TestPBSDetectorRunningNoQueue(t *testing.T) {
	eng, s, d := newPBS(t)
	s.Qsub(pbs.SubmitRequest{Name: "sleep", Owner: "sliang@eridani.qgg.hud.ac.uk",
		Nodes: 1, PPN: 4, Runtime: time.Hour})
	eng.RunUntil(time.Second)
	rep, err := d.Detect()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stuck {
		t.Fatalf("rep = %+v", rep)
	}
	desc, _ := d.Describe()
	for _, want := range []string{"00000none", "Job running, no queuing.", "R=1 nR=0",
		"1.eridani.qgg.hud.ac.uk", "Job_Name=sleep", "state=R"} {
		if !strings.Contains(desc, want) {
			t.Errorf("describe missing %q:\n%s", want, desc)
		}
	}
}

func TestPBSDetectorStuck(t *testing.T) {
	eng, s, d := newPBS(t)
	// Both nodes are booted into Windows (down on the PBS side), so a
	// feasible job wedges the queue with nothing running — the exact
	// situation the dual-boot controller exists to resolve.
	s.SetNodeAvailable("enode01", false)
	s.SetNodeAvailable("enode02", false)
	s.Qsub(pbs.SubmitRequest{Name: "big", Nodes: 2, PPN: 4, Runtime: time.Hour})
	eng.RunUntil(time.Second)
	rep, err := d.Detect()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Stuck || rep.NeededCPUs != 8 {
		t.Fatalf("rep = %+v", rep)
	}
	if rep.StuckJobID != "1.eridani.qgg.hud.ac.uk" {
		t.Fatalf("id = %q", rep.StuckJobID)
	}
	desc, _ := d.Describe()
	for _, want := range []string{"Queue stuck", "R=0 nR=1"} {
		if !strings.Contains(desc, want) {
			t.Errorf("describe missing %q:\n%s", want, desc)
		}
	}
}

func TestPBSDetectorRunningAndQueuedNotStuck(t *testing.T) {
	eng, s, d := newPBS(t)
	s.Qsub(pbs.SubmitRequest{Name: "a", Nodes: 2, PPN: 4, Runtime: time.Hour})
	s.Qsub(pbs.SubmitRequest{Name: "b", Nodes: 1, PPN: 4, Runtime: time.Hour})
	eng.RunUntil(time.Second)
	rep, _ := d.Detect()
	if rep.Stuck {
		t.Fatalf("busy cluster misreported stuck: %+v", rep)
	}
	desc, _ := d.Describe()
	if !strings.Contains(desc, "Job running, jobs queuing.") {
		t.Errorf("describe:\n%s", desc)
	}
}

func TestPBSDetectorScrapesTextNotInternals(t *testing.T) {
	// Point the detector at canned Figure-6-era text to prove it is a
	// pure text scraper.
	d := &PBSDetector{
		QstatF: func() string {
			return "Job Id: 1191.eridani.qgg.hud.ac.uk\n    Job_Name = dlpoly\n    job_state = Q\n    Resource_List.nodes = 1:ppn=4\n"
		},
		PBSNodes: func() string { return "" },
	}
	rep, err := d.Detect()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Encode() != "100041191.eridani.qgg.hud.ac.uk" {
		t.Fatalf("wire = %q", rep.Encode())
	}
}

func TestPBSDetectorParseError(t *testing.T) {
	d := &PBSDetector{
		QstatF:   func() string { return "    orphan = line\n" },
		PBSNodes: func() string { return "" },
	}
	if _, err := d.Detect(); err == nil {
		t.Fatal("parse error not propagated")
	}
	if _, err := d.Describe(); err == nil {
		t.Fatal("describe error not propagated")
	}
}

func newWin(t *testing.T) (*simtime.Engine, *winhpc.Scheduler, *WinHPCDetector) {
	t.Helper()
	eng := simtime.NewEngine()
	s := winhpc.NewScheduler(eng, "WINHEAD")
	for _, n := range []string{"ENODE01", "ENODE02"} {
		if _, err := s.AddNode(n, 4, true); err != nil {
			t.Fatal(err)
		}
	}
	return eng, s, NewWinHPCDetector(s)
}

func TestWinDetectorStates(t *testing.T) {
	eng, s, d := newWin(t)
	rep, err := d.Detect()
	if err != nil || rep.Stuck {
		t.Fatalf("empty: %+v, %v", rep, err)
	}

	// Both nodes rebooted into Linux: feasible work wedges the queue.
	s.SetNodeOnline("ENODE01", false)
	s.SetNodeOnline("ENODE02", false)
	s.SubmitJob(winhpc.JobSpec{Name: "backburner", Unit: winhpc.UnitNode, Count: 2, Runtime: time.Hour})
	eng.RunUntil(time.Second)
	rep, err = d.Detect()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Stuck || rep.NeededCPUs != 8 {
		t.Fatalf("stuck rep = %+v", rep)
	}
	if !strings.HasSuffix(rep.StuckJobID, ".WINHEAD") {
		t.Fatalf("id = %q", rep.StuckJobID)
	}
	if rep.Encode()[:5] != "10008" {
		t.Fatalf("wire = %q", rep.Encode())
	}
}

func TestWinDetectorDescribe(t *testing.T) {
	eng, s, d := newWin(t)
	s.SubmitJob(winhpc.JobSpec{Name: "matlab", Unit: winhpc.UnitCore, Count: 2, Runtime: time.Hour})
	eng.RunUntil(time.Second)
	desc, err := d.Describe()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"00000none", "Job running, no queuing.", "R=1 nR=0", "Job_Name=matlab", "state=Running"} {
		if !strings.Contains(desc, want) {
			t.Errorf("describe missing %q:\n%s", want, desc)
		}
	}
}

func TestDetectorsShareWireFormat(t *testing.T) {
	// Both sides stuck with the same demand must produce wire strings
	// that parse to equivalent reports (modulo the job-ID namespace).
	engP, sp, dp := newPBS(t)
	sp.SetNodeAvailable("enode01", false)
	sp.SetNodeAvailable("enode02", false)
	sp.Qsub(pbs.SubmitRequest{Name: "x", Nodes: 2, PPN: 4, Runtime: time.Hour})
	engP.RunUntil(time.Second)
	engW, sw, dw := newWin(t)
	sw.SetNodeOnline("ENODE01", false)
	sw.SetNodeOnline("ENODE02", false)
	sw.SubmitJob(winhpc.JobSpec{Name: "x", Unit: winhpc.UnitNode, Count: 2, Runtime: time.Hour})
	engW.RunUntil(time.Second)

	rp, err := dp.Detect()
	if err != nil {
		t.Fatal(err)
	}
	rw, err := dw.Detect()
	if err != nil {
		t.Fatal(err)
	}
	pp, _ := Parse(rp.Encode())
	pw, _ := Parse(rw.Encode())
	if !pp.Stuck || !pw.Stuck || pp.NeededCPUs != pw.NeededCPUs {
		t.Fatalf("pbs=%+v win=%+v", pp, pw)
	}
}
