// Package analysis is simlint: the repo's determinism-lint suite. It
// statically enforces the reproducibility contract everything else
// here depends on — byte-identical sweep CSVs at any worker count,
// EventsRun bench gates, golden spec replays — by banning the three
// ways Go code silently breaks it: wall-clock time, global RNG state,
// and order-sensitive map iteration. A fourth analyzer guards the
// sweep axis-registry hygiene that keeps "one registration per axis"
// true.
//
// The framework mirrors the golang.org/x/tools/go/analysis API shape
// (Analyzer, Pass, Diagnostic, an analysistest-style fixture harness)
// but is built entirely on the standard library — go/ast, go/types,
// go/importer — so the module stays dependency-free: the loader feeds
// go/types from the build cache's export data (`go list -export`)
// instead of x/tools' gcexportdata. Porting an analyzer to the x/tools
// driver is a mechanical rename.
//
// Analyzers only inspect non-test files: the contract binds simulation
// code, while tests legitimately use wall-clock timeouts and are
// themselves checked dynamically (goldens, -shuffle, the bench gate).
//
// A finding at a site that is genuinely outside simulation time — a
// socket deadline, the benchtab stopwatch — is silenced with a line
// directive carrying a mandatory reason:
//
//	conn.SetDeadline(time.Now().Add(timeout)) //simlint:allow walltime -- real socket deadline
//
// or, on its own line, covering the next line:
//
//	//simlint:allow walltime -- real socket deadline
//	conn.SetDeadline(time.Now().Add(timeout))
//
// Multiple analyzer names may be comma-separated; the name "all"
// silences every analyzer. A directive with no "-- reason" is itself
// reported. Run the suite with:
//
//	go run ./cmd/simlint ./...
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one invariant check. The shape deliberately
// matches golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in findings and in
	// //simlint:allow directives. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description of the invariant enforced,
	// beginning "Name: ".
	Doc string
	// Run applies the analyzer to one package, reporting findings
	// through pass.Report.
	Run func(*Pass) error
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Reportf reports a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding inside a package.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Analyzers returns the simlint suite in reporting order. cmd/simlint
// is a thin multichecker over exactly this slice.
func Analyzers() []*Analyzer {
	return []*Analyzer{WallTime, GlobalRand, MapOrder, FieldSync}
}

// pkgNameOf resolves an identifier to the package it names, when the
// identifier is the base of a qualified reference (`time` in
// `time.Now`). Nil when the identifier is anything else — including a
// local variable shadowing the import name.
func pkgNameOf(info *types.Info, id *ast.Ident) *types.PkgName {
	if pn, ok := info.Uses[id].(*types.PkgName); ok {
		return pn
	}
	return nil
}

// pkgFunc reports whether sel is a reference to the package-level
// function path.name, resolved through the type checker (import
// renames and shadowing are handled for free).
func pkgFunc(info *types.Info, sel *ast.SelectorExpr, path, name string) bool {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn := pkgNameOf(info, id)
	return pn != nil && pn.Imported().Path() == path && sel.Sel.Name == name
}
