package service

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/osid"
	"repro/internal/sweep"
)

// cellCheckpoint is one finished sweep cell, reduced to exactly the
// fields the export rows read back. Durations travel as integer
// nanoseconds and utilisation as a JSON float64 (Go's shortest
// round-trip encoding), so a checkpointed cell reconstructs its
// export row byte for byte — the resumed sweep's CSV is
// indistinguishable from an uninterrupted run's.
type cellCheckpoint struct {
	Index int    `json:"index"`
	Cell  string `json:"cell"`
	Err   string `json:"err,omitempty"`

	Utilisation          float64 `json:"utilisation"`
	MeanWaitLinuxNS      int64   `json:"mean_wait_linux_ns"`
	MeanWaitWindowsNS    int64   `json:"mean_wait_windows_ns"`
	Switches             int     `json:"switches"`
	SwitchesOK           int     `json:"switches_ok"`
	Thrash               int     `json:"thrash"`
	MeanSwitchNS         int64   `json:"mean_switch_ns"`
	JobsSubmittedLinux   int     `json:"jobs_submitted_linux"`
	JobsSubmittedWindows int     `json:"jobs_submitted_windows"`
	JobsCompletedLinux   int     `json:"jobs_completed_linux"`
	JobsCompletedWindows int     `json:"jobs_completed_windows"`
	SubmitFailures       int     `json:"submit_failures"`
	BrokenNodes          int     `json:"broken_nodes"`
	Dropped              int     `json:"dropped"`
	MakespanNS           int64   `json:"makespan_ns"`
}

// checkpointOf digests a finished cell for the state store.
func checkpointOf(r sweep.CellResult) cellCheckpoint {
	ck := cellCheckpoint{Index: r.Cell.Index, Cell: r.Cell.Name()}
	if r.Err != nil {
		ck.Err = r.Err.Error()
		return ck
	}
	s := r.Res.Summary
	ck.Utilisation = s.Utilisation
	ck.MeanWaitLinuxNS = int64(s.MeanWait[osid.Linux])
	ck.MeanWaitWindowsNS = int64(s.MeanWait[osid.Windows])
	ck.Switches = s.Switches
	ck.SwitchesOK = s.SwitchesOK
	ck.Thrash = r.Res.Thrash
	ck.MeanSwitchNS = int64(s.MeanSwitch)
	ck.JobsSubmittedLinux = s.JobsSubmitted[osid.Linux]
	ck.JobsSubmittedWindows = s.JobsSubmitted[osid.Windows]
	ck.JobsCompletedLinux = s.JobsCompleted[osid.Linux]
	ck.JobsCompletedWindows = s.JobsCompleted[osid.Windows]
	ck.SubmitFailures = s.SubmitFailures
	ck.BrokenNodes = r.Res.BrokenNodes
	ck.Dropped = r.Res.Dropped
	ck.MakespanNS = int64(s.Makespan)
	return ck
}

// result rebuilds the cell's sweep result. Only the fields the export
// rows and the ranked table consume are restored; the full per-run
// detail (series, events, per-member digests) lives and dies with the
// process that ran the cell.
func (ck cellCheckpoint) result(c sweep.Cell) sweep.CellResult {
	r := sweep.CellResult{Cell: c}
	if ck.Err != "" {
		r.Err = errors.New(ck.Err)
		return r
	}
	r.Res = core.Result{
		Summary: metrics.Summary{
			Utilisation: ck.Utilisation,
			MeanWait: map[osid.OS]time.Duration{
				osid.Linux:   time.Duration(ck.MeanWaitLinuxNS),
				osid.Windows: time.Duration(ck.MeanWaitWindowsNS),
			},
			JobsSubmitted: map[osid.OS]int{
				osid.Linux:   ck.JobsSubmittedLinux,
				osid.Windows: ck.JobsSubmittedWindows,
			},
			JobsCompleted: map[osid.OS]int{
				osid.Linux:   ck.JobsCompletedLinux,
				osid.Windows: ck.JobsCompletedWindows,
			},
			Switches:       ck.Switches,
			SwitchesOK:     ck.SwitchesOK,
			MeanSwitch:     time.Duration(ck.MeanSwitchNS),
			Makespan:       time.Duration(ck.MakespanNS),
			SubmitFailures: ck.SubmitFailures,
		},
		Thrash:      ck.Thrash,
		BrokenNodes: ck.BrokenNodes,
		Dropped:     ck.Dropped,
	}
	return r
}

// writeCheckpoint persists a finished cell; idempotent, so resumed
// cells replayed through the Progress hook cost one stat each.
func (s *store) writeCheckpoint(hash string, r sweep.CellResult) error {
	path := s.cellPath(hash, r.Cell.Index)
	if fileExists(path) {
		return nil
	}
	if err := os.MkdirAll(s.checkpointDir(hash), 0o755); err != nil {
		return err
	}
	b, err := json.Marshal(checkpointOf(r))
	if err != nil {
		return err
	}
	return writeFileSync(path, append(b, '\n'))
}

// loadCheckpoint reads a cell's checkpoint back, if one exists and
// matches the expanded cell. A checkpoint whose recorded cell name
// disagrees with the expansion (a stale state dir, a hash collision
// in the making) is ignored — the cell simply re-runs.
func (s *store) loadCheckpoint(hash string, c sweep.Cell) (sweep.CellResult, bool) {
	b, err := os.ReadFile(s.cellPath(hash, c.Index))
	if err != nil {
		return sweep.CellResult{}, false
	}
	var ck cellCheckpoint
	if err := json.Unmarshal(b, &ck); err != nil || ck.Index != c.Index || ck.Cell != c.Name() {
		return sweep.CellResult{}, false
	}
	return ck.result(c), true
}

// countCheckpoints reports how many cells of a job already sit on
// disk (recovery's progress estimate). Only completed "cell-*.json"
// entries count: a crash mid-writeFileSync can leave a ".tmp-*" file
// the rename never consumed, which is deleted on sight rather than
// inflating the count.
func (s *store) countCheckpoints(hash string) int {
	dir := s.checkpointDir(hash)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() {
			continue
		}
		if strings.HasPrefix(name, ".tmp-") {
			os.Remove(filepath.Join(dir, name)) //nolint:errcheck // best-effort cleanup
			continue
		}
		if strings.HasPrefix(name, "cell-") && strings.HasSuffix(name, ".json") {
			n++
		}
	}
	return n
}

// clearCheckpoints removes a finished job's checkpoint directory —
// the cache now holds the authoritative result. Best-effort: a
// leftover directory only costs disk.
func (s *store) clearCheckpoints(hash string) {
	os.RemoveAll(s.checkpointDir(hash))
}
