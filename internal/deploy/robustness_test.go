package deploy

import (
	"testing"
	"testing/quick"

	"repro/internal/hardware"
)

// Robustness: deployment file parsers and the diskpart interpreter
// must never panic on arbitrary input.

func TestQuickParseIdeDiskNeverPanics(t *testing.T) {
	f := func(s string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = ParseIdeDisk(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickParseDiskpartNeverPanics(t *testing.T) {
	f := func(s string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		script, err := ParseDiskpart(s)
		if err == nil {
			// Anything parsed must execute without panicking either
			// (errors are fine).
			d := hardware.NewDisk(1000)
			_, _ = script.Execute(d)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkParseIdeDiskV2(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseIdeDisk(V2IdeDisk); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDiskpartExecute(b *testing.B) {
	script, err := ParseDiskpart(V1Diskpart)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := hardware.NewDisk(250000)
		if _, err := script.Execute(d); err != nil {
			b.Fatal(err)
		}
	}
}
