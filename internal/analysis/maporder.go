package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// writerMethods are method names whose call inside a map-range body
// emits in iteration order: once bytes leave through a writer or
// encoder there is no sorting them afterwards.
var writerMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
	"WriteRow":    true,
	"WriteAll":    true,
	"Encode":      true,
	"Fprint":      true,
	"Fprintf":     true,
	"Fprintln":    true,
	"Print":       true,
	"Printf":      true,
	"Println":     true,
}

// sortPkgs are the packages whose calls count as an intervening
// deterministic sort of an accumulated slice.
var sortPkgs = map[string]bool{"sort": true, "slices": true}

// MapOrder flags order-sensitive consumption of Go's randomised map
// iteration — the exact hazard class that would silently break
// workers=1-vs-8 CSV byte identity. A `for range` over a map is fine
// while its body only does commutative work (sums, map writes,
// lookups); it is flagged when the body appends to a slice that is
// never deterministically sorted afterwards in the same function,
// writes to a writer/encoder, or accumulates a string (cell/CSV names).
// The collect-then-sort idiom stays clean: an append whose target is
// later passed to a sort or slices call is not reported.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "maporder: flag for-range over a map whose body appends to a slice (without a later " +
		"deterministic sort), writes to a writer/encoder, or accumulates a string — map order " +
		"nondeterminism would leak into output",
	Run: runMapOrder,
}

func runMapOrder(pass *Pass) error {
	for _, f := range pass.Files {
		for _, body := range functionBodies(f) {
			checkBodyMapRanges(pass, body)
		}
	}
	return nil
}

// functionBodies collects every function body in the file: top-level
// declarations and function literals alike.
func functionBodies(f *ast.File) []*ast.BlockStmt {
	var bodies []*ast.BlockStmt
	ast.Inspect(f, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				bodies = append(bodies, fn.Body)
			}
		case *ast.FuncLit:
			bodies = append(bodies, fn.Body)
		}
		return true
	})
	return bodies
}

// checkBodyMapRanges finds map-range statements directly inside body
// (not inside nested function literals, which get their own pass) and
// applies the hazard checks, using body as the scope for the
// sorted-afterwards exemption.
func checkBodyMapRanges(pass *Pass, body *ast.BlockStmt) {
	walkShallow(body, func(n ast.Node) {
		rng, ok := n.(*ast.RangeStmt)
		if !ok || !isMapType(pass.TypesInfo, rng.X) {
			return
		}
		checkMapRange(pass, body, rng)
	})
}

// walkShallow visits every node under root without descending into
// nested function literals.
func walkShallow(root ast.Node, visit func(ast.Node)) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != root {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

func isMapType(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkMapRange reports the hazards inside one map-range body.
func checkMapRange(pass *Pass, funcBody *ast.BlockStmt, rng *ast.RangeStmt) {
	mapExpr := types.ExprString(rng.X)
	walkShallow(rng.Body, func(n ast.Node) {
		switch st := n.(type) {
		case *ast.AssignStmt:
			// x = append(x, ...) — ordered accumulation, unless x is
			// deterministically sorted later in this function.
			for i, rhs := range st.Rhs {
				if i >= len(st.Lhs) || !containsAppend(pass.TypesInfo, rhs) {
					continue
				}
				target := types.ExprString(st.Lhs[i])
				if sortedAfter(pass.TypesInfo, funcBody, rng.End(), target) {
					continue
				}
				pass.Reportf(st.Pos(),
					"append to %s inside range over map %s: iteration order is randomised; sort %s afterwards or iterate sorted keys",
					target, mapExpr, target)
			}
			// s += ... on a string — building a name/CSV fragment in
			// iteration order.
			if st.Tok == token.ADD_ASSIGN && len(st.Lhs) == 1 && isStringType(pass.TypesInfo, st.Lhs[0]) {
				pass.Reportf(st.Pos(),
					"string concatenation onto %s inside range over map %s: iteration order is randomised; iterate sorted keys",
					types.ExprString(st.Lhs[0]), mapExpr)
			}
		case *ast.CallExpr:
			if name, ok := emitsInOrder(pass.TypesInfo, st); ok {
				pass.Reportf(st.Pos(),
					"%s inside range over map %s emits in randomised iteration order; collect and sort first",
					name, mapExpr)
			}
		}
	})
}

// containsAppend reports whether the expression subtree calls the
// append builtin.
func containsAppend(info *types.Info, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func isStringType(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// emitsInOrder reports whether the call writes through a writer or
// encoder: a method call named like a writer, or an fmt print
// function targeting a stream.
func emitsInOrder(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !writerMethods[sel.Sel.Name] {
		return "", false
	}
	if info.Selections[sel] != nil { // a method call
		return types.ExprString(sel), true
	}
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn := pkgNameOf(info, id); pn != nil && pn.Imported().Path() == "fmt" {
			return types.ExprString(sel), true
		}
	}
	return "", false
}

// sortedAfter reports whether, past position after inside body, some
// sort or slices call takes target as (part of) an argument — the
// collect-then-sort idiom that restores determinism.
func sortedAfter(info *types.Info, body *ast.BlockStmt, after token.Pos, target string) bool {
	found := false
	walkShallow(body, func(n ast.Node) {
		if found || n.Pos() <= after {
			return
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return
		}
		if pn := pkgNameOf(info, id); pn == nil || !sortPkgs[pn.Imported().Path()] {
			return
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(an ast.Node) bool {
				if e, ok := an.(ast.Expr); ok && types.ExprString(e) == target {
					found = true
					return false
				}
				return !found
			})
		}
	})
	return found
}
