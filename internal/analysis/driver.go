package analysis

import (
	"fmt"
	"go/token"
	"io"
	"path/filepath"
	"sort"
)

// A Finding is one directive-filtered diagnostic, positioned and
// attributed, ready to print.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// RunAnalyzer applies one analyzer to one package and returns its
// diagnostics with //simlint:allow suppression already applied, plus
// any malformed directives found in the package's files. Both the
// multichecker driver and the analysistest harness go through this
// path, so fixture tests exercise the same suppression machinery the
// real runs use.
func RunAnalyzer(a *Analyzer, cp *CheckedPackage) (diags, malformed []Diagnostic, err error) {
	var raw []Diagnostic
	pass := &Pass{
		Analyzer:  a,
		Fset:      cp.Fset,
		Files:     cp.Files,
		Pkg:       cp.Pkg,
		TypesInfo: cp.Info,
		Report:    func(d Diagnostic) { raw = append(raw, d) },
	}
	if err := a.Run(pass); err != nil {
		return nil, nil, fmt.Errorf("%s: %v", a.Name, err)
	}
	// Suppression is per file: group the diagnostics by file, filter
	// each group against that file's directive set.
	for _, f := range cp.Files {
		filename := cp.Fset.Position(f.Pos()).Filename
		ds := parseDirectives(cp.Fset, f, cp.Sources[filename])
		var inFile []Diagnostic
		for _, d := range raw {
			if cp.Fset.Position(d.Pos).Filename == filename {
				inFile = append(inFile, d)
			}
		}
		diags = append(diags, filterDiagnostics(ds, cp.Fset, a.Name, inFile)...)
		malformed = append(malformed, ds.malformed...)
	}
	return diags, malformed, nil
}

// Run loads the packages matching patterns and applies every analyzer,
// returning the sorted, suppression-filtered findings. Malformed
// directives are reported once per file under the name "simlint".
func Run(patterns []string, analyzers []*Analyzer) ([]Finding, error) {
	pkgs, err := Load(patterns)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	for _, cp := range pkgs {
		seenMalformed := map[token.Pos]bool{}
		for _, a := range analyzers {
			diags, malformed, err := RunAnalyzer(a, cp)
			if err != nil {
				return nil, err
			}
			for _, d := range diags {
				findings = append(findings, Finding{Analyzer: a.Name, Pos: cp.Fset.Position(d.Pos), Message: d.Message})
			}
			for _, d := range malformed {
				if !seenMalformed[d.Pos] {
					seenMalformed[d.Pos] = true
					findings = append(findings, Finding{Analyzer: directiveName, Pos: cp.Fset.Position(d.Pos), Message: d.Message})
				}
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// Print writes findings in the conventional file:line:col form, with
// paths relative to dir when possible.
func Print(w io.Writer, dir string, findings []Finding) {
	for _, f := range findings {
		name := f.Pos.Filename
		if rel, err := filepath.Rel(dir, name); err == nil && !filepath.IsAbs(rel) {
			name = rel
		}
		fmt.Fprintf(w, "%s:%d:%d: %s [%s]\n", name, f.Pos.Line, f.Pos.Column, f.Message, f.Analyzer)
	}
}
