package cluster

import (
	"fmt"

	"repro/internal/bootmgr"
	"repro/internal/deploy"
	"repro/internal/hardware"
	"repro/internal/oscar"
	"repro/internal/osid"
)

// Live maintenance: reimaging nodes of a running cluster, reproducing
// the operational difference between the two dualboot-oscar
// generations (§III-C vs §IV-B). A v1 Windows reimage wipes the whole
// disk — Linux is gone until an administrator redeploys it — while a
// v2 reimage only reformats partition 1.

// ReimageReport describes a maintenance operation on a live node.
type ReimageReport struct {
	Node          string
	Windows       deploy.WindowsReport
	LinuxLost     bool // the Linux install was destroyed (v1 pain)
	LinuxRedeploy oscar.DeployReport
	Redeployed    bool
	ManualSteps   int
}

// ReimageWindows reimages a node's Windows partition with the
// generation-appropriate diskpart script. The node must be idle on
// the Windows side (or down); the reimage reboots it into Windows.
// With v1, the clean-based script destroys the Linux install and —
// when repairLinux is set — the OSCAR image is redeployed afterwards,
// costing the v1 manual patch steps.
func (c *Cluster) ReimageWindows(name string, repairLinux bool) (ReimageReport, error) {
	rep := ReimageReport{Node: name}
	n, ok := c.byName[name]
	if !ok {
		return rep, fmt.Errorf("cluster: unknown node %s", name)
	}
	if n.Switching {
		return rep, fmt.Errorf("cluster: %s is mid-switch", name)
	}
	if n.OS == osid.Windows && !c.nodeIdle(n) {
		return rep, fmt.Errorf("cluster: %s is running Windows work", name)
	}
	if n.OS == osid.Linux && !c.nodeIdle(n) {
		return rep, fmt.Errorf("cluster: %s is running Linux work", name)
	}

	script := deploy.V1Diskpart
	if c.cfg.Mode != HybridV1 {
		script = deploy.V2ReimageDiskpart
	}
	dp, err := deploy.ParseDiskpart(script)
	if err != nil {
		return rep, err
	}

	// Take the node out of service on whichever side it was on.
	from := n.OS
	switch from {
	case osid.Linux:
		_ = c.PBS.SetNodeAvailable(name, false)
	case osid.Windows:
		_ = c.Win.SetNodeOnline(name, false)
	}
	if from.Valid() {
		c.Rec.NodeDown(from)
	}
	n.OS = osid.None
	n.HW.Power = hardware.PowerOff

	winRep, err := deploy.DeployWindows(n.HW, dp)
	if err != nil {
		return rep, fmt.Errorf("cluster: reimage %s: %w", name, err)
	}
	rep.Windows = winRep
	rep.LinuxLost = winRep.LinuxPartitionsLost > 0
	c.logf("reimage: %s windows reimaged (linux partitions lost: %d)", name, winRep.LinuxPartitionsLost)

	if rep.LinuxLost && repairLinux {
		img, layout, err := c.currentImage()
		if err != nil {
			return rep, err
		}
		_ = layout
		linRep, err := oscar.DeployNode(n.HW, img)
		if err != nil {
			return rep, fmt.Errorf("cluster: linux redeploy %s: %w", name, err)
		}
		rep.LinuxRedeploy = linRep
		rep.Redeployed = true
		rep.ManualSteps = linRep.ManualSteps
		if c.cfg.Mode == HybridV1 {
			if err := c.setV1ControlFile(n.HW, osid.Windows); err != nil {
				return rep, err
			}
		}
		c.logf("reimage: %s linux redeployed (%d manual steps)", name, linRep.ManualSteps)
	}

	// The node boots back into Windows (the reimage script leaves the
	// Windows partition active; in v2 the flag may redirect it, which
	// is faithful — administrators reimaged whole batches per OS).
	c.beginReimageBoot(n)
	return rep, nil
}

// currentImage rebuilds the OSCAR image matching the cluster's
// generation (what the head node keeps on disk).
func (c *Cluster) currentImage() (*oscar.Image, *deploy.Layout, error) {
	version := oscar.V1
	layoutText := deploy.V1IdeDisk
	if c.cfg.Mode != HybridV1 {
		version = oscar.V2
		layoutText = deploy.V2IdeDisk
	}
	layout, err := deploy.ParseIdeDisk(layoutText)
	if err != nil {
		return nil, nil, err
	}
	img, err := oscar.BuildImage("oscarimage", version, layout)
	if err != nil {
		return nil, nil, err
	}
	return img, layout, nil
}

// beginReimageBoot boots a node after maintenance; unlike beginSwitch
// it has no donor side to deregister (already done) and no target
// expectation — wherever the boot chain lands is recorded.
func (c *Cluster) beginReimageBoot(n *Node) {
	n.Switching = true
	n.HW.Power = hardware.PowerBooting
	c.Rec.SwitchStarted(n.HW.Name, osid.None, osid.None)
	c.Eng.After(c.cfg.Latency.POST, func() {
		res, err := bootmgr.Boot(n.HW, bootmgr.Env{
			PXE:     c.PXE,
			Latency: *c.cfg.Latency,
			Rand:    c.rng,
		})
		if err != nil {
			c.markBootFailed(n, "reimage", err)
			return
		}
		c.Eng.After(res.Latency, func() {
			n.Switching = false
			n.OS = res.OS
			n.HW.BootedOS = res.OS
			n.HW.Power = hardware.PowerOn
			switch res.OS {
			case osid.Linux:
				_ = c.PBS.SetNodeAvailable(n.HW.Name, true)
			case osid.Windows:
				_ = c.Win.SetNodeOnline(n.HW.Name, true)
			}
			c.Rec.NodeUp(res.OS)
			c.Rec.SwitchFinished(n.HW.Name, true)
			c.logf("reimage: %s back up in %s", n.HW.Name, res.OS)
			c.notifySwitchLanded(n.HW.Name, res.OS, true)
		})
	})
}
