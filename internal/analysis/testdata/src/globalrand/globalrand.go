// Fixture for the globalrand analyzer: positive findings.
package globalrand

import (
	"math/rand"
	"time"
)

func bad() {
	_ = rand.Intn(10)                  // want `rand\.Intn draws from the process-global generator`
	_ = rand.Int63()                   // want `rand\.Int63 draws from the process-global generator`
	_ = rand.Float64()                 // want `rand\.Float64 draws from the process-global generator`
	_ = rand.Perm(5)                   // want `rand\.Perm draws from the process-global generator`
	rand.Seed(42)                      // want `rand\.Seed draws from the process-global generator`
	rand.Shuffle(2, func(i, j int) {}) // want `rand\.Shuffle draws from the process-global generator`
}

func badSeeding() {
	// The canonical anti-pattern: a locally-owned generator whose seed
	// is the wall clock. One finding for the whole seeding chain.
	_ = rand.New(rand.NewSource(time.Now().UnixNano())) // want `rand\.New seeded from the wall clock is irreproducible`
	_ = rand.NewSource(int64(time.Now().Nanosecond()))  // want `rand\.NewSource seeded from the wall clock is irreproducible`
}
