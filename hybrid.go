// Package hybridcluster is the public API of this reproduction of
// "Hybrid Computer Cluster with High Flexibility" (Liang, Holmes,
// Kureshi — IEEE Cluster 2012): the dualboot-oscar middleware that
// turns a legacy Beowulf cluster into a bi-stable Linux/Windows hybrid
// by rebooting idle nodes into whichever operating system has queued
// demand.
//
// The package re-exports the simulation façade. A minimal use:
//
//	trace := hybridcluster.PoissonTrace(hybridcluster.PoissonConfig{
//		Seed: 1, Duration: 24 * time.Hour, JobsPerHour: 6, WindowsFrac: 0.4,
//	})
//	result, err := hybridcluster.Run(hybridcluster.Scenario{
//		Name:    "campus-day",
//		Cluster: hybridcluster.ClusterConfig{Mode: hybridcluster.HybridV2},
//		Trace:   trace,
//	})
//
// Beyond single runs, Sweep executes whole parameter grids — cluster
// modes × controller policies × scheduler policies × node counts ×
// trace shapes × boot-failure rates × topologies × routing policies ×
// switch latencies — on a bounded worker pool. Every axis is one
// registration in the sweep package's self-describing axis registry,
// from which grid-spec parsing, CLI flags, export columns and cell
// names all derive. A topology cell runs a whole campus fabric
// (several clusters on one clock behind a job router) and its Result
// carries per-member summaries:
//
//	out, err := hybridcluster.Sweep(hybridcluster.SweepConfig{
//		Grid: hybridcluster.SweepGrid{
//			Modes:      []hybridcluster.ClusterMode{hybridcluster.HybridV2, hybridcluster.Static},
//			NodeCounts: []int{8, 16},
//		},
//		Workers: 8,
//	})
//
// Sweeps are deterministic by construction: every cell derives its
// seeds from its grid coordinates (never from execution order), owns a
// private simulation engine, and lands its result at its expansion
// index — so the aggregate output is bit-identical for any worker
// count. See the sweep package doc for the full contract.
//
// Lower-level building blocks (the PBS and Windows HPC simulators, the
// GRUB/PXE boot chain, the detector wire format, deployment tooling)
// live in the internal packages; see README.md for the map.
package hybridcluster

import (
	"io"
	"time"

	"repro/internal/cluster"
	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/metrics"
	"repro/internal/osid"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// Cluster organisations under test.
const (
	// HybridV1 is dualboot-oscar 1.0 (FAT control file, MBR GRUB).
	HybridV1 = cluster.HybridV1
	// HybridV2 is dualboot-oscar 2.0 (PXE flag boot control).
	HybridV2 = cluster.HybridV2
	// Static is the fixed Linux/Windows sub-cluster baseline.
	Static = cluster.Static
	// MonoStable is the one-scheduler, return-home baseline.
	MonoStable = cluster.MonoStable
)

// Operating-system identities.
const (
	Linux   = osid.Linux
	Windows = osid.Windows
)

// Re-exported types; see the internal packages for full documentation.
type (
	// Scenario configures one run (cluster + trace).
	Scenario = core.Scenario
	// Result is the digested outcome of a run.
	Result = core.Result
	// ClusterConfig parameterises the simulated cluster.
	ClusterConfig = cluster.Config
	// ClusterMode selects hybrid-v1/v2, static or mono-stable.
	ClusterMode = cluster.Mode
	// Snapshot is one point of a node-count time series.
	Snapshot = cluster.Snapshot
	// Summary is the metrics digest of a run.
	Summary = metrics.Summary
	// Trace is an ordered stream of jobs.
	Trace = workload.Trace
	// Job is one workload submission.
	Job = workload.Job
	// PoissonConfig parameterises the campus workload generator.
	PoissonConfig = workload.PoissonConfig
	// BurstConfig parameterises a demand burst.
	BurstConfig = workload.BurstConfig
	// Policy is a controller decision rule.
	Policy = controller.Policy
)

// Controller policies: FCFSPolicy is the paper's deployed rule; the
// others are the "adapt the rules" extensions from §V.
type (
	FCFSPolicy       = controller.FCFS
	ThresholdPolicy  = controller.Threshold
	HysteresisPolicy = controller.Hysteresis
	PredictivePolicy = controller.Predictive
	FairSharePolicy  = controller.FairShare
)

// ParsePolicy resolves a controller policy by registry name, returning
// a fresh instance; unknown names error with the valid set.
func ParsePolicy(name string) (Policy, error) { return controller.ParsePolicy(name) }

// PolicyNames lists the valid controller policy names in registry
// order.
func PolicyNames() []string { return controller.PolicyNames() }

// SchedPolicy selects the head schedulers' queue discipline: strict
// FCFS (the paper's deployment) or reservation-based EASY backfill,
// under which later jobs may jump a blocked queue head only when they
// cannot delay its earliest reservation.
type SchedPolicy = cluster.SchedPolicy

// Head-scheduler queue disciplines.
const (
	SchedFCFS     = cluster.SchedFCFS
	SchedBackfill = cluster.SchedBackfill
)

// ParseSchedPolicy resolves a scheduler policy by name ("fcfs" |
// "backfill"); unknown names error with the valid set.
func ParseSchedPolicy(name string) (SchedPolicy, error) { return cluster.ParseSchedPolicy(name) }

// SchedPolicyNames lists the valid scheduler policy names.
func SchedPolicyNames() []string { return cluster.SchedPolicyNames() }

// Run executes a scenario from time zero on a fresh cluster.
func Run(sc Scenario) (Result, error) { return core.Run(sc) }

// CompareModes runs one trace through several organisations.
func CompareModes(modes []ClusterMode, base ClusterConfig, trace Trace, horizon time.Duration) ([]Result, error) {
	return core.CompareModes(modes, base, trace, horizon)
}

// ComparisonTable renders results as an aligned text table.
func ComparisonTable(results []Result) string { return core.ComparisonTable(results) }

// PoissonTrace draws a mixed campus workload from the Table-I
// application catalog.
func PoissonTrace(cfg PoissonConfig) Trace { return workload.Poisson(cfg) }

// BurstTrace generates a rapid run of similar jobs.
func BurstTrace(cfg BurstConfig) Trace { return workload.Burst(cfg) }

// MatlabGATrace reproduces the §IV-B MATLAB-MDCS genetic-algorithm
// case study workload.
func MatlabGATrace(seed int64) Trace { return workload.MatlabGACase(seed) }

// MergeTraces combines traces into one ordered stream.
func MergeTraces(traces ...Trace) Trace { return workload.Merge(traces...) }

// DiurnalTrace draws the day/night campus submission pattern.
func DiurnalTrace(cfg DiurnalConfig) Trace { return workload.Diurnal(cfg) }

// DiurnalConfig parameterises DiurnalTrace.
type DiurnalConfig = workload.DiurnalConfig

// Campus-grid layer: several clusters (hybrid and single-OS) sharing
// one clock behind a capability- and load-aware job router — the
// Queensgate Grid context the paper deploys into.
type (
	// Grid is the multi-cluster fabric.
	Grid = grid.Grid
	// GridMemberSpec configures one member cluster.
	GridMemberSpec = grid.MemberSpec
	// GridRouting selects the routing policy.
	GridRouting = grid.RoutingPolicy
)

// Grid routing policies.
const (
	RouteLeastLoaded = grid.RouteLeastLoaded
	RouteRoundRobin  = grid.RouteRoundRobin
	RouteHybridLast  = grid.RouteHybridLast
)

// NewGrid assembles a campus grid from member cluster specs.
func NewGrid(policy GridRouting, members []GridMemberSpec) (*Grid, error) {
	return grid.New(policy, members)
}

// ParseGridRouting resolves a routing policy by name
// ("least-loaded" | "round-robin" | "hybrid-last").
func ParseGridRouting(name string) (GridRouting, error) { return grid.ParsePolicy(name) }

// Topology-aware runs: a Scenario whose Topology has members executes
// across a whole campus fabric on one clock, and the Result carries
// per-member summaries plus the fabric aggregate.
type (
	// Topology selects single-cluster or campus-grid execution.
	Topology = core.Topology
	// MemberResult is one grid member's share of a topology run.
	MemberResult = core.MemberResult
	// ClusterHooks observe cluster lifecycle transitions (job
	// completions, switch landings, submit failures).
	ClusterHooks = cluster.Hooks
)

// Scenario-sweep layer: expand a parameter grid into scenarios, run
// them concurrently with deterministic per-cell seeding, and rank the
// outcomes.
type (
	// SweepConfig is a grid plus the worker-pool bound.
	SweepConfig = sweep.Config
	// SweepGrid spans the scenario space (modes × policies ×
	// scheduler policies × node counts × trace shapes × failure rates
	// × topologies × routings × switch latencies).
	SweepGrid = sweep.Grid
	// SweepCell is one concrete grid point with its derived seeds.
	SweepCell = sweep.Cell
	// SweepOutcome aggregates cell results; see Ranked/Table/Rows.
	SweepOutcome = sweep.Outcome
	// SweepCellResult pairs a cell with its run result.
	SweepCellResult = sweep.CellResult
	// SweepTraceSpec is one point on the trace-shape axis.
	SweepTraceSpec = sweep.TraceSpec
	// SweepPolicySpec names a controller-policy constructor.
	SweepPolicySpec = sweep.PolicySpec
	// SweepTopologySpec is one point on the topology axis: a single
	// cluster or a campus fabric of members.
	SweepTopologySpec = sweep.TopologySpec
	// SweepTopologyMember configures one member of a topology spec.
	SweepTopologyMember = sweep.TopologyMember
)

// Topology member splits.
const (
	SplitHalf       = sweep.SplitHalf
	SplitAllLinux   = sweep.SplitAllLinux
	SplitAllWindows = sweep.SplitAllWindows
)

// DefaultTopologies returns the named fabric presets ("single",
// "campus", "twin-hybrid") the sweep CLI understands.
func DefaultTopologies() []SweepTopologySpec { return sweep.DefaultTopologies() }

// TopologyByName finds a fabric preset; unknown names error with the
// valid set.
func TopologyByName(name string) (SweepTopologySpec, error) { return sweep.TopologyByName(name) }

// Sweep runs every cell of a parameter grid on a bounded worker pool.
// The outcome is bit-identical regardless of Workers.
func Sweep(cfg SweepConfig) (*SweepOutcome, error) { return sweep.Run(cfg) }

// ParseSweepGrid parses the qsim CLI's compact grid notation, e.g.
// "modes=hybrid-v2,static-split;nodes=8,16;winfracs=0.25,0.5". Keys,
// parsers and validation derive from the sweep axis registry; unknown
// and repeated keys error.
func ParseSweepGrid(spec string) (SweepGrid, error) { return sweep.ParseGridSpec(spec) }

// SweepGridString renders a grid back to canonical compact notation
// (the inverse of ParseSweepGrid); it errors when the grid holds
// something the notation cannot express (custom traces, bespoke
// topologies).
func SweepGridString(g SweepGrid) (string, error) { return sweep.GridString(g) }

// Experiment documents: a SweepSpec is a versioned, replayable JSON
// artifact (spec_version, grid, seeds, horizon) with a byte-stable
// canonical serialisation. `qsim run -f` / `qsim sweep -f` replay
// them, and internal/experiments commits one per recorded sweep
// experiment under specs/.
type SweepSpec = sweep.Spec

// SweepSpecVersion is the document version LoadSweepSpec accepts and
// SaveSweepSpec writes.
const SweepSpecVersion = sweep.SpecVersion

// LoadSweepSpec parses an experiment document; unknown spec_versions
// and unknown axis keys error listing the valid set.
func LoadSweepSpec(r io.Reader) (SweepSpec, error) { return sweep.LoadSpec(r) }

// SaveSweepSpec writes a document's canonical byte-stable form.
func SaveSweepSpec(w io.Writer, sp SweepSpec) error { return sweep.SaveSpec(w, sp) }

// SweepSpecKeys lists the valid grid-spec / document axis keys in
// registry order.
func SweepSpecKeys() []string { return sweep.SpecKeys() }
