package controller

import (
	"fmt"
	"strings"
)

// Factory names one controller policy constructor. New must return a
// fresh instance on every call: the hysteresis and predictive rules
// carry mutable state, and sharing one instance across clusters would
// be both a data race and a determinism leak.
type Factory struct {
	Name string
	New  func() Policy
}

// Factories returns the named policy constructors, in registry order:
// the paper's FCFS first, then the adaptive suite. Every CLI flag and
// sweep axis resolves policy names through this table, so the valid
// vocabulary cannot drift between entry points.
func Factories() []Factory {
	return []Factory{
		{"fcfs", func() Policy { return FCFS{} }},
		{"threshold", func() Policy { return Threshold{} }},
		{"hysteresis", func() Policy { return &Hysteresis{} }},
		{"predictive", func() Policy { return &Predictive{} }},
		{"fairshare", func() Policy { return FairShare{MaxStep: 2} }},
	}
}

// PolicyNames lists the valid policy names in registry order.
func PolicyNames() []string {
	fs := Factories()
	names := make([]string, len(fs))
	for i, f := range fs {
		names[i] = f.Name
	}
	return names
}

// ParsePolicy resolves a policy by name, returning a fresh instance.
// Unknown names error with the full valid set, so no parse boundary
// can accept a misspelled policy silently.
func ParsePolicy(name string) (Policy, error) {
	for _, f := range Factories() {
		if f.Name == name {
			return f.New(), nil
		}
	}
	return nil, fmt.Errorf("controller: unknown policy %q (valid: %s)", name, strings.Join(PolicyNames(), " | "))
}
