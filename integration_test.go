package hybridcluster

// Integration tests: multi-day scenarios through the public API, with
// cross-cutting invariants (node conservation, switch latency bounds,
// completion accounting) checked over every mode.

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/osid"
	"repro/internal/workload"
)

func allModes() []ClusterMode {
	return []ClusterMode{Static, MonoStable, HybridV1, HybridV2}
}

// TestWeekOfCampusWorkAllModes runs a simulated week through every
// cluster organisation and checks global invariants.
func TestWeekOfCampusWorkAllModes(t *testing.T) {
	if testing.Short() {
		t.Skip("long scenario")
	}
	trace := workload.Diurnal(workload.DiurnalConfig{
		Seed: 17, Days: 7, PeakPerHour: 3, WindowsFrac: 0.35, MaxNodes: 4,
	})
	for _, mode := range allModes() {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			res, err := Run(Scenario{
				Name:           mode.String(),
				Cluster:        ClusterConfig{Mode: mode, InitialLinux: 8, Cycle: 10 * time.Minute},
				Trace:          trace,
				Horizon:        14 * 24 * time.Hour,
				SampleInterval: 6 * time.Hour,
			})
			if err != nil {
				t.Fatal(err)
			}
			s := res.Summary

			// Node conservation at every sample.
			for _, snap := range res.Series {
				total := snap.LinuxNodes + snap.WindowsNodes + snap.Switching + snap.Broken
				if total != 16 {
					t.Fatalf("node conservation violated at %v: %+v", snap.At, snap)
				}
			}
			// No switch ever exceeds the five-minute bound.
			if s.MaxSwitch > 5*time.Minute {
				t.Fatalf("max switch %v", s.MaxSwitch)
			}
			// Completions never exceed submissions.
			for _, os := range []osid.OS{osid.Linux, osid.Windows} {
				if s.JobsCompleted[os] > s.JobsSubmitted[os] {
					t.Fatalf("%v: completed %d > submitted %d", os, s.JobsCompleted[os], s.JobsSubmitted[os])
				}
			}
			// Utilisation is a valid fraction.
			if s.Utilisation < 0 || s.Utilisation > 1 {
				t.Fatalf("utilisation = %v", s.Utilisation)
			}
			if res.BrokenNodes != 0 {
				t.Fatalf("broken nodes = %d on a healthy run", res.BrokenNodes)
			}
		})
	}
}

// TestHybridBeatsStaticOnWideJobs is the paper's core claim as an
// executable assertion.
func TestHybridBeatsStaticOnWideJobs(t *testing.T) {
	trace := workload.PhasedWideMix(workload.PhasedConfig{Seed: 33, Phases: 6, WindowsFrac: 0.5})
	results, err := CompareModes([]ClusterMode{HybridV2, Static},
		ClusterConfig{InitialLinux: 8, Cycle: 5 * time.Minute}, trace, 150*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	hybrid, static := results[0].Summary, results[1].Summary
	hDone := hybrid.JobsCompleted[osid.Linux] + hybrid.JobsCompleted[osid.Windows]
	sDone := static.JobsCompleted[osid.Linux] + static.JobsCompleted[osid.Windows]
	if hDone != len(trace) {
		t.Fatalf("hybrid completed %d of %d", hDone, len(trace))
	}
	if sDone >= hDone {
		t.Fatalf("static (%d) matched hybrid (%d) on wide jobs", sDone, hDone)
	}
	if hybrid.Utilisation <= static.Utilisation {
		t.Fatalf("hybrid util %v <= static %v", hybrid.Utilisation, static.Utilisation)
	}
}

// TestBiStableBeatsMonoStableOnWindowsLatency is the §III-C claim.
func TestBiStableBeatsMonoStableOnWindowsLatency(t *testing.T) {
	var bursts workload.Trace
	for i := 0; i < 3; i++ {
		bursts = append(bursts, workload.Burst(workload.BurstConfig{
			Start: time.Duration(i*5) * time.Hour, Jobs: 3, Gap: time.Minute,
			App: "Backburner", OS: osid.Windows, Nodes: 2, PPN: 4,
			Runtime: 30 * time.Minute, Owner: "render",
		})...)
	}
	results, err := CompareModes([]ClusterMode{HybridV2, MonoStable},
		ClusterConfig{InitialLinux: 16, Cycle: 5 * time.Minute}, bursts, 48*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	bi, mono := results[0].Summary, results[1].Summary
	if bi.JobsCompleted[osid.Windows] != 9 || mono.JobsCompleted[osid.Windows] != 9 {
		t.Fatalf("completions: bi=%v mono=%v", bi.JobsCompleted, mono.JobsCompleted)
	}
	if mono.Switches <= bi.Switches {
		t.Fatalf("mono switches %d <= bi %d", mono.Switches, bi.Switches)
	}
	if mono.MeanWait[osid.Windows] < bi.MeanWait[osid.Windows] {
		t.Fatalf("mono windows wait %v < bi %v", mono.MeanWait[osid.Windows], bi.MeanWait[osid.Windows])
	}
}

// TestDeterminism: identical configurations produce identical results.
func TestDeterminism(t *testing.T) {
	run := func() Summary {
		res, err := Run(Scenario{
			Name:    "det",
			Cluster: ClusterConfig{Mode: HybridV2, InitialLinux: 16, Cycle: 5 * time.Minute, Seed: 99},
			Trace:   MatlabGATrace(42),
			Horizon: 48 * time.Hour,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Summary
	}
	a, b := run(), run()
	if a.Utilisation != b.Utilisation || a.Switches != b.Switches ||
		a.MeanWait[osid.Windows] != b.MeanWait[osid.Windows] ||
		a.Makespan != b.Makespan {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

// TestSeedChangesJitter: different cluster seeds change switch
// latencies (jitter) without breaking the five-minute bound.
func TestSeedChangesJitter(t *testing.T) {
	var latencies []time.Duration
	for _, seed := range []int64{1, 2} {
		c, err := cluster.New(cluster.Config{Mode: cluster.HybridV2, InitialLinux: 16, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.ForceSwitch("enode01", Windows); err != nil {
			t.Fatal(err)
		}
		c.Eng.RunFor(time.Hour)
		sw := c.Rec.Switches()
		if len(sw) != 1 || !sw[0].OK {
			t.Fatalf("seed %d: switches = %+v", seed, sw)
		}
		latencies = append(latencies, sw[0].Duration())
	}
	if latencies[0] == latencies[1] {
		t.Fatal("jitter did not vary with seed")
	}
	for _, l := range latencies {
		if l > 5*time.Minute {
			t.Fatalf("latency %v over bound", l)
		}
	}
}

// TestThrashResistanceWithHysteresis: alternating single-job demand
// with a hysteresis policy produces fewer switches than plain FCFS.
func TestThrashResistanceWithHysteresis(t *testing.T) {
	var ping workload.Trace
	for i := 0; i < 8; i++ {
		os := osid.Linux
		app := "GULP"
		if i%2 == 0 {
			os = osid.Windows
			app = "Opera"
		}
		ping = append(ping, workload.Job{
			At: time.Duration(i) * 40 * time.Minute, App: app, OS: os,
			Owner: "u", Nodes: 2, PPN: 4, Runtime: 20 * time.Minute,
		})
	}
	run := func(p Policy) Summary {
		res, err := Run(Scenario{
			Name:    p.Name(),
			Cluster: ClusterConfig{Mode: HybridV2, Nodes: 4, InitialLinux: 4, Cycle: 5 * time.Minute, Policy: p},
			Trace:   ping,
			Horizon: 48 * time.Hour,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Summary
	}
	fcfs := run(FCFSPolicy{})
	hyst := run(&HysteresisPolicy{MinDwell: 2 * time.Hour})
	if hyst.Switches >= fcfs.Switches {
		t.Fatalf("hysteresis did not reduce thrash: %d >= %d", hyst.Switches, fcfs.Switches)
	}
}

// TestPublicGridAPI drives the campus-grid layer through the root
// package: capability routing plus overflow onto the hybrid.
func TestPublicGridAPI(t *testing.T) {
	g, err := NewGrid(RouteHybridLast, []GridMemberSpec{
		{Name: "eridani", Config: ClusterConfig{Mode: HybridV2, Nodes: 8, InitialLinux: 4, Cycle: 5 * time.Minute}},
		{Name: "tauceti", Config: ClusterConfig{Mode: Static, Nodes: 4, InitialLinux: 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	trace := MergeTraces(
		BurstTrace(BurstConfig{Start: 0, Jobs: 2, Gap: time.Minute, App: "GULP",
			OS: Linux, Nodes: 1, PPN: 2, Runtime: time.Hour, Owner: "chem"}),
		BurstTrace(BurstConfig{Start: 5 * time.Minute, Jobs: 2, Gap: time.Minute, App: "Opera",
			OS: Windows, Nodes: 1, PPN: 4, Runtime: time.Hour, Owner: "em"}),
	)
	if err := g.ScheduleTrace(trace); err != nil {
		t.Fatal(err)
	}
	g.RunUntilDrained(24 * time.Hour)
	if g.Dropped() != 0 {
		t.Fatalf("dropped = %d", g.Dropped())
	}
	counts := g.RoutedCounts()
	// hybrid-last sends the Linux work to the static member and the
	// Windows work (no static home) to the hybrid.
	if counts["tauceti"] != 2 || counts["eridani"] != 2 {
		t.Fatalf("routing = %v", counts)
	}
	done := 0
	for _, m := range g.Members() {
		s := m.Cluster.Summary()
		done += s.JobsCompleted[Linux] + s.JobsCompleted[Windows]
	}
	if done != len(trace) {
		t.Fatalf("grid completed %d of %d", done, len(trace))
	}
}

// TestDiurnalTracePublic sanity-checks the diurnal generator exposed
// through the public API.
func TestDiurnalTracePublic(t *testing.T) {
	trace := DiurnalTrace(DiurnalConfig{Seed: 4, Days: 2, PeakPerHour: 5, WindowsFrac: 0.3, MaxNodes: 4})
	if len(trace) == 0 {
		t.Fatal("empty trace")
	}
	if err := trace.Validate(); err != nil {
		t.Fatal(err)
	}
}
